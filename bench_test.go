// Package repro_test holds the testing.B entry points that regenerate
// every table and figure of the paper's evaluation (one benchmark per
// exhibit), as indexed in DESIGN.md. Each benchmark executes the
// corresponding experiment from internal/bench and prints its report on
// the first iteration, so
//
//	go test -bench=. -benchmem
//
// at the repository root reproduces the whole evaluation section. The
// benchmarks run the datasets at a reduced scale (SVM_BENCH_SCALE
// multiplies the harness defaults; it defaults to 0.35 here so the full
// suite finishes in minutes — use cmd/svmbench for full-scale reports).
package repro_test

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/bench"
)

// benchScale reads SVM_BENCH_SCALE (default 0.35).
func benchScale() float64 {
	if v := os.Getenv("SVM_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.35
}

var printOnce sync.Map

// runExperiment executes one experiment per benchmark iteration and prints
// the regenerated table once.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := bench.Options{Scale: benchScale()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			b.StopTimer()
			rep.Print(os.Stdout)
			b.StartTimer()
		}
	}
}

// BenchmarkFigure1 regenerates the support-vector-fraction premise
// (Figure 1).
func BenchmarkFigure1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkTable2Heuristics sweeps all thirteen Table II heuristics.
func BenchmarkTable2Heuristics(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3Datasets prints the dataset characteristics (Table III).
func BenchmarkTable3Datasets(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFigure3Higgs regenerates the UCI HIGGS scaling figure.
func BenchmarkFigure3Higgs(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFigure4URL regenerates the Offending URL scaling figure.
func BenchmarkFigure4URL(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure5Forest regenerates the Forest covertype scaling figure.
func BenchmarkFigure5Forest(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFigure6MNIST regenerates the MNIST scaling figure.
func BenchmarkFigure6MNIST(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7RealSim regenerates the real-sim scaling figure.
func BenchmarkFigure7RealSim(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFigure8Reconstruction regenerates the
// gradient-reconstruction-share figure.
func BenchmarkFigure8Reconstruction(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkTable4Small regenerates the smaller-dataset speedups (Table IV).
func BenchmarkTable4Small(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5Accuracy regenerates the testing-accuracy parity table
// (Table V).
func BenchmarkTable5Accuracy(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkAblationSubsequentThreshold compares subsequent-shrink-threshold
// policies (DESIGN.md ablation 1).
func BenchmarkAblationSubsequentThreshold(b *testing.B) { runExperiment(b, "ablation-subsequent") }

// BenchmarkAblationSyncEps compares first-synchronization bands
// (DESIGN.md ablation 2).
func BenchmarkAblationSyncEps(b *testing.B) { runExperiment(b, "ablation-synceps") }

// BenchmarkAblationKernelCache varies the baseline's kernel-cache budget
// (DESIGN.md ablation 3).
func BenchmarkAblationKernelCache(b *testing.B) { runExperiment(b, "ablation-cache") }

// BenchmarkValidateModel cross-checks the analytic model against executed
// virtual time.
func BenchmarkValidateModel(b *testing.B) { runExperiment(b, "validate-model") }

// BenchmarkAblationWSS compares working-set selection rules
// (DESIGN.md ablation 4).
func BenchmarkAblationWSS(b *testing.B) { runExperiment(b, "ablation-wss") }
