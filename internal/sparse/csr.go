// Package sparse provides a compressed sparse row (CSR) matrix tailored to
// the needs of the SVM solvers in this repository.
//
// The paper stores the training set X in basic CSR format because most of
// the evaluated datasets are sparse (several below 20% density) and because
// avoiding a dense representation is what makes the no-kernel-cache design
// viable on memory-restricted nodes. Rows are samples; columns are features.
// Feature indices are 0-based internally; the libsvm text format (1-based)
// is converted on read/write.
package sparse

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is an immutable CSR matrix. RowPtr has len(Rows)+1 entries;
// row i occupies ColIdx[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]].
// Column indices within a row are strictly increasing.
type Matrix struct {
	RowPtr []int64   // row start offsets into ColIdx/Val, len = rows+1
	ColIdx []int32   // 0-based column index per stored entry
	Val    []float64 // value per stored entry
	Cols   int       // number of columns (max column index + 1, or declared)
}

// Row is a lightweight view of one CSR row. The slices alias the parent
// matrix and must not be mutated.
type Row struct {
	Idx []int32
	Val []float64
}

// RowMatrix is the read-only row-access surface shared by the in-memory
// Matrix and the out-of-core OOCMatrix. Solvers whose data access is
// row-at-a-time (the linear fast path) accept this interface, so the same
// training code runs over fully-resident CSR and over spilled row blocks.
type RowMatrix interface {
	// Rows returns the number of rows (samples).
	Rows() int
	// Dim returns the number of columns (features).
	Dim() int
	// RowView returns a view of row i. The slices must be treated as
	// immutable; they may alias internal storage that outlives the call.
	RowView(i int) Row
}

// Rows returns the number of rows (samples).
func (m *Matrix) Rows() int { return len(m.RowPtr) - 1 }

// Dim returns the number of columns; it is Cols as a method so *Matrix
// satisfies RowMatrix.
func (m *Matrix) Dim() int { return m.Cols }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.Val) }

// Density returns NNZ / (rows*cols), or 0 for an empty matrix.
func (m *Matrix) Density() float64 {
	r := m.Rows()
	if r == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(r) * float64(m.Cols))
}

// RowView returns a view of row i without copying.
func (m *Matrix) RowView(i int) Row {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return Row{Idx: m.ColIdx[lo:hi], Val: m.Val[lo:hi]}
}

// RowNNZ returns the number of stored entries in row i.
func (m *Matrix) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// Key returns a binary content key for the row: two rows have equal keys
// exactly when their stored (index, value) sequences are bit-identical.
// Callers use it to match rows across matrices (e.g. a model's support
// vectors back to the training set) without positional information.
func (r Row) Key() string {
	b := make([]byte, 0, 12*len(r.Idx))
	for k, idx := range r.Idx {
		b = append(b,
			byte(idx), byte(idx>>8), byte(idx>>16), byte(idx>>24))
		v := math.Float64bits(r.Val[k])
		b = append(b,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(b)
}

// AvgRowNNZ returns the mean number of stored entries per row
// (the paper's symbol m, "average sample length").
func (m *Matrix) AvgRowNNZ() float64 {
	if m.Rows() == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.Rows())
}

// Dot returns the inner product of rows a and b of m.
func (m *Matrix) Dot(a, b int) float64 {
	ra, rb := m.RowView(a), m.RowView(b)
	return DotRows(ra, rb)
}

// DotRows returns the inner product of two sparse rows using a two-pointer
// merge over the sorted index lists.
func DotRows(a, b Row) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		ai, bj := a.Idx[i], b.Idx[j]
		switch {
		case ai == bj:
			s += a.Val[i] * b.Val[j]
			i++
			j++
		case ai < bj:
			i++
		default:
			j++
		}
	}
	return s
}

// DotDense returns the inner product of a sparse row with a dense vector.
// Indices at or beyond len(dense) contribute nothing, so a row from a
// matrix with more columns than the vector is handled gracefully.
func DotDense(r Row, dense []float64) float64 {
	var s float64
	for k, c := range r.Idx {
		if int(c) < len(dense) {
			s += r.Val[k] * dense[c]
		}
	}
	return s
}

// GatherDense is DotDense with the per-entry bounds branch hoisted out:
// column indices within a row are strictly increasing, so one comparison
// against the row's last (largest) index decides whether the whole gather
// is in range. The kernel row engine sizes its dense scratch to cover the
// pivot row, which makes the fast path the common case; rows reaching past
// the scratch fall back to the per-entry check (their out-of-range entries
// pair with implicit zeros of the pivot, so the result matches DotRows).
func GatherDense(r Row, dense []float64) float64 {
	n := len(r.Idx)
	if n == 0 {
		return 0
	}
	if int(r.Idx[n-1]) >= len(dense) {
		return DotDense(r, dense)
	}
	var s float64
	for k, c := range r.Idx {
		s += r.Val[k] * dense[c]
	}
	return s
}

// GatherDense2 accumulates one CSR row against two dense vectors in a single
// traversal, so the row's indices and values are read once instead of twice.
// Both vectors must have the same length; the same hoisted bounds check as
// GatherDense applies.
func GatherDense2(r Row, a, b []float64) (sa, sb float64) {
	n := len(r.Idx)
	if n == 0 {
		return 0, 0
	}
	if int(r.Idx[n-1]) >= len(a) || len(b) < len(a) {
		return DotDense(r, a), DotDense(r, b)
	}
	for k, c := range r.Idx {
		v := r.Val[k]
		sa += v * a[c]
		sb += v * b[c]
	}
	return sa, sb
}

// AddScaledTo accumulates scale * r into the dense vector. Centroid
// updates in k-means clustering are the primary user: the running mean of
// a cluster's sparse rows lives in a dense accumulator.
func AddScaledTo(r Row, dense []float64, scale float64) {
	for k, c := range r.Idx {
		if int(c) < len(dense) {
			dense[c] += scale * r.Val[k]
		}
	}
}

// SquaredNorm returns the squared Euclidean norm of row i.
func (m *Matrix) SquaredNorm(i int) float64 {
	r := m.RowView(i)
	var s float64
	for _, v := range r.Val {
		s += v * v
	}
	return s
}

// SquaredNorms returns the squared norms of all rows. The SVM solvers
// precompute these once so each Gaussian-kernel evaluation costs a single
// sparse dot product: ||x-y||^2 = ||x||^2 + ||y||^2 - 2<x,y>.
func (m *Matrix) SquaredNorms() []float64 {
	out := make([]float64, m.Rows())
	for i := range out {
		out[i] = m.SquaredNorm(i)
	}
	return out
}

// SquaredNormsOf is SquaredNorms over any RowMatrix: one sequential pass,
// so an out-of-core matrix streams each block exactly once. On a *Matrix it
// produces bit-identical values to SquaredNorms.
func SquaredNormsOf(m RowMatrix) []float64 {
	out := make([]float64, m.Rows())
	for i := range out {
		var s float64
		r := m.RowView(i)
		for _, v := range r.Val {
			s += v * v
		}
		out[i] = s
	}
	return out
}

// SquaredDistance returns ||row a - row b||^2 computed directly
// (used in tests to cross-check the norm/dot decomposition).
func (m *Matrix) SquaredDistance(a, b int) float64 {
	ra, rb := m.RowView(a), m.RowView(b)
	var s float64
	i, j := 0, 0
	for i < len(ra.Idx) || j < len(rb.Idx) {
		switch {
		case j >= len(rb.Idx) || (i < len(ra.Idx) && ra.Idx[i] < rb.Idx[j]):
			s += ra.Val[i] * ra.Val[i]
			i++
		case i >= len(ra.Idx) || rb.Idx[j] < ra.Idx[i]:
			s += rb.Val[j] * rb.Val[j]
			j++
		default:
			d := ra.Val[i] - rb.Val[j]
			s += d * d
			i++
			j++
		}
	}
	return s
}

// SubMatrix returns a new matrix holding rows [lo, hi) of m. The returned
// matrix shares no storage with m and can be sent to another rank.
func (m *Matrix) SubMatrix(lo, hi int) (*Matrix, error) {
	if lo < 0 || hi < lo || hi > m.Rows() {
		return nil, fmt.Errorf("sparse: SubMatrix bounds [%d,%d) out of range for %d rows", lo, hi, m.Rows())
	}
	start, end := m.RowPtr[lo], m.RowPtr[hi]
	sub := &Matrix{
		RowPtr: make([]int64, hi-lo+1),
		ColIdx: make([]int32, end-start),
		Val:    make([]float64, end-start),
		Cols:   m.Cols,
	}
	for i := lo; i <= hi; i++ {
		sub.RowPtr[i-lo] = m.RowPtr[i] - start
	}
	copy(sub.ColIdx, m.ColIdx[start:end])
	copy(sub.Val, m.Val[start:end])
	return sub, nil
}

// RowRangeView returns a zero-copy view of rows [lo, hi) of m. The view
// shares storage with m: RowView works because row offsets stay absolute,
// but the view's RowPtr does not start at zero, so NNZ/Density/ByteSize
// report the parent's totals and Validate rejects it. It exists so batch
// prediction can run over a sub-range of samples without copying CSR
// payloads (serving hot path, per-rank evaluation blocks).
func (m *Matrix) RowRangeView(lo, hi int) (*Matrix, error) {
	if lo < 0 || hi < lo || hi > m.Rows() {
		return nil, fmt.Errorf("sparse: RowRangeView bounds [%d,%d) out of range for %d rows", lo, hi, m.Rows())
	}
	return &Matrix{RowPtr: m.RowPtr[lo : hi+1], ColIdx: m.ColIdx, Val: m.Val, Cols: m.Cols}, nil
}

// SelectRows returns a new matrix holding the given rows of m, in order.
// Used to extract support vectors when building the final model.
func (m *Matrix) SelectRows(rows []int) (*Matrix, error) {
	out := &Matrix{RowPtr: make([]int64, 1, len(rows)+1), Cols: m.Cols}
	for _, r := range rows {
		if r < 0 || r >= m.Rows() {
			return nil, fmt.Errorf("sparse: SelectRows index %d out of range for %d rows", r, m.Rows())
		}
		rv := m.RowView(r)
		out.ColIdx = append(out.ColIdx, rv.Idx...)
		out.Val = append(out.Val, rv.Val...)
		out.RowPtr = append(out.RowPtr, int64(len(out.Val)))
	}
	return out, nil
}

// Append returns a new matrix with the rows of b appended after the rows of
// a. Both inputs must have compatible column counts; the result's Cols is
// the max of the two.
func Append(a, b *Matrix) *Matrix {
	out := &Matrix{
		RowPtr: make([]int64, 0, a.Rows()+b.Rows()+1),
		ColIdx: make([]int32, 0, a.NNZ()+b.NNZ()),
		Val:    make([]float64, 0, a.NNZ()+b.NNZ()),
		Cols:   max(a.Cols, b.Cols),
	}
	out.RowPtr = append(out.RowPtr, a.RowPtr...)
	out.ColIdx = append(out.ColIdx, a.ColIdx...)
	out.Val = append(out.Val, a.Val...)
	base := int64(len(a.Val))
	for i := 1; i <= b.Rows(); i++ {
		out.RowPtr = append(out.RowPtr, base+b.RowPtr[i])
	}
	out.ColIdx = append(out.ColIdx, b.ColIdx...)
	out.Val = append(out.Val, b.Val...)
	return out
}

// Validate checks the structural invariants of the CSR representation:
// monotone row pointers, sorted strictly-increasing column indices within
// each row, indices within [0, Cols), and finite values.
func (m *Matrix) Validate() error {
	if len(m.RowPtr) == 0 {
		return errors.New("sparse: empty RowPtr; want at least one entry")
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if m.RowPtr[len(m.RowPtr)-1] != int64(len(m.Val)) {
		return fmt.Errorf("sparse: RowPtr[last] = %d, want %d", m.RowPtr[len(m.RowPtr)-1], len(m.Val))
	}
	if len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("sparse: len(ColIdx)=%d != len(Val)=%d", len(m.ColIdx), len(m.Val))
	}
	for i := 0; i < m.Rows(); i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("sparse: row %d has negative extent [%d,%d)", i, lo, hi)
		}
		prev := int32(-1)
		for k := lo; k < hi; k++ {
			c := m.ColIdx[k]
			if c <= prev {
				return fmt.Errorf("sparse: row %d column indices not strictly increasing at entry %d (%d after %d)", i, k, c, prev)
			}
			if int(c) >= m.Cols || c < 0 {
				return fmt.Errorf("sparse: row %d column index %d out of range [0,%d)", i, c, m.Cols)
			}
			if math.IsNaN(m.Val[k]) || math.IsInf(m.Val[k], 0) {
				return fmt.Errorf("sparse: row %d entry %d is not finite: %v", i, k, m.Val[k])
			}
			prev = c
		}
	}
	return nil
}

// ByteSize reports the approximate in-memory payload size of the matrix.
// It implements the mpi.Sized interface so ring transfers of CSR blocks
// are charged realistically by the communication time model.
func (m *Matrix) ByteSize() int {
	return 8*len(m.RowPtr) + 4*len(m.ColIdx) + 8*len(m.Val)
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
		Cols:   m.Cols,
	}
	return c
}
