package sparse

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
)

// Out-of-core CSR: the paper's headline runs are at millions of rows, where
// the training matrix no longer fits a node's RAM — exactly the "more RAM is
// the binding constraint" observation of the large-scale-SVM literature. An
// OOCMatrix keeps the CSR payload in contiguous row blocks spilled to one
// unnamed temp file and caches a byte-budgeted LRU of resident blocks, so a
// solver whose access pattern is row-at-a-time (sparse.RowMatrix) trains
// with peak memory proportional to the budget, not the dataset.
//
// Blocks are written once by an OOCWriter (the streaming libsvm parser
// appends each parsed block as it comes off the wire) and are immutable
// afterwards; eviction simply drops the cache reference, so row views handed
// out earlier stay valid — the garbage collector keeps their backing block
// alive until the caller lets go.

// blockMeta locates one spilled row block inside the spill file.
type blockMeta struct {
	off      int64 // file offset of the encoded block payload
	startRow int   // global index of the block's first row
	rows     int
	nnz      int64
}

// payloadBytes is the encoded (and in-memory) size of the block:
// (rows+1) relative row pointers, nnz column indices, nnz values.
func (b blockMeta) payloadBytes() int64 {
	return 8*int64(b.rows+1) + 12*b.nnz
}

// OOCWriter builds an OOCMatrix by appending row blocks in global row
// order. It is not safe for concurrent use.
type OOCWriter struct {
	f       *os.File
	path    string
	blocks  []blockMeta
	rows    int
	cols    int
	budget  int64
	off     int64
	scratch []byte
}

// NewOOCWriter creates a spill file in dir (or the default temp directory
// when dir is empty) and returns a writer over it. budgetBytes is the
// resident-block budget the finished matrix will enforce; <= 0 means one
// block at a time.
func NewOOCWriter(dir string, budgetBytes int64) (*OOCWriter, error) {
	f, err := os.CreateTemp(dir, "svm-ooc-*.spill")
	if err != nil {
		return nil, fmt.Errorf("sparse: ooc spill file: %w", err)
	}
	return &OOCWriter{f: f, path: f.Name(), budget: budgetBytes}, nil
}

// AppendBlock encodes x as the next row block. The block's rows follow the
// rows appended so far; Cols of the finished matrix is the maximum over all
// blocks (callers with a declared dimensionality can widen it via Finish).
func (w *OOCWriter) AppendBlock(x *Matrix) error {
	if x.Rows() == 0 {
		return nil
	}
	// The block's entry count comes from the row pointers, not len(Val):
	// a RowRangeView shares the parent's payload slices, and only the
	// pointer span tells how much of them the view actually covers.
	base := x.RowPtr[0]
	meta := blockMeta{off: w.off, startRow: w.rows, rows: x.Rows(), nnz: x.RowPtr[x.Rows()] - base}
	need := meta.payloadBytes()
	if int64(cap(w.scratch)) < need {
		w.scratch = make([]byte, need)
	}
	buf := w.scratch[:need]
	o := 0
	for _, p := range x.RowPtr {
		binary.LittleEndian.PutUint64(buf[o:], uint64(p-base))
		o += 8
	}
	for _, c := range x.ColIdx[base : base+meta.nnz] {
		binary.LittleEndian.PutUint32(buf[o:], uint32(c))
		o += 4
	}
	for _, v := range x.Val[base : base+meta.nnz] {
		binary.LittleEndian.PutUint64(buf[o:], math.Float64bits(v))
		o += 8
	}
	if _, err := w.f.WriteAt(buf, meta.off); err != nil {
		return fmt.Errorf("sparse: ooc spill write: %w", err)
	}
	w.off += need
	w.rows += meta.rows
	if x.Cols > w.cols {
		w.cols = x.Cols
	}
	w.blocks = append(w.blocks, meta)
	return nil
}

// Finish seals the writer and returns the matrix over the spilled blocks.
// cols widens the declared dimensionality when positive (a dataset's header
// may declare more features than the spilled rows touch); the writer must
// not be used afterwards.
func (w *OOCWriter) Finish(cols int) (*OOCMatrix, error) {
	if w.rows == 0 {
		w.Abort()
		return nil, fmt.Errorf("sparse: ooc matrix has no rows")
	}
	if cols > w.cols {
		w.cols = cols
	}
	m := &OOCMatrix{
		f: w.f, path: w.path, blocks: w.blocks,
		rows: w.rows, cols: w.cols, budget: w.budget,
		resident: make(map[int]*list.Element), ll: list.New(),
	}
	w.f = nil
	return m, nil
}

// Abort discards the spill file; safe to call after a failed build.
func (w *OOCWriter) Abort() {
	if w.f != nil {
		w.f.Close()
		os.Remove(w.path)
		w.f = nil
	}
}

// residentBlock is one cached decoded block.
type residentBlock struct {
	idx   int
	m     *Matrix
	bytes int64
}

// OOCMatrix is a read-only CSR matrix whose row blocks live in a spill file
// with an LRU of resident decoded blocks. It satisfies RowMatrix. All
// methods are safe for concurrent use; RowView panics if the spill file has
// become unreadable (it is process-private and unmodified after Finish, so
// a read failure is an environment failure, not a recoverable condition).
type OOCMatrix struct {
	mu            sync.Mutex
	f             *os.File
	path          string
	blocks        []blockMeta
	rows, cols    int
	budget        int64
	resident      map[int]*list.Element
	ll            *list.List // front = most recently used
	residentBytes int64
	loads         uint64
	hits          uint64
	evictions     uint64
	closed        bool
}

// Rows returns the number of rows.
func (m *OOCMatrix) Rows() int { return m.rows }

// Dim returns the number of columns.
func (m *OOCMatrix) Dim() int { return m.cols }

// Blocks returns the number of spilled row blocks.
func (m *OOCMatrix) Blocks() int { return len(m.blocks) }

// ByteSize reports the total encoded payload across all blocks — the
// in-memory cost a fully-resident load would pay.
func (m *OOCMatrix) ByteSize() int64 {
	var s int64
	for _, b := range m.blocks {
		s += b.payloadBytes()
	}
	return s
}

// Stats reports cache behaviour since creation: block loads from disk,
// in-cache hits, and evictions.
func (m *OOCMatrix) Stats() (loads, hits, evictions uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.loads, m.hits, m.evictions
}

// ResidentBytes reports the decoded bytes currently held by the LRU.
func (m *OOCMatrix) ResidentBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.residentBytes
}

// blockFor returns the index of the block holding global row i.
func (m *OOCMatrix) blockFor(i int) int {
	// First block whose startRow exceeds i, minus one.
	return sort.Search(len(m.blocks), func(k int) bool { return m.blocks[k].startRow > i }) - 1
}

// RowView returns a view of global row i. The returned slices alias the
// resident block; they stay valid after the block is evicted (the cache
// drops its reference, the memory survives until the caller's view does).
func (m *OOCMatrix) RowView(i int) Row {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("sparse: ooc RowView(%d) out of range for %d rows", i, m.rows))
	}
	bi := m.blockFor(i)
	blk := m.block(bi)
	return blk.RowView(i - m.blocks[bi].startRow)
}

// block returns the decoded block bi, loading and caching it if needed.
func (m *OOCMatrix) block(bi int) *Matrix {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		panic("sparse: ooc matrix used after Close")
	}
	if el, ok := m.resident[bi]; ok {
		m.hits++
		m.ll.MoveToFront(el)
		return el.Value.(*residentBlock).m
	}
	blk, err := m.readBlock(bi)
	if err != nil {
		panic(fmt.Sprintf("sparse: ooc block %d: %v", bi, err))
	}
	m.loads++
	rb := &residentBlock{idx: bi, m: blk, bytes: m.blocks[bi].payloadBytes()}
	m.resident[bi] = m.ll.PushFront(rb)
	m.residentBytes += rb.bytes
	// Evict past the budget, but never the block just loaded: with a budget
	// smaller than one block the cache degrades to block-at-a-time.
	for m.residentBytes > m.budget && m.ll.Len() > 1 {
		el := m.ll.Back()
		old := el.Value.(*residentBlock)
		m.ll.Remove(el)
		delete(m.resident, old.idx)
		m.residentBytes -= old.bytes
		m.evictions++
	}
	return blk
}

// readBlock decodes block bi from the spill file.
func (m *OOCMatrix) readBlock(bi int) (*Matrix, error) {
	meta := m.blocks[bi]
	buf := make([]byte, meta.payloadBytes())
	if _, err := m.f.ReadAt(buf, meta.off); err != nil {
		return nil, err
	}
	blk := &Matrix{
		RowPtr: make([]int64, meta.rows+1),
		ColIdx: make([]int32, meta.nnz),
		Val:    make([]float64, meta.nnz),
		Cols:   m.cols,
	}
	o := 0
	for k := range blk.RowPtr {
		blk.RowPtr[k] = int64(binary.LittleEndian.Uint64(buf[o:]))
		o += 8
	}
	for k := range blk.ColIdx {
		blk.ColIdx[k] = int32(binary.LittleEndian.Uint32(buf[o:]))
		o += 4
	}
	for k := range blk.Val {
		blk.Val[k] = math.Float64frombits(binary.LittleEndian.Uint64(buf[o:]))
		o += 8
	}
	return blk, nil
}

// Materialize loads every block and splices one fully-resident Matrix —
// deliberately unbounded, for verification and tests that need the whole
// dataset (the oracle recomputes objectives over all rows). The LRU cache
// is bypassed so materializing does not disturb a training run's residency.
func (m *OOCMatrix) Materialize() (*Matrix, error) {
	var nnz int64
	for _, b := range m.blocks {
		nnz += b.nnz
	}
	out := &Matrix{
		RowPtr: make([]int64, 1, m.rows+1),
		ColIdx: make([]int32, 0, nnz),
		Val:    make([]float64, 0, nnz),
		Cols:   m.cols,
	}
	for bi := range m.blocks {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, fmt.Errorf("sparse: ooc matrix used after Close")
		}
		blk, err := m.readBlock(bi)
		m.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("sparse: ooc block %d: %w", bi, err)
		}
		base := int64(len(out.Val))
		for k := 1; k <= blk.Rows(); k++ {
			out.RowPtr = append(out.RowPtr, base+blk.RowPtr[k])
		}
		out.ColIdx = append(out.ColIdx, blk.ColIdx...)
		out.Val = append(out.Val, blk.Val...)
	}
	return out, nil
}

// Close drops the resident cache and removes the spill file. The matrix
// must not be used afterwards.
func (m *OOCMatrix) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	m.resident = nil
	m.ll = nil
	m.residentBytes = 0
	err := m.f.Close()
	if rmErr := os.Remove(m.path); err == nil {
		err = rmErr
	}
	return err
}

// SpillPath returns the path of the spill file (tests only).
func (m *OOCMatrix) SpillPath() string { return m.path }
