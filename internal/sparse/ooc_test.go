package sparse

import (
	"math"
	"math/rand"
	"os"
	"sync"
	"testing"
)

// randomCSR builds a random sparse matrix with the given shape.
func randomCSR(t *testing.T, rows, cols int, density float64, seed int64) *Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				b.Add(j, rng.NormFloat64())
			}
		}
		b.EndRow()
	}
	m := b.Build()
	m.Cols = cols
	return m
}

// spill writes m into an OOCMatrix in blocks of blockRows under the budget.
func spill(t *testing.T, m *Matrix, blockRows int, budget int64) *OOCMatrix {
	t.Helper()
	w, err := NewOOCWriter(t.TempDir(), budget)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < m.Rows(); lo += blockRows {
		hi := min(lo+blockRows, m.Rows())
		blk, err := m.RowRangeView(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	ooc, err := w.Finish(m.Cols)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ooc.Close() })
	return ooc
}

func rowsEqual(a, b Row) bool {
	if len(a.Idx) != len(b.Idx) {
		return false
	}
	for k := range a.Idx {
		if a.Idx[k] != b.Idx[k] || math.Float64bits(a.Val[k]) != math.Float64bits(b.Val[k]) {
			return false
		}
	}
	return true
}

// TestOOCRowParity checks every row of the spilled matrix against the
// in-memory original across block sizes and budgets, including budgets far
// smaller than the payload (forcing evictions on every pass).
func TestOOCRowParity(t *testing.T) {
	m := randomCSR(t, 237, 40, 0.15, 1)
	for _, blockRows := range []int{1, 7, 64, 1000} {
		for _, budget := range []int64{0, 4 << 10, 1 << 30} {
			ooc := spill(t, m, blockRows, budget)
			if ooc.Rows() != m.Rows() || ooc.Dim() != m.Cols {
				t.Fatalf("blockRows=%d: shape %dx%d, want %dx%d",
					blockRows, ooc.Rows(), ooc.Dim(), m.Rows(), m.Cols)
			}
			// Two passes: cold, then again so the LRU is exercised with and
			// without residency.
			for pass := 0; pass < 2; pass++ {
				for i := 0; i < m.Rows(); i++ {
					if !rowsEqual(m.RowView(i), ooc.RowView(i)) {
						t.Fatalf("blockRows=%d budget=%d pass=%d: row %d differs",
							blockRows, budget, pass, i)
					}
				}
			}
			loads, hits, _ := ooc.Stats()
			if loads == 0 {
				t.Fatalf("blockRows=%d budget=%d: no block loads recorded", blockRows, budget)
			}
			if budget == 1<<30 && hits == 0 && ooc.Blocks() > 0 {
				t.Fatalf("blockRows=%d: unlimited budget recorded no hits", blockRows)
			}
		}
	}
}

// TestOOCBudgetBoundsResidency asserts the eviction invariant: the resident
// set never exceeds max(budget, largest single block).
func TestOOCBudgetBoundsResidency(t *testing.T) {
	m := randomCSR(t, 400, 60, 0.2, 2)
	const blockRows = 32
	var maxBlock int64
	for lo := 0; lo < m.Rows(); lo += blockRows {
		hi := min(lo+blockRows, m.Rows())
		nnz := m.RowPtr[hi] - m.RowPtr[lo]
		if b := 8*int64(hi-lo+1) + 12*nnz; b > maxBlock {
			maxBlock = b
		}
	}
	budget := 3 * maxBlock / 2
	ooc := spill(t, m, blockRows, budget)
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 5000; k++ {
		i := rng.Intn(m.Rows())
		ooc.RowView(i)
		if r := ooc.ResidentBytes(); r > budget && r > maxBlock {
			t.Fatalf("resident %d exceeds budget %d and max block %d", r, budget, maxBlock)
		}
	}
	if _, _, ev := ooc.Stats(); ev == 0 {
		t.Fatal("random access under a tight budget recorded no evictions")
	}
}

// TestOOCMaterialize checks the spliced full matrix is bit-identical to the
// original, including structural validation.
func TestOOCMaterialize(t *testing.T) {
	m := randomCSR(t, 123, 31, 0.25, 4)
	ooc := spill(t, m, 17, 1<<20)
	got, err := ooc.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Rows() != m.Rows() || got.Cols != m.Cols || got.NNZ() != m.NNZ() {
		t.Fatalf("shape/nnz mismatch: %dx%d/%d vs %dx%d/%d",
			got.Rows(), got.Cols, got.NNZ(), m.Rows(), m.Cols, m.NNZ())
	}
	for i := 0; i < m.Rows(); i++ {
		if !rowsEqual(m.RowView(i), got.RowView(i)) {
			t.Fatalf("row %d differs after materialize", i)
		}
	}
}

// TestOOCSquaredNorms checks the generic norm pass matches the in-memory
// method bit-for-bit (the linear solver's q_ii depends on it).
func TestOOCSquaredNorms(t *testing.T) {
	m := randomCSR(t, 90, 25, 0.3, 5)
	ooc := spill(t, m, 11, 0)
	want := m.SquaredNorms()
	got := SquaredNormsOf(ooc)
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("norm %d: %v != %v", i, got[i], want[i])
		}
	}
	if gm := SquaredNormsOf(m); math.Float64bits(gm[7]) != math.Float64bits(want[7]) {
		t.Fatal("SquaredNormsOf(Matrix) diverges from SquaredNorms")
	}
}

// TestOOCConcurrentReads hammers RowView from many goroutines under a tight
// budget; run with -race this proves eviction never invalidates a view.
func TestOOCConcurrentReads(t *testing.T) {
	m := randomCSR(t, 256, 30, 0.2, 6)
	ooc := spill(t, m, 16, 2<<10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < 2000; k++ {
				i := rng.Intn(m.Rows())
				r := ooc.RowView(i)
				if !rowsEqual(m.RowView(i), r) {
					t.Errorf("goroutine %d: row %d differs", seed, i)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestOOCClose checks Close removes the spill file and further use panics.
func TestOOCClose(t *testing.T) {
	m := randomCSR(t, 20, 10, 0.5, 7)
	w, err := NewOOCWriter(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBlock(m); err != nil {
		t.Fatal(err)
	}
	ooc, err := w.Finish(m.Cols)
	if err != nil {
		t.Fatal(err)
	}
	path := ooc.SpillPath()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("spill file missing before Close: %v", err)
	}
	if err := ooc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ooc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("spill file still present after Close: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RowView after Close did not panic")
		}
	}()
	ooc.RowView(0)
}

// TestOOCEmpty checks a writer with no rows fails cleanly.
func TestOOCEmpty(t *testing.T) {
	w, err := NewOOCWriter(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(0); err == nil {
		t.Fatal("Finish with no rows succeeded")
	}
}
