package sparse

import (
	"math"
	"testing"
)

func TestDotDense(t *testing.T) {
	m := FromDense([][]float64{{1, 0, 2}, {0, 3, 0}})
	dense := []float64{0.5, -1, 4}
	if got := DotDense(m.RowView(0), dense); got != 0.5+8 {
		t.Fatalf("DotDense row0 = %v, want 8.5", got)
	}
	if got := DotDense(m.RowView(1), dense); got != -3 {
		t.Fatalf("DotDense row1 = %v, want -3", got)
	}
	// Shorter dense vector: out-of-range indices contribute nothing.
	if got := DotDense(m.RowView(0), dense[:1]); got != 0.5 {
		t.Fatalf("DotDense truncated = %v, want 0.5", got)
	}
	if got := DotDense(Row{}, dense); got != 0 {
		t.Fatalf("DotDense empty = %v, want 0", got)
	}
}

func TestAddScaledTo(t *testing.T) {
	m := FromDense([][]float64{{1, 0, 2}})
	dense := []float64{1, 1, 1}
	AddScaledTo(m.RowView(0), dense, 2)
	want := []float64{3, 1, 5}
	for i := range want {
		if math.Abs(dense[i]-want[i]) > 1e-15 {
			t.Fatalf("dense = %v, want %v", dense, want)
		}
	}
	// Accumulating -1x undoes a +1x pass.
	AddScaledTo(m.RowView(0), dense, 1)
	AddScaledTo(m.RowView(0), dense, -1)
	for i := range want {
		if math.Abs(dense[i]-want[i]) > 1e-15 {
			t.Fatalf("after +1/-1 round trip dense = %v, want %v", dense, want)
		}
	}
	// Shorter accumulator: out-of-range indices are ignored, in-range ones land.
	short := []float64{0}
	AddScaledTo(m.RowView(0), short, 3)
	if short[0] != 3 {
		t.Fatalf("short accumulator = %v, want [3]", short)
	}
}
