package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func denseDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// randomDense builds a random dense matrix with the given density.
func randomDense(rng *rand.Rand, rows, cols int, density float64) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			if rng.Float64() < density {
				m[i][j] = rng.NormFloat64()
			}
		}
	}
	return m
}

func TestFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := randomDense(rng, 17, 9, 0.3)
	m := FromDense(d)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	back := m.ToDense()
	for i := range d {
		for j := range d[i] {
			if d[i][j] != back[i][j] {
				t.Fatalf("round trip mismatch at (%d,%d): %v vs %v", i, j, d[i][j], back[i][j])
			}
		}
	}
}

func TestDotMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := randomDense(rng, 20, 15, 0.4)
	m := FromDense(d)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Rows(); j++ {
			got := m.Dot(i, j)
			want := denseDot(d[i], d[j])
			if !almostEqual(got, want, 1e-12) {
				t.Fatalf("Dot(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestSquaredNormAndDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randomDense(rng, 12, 8, 0.5)
	m := FromDense(d)
	norms := m.SquaredNorms()
	for i := 0; i < m.Rows(); i++ {
		if !almostEqual(norms[i], denseDot(d[i], d[i]), 1e-12) {
			t.Fatalf("norm %d mismatch", i)
		}
		for j := 0; j < m.Rows(); j++ {
			// ||x-y||^2 == ||x||^2 + ||y||^2 - 2<x,y>
			direct := m.SquaredDistance(i, j)
			decomp := norms[i] + norms[j] - 2*m.Dot(i, j)
			if !almostEqual(direct, decomp, 1e-10) {
				t.Fatalf("distance decomposition mismatch (%d,%d): %v vs %v", i, j, direct, decomp)
			}
		}
	}
}

func TestSquaredDistanceSelfIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := FromDense(randomDense(rng, 10, 6, 0.5))
	for i := 0; i < m.Rows(); i++ {
		if d := m.SquaredDistance(i, i); d != 0 {
			t.Fatalf("SquaredDistance(%d,%d) = %v, want 0", i, i, d)
		}
	}
}

func TestSubMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randomDense(rng, 25, 7, 0.3)
	m := FromDense(d)
	sub, err := m.SubMatrix(5, 15)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("sub Validate: %v", err)
	}
	if sub.Rows() != 10 {
		t.Fatalf("sub rows = %d, want 10", sub.Rows())
	}
	back := sub.ToDense()
	for i := 0; i < 10; i++ {
		for j := 0; j < 7; j++ {
			if back[i][j] != d[i+5][j] {
				t.Fatalf("sub mismatch at (%d,%d)", i, j)
			}
		}
	}
	if _, err := m.SubMatrix(-1, 3); err == nil {
		t.Fatal("want error for negative lo")
	}
	if _, err := m.SubMatrix(3, 26); err == nil {
		t.Fatal("want error for hi out of range")
	}
	if _, err := m.SubMatrix(5, 4); err == nil {
		t.Fatal("want error for hi < lo")
	}
}

func TestSubMatrixEmpty(t *testing.T) {
	m := FromDense([][]float64{{1, 0}, {0, 2}})
	sub, err := m.SubMatrix(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Rows() != 0 || sub.NNZ() != 0 {
		t.Fatalf("empty sub: rows=%d nnz=%d", sub.Rows(), sub.NNZ())
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("empty sub Validate: %v", err)
	}
}

func TestSelectRows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := randomDense(rng, 20, 5, 0.5)
	m := FromDense(d)
	sel, err := m.SelectRows([]int{3, 17, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sel.Validate(); err != nil {
		t.Fatal(err)
	}
	back := sel.ToDense()
	for k, r := range []int{3, 17, 0, 3} {
		for j := 0; j < 5; j++ {
			if back[k][j] != d[r][j] {
				t.Fatalf("SelectRows mismatch at selected %d col %d", k, j)
			}
		}
	}
	if _, err := m.SelectRows([]int{20}); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestAppend(t *testing.T) {
	a := FromDense([][]float64{{1, 0, 2}, {0, 3, 0}})
	b := FromDense([][]float64{{0, 0, 4}})
	ab := Append(a, b)
	if err := ab.Validate(); err != nil {
		t.Fatal(err)
	}
	if ab.Rows() != 3 || ab.NNZ() != 4 {
		t.Fatalf("rows=%d nnz=%d", ab.Rows(), ab.NNZ())
	}
	d := ab.ToDense()
	if d[2][2] != 4 || d[0][0] != 1 || d[1][1] != 3 {
		t.Fatalf("Append content wrong: %v", d)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := FromDense([][]float64{{1, 2}, {3, 4}})
	cases := []struct {
		name   string
		mutate func(*Matrix)
	}{
		{"rowptr first", func(m *Matrix) { m.RowPtr[0] = 1 }},
		{"rowptr last", func(m *Matrix) { m.RowPtr[len(m.RowPtr)-1]++ }},
		{"unsorted cols", func(m *Matrix) { m.ColIdx[0], m.ColIdx[1] = m.ColIdx[1], m.ColIdx[0] }},
		{"col out of range", func(m *Matrix) { m.ColIdx[1] = 99 }},
		{"nan value", func(m *Matrix) { m.Val[0] = math.NaN() }},
		{"inf value", func(m *Matrix) { m.Val[2] = math.Inf(1) }},
	}
	for _, tc := range cases {
		m := good.Clone()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupted matrix", tc.name)
		}
	}
}

func TestDensityAndAvgNNZ(t *testing.T) {
	m := FromDense([][]float64{{1, 0, 0, 0}, {1, 2, 0, 0}})
	if got := m.Density(); !almostEqual(got, 3.0/8.0, 1e-15) {
		t.Fatalf("Density = %v", got)
	}
	if got := m.AvgRowNNZ(); !almostEqual(got, 1.5, 1e-15) {
		t.Fatalf("AvgRowNNZ = %v", got)
	}
}

func TestByteSize(t *testing.T) {
	m := FromDense([][]float64{{1, 2}, {3, 0}})
	want := 8*3 + 4*3 + 8*3
	if got := m.ByteSize(); got != want {
		t.Fatalf("ByteSize = %d, want %d", got, want)
	}
}

func TestBuilderDuplicatesAndOrder(t *testing.T) {
	b := NewBuilder(0)
	b.Add(5, 1.0)
	b.Add(2, 2.0)
	b.Add(5, 3.0) // duplicate column: summed
	b.EndRow()
	b.EndRow() // empty row
	b.Add(0, -1)
	b.EndRow()
	m := b.Build()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols != 6 {
		t.Fatalf("rows=%d cols=%d", m.Rows(), m.Cols)
	}
	r0 := m.RowView(0)
	if len(r0.Idx) != 2 || r0.Idx[0] != 2 || r0.Idx[1] != 5 || r0.Val[1] != 4.0 {
		t.Fatalf("row0 = %+v", r0)
	}
	if m.RowNNZ(1) != 0 {
		t.Fatalf("row1 nnz = %d", m.RowNNZ(1))
	}
}

func TestFromTriplets(t *testing.T) {
	ts := []Triplet{{2, 1, 5}, {0, 0, 1}, {2, 1, 2}, {0, 3, 7}}
	m, err := FromTriplets(4, 4, ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	d := m.ToDense()
	if d[0][0] != 1 || d[0][3] != 7 || d[2][1] != 7 {
		t.Fatalf("content: %v", d)
	}
	if m.Rows() != 4 {
		t.Fatalf("rows = %d", m.Rows())
	}
	if _, err := FromTriplets(2, 2, []Triplet{{2, 0, 1}}); err == nil {
		t.Fatal("want row range error")
	}
	if _, err := FromTriplets(2, 2, []Triplet{{0, 2, 1}}); err == nil {
		t.Fatal("want col range error")
	}
}

// Property: for random sparse matrices, Dot is symmetric and the
// Cauchy-Schwarz inequality holds.
func TestDotPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(8)
		cols := 1 + rng.Intn(12)
		m := FromDense(randomDense(rng, rows, cols, 0.4))
		if err := m.Validate(); err != nil {
			return false
		}
		i, j := rng.Intn(rows), rng.Intn(rows)
		dij, dji := m.Dot(i, j), m.Dot(j, i)
		if dij != dji {
			return false
		}
		// Cauchy-Schwarz with tolerance.
		lhs := dij * dij
		rhs := m.SquaredNorm(i) * m.SquaredNorm(j)
		return lhs <= rhs*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SubMatrix + Append reconstructs the original matrix.
func TestSplitAppendRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(10)
		cols := 1 + rng.Intn(6)
		m := FromDense(randomDense(rng, rows, cols, 0.5))
		cut := rng.Intn(rows + 1)
		a, err1 := m.SubMatrix(0, cut)
		b, err2 := m.SubMatrix(cut, rows)
		if err1 != nil || err2 != nil {
			return false
		}
		re := Append(a, b)
		if re.Rows() != m.Rows() || re.NNZ() != m.NNZ() {
			return false
		}
		da, db := m.ToDense(), re.ToDense()
		for i := range da {
			for j := range da[i] {
				if da[i][j] != db[i][j] {
					return false
				}
			}
		}
		return re.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDotRows(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := FromDense(randomDense(rng, 2, 1000, 0.1))
	r0, r1 := m.RowView(0), m.RowView(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DotRows(r0, r1)
	}
}

func TestRowRangeView(t *testing.T) {
	m := FromDense([][]float64{{1, 0, 2}, {0, 3, 0}, {4, 5, 6}, {0, 0, 7}})
	v, err := m.RowRangeView(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Rows() != 2 || v.Cols != m.Cols {
		t.Fatalf("view shape %dx%d", v.Rows(), v.Cols)
	}
	for k := 0; k < v.Rows(); k++ {
		got, want := v.RowView(k), m.RowView(1+k)
		if len(got.Idx) != len(want.Idx) {
			t.Fatalf("view row %d nnz %d != %d", k, len(got.Idx), len(want.Idx))
		}
		for j := range got.Idx {
			if got.Idx[j] != want.Idx[j] || got.Val[j] != want.Val[j] {
				t.Fatalf("view row %d entry %d differs", k, j)
			}
		}
		if v.SquaredNorm(k) != m.SquaredNorm(1+k) {
			t.Fatalf("view row %d norm differs", k)
		}
	}
	// Views share storage: no copying happened.
	if &v.Val[0] != &m.Val[0] {
		t.Fatal("view copied values")
	}
	// Empty and full ranges are fine; out-of-range is rejected.
	if full, err := m.RowRangeView(0, m.Rows()); err != nil || full.Rows() != m.Rows() {
		t.Fatalf("full view: %v", err)
	}
	if empty, err := m.RowRangeView(2, 2); err != nil || empty.Rows() != 0 {
		t.Fatalf("empty view: %v", err)
	}
	for _, bad := range [][2]int{{-1, 2}, {3, 2}, {0, 5}} {
		if _, err := m.RowRangeView(bad[0], bad[1]); err == nil {
			t.Fatalf("bounds %v accepted", bad)
		}
	}
}

func TestGatherDenseMatchesDotDense(t *testing.T) {
	rows := []Row{
		{},                                     // empty row
		{Idx: []int32{3}, Val: []float64{2.5}}, // single entry
		{Idx: []int32{0, 2, 4}, Val: []float64{1, -2, 0.5}},    // in range
		{Idx: []int32{1, 4, 9}, Val: []float64{3, 1.5, -0.25}}, // reaches past dense
	}
	dense := []float64{1, -1, 2, 0.5, -3}
	other := []float64{0.5, 2, -1, 4, 1}
	for i, r := range rows {
		want := DotDense(r, dense)
		if got := GatherDense(r, dense); got != want {
			t.Fatalf("row %d: GatherDense = %v, DotDense = %v", i, got, want)
		}
		wa, wb := DotDense(r, dense), DotDense(r, other)
		ga, gb := GatherDense2(r, dense, other)
		if ga != wa || gb != wb {
			t.Fatalf("row %d: GatherDense2 = (%v,%v), want (%v,%v)", i, ga, gb, wa, wb)
		}
	}
}

// The gather over a dense scatter of row b must reproduce the two-pointer
// merge bit for bit — the identity the kernel row engine's exactness rests
// on (non-shared indices contribute exact zeros).
func TestGatherDenseMatchesDotRows(t *testing.T) {
	a := Row{Idx: []int32{0, 3, 5, 8}, Val: []float64{0.1, -2.2, 3.3, 0.04}}
	b := Row{Idx: []int32{1, 3, 8, 9}, Val: []float64{5, 7, -0.5, 2}}
	dense := make([]float64, 10)
	for k, c := range b.Idx {
		dense[c] = b.Val[k]
	}
	if got, want := GatherDense(a, dense), DotRows(a, b); got != want {
		t.Fatalf("GatherDense = %v, DotRows = %v", got, want)
	}
}
