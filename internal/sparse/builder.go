package sparse

import (
	"fmt"
	"sort"
)

// Builder incrementally assembles a CSR matrix one row at a time.
// Entries within a row may be added in any order; EndRow sorts them and
// coalesces duplicate column indices by summing.
type Builder struct {
	rowPtr []int64
	colIdx []int32
	val    []float64
	cols   int

	// pending entries for the current row
	curIdx []int32
	curVal []float64
}

// NewBuilder returns a Builder. cols may be 0, in which case the final
// column count is inferred from the maximum index seen.
func NewBuilder(cols int) *Builder {
	return &Builder{rowPtr: []int64{0}, cols: cols}
}

// Add records entry (col, v) in the current row.
func (b *Builder) Add(col int, v float64) {
	b.curIdx = append(b.curIdx, int32(col))
	b.curVal = append(b.curVal, v)
	if col+1 > b.cols {
		b.cols = col + 1
	}
}

// EndRow finishes the current row: entries are sorted by column and
// duplicates summed. Zero values are kept (libsvm files may contain
// explicit zeros and dropping them would change NNZ accounting).
func (b *Builder) EndRow() {
	if len(b.curIdx) > 0 {
		perm := make([]int, len(b.curIdx))
		for i := range perm {
			perm[i] = i
		}
		sort.Slice(perm, func(i, j int) bool { return b.curIdx[perm[i]] < b.curIdx[perm[j]] })
		var lastCol int32 = -1
		for _, pi := range perm {
			c, v := b.curIdx[pi], b.curVal[pi]
			if c == lastCol {
				b.val[len(b.val)-1] += v
				continue
			}
			b.colIdx = append(b.colIdx, c)
			b.val = append(b.val, v)
			lastCol = c
		}
		b.curIdx = b.curIdx[:0]
		b.curVal = b.curVal[:0]
	}
	b.rowPtr = append(b.rowPtr, int64(len(b.val)))
}

// AddRow appends a whole row given parallel index/value slices.
func (b *Builder) AddRow(idx []int32, val []float64) {
	for i := range idx {
		b.Add(int(idx[i]), val[i])
	}
	b.EndRow()
}

// Rows returns the number of completed rows so far.
func (b *Builder) Rows() int { return len(b.rowPtr) - 1 }

// Build finalizes the matrix. The builder must not be reused afterwards.
func (b *Builder) Build() *Matrix {
	return &Matrix{RowPtr: b.rowPtr, ColIdx: b.colIdx, Val: b.val, Cols: b.cols}
}

// FromDense converts a dense row-major matrix to CSR, dropping exact zeros.
func FromDense(rows [][]float64) *Matrix {
	cols := 0
	for _, r := range rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	b := NewBuilder(cols)
	for _, r := range rows {
		for j, v := range r {
			if v != 0 {
				b.Add(j, v)
			}
		}
		b.EndRow()
	}
	return b.Build()
}

// ToDense expands the matrix to a dense row-major representation.
// Intended for tests and small examples only.
func (m *Matrix) ToDense() [][]float64 {
	out := make([][]float64, m.Rows())
	for i := range out {
		out[i] = make([]float64, m.Cols)
		r := m.RowView(i)
		for k, c := range r.Idx {
			out[i][c] = r.Val[k]
		}
	}
	return out
}

// Triplet is a single (row, col, value) entry used by FromTriplets.
type Triplet struct {
	Row, Col int
	Val      float64
}

// FromTriplets builds a CSR matrix with the given number of rows from an
// arbitrary-order triplet list. Duplicate (row, col) entries are summed.
func FromTriplets(rows, cols int, ts []Triplet) (*Matrix, error) {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows {
			return nil, fmt.Errorf("sparse: triplet row %d out of range [0,%d)", t.Row, rows)
		}
		if t.Col < 0 || (cols > 0 && t.Col >= cols) {
			return nil, fmt.Errorf("sparse: triplet col %d out of range [0,%d)", t.Col, cols)
		}
	}
	sorted := append([]Triplet(nil), ts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	b := NewBuilder(cols)
	cur := 0
	for _, t := range sorted {
		for cur < t.Row {
			b.EndRow()
			cur++
		}
		b.Add(t.Col, t.Val)
	}
	for cur < rows {
		b.EndRow()
		cur++
	}
	m := b.Build()
	if cols > m.Cols {
		m.Cols = cols
	}
	return m, nil
}
