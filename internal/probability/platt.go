// Package probability fits Platt-style probabilistic outputs for SVM
// decision values: P(y=+1 | f) = 1/(1 + exp(A*f + B)), with (A, B)
// estimated by the regularized maximum-likelihood procedure of Lin, Lin &
// Weng ("A note on Platt's probabilistic outputs for support vector
// machines", 2007) — the algorithm inside libsvm's -b 1. The paper's
// pipeline produces hard classifiers; this package adds the calibrated
// confidence scores downstream applications usually want.
package probability

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cv"
	"repro/internal/model"
	"repro/internal/sparse"
)

// Sigmoid holds fitted Platt parameters.
type Sigmoid struct {
	A, B float64
}

// P returns P(y=+1 | decision value f).
func (s Sigmoid) P(f float64) float64 {
	fApB := s.A*f + s.B
	// Stable formulation from the reference implementation.
	if fApB >= 0 {
		return math.Exp(-fApB) / (1 + math.Exp(-fApB))
	}
	return 1 / (1 + math.Exp(fApB))
}

// Fit estimates the sigmoid from decision values and ±1 labels using
// Newton's method with backtracking line search, exactly following the
// reference pseudo-code (including the regularized targets that prevent
// overconfident probabilities on separable data).
func Fit(decisionValues, y []float64) (Sigmoid, error) {
	if len(decisionValues) != len(y) {
		return Sigmoid{}, fmt.Errorf("probability: %d decision values for %d labels", len(decisionValues), len(y))
	}
	if len(y) == 0 {
		return Sigmoid{}, errors.New("probability: empty input")
	}
	var nPos, nNeg float64
	for _, v := range y {
		switch v {
		case 1:
			nPos++
		case -1:
			nNeg++
		default:
			return Sigmoid{}, fmt.Errorf("probability: label %v, want +1 or -1", v)
		}
	}
	if nPos == 0 || nNeg == 0 {
		return Sigmoid{}, errors.New("probability: need both classes to calibrate")
	}

	const (
		maxIter = 100
		minStep = 1e-10
		sigma   = 1e-12 // Hessian ridge
		epsFun  = 1e-5
	)
	hiTarget := (nPos + 1) / (nPos + 2)
	loTarget := 1 / (nNeg + 2)
	n := len(y)
	t := make([]float64, n)
	for i := range t {
		if y[i] > 0 {
			t[i] = hiTarget
		} else {
			t[i] = loTarget
		}
	}

	a, b := 0.0, math.Log((nNeg+1)/(nPos+1))
	fval := 0.0
	for i := 0; i < n; i++ {
		fApB := decisionValues[i]*a + b
		if fApB >= 0 {
			fval += t[i]*fApB + math.Log1p(math.Exp(-fApB))
		} else {
			fval += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		// Gradient and Hessian.
		h11, h22, h21 := sigma, sigma, 0.0
		g1, g2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			fApB := decisionValues[i]*a + b
			var p, q float64
			if fApB >= 0 {
				p = math.Exp(-fApB) / (1 + math.Exp(-fApB))
				q = 1 / (1 + math.Exp(-fApB))
			} else {
				p = 1 / (1 + math.Exp(fApB))
				q = math.Exp(fApB) / (1 + math.Exp(fApB))
			}
			d2 := p * q
			h11 += decisionValues[i] * decisionValues[i] * d2
			h22 += d2
			h21 += decisionValues[i] * d2
			d1 := t[i] - p
			g1 += decisionValues[i] * d1
			g2 += d1
		}
		if math.Abs(g1) < epsFun && math.Abs(g2) < epsFun {
			break
		}
		// Newton direction.
		det := h11*h22 - h21*h21
		dA := -(h22*g1 - h21*g2) / det
		dB := -(-h21*g1 + h11*g2) / det
		gd := g1*dA + g2*dB

		// Backtracking line search.
		step := 1.0
		for step >= minStep {
			newA, newB := a+step*dA, b+step*dB
			newF := 0.0
			for i := 0; i < n; i++ {
				fApB := decisionValues[i]*newA + newB
				if fApB >= 0 {
					newF += t[i]*fApB + math.Log1p(math.Exp(-fApB))
				} else {
					newF += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
				}
			}
			if newF < fval+1e-4*step*gd {
				a, b, fval = newA, newB, newF
				break
			}
			step /= 2
		}
		if step < minStep {
			break // line search failed: accept current point
		}
	}
	return Sigmoid{A: a, B: b}, nil
}

// Calibrate fits a sigmoid for a trained model using a held-out labeled
// set (do not reuse the training set: its decision values are biased
// toward ±1, which is why libsvm calibrates with internal cross
// validation).
func Calibrate(m *model.Model, x *sparse.Matrix, y []float64) (Sigmoid, error) {
	if x.Rows() != len(y) {
		return Sigmoid{}, fmt.Errorf("probability: %d rows for %d labels", x.Rows(), len(y))
	}
	// Score the calibration set through the shared batch hot loop.
	dv := m.DecisionValues(x, 0)
	return Fit(dv, y)
}

// CalibrateCV fits a sigmoid from out-of-fold decision values: for each
// fold, a model trained on the remaining folds scores the held-out fold.
// This is how libsvm's -b 1 avoids the bias of calibrating on in-sample
// decision values (which cluster at ±1 on the support vectors).
func CalibrateCV(x *sparse.Matrix, y []float64, splits []cv.Split, train cv.TrainFunc) (Sigmoid, error) {
	if len(splits) == 0 {
		return Sigmoid{}, errors.New("probability: no folds")
	}
	dv := make([]float64, 0, len(y))
	lab := make([]float64, 0, len(y))
	for f, sp := range splits {
		trX, err := x.SelectRows(sp.TrainIdx)
		if err != nil {
			return Sigmoid{}, fmt.Errorf("probability: fold %d: %w", f, err)
		}
		trY := make([]float64, len(sp.TrainIdx))
		for k, i := range sp.TrainIdx {
			trY[k] = y[i]
		}
		m, err := train(trX, trY)
		if err != nil {
			return Sigmoid{}, fmt.Errorf("probability: fold %d: %w", f, err)
		}
		teX, err := x.SelectRows(sp.TestIdx)
		if err != nil {
			return Sigmoid{}, fmt.Errorf("probability: fold %d: %w", f, err)
		}
		dv = append(dv, m.DecisionValues(teX, 0)...)
		for _, i := range sp.TestIdx {
			lab = append(lab, y[i])
		}
	}
	return Fit(dv, lab)
}
