package probability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
)

func TestSigmoidP(t *testing.T) {
	s := Sigmoid{A: -1, B: 0} // P = 1/(1+exp(-f)): logistic in f
	if p := s.P(0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("P(0) = %v, want 0.5", p)
	}
	if p := s.P(10); p < 0.99 {
		t.Fatalf("P(10) = %v, want ~1", p)
	}
	if p := s.P(-10); p > 0.01 {
		t.Fatalf("P(-10) = %v, want ~0", p)
	}
	// Monotone increasing in f for A < 0.
	prev := -1.0
	for f := -5.0; f <= 5; f += 0.25 {
		p := s.P(f)
		if p < prev {
			t.Fatalf("not monotone at f=%v", f)
		}
		prev = p
	}
}

func TestFitRecoversLogisticData(t *testing.T) {
	// Labels drawn from a known sigmoid: Fit should recover A, B roughly.
	rng := rand.New(rand.NewSource(1))
	trueS := Sigmoid{A: -2, B: 0.5}
	n := 5000
	f := make([]float64, n)
	y := make([]float64, n)
	for i := range f {
		f[i] = rng.NormFloat64() * 2
		if rng.Float64() < trueS.P(f[i]) {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	got, err := Fit(f, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A-trueS.A) > 0.3 || math.Abs(got.B-trueS.B) > 0.3 {
		t.Fatalf("fit = %+v, want ~%+v", got, trueS)
	}
}

func TestFitSeparableDataIsNotOverconfident(t *testing.T) {
	// Perfectly separated decision values: the regularized targets must
	// keep probabilities strictly inside (0, 1).
	f := []float64{-3, -2, -1.5, 1.5, 2, 3}
	y := []float64{-1, -1, -1, 1, 1, 1}
	s, err := Fit(f, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f {
		p := s.P(v)
		if p <= 0 || p >= 1 {
			t.Fatalf("P(%v) = %v out of (0,1)", v, p)
		}
	}
	if s.P(3) <= s.P(-3) {
		t.Fatalf("orientation wrong: P(3)=%v P(-3)=%v", s.P(3), s.P(-3))
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1, -1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1, 1}); err == nil {
		t.Error("single class accepted")
	}
	if _, err := Fit([]float64{1}, []float64{0.5}); err == nil {
		t.Error("non ±1 label accepted")
	}
}

func TestCalibrateEndToEnd(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	m, _, err := core.TrainParallel(ds.X, ds.Y, 2, core.Config{
		Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-3, Heuristic: core.Multi5pc,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Calibrate(m, ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}
	// Probabilities must agree with the hard classifier on confident
	// points and be well calibrated on average: mean P over true
	// positives should be clearly above 0.5, below for negatives.
	var sumPos, sumNeg float64
	var nPos, nNeg int
	for i := 0; i < ds.TestX.Rows(); i++ {
		p := s.P(m.DecisionValue(ds.TestX.RowView(i)))
		if ds.TestY[i] > 0 {
			sumPos += p
			nPos++
		} else {
			sumNeg += p
			nNeg++
		}
	}
	if meanPos := sumPos / float64(nPos); meanPos < 0.8 {
		t.Fatalf("mean P(+|positive) = %v", meanPos)
	}
	if meanNeg := sumNeg / float64(nNeg); meanNeg > 0.2 {
		t.Fatalf("mean P(+|negative) = %v", meanNeg)
	}
	if _, err := Calibrate(m, ds.TestX, ds.TestY[:3]); err == nil {
		t.Error("mismatched labels accepted")
	}
}

// Property: fitted probabilities are always finite and inside [0, 1], and
// the sigmoid respects the sign convention (larger f => larger P) whenever
// the data is positively oriented.
func TestFitQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		fv := make([]float64, n)
		y := make([]float64, n)
		pos := false
		neg := false
		for i := range fv {
			fv[i] = rng.NormFloat64() * 3
			// Noisy but positively oriented labels.
			if rng.Float64() < 1/(1+math.Exp(-fv[i])) {
				y[i] = 1
				pos = true
			} else {
				y[i] = -1
				neg = true
			}
		}
		if !pos || !neg {
			return true // degenerate draw; Fit would reject it
		}
		s, err := Fit(fv, y)
		if err != nil {
			return false
		}
		for _, v := range fv {
			p := s.P(v)
			if math.IsNaN(p) || p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
