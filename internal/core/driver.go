package core

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/sparse"
)

// TrainParallel partitions (x, y) over p ranks, runs the distributed
// solver, and returns rank 0's model plus the (rank-identical) statistics.
// It is the single-call entry point used by the examples, CLIs and tests;
// code that needs to compose the solver with other communication uses
// Train directly inside its own mpi.Run.
func TrainParallel(x *sparse.Matrix, y []float64, p int, cfg Config) (*model.Model, *Stats, error) {
	m, st, _, err := TrainParallelTimed(x, y, p, cfg, mpi.NetModel{})
	return m, st, err
}

// TrainParallelTimed is TrainParallel under a network time model; it also
// returns the modeled makespan (the maximum rank virtual time). With
// cfg.Lambda > 0 the makespan includes modeled compute time, making it
// directly comparable to the analytic perfmodel predictions.
func TrainParallelTimed(x *sparse.Matrix, y []float64, p int, cfg Config, net mpi.NetModel) (*model.Model, *Stats, float64, error) {
	return TrainParallelOpts(x, y, p, cfg, mpi.Options{Net: net})
}

// TrainParallelOpts is the fully-general entry point: it accepts the whole
// mpi.Options, so callers can combine the time model with fault injection
// (Options.Faults) — the path the crash-recovery tests and the svmtrain
// -inject-crash-* flags use. When checkpointing is configured and no
// dataset fingerprint was supplied, it is computed here, once, from the
// training data.
func TrainParallelOpts(x *sparse.Matrix, y []float64, p int, cfg Config, opts mpi.Options) (*model.Model, *Stats, float64, error) {
	if p <= 0 {
		return nil, nil, 0, fmt.Errorf("core: process count must be positive, got %d", p)
	}
	if p > x.Rows() {
		return nil, nil, 0, fmt.Errorf("core: more ranks (%d) than samples (%d)", p, x.Rows())
	}
	if cfg.Checkpoint != nil && cfg.CheckpointFingerprint == 0 {
		cfg.CheckpointFingerprint = ckpt.Fingerprint(x, y)
	}
	models := make([]*model.Model, p)
	stats := make([]*Stats, p)
	times, err := mpi.RunTimed(p, opts, func(c *mpi.Comm) error {
		pt, err := NewPartition(x, y, p, c.Rank())
		if err != nil {
			return err
		}
		m, st, err := Train(c, pt, cfg)
		if err != nil {
			return err
		}
		models[c.Rank()] = m
		stats[c.Rank()] = st
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return models[0], stats[0], mpi.MaxTime(times), nil
}
