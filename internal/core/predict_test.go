package core

import (
	"testing"

	"repro/internal/dataset"
)

func TestEvaluateParallelMatchesSequential(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.2)
	m, _, err := TrainParallel(ds.X, ds.Y, 2, blobCfg(ds, Multi5pc))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := m.Evaluate(ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 7} {
		par, err := EvaluateParallel(m, ds.TestX, ds.TestY, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if par != seq {
			t.Fatalf("p=%d: parallel metrics %+v != sequential %+v", p, par, seq)
		}
	}
}

func TestEvaluateParallelMorePThanRows(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.2)
	m, _, err := TrainParallel(ds.X, ds.Y, 2, blobCfg(ds, Original))
	if err != nil {
		t.Fatal(err)
	}
	small, err := ds.TestX.SubMatrix(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := EvaluateParallel(m, small, ds.TestY[:3], 50)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Total != 3 {
		t.Fatalf("total = %d", mt.Total)
	}
}

func TestEvaluateParallelValidation(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.1)
	m, _, err := TrainParallel(ds.X, ds.Y, 2, blobCfg(ds, Original))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateParallel(nil, ds.TestX, ds.TestY, 2); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := EvaluateParallel(m, ds.TestX, ds.TestY[:5], 2); err == nil {
		t.Error("mismatched labels accepted")
	}
	if _, err := EvaluateParallel(m, ds.TestX, ds.TestY, 0); err == nil {
		t.Error("p=0 accepted")
	}
}
