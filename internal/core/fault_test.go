package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/mpi"
)

// TestTrainSurvivesInjectedFault: when a rank's sends start failing
// mid-training, Train must return an error on every rank (no deadlock, no
// partial result), because the failing rank aborts the world.
func TestTrainSurvivesInjectedFault(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.15)
	cfg := blobCfg(ds, Multi5pc)
	const p = 4
	done := make(chan error, 1)
	go func() {
		opts := mpi.Options{SendFaults: map[int]int{2: 100}} // rank 2 dies after 100 sends
		_, err := mpi.RunTimed(p, opts, func(c *mpi.Comm) error {
			pt, err := NewPartition(ds.X, ds.Y, p, c.Rank())
			if err != nil {
				return err
			}
			_, _, err = Train(c, pt, cfg)
			return err
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("training succeeded despite injected send fault")
		}
		if !strings.Contains(err.Error(), "injected send fault") {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("training deadlocked after injected fault")
	}
}

// TestTrainFaultDuringReconstruction injects the fault late enough that the
// ring exchange of Algorithm 3 is in flight.
func TestTrainFaultDuringReconstruction(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.15)
	cfg := blobCfg(ds, Multi2) // aggressive: reconstructs early and often
	const p = 3
	// First count how many sends a healthy run needs, then inject at 60%.
	var healthySends int
	_, err := mpi.RunTimed(p, mpi.Options{}, func(c *mpi.Comm) error {
		pt, err := NewPartition(ds.X, ds.Y, p, c.Rank())
		if err != nil {
			return err
		}
		if _, _, err := Train(c, pt, cfg); err != nil {
			return err
		}
		if c.Rank() == 0 {
			healthySends = c.Sends()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if healthySends < 10 {
		t.Skipf("run too short to fault meaningfully (%d sends)", healthySends)
	}
	done := make(chan error, 1)
	go func() {
		opts := mpi.Options{SendFaults: map[int]int{0: healthySends * 6 / 10}}
		_, err := mpi.RunTimed(p, opts, func(c *mpi.Comm) error {
			pt, err := NewPartition(ds.X, ds.Y, p, c.Rank())
			if err != nil {
				return err
			}
			_, _, err = Train(c, pt, cfg)
			return err
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("training succeeded despite injected fault")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("training deadlocked after injected fault")
	}
}
