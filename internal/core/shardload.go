package core

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/sparse"
)

// Shard-aware loading for the distributed solver. A multi-rank run used to
// funnel the whole file through one sequential parse and then slice it;
// LoadShardPartitions instead parses the input as p byte-range shards in
// parallel (or as p pre-split shard files), composes the dataset
// fingerprint from per-shard partials — the same value a single-node load
// computes, for every shard count — and rebalances the byte-split rows onto
// the BlockRange row boundaries the solver's ownership arithmetic
// (OwnerOf) assumes. Training from the result is bit-identical to
// TrainParallel on the unsharded file.

// ShardedData is a dataset loaded shard-wise and repartitioned for p ranks.
type ShardedData struct {
	Partitions  []*Partition
	N           int    // global sample count
	Cols        int    // global feature count
	Fingerprint uint64 // composed fingerprint (== ckpt.Fingerprint of the whole)

	// X and Y are the spliced global dataset in file row order (the
	// partitions copy from it). Kept so callers can evaluate or verify
	// against the full data without re-reading the file.
	X *sparse.Matrix
	Y []float64
}

// LoadShardPartitions loads the libsvm dataset at path as p shards in
// parallel and returns rank partitions on BlockRange boundaries.
func LoadShardPartitions(path string, p int) (*ShardedData, error) {
	if p <= 0 {
		return nil, fmt.Errorf("core: process count must be positive, got %d", p)
	}
	shards, err := dataset.LoadSharded(path, p)
	if err != nil {
		return nil, err
	}
	// The fingerprint composes from per-shard partials before any
	// rebalancing: each shard hashes its rows at their global indices, the
	// sums add, and the result equals the single-node fingerprint.
	var sum uint64
	n, cols := 0, 0
	for _, s := range shards {
		sum += ckpt.PartialFingerprint(s.X, s.Y, s.Lo)
		n += s.X.Rows()
		if s.X.Cols > cols {
			cols = s.X.Cols
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("core: %s holds no samples", path)
	}
	if p > n {
		return nil, fmt.Errorf("core: more ranks (%d) than samples (%d)", p, n)
	}
	fp := ckpt.FinishFingerprint(n, cols, sum)

	// Byte-balanced shard boundaries are not the solver's row-balanced
	// BlockRange boundaries; splice and re-slice so each rank owns exactly
	// the rows OwnerOf says it does.
	x, y := dataset.ConcatShards(shards)
	parts := make([]*Partition, p)
	for q := 0; q < p; q++ {
		parts[q], err = NewPartition(x, y, p, q)
		if err != nil {
			return nil, err
		}
	}
	return &ShardedData{Partitions: parts, N: n, Cols: cols, Fingerprint: fp, X: x, Y: y}, nil
}

// TrainOpts runs the distributed solver over the loaded partitions, exactly
// as TrainParallelOpts does over an in-memory dataset. The composed
// fingerprint stamps any checkpoints, so a resume from a differently-
// sharded (or unsharded) copy of the same data is accepted, and a resume
// from mutated data is rejected.
func (d *ShardedData) TrainOpts(cfg Config, opts mpi.Options) (*model.Model, *Stats, float64, error) {
	p := len(d.Partitions)
	if cfg.Checkpoint != nil && cfg.CheckpointFingerprint == 0 {
		cfg.CheckpointFingerprint = d.Fingerprint
	}
	models := make([]*model.Model, p)
	stats := make([]*Stats, p)
	times, err := mpi.RunTimed(p, opts, func(c *mpi.Comm) error {
		m, st, err := Train(c, d.Partitions[c.Rank()], cfg)
		if err != nil {
			return err
		}
		models[c.Rank()] = m
		stats[c.Rank()] = st
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return models[0], stats[0], mpi.MaxTime(times), nil
}
