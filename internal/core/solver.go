package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ckpt"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Point-to-point tags used by the solver (collectives manage their own).
const (
	tagPairUp  = 1
	tagPairLow = 2
	tagRecon   = 3
)

// Config controls a distributed training run.
type Config struct {
	Kernel kernel.Params
	C      float64
	Eps    float64 // user-specified tolerance epsilon (Eq. 5)

	// Heuristic selects the Table II shrinking strategy; the zero value
	// is not valid — use Original for no shrinking.
	Heuristic Heuristic

	// SecondOrder switches working-set selection to libsvm's second-order
	// rule: i_up stays the worst up-side violator, but its partner
	// maximizes the analytic gain (gamma_up - gamma_j)^2 / eta_uj. Costs
	// one extra MINLOC-style Allreduce per iteration and no extra kernel
	// evaluations (K(x_up, .) values are shared between selection and the
	// gradient update). The paper evaluates the maximal-violating-pair
	// rule; this is the Keerthi et al. alternative, exposed for the
	// working-set-selection ablation.
	SecondOrder bool

	// SubsequentFixed switches the subsequent shrinking threshold from
	// the paper's default (the active working-set size, obtained with an
	// MPI_Allreduce at each shrink step) to reusing the initial
	// threshold. Exposed for the ablation bench.
	SubsequentFixed bool

	// FirstSyncFactor scales the convergence band of the first
	// synchronization in multi-reconstruction mode: phase 1 ends when
	// beta_up + 2*FirstSyncFactor*eps >= beta_low. The paper uses 10
	// (i.e. a 20*eps band, "close enough" to the 2*eps solution); 0 means
	// that default. Exposed for the ablation bench.
	FirstSyncFactor float64

	// MaxIter bounds the iteration count; 0 means a generous default.
	MaxIter int64

	// InitialAlpha warm-starts the solver from a feasible global dual
	// vector (length = total sample count, dataset row order), e.g. a
	// checkpoint's alpha. Each rank takes its partition's slice, clamps to
	// the box, rebuilds the gradients with a ring pass, and the run
	// proceeds exactly like a cold start from that point. The vector must
	// satisfy 0 <= alpha_i <= C and (globally) sum alpha_i*y_i ~= 0.
	InitialAlpha []float64

	// Checkpoint, when non-nil, makes the solver persist a coordinated
	// snapshot (barrier + rank-order gather of alpha/gamma/active at rank
	// 0) every CheckpointEvery iterations. CheckpointSeed and
	// CheckpointFingerprint are recorded in the snapshot; TrainParallelOpts
	// fills the fingerprint from the training data automatically.
	Checkpoint            *ckpt.Writer
	CheckpointEvery       int64
	CheckpointSeed        int64
	CheckpointFingerprint uint64

	// RecordTrace makes rank 0 record a Trace for the perfmodel package.
	RecordTrace bool
	// DatasetName labels the trace.
	DatasetName string

	// Lambda, when positive, charges each rank's virtual clock
	// Lambda seconds per kernel evaluation, so RunTimed makespans can be
	// compared against the analytic performance model.
	Lambda float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Eps <= 0 {
		out.Eps = 1e-3
	}
	if out.MaxIter <= 0 {
		out.MaxIter = 200_000_000
	}
	if out.Heuristic.Name == "" {
		out.Heuristic = Original
	}
	if out.FirstSyncFactor <= 0 {
		out.FirstSyncFactor = 10
	}
	return out
}

// Stats reports what a training run did. All fields are identical on every
// rank except Trace, which only rank 0 fills when requested.
type Stats struct {
	Iterations      int64
	Converged       bool
	ShrinkEvents    int
	Reconstructions int
	SVCount         int
	FinalActive     int // global active-set size at termination
	KernelEvals     uint64
	Objective       float64
	Trace           *Trace
}

// pairHalf carries one selected sample (x_up or x_low) from its owner to
// every rank, together with the scalar state the alpha update needs.
type pairHalf struct {
	Row   sparse.Row
	Norm  float64
	Y     float64
	Alpha float64
	Gamma float64
}

// ByteSize implements mpi.Sized: index+value data plus the four scalars.
func (h pairHalf) ByteSize() int { return 12*len(h.Row.Idx) + 32 }

// svBlock is a rank's contribution to the gradient-reconstruction ring and
// to final model assembly: the local rows with alpha > 0 and their
// coefficients alpha*y.
type svBlock struct {
	X     *sparse.Matrix
	Coef  []float64
	Norms []float64
}

// ByteSize implements mpi.Sized.
func (b *svBlock) ByteSize() int {
	if b == nil || b.X == nil {
		return 8
	}
	return b.X.ByteSize() + 8*len(b.Coef) + 8*len(b.Norms)
}

// Train runs the proposed distributed SVM algorithm on this rank's
// partition. Every rank of the communicator must call it with the same
// configuration. The returned model is assembled on rank 0 (nil on other
// ranks); Stats are identical everywhere.
func Train(c *mpi.Comm, pt *Partition, cfg Config) (*model.Model, *Stats, error) {
	cfg = cfg.withDefaults()
	if err := validateInputs(c, pt, cfg); err != nil {
		return nil, nil, err
	}
	s := newRankState(c, pt, cfg)
	if len(cfg.InitialAlpha) > 0 {
		if err := s.warmStart(); err != nil {
			return nil, nil, err
		}
	}
	if err := s.solve(); err != nil {
		return nil, nil, err
	}
	return s.finish()
}

func validateInputs(c *mpi.Comm, pt *Partition, cfg Config) error {
	if pt == nil {
		return errors.New("core: nil partition")
	}
	if pt.P != c.Size() || pt.Rank != c.Rank() {
		return fmt.Errorf("core: partition (rank %d of %d) does not match communicator (rank %d of %d)",
			pt.Rank, pt.P, c.Rank(), c.Size())
	}
	if cfg.C <= 0 {
		return fmt.Errorf("core: C must be positive, got %v", cfg.C)
	}
	if err := cfg.Kernel.Validate(); err != nil {
		return err
	}
	if err := cfg.Heuristic.Validate(); err != nil {
		return err
	}
	if len(pt.Y) != pt.Len() {
		return fmt.Errorf("core: partition has %d labels for %d rows", len(pt.Y), pt.Len())
	}
	for i, v := range pt.Y {
		if v != 1 && v != -1 {
			return fmt.Errorf("core: local label %d is %v, want +1 or -1", i, v)
		}
	}
	return nil
}

// rankState is the per-rank solver state.
type rankState struct {
	c   *mpi.Comm
	pt  *Partition
	cfg Config

	alpha, gamma []float64
	active       []bool
	localActive  int
	globalActive int

	ev      *kernel.Evaluator // local block evaluator
	scratch kernel.Scratch    // dense pivot scratch for the batched row engine

	// per-iteration row-batch state: the active local indices (rebuilt
	// each iteration) and the K(x_up, x_i)/K(x_low, x_i) rows over them,
	// shared between selection and the gradient pass. diag holds the local
	// kernel diagonal for second-order selection.
	diag      []float64
	activeIdx []int
	kuiBuf    []float64
	kliBuf    []float64
	blockBuf  []float64 // reconstruction scratch, one entry per stale target

	iter            int64
	converged       bool
	shrinkEvents    int
	reconstructions int
	manualEvals     uint64 // kernel evals done via Params.Eval directly

	// shrinking thresholds (the paper's delta and delta_c)
	delta  int64
	deltaC int64

	// multi-reconstruction phase: 1 = converging to 20*eps, 2 = to 2*eps.
	phase int

	trace *Trace
}

func newRankState(c *mpi.Comm, pt *Partition, cfg Config) *rankState {
	n := pt.Len()
	s := &rankState{
		c: c, pt: pt, cfg: cfg,
		alpha:        make([]float64, n),
		gamma:        make([]float64, n),
		active:       make([]bool, n),
		localActive:  n,
		globalActive: pt.N,
		ev:           kernel.NewEvaluator(cfg.Kernel, pt.X),
		phase:        1,
	}
	for i := 0; i < n; i++ {
		s.gamma[i] = -pt.Y[i]
		s.active[i] = true
	}
	s.delta = cfg.Heuristic.InitialThreshold(pt.N)
	s.deltaC = s.delta
	s.activeIdx = make([]int, 0, n)
	s.kuiBuf = make([]float64, n)
	s.kliBuf = make([]float64, n)
	if cfg.SecondOrder {
		s.diag = make([]float64, n)
		s.ev.DiagInto(s.diag)
	}
	if cfg.RecordTrace && c.Rank() == 0 {
		s.trace = trace.New(cfg.DatasetName, cfg.Heuristic.Name, pt.N, 0, cfg.Eps)
		if cfg.SecondOrder {
			s.trace.WSS = "second-order"
		}
	}
	return s
}

// reduceBetas scans the local active set for the worst KKT violators and
// combines them globally (the two MPI_Allreduce calls of Algorithm 2,
// lines 21-22, with MINLOC/MAXLOC semantics so every rank also learns the
// violators' global indices).
func (s *rankState) reduceBetas() (up, low mpi.ValLoc, err error) {
	up = mpi.ValLoc{Val: math.Inf(1), Loc: -1}
	low = mpi.ValLoc{Val: math.Inf(-1), Loc: -1}
	for i := range s.alpha {
		if !s.active[i] {
			continue
		}
		g := s.pt.Global(i)
		if solver.InUp(s.pt.Y[i], s.alpha[i], s.cfg.C) {
			up = mpi.MinLoc(up, mpi.ValLoc{Val: s.gamma[i], Loc: g})
		}
		if solver.InLow(s.pt.Y[i], s.alpha[i], s.cfg.C) {
			low = mpi.MaxLoc(low, mpi.ValLoc{Val: s.gamma[i], Loc: g})
		}
	}
	if up, err = mpi.Allreduce(s.c, up, mpi.MinLoc); err != nil {
		return
	}
	low, err = mpi.Allreduce(s.c, low, mpi.MaxLoc)
	return
}

// currentEps returns the convergence half-band for the current phase:
// Algorithm 5 first synchronizes at 20*eps (phase 1), then converges to
// the final 2*eps band.
func (s *rankState) currentEps() float64 {
	if s.cfg.Heuristic.Recon == ReconMulti && s.phase == 1 {
		// Converged() doubles it: with the default factor 10 this is the
		// paper's beta_up + 20*eps >= beta_low first synchronization.
		return s.cfg.FirstSyncFactor * s.cfg.Eps
	}
	return s.cfg.Eps
}

func (s *rankState) solve() error {
	h := s.cfg.Heuristic
	shrinkingEnabled := h.Shrinks()
	for {
		up, low, err := s.reduceBetas()
		if err != nil {
			return err
		}
		if solver.Converged(up.Val, low.Val, s.currentEps()) {
			if h.Recon == ReconMulti && s.phase == 1 {
				// First synchronization point at 20*eps: re-admit the
				// eliminated samples while still far from the solution.
				if s.globalActive < s.pt.N {
					if err := s.reconstruct(); err != nil {
						return err
					}
				}
				// Algorithm 5 keeps shrinking after the synchronization
				// ("do not update delta_c" to infinity, unlike Algorithm
				// 4); restart the countdown at the initial threshold so
				// the near-converged gradients are culled promptly — the
				// behaviour the paper describes for real-sim and forest,
				// where under 10% of samples stay active after the first
				// gradient reconstruction.
				s.deltaC = s.delta
				s.phase = 2
				continue
			}
			if s.globalActive < s.pt.N {
				// Converged on the shrunk problem only; rebuild the
				// gradients of eliminated samples and re-check.
				if err := s.reconstruct(); err != nil {
					return err
				}
				if h.Recon == ReconSingle {
					// Algorithm 4 line 32: delta_c <- infinity; never
					// shrink again, so the final solution is exact.
					shrinkingEnabled = false
				} else {
					s.deltaC = s.delta
				}
				continue
			}
			s.converged = true
			return nil
		}
		if s.iter >= s.cfg.MaxIter {
			return nil
		}
		s.iter++
		actives := s.collectActive()

		var pair exchangedPair
		pair.up, err = s.routeHalf(up.Loc, tagPairUp)
		if err != nil {
			return err
		}
		lowIdx := low.Loc
		if s.cfg.SecondOrder {
			if j, err := s.selectSecondOrder(actives, pair.up, up.Val); err != nil {
				return err
			} else if j >= 0 {
				lowIdx = j
			}
		}
		pair.low, err = s.routeHalf(lowIdx, tagPairLow)
		if err != nil {
			return err
		}
		// All ranks compute the identical analytic step (Eq. 6/7).
		kUU := s.cfg.Kernel.Eval(pair.up.Row, pair.up.Row, pair.up.Norm, pair.up.Norm)
		kLL := s.cfg.Kernel.Eval(pair.low.Row, pair.low.Row, pair.low.Norm, pair.low.Norm)
		kUL := s.cfg.Kernel.Eval(pair.up.Row, pair.low.Row, pair.up.Norm, pair.low.Norm)
		s.manualEvals += 3
		st := solver.OptimizePair(pair.up.Gamma, pair.low.Gamma, pair.up.Y, pair.low.Y,
			pair.up.Alpha, pair.low.Alpha, kUU, kLL, kUL, s.cfg.C)
		// low.Loc is what the gradient pass matches alpha updates against.
		low.Loc = lowIdx

		shrinkNow := false
		if shrinkingEnabled {
			s.deltaC--
			if s.deltaC <= 0 {
				shrinkNow = true
			}
		}
		s.gradientPass(st, up, low, pair, actives, shrinkNow)

		if s.cfg.Lambda > 0 {
			s.c.Compute(s.cfg.Lambda * float64(3+2*s.localActive))
		}

		if shrinkNow {
			s.shrinkEvents++
			prevActive := s.globalActive
			ga, err := mpi.Allreduce(s.c, s.localActive, mpi.SumInt)
			if err != nil {
				return err
			}
			s.globalActive = ga
			switch {
			case s.cfg.SubsequentFixed:
				// Ablation: always reuse the initial threshold.
				s.deltaC = s.delta
			case ga == prevActive:
				// The check eliminated nothing — shrinking has not begun
				// yet (the band is still wide), so re-check at the
				// initial cadence rather than waiting a full working-set
				// length. Once elimination starts, the paper's
				// subsequent threshold below takes over.
				s.deltaC = s.delta
			default:
				// Paper default: the size of the active working set,
				// obtained with an MPI_Allreduce, giving every surviving
				// sample an opportunity to stabilize before the next
				// shrink step.
				s.deltaC = int64(max(ga, 1))
			}
			if s.trace != nil {
				s.trace.SetActive(s.iter, ga)
				s.trace.ShrinkChecks++
			}
		}

		// The condition depends only on cfg and the lockstep iteration
		// counter, so every rank enters the collective snapshot together.
		if s.cfg.Checkpoint != nil && s.cfg.CheckpointEvery > 0 && s.iter%s.cfg.CheckpointEvery == 0 {
			if err := s.saveCheckpoint(); err != nil {
				return err
			}
		}
	}
}

// exchangedPair bundles both halves after distribution (routed through
// rank 0 and broadcast, following Algorithm 2 lines 3-10).
type exchangedPair struct {
	up, low pairHalf
}

// collectActive refreshes s.activeIdx with the local active indices in
// ascending order — the target list every row batch of this iteration
// shares (selection, gradient pass). The slice is only valid until the
// next call.
func (s *rankState) collectActive() []int {
	s.activeIdx = s.activeIdx[:0]
	for i, a := range s.active {
		if a {
			s.activeIdx = append(s.activeIdx, i)
		}
	}
	return s.activeIdx
}

// selectSecondOrder picks the partner of i_up by maximal analytic gain
// among local low-side violators, then combines globally with a MAXLOC
// Allreduce. It fills s.kuiBuf with K(x_up, x_i) over actives as a side
// effect — one batched row evaluation — and the gradient pass reuses
// those values, so the second-order rule costs no extra kernel
// evaluations.
func (s *rankState) selectSecondOrder(actives []int, up pairHalf, gammaUp float64) (int, error) {
	kUU := s.cfg.Kernel.Eval(up.Row, up.Row, up.Norm, up.Norm)
	s.manualEvals++
	kui := s.kuiBuf[:len(actives)]
	s.ev.RowInto(&s.scratch, up.Row, up.Norm, actives, kui)
	best := mpi.ValLoc{Val: math.Inf(-1), Loc: -1}
	for k, i := range actives {
		if !solver.InLow(s.pt.Y[i], s.alpha[i], s.cfg.C) {
			continue
		}
		b := s.gamma[i] - gammaUp
		if b <= 0 {
			continue
		}
		eta := kUU + s.diag[i] - 2*kui[k]
		if eta <= solver.Tau {
			eta = solver.Tau
		}
		best = mpi.MaxLoc(best, mpi.ValLoc{Val: b * b / eta, Loc: s.pt.Global(i)})
	}
	best, err := mpi.Allreduce(s.c, best, mpi.MaxLoc)
	if err != nil {
		return -1, err
	}
	return best.Loc, nil
}

func (s *rankState) routeHalf(g, tag int) (pairHalf, error) {
	owner := OwnerOf(s.pt.N, s.pt.P, g)
	var h pairHalf
	if s.c.Rank() == owner {
		l, ok := s.pt.Local(g)
		if !ok {
			return h, fmt.Errorf("core: rank %d does not own global row %d", owner, g)
		}
		h = pairHalf{Row: s.pt.X.RowView(l), Norm: s.ev.Norm(l), Y: s.pt.Y[l], Alpha: s.alpha[l], Gamma: s.gamma[l]}
		if owner != 0 {
			if err := s.c.Send(0, tag, h); err != nil {
				return h, err
			}
		}
	}
	if s.c.Rank() == 0 && owner != 0 {
		got, _, err := mpi.RecvAs[pairHalf](s.c, owner, tag)
		if err != nil {
			return h, err
		}
		h = got
	}
	return mpi.Bcast(s.c, h, 0)
}

// gradientPass applies the Eq. 2 gradient update to every local active
// sample, installs the new alphas on the owners of the selected pair, and
// optionally applies the Eq. 9 shrink condition (Algorithm 4 lines 12-24).
// The K(x_up, .) and K(x_low, .) rows over actives come from the batched
// row engine: one fused pair batch in first-order mode (each active row's
// CSR payload read once for both pivots), or — in second-order mode,
// where selection already filled kuiBuf — one more row batch for the low
// pivot.
func (s *rankState) gradientPass(st solver.Step, up, low mpi.ValLoc, pair exchangedPair, actives []int, shrinkNow bool) {
	c := s.cfg.C
	kui := s.kuiBuf[:len(actives)]
	kli := s.kliBuf[:len(actives)]
	if s.cfg.SecondOrder {
		// kui was computed during selection.
		s.ev.RowInto(&s.scratch, pair.low.Row, pair.low.Norm, actives, kli)
	} else {
		s.ev.PairRowsInto(&s.scratch, pair.up.Row, pair.low.Row, pair.up.Norm, pair.low.Norm, actives, kui, kli)
	}
	for k, i := range actives {
		s.gamma[i] += solver.GradientDelta(st.T, kui[k], kli[k])
		g := s.pt.Global(i)
		if g == up.Loc {
			s.alpha[i] = st.NewAlphaUp
		}
		if g == low.Loc {
			s.alpha[i] = st.NewAlphaLow
		}
		if shrinkNow {
			set := solver.Classify(s.pt.Y[i], s.alpha[i], c)
			if solver.Shrinkable(set, s.gamma[i], up.Val, low.Val) {
				s.active[i] = false
				s.localActive--
			}
		}
	}
}

// buildSVBlock collects the local samples with alpha > 0.
func (s *rankState) buildSVBlock() (*svBlock, error) {
	var idx []int
	for i, a := range s.alpha {
		if a > 0 {
			idx = append(idx, i)
		}
	}
	x, err := s.pt.X.SelectRows(idx)
	if err != nil {
		return nil, err
	}
	b := &svBlock{X: x, Coef: make([]float64, len(idx)), Norms: make([]float64, len(idx))}
	for k, i := range idx {
		b.Coef[k] = s.alpha[i] * s.pt.Y[i]
		b.Norms[k] = s.ev.Norm(i)
	}
	return b, nil
}

// reconstruct is Algorithm 3: rebuild gamma for previously eliminated
// samples using every sample with alpha > 0, obtained via a ring exchange
// of CSR blocks (implemented, as in the paper, with Isend/Irecv/Waitall),
// then re-admit all samples.
func (s *rankState) reconstruct() error {
	s.reconstructions++

	// Targets: local samples whose gradient is stale.
	var targets []int
	for i, a := range s.active {
		if !a {
			targets = append(targets, i)
		}
	}
	// Start gamma from scratch for targets: gamma_i = -y_i + sum contributions.
	for _, i := range targets {
		s.gamma[i] = -s.pt.Y[i]
	}

	block, err := s.buildSVBlock()
	if err != nil {
		return err
	}
	totalShrunk, err := mpi.Allreduce(s.c, len(targets), mpi.SumInt)
	if err != nil {
		return err
	}
	totalSVs, err := mpi.Allreduce(s.c, block.X.Rows(), mpi.SumInt)
	if err != nil {
		return err
	}

	if err := s.ringPass(block, targets); err != nil {
		return err
	}

	// Re-admit every sample (the re-introduced samples participate in the
	// next beta reduction, Algorithm 3 lines 7-12).
	for i := range s.active {
		s.active[i] = true
	}
	s.localActive = len(s.active)
	s.globalActive = s.pt.N

	if s.trace != nil {
		s.trace.AddRecon(s.iter, totalShrunk, totalSVs)
	}
	return nil
}

// ringPass circulates every rank's SV block once around the ring
// (Isend/Irecv/Waitall, as in the paper's Algorithm 3), accumulating each
// block's contributions into the targets' gradients. Shared by gradient
// reconstruction and checkpoint warm start.
func (s *rankState) ringPass(block *svBlock, targets []int) error {
	p, rank := s.pt.P, s.c.Rank()
	cur := block
	right := (rank + 1) % p
	left := (rank - 1 + p) % p
	for step := 0; step < p; step++ {
		s.applyBlock(cur, targets)
		if s.cfg.Lambda > 0 {
			s.c.Compute(s.cfg.Lambda * float64(len(targets)*cur.X.Rows()))
		}
		if step == p-1 {
			break
		}
		sreq := s.c.Isend(right, tagRecon, cur)
		rreq := s.c.Irecv(left, tagRecon)
		if err := mpi.Waitall(sreq, rreq); err != nil {
			return err
		}
		next, ok := rreq.Data().(*svBlock)
		if !ok {
			return fmt.Errorf("core: rank %d: ring payload is %T", rank, rreq.Data())
		}
		cur = next
	}
	return nil
}

// warmStart installs the partition's slice of Config.InitialAlpha and
// rebuilds every local gradient with one ring pass, the same exchange
// gradient reconstruction uses: gamma_i = -y_i + sum_j alpha_j*y_j*K_ij
// over the global support set. Feasibility (box locally, the equality
// constraint globally via Allreduce) is checked first so a corrupt or
// foreign alpha vector fails loudly instead of poisoning the run.
func (s *rankState) warmStart() error {
	a := s.cfg.InitialAlpha
	if len(a) != s.pt.N {
		return fmt.Errorf("core: initial alpha holds %d entries for %d samples", len(a), s.pt.N)
	}
	c := s.cfg.C
	var sum, mass float64
	for i := 0; i < s.pt.Len(); i++ {
		v := a[s.pt.Lo+i]
		if math.IsNaN(v) || v < 0 || v > c*(1+1e-9) {
			return fmt.Errorf("core: initial alpha[%d] = %v outside [0, %v]", s.pt.Lo+i, v, c)
		}
		s.alpha[i] = math.Min(v, c)
		sum += s.alpha[i] * s.pt.Y[i]
		mass += s.alpha[i]
	}
	gsum, err := mpi.Allreduce(s.c, sum, mpi.SumF64)
	if err != nil {
		return err
	}
	gmass, err := mpi.Allreduce(s.c, mass, mpi.SumF64)
	if err != nil {
		return err
	}
	if math.Abs(gsum) > 1e-6*(1+gmass) {
		return fmt.Errorf("core: initial alpha violates sum alpha_i*y_i = 0 (residual %.3g)", gsum)
	}

	targets := make([]int, s.pt.Len())
	for i := range targets {
		targets[i] = i
		s.gamma[i] = -s.pt.Y[i]
	}
	block, err := s.buildSVBlock()
	if err != nil {
		return err
	}
	return s.ringPass(block, targets)
}

// saveCheckpoint takes a coordinated snapshot: a barrier pins every rank at
// the same iteration boundary, then alpha/gamma/active are gathered at rank
// 0 in rank order — which, by the block partition, is exactly dataset row
// order — and persisted as one crash-consistent generation.
func (s *rankState) saveCheckpoint() error {
	if err := mpi.Barrier(s.c); err != nil {
		return err
	}
	// Copies, not views: the gathered slices are read on rank 0 while the
	// owners keep mutating their originals next iteration.
	alphas, err := mpi.Gather(s.c, append([]float64(nil), s.alpha...), 0)
	if err != nil {
		return err
	}
	gammas, err := mpi.Gather(s.c, append([]float64(nil), s.gamma...), 0)
	if err != nil {
		return err
	}
	actives, err := mpi.Gather(s.c, append([]bool(nil), s.active...), 0)
	if err != nil {
		return err
	}
	if s.c.Rank() != 0 {
		return nil
	}
	st := &ckpt.State{
		Solver:          ckpt.SolverCore,
		Iteration:       s.iter,
		Seed:            s.cfg.CheckpointSeed,
		Fingerprint:     s.cfg.CheckpointFingerprint,
		N:               s.pt.N,
		Alpha:           make([]float64, 0, s.pt.N),
		Gamma:           make([]float64, 0, s.pt.N),
		Active:          make([]bool, 0, s.pt.N),
		ShrinkCountdown: s.deltaC,
		Phase:           int32(s.phase),
		ShrinkEvents:    int32(s.shrinkEvents),
		Reconstructions: int32(s.reconstructions),
	}
	for r := range alphas {
		st.Alpha = append(st.Alpha, alphas[r]...)
		st.Gamma = append(st.Gamma, gammas[r]...)
		st.Active = append(st.Active, actives[r]...)
	}
	return s.cfg.Checkpoint.Save(st)
}

// applyBlock accumulates one ring block's contributions into the stale
// gradients: gamma_i += alpha_j*y_j*Phi(x_j, x_i). Each SV row of the
// block is one batched row evaluation over the targets.
func (s *rankState) applyBlock(b *svBlock, targets []int) {
	if len(targets) == 0 {
		return
	}
	if len(s.blockBuf) < len(targets) {
		s.blockBuf = make([]float64, len(targets))
	}
	buf := s.blockBuf[:len(targets)]
	for j := 0; j < b.X.Rows(); j++ {
		coef := b.Coef[j]
		s.ev.RowInto(&s.scratch, b.X.RowView(j), b.Norms[j], targets, buf)
		for k, i := range targets {
			s.gamma[i] += coef * buf[k]
		}
	}
}

// finish computes the threshold, assembles the model on rank 0, and
// gathers global statistics.
func (s *rankState) finish() (*model.Model, *Stats, error) {
	// beta: mean gradient over the free set I0 (Allreduce of sum and count).
	var sumG float64
	var nI0 int
	var localSV int
	var localObj float64
	for i, a := range s.alpha {
		if solver.Classify(s.pt.Y[i], a, s.cfg.C) == solver.I0 {
			sumG += s.gamma[i]
			nI0++
		}
		if a > 0 {
			localSV++
		}
		localObj += a * (1 - s.pt.Y[i]*s.gamma[i])
	}
	sumG, err := mpi.Allreduce(s.c, sumG, mpi.SumF64)
	if err != nil {
		return nil, nil, err
	}
	nI0, err = mpi.Allreduce(s.c, nI0, mpi.SumInt)
	if err != nil {
		return nil, nil, err
	}
	up, low, err := s.reduceBetas()
	if err != nil {
		return nil, nil, err
	}
	beta := solver.Threshold(sumG, nI0, up.Val, low.Val)

	svTotal, err := mpi.Allreduce(s.c, localSV, mpi.SumInt)
	if err != nil {
		return nil, nil, err
	}
	evals := s.ev.Evals() + s.manualEvals
	totalEvals, err := mpi.Allreduce(s.c, evals, func(a, b uint64) uint64 { return a + b })
	if err != nil {
		return nil, nil, err
	}
	obj, err := mpi.Allreduce(s.c, localObj, mpi.SumF64)
	if err != nil {
		return nil, nil, err
	}

	st := &Stats{
		Iterations:      s.iter,
		Converged:       s.converged,
		ShrinkEvents:    s.shrinkEvents,
		Reconstructions: s.reconstructions,
		SVCount:         svTotal,
		FinalActive:     s.globalActive,
		KernelEvals:     totalEvals,
		Objective:       obj / 2,
	}
	if s.trace != nil {
		s.trace.Iterations = s.iter
		s.trace.Converged = s.converged
		s.trace.SVCount = svTotal
		s.trace.AvgNNZ = avgNNZGlobal(s)
		st.Trace = s.trace
	}

	// Model assembly: gather SV blocks at rank 0 in rank order.
	block, err := s.buildSVBlock()
	if err != nil {
		return nil, nil, err
	}
	blocks, err := mpi.Gather(s.c, block, 0)
	if err != nil {
		return nil, nil, err
	}
	if s.c.Rank() != 0 {
		return nil, st, nil
	}
	sv := blocks[0].X
	coef := append([]float64(nil), blocks[0].Coef...)
	for _, b := range blocks[1:] {
		sv = sparse.Append(sv, b.X)
		coef = append(coef, b.Coef...)
	}
	m := &model.Model{
		Kernel:       s.cfg.Kernel,
		C:            s.cfg.C,
		SV:           sv,
		Coef:         coef,
		Beta:         beta,
		TrainSamples: s.pt.N,
		Iterations:   s.iter,
	}
	return m, st, nil
}

// avgNNZGlobal is computed locally on rank 0 from its block — blocks are
// statistically identical, and the value only labels the trace.
func avgNNZGlobal(s *rankState) float64 {
	return s.pt.X.AvgRowNNZ()
}
