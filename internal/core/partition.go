package core

import (
	"fmt"

	"repro/internal/sparse"
)

// Partition is one rank's block of the training set: global rows
// [Lo, Hi). The paper distributes samples in contiguous blocks of N/p rows
// per process, with the per-sample data structures (alpha, gamma, index
// set, label) co-located with the samples for spatial locality.
type Partition struct {
	Rank, P int
	Lo, Hi  int            // global row range [Lo, Hi)
	X       *sparse.Matrix // local block (Hi-Lo rows)
	Y       []float64      // local labels
	N       int            // global sample count
}

// BlockRange returns the global row range [lo, hi) owned by rank q of p
// over n rows, using the balanced formula floor(q*n/p).
func BlockRange(n, p, q int) (lo, hi int) {
	return q * n / p, (q + 1) * n / p
}

// OwnerOf returns the rank owning global row g under the balanced block
// distribution of n rows over p ranks.
func OwnerOf(n, p, g int) int {
	// Invert lo = q*n/p: candidate then adjust for flooring.
	q := g * p / n
	for {
		lo, hi := BlockRange(n, p, q)
		switch {
		case g < lo:
			q--
		case g >= hi:
			q++
		default:
			return q
		}
	}
}

// NewPartition extracts rank q's block of (x, y).
func NewPartition(x *sparse.Matrix, y []float64, p, q int) (*Partition, error) {
	n := x.Rows()
	if len(y) != n {
		return nil, fmt.Errorf("core: %d labels for %d rows", len(y), n)
	}
	if p <= 0 || q < 0 || q >= p {
		return nil, fmt.Errorf("core: invalid rank %d of %d", q, p)
	}
	if p > n {
		return nil, fmt.Errorf("core: more ranks (%d) than samples (%d)", p, n)
	}
	lo, hi := BlockRange(n, p, q)
	sub, err := x.SubMatrix(lo, hi)
	if err != nil {
		return nil, err
	}
	return &Partition{
		Rank: q, P: p, Lo: lo, Hi: hi,
		X: sub,
		Y: append([]float64(nil), y[lo:hi]...),
		N: n,
	}, nil
}

// Local converts a global row index to a local one; ok is false when the
// row is not owned by this partition.
func (pt *Partition) Local(g int) (int, bool) {
	if g < pt.Lo || g >= pt.Hi {
		return 0, false
	}
	return g - pt.Lo, true
}

// Global converts a local row index to the global index space.
func (pt *Partition) Global(l int) int { return pt.Lo + l }

// Len returns the number of local rows.
func (pt *Partition) Len() int { return pt.Hi - pt.Lo }
