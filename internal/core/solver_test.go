package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/mpi"
	"repro/internal/smo"
	"repro/internal/solver"
	"repro/internal/sparse"
)

func blobCfg(ds *dataset.Dataset, h Heuristic) Config {
	return Config{
		Kernel:    kernel.FromSigma2(ds.Sigma2),
		C:         ds.C,
		Eps:       1e-3,
		Heuristic: h,
	}
}

func TestOriginalConvergesAndClassifies(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.2)
	m, st, err := TrainParallel(ds.X, ds.Y, 3, blobCfg(ds, Original))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("not converged")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	mt, err := m.Evaluate(ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Accuracy < 90 {
		t.Fatalf("test accuracy = %v%%", mt.Accuracy)
	}
	if st.ShrinkEvents != 0 || st.Reconstructions != 0 {
		t.Fatalf("Original performed shrinking: %+v", st)
	}
}

// TestIterateSequenceIndependentOfP is the determinism property the whole
// trace-driven performance model rests on: the solver computes the same
// iterate sequence (iterations, SVs, threshold, shrink/reconstruction
// schedule) for every process count.
func TestIterateSequenceIndependentOfP(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.15)
	for _, h := range []Heuristic{Original, Multi5pc, Single500} {
		var ref *Stats
		var refBeta float64
		for _, p := range []int{1, 2, 3, 5, 8} {
			cfg := blobCfg(ds, h)
			cfg.RecordTrace = true
			m, st, err := TrainParallel(ds.X, ds.Y, p, cfg)
			if err != nil {
				t.Fatalf("%s p=%d: %v", h.Name, p, err)
			}
			if ref == nil {
				ref, refBeta = st, m.Beta
				continue
			}
			if st.Iterations != ref.Iterations {
				t.Fatalf("%s p=%d: iterations %d != %d", h.Name, p, st.Iterations, ref.Iterations)
			}
			if st.SVCount != ref.SVCount {
				t.Fatalf("%s p=%d: SVs %d != %d", h.Name, p, st.SVCount, ref.SVCount)
			}
			if st.ShrinkEvents != ref.ShrinkEvents || st.Reconstructions != ref.Reconstructions {
				t.Fatalf("%s p=%d: schedule differs: %+v vs %+v", h.Name, p, st, ref)
			}
			if math.Abs(m.Beta-refBeta) > 1e-9 {
				t.Fatalf("%s p=%d: beta %v != %v", h.Name, p, m.Beta, refBeta)
			}
			if len(st.Trace.Segments) != len(ref.Trace.Segments) {
				t.Fatalf("%s p=%d: trace segments differ", h.Name, p)
			}
			for i := range st.Trace.Segments {
				if st.Trace.Segments[i] != ref.Trace.Segments[i] {
					t.Fatalf("%s p=%d: segment %d: %+v vs %+v",
						h.Name, p, i, st.Trace.Segments[i], ref.Trace.Segments[i])
				}
			}
		}
	}
}

// TestMatchesBaselineSolver: the distributed Original algorithm and the
// sequential baseline implement the same optimization, so their objectives
// and accuracies must agree (iteration counts may differ slightly because
// the baseline may shrink; disable that).
func TestMatchesBaselineSolver(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.2)
	coreM, coreSt, err := TrainParallel(ds.X, ds.Y, 4, blobCfg(ds, Original))
	if err != nil {
		t.Fatal(err)
	}
	base, err := smo.Train(ds.X, ds.Y, smo.Config{
		Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-3, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if coreSt.Iterations != base.Iterations {
		t.Fatalf("iterations: core %d vs baseline %d", coreSt.Iterations, base.Iterations)
	}
	if math.Abs(coreSt.Objective-base.Objective) > 1e-9*(1+math.Abs(base.Objective)) {
		t.Fatalf("objective: core %v vs baseline %v", coreSt.Objective, base.Objective)
	}
	if math.Abs(coreM.Beta-base.Model.Beta) > 1e-9 {
		t.Fatalf("beta: core %v vs baseline %v", coreM.Beta, base.Model.Beta)
	}
	if coreM.NumSV() != base.Model.NumSV() {
		t.Fatalf("SVs: core %d vs baseline %d", coreM.NumSV(), base.Model.NumSV())
	}
}

// TestShrinkingMaintainsAccuracy is contribution 2 of the paper: every
// heuristic, including the aggressive ones, must reach the same solution
// as the no-shrinking algorithm thanks to gradient reconstruction.
func TestShrinkingMaintainsAccuracy(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	_, refSt, err := TrainParallel(ds.X, ds.Y, 2, blobCfg(ds, Original))
	if err != nil {
		t.Fatal(err)
	}
	refM, _, err := TrainParallel(ds.X, ds.Y, 2, blobCfg(ds, Original))
	if err != nil {
		t.Fatal(err)
	}
	refAcc, _ := refM.Evaluate(ds.TestX, ds.TestY)
	for _, h := range Table2()[1:] {
		h := h
		t.Run(h.Name, func(t *testing.T) {
			m, st, err := TrainParallel(ds.X, ds.Y, 3, blobCfg(ds, h))
			if err != nil {
				t.Fatal(err)
			}
			if !st.Converged {
				t.Fatal("not converged")
			}
			acc, err := m.Evaluate(ds.TestX, ds.TestY)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(acc.Accuracy-refAcc.Accuracy) > 1.0 {
				t.Fatalf("accuracy %v%% vs reference %v%%", acc.Accuracy, refAcc.Accuracy)
			}
			if math.Abs(st.Objective-refSt.Objective) > 1e-2*(1+math.Abs(refSt.Objective)) {
				t.Fatalf("objective %v vs reference %v", st.Objective, refSt.Objective)
			}
		})
	}
}

func TestAggressiveHeuristicsShrink(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	_, st, err := TrainParallel(ds.X, ds.Y, 2, blobCfg(ds, Multi2))
	if err != nil {
		t.Fatal(err)
	}
	if st.ShrinkEvents == 0 {
		t.Fatal("Multi2 never shrank")
	}
	if st.Reconstructions == 0 {
		t.Fatal("Multi2 never reconstructed")
	}
}

func TestSingleReconstructsAtMostOnce(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	for _, h := range []Heuristic{Single2, Single500, Single5pc} {
		_, st, err := TrainParallel(ds.X, ds.Y, 3, blobCfg(ds, h))
		if err != nil {
			t.Fatal(err)
		}
		if st.Reconstructions > 1 {
			t.Fatalf("%s reconstructed %d times", h.Name, st.Reconstructions)
		}
	}
}

func TestConservativeThresholdMayNeverShrink(t *testing.T) {
	// With InitialFrac=0.5 and a dataset that converges in fewer than
	// N/2 iterations, Single50pc must behave exactly like Original —
	// the paper's MNIST observation.
	ds := dataset.MustGenerate("blobs", 0.1) // 200 samples; threshold 100
	_, stOrig, err := TrainParallel(ds.X, ds.Y, 2, blobCfg(ds, Original))
	if err != nil {
		t.Fatal(err)
	}
	if stOrig.Iterations >= 100 {
		t.Skipf("dataset converged in %d iterations; need < 100 for this check", stOrig.Iterations)
	}
	_, st, err := TrainParallel(ds.X, ds.Y, 2, blobCfg(ds, Single50pc))
	if err != nil {
		t.Fatal(err)
	}
	if st.ShrinkEvents != 0 {
		t.Fatalf("Single50pc shrank despite converging before the threshold")
	}
	if st.Iterations != stOrig.Iterations {
		t.Fatalf("iterations %d != Original %d", st.Iterations, stOrig.Iterations)
	}
}

func TestTraceRecording(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	cfg := blobCfg(ds, Multi5pc)
	cfg.RecordTrace = true
	cfg.DatasetName = "blobs"
	_, st, err := TrainParallel(ds.X, ds.Y, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := st.Trace
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	if tr.N != ds.Train() || tr.Iterations != st.Iterations {
		t.Fatalf("trace header wrong: %+v", tr)
	}
	if tr.Segments[0].FromIter != 0 || tr.Segments[0].Active != tr.N {
		t.Fatalf("first segment %+v", tr.Segments[0])
	}
	if len(tr.Recons) != st.Reconstructions {
		t.Fatalf("trace has %d recons, stats %d", len(tr.Recons), st.Reconstructions)
	}
	// Active counts must be non-negative and <= N, and iterations ordered.
	var lastIter int64 = -1
	for _, s := range tr.Segments {
		if s.Active < 0 || s.Active > tr.N {
			t.Fatalf("segment active %d out of range", s.Active)
		}
		if s.FromIter <= lastIter {
			t.Fatalf("segments not strictly ordered: %+v", tr.Segments)
		}
		lastIter = s.FromIter
	}
	if mf := tr.MeanActiveFraction(); mf <= 0 || mf > 1 {
		t.Fatalf("MeanActiveFraction = %v", mf)
	}
	if tr.SVCount != st.SVCount {
		t.Fatalf("trace SVs %d != stats %d", tr.SVCount, st.SVCount)
	}
}

func TestSubsequentFixedAblation(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	cfgA := blobCfg(ds, Multi500)
	cfgB := cfgA
	cfgB.SubsequentFixed = true
	_, stA, err := TrainParallel(ds.X, ds.Y, 2, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	_, stB, err := TrainParallel(ds.X, ds.Y, 2, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if !stA.Converged || !stB.Converged {
		t.Fatal("not converged")
	}
	// Both must converge to the same objective; the shrink schedules differ.
	if math.Abs(stA.Objective-stB.Objective) > 1e-2*(1+math.Abs(stA.Objective)) {
		t.Fatalf("objectives diverged: %v vs %v", stA.Objective, stB.Objective)
	}
}

func TestTrainInputValidation(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.1)
	cfg := blobCfg(ds, Original)
	if _, _, err := TrainParallel(ds.X, ds.Y, 0, cfg); err == nil {
		t.Error("p=0 accepted")
	}
	if _, _, err := TrainParallel(ds.X, ds.Y, ds.Train()+1, cfg); err == nil {
		t.Error("p > n accepted")
	}
	bad := cfg
	bad.C = -1
	if _, _, err := TrainParallel(ds.X, ds.Y, 2, bad); err == nil {
		t.Error("C<0 accepted")
	}
	bad = cfg
	bad.Kernel.Gamma = 0
	if _, _, err := TrainParallel(ds.X, ds.Y, 2, bad); err == nil {
		t.Error("bad kernel accepted")
	}
	bad = cfg
	bad.Heuristic = Heuristic{Name: "broken", Recon: ReconSingle}
	if _, _, err := TrainParallel(ds.X, ds.Y, 2, bad); err == nil {
		t.Error("invalid heuristic accepted")
	}
}

func TestMaxIterStops(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.15)
	cfg := blobCfg(ds, Original)
	cfg.Eps = 1e-9
	cfg.MaxIter = 7
	_, st, err := TrainParallel(ds.X, ds.Y, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Converged || st.Iterations != 7 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEqualityConstraintAcrossRanks(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.2)
	m, _, err := TrainParallel(ds.X, ds.Y, 5, blobCfg(ds, Multi5pc))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range m.Coef {
		sum += c
	}
	if math.Abs(sum) > 1e-6*ds.C {
		t.Fatalf("sum alpha_i y_i = %v", sum)
	}
}

func TestVirtualTimeMakespan(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.15)
	cfg := blobCfg(ds, Original)
	cfg.Lambda = 1e-7
	net := mpi.NetModel{Alpha: 1e-6, Beta: 1e-9}
	_, _, t2, err := TrainParallelTimed(ds.X, ds.Y, 2, cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	_, _, t8, err := TrainParallelTimed(ds.X, ds.Y, 8, cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	if t2 <= 0 || t8 <= 0 {
		t.Fatalf("non-positive makespans: %v %v", t2, t8)
	}
	// With compute-dominated costs, 8 ranks should beat 2 ranks.
	if t8 >= t2 {
		t.Fatalf("makespan did not improve with ranks: p2=%v p8=%v", t2, t8)
	}
}

func TestShrinkConditionUnit(t *testing.T) {
	// Figure 2 of the paper: samples with gamma outside (betaUp, betaLow)
	// and bound at the matching side are shrinkable; free samples never.
	betaUp, betaLow := -0.5, 0.5
	cases := []struct {
		set    solver.IndexSet
		gamma  float64
		shrink bool
	}{
		{solver.I0, -2, false},
		{solver.I0, 2, false},
		{solver.I3, -1, true},   // y=+1 at C, gamma < betaUp
		{solver.I4, -1, true},   // y=-1 at 0, gamma < betaUp
		{solver.I3, 0, false},   // inside band
		{solver.I1, 1, true},    // y=+1 at 0, gamma > betaLow
		{solver.I2, 1, true},    // y=-1 at C, gamma > betaLow
		{solver.I1, -1, false},  // wrong side
		{solver.I4, 1, false},   // wrong side
		{solver.I2, 0.2, false}, // inside band
	}
	for _, tc := range cases {
		if got := solver.Shrinkable(tc.set, tc.gamma, betaUp, betaLow); got != tc.shrink {
			t.Errorf("Shrinkable(%v, %v) = %v, want %v", tc.set, tc.gamma, got, tc.shrink)
		}
	}
}

func TestPartition(t *testing.T) {
	x := sparse.FromDense(make([][]float64, 10))
	for _, p := range []int{1, 2, 3, 4, 7, 10} {
		covered := make([]int, 10)
		for q := 0; q < p; q++ {
			lo, hi := BlockRange(10, p, q)
			for g := lo; g < hi; g++ {
				covered[g]++
				if OwnerOf(10, p, g) != q {
					t.Fatalf("OwnerOf(10,%d,%d) = %d, want %d", p, g, OwnerOf(10, p, g), q)
				}
			}
		}
		for g, c := range covered {
			if c != 1 {
				t.Fatalf("p=%d: row %d covered %d times", p, g, c)
			}
		}
	}
	_ = x
	y := make([]float64, 10)
	for i := range y {
		y[i] = 1
	}
	xs := sparse.FromDense([][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}})
	pt, err := NewPartition(xs, y, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Lo != 3 || pt.Hi != 6 || pt.Len() != 3 {
		t.Fatalf("partition = %+v", pt)
	}
	if g := pt.Global(0); g != 3 {
		t.Fatalf("Global(0) = %d", g)
	}
	if _, ok := pt.Local(2); ok {
		t.Fatal("Local(2) should not be owned")
	}
	if l, ok := pt.Local(4); !ok || l != 1 {
		t.Fatalf("Local(4) = %d, %v", l, ok)
	}
	if _, err := NewPartition(xs, y, 11, 0); err == nil {
		t.Fatal("p > n accepted")
	}
	if _, err := NewPartition(xs, y[:5], 2, 0); err == nil {
		t.Fatal("bad labels accepted")
	}
	if _, err := NewPartition(xs, y, 2, 5); err == nil {
		t.Fatal("bad rank accepted")
	}
}

func TestHeuristics(t *testing.T) {
	all := Table2()
	if len(all) != 13 {
		t.Fatalf("Table2 has %d heuristics, want 13", len(all))
	}
	seen := map[string]bool{}
	for _, h := range all {
		if err := h.Validate(); err != nil {
			t.Errorf("%s: %v", h.Name, err)
		}
		if seen[h.Name] {
			t.Errorf("duplicate heuristic %s", h.Name)
		}
		seen[h.Name] = true
		got, err := HeuristicByName(h.Name)
		if err != nil || got.Name != h.Name {
			t.Errorf("ByName(%s) = %+v, %v", h.Name, got, err)
		}
	}
	if _, err := HeuristicByName("nope"); err == nil {
		t.Error("unknown heuristic resolved")
	}
	if got := Single5pc.InitialThreshold(1000); got != 50 {
		t.Errorf("Single5pc threshold = %d, want 50", got)
	}
	if got := Multi2.InitialThreshold(1000); got != 2 {
		t.Errorf("Multi2 threshold = %d, want 2", got)
	}
	if got := Original.InitialThreshold(1000); got != math.MaxInt64 {
		t.Errorf("Original threshold = %d", got)
	}
	if got := Multi50pc.InitialThreshold(1); got != 1 {
		t.Errorf("tiny-n threshold = %d, want >= 1", got)
	}
	bad := Heuristic{Name: "x", Recon: ReconSingle, InitialIters: 5, InitialFrac: 0.1}
	if err := bad.Validate(); err == nil {
		t.Error("both thresholds accepted")
	}
}

func TestReconModeAndClassStrings(t *testing.T) {
	if ReconNone.String() != "None" || ReconSingle.String() != "Single" || ReconMulti.String() != "Multi" {
		t.Error("ReconMode strings wrong")
	}
	for _, c := range []Class{ClassNone, ClassAggressive, ClassAverage, ClassConservative} {
		if c.String() == "" {
			t.Error("empty class string")
		}
	}
}

func BenchmarkTrainBlobsOriginal(b *testing.B) {
	ds := dataset.MustGenerate("blobs", 0.25)
	cfg := blobCfg(ds, Original)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := TrainParallel(ds.X, ds.Y, 4, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainBlobsMulti5pc(b *testing.B) {
	ds := dataset.MustGenerate("blobs", 0.25)
	cfg := blobCfg(ds, Multi5pc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := TrainParallel(ds.X, ds.Y, 4, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSecondOrderSelection(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.2)
	first := blobCfg(ds, Multi5pc)
	first.RecordTrace = true
	second := first
	second.SecondOrder = true
	_, st1, err := TrainParallel(ds.X, ds.Y, 3, first)
	if err != nil {
		t.Fatal(err)
	}
	m2, st2, err := TrainParallel(ds.X, ds.Y, 3, second)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Converged {
		t.Fatal("second-order run did not converge")
	}
	if st2.Iterations > st1.Iterations*11/10 {
		t.Fatalf("second-order %d iterations vs first-order %d", st2.Iterations, st1.Iterations)
	}
	if math.Abs(st1.Objective-st2.Objective) > 1e-2*(1+math.Abs(st1.Objective)) {
		t.Fatalf("objectives diverged: %v vs %v", st1.Objective, st2.Objective)
	}
	acc, err := m2.Evaluate(ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Accuracy < 90 {
		t.Fatalf("second-order accuracy %v%%", acc.Accuracy)
	}
	if st2.Trace.WSS != "second-order" {
		t.Fatalf("trace WSS = %q", st2.Trace.WSS)
	}
	// The kernel evaluation count must stay ~2 per active sample per
	// iteration: the K(up, .) row is shared between selection and the
	// gradient update. (Normalize by the mean active-set size — with far
	// fewer iterations the active set has less time to shrink.)
	norm := func(st *Stats) float64 {
		return float64(st.KernelEvals) / float64(st.Iterations) /
			(float64(ds.Train()) * st.Trace.MeanActiveFraction())
	}
	if r2, r1 := norm(st2), norm(st1); r2 > r1*1.3 {
		t.Fatalf("second-order normalized eval rate %.2f vs first-order %.2f: row not reused", r2, r1)
	}
}

func TestSecondOrderIterateSequenceIndependentOfP(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.15)
	cfg := blobCfg(ds, Single500)
	cfg.SecondOrder = true
	var refIters int64
	var refBeta float64
	for _, p := range []int{1, 3, 4} {
		m, st, err := TrainParallel(ds.X, ds.Y, p, cfg)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if p == 1 {
			refIters, refBeta = st.Iterations, m.Beta
			continue
		}
		if st.Iterations != refIters || math.Abs(m.Beta-refBeta) > 1e-9 {
			t.Fatalf("p=%d: iterate sequence diverged (%d vs %d, beta %v vs %v)",
				p, st.Iterations, refIters, m.Beta, refBeta)
		}
	}
}

// TestNonGaussianKernels exercises the full distributed pipeline with the
// pluggable kernels the paper's infrastructure advertises ("allows us to
// plugin other kernels (such as linear, polynomial)").
func TestNonGaussianKernels(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.15)
	kernels := []kernel.Params{
		{Type: kernel.Linear},
		{Type: kernel.Polynomial, Gamma: 1, Coef0: 1, Degree: 3},
		{Type: kernel.Sigmoid, Gamma: 0.5, Coef0: -0.5},
	}
	for _, kp := range kernels {
		kp := kp
		t.Run(kp.String(), func(t *testing.T) {
			cfg := Config{Kernel: kp, C: 1, Eps: 1e-2, Heuristic: Multi5pc, MaxIter: 200_000}
			m, st, err := TrainParallel(ds.X, ds.Y, 3, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			acc, err := m.Evaluate(ds.TestX, ds.TestY)
			if err != nil {
				t.Fatal(err)
			}
			// blobs is not linearly separable in 2-D for every kernel, but
			// any sane decision function beats coin flipping by a wide
			// margin on this geometry.
			if acc.Accuracy < 75 {
				t.Fatalf("accuracy %v%% with %v (converged=%v)", acc.Accuracy, kp, st.Converged)
			}
			// p-independence must hold for non-Gaussian kernels too.
			_, st1, err := TrainParallel(ds.X, ds.Y, 1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if st1.Iterations != st.Iterations {
				t.Fatalf("iterations differ across p: %d vs %d", st1.Iterations, st.Iterations)
			}
		})
	}
}
