package core

import (
	"strings"
	"testing"
)

func TestHeuristicValidateEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		h       Heuristic
		wantErr string // substring; empty means valid
	}{
		{"no-shrinking default", Original, ""},
		{"no-shrinking with iters",
			Heuristic{Name: "BadIters", Recon: ReconNone, InitialIters: 5},
			"no-shrinking mode with a threshold"},
		{"no-shrinking with frac",
			Heuristic{Name: "BadFrac", Recon: ReconNone, InitialFrac: 0.1},
			"no-shrinking mode with a threshold"},
		{"neither threshold set",
			Heuristic{Name: "Neither", Recon: ReconSingle},
			"exactly one of"},
		{"both thresholds set",
			Heuristic{Name: "Both", Recon: ReconMulti, InitialIters: 10, InitialFrac: 0.2},
			"exactly one of"},
		{"frac above one",
			Heuristic{Name: "TooBig", Recon: ReconSingle, InitialFrac: 1.5},
			"out of [0,1]"},
		{"frac exactly one", Heuristic{Name: "Full", Recon: ReconSingle, InitialFrac: 1}, ""},
		{"iters only", Heuristic{Name: "Iters", Recon: ReconMulti, InitialIters: 1}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.h.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted %+v", tc.h)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// Every published Table II heuristic must of course validate.
func TestTable2AllValid(t *testing.T) {
	for _, h := range Table2() {
		if err := h.Validate(); err != nil {
			t.Errorf("%s: %v", h.Name, err)
		}
	}
}
