package core

import (
	"context"
	"fmt"

	"repro/internal/mpi"
	"repro/internal/solver"
	"repro/internal/sparse"
)

func init() { solver.Register(coreEngine{}) }

// coreEngine adapts the paper's distributed solver to solver.Engine.
type coreEngine struct{}

func (coreEngine) Name() string { return "core" }

func (coreEngine) Capabilities() solver.Capability {
	return solver.CapClassify | solver.CapKernels | solver.CapWarmStart |
		solver.CapCheckpoint | solver.CapTrace | solver.CapDistributed |
		solver.CapFaultInject | solver.CapHeuristics
}

func (coreEngine) Describe() string {
	return "the paper's distributed solver: rank-parallel shrinking SMO with the Table II heuristics; the default"
}

func (e coreEngine) Train(ctx context.Context, prob solver.Problem, opts solver.Options) (solver.Result, error) {
	if err := solver.Validate(e, prob, opts); err != nil {
		return solver.Result{}, err
	}
	x, ok := prob.X.(*sparse.Matrix)
	if !ok {
		return solver.Result{}, fmt.Errorf("core: engine needs an in-memory matrix, got %T", prob.X)
	}
	cfg := Config{
		Kernel: prob.Kernel, C: opts.C, Eps: opts.Eps,
		MaxIter:      opts.MaxIter,
		InitialAlpha: opts.InitialAlpha,
		Checkpoint:   opts.Checkpoint, CheckpointEvery: opts.CheckpointEvery,
		CheckpointSeed: opts.Seed, CheckpointFingerprint: opts.CheckpointFingerprint,
		RecordTrace: opts.RecordTrace, DatasetName: opts.DatasetName,
	}
	if opts.Heuristic != "" {
		h, err := HeuristicByName(opts.Heuristic)
		if err != nil {
			return solver.Result{}, err
		}
		cfg.Heuristic = h
	}
	p := opts.P
	if p <= 0 {
		p = 1
	}
	m, st, _, err := TrainParallelOpts(x, prob.Y, p, cfg, mpi.Options{Faults: opts.Faults})
	if err != nil {
		return solver.Result{}, err
	}
	res := solver.Result{
		Model:       m,
		Iterations:  st.Iterations,
		KernelEvals: st.KernelEvals,
		Converged:   st.Converged,
		Objective:   st.Objective,
		Summary: fmt.Sprintf("converged=%v iterations=%d shrink-events=%d reconstructions=%d SVs=%d (%.1f%% of samples)",
			st.Converged, st.Iterations, st.ShrinkEvents, st.Reconstructions,
			st.SVCount, 100*float64(st.SVCount)/float64(x.Rows())),
	}
	if st.Trace != nil {
		res.Trace = st.Trace
	}
	return res, nil
}
