// Oracle parity for the distributed solver. This is an external test
// package because the oracle imports core: the checks here close the loop
// the paper's exactness claim requires — a Table II heuristic run at any
// rank count must land on an eps-approximate optimum of the full QP, not
// merely classify a test set well.
package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/oracle"
)

func TestOracleParityAcrossRanks(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.1)
	kp := kernel.FromSigma2(ds.Sigma2)
	prob := oracle.Problem{X: ds.X, Y: ds.Y, Kernel: kp, C: ds.C, Eps: 1e-3}
	for _, h := range []core.Heuristic{core.Original, core.Single1000, core.Multi5pc} {
		for _, p := range []int{1, 2, 3} {
			m, st, err := core.TrainParallel(ds.X, ds.Y, p, core.Config{
				Kernel: kp, C: ds.C, Eps: 1e-3, Heuristic: h,
			})
			if err != nil {
				t.Fatalf("%s p=%d: %v", h.Name, p, err)
			}
			rep, err := prob.VerifyModel(m)
			if err != nil {
				t.Fatalf("%s p=%d: %v", h.Name, p, err)
			}
			if err := rep.Check(); err != nil {
				t.Errorf("%s p=%d fails the oracle: %v", h.Name, p, err)
			}
			// The oracle's independently recomputed dual objective must
			// agree with the solver's own bookkeeping.
			if diff := rep.DualObjective - st.Objective; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("%s p=%d: oracle dual %.9f vs solver %.9f", h.Name, p, rep.DualObjective, st.Objective)
			}
		}
	}
}
