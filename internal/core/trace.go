package core

import (
	"io"

	"repro/internal/trace"
)

// Trace, Segment and ReconEvent are re-exported from internal/trace, where
// the recording machinery shared with the baseline solver lives. The
// distributed solver fills one in on rank 0 when Config.RecordTrace is set.
type (
	// Trace is the recorded schedule of one training run.
	Trace = trace.Trace
	// Segment is a run of iterations with constant active-set size.
	Segment = trace.Segment
	// ReconEvent records one Algorithm 3 gradient reconstruction.
	ReconEvent = trace.ReconEvent
)

// LoadTrace reads a trace from JSON.
func LoadTrace(r io.Reader) (*Trace, error) { return trace.Load(r) }
