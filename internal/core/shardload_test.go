package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/dataset"
	"repro/internal/mpi"
)

// saveBlobs renders the blobs dataset to a libsvm file and returns the path
// (values survive the text format exactly: shortest-round-trip formatting).
func saveBlobs(t *testing.T) (string, *dataset.Dataset) {
	t.Helper()
	ds := dataset.MustGenerate("blobs", 0.2)
	path := filepath.Join(t.TempDir(), "blobs.libsvm")
	if err := dataset.SaveLibsvmFile(path, ds.X, ds.Y); err != nil {
		t.Fatal(err)
	}
	return path, ds
}

// TestLoadShardPartitionsParity checks the whole sharded path end to end:
// byte-range shard loading rebalanced onto BlockRange boundaries trains to
// a model bit-identical to TrainParallel on the single-file load, and the
// composed fingerprint equals the single-node fingerprint.
func TestLoadShardPartitionsParity(t *testing.T) {
	path, ds := saveBlobs(t)
	x, y, err := dataset.LoadLibsvmFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const p = 3
	cfg := blobCfg(ds, Original)
	want, wantStats, err := TrainParallel(x, y, p, cfg)
	if err != nil {
		t.Fatal(err)
	}

	d, err := LoadShardPartitions(path, p)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != x.Rows() || d.Cols != x.Cols {
		t.Fatalf("sharded shape %dx%d, want %dx%d", d.N, d.Cols, x.Rows(), x.Cols)
	}
	if got, want := d.Fingerprint, ckpt.Fingerprint(x, y); got != want {
		t.Fatalf("composed fingerprint %016x != single-node %016x", got, want)
	}
	for q, pt := range d.Partitions {
		lo, hi := BlockRange(d.N, p, q)
		if pt.Lo != lo || pt.Hi != hi {
			t.Fatalf("rank %d owns [%d,%d), want BlockRange [%d,%d)", q, pt.Lo, pt.Hi, lo, hi)
		}
	}
	got, gotStats, _, err := d.TrainOpts(cfg, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gotStats.Iterations != wantStats.Iterations {
		t.Fatalf("iteration count %d != %d", gotStats.Iterations, wantStats.Iterations)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("sharded-load model differs from single-file model")
	}
}

// TestShardFingerprintStableAcrossShardCounts checks the fingerprint is a
// property of the data, not the sharding: every shard count, and the
// pre-split file layout, compose to the same value.
func TestShardFingerprintStableAcrossShardCounts(t *testing.T) {
	path, _ := saveBlobs(t)
	x, y, err := dataset.LoadLibsvmFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := ckpt.Fingerprint(x, y)
	for _, p := range []int{1, 2, 3, 5, 8} {
		d, err := LoadShardPartitions(path, p)
		if err != nil {
			t.Fatal(err)
		}
		if d.Fingerprint != want {
			t.Fatalf("p=%d: fingerprint %016x != %016x", p, d.Fingerprint, want)
		}
	}
	// Pre-split shard files compose to the same value too.
	base := filepath.Join(t.TempDir(), "blobs.libsvm")
	const n = 4
	if _, err := dataset.WriteShards(base, x, y, n); err != nil {
		t.Fatal(err)
	}
	d, err := LoadShardPartitions(base, n)
	if err != nil {
		t.Fatal(err)
	}
	if d.Fingerprint != want {
		t.Fatalf("shard files: fingerprint %016x != %016x", d.Fingerprint, want)
	}
}

// TestShardFingerprintDetectsMutation flips one byte in one shard file and
// checks a checkpoint stamped with the clean fingerprint refuses to resume.
func TestShardFingerprintDetectsMutation(t *testing.T) {
	path, _ := saveBlobs(t)
	x, y, err := dataset.LoadLibsvmFile(path)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "blobs.libsvm")
	const n = 3
	paths, err := dataset.WriteShards(base, x, y, n)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := LoadShardPartitions(base, n)
	if err != nil {
		t.Fatal(err)
	}
	st := &ckpt.State{N: clean.N, Fingerprint: clean.Fingerprint}
	if err := st.MatchesFingerprint(clean.N, clean.Fingerprint); err != nil {
		t.Fatal(err)
	}

	// Flip one label character in the middle shard ("+1 ..." <-> "-1 ...").
	data, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	switch data[0] {
	case '+':
		data[0] = '-'
	case '-':
		data[0] = '+'
	default:
		t.Fatalf("unexpected first byte %q", data[0])
	}
	if err := os.WriteFile(paths[1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	mutated, err := LoadShardPartitions(base, n)
	if err != nil {
		t.Fatal(err)
	}
	if mutated.Fingerprint == clean.Fingerprint {
		t.Fatal("single-byte mutation not reflected in the fingerprint")
	}
	if err := st.MatchesFingerprint(mutated.N, mutated.Fingerprint); err == nil {
		t.Fatal("resume against mutated shard accepted")
	}
}
