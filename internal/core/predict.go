package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/sparse"
)

// EvaluateParallel scores a labeled set with a trained model across p
// ranks: each rank classifies a block of rows and the confusion counts are
// combined with an Allreduce. Classification is embarrassingly parallel —
// this is how the testing-accuracy numbers are produced for large test
// sets (cod-rna's published test split alone has 271617 samples).
func EvaluateParallel(m *model.Model, x *sparse.Matrix, y []float64, p int) (model.Metrics, error) {
	if m == nil {
		return model.Metrics{}, fmt.Errorf("core: nil model")
	}
	if x.Rows() != len(y) {
		return model.Metrics{}, fmt.Errorf("core: %d rows but %d labels", x.Rows(), len(y))
	}
	if p <= 0 {
		return model.Metrics{}, fmt.Errorf("core: process count must be positive, got %d", p)
	}
	if p > x.Rows() {
		p = x.Rows()
	}
	m.WarmNorms() // make concurrent DecisionValue calls safe
	results := make([]model.Metrics, p)
	err := mpi.Run(p, func(c *mpi.Comm) error {
		lo, hi := BlockRange(x.Rows(), p, c.Rank())
		// Each rank scores its block through the shared batch hot loop
		// (model.PredictBatch over a zero-copy row-range view); the ranks
		// themselves are the parallelism, so one worker per rank.
		block, err := x.RowRangeView(lo, hi)
		if err != nil {
			return err
		}
		preds := m.PredictBatch(block, 1)
		counts := []int{0, 0, 0, 0} // TP, TN, FP, FN
		for k, pred := range preds {
			i := lo + k
			switch {
			case pred > 0 && y[i] > 0:
				counts[0]++
			case pred < 0 && y[i] < 0:
				counts[1]++
			case pred > 0 && y[i] < 0:
				counts[2]++
			default:
				counts[3]++
			}
		}
		total, err := mpi.Allreduce(c, counts, sumIntSlice)
		if err != nil {
			return err
		}
		mt := model.Metrics{
			Total: x.Rows(),
			TP:    total[0], TN: total[1], FP: total[2], FN: total[3],
		}
		mt.Correct = mt.TP + mt.TN
		if mt.Total > 0 {
			mt.Accuracy = 100 * float64(mt.Correct) / float64(mt.Total)
		}
		results[c.Rank()] = mt
		return nil
	})
	if err != nil {
		return model.Metrics{}, err
	}
	return results[0], nil
}

// sumIntSlice adds two equal-length int slices elementwise, allocating the
// result so reduction inputs stay immutable (payloads are shared by
// reference across ranks).
func sumIntSlice(a, b []int) []int {
	out := make([]int, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}
