// Package core implements the paper's proposed distributed-memory SVM
// algorithm: SMO with adaptive shrinking of non-contributing samples
// (Algorithm 4 and 5) and distributed gradient reconstruction (Algorithm 3)
// to keep the solution exact, running over the message-passing substrate in
// internal/mpi. Algorithm 2 — the no-shrinking "Original" parallel solver —
// is the same code path with shrinking disabled.
package core

import (
	"fmt"
	"math"
	"sort"
)

// ReconMode selects the gradient-reconstruction policy of Table II.
type ReconMode int

const (
	// ReconNone disables shrinking entirely (the Original algorithm).
	ReconNone ReconMode = iota
	// ReconSingle reconstructs gradients exactly once, at the first
	// convergence of the shrunk problem, then never shrinks again
	// (Algorithm 4).
	ReconSingle
	// ReconMulti first synchronizes at 20*eps, re-admitting eliminated
	// samples while still far from the solution, then reconstructs as many
	// times as needed near 2*eps (Algorithm 5).
	ReconMulti
)

// String names the mode as in Table II's gamma-reconstruction column.
func (m ReconMode) String() string {
	switch m {
	case ReconNone:
		return "None"
	case ReconSingle:
		return "Single"
	case ReconMulti:
		return "Multi"
	default:
		return fmt.Sprintf("ReconMode(%d)", int(m))
	}
}

// Class is the paper's aggressiveness classification of a heuristic.
type Class int

const (
	// ClassNone applies to the Original (no shrinking) algorithm.
	ClassNone Class = iota
	// ClassAggressive heuristics shrink early (the * rows of Table II).
	ClassAggressive
	// ClassAverage heuristics sit in between (the diamond rows).
	ClassAverage
	// ClassConservative heuristics shrink late (the bullet rows).
	ClassConservative
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "n/a"
	case ClassAggressive:
		return "aggressive"
	case ClassAverage:
		return "average"
	case ClassConservative:
		return "conservative"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Heuristic is one row of Table II: when shrinking first happens (a fixed
// "random" iteration count or a fraction of the sample count) and how
// gradients are reconstructed.
type Heuristic struct {
	Name  string
	Recon ReconMode
	// InitialIters > 0 sets the first shrinking check after that many
	// iterations (Table II's "random: k" rows, after Lin et al.).
	InitialIters int64
	// InitialFrac > 0 sets the first shrinking check after
	// InitialFrac * N iterations (Table II's "numsamples: x%" rows).
	InitialFrac float64
	Class       Class
}

// Shrinks reports whether the heuristic performs any shrinking.
func (h Heuristic) Shrinks() bool { return h.Recon != ReconNone }

// InitialThreshold returns the iteration count of the first shrinking
// check for a dataset with n samples (the paper's delta). The Original
// heuristic returns a value no run will reach (n = infinity in the paper's
// notation).
func (h Heuristic) InitialThreshold(n int) int64 {
	switch {
	case !h.Shrinks():
		return math.MaxInt64
	case h.InitialIters > 0:
		return h.InitialIters
	default:
		t := int64(h.InitialFrac * float64(n))
		if t < 1 {
			t = 1
		}
		return t
	}
}

// Validate checks internal consistency.
func (h Heuristic) Validate() error {
	if h.Recon == ReconNone {
		if h.InitialIters != 0 || h.InitialFrac != 0 {
			return fmt.Errorf("core: heuristic %s: no-shrinking mode with a threshold", h.Name)
		}
		return nil
	}
	if (h.InitialIters > 0) == (h.InitialFrac > 0) {
		return fmt.Errorf("core: heuristic %s: exactly one of InitialIters/InitialFrac must be set", h.Name)
	}
	if h.InitialFrac < 0 || h.InitialFrac > 1 {
		return fmt.Errorf("core: heuristic %s: InitialFrac %v out of [0,1]", h.Name, h.InitialFrac)
	}
	return nil
}

// Original is Table II row 1: the default no-shrinking parallel algorithm.
var Original = Heuristic{Name: "Original", Recon: ReconNone, Class: ClassNone}

// The thirteen heuristics of Table II.
var (
	Single2    = Heuristic{Name: "Single2", Recon: ReconSingle, InitialIters: 2, Class: ClassAggressive}
	Single500  = Heuristic{Name: "Single500", Recon: ReconSingle, InitialIters: 500, Class: ClassAggressive}
	Single1000 = Heuristic{Name: "Single1000", Recon: ReconSingle, InitialIters: 1000, Class: ClassAverage}
	Single5pc  = Heuristic{Name: "Single5pc", Recon: ReconSingle, InitialFrac: 0.05, Class: ClassAggressive}
	Single10pc = Heuristic{Name: "Single10pc", Recon: ReconSingle, InitialFrac: 0.10, Class: ClassAverage}
	Single50pc = Heuristic{Name: "Single50pc", Recon: ReconSingle, InitialFrac: 0.50, Class: ClassConservative}
	Multi2     = Heuristic{Name: "Multi2", Recon: ReconMulti, InitialIters: 2, Class: ClassAggressive}
	Multi500   = Heuristic{Name: "Multi500", Recon: ReconMulti, InitialIters: 500, Class: ClassAggressive}
	Multi1000  = Heuristic{Name: "Multi1000", Recon: ReconMulti, InitialIters: 1000, Class: ClassAverage}
	Multi5pc   = Heuristic{Name: "Multi5pc", Recon: ReconMulti, InitialFrac: 0.05, Class: ClassAggressive}
	Multi10pc  = Heuristic{Name: "Multi10pc", Recon: ReconMulti, InitialFrac: 0.10, Class: ClassAverage}
	Multi50pc  = Heuristic{Name: "Multi50pc", Recon: ReconMulti, InitialFrac: 0.50, Class: ClassConservative}
)

// Table2 returns all heuristics of Table II in row order, Original first.
func Table2() []Heuristic {
	return []Heuristic{
		Original,
		Single2, Single500, Single1000, Single5pc, Single10pc, Single50pc,
		Multi2, Multi500, Multi1000, Multi5pc, Multi10pc, Multi50pc,
	}
}

// HeuristicByName resolves a Table II heuristic by its name
// (case-sensitive, as printed in the paper).
func HeuristicByName(name string) (Heuristic, error) {
	for _, h := range Table2() {
		if h.Name == name {
			return h, nil
		}
	}
	var names []string
	for _, h := range Table2() {
		names = append(names, h.Name)
	}
	sort.Strings(names)
	return Heuristic{}, fmt.Errorf("core: unknown heuristic %q (have %v)", name, names)
}
