// Package engines registers every training engine into the solver
// registry. It exists purely for its import side effects: binaries and
// tests that want the full registry blank-import it once instead of
// importing each engine package.
//
//	import _ "repro/internal/engines"
//
// Packages that already import an engine directly (dcsvm imports core, smo
// and linear for its sub-solves) get those registrations for free; this
// aggregator is for registry-generic consumers — the CLIs, the
// differential oracle's tests, the engines CI job — that must not hard-code
// an engine list.
package engines

import (
	_ "repro/internal/core"
	_ "repro/internal/dcsvm"
	_ "repro/internal/linear"
	_ "repro/internal/smo"
	_ "repro/internal/tasks"
)
