package engines_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dcsvm"
	"repro/internal/kernel"
	"repro/internal/linear"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/oracle"
	"repro/internal/smo"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/tasks"

	_ "repro/internal/engines"
)

// TestRegistryContents pins the engine roster: adding an engine must extend
// this list consciously, and nothing may vanish or collide.
func TestRegistryContents(t *testing.T) {
	want := []string{"core", "dc", "linear", "smo", "smo2", "tasks"}
	got := solver.Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registered engines = %v, want %v", got, want)
	}
	for _, name := range want {
		e, err := solver.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if e.Name() != name {
			t.Errorf("engine registered as %q reports Name()=%q", name, e.Name())
		}
		if solver.Describe(e) == "" {
			t.Errorf("engine %s has no description", name)
		}
	}
}

func classProblem(t *testing.T) (solver.Problem, *dataset.Dataset) {
	t.Helper()
	ds := dataset.MustGenerate("blobs", 0.1)
	return solver.Problem{X: ds.X, Y: ds.Y, Kernel: kernel.FromSigma2(ds.Sigma2)}, ds
}

// TestEngineParityWithDirectAPIs proves the refactor moved no numerics:
// every engine adapter must produce a model identical (reflect.DeepEqual,
// i.e. bit-for-bit on the float fields) to the pre-existing direct API it
// wraps, given the same seeds and hyper-parameters.
func TestEngineParityWithDirectAPIs(t *testing.T) {
	prob, ds := classProblem(t)
	ctx := context.Background()

	t.Run("core", func(t *testing.T) {
		h, err := core.HeuristicByName("Multi5pc")
		if err != nil {
			t.Fatal(err)
		}
		direct, _, err := core.TrainParallel(ds.X, ds.Y, 2, core.Config{
			Kernel: prob.Kernel, C: ds.C, Eps: 1e-3, Heuristic: h,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.Train(ctx, "core", prob, solver.Options{
			C: ds.C, Eps: 1e-3, P: 2, Heuristic: "Multi5pc",
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Model, direct) {
			t.Error("core engine model differs from core.TrainParallel")
		}
	})

	t.Run("smo-and-smo2", func(t *testing.T) {
		for _, tc := range []struct {
			engine string
			second bool
		}{{"smo", false}, {"smo2", true}} {
			direct, err := smo.Train(ds.X, ds.Y, smo.Config{
				Kernel: prob.Kernel, C: ds.C, Eps: 1e-3,
				CacheBytes: 1 << 30, Shrinking: true, SecondOrder: tc.second,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := solver.Train(ctx, tc.engine, prob, solver.Options{C: ds.C, Eps: 1e-3})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Model, direct.Model) {
				t.Errorf("%s engine model differs from smo.Train(SecondOrder=%v)", tc.engine, tc.second)
			}
			if res.Iterations != direct.Iterations {
				t.Errorf("%s engine iterations %d != direct %d", tc.engine, res.Iterations, direct.Iterations)
			}
		}
	})

	t.Run("dc", func(t *testing.T) {
		direct, _, err := dcsvm.Train(ds.X, ds.Y, dcsvm.Config{
			Kernel: prob.Kernel, C: ds.C, Eps: 1e-3,
			Clusters: 4, Seed: 42, PolishFull: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.Train(ctx, "dc", prob, solver.Options{
			C: ds.C, Eps: 1e-3, Seed: 42,
			DC: solver.DCOptions{Clusters: 4, PolishFull: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Model, direct) {
			t.Error("dc engine model differs from dcsvm.Train")
		}
	})

	t.Run("linear", func(t *testing.T) {
		direct, err := linear.Train(ds.X, ds.Y, linear.Config{
			Variant: linear.DCD, C: ds.C, Eps: 1e-3, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.Train(ctx, "linear",
			solver.Problem{X: ds.X, Y: ds.Y, Kernel: kernel.Params{Type: kernel.Linear}},
			solver.Options{C: ds.C, Eps: 1e-3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Model, direct.Model) {
			t.Error("linear engine model differs from linear.Train")
		}
	})

	t.Run("tasks-svr", func(t *testing.T) {
		x, z, err := dataset.GenerateRegression(150, 4, 0.05, 11)
		if err != nil {
			t.Fatal(err)
		}
		kp := kernel.FromSigma2(2)
		cfg := tasks.Config{Kernel: kp, Eps: 1e-3, CacheBytes: 1 << 30, Shrinking: true, SecondOrder: true}
		direct, err := tasks.TrainSVR(x, z, 10, 0.1, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.Train(ctx, "tasks",
			solver.Problem{X: x, Y: z, Kernel: kp, Task: model.TaskSVR},
			solver.Options{C: 10, Eps: 1e-3, Task: solver.TaskOptions{Epsilon: 0.1}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Model, direct.Model) {
			t.Error("tasks engine SVR model differs from tasks.TrainSVR")
		}
	})
}

// TestEnginesSmokeTrainAndOracleVerify trains every registered engine on a
// tiny seeded problem through the Engine interface and verifies each result
// with the correctness oracle — the registry-wide variant of the CI
// "engines" job.
func TestEnginesSmokeTrainAndOracleVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("trains every engine; skipped in -short")
	}
	prob, ds := classProblem(t)
	ctx := context.Background()
	objectives := map[string]float64{}
	for _, eng := range solver.Engines() {
		caps := eng.Capabilities()
		switch {
		case caps.Has(solver.CapClassify | solver.CapKernels):
			opts := solver.Options{C: ds.C, Eps: 1e-3, Seed: 7}
			if caps.Has(solver.CapComposite) {
				// Only the full-problem polish is eps-optimal on the full QP.
				opts.DC = solver.DCOptions{Clusters: 4, PolishFull: true}
			}
			res, err := eng.Train(ctx, prob, opts)
			if err != nil {
				t.Errorf("%s: train: %v", eng.Name(), err)
				continue
			}
			op := oracle.Problem{X: ds.X, Y: ds.Y, Kernel: prob.Kernel, C: ds.C, Eps: 1e-3}
			rep, err := op.VerifyModel(res.Model)
			if err != nil {
				t.Errorf("%s: oracle: %v", eng.Name(), err)
				continue
			}
			if err := rep.Check(); err != nil {
				t.Errorf("%s: oracle check: %v", eng.Name(), err)
			}
			objectives[eng.Name()] = rep.DualObjective

		case caps.Has(solver.CapClassify): // linear-only
			lp := solver.Problem{X: ds.X, Y: ds.Y, Kernel: kernel.Params{Type: kernel.Linear}}
			res, err := eng.Train(ctx, lp, solver.Options{C: ds.C, Eps: 1e-3, Seed: 7})
			if err != nil {
				t.Errorf("%s: train: %v", eng.Name(), err)
				continue
			}
			op := oracle.LinearProblem{X: ds.X, Y: ds.Y, C: ds.C, Eps: 1e-3, Loss: oracle.HingeLoss}
			rep, err := op.VerifyLinearModel(res.Model, res.Alpha)
			if err != nil {
				t.Errorf("%s: oracle: %v", eng.Name(), err)
				continue
			}
			if err := rep.Check(); err != nil {
				t.Errorf("%s: oracle check: %v", eng.Name(), err)
			}

		case caps.Has(solver.CapSVR):
			x, z, err := dataset.GenerateRegression(150, 4, 0.05, 11)
			if err != nil {
				t.Fatal(err)
			}
			kp := kernel.FromSigma2(2)
			res, err := eng.Train(ctx,
				solver.Problem{X: x, Y: z, Kernel: kp, Task: model.TaskSVR},
				solver.Options{C: 10, Eps: 1e-3, Task: solver.TaskOptions{Epsilon: 0.1}})
			if err != nil {
				t.Errorf("%s: svr train: %v", eng.Name(), err)
				continue
			}
			op := oracle.SVRProblem{X: x, Z: z, Kernel: kp, C: 10, Epsilon: 0.1, Eps: 1e-3}
			rep, err := op.VerifyModel(res.Model)
			if err != nil {
				t.Errorf("%s: svr oracle: %v", eng.Name(), err)
				continue
			}
			if err := rep.Check(); err != nil {
				t.Errorf("%s: svr oracle check: %v", eng.Name(), err)
			}
			if caps.Has(solver.CapOneClass) {
				ox, _, err := dataset.GenerateOneClass(200, 4, 0.05, 13)
				if err != nil {
					t.Fatal(err)
				}
				ores, err := eng.Train(ctx,
					solver.Problem{X: ox, Kernel: kp, Task: model.TaskOneClass},
					solver.Options{Eps: 1e-3, Task: solver.TaskOptions{Nu: 0.2}})
				if err != nil {
					t.Errorf("%s: one-class train: %v", eng.Name(), err)
					continue
				}
				oop := oracle.OneClassProblem{X: ox, Kernel: kp, Nu: 0.2, Eps: 1e-3}
				orep, err := oop.VerifyModel(ores.Model)
				if err != nil {
					t.Errorf("%s: one-class oracle: %v", eng.Name(), err)
					continue
				}
				if err := orep.Check(); err != nil {
					t.Errorf("%s: one-class oracle check: %v", eng.Name(), err)
				}
			}

		default:
			t.Errorf("engine %s trains no recognized task kind (caps %s)", eng.Name(), caps)
		}
	}
	// Pairwise objective agreement across the kernel classifiers: each is
	// eps-approximate, so any two may differ by at most the summed gap
	// tolerance.
	tol := oracle.GapTolerance(ds.X.Rows(), ds.C, 1e-3)
	for a, oa := range objectives {
		for b, ob := range objectives {
			if a < b && !(oa-ob <= tol && ob-oa <= tol) {
				t.Errorf("engines %s and %s disagree on the dual objective: %.6f vs %.6f (tol %.3g)",
					a, b, oa, ob, tol)
			}
		}
	}
}

// stubMatrix is a RowMatrix that is not a *sparse.Matrix, standing in for
// the out-of-core path in Validate's residency check.
type stubMatrix struct{ m *sparse.Matrix }

func (s stubMatrix) Rows() int                { return s.m.Rows() }
func (s stubMatrix) Dim() int                 { return s.m.Dim() }
func (s stubMatrix) RowView(i int) sparse.Row { return s.m.RowView(i) }

// TestValidateRejectsUnsupportedOptions enumerates (engine x unsupported
// option) pairs: every one must fail Validate — i.e. before any
// data-proportional work — with an error naming the engine.
func TestValidateRejectsUnsupportedOptions(t *testing.T) {
	b := sparse.NewBuilder(2)
	for i := 0; i < 4; i++ {
		b.Add(0, float64(i))
		b.Add(1, float64(-i))
		b.EndRow()
	}
	x := b.Build()
	y := []float64{1, -1, 1, -1}
	rbf := solver.Problem{X: x, Y: y, Kernel: kernel.FromSigma2(1)}
	lin := solver.Problem{X: x, Y: y, Kernel: kernel.Params{Type: kernel.Linear}}

	type pair struct {
		engine string
		reason string
		prob   solver.Problem
		opts   solver.Options
	}
	alpha := make([]float64, 4)
	pairs := []pair{
		{"linear", "warm start", lin, solver.Options{InitialAlpha: alpha}},
		{"linear", "trace", lin, solver.Options{RecordTrace: true}},
		{"linear", "heuristic", lin, solver.Options{Heuristic: "Multi5pc"}},
		{"linear", "distributed", lin, solver.Options{P: 2}},
		{"linear", "faults", lin, solver.Options{Faults: mpi.FaultPlan{CrashRank: 0, CrashAtOp: 1}}},
		{"linear", "rbf kernel", rbf, solver.Options{}},
		{"linear", "svr task", solver.Problem{X: x, Y: y, Kernel: lin.Kernel, Task: model.TaskSVR}, solver.Options{}},
		{"smo", "heuristic", rbf, solver.Options{Heuristic: "Multi5pc"}},
		{"smo", "distributed", rbf, solver.Options{P: 2}},
		{"smo", "faults", rbf, solver.Options{Faults: mpi.FaultPlan{CrashRank: 0, CrashAtOp: 1}}},
		{"smo", "streaming", solver.Problem{X: stubMatrix{x}, Y: y, Kernel: rbf.Kernel}, solver.Options{}},
		{"smo2", "heuristic", rbf, solver.Options{Heuristic: "Multi5pc"}},
		{"smo2", "streaming", solver.Problem{X: stubMatrix{x}, Y: y, Kernel: rbf.Kernel}, solver.Options{}},
		{"core", "svr task", solver.Problem{X: x, Y: y, Kernel: rbf.Kernel, Task: model.TaskSVR}, solver.Options{}},
		{"core", "one-class task", solver.Problem{X: x, Y: y, Kernel: rbf.Kernel, Task: model.TaskOneClass}, solver.Options{}},
		{"core", "streaming", solver.Problem{X: stubMatrix{x}, Y: y, Kernel: rbf.Kernel}, solver.Options{}},
		{"dc", "trace", rbf, solver.Options{RecordTrace: true}},
		{"dc", "streaming", solver.Problem{X: stubMatrix{x}, Y: y, Kernel: rbf.Kernel}, solver.Options{}},
		{"tasks", "classification", rbf, solver.Options{}},
		{"tasks", "trace", solver.Problem{X: x, Y: y, Kernel: rbf.Kernel, Task: model.TaskSVR}, solver.Options{RecordTrace: true}},
		{"tasks", "distributed", solver.Problem{X: x, Y: y, Kernel: rbf.Kernel, Task: model.TaskSVR}, solver.Options{P: 2}},
	}
	for _, pc := range pairs {
		eng, err := solver.Lookup(pc.engine)
		if err != nil {
			t.Fatalf("%s: %v", pc.engine, err)
		}
		if err := solver.Validate(eng, pc.prob, pc.opts); err == nil {
			t.Errorf("%s x %s: Validate accepted an unsupported option", pc.engine, pc.reason)
		} else if !strings.Contains(err.Error(), pc.engine) {
			t.Errorf("%s x %s: error %q does not name the engine", pc.engine, pc.reason, err)
		}
		// The same rejection must surface from Train (engines call Validate
		// first), so no engine can drift out of the contract.
		if _, err := eng.Train(context.Background(), pc.prob, pc.opts); err == nil {
			t.Errorf("%s x %s: Train accepted an unsupported option", pc.engine, pc.reason)
		}
	}
}
