package ckpt

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sparse"
)

func sampleState() *State {
	return &State{
		Solver:          SolverSMO,
		Iteration:       1234,
		Seed:            42,
		Fingerprint:     0xdeadbeefcafe,
		N:               5,
		Alpha:           []float64{0, 1.5, 0.25, 10, 0},
		Gamma:           []float64{-1, 1, -0.5, 0.5, 0},
		Active:          []bool{true, true, false, true, false},
		ShrinkCountdown: 17,
		Phase:           2,
		ShrinkEvents:    3,
		Reconstructions: 1,
	}
}

func sampleData(t *testing.T) (*sparse.Matrix, []float64) {
	t.Helper()
	b := sparse.NewBuilder(3)
	b.AddRow([]int32{0, 2}, []float64{1, 2})
	b.AddRow([]int32{1}, []float64{3})
	b.AddRow([]int32{0, 1, 2}, []float64{4, 5, 6})
	return b.Build(), []float64{1, -1, 1}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleState()
	data := Encode(want)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Solver != want.Solver || got.Iteration != want.Iteration ||
		got.Seed != want.Seed || got.Fingerprint != want.Fingerprint ||
		got.N != want.N || got.ShrinkCountdown != want.ShrinkCountdown ||
		got.Phase != want.Phase || got.ShrinkEvents != want.ShrinkEvents ||
		got.Reconstructions != want.Reconstructions {
		t.Fatalf("scalar fields mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	for i := range want.Alpha {
		if got.Alpha[i] != want.Alpha[i] || got.Gamma[i] != want.Gamma[i] || got.Active[i] != want.Active[i] {
			t.Fatalf("vector mismatch at %d", i)
		}
	}
	// Canonical encoding: re-encoding the decode yields identical bytes.
	if !bytes.Equal(Encode(got), data) {
		t.Fatal("re-encoded state differs from original bytes")
	}
}

func TestDecodeRejectsOptionalVectorsMissing(t *testing.T) {
	st := sampleState()
	st.Gamma = nil
	st.Active = nil
	got, err := Decode(Encode(st))
	if err != nil {
		t.Fatal(err)
	}
	if got.Gamma != nil || got.Active != nil {
		t.Fatal("empty optional vectors did not round-trip as empty")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := Encode(sampleState())
	cases := map[string]func([]byte) []byte{
		"empty":                func(b []byte) []byte { return nil },
		"truncated header":     func(b []byte) []byte { return b[:headerSize-3] },
		"truncated payload":    func(b []byte) []byte { return b[:len(b)-5] },
		"bad magic":            func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad version":          func(b []byte) []byte { b[8] = 99; return b },
		"flipped crc":          func(b []byte) []byte { b[13] ^= 0x01; return b },
		"flipped payload byte": func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"trailing garbage":     func(b []byte) []byte { return append(b, 0xAB) },
		"nan alpha": func(b []byte) []byte {
			st := sampleState()
			st.Alpha[2] = math.NaN()
			return Encode(st)
		},
		"alpha shorter than n": func(b []byte) []byte {
			st := sampleState()
			st.Alpha = st.Alpha[:3]
			st.Gamma, st.Active = nil, nil
			return Encode(st)
		},
	}
	for name, corrupt := range cases {
		b := append([]byte(nil), valid...)
		if _, err := Decode(corrupt(b)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestFingerprintDistinguishesData(t *testing.T) {
	x, y := sampleData(t)
	fp := Fingerprint(x, y)
	if fp != Fingerprint(x, y) {
		t.Fatal("fingerprint is not deterministic")
	}
	y2 := append([]float64(nil), y...)
	y2[1] = -y2[1]
	if Fingerprint(x, y2) == fp {
		t.Fatal("label flip did not change the fingerprint")
	}
	x2 := &sparse.Matrix{
		RowPtr: append([]int64(nil), x.RowPtr...),
		ColIdx: append([]int32(nil), x.ColIdx...),
		Val:    append([]float64(nil), x.Val...),
		Cols:   x.Cols,
	}
	x2.Val[0] += 1e-9
	if Fingerprint(x2, y) == fp {
		t.Fatal("value perturbation did not change the fingerprint")
	}
}

func TestMatchesValidatesDataset(t *testing.T) {
	x, y := sampleData(t)
	st := &State{N: x.Rows(), Fingerprint: Fingerprint(x, y), Alpha: make([]float64, x.Rows())}
	if err := st.Matches(x, y); err != nil {
		t.Fatal(err)
	}
	st.Fingerprint++
	if err := st.Matches(x, y); err == nil {
		t.Fatal("fingerprint mismatch accepted")
	}
	st.N = 99
	if err := st.Matches(x, y); err == nil {
		t.Fatal("sample-count mismatch accepted")
	}
}

func TestWriterRotatesGenerations(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := sampleState()
	s1.Iteration = 1
	if err := w.Save(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(PrevPath(dir)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("previous generation exists after a single save")
	}
	s2 := sampleState()
	s2.Iteration = 2
	if err := w.Save(s2); err != nil {
		t.Fatal(err)
	}
	if w.Saves() != 2 {
		t.Fatalf("Saves() = %d, want 2", w.Saves())
	}
	st, path, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iteration != 2 || path != LatestPath(dir) {
		t.Fatalf("loaded iteration %d from %s, want 2 from latest", st.Iteration, path)
	}
	prev, err := os.ReadFile(PrevPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	prevSt, err := Decode(prev)
	if err != nil {
		t.Fatal(err)
	}
	if prevSt.Iteration != 1 {
		t.Fatalf("previous generation holds iteration %d, want 1", prevSt.Iteration)
	}
}

// TestLoadFallsBackToPreviousGeneration is the crash-consistency contract:
// a corrupted or truncated latest generation must not lose the run — Load
// returns the retained previous snapshot instead.
func TestLoadFallsBackToPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := sampleState()
	s1.Iteration = 1
	s2 := sampleState()
	s2.Iteration = 2
	if err := w.Save(s1); err != nil {
		t.Fatal(err)
	}
	if err := w.Save(s2); err != nil {
		t.Fatal(err)
	}

	for name, corrupt := range map[string]func([]byte) []byte{
		"truncation":  func(b []byte) []byte { return b[:len(b)/2] },
		"flipped bit": func(b []byte) []byte { b[headerSize+3] ^= 0x40; return b },
	} {
		latest := LatestPath(dir)
		data, err := os.ReadFile(latest)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(latest, corrupt(append([]byte(nil), data...)), 0o644); err != nil {
			t.Fatal(err)
		}
		st, path, err := Load(dir)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Iteration != 1 || path != PrevPath(dir) {
			t.Fatalf("%s: loaded iteration %d from %s, want the previous generation", name, st.Iteration, path)
		}
		// Restore the good latest generation for the next corruption mode.
		if err := os.WriteFile(latest, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadEmptyDirFails(t *testing.T) {
	if _, _, err := Load(t.TempDir()); err == nil {
		t.Fatal("load from an empty directory succeeded")
	}
	if _, _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("load from a missing directory succeeded")
	}
}

func TestSaveValidatesState(t *testing.T) {
	w, err := NewWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Save(nil); err == nil {
		t.Fatal("nil state accepted")
	}
	if err := w.Save(&State{N: 3, Alpha: []float64{1}}); err == nil {
		t.Fatal("alpha/N mismatch accepted")
	}
	if _, err := NewWriter(""); err == nil {
		t.Fatal("empty directory accepted")
	}
}

func TestWriterDebounce(t *testing.T) {
	w, err := NewWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w.SetMinInterval(time.Hour)
	if err := w.Save(sampleState()); err != nil {
		t.Fatal(err)
	}
	if err := w.Save(sampleState()); err != nil {
		t.Fatal(err)
	}
	if got := w.Saves(); got != 1 {
		t.Fatalf("debounced writer performed %d saves, want 1", got)
	}
	if got := w.Skipped(); got != 1 {
		t.Fatalf("debounced writer skipped %d saves, want 1", got)
	}
	// Disabling the debounce restores the every-call behavior.
	w.SetMinInterval(0)
	if err := w.Save(sampleState()); err != nil {
		t.Fatal(err)
	}
	if got := w.Saves(); got != 2 {
		t.Fatalf("after disabling the debounce: %d saves, want 2", got)
	}
}
