// Package ckpt provides crash-consistent checkpoint/restore for every
// training engine in the repository.
//
// The paper targets multi-hour SMO runs on thousands of cores, where a rank
// failure mid-training is the expected case, not the exception. A solver
// that loses its dual state (alpha), gradients and shrink bookkeeping on a
// crash must restart from zero; with the warm-start entry points the engines
// already expose (smo.Config.InitialAlpha, core.Config.InitialAlpha,
// dcsvm.Config.ResumeAlpha), a periodically persisted alpha vector is enough
// to re-enter any engine and converge to the same eps-approximate optimum —
// a claim the correctness oracle (internal/oracle) can then verify instead
// of assume.
//
// The on-disk format is a single self-describing binary record:
//
//	magic (8)  | format version (u32) | CRC-32C of payload (u32) |
//	payload length (u64) | payload
//
// where the payload carries the solver kind, iteration counter, RNG seed,
// dataset fingerprint, and the alpha / gradient / active-set / shrink state.
// Every field is length-prefixed and bounds-checked on decode, so truncated
// or corrupt files are rejected (see FuzzDecodeState) rather than crashing
// the trainer.
//
// Durability follows the classic temp-file protocol: Save encodes to
// <dir>/checkpoint.ckpt.tmp, fsyncs, atomically renames the previous
// checkpoint to <dir>/checkpoint.ckpt.prev and the temp file onto
// <dir>/checkpoint.ckpt, then fsyncs the directory. One previous generation
// is always retained, so a checkpoint corrupted on disk (or a crash between
// the two renames) falls back to the prior snapshot in Load.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/sparse"
)

// Format constants. The magic distinguishes checkpoint files from every
// other artifact the repository writes; the version gates decoding so a
// future layout change cannot be misparsed as the current one.
const (
	Magic   = "SVMCKPT1"
	Version = 1
)

// Solver kinds recorded in checkpoints. They are informational provenance:
// the alpha vector is engine-agnostic, so any engine can resume from any
// checkpoint whose dataset fingerprint matches.
const (
	SolverCore  = "core"
	SolverSMO   = "smo"
	SolverDCSVM = "dcsvm"
	SolverTasks = "tasks"
)

// headerSize is magic(8) + version(4) + crc(4) + payload length(8).
const headerSize = 8 + 4 + 4 + 8

// maxSolverLen bounds the solver-kind string on decode.
const maxSolverLen = 64

var crcTable = crc32.MakeTable(crc32.Castagnoli)
var fpTable = crc64.MakeTable(crc64.ECMA)

// ErrCorrupt wraps every decode failure, so callers can distinguish a
// damaged checkpoint (fall back to the previous generation) from an I/O
// error.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// State is one solver snapshot. Alpha is mandatory and global (one entry
// per training sample, in dataset row order, regardless of how many ranks
// produced it); Gamma and Active are optional diagnostics that make a
// checkpoint self-contained for forensics — resume rebuilds gradients from
// Alpha, so their absence never blocks recovery.
type State struct {
	Solver      string // engine that wrote the snapshot (SolverCore, ...)
	Iteration   int64  // solver iteration (or dcsvm progress counter)
	Seed        int64  // RNG seed of the run, for reproducing it
	Fingerprint uint64 // dataset content hash (Fingerprint)
	N           int    // global training-sample count

	Alpha  []float64 // dual variables, len N
	Gamma  []float64 // gradients gamma_i, len N or empty
	Active []bool    // active-set membership, len N or empty

	// Shrink bookkeeping at snapshot time (diagnostic; resume re-enters
	// through warm start with fresh shrink state).
	ShrinkCountdown int64
	Phase           int32 // core multi-reconstruction phase (1 or 2)
	ShrinkEvents    int32
	Reconstructions int32
}

// The dataset fingerprint is compositional: each row hashes independently
// (bound to its global row index and label), a block of rows contributes the
// wrapping sum of its row hashes, and the final fingerprint mixes the sum
// with the global shape. Summation is associative, so ranks that load
// disjoint shards compute partial sums independently and combine them in any
// grouping — the result is identical to fingerprinting the whole dataset on
// one node, for every shard count. Binding the global index into each row
// hash keeps the commutative sum order-sensitive: moving a row changes its
// hash, so permuted or shifted datasets do not collide.

// RowFingerprint hashes one row of the dataset: its global (file-order)
// index, its label, and its sparse content.
func RowFingerprint(globalRow int, r sparse.Row, label float64) uint64 {
	h := crc64.New(fpTable)
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(globalRow))
	put(math.Float64bits(label))
	put(uint64(len(r.Idx)))
	for k, c := range r.Idx {
		put(uint64(uint32(c)))
		put(math.Float64bits(r.Val[k]))
	}
	return h.Sum64()
}

// PartialFingerprint returns the fingerprint contribution of a row block
// whose first row sits at global index lo: the wrapping sum of its row
// hashes. Partials from disjoint blocks add (in any order or grouping) to
// the whole dataset's partial.
func PartialFingerprint(x sparse.RowMatrix, y []float64, lo int) uint64 {
	var sum uint64
	for i := 0; i < x.Rows(); i++ {
		sum += RowFingerprint(lo+i, x.RowView(i), y[i])
	}
	return sum
}

// FinishFingerprint seals a summed partial with the global shape.
func FinishFingerprint(rows, cols int, partial uint64) uint64 {
	h := crc64.New(fpTable)
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(rows))
	put(uint64(cols))
	put(partial)
	return h.Sum64()
}

// FingerprintOf fingerprints any row-iterable training set — in-memory or
// out-of-core — without materializing it.
func FingerprintOf(x sparse.RowMatrix, y []float64) uint64 {
	return FinishFingerprint(x.Rows(), x.Dim(), PartialFingerprint(x, y, 0))
}

// Fingerprint returns the content hash of a training set: row content,
// labels, and shape. Two datasets fingerprint equally exactly when their
// stored rows are identical, which is the resume-safety contract: a
// checkpoint's alpha vector is only meaningful against the exact rows it
// was trained on.
func Fingerprint(x *sparse.Matrix, y []float64) uint64 {
	return FingerprintOf(x, y)
}

// BindModel mixes a base-model content hash into a dataset fingerprint.
// Incremental updates (internal/tasks) checkpoint under the bound
// fingerprint, so a resume is rejected unless BOTH the appended dataset and
// the warm-start base model are the ones the checkpoint was written against
// — the alpha vector is only meaningful relative to both.
func BindModel(datasetFP, modelHash uint64) uint64 {
	h := crc64.New(fpTable)
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], datasetFP)
	binary.LittleEndian.PutUint64(b[8:], modelHash)
	h.Write(b[:])
	return h.Sum64()
}

// Matches validates a loaded state against the dataset a resume is about to
// train, rejecting cross-dataset restores before any solver work happens.
func (s *State) Matches(x *sparse.Matrix, y []float64) error {
	if s.N != x.Rows() {
		return fmt.Errorf("ckpt: checkpoint holds %d samples, dataset has %d", s.N, x.Rows())
	}
	if len(y) != x.Rows() {
		return fmt.Errorf("ckpt: %d labels for %d rows", len(y), x.Rows())
	}
	return s.MatchesFingerprint(x.Rows(), Fingerprint(x, y))
}

// MatchesFingerprint is Matches for callers that composed the fingerprint
// themselves — the sharded loader combines per-shard partials without ever
// holding the dataset in one matrix.
func (s *State) MatchesFingerprint(n int, fp uint64) error {
	if s.N != n {
		return fmt.Errorf("ckpt: checkpoint holds %d samples, dataset has %d", s.N, n)
	}
	if fp != s.Fingerprint {
		return fmt.Errorf("ckpt: dataset fingerprint %016x does not match checkpoint fingerprint %016x — resumed data differs from the data the checkpoint was trained on", fp, s.Fingerprint)
	}
	return nil
}

// Encode serializes the state into the canonical binary format. The
// encoding is deterministic: equal states produce identical bytes, and
// Decode(Encode(s)) round-trips exactly.
func Encode(s *State) []byte {
	payload := make([]byte, 0, 64+8*len(s.Alpha)+8*len(s.Gamma)+len(s.Active))
	var b [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		payload = append(payload, b[:8]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:4], v)
		payload = append(payload, b[:4]...)
	}
	payload = append(payload, byte(len(s.Solver)))
	payload = append(payload, s.Solver...)
	put64(uint64(s.Iteration))
	put64(uint64(s.Seed))
	put64(s.Fingerprint)
	put64(uint64(s.N))
	put64(uint64(s.ShrinkCountdown))
	put32(uint32(s.Phase))
	put32(uint32(s.ShrinkEvents))
	put32(uint32(s.Reconstructions))
	put64(uint64(len(s.Alpha)))
	for _, v := range s.Alpha {
		put64(math.Float64bits(v))
	}
	put64(uint64(len(s.Gamma)))
	for _, v := range s.Gamma {
		put64(math.Float64bits(v))
	}
	put64(uint64(len(s.Active)))
	for _, v := range s.Active {
		if v {
			payload = append(payload, 1)
		} else {
			payload = append(payload, 0)
		}
	}

	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, Magic...)
	binary.LittleEndian.PutUint32(b[:4], Version)
	out = append(out, b[:4]...)
	binary.LittleEndian.PutUint32(b[:4], crc32.Checksum(payload, crcTable))
	out = append(out, b[:4]...)
	binary.LittleEndian.PutUint64(b[:], uint64(len(payload)))
	out = append(out, b[:8]...)
	return append(out, payload...)
}

// decoder is a bounds-checked little-endian reader over the payload.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) {
		d.fail("field of %d bytes overruns payload (%d of %d consumed)", n, d.off, len(d.data))
		return nil
	}
	out := d.data[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// sliceLen reads a length prefix and verifies the declared payload fits in
// the remaining bytes before any allocation happens, so a forged length
// cannot trigger a huge allocation.
func (d *decoder) sliceLen(elemBytes int, name string) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	remaining := len(d.data) - d.off
	if n > uint64(remaining/elemBytes)+1 || int(n)*elemBytes > remaining {
		d.fail("%s length %d exceeds remaining %d bytes", name, n, remaining)
		return 0
	}
	return int(n)
}

// Decode parses a checkpoint record, verifying magic, version, length and
// CRC before interpreting any field, then validating every structural
// invariant (consistent lengths, finite floats, 0/1 active bytes). Any
// failure returns an error wrapping ErrCorrupt.
func Decode(data []byte) (*State, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	if string(data[:8]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != Version {
		return nil, fmt.Errorf("%w: format version %d, this build reads version %d", ErrCorrupt, v, Version)
	}
	wantCRC := binary.LittleEndian.Uint32(data[12:16])
	plen := binary.LittleEndian.Uint64(data[16:24])
	payload := data[headerSize:]
	if plen != uint64(len(payload)) {
		return nil, fmt.Errorf("%w: declared payload %d bytes, file carries %d", ErrCorrupt, plen, len(payload))
	}
	if got := crc32.Checksum(payload, crcTable); got != wantCRC {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCorrupt, wantCRC, got)
	}

	d := &decoder{data: payload}
	st := &State{}
	solverLen := 0
	if b := d.bytes(1); b != nil {
		solverLen = int(b[0])
	}
	if solverLen > maxSolverLen {
		d.fail("solver name of %d bytes exceeds the %d-byte cap", solverLen, maxSolverLen)
	}
	st.Solver = string(d.bytes(solverLen))
	st.Iteration = int64(d.u64())
	st.Seed = int64(d.u64())
	st.Fingerprint = d.u64()
	n := d.u64()
	st.ShrinkCountdown = int64(d.u64())
	st.Phase = int32(d.u32())
	st.ShrinkEvents = int32(d.u32())
	st.Reconstructions = int32(d.u32())
	if d.err == nil && (n == 0 || n > uint64(math.MaxInt32)) {
		d.fail("sample count %d outside (0, 2^31]", n)
	}
	st.N = int(n)

	if alen := d.sliceLen(8, "alpha"); d.err == nil {
		if alen != st.N {
			d.fail("alpha holds %d entries for %d samples", alen, st.N)
		}
		st.Alpha = make([]float64, alen)
		for i := range st.Alpha {
			v := math.Float64frombits(d.u64())
			if math.IsNaN(v) || math.IsInf(v, 0) {
				d.fail("alpha[%d] is not finite", i)
				break
			}
			st.Alpha[i] = v
		}
	}
	if glen := d.sliceLen(8, "gamma"); d.err == nil {
		if glen != 0 && glen != st.N {
			d.fail("gamma holds %d entries for %d samples", glen, st.N)
		}
		if glen > 0 {
			st.Gamma = make([]float64, glen)
		}
		for i := range st.Gamma {
			v := math.Float64frombits(d.u64())
			if math.IsNaN(v) || math.IsInf(v, 0) {
				d.fail("gamma[%d] is not finite", i)
				break
			}
			st.Gamma[i] = v
		}
	}
	if blen := d.sliceLen(1, "active"); d.err == nil {
		if blen != 0 && blen != st.N {
			d.fail("active holds %d entries for %d samples", blen, st.N)
		}
		if blen > 0 {
			st.Active = make([]bool, blen)
		}
		for i := range st.Active {
			b := d.bytes(1)
			if b == nil {
				break
			}
			switch b[0] {
			case 0:
				st.Active[i] = false
			case 1:
				st.Active[i] = true
			default:
				d.fail("active[%d] byte is %d, want 0 or 1", i, b[0])
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last field", ErrCorrupt, len(payload)-d.off)
	}
	return st, nil
}

// File names within a checkpoint directory.
const (
	latestName = "checkpoint.ckpt"
	prevName   = "checkpoint.ckpt.prev"
	tmpName    = "checkpoint.ckpt.tmp"
)

// LatestPath returns the path Save writes the newest generation to.
func LatestPath(dir string) string { return filepath.Join(dir, latestName) }

// PrevPath returns the path of the retained previous generation.
func PrevPath(dir string) string { return filepath.Join(dir, prevName) }

// Writer persists checkpoint generations into one directory. It is safe for
// concurrent use (dcsvm's cluster goroutines share one writer); saves are
// serialized under a mutex so generations never interleave.
type Writer struct {
	mu          sync.Mutex
	dir         string
	saves       int
	skipped     int
	minInterval time.Duration
	lastSave    time.Time
}

// NewWriter creates (if needed) the checkpoint directory and returns a
// writer over it.
func NewWriter(dir string) (*Writer, error) {
	if dir == "" {
		return nil, errors.New("ckpt: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &Writer{dir: dir}, nil
}

// Dir returns the checkpoint directory.
func (w *Writer) Dir() string { return w.dir }

// Saves returns how many generations this writer has written (stats/bench).
func (w *Writer) Saves() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.saves
}

// Skipped returns how many Save calls the debounce suppressed.
func (w *Writer) Skipped() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.skipped
}

// SetMinInterval debounces saves: a Save arriving sooner than d after the
// previous successful save is skipped (counted by Skipped, returns nil).
// Iteration-count triggers fire at wildly different rates across engines
// and problem sizes; the debounce caps the fsync overhead at roughly
// (save cost)/d of wall-clock regardless, at the price of a resume point
// at most d older. Zero (the default) disables the debounce.
func (w *Writer) SetMinInterval(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.minInterval = d
}

// Save writes one checkpoint generation crash-consistently: encode to a
// temp file, fsync it, rotate the current generation to .prev, atomically
// rename the temp file into place, and fsync the directory. At every
// instant the directory holds at least one complete, CRC-valid generation.
func (w *Writer) Save(st *State) error {
	if st == nil {
		return errors.New("ckpt: nil state")
	}
	if len(st.Alpha) != st.N {
		return fmt.Errorf("ckpt: state holds %d alphas for %d samples", len(st.Alpha), st.N)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.minInterval > 0 && !w.lastSave.IsZero() && time.Since(w.lastSave) < w.minInterval {
		w.skipped++
		return nil
	}

	data := Encode(st)
	tmp := filepath.Join(w.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}

	latest := filepath.Join(w.dir, latestName)
	if _, err := os.Stat(latest); err == nil {
		if err := os.Rename(latest, filepath.Join(w.dir, prevName)); err != nil {
			return fmt.Errorf("ckpt: rotate previous generation: %w", err)
		}
	}
	if err := os.Rename(tmp, latest); err != nil {
		return fmt.Errorf("ckpt: install checkpoint: %w", err)
	}
	syncDir(w.dir)
	w.saves++
	w.lastSave = time.Now()
	return nil
}

// syncDir fsyncs a directory so the renames are durable; best-effort on
// platforms/filesystems where directories cannot be synced.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Load reads the newest decodable generation from a checkpoint directory:
// the latest file, or — when it is missing, truncated, or fails any decode
// check — the retained previous generation. The returned path names the
// file actually used.
func Load(dir string) (*State, string, error) {
	var errs []error
	for _, name := range []string{latestName, prevName} {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		st, err := Decode(data)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
			continue
		}
		return st, path, nil
	}
	return nil, "", fmt.Errorf("ckpt: no usable checkpoint in %s: %w", dir, errors.Join(errs...))
}
