package ckpt

import (
	"bytes"
	"math"
	"testing"
)

// fuzzSeeds builds the committed corpus shapes in code so the seeds and the
// testdata files (generated from the same constructors) cannot drift apart:
// a valid record, truncations at interesting boundaries, a flipped CRC, a
// bad version, a bad magic, and a forged huge slice length.
func fuzzSeeds() [][]byte {
	st := &State{
		Solver:      SolverCore,
		Iteration:   10,
		Seed:        7,
		Fingerprint: 0x0123456789abcdef,
		N:           3,
		Alpha:       []float64{0.5, 0, 2},
		Gamma:       []float64{-1, 1, 0.25},
		Active:      []bool{true, false, true},
	}
	valid := Encode(st)

	flipCRC := append([]byte(nil), valid...)
	flipCRC[12] ^= 0xff

	badVersion := append([]byte(nil), valid...)
	badVersion[8] = 0x7f

	badMagic := append([]byte(nil), valid...)
	badMagic[3] ^= 0x20

	// Forge an absurd alpha length: the length prefix sits right after the
	// fixed scalar block (1 + len(solver) + 5*8 + 3*4 bytes into payload).
	hugeLen := append([]byte(nil), valid...)
	off := headerSize + 1 + len(st.Solver) + 5*8 + 3*4
	for i := 0; i < 8; i++ {
		hugeLen[off+i] = 0xff
	}

	minimal := Encode(&State{Solver: SolverSMO, N: 1, Alpha: []float64{0}})

	return [][]byte{
		valid,
		minimal,
		valid[:headerSize-1],
		valid[:headerSize+3],
		valid[:len(valid)-1],
		flipCRC,
		badVersion,
		badMagic,
		hugeLen,
		[]byte(Magic),
		{},
	}
}

// FuzzDecodeState drives the checkpoint decoder with arbitrary bytes. The
// contract is strict: no panic and no huge allocation on any input; every
// accepted record satisfies the structural invariants resume depends on
// (alpha length, finite values, canonical re-encode).
func FuzzDecodeState(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		if st.N <= 0 || len(st.Alpha) != st.N {
			t.Fatalf("accepted state with N=%d, %d alphas", st.N, len(st.Alpha))
		}
		if len(st.Gamma) != 0 && len(st.Gamma) != st.N {
			t.Fatalf("accepted state with %d gammas for %d samples", len(st.Gamma), st.N)
		}
		if len(st.Active) != 0 && len(st.Active) != st.N {
			t.Fatalf("accepted state with %d active flags for %d samples", len(st.Active), st.N)
		}
		for i, v := range st.Alpha {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted non-finite alpha[%d] = %v", i, v)
			}
		}
		for i, v := range st.Gamma {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted non-finite gamma[%d] = %v", i, v)
			}
		}
		// The format is canonical: any accepted byte string must equal the
		// re-encoding of its decode. This pins down malleability — there is
		// exactly one valid serialization per state.
		if !bytes.Equal(Encode(st), data) {
			t.Fatalf("accepted non-canonical encoding (%d bytes)", len(data))
		}
	})
}
