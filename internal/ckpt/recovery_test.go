// End-to-end crash-recovery proofs: for every training engine, a seeded run
// is killed mid-training (via mpi fault injection where the engine is
// distributed), restarted from its last on-disk checkpoint, and the resumed
// model is verified by the correctness oracle — eps-optimal, with a dual
// objective matching the uninterrupted run within the oracle's duality-gap
// bound. This is the acceptance criterion of the subsystem: recovery is
// proven, not assumed.
//
// The package is ckpt_test (external) because the engines under test import
// ckpt; an internal test package would create an import cycle.
package ckpt_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dcsvm"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/oracle"
	"repro/internal/smo"
	"repro/internal/sparse"
)

// recoveryProblem is the shared small-but-nontrivial training problem: big
// enough that the engines run hundreds of iterations (so a mid-training
// kill leaves real progress behind), small enough to keep the suite fast.
type recoveryProblem struct {
	x    *sparse.Matrix
	y    []float64
	kp   kernel.Params
	c    float64
	eps  float64
	prob oracle.Problem
}

func loadRecoveryProblem(t *testing.T, scale float64) *recoveryProblem {
	t.Helper()
	spec, err := dataset.Lookup("blobs")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.GenerateSeeded(spec, scale, 7)
	if err != nil {
		t.Fatal(err)
	}
	kp := kernel.FromSigma2(ds.Sigma2)
	rp := &recoveryProblem{x: ds.X, y: ds.Y, kp: kp, c: ds.C, eps: 1e-3}
	rp.prob = oracle.Problem{X: ds.X, Y: ds.Y, Kernel: kp, C: ds.C, Eps: rp.eps}
	return rp
}

// verifyAndCompare asserts the resumed model is eps-optimal and that its
// dual objective matches the uninterrupted run's within the oracle's
// duality-gap tolerance — the bound within which two eps-approximate
// optima of the same QP may legitimately differ.
func (rp *recoveryProblem) verifyAndCompare(t *testing.T, resumed *model.Model, baselineObj float64) {
	t.Helper()
	rep, err := rp.prob.VerifyModel(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("resumed model fails the oracle: %v\n%s", err, rep)
	}
	tol := oracle.GapTolerance(rp.x.Rows(), rp.c, rp.eps)
	if diff := math.Abs(rep.DualObjective - baselineObj); diff > tol {
		t.Fatalf("resumed objective %.6f differs from uninterrupted %.6f by %.3g (tolerance %.3g)",
			rep.DualObjective, baselineObj, diff, tol)
	}
}

func (rp *recoveryProblem) baselineObjective(t *testing.T, m *model.Model) float64 {
	t.Helper()
	rep, err := rp.prob.VerifyModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("uninterrupted model fails the oracle: %v\n%s", err, rep)
	}
	return rep.DualObjective
}

// TestCoreKillResume kills one rank of the distributed solver mid-training
// with the mpi fault plan, then resumes from the last checkpoint through
// the warm-start path.
func TestCoreKillResume(t *testing.T) {
	rp := loadRecoveryProblem(t, 0.1)
	cfg := core.Config{Kernel: rp.kp, C: rp.c, Eps: rp.eps, Heuristic: core.Multi5pc}
	const p = 2

	m0, _, _, err := core.TrainParallelOpts(rp.x, rp.y, p, cfg, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := rp.baselineObjective(t, m0)

	dir := t.TempDir()
	w, err := ckpt.NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	killed := cfg
	killed.Checkpoint = w
	killed.CheckpointEvery = 5
	killed.CheckpointSeed = 7
	_, _, _, err = core.TrainParallelOpts(rp.x, rp.y, p, killed,
		mpi.Options{Faults: mpi.FaultPlan{CrashRank: 1, CrashAtOp: 2000}})
	if err == nil {
		t.Fatal("run with an injected crash reported success")
	}
	if !errors.Is(err, mpi.ErrInjectedCrash) && !errors.Is(err, mpi.ErrAborted) {
		t.Fatalf("killed run error = %v, want injected crash / abort", err)
	}
	if w.Saves() == 0 {
		t.Fatal("no checkpoint was written before the crash — lower CrashAtOp or CheckpointEvery")
	}

	st, path, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("resuming from %s: iteration %d, %d saves before crash", path, st.Iteration, w.Saves())
	if st.Solver != ckpt.SolverCore {
		t.Fatalf("checkpoint solver = %q, want %q", st.Solver, ckpt.SolverCore)
	}
	if err := st.Matches(rp.x, rp.y); err != nil {
		t.Fatal(err)
	}
	resumed := cfg
	resumed.InitialAlpha = st.Alpha
	m1, rst, _, err := core.TrainParallelOpts(rp.x, rp.y, p, resumed, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rst.Converged {
		t.Fatal("resumed run did not converge")
	}
	rp.verifyAndCompare(t, m1, base)
}

// TestSMOCheckpointResume interrupts the shared-memory baseline (no ranks
// to kill, so the interruption is an iteration cap — the state left behind
// is the same as a process kill between iterations) and resumes from the
// newest on-disk generation.
func TestSMOCheckpointResume(t *testing.T) {
	rp := loadRecoveryProblem(t, 0.1)
	cfg := smo.Config{Kernel: rp.kp, C: rp.c, Eps: rp.eps, Workers: 2, CacheBytes: 1 << 20, Shrinking: true}

	res0, err := smo.Train(rp.x, rp.y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res0.Converged {
		t.Fatal("uninterrupted run did not converge")
	}
	base := rp.baselineObjective(t, res0.Model)
	if res0.Iterations < 40 {
		t.Fatalf("problem converges in %d iterations — too few to interrupt meaningfully", res0.Iterations)
	}

	dir := t.TempDir()
	w, err := ckpt.NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	killed := cfg
	killed.Checkpoint = w
	killed.CheckpointEvery = 10
	killed.CheckpointSeed = 7
	killed.MaxIter = res0.Iterations / 2
	resK, err := smo.Train(rp.x, rp.y, killed)
	if err != nil {
		t.Fatal(err)
	}
	if resK.Converged {
		t.Fatal("interrupted run converged — cap it earlier")
	}
	if w.Saves() == 0 {
		t.Fatal("no checkpoint written before the interruption")
	}

	st, _, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Solver != ckpt.SolverSMO {
		t.Fatalf("checkpoint solver = %q, want %q", st.Solver, ckpt.SolverSMO)
	}
	if err := st.Matches(rp.x, rp.y); err != nil {
		t.Fatal(err)
	}
	resumed := cfg
	resumed.InitialAlpha = st.Alpha
	res1, err := smo.Train(rp.x, rp.y, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Converged {
		t.Fatal("resumed run did not converge")
	}
	if res1.Iterations >= res0.Iterations {
		t.Fatalf("resume took %d iterations, cold run %d — the warm start bought nothing",
			res1.Iterations, res0.Iterations)
	}
	rp.verifyAndCompare(t, res1.Model, base)
}

// TestDCSVMKillResume crashes one cluster's distributed sub-solve (after an
// earlier cluster already checkpointed its partial solution) and resumes
// the whole divide-and-conquer run from the merged partial checkpoint.
func TestDCSVMKillResume(t *testing.T) {
	rp := loadRecoveryProblem(t, 0.1)
	cfg := dcsvm.Config{
		Kernel: rp.kp, C: rp.c, Eps: rp.eps, Heuristic: core.Multi5pc,
		Clusters: 4, Seed: 7, SubSolver: "core", P: 2,
		PolishFull: true,
	}

	m0, _, err := dcsvm.Train(rp.x, rp.y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := rp.baselineObjective(t, m0)

	dir := t.TempDir()
	w, err := ckpt.NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	killed := cfg
	killed.Checkpoint = w
	killed.CheckpointEvery = 50
	killed.CheckpointSeed = 7
	// Workers = 1 serializes the cluster solves, so clusters 0..2 complete
	// (each writing a progress checkpoint) before cluster 3's distributed
	// sub-solve is crashed by the fault plan.
	killed.Workers = 1
	killed.SubFaultCluster = 3
	killed.SubFaults = mpi.FaultPlan{CrashRank: 1, CrashAtOp: 50}
	_, _, err = dcsvm.Train(rp.x, rp.y, killed)
	if err == nil {
		t.Fatal("run with an injected crash reported success")
	}
	if !errors.Is(err, mpi.ErrInjectedCrash) && !errors.Is(err, mpi.ErrAborted) {
		t.Fatalf("killed run error = %v, want injected crash / abort", err)
	}
	if w.Saves() == 0 {
		t.Fatal("no cluster checkpoint written before the crash")
	}

	st, _, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Solver != ckpt.SolverDCSVM {
		t.Fatalf("checkpoint solver = %q, want %q", st.Solver, ckpt.SolverDCSVM)
	}
	if err := st.Matches(rp.x, rp.y); err != nil {
		t.Fatal(err)
	}
	resumed := cfg
	resumed.ResumeAlpha = st.Alpha
	m1, rst, err := dcsvm.Train(rp.x, rp.y, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !rst.PolishConverged {
		t.Fatal("resumed polish did not converge")
	}
	rp.verifyAndCompare(t, m1, base)
}

// TestCrossEngineResume proves the checkpoint format is engine-agnostic:
// a snapshot written by the distributed solver warm-starts the baseline
// (and vice versa), because alpha plus the dataset fingerprint is the whole
// resume contract.
func TestCrossEngineResume(t *testing.T) {
	rp := loadRecoveryProblem(t, 0.05)
	dir := t.TempDir()
	w, err := ckpt.NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.Config{
		Kernel: rp.kp, C: rp.c, Eps: rp.eps, Heuristic: core.Multi5pc,
		Checkpoint: w, CheckpointEvery: 5, CheckpointSeed: 7,
	}
	m0, _, _, err := core.TrainParallelOpts(rp.x, rp.y, 2, ccfg, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := rp.baselineObjective(t, m0)
	if w.Saves() == 0 {
		t.Skip("run converged before the first checkpoint")
	}
	st, _, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Matches(rp.x, rp.y); err != nil {
		t.Fatal(err)
	}
	res, err := smo.Train(rp.x, rp.y, smo.Config{
		Kernel: rp.kp, C: rp.c, Eps: rp.eps, Shrinking: true,
		InitialAlpha: st.Alpha,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("cross-engine resume did not converge")
	}
	rp.verifyAndCompare(t, res.Model, base)
}
