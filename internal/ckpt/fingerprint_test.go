package ckpt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// fpDataset builds a random dataset for fingerprint tests.
func fpDataset(seed int64, rows, cols int) (*sparse.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(cols)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < 0.2 {
				b.Add(j, rng.NormFloat64())
			}
		}
		b.EndRow()
		if rng.Float64() < 0.5 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	m := b.Build()
	m.Cols = cols
	return m, y
}

// TestFingerprintComposes checks the shard-composition contract: partial
// fingerprints of disjoint row blocks sum to the whole dataset's partial for
// every shard count, so FinishFingerprint over the combined sum equals
// Fingerprint over the whole dataset.
func TestFingerprintComposes(t *testing.T) {
	x, y := fpDataset(1, 157, 40)
	want := Fingerprint(x, y)
	for _, n := range []int{1, 2, 3, 7, 16, 157} {
		var sum uint64
		for r := 0; r < n; r++ {
			lo := r * x.Rows() / n
			hi := (r + 1) * x.Rows() / n
			blk, err := x.RowRangeView(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			sum += PartialFingerprint(blk, y[lo:hi], lo)
		}
		if got := FinishFingerprint(x.Rows(), x.Cols, sum); got != want {
			t.Fatalf("n=%d shards: composed fingerprint %016x, want %016x", n, got, want)
		}
	}
}

// TestFingerprintOrderSensitive checks the commutative sum does not make the
// fingerprint permutation-blind: swapping two distinct rows (or their
// labels) changes it.
func TestFingerprintOrderSensitive(t *testing.T) {
	x, y := fpDataset(2, 40, 20)
	want := Fingerprint(x, y)

	// Swap labels of two rows with differing labels.
	i, j := -1, -1
	for a := 0; a < len(y) && i < 0; a++ {
		for b := a + 1; b < len(y); b++ {
			if y[a] != y[b] {
				i, j = a, b
				break
			}
		}
	}
	if i < 0 {
		t.Skip("degenerate labels")
	}
	y[i], y[j] = y[j], y[i]
	if Fingerprint(x, y) == want {
		t.Fatal("label swap not detected")
	}
	y[i], y[j] = y[j], y[i]

	// A duplicated dataset (same rows twice) must not collide either.
	b2 := sparse.NewBuilder(x.Cols)
	for pass := 0; pass < 2; pass++ {
		for r := 0; r < x.Rows(); r++ {
			row := x.RowView(r)
			b2.AddRow(row.Idx, row.Val)
		}
	}
	x2 := b2.Build()
	x2.Cols = x.Cols
	if Fingerprint(x2, append(append([]float64(nil), y...), y...)) == want {
		t.Fatal("doubled dataset collides with original")
	}
}

// TestFingerprintDetectsMutation flips a single value/index/label in every
// shard position and checks the composed fingerprint changes — the property
// -resume relies on to reject a silently corrupted shard.
func TestFingerprintDetectsMutation(t *testing.T) {
	x, y := fpDataset(3, 64, 24)
	want := Fingerprint(x, y)

	for k := range x.Val {
		old := x.Val[k]
		x.Val[k] = math.Nextafter(old, math.Inf(1))
		if Fingerprint(x, y) == want {
			t.Fatalf("value mutation at nnz %d not detected", k)
		}
		x.Val[k] = old
	}
	for i := range y {
		y[i] = -y[i]
		if Fingerprint(x, y) == want {
			t.Fatalf("label flip at row %d not detected", i)
		}
		y[i] = -y[i]
	}
	if Fingerprint(x, y) != want {
		t.Fatal("mutations were not fully reverted")
	}
}

// TestFingerprintOf checks the RowMatrix path agrees with the concrete
// matrix path (the OOC loader fingerprints through the interface).
func TestFingerprintOf(t *testing.T) {
	x, y := fpDataset(4, 30, 10)
	if FingerprintOf(x, y) != Fingerprint(x, y) {
		t.Fatal("FingerprintOf(Matrix) diverges from Fingerprint")
	}
}

// TestMatchesFingerprint checks the precomposed-fingerprint validator.
func TestMatchesFingerprint(t *testing.T) {
	x, y := fpDataset(5, 25, 12)
	st := &State{N: x.Rows(), Fingerprint: Fingerprint(x, y)}
	if err := st.MatchesFingerprint(x.Rows(), Fingerprint(x, y)); err != nil {
		t.Fatal(err)
	}
	if err := st.MatchesFingerprint(x.Rows()+1, Fingerprint(x, y)); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
	if err := st.MatchesFingerprint(x.Rows(), Fingerprint(x, y)^1); err == nil {
		t.Fatal("fingerprint mismatch accepted")
	}
}
