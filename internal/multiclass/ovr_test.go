package multiclass

import (
	"bytes"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/linear"
	"repro/internal/model"
	"repro/internal/sparse"
)

// ringBlobs builds a k-class 2-D dataset: one Gaussian blob per class on a
// circle of radius 3, so every one-vs-rest subproblem is (nearly) linearly
// separable and the parallel ensemble keeps all GOMAXPROCS slots busy.
func ringBlobs(n, k int, seed int64) (*sparse.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	d := make([][]float64, n)
	y := make([]float64, n)
	for i := range d {
		c := i % k
		ang := 2 * math.Pi * float64(c) / float64(k)
		d[i] = []float64{
			3*math.Cos(ang) + 0.4*rng.NormFloat64(),
			3*math.Sin(ang) + 0.4*rng.NormFloat64(),
		}
		y[i] = float64(c)
	}
	return sparse.FromDense(d), y
}

func linearTrainer(seed int64) Trainer {
	return func(bx *sparse.Matrix, by []float64) (*model.Model, error) {
		res, err := linear.Train(bx, by, linear.Config{C: 10, Seed: seed})
		if err != nil {
			return nil, err
		}
		return res.Model, nil
	}
}

// TestTrainWithLinearOVR: the parallel one-vs-rest reduction over the
// linear fast path classifies a multi-class ring.
func TestTrainWithLinearOVR(t *testing.T) {
	x, y := ringBlobs(600, 6, 1)
	m, err := TrainWith(x, y, linearTrainer(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Binary) != 6 {
		t.Fatalf("%d machines", len(m.Binary))
	}
	for ci, b := range m.Binary {
		if b == nil || !b.IsLinear() {
			t.Fatalf("machine %d missing or not linear", ci)
		}
	}
	tx, ty := ringBlobs(300, 6, 2)
	acc, err := m.Evaluate(tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 95 {
		t.Fatalf("6-class linear OVR accuracy %v%%", acc)
	}
}

// TestTrainWithSameSeedByteIdentical: goroutine scheduling must not leak
// into the ensemble — two same-seed runs serialize to identical bytes.
func TestTrainWithSameSeedByteIdentical(t *testing.T) {
	x, y := ringBlobs(400, 8, 4)
	var bufs [2]bytes.Buffer
	for r := range bufs {
		m, err := TrainWith(x, y, linearTrainer(11))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Write(&bufs[r]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("same-seed parallel OVR runs serialized differently")
	}
}

// TestTrainWithRoutesEveryClass: the reduction hands each trainer call a
// full-length {+1,-1} relabeling with exactly one class positive, and calls
// it once per class.
func TestTrainWithRoutesEveryClass(t *testing.T) {
	x, y := ringBlobs(300, 5, 5)
	var calls atomic.Int64
	var posCounts [5]atomic.Int64
	trainer := func(bx *sparse.Matrix, by []float64) (*model.Model, error) {
		calls.Add(1)
		if bx.Rows() != x.Rows() || len(by) != len(y) {
			t.Errorf("trainer saw %d rows / %d labels, want %d", bx.Rows(), len(by), x.Rows())
		}
		pos := 0
		for i, v := range by {
			switch v {
			case 1:
				pos++
			case -1:
			default:
				t.Errorf("label %d is %v, want +1/-1", i, v)
			}
		}
		// Recover which class this call is from the positive set.
		for i, v := range by {
			if v == 1 {
				posCounts[int(y[i])].Add(int64(pos))
				break
			}
		}
		return linearTrainer(7)(bx, by)
	}
	if _, err := TrainWith(x, y, trainer); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 5 {
		t.Fatalf("%d trainer calls for 5 classes", calls.Load())
	}
	for c := range posCounts {
		if posCounts[c].Load() != 60 {
			t.Fatalf("class %d: positive count %d, want 60", c, posCounts[c].Load())
		}
	}
}

// TestTrainWithHammer: many classes, repeated runs — the workload the race
// detector chews on in CI (go test -race ./internal/multiclass/...).
func TestTrainWithHammer(t *testing.T) {
	x, y := ringBlobs(480, 12, 6)
	for round := 0; round < 3; round++ {
		m, err := TrainWith(x, y, linearTrainer(int64(13+round)))
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Binary) != 12 {
			t.Fatalf("round %d: %d machines", round, len(m.Binary))
		}
	}
}

// TestTrainWithLinearErrorDeterministic: with several failing classes the
// reported class must be the first in class order, not a scheduling race.
func TestTrainWithLinearErrorDeterministic(t *testing.T) {
	x, y := ringBlobs(120, 4, 7)
	failing := func(bx *sparse.Matrix, by []float64) (*model.Model, error) {
		// Fail on every class whose positive set includes a sample of class
		// >= 1 as positive — i.e. all but class 0 — with a config error.
		for i, v := range by {
			if v == 1 && y[i] >= 1 {
				return nil, errTrainer{}
			}
		}
		return linearTrainer(7)(bx, by)
	}
	for round := 0; round < 5; round++ {
		_, err := TrainWith(x, y, failing)
		if err == nil {
			t.Fatal("expected error")
		}
		if want := "multiclass: class 1:"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Fatalf("round %d: error %q does not name the first failing class", round, err)
		}
	}
}

type errTrainer struct{}

func (errTrainer) Error() string { return "boom" }
