package multiclass

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/sparse"
)

// threeBlobs builds a 3-class 2-D dataset: Gaussian blobs at the corners
// of a triangle, labels {0, 1, 2}.
func threeBlobs(n int, seed int64) (*sparse.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]float64{{0, 2}, {-2, -1}, {2, -1}}
	d := make([][]float64, n)
	y := make([]float64, n)
	for i := range d {
		c := i % 3
		d[i] = []float64{
			centers[c][0] + 0.5*rng.NormFloat64(),
			centers[c][1] + 0.5*rng.NormFloat64(),
		}
		y[i] = float64(c)
	}
	return sparse.FromDense(d), y
}

func cfg() core.Config {
	return core.Config{
		Kernel:    kernel.Params{Type: kernel.Gaussian, Gamma: 0.5},
		C:         10,
		Eps:       1e-3,
		Heuristic: core.Multi5pc,
	}
}

func TestThreeClassBlobs(t *testing.T) {
	x, y := threeBlobs(300, 1)
	m, err := Train(x, y, 2, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 3 || len(m.Binary) != 3 {
		t.Fatalf("classes = %v", m.Classes)
	}
	tx, ty := threeBlobs(150, 2)
	acc, err := m.Evaluate(tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 95 {
		t.Fatalf("3-class accuracy %v%%", acc)
	}
	if m.NumSV() == 0 {
		t.Fatal("no support vectors")
	}
}

func TestBinaryFastPathMatchesCore(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.15)
	c := cfg()
	c.Kernel = kernel.FromSigma2(ds.Sigma2)
	c.C = ds.C
	m, err := Train(ds.X, ds.Y, 2, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 2 {
		t.Fatalf("classes = %v", m.Classes)
	}
	direct, _, err := core.TrainParallel(ds.X, ds.Y, 2, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.TestX.Rows(); i++ {
		row := ds.TestX.RowView(i)
		if m.Predict(row) != direct.Predict(row) {
			t.Fatalf("binary fast path diverged at test row %d", i)
		}
	}
	accEns, err := m.Evaluate(ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}
	accDirect, err := direct.Evaluate(ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(accEns-accDirect.Accuracy) > 1e-9 {
		t.Fatalf("accuracy %v vs direct %v", accEns, accDirect.Accuracy)
	}
}

func TestTrainValidation(t *testing.T) {
	x, y := threeBlobs(30, 3)
	if _, err := Train(x, y[:10], 2, cfg()); err == nil {
		t.Error("mismatched labels accepted")
	}
	oneClass := make([]float64, 30)
	if _, err := Train(x, oneClass, 2, cfg()); err == nil {
		t.Error("single class accepted")
	}
	if _, err := (&Model{}).Evaluate(x, y[:3]); err == nil {
		t.Error("Evaluate accepted mismatched labels")
	}
}

// TestContinuousLabelsRejected: an SVR target vector fed to one-vs-rest
// must fail fast with a redirect to the regression task, not spawn one
// binary machine per distinct float.
func TestContinuousLabelsRejected(t *testing.T) {
	x, _ := threeBlobs(30, 3)
	cont := make([]float64, 30)
	for i := range cont {
		cont[i] = 0.1 * float64(i)
	}
	trainer := func(bx *sparse.Matrix, by []float64) (*model.Model, error) {
		t.Fatal("trainer invoked for continuous labels")
		return nil, nil
	}
	_, err := TrainWith(x, cont, trainer)
	if err == nil {
		t.Fatal("continuous labels accepted")
	}
	if !strings.Contains(err.Error(), "svr") {
		t.Errorf("error %q does not redirect to the regression task", err)
	}
	// Many distinct integer labels over few samples are equally suspect.
	ints := make([]float64, 30)
	for i := range ints {
		ints[i] = float64(i)
	}
	if _, err := TrainWith(x, ints, trainer); err == nil {
		t.Error("one-label-per-sample accepted")
	}
	// Legitimate discrete classes still train (guard must not overfire).
	if _, err := TrainWith(x, threeBlobsLabels(30), func(bx *sparse.Matrix, by []float64) (*model.Model, error) {
		m, _, err := core.TrainParallel(bx, by, 2, cfg())
		return m, err
	}); err != nil {
		t.Errorf("discrete 3-class training failed: %v", err)
	}
}

func threeBlobsLabels(n int) []float64 {
	_, y := threeBlobs(n, 3)
	return y
}

func TestTenClassDigitsLike(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 10 machines; skipped with -short")
	}
	// 10 well-separated clusters in 5 dimensions.
	rng := rand.New(rand.NewSource(4))
	const n = 500
	d := make([][]float64, n)
	y := make([]float64, n)
	centers := make([][]float64, 10)
	for c := range centers {
		centers[c] = make([]float64, 5)
		for j := range centers[c] {
			centers[c][j] = 3 * rng.NormFloat64()
		}
	}
	for i := range d {
		c := i % 10
		d[i] = make([]float64, 5)
		for j := range d[i] {
			d[i][j] = centers[c][j] + 0.4*rng.NormFloat64()
		}
		y[i] = float64(c)
	}
	x := sparse.FromDense(d)
	m, err := Train(x, y, 2, core.Config{
		Kernel: kernel.Params{Type: kernel.Gaussian, Gamma: 0.1}, C: 10, Eps: 1e-2,
		Heuristic: core.Multi5pc,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := m.Evaluate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 98 {
		t.Fatalf("10-class training accuracy %v%%", acc)
	}
}

// handEnsemble builds a tiny 3-class ensemble by hand (no training) so
// serialization tests stay fast and deterministic.
func handEnsemble() *Model {
	mk := func(beta float64) *model.Model {
		return &model.Model{
			Kernel:       kernel.Params{Type: kernel.Gaussian, Gamma: 1},
			C:            10,
			SV:           sparse.FromDense([][]float64{{-1, 0}, {1, 0.5}}),
			Coef:         []float64{-1, 1},
			Beta:         beta,
			TrainSamples: 10,
		}
	}
	return &Model{
		Classes: []float64{0, 1, 2},
		Binary:  []*model.Model{mk(-0.2), mk(0), mk(0.3)},
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	m := handEnsemble()
	// Give one machine Platt parameters to check they survive embedding.
	m.Binary[1].ProbA, m.Binary[1].ProbB, m.Binary[1].HasProb = -1.5, 0.25, true
	path := t.TempDir() + "/ens.model"
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Classes) != 3 || m2.Classes[0] != 0 || m2.Classes[2] != 2 {
		t.Fatalf("classes = %v", m2.Classes)
	}
	if !m2.Binary[1].HasProb || m2.Binary[1].ProbA != -1.5 {
		t.Fatalf("Platt parameters lost: %+v", m2.Binary[1])
	}
	x := sparse.FromDense([][]float64{{-1.2, 0.1}, {0.9, 0.4}, {0.1, -0.3}})
	for i := 0; i < x.Rows(); i++ {
		row := x.RowView(i)
		if m.Predict(row) != m2.Predict(row) {
			t.Fatalf("prediction diverged after round trip at row %d", i)
		}
	}
}

func TestSerializeBinaryFastPathRoundTrip(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.15)
	c := cfg()
	c.Kernel = kernel.FromSigma2(ds.Sigma2)
	c.C = ds.C
	m, err := Train(ds.X, ds.Y, 2, c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Binary[0] != nil {
		t.Fatal("expected binary fast path")
	}
	path := t.TempDir() + "/bin.model"
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Binary[0] != nil || len(m2.Classes) != 2 {
		t.Fatalf("fast path not restored: %+v", m2.Classes)
	}
	for i := 0; i < ds.TestX.Rows(); i++ {
		row := ds.TestX.RowView(i)
		if m.Predict(row) != m2.Predict(row) {
			t.Fatalf("prediction diverged after round trip at row %d", i)
		}
	}
}

func TestReadRejectsCorrupted(t *testing.T) {
	good := handEnsemble()
	var buf strings.Builder
	if err := good.Write(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	cases := map[string]string{
		"wrong svm_type":   strings.Replace(text, "one_vs_rest", "nu_svc", 1),
		"class count":      strings.Replace(text, "classes 3", "classes 4", 1),
		"unterminated":     strings.TrimSuffix(strings.TrimSpace(text), "end_class"),
		"unknown key":      "svm_type one_vs_rest\nclasses 2\nwat 1\n",
		"bad class label":  strings.Replace(text, "class 1\n", "class one\n", 1),
		"corrupt embedded": strings.Replace(text, "kernel_type rbf", "kernel_type warp", 1),
		"empty":            "",
	}
	for name, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("%s: corrupted ensemble accepted", name)
		}
	}
}

func TestValidateEnsemble(t *testing.T) {
	if err := handEnsemble().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"too few classes", func(m *Model) { m.Classes = m.Classes[:1]; m.Binary = m.Binary[:1] }},
		{"count mismatch", func(m *Model) { m.Binary = m.Binary[:2] }},
		{"unsorted classes", func(m *Model) { m.Classes[0], m.Classes[1] = m.Classes[1], m.Classes[0] }},
		{"nil machine", func(m *Model) { m.Binary[2] = nil }},
		{"bad machine", func(m *Model) { m.Binary[0].Coef[0] = 0 }},
	}
	for _, tc := range cases {
		m := handEnsemble()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	m := handEnsemble()
	rng := rand.New(rand.NewSource(11))
	d := make([][]float64, 57)
	for i := range d {
		d[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	x := sparse.FromDense(d)
	for _, workers := range []int{1, 3, 0} {
		got := m.PredictBatch(x, workers)
		for i := range got {
			if want := m.Predict(x.RowView(i)); got[i] != want {
				t.Fatalf("workers=%d row %d: %v != %v", workers, i, got[i], want)
			}
		}
	}
}
