package multiclass

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/sparse"
)

// threeBlobs builds a 3-class 2-D dataset: Gaussian blobs at the corners
// of a triangle, labels {0, 1, 2}.
func threeBlobs(n int, seed int64) (*sparse.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]float64{{0, 2}, {-2, -1}, {2, -1}}
	d := make([][]float64, n)
	y := make([]float64, n)
	for i := range d {
		c := i % 3
		d[i] = []float64{
			centers[c][0] + 0.5*rng.NormFloat64(),
			centers[c][1] + 0.5*rng.NormFloat64(),
		}
		y[i] = float64(c)
	}
	return sparse.FromDense(d), y
}

func cfg() core.Config {
	return core.Config{
		Kernel:    kernel.Params{Type: kernel.Gaussian, Gamma: 0.5},
		C:         10,
		Eps:       1e-3,
		Heuristic: core.Multi5pc,
	}
}

func TestThreeClassBlobs(t *testing.T) {
	x, y := threeBlobs(300, 1)
	m, err := Train(x, y, 2, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 3 || len(m.Binary) != 3 {
		t.Fatalf("classes = %v", m.Classes)
	}
	tx, ty := threeBlobs(150, 2)
	acc, err := m.Evaluate(tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 95 {
		t.Fatalf("3-class accuracy %v%%", acc)
	}
	if m.NumSV() == 0 {
		t.Fatal("no support vectors")
	}
}

func TestBinaryFastPathMatchesCore(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.15)
	c := cfg()
	c.Kernel = kernel.FromSigma2(ds.Sigma2)
	c.C = ds.C
	m, err := Train(ds.X, ds.Y, 2, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 2 {
		t.Fatalf("classes = %v", m.Classes)
	}
	direct, _, err := core.TrainParallel(ds.X, ds.Y, 2, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.TestX.Rows(); i++ {
		row := ds.TestX.RowView(i)
		if m.Predict(row) != direct.Predict(row) {
			t.Fatalf("binary fast path diverged at test row %d", i)
		}
	}
	accEns, err := m.Evaluate(ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}
	accDirect, err := direct.Evaluate(ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(accEns-accDirect.Accuracy) > 1e-9 {
		t.Fatalf("accuracy %v vs direct %v", accEns, accDirect.Accuracy)
	}
}

func TestTrainValidation(t *testing.T) {
	x, y := threeBlobs(30, 3)
	if _, err := Train(x, y[:10], 2, cfg()); err == nil {
		t.Error("mismatched labels accepted")
	}
	oneClass := make([]float64, 30)
	if _, err := Train(x, oneClass, 2, cfg()); err == nil {
		t.Error("single class accepted")
	}
	if _, err := (&Model{}).Evaluate(x, y[:3]); err == nil {
		t.Error("Evaluate accepted mismatched labels")
	}
}

func TestTenClassDigitsLike(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 10 machines; skipped with -short")
	}
	// 10 well-separated clusters in 5 dimensions.
	rng := rand.New(rand.NewSource(4))
	const n = 500
	d := make([][]float64, n)
	y := make([]float64, n)
	centers := make([][]float64, 10)
	for c := range centers {
		centers[c] = make([]float64, 5)
		for j := range centers[c] {
			centers[c][j] = 3 * rng.NormFloat64()
		}
	}
	for i := range d {
		c := i % 10
		d[i] = make([]float64, 5)
		for j := range d[i] {
			d[i][j] = centers[c][j] + 0.4*rng.NormFloat64()
		}
		y[i] = float64(c)
	}
	x := sparse.FromDense(d)
	m, err := Train(x, y, 2, core.Config{
		Kernel: kernel.Params{Type: kernel.Gaussian, Gamma: 0.1}, C: 10, Eps: 1e-2,
		Heuristic: core.Multi5pc,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := m.Evaluate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 98 {
		t.Fatalf("10-class training accuracy %v%%", acc)
	}
}
