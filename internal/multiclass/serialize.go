package multiclass

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/model"
)

// The on-disk format wraps one binary model file (internal/model's text
// format) per one-vs-rest machine:
//
//	svm_type one_vs_rest
//	classes <k>
//	binary_fastpath true          (only for the plain ±1 binary case)
//	class <label>
//	<model text as written by model.(*Model).Write>
//	end_class
//	... one class section per machine ...
//
// "end_class" can never appear inside a binary model section (those lines
// are key/value headers and coef idx:val rows), so sections are
// self-delimiting and the embedded parser is model.Read unchanged.

// Validate checks structural invariants of the ensemble, including every
// embedded binary machine. Used by loaders so a bad ensemble file is
// rejected at load time, not at request time.
func (m *Model) Validate() error {
	if len(m.Classes) < 2 {
		return fmt.Errorf("multiclass: %d classes, need at least 2", len(m.Classes))
	}
	if len(m.Binary) != len(m.Classes) {
		return fmt.Errorf("multiclass: %d machines for %d classes", len(m.Binary), len(m.Classes))
	}
	for i := 1; i < len(m.Classes); i++ {
		if m.Classes[i] <= m.Classes[i-1] {
			return fmt.Errorf("multiclass: class labels not strictly increasing: %v", m.Classes)
		}
	}
	for ci, b := range m.Binary {
		if b == nil {
			// Only the binary fast path stores a nil machine: classes
			// exactly {-1, +1} with Binary[1] doing the work.
			if len(m.Classes) == 2 && ci == 0 && m.Classes[0] == -1 && m.Classes[1] == 1 && m.Binary[1] != nil {
				continue
			}
			return fmt.Errorf("multiclass: nil machine for class %v", m.Classes[ci])
		}
		if err := b.Validate(); err != nil {
			return fmt.Errorf("multiclass: class %v: %w", m.Classes[ci], err)
		}
	}
	return nil
}

// Write serializes the ensemble to w.
func (m *Model) Write(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "svm_type one_vs_rest")
	fmt.Fprintf(bw, "classes %d\n", len(m.Classes))
	if m.Binary[0] == nil {
		fmt.Fprintln(bw, "binary_fastpath true")
	}
	for ci, b := range m.Binary {
		if b == nil {
			continue
		}
		fmt.Fprintf(bw, "class %v\n", m.Classes[ci])
		if err := b.Write(bw); err != nil {
			return fmt.Errorf("multiclass: class %v: %w", m.Classes[ci], err)
		}
		fmt.Fprintln(bw, "end_class")
	}
	return bw.Flush()
}

// Read parses an ensemble previously written by Write.
func Read(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	m := &Model{}
	nClasses := -1
	fastpath := false
	var curClass *float64
	var section strings.Builder
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if curClass != nil {
			if line == "end_class" {
				b, err := model.Read(strings.NewReader(section.String()))
				if err != nil {
					return nil, fmt.Errorf("multiclass: class %v: %w", *curClass, err)
				}
				m.Classes = append(m.Classes, *curClass)
				m.Binary = append(m.Binary, b)
				curClass = nil
				section.Reset()
				continue
			}
			section.WriteString(line)
			section.WriteByte('\n')
			continue
		}
		key, val, _ := strings.Cut(line, " ")
		switch key {
		case "svm_type":
			if val != "one_vs_rest" {
				return nil, fmt.Errorf("multiclass: unsupported svm_type %q", val)
			}
		case "classes":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("multiclass: classes: %w", err)
			}
			nClasses = n
		case "binary_fastpath":
			fastpath = val == "true"
		case "class":
			c, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("multiclass: class label %q: %w", val, err)
			}
			curClass = &c
		default:
			return nil, fmt.Errorf("multiclass: unknown header key %q", key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("multiclass: read: %w", err)
	}
	if curClass != nil {
		return nil, fmt.Errorf("multiclass: class %v section not terminated by end_class", *curClass)
	}
	if fastpath {
		if len(m.Binary) != 1 {
			return nil, fmt.Errorf("multiclass: binary fast path with %d machines, want 1", len(m.Binary))
		}
		m.Classes = []float64{-1, 1}
		m.Binary = []*model.Model{nil, m.Binary[0]}
	}
	if nClasses >= 0 && len(m.Classes) != nClasses {
		return nil, fmt.Errorf("multiclass: header declared %d classes, found %d", nClasses, len(m.Classes))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Save writes the ensemble to a file.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads an ensemble from a file.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
