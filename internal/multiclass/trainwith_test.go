package multiclass

import (
	"errors"
	"testing"

	"repro/internal/dcsvm"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/sparse"
)

// TestTrainWithDCSVM composes the one-vs-rest reduction with the
// divide-and-conquer engine: each binary subproblem is clustered, solved
// per cluster, and polished, and the ensemble must still separate the blobs.
func TestTrainWithDCSVM(t *testing.T) {
	x, y := threeBlobs(300, 3)
	m, err := TrainWith(x, y, func(bx *sparse.Matrix, by []float64) (*model.Model, error) {
		dm, _, err := dcsvm.Train(bx, by, dcsvm.Config{
			Kernel:   kernel.Params{Type: kernel.Gaussian, Gamma: 0.5},
			C:        10,
			Clusters: 3,
			Seed:     5,
		})
		return dm, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Binary) != 3 {
		t.Fatalf("ensemble has %d machines, want 3", len(m.Binary))
	}
	acc, err := m.Evaluate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 95 {
		t.Fatalf("dc ensemble training accuracy %.2f%%, want >= 95%%", acc)
	}
}

// TestTrainWithPropagatesErrors: a trainer failure must surface with the
// failing class identified, for both the binary fast path and the
// one-vs-rest loop.
func TestTrainWithPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	fail := func(bx *sparse.Matrix, by []float64) (*model.Model, error) {
		return nil, boom
	}

	x, y := threeBlobs(30, 1)
	if _, err := TrainWith(x, y, fail); !errors.Is(err, boom) {
		t.Fatalf("one-vs-rest error = %v, want wrapped boom", err)
	}

	bx := sparse.FromDense([][]float64{{-1}, {1}})
	if _, err := TrainWith(bx, []float64{-1, 1}, fail); !errors.Is(err, boom) {
		t.Fatalf("binary fast-path error = %v, want boom", err)
	}
}

func TestEvaluateErrorPaths(t *testing.T) {
	x, y := threeBlobs(60, 2)
	m, err := Train(x, y, 1, cfg())
	if err != nil {
		t.Fatal(err)
	}

	// Length mismatch is an error, not a silent truncation.
	if _, err := m.Evaluate(x, y[:10]); err == nil {
		t.Error("Evaluate accepted mismatched labels")
	}

	// An empty evaluation set is defined as 0% without error.
	empty := sparse.FromDense(nil)
	acc, err := m.Evaluate(empty, nil)
	if err != nil {
		t.Fatalf("empty Evaluate: %v", err)
	}
	if acc != 0 {
		t.Fatalf("empty Evaluate = %v, want 0", acc)
	}
}
