// Package multiclass extends the binary SVM solvers to multi-class
// problems with a one-vs-rest ensemble. Several of the paper's datasets
// are natively multi-class (MNIST has ten digits, USPS ten, forest seven
// cover types); the paper trains binary subproblems, and this package is
// the standard way to compose those binary machines back into a
// multi-class classifier.
//
// Training the k one-vs-rest subproblems is embarrassingly parallel at the
// problem level and each subproblem is itself trained with the distributed
// solver, mirroring how a production deployment would schedule work.
package multiclass

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// Model is a one-vs-rest ensemble: one binary machine per class, applied
// by maximum decision value.
type Model struct {
	Classes []float64      // sorted distinct class labels
	Binary  []*model.Model // Binary[i] separates Classes[i] from the rest
}

// Classes lists the distinct labels of y in ascending order.
func distinctClasses(y []float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, v := range y {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

// Trainer fits one binary machine on labels in {+1, -1}. It decouples the
// ensemble composition from the engine, so the one-vs-rest reduction works
// with any solver in the repository (core, smo, dcsvm, linear) or a custom
// one. TrainWith invokes the trainer from multiple goroutines concurrently
// (one per class over the shared read-only CSR), so a Trainer must be safe
// for concurrent calls — every engine in the repository is, since each call
// allocates its own solver state.
type Trainer func(x *sparse.Matrix, y []float64) (*model.Model, error)

// Train fits one binary one-vs-rest subproblem per class using the
// distributed solver with the given configuration and process count.
func Train(x *sparse.Matrix, y []float64, p int, cfg core.Config) (*Model, error) {
	return TrainWith(x, y, func(bx *sparse.Matrix, by []float64) (*model.Model, error) {
		m, _, err := core.TrainParallel(bx, by, p, cfg)
		return m, err
	})
}

// TrainEngine fits the one-vs-rest ensemble through a registered solver
// engine: the engine is resolved by name once, and each per-class binary
// subproblem trains through solver.Engine.Train with the shared options.
// Engine.Train is required to be concurrency-safe, so the goroutine-per-
// class fan-out of TrainWith applies unchanged. The engine must be a
// classifier (CapClassify); kernel compatibility and option support are
// checked by the engine itself before any data-proportional work.
func TrainEngine(x *sparse.Matrix, y []float64, engine string, kp kernel.Params, opts solver.Options) (*Model, error) {
	eng, err := solver.Lookup(engine)
	if err != nil {
		return nil, err
	}
	if !eng.Capabilities().Has(solver.CapClassify) {
		return nil, fmt.Errorf("multiclass: engine %s does not train classifiers (classifier engines: %s)",
			engine, strings.Join(solver.WithCapability(solver.CapClassify), ", "))
	}
	return TrainWith(x, y, func(bx *sparse.Matrix, by []float64) (*model.Model, error) {
		res, err := eng.Train(context.Background(), solver.Problem{X: bx, Y: by, Kernel: kp}, opts)
		if err != nil {
			return nil, err
		}
		return res.Model, nil
	})
}

// TrainWith fits one binary one-vs-rest subproblem per class with the
// given trainer. The k subproblems are embarrassingly parallel over the
// shared read-only CSR (the role OpenMP's parallel-for plays in the
// one-vs-rest exemplars), so they run on a goroutine per class, bounded by
// GOMAXPROCS; each goroutine owns its binary label vector and its trained
// machine, and the assembled ensemble is identical to a sequential loop
// because class order, per-class labels and the trainer's determinism are
// all independent of scheduling.
func TrainWith(x *sparse.Matrix, y []float64, trainer Trainer) (*Model, error) {
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("multiclass: %d rows but %d labels", x.Rows(), len(y))
	}
	classes := distinctClasses(y)
	if len(classes) < 2 {
		return nil, errors.New("multiclass: need at least 2 classes")
	}
	// One-vs-rest is for discrete classes. Continuous targets (an SVR set
	// fed to the wrong trainer) would silently spawn one binary machine per
	// distinct float — catch that here with a clear redirect.
	for _, cls := range classes {
		if cls != math.Trunc(cls) {
			return nil, fmt.Errorf("multiclass: label %v is not an integer class; continuous targets are a regression task — use tasks.TrainSVR (svmtrain -task svr)", cls)
		}
	}
	if len(y) >= 8 && len(classes) > len(y)/2 {
		return nil, fmt.Errorf("multiclass: %d distinct labels over %d samples look like continuous targets, not classes — use tasks.TrainSVR (svmtrain -task svr)", len(classes), len(y))
	}
	if len(classes) == 2 && classes[0] == -1 && classes[1] == 1 {
		// Plain binary problem: one machine suffices.
		m, err := trainer(x, y)
		if err != nil {
			return nil, err
		}
		return &Model{Classes: classes, Binary: []*model.Model{nil, m}}, nil
	}
	ens := &Model{Classes: classes, Binary: make([]*model.Model, len(classes))}
	errs := make([]error, len(classes))
	workers := min(len(classes), runtime.GOMAXPROCS(0))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for ci, cls := range classes {
		wg.Add(1)
		go func(ci int, cls float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			binLabels := make([]float64, len(y))
			for i, v := range y {
				if v == cls {
					binLabels[i] = 1
				} else {
					binLabels[i] = -1
				}
			}
			m, err := trainer(x, binLabels)
			if err != nil {
				errs[ci] = fmt.Errorf("multiclass: class %v: %w", cls, err)
				return
			}
			m.WarmNorms()
			ens.Binary[ci] = m
		}(ci, cls)
	}
	wg.Wait()
	// Report the first failing class in class order, so errors are
	// deterministic regardless of goroutine scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ens, nil
}

// Predict returns the class whose one-vs-rest machine yields the largest
// decision value (ties break to the smaller class label).
func (m *Model) Predict(x sparse.Row) float64 {
	if len(m.Classes) == 2 && m.Binary[0] == nil {
		// Binary fast path: Binary[1] separates +1 from -1 directly.
		return m.Binary[1].Predict(x)
	}
	best, bestVal := m.Classes[0], m.Binary[0].DecisionValue(x)
	for ci := 1; ci < len(m.Classes); ci++ {
		if v := m.Binary[ci].DecisionValue(x); v > bestVal {
			best, bestVal = m.Classes[ci], v
		}
	}
	return best
}

// PredictBatch classifies every row of x, fanning the per-machine decision
// values through model.PredictBatch/DecisionValues' bounded worker pool
// (workers <= 0 selects GOMAXPROCS). Ties break to the smaller class label,
// matching Predict.
func (m *Model) PredictBatch(x *sparse.Matrix, workers int) []float64 {
	if len(m.Classes) == 2 && m.Binary[0] == nil {
		return m.Binary[1].PredictBatch(x, workers)
	}
	best := make([]float64, x.Rows())
	bestVal := m.Binary[0].DecisionValues(x, workers)
	for i := range best {
		best[i] = m.Classes[0]
	}
	for ci := 1; ci < len(m.Classes); ci++ {
		dv := m.Binary[ci].DecisionValues(x, workers)
		for i, v := range dv {
			if v > bestVal[i] {
				best[i], bestVal[i] = m.Classes[ci], v
			}
		}
	}
	return best
}

// Evaluate returns the fraction of correct predictions, in percent.
func (m *Model) Evaluate(x *sparse.Matrix, y []float64) (float64, error) {
	if x.Rows() != len(y) {
		return 0, fmt.Errorf("multiclass: %d rows but %d labels", x.Rows(), len(y))
	}
	if x.Rows() == 0 {
		return 0, nil
	}
	preds := m.PredictBatch(x, 0)
	correct := 0
	for i, p := range preds {
		if p == y[i] {
			correct++
		}
	}
	return 100 * float64(correct) / float64(x.Rows()), nil
}

// NumSV returns the total support vectors across all binary machines
// (SVs shared between machines are counted once per machine, matching
// the storage cost of the ensemble).
func (m *Model) NumSV() int {
	total := 0
	for _, b := range m.Binary {
		if b != nil {
			total += b.NumSV()
		}
	}
	return total
}
