package dataset

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// FuzzParseLine drives the labeled-line parser with arbitrary input. The
// parser fronts both file loading and the serving path's request decoding,
// so the invariant is strict: no panic ever, and on success the label is
// finite and the row satisfies every structural guarantee the solvers and
// the CSR matrix rely on.
func FuzzParseLine(f *testing.F) {
	for _, seed := range []string{
		"+1 1:0.5 3:1.25 10:-2",
		"-1 1:1 2:1 3:1",
		"2 4:0.001",
		"1",
		"",
		"# comment",
		"+1 1:NaN",
		"-1 2:Inf",
		"NaN 1:1",
		"+1 99999999999:1",
		"+1 2147483648:1",
		"+1 1:1e400",
		"+1 3:1 2:1",
		"+1 0:1",
		"+1 1:1 1:2",
		"+1 a:b",
		"+1 1:",
		"+1 :1",
		"\t+1\t1:3.5\t\t7:0.25",
		"1e3 1:0x1p-2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		label, row, err := ParseLine(line)
		if err != nil {
			return
		}
		if math.IsNaN(label) || math.IsInf(label, 0) {
			t.Fatalf("accepted non-finite label %v from %q", label, line)
		}
		checkRowInvariants(t, line, row.Idx, row.Val)
	})
}

// FuzzParseRow is FuzzParseLine for the unlabeled request-row format the
// inference server accepts.
func FuzzParseRow(f *testing.F) {
	for _, seed := range []string{
		"1:0.5 3:1.25 10:-2",
		"",
		"1:NaN",
		"2:Inf 3:-Inf",
		"99999999999:1",
		"2147483647:1",
		"2147483648:1",
		"1:1e400 2:1e-400",
		"3:1 2:1",
		"0:1",
		"1:1 1:2",
		"a:b c",
		"1: :2",
		"  5:0.5   9:-0.5  ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		row, err := ParseRow(line)
		if err != nil {
			return
		}
		checkRowInvariants(t, line, row.Idx, row.Val)
	})
}

// checkRowInvariants asserts what every accepted row must satisfy:
// 0-based indices that are non-negative (no int32 wrap-around) and strictly
// increasing, matching index/value lengths, and finite values only.
func checkRowInvariants(t *testing.T, line string, idx []int32, val []float64) {
	t.Helper()
	if len(idx) != len(val) {
		t.Fatalf("index/value length mismatch %d != %d from %q", len(idx), len(val), line)
	}
	prev := int32(-1)
	for k, i := range idx {
		if i < 0 {
			t.Fatalf("negative (overflowed) index %d from %q", i, line)
		}
		if i <= prev {
			t.Fatalf("non-increasing index %d after %d from %q", i, prev, line)
		}
		prev = i
		if math.IsNaN(val[k]) || math.IsInf(val[k], 0) {
			t.Fatalf("accepted non-finite value %v from %q", val[k], line)
		}
	}
	// An accepted line must round-trip through the writer format: rebuilding
	// the textual row and reparsing it must succeed and yield the same row.
	var sb strings.Builder
	for k, i := range idx {
		if k > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(int(i) + 1))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatFloat(val[k], 'g', -1, 64))
	}
	row2, err := ParseRow(sb.String())
	if err != nil {
		t.Fatalf("round-trip reparse of %q (from %q) failed: %v", sb.String(), line, err)
	}
	if len(row2.Idx) != len(idx) {
		t.Fatalf("round-trip length changed: %d -> %d from %q", len(idx), len(row2.Idx), line)
	}
	for k := range idx {
		if row2.Idx[k] != idx[k] || row2.Val[k] != val[k] {
			t.Fatalf("round-trip mismatch at %d: (%d,%v) -> (%d,%v) from %q",
				k, idx[k], val[k], row2.Idx[k], row2.Val[k], line)
		}
	}
}
