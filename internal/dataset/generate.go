package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/sparse"
)

// Spec describes a synthetic dataset generator. FullTrain/FullTest are the
// sample counts of the real dataset the spec mirrors (Table III of the
// paper); Generate scales them down by the caller's factor so experiments
// fit on one machine.
type Spec struct {
	Name      string
	FullTrain int
	FullTest  int
	Dim       int
	Density   float64 // expected fraction of nonzero features per sample
	Binary    bool    // binary bag-of-features data (a9a/w7a/mushrooms style)
	Sep       float64 // class separation in units of the noise std
	Flip      float64 // label-noise probability (creates bound SVs)
	Balance   float64 // fraction of positive samples
	C         float64 // Table III hyper-parameter
	Sigma2    float64 // Table III kernel width
	MaxProcs  int     // largest process count the paper evaluates for it
	Seed      int64
}

// Specs is the registry of the ten datasets used in the paper's evaluation,
// plus "blobs", a 2-D teaching dataset for the quickstart example.
// Shapes (sample counts, dimensionality, density, class balance, hardness)
// mirror the public libsvm-page datasets; hyper-parameters are Table III
// (datasets missing from Table III reuse the settings of their closest
// sibling, as the paper does for its smaller datasets).
var Specs = map[string]Spec{
	"higgs": {Name: "higgs", FullTrain: 2600000, Dim: 28, Density: 1.0,
		Sep: 0.8, Flip: 0.15, Balance: 0.53, C: 32, Sigma2: 64, MaxProcs: 4096, Seed: 101},
	"url": {Name: "url", FullTrain: 2300000, Dim: 20000, Density: 0.0025,
		Sep: 1.6, Flip: 0.012, Balance: 0.33, C: 10, Sigma2: 4, MaxProcs: 4096, Seed: 102},
	"forest": {Name: "forest", FullTrain: 581012, Dim: 54, Density: 0.9,
		Sep: 1.6, Flip: 0.05, Balance: 0.49, C: 10, Sigma2: 4, MaxProcs: 1024, Seed: 103},
	"realsim": {Name: "realsim", FullTrain: 72309, Dim: 20958, Density: 0.0025,
		Sep: 1.6, Flip: 0.015, Balance: 0.31, C: 10, Sigma2: 4, MaxProcs: 256, Seed: 104},
	"mnist38": {Name: "mnist38", FullTrain: 60000, FullTest: 10000, Dim: 784, Density: 0.19,
		Sep: 1.9, Flip: 0.006, Balance: 0.51, C: 10, Sigma2: 25, MaxProcs: 512, Seed: 105},
	"codrna": {Name: "codrna", FullTrain: 59535, FullTest: 271617, Dim: 8, Density: 1.0,
		Sep: 1.7, Flip: 0.035, Balance: 0.33, C: 32, Sigma2: 64, MaxProcs: 256, Seed: 106},
	"a9a": {Name: "a9a", FullTrain: 32561, FullTest: 16281, Dim: 123, Density: 0.11, Binary: true,
		Sep: 1.4, Flip: 0.08, Balance: 0.24, C: 32, Sigma2: 64, MaxProcs: 16, Seed: 107},
	"w7a": {Name: "w7a", FullTrain: 24692, FullTest: 25057, Dim: 300, Density: 0.04, Binary: true,
		Sep: 1.8, Flip: 0.006, Balance: 0.1, C: 32, Sigma2: 64, MaxProcs: 16, Seed: 108},
	"rcv1": {Name: "rcv1", FullTrain: 20242, FullTest: 0, Dim: 47236, Density: 0.0016,
		Sep: 1.6, Flip: 0.012, Balance: 0.52, C: 10, Sigma2: 4, MaxProcs: 64, Seed: 109},
	"usps": {Name: "usps", FullTrain: 7291, FullTest: 2007, Dim: 256, Density: 1.0,
		Sep: 1.8, Flip: 0.008, Balance: 0.5, C: 10, Sigma2: 25, MaxProcs: 4, Seed: 110},
	"mushrooms": {Name: "mushrooms", FullTrain: 8124, FullTest: 0, Dim: 112, Density: 0.19, Binary: true,
		Sep: 2.8, Flip: 0.001, Balance: 0.48, C: 10, Sigma2: 4, MaxProcs: 4, Seed: 111},
	"blobs": {Name: "blobs", FullTrain: 2000, FullTest: 500, Dim: 2, Density: 1.0,
		Sep: 2.0, Flip: 0.02, Balance: 0.5, C: 10, Sigma2: 1, MaxProcs: 4, Seed: 112},
}

// Names returns the registered dataset names in sorted order.
func Names() []string {
	out := make([]string, 0, len(Specs))
	for n := range Specs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the spec for a dataset name.
func Lookup(name string) (Spec, error) {
	s, ok := Specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
	}
	return s, nil
}

// ScaledCounts returns the generated train/test sizes for a scale factor,
// with a floor so tiny scales still produce a trainable set.
func (s Spec) ScaledCounts(scale float64) (train, test int) {
	train = int(float64(s.FullTrain) * scale)
	if train < 200 {
		train = min(200, s.FullTrain)
	}
	if s.FullTest > 0 {
		test = int(float64(s.FullTest) * scale)
		if test < 100 {
			test = min(100, s.FullTest)
		}
	}
	return train, test
}

// Generate produces the synthetic dataset for the spec at the given scale
// (1.0 reproduces the full published sample counts). Generation is
// deterministic in (spec, scale).
func Generate(s Spec, scale float64) (*Dataset, error) {
	return GenerateSeeded(s, scale, 0)
}

// GenerateSeeded is Generate with a caller-supplied seed overriding the
// spec's default: it is the hook `svmtrain -seed` (and any other
// reproducibility-sensitive caller) uses to draw a fresh-but-deterministic
// sample of the same distribution. Seed 0 means the spec's own seed, so
// GenerateSeeded(s, scale, 0) == Generate(s, scale) byte for byte.
func GenerateSeeded(s Spec, scale float64, seed int64) (*Dataset, error) {
	if s.Dim <= 0 || s.FullTrain <= 0 {
		return nil, fmt.Errorf("dataset: invalid spec %+v", s)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("dataset: scale must be positive, got %v", scale)
	}
	if seed == 0 {
		seed = s.Seed
	}
	nTrain, nTest := s.ScaledCounts(scale)
	rng := rand.New(rand.NewSource(seed))

	g := newGenerator(s, rng)
	trainX, trainY := g.sample(nTrain, rng)
	var testX *sparse.Matrix
	var testY []float64
	if nTest > 0 {
		testX, testY = g.sample(nTest, rng)
	}

	// Rescale features so that the paper's sigma^2 is a meaningful kernel
	// width for this data: after scaling, the mean squared pairwise
	// distance approximately equals sigma^2 (so typical off-diagonal
	// kernel values are around exp(-1/2)).
	factor := distanceScale(trainX, s.Sigma2, rng)
	scaleValues(trainX, factor)
	if testX != nil {
		scaleValues(testX, factor)
	}

	d := &Dataset{Name: s.Name, X: trainX, Y: trainY, TestX: testX, TestY: testY, C: s.C, Sigma2: s.Sigma2}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// MustGenerate is Generate for tests and examples with known-good specs.
func MustGenerate(name string, scale float64) *Dataset {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	d, err := Generate(s, scale)
	if err != nil {
		panic(err)
	}
	return d
}

// generator holds the per-dataset latent structure: a class-direction
// weight per feature and, for sparse datasets, a Zipf-like feature
// popularity distribution. The popularity skew matters: with uniformly
// random supports two sparse samples share ~k^2/d coordinates (essentially
// none for text-like dimensionalities), making classes inseparable under
// any kernel; real sparse datasets concentrate mass on common features, so
// samples overlap and the class signal survives. This is what keeps the
// synthetic stand-ins' support-vector fraction small, the property the
// paper's shrinking heuristics exploit.
type generator struct {
	spec Spec
	w    []float64 // per-feature class affinity
	cum  []float64 // cumulative feature-popularity weights (sparse only)
	rate []float64 // per-feature inclusion rate (binary only)
}

func newGenerator(s Spec, rng *rand.Rand) *generator {
	g := &generator{spec: s, w: make([]float64, s.Dim)}
	for j := range g.w {
		g.w[j] = rng.NormFloat64()
	}
	switch {
	case s.Binary:
		// Zipf-skewed per-feature inclusion rates with mean ~Density.
		g.rate = make([]float64, s.Dim)
		var sum float64
		for j := range g.rate {
			g.rate[j] = 1 / float64(j+4)
			sum += g.rate[j]
		}
		target := s.Density * float64(s.Dim)
		for j := range g.rate {
			g.rate[j] = min(0.95, g.rate[j]/sum*target)
		}
	case s.Density < 1:
		// Cumulative Zipf weights for popularity-skewed support sampling.
		g.cum = make([]float64, s.Dim)
		var run float64
		for j := 0; j < s.Dim; j++ {
			run += 1 / float64(j+4)
			g.cum[j] = run
		}
	}
	return g
}

// drawFeature samples one feature index from the popularity distribution.
func (g *generator) drawFeature(rng *rand.Rand) int {
	total := g.cum[len(g.cum)-1]
	u := rng.Float64() * total
	lo, hi := 0, len(g.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sample draws n labeled samples. Labels get flipped with probability Flip
// *after* the features are generated, so flipped samples sit on the wrong
// side of the boundary and become bound support vectors.
func (g *generator) sample(n int, rng *rand.Rand) (*sparse.Matrix, []float64) {
	s := g.spec
	b := sparse.NewBuilder(s.Dim)
	y := make([]float64, 0, n)
	// Guarantee both classes appear even in tiny sets.
	for i := 0; i < n; i++ {
		cls := -1.0
		switch {
		case i == 0:
			cls = 1
		case i == 1:
			cls = -1
		case rng.Float64() < s.Balance:
			cls = 1
		}
		if s.Binary {
			g.sampleBinaryRow(b, cls, rng)
		} else {
			g.sampleContinuousRow(b, cls, rng)
		}
		if rng.Float64() < s.Flip {
			cls = -cls
		}
		y = append(y, cls)
	}
	m := b.Build()
	m.Cols = s.Dim
	return m, y
}

// sampleContinuousRow emits a row with ~Density*Dim active features whose
// values are cls*Sep*w_j + N(0,1), normalized to unit length. Sparse rows
// draw their support from the Zipf popularity distribution so samples
// overlap on common features.
func (g *generator) sampleContinuousRow(b *sparse.Builder, cls float64, rng *rand.Rand) {
	s := g.spec
	var idx []int
	if s.Density >= 1 {
		idx = make([]int, s.Dim)
		for j := range idx {
			idx[j] = j
		}
	} else {
		k := int(s.Density * float64(s.Dim))
		if k < 1 {
			k = 1
		}
		// Jitter nnz per row like real text data.
		k += rng.Intn(k/4 + 1)
		seen := make(map[int]struct{}, k)
		for t := 0; t < k; t++ {
			j := g.drawFeature(rng)
			if _, dup := seen[j]; dup {
				continue // duplicates shorten the row slightly, like real data
			}
			seen[j] = struct{}{}
			idx = append(idx, j)
		}
	}
	vals := make([]float64, len(idx))
	var norm float64
	for t, j := range idx {
		v := cls*s.Sep*g.w[j] + rng.NormFloat64()
		vals[t] = v
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		norm = 1
	}
	for t, j := range idx {
		b.Add(j, vals[t]/norm)
	}
	b.EndRow()
}

// sampleBinaryRow emits a 0/1 row where feature j is present with a
// class-dependent, popularity-skewed probability, mimicking bag-of-features
// datasets such as a9a/w7a/mushrooms.
func (g *generator) sampleBinaryRow(b *sparse.Builder, cls float64, rng *rand.Rand) {
	s := g.spec
	wrote := false
	for j := 0; j < s.Dim; j++ {
		bias := 1 + cls*s.Sep*g.w[j]*0.5
		if bias < 0.05 {
			bias = 0.05
		}
		if rng.Float64() < g.rate[j]*bias {
			b.Add(j, 1)
			wrote = true
		}
	}
	if !wrote { // avoid all-zero rows
		b.Add(rng.Intn(s.Dim), 1)
	}
	b.EndRow()
}

// distanceScale returns the multiplier that makes the mean squared pairwise
// distance of x approximately sigma2, estimated from random pairs.
func distanceScale(x *sparse.Matrix, sigma2 float64, rng *rand.Rand) float64 {
	n := x.Rows()
	if n < 2 {
		return 1
	}
	const pairs = 256
	var sum float64
	count := 0
	for t := 0; t < pairs; t++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		sum += x.SquaredDistance(i, j)
		count++
	}
	if count == 0 || sum == 0 {
		return 1
	}
	mean := sum / float64(count)
	return math.Sqrt(sigma2 / mean)
}

func scaleValues(x *sparse.Matrix, factor float64) {
	for i := range x.Val {
		x.Val[i] *= factor
	}
}
