package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// ReadLibsvm parses the libsvm text format:
//
//	<label> <index>:<value> <index>:<value> ...
//
// Indices are 1-based and must be strictly increasing within a line (the
// format used by the libsvm dataset page). Labels other than +1/-1 are
// accepted and mapped: positive labels (and "+1") to +1, everything else
// to -1, matching the common binary-task convention for these datasets.
func ReadLibsvm(r io.Reader) (*sparse.Matrix, []float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	b := sparse.NewBuilder(0)
	var y []float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("libsvm: line %d: label %q: %w", lineNo, fields[0], err)
		}
		if label > 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
		prev := 0
		for _, f := range fields[1:] {
			idxStr, valStr, ok := strings.Cut(f, ":")
			if !ok {
				return nil, nil, fmt.Errorf("libsvm: line %d: malformed feature %q", lineNo, f)
			}
			idx, err := strconv.Atoi(idxStr)
			if err != nil || idx < 1 {
				return nil, nil, fmt.Errorf("libsvm: line %d: feature index %q", lineNo, idxStr)
			}
			if idx <= prev {
				return nil, nil, fmt.Errorf("libsvm: line %d: non-increasing feature index %d", lineNo, idx)
			}
			prev = idx
			val, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("libsvm: line %d: feature value %q: %w", lineNo, valStr, err)
			}
			b.Add(idx-1, val)
		}
		b.EndRow()
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("libsvm: %w", err)
	}
	return b.Build(), y, nil
}

// WriteLibsvm writes (x, y) in libsvm text format with 1-based indices.
func WriteLibsvm(w io.Writer, x *sparse.Matrix, y []float64) error {
	if x.Rows() != len(y) {
		return fmt.Errorf("libsvm: %d rows but %d labels", x.Rows(), len(y))
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < x.Rows(); i++ {
		if y[i] > 0 {
			fmt.Fprint(bw, "+1")
		} else {
			fmt.Fprint(bw, "-1")
		}
		r := x.RowView(i)
		for k, c := range r.Idx {
			fmt.Fprintf(bw, " %d:%v", c+1, r.Val[k])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// LoadLibsvmFile reads a libsvm file from disk.
func LoadLibsvmFile(path string) (*sparse.Matrix, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadLibsvm(f)
}

// SaveLibsvmFile writes a libsvm file to disk.
func SaveLibsvmFile(path string, x *sparse.Matrix, y []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteLibsvm(f, x, y); err != nil {
		return err
	}
	return f.Close()
}
