package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// ParseLine parses one libsvm data line:
//
//	<label> <index>:<value> <index>:<value> ...
//
// Indices are 1-based and must be strictly increasing within the line (the
// format used by the libsvm dataset page); the returned row uses 0-based
// indices as everywhere else in the repository. The label is returned raw —
// callers decide whether to sign-map it (ReadLibsvm) or keep it (multiclass
// data). Errors name the offending token so request decoders (the serving
// path) can surface them verbatim.
func ParseLine(line string) (float64, sparse.Row, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return 0, sparse.Row{}, fmt.Errorf("empty line")
	}
	label, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, sparse.Row{}, fmt.Errorf("label %q: %w", fields[0], err)
	}
	if math.IsNaN(label) || math.IsInf(label, 0) {
		return 0, sparse.Row{}, fmt.Errorf("label %q is not finite", fields[0])
	}
	row, err := parseFeatures(fields[1:])
	if err != nil {
		return 0, sparse.Row{}, err
	}
	return label, row, nil
}

// ParseRow parses a bare libsvm feature row with no leading label:
//
//	<index>:<value> <index>:<value> ...
//
// This is the request format the inference server accepts; an empty line
// yields an empty (all-zero) row.
func ParseRow(line string) (sparse.Row, error) {
	return parseFeatures(strings.Fields(line))
}

// parseFeatures converts "<idx>:<val>" tokens into a sparse row, enforcing
// 1-based strictly-increasing indices and finite-parseable values.
func parseFeatures(fields []string) (sparse.Row, error) {
	var row sparse.Row
	prev := 0
	for _, f := range fields {
		idxStr, valStr, ok := strings.Cut(f, ":")
		if !ok {
			return sparse.Row{}, fmt.Errorf("malformed feature %q (want index:value)", f)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 1 {
			return sparse.Row{}, fmt.Errorf("feature index %q (want integer >= 1)", idxStr)
		}
		if idx > math.MaxInt32 {
			// Indices are stored as int32 in the CSR matrix; without this
			// guard a huge index would silently wrap negative in the cast
			// below and corrupt the row.
			return sparse.Row{}, fmt.Errorf("feature index %d exceeds the supported maximum %d", idx, math.MaxInt32)
		}
		if idx <= prev {
			return sparse.Row{}, fmt.Errorf("non-increasing feature index %d after %d", idx, prev)
		}
		prev = idx
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return sparse.Row{}, fmt.Errorf("feature value %q: %w", valStr, err)
		}
		if math.IsNaN(val) || math.IsInf(val, 0) {
			// ParseFloat accepts "NaN"/"Inf" spellings with a nil error;
			// non-finite features poison every kernel evaluation downstream.
			return sparse.Row{}, fmt.Errorf("feature value %q is not finite", valStr)
		}
		row.Idx = append(row.Idx, int32(idx-1))
		row.Val = append(row.Val, val)
	}
	return row, nil
}

// ReadLibsvm parses the libsvm text format, one ParseLine per data line.
// Labels other than +1/-1 are accepted and mapped: positive labels (and
// "+1") to +1, everything else to -1, matching the common binary-task
// convention for these datasets.
func ReadLibsvm(r io.Reader) (*sparse.Matrix, []float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	b := sparse.NewBuilder(0)
	var y []float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		label, row, err := ParseLine(line)
		if err != nil {
			return nil, nil, fmt.Errorf("libsvm: line %d: %w", lineNo, err)
		}
		if label > 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
		b.AddRow(row.Idx, row.Val)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("libsvm: %w", err)
	}
	return b.Build(), y, nil
}

// WriteLibsvm writes (x, y) in libsvm text format with 1-based indices.
func WriteLibsvm(w io.Writer, x *sparse.Matrix, y []float64) error {
	if x.Rows() != len(y) {
		return fmt.Errorf("libsvm: %d rows but %d labels", x.Rows(), len(y))
	}
	bw := bufio.NewWriter(w)
	var scratch []byte
	for i := 0; i < x.Rows(); i++ {
		scratch = scratch[:0]
		if y[i] > 0 {
			scratch = append(scratch, "+1"...)
		} else {
			scratch = append(scratch, "-1"...)
		}
		r := x.RowView(i)
		for k, c := range r.Idx {
			scratch = append(scratch, ' ')
			scratch = strconv.AppendInt(scratch, int64(c)+1, 10)
			scratch = append(scratch, ':')
			// Shortest representation that parses back to the exact float64,
			// so a write/read round trip is bit-identical.
			scratch = strconv.AppendFloat(scratch, r.Val[k], 'g', -1, 64)
		}
		scratch = append(scratch, '\n')
		if _, err := bw.Write(scratch); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLibsvmValues parses the libsvm text format keeping labels verbatim
// instead of sign-mapping them: regression targets and multiclass labels
// survive a round trip. Everything else matches ReadLibsvm.
func ReadLibsvmValues(r io.Reader) (*sparse.Matrix, []float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	b := sparse.NewBuilder(0)
	var y []float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		label, row, err := ParseLine(line)
		if err != nil {
			return nil, nil, fmt.Errorf("libsvm: line %d: %w", lineNo, err)
		}
		y = append(y, label)
		b.AddRow(row.Idx, row.Val)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("libsvm: %w", err)
	}
	return b.Build(), y, nil
}

// WriteLibsvmValues writes (x, y) in libsvm text format with full-precision
// labels (shortest representation that parses back to the exact float64),
// the counterpart of ReadLibsvmValues for continuous targets.
func WriteLibsvmValues(w io.Writer, x *sparse.Matrix, y []float64) error {
	if x.Rows() != len(y) {
		return fmt.Errorf("libsvm: %d rows but %d labels", x.Rows(), len(y))
	}
	for _, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("libsvm: non-finite label %v", v)
		}
	}
	bw := bufio.NewWriter(w)
	var scratch []byte
	for i := 0; i < x.Rows(); i++ {
		scratch = strconv.AppendFloat(scratch[:0], y[i], 'g', -1, 64)
		r := x.RowView(i)
		for k, c := range r.Idx {
			scratch = append(scratch, ' ')
			scratch = strconv.AppendInt(scratch, int64(c)+1, 10)
			scratch = append(scratch, ':')
			scratch = strconv.AppendFloat(scratch, r.Val[k], 'g', -1, 64)
		}
		scratch = append(scratch, '\n')
		if _, err := bw.Write(scratch); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadLibsvmValuesFile reads a libsvm file from disk keeping labels verbatim.
func LoadLibsvmValuesFile(path string) (*sparse.Matrix, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadLibsvmValues(f)
}

// SaveLibsvmValuesFile writes a libsvm file to disk with verbatim labels.
func SaveLibsvmValuesFile(path string, x *sparse.Matrix, y []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteLibsvmValues(f, x, y); err != nil {
		return err
	}
	return f.Close()
}

// LoadLibsvmFile reads a libsvm file from disk.
func LoadLibsvmFile(path string) (*sparse.Matrix, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadLibsvm(f)
}

// SaveLibsvmFile writes a libsvm file to disk.
func SaveLibsvmFile(path string, x *sparse.Matrix, y []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteLibsvm(f, x, y); err != nil {
		return err
	}
	return f.Close()
}
