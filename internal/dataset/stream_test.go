package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sparse"
)

// randomLibsvm renders a seeded random dataset as libsvm text together with
// the matrix/labels ReadLibsvm is expected to reproduce.
func randomLibsvm(t *testing.T, seed int64, rows, cols int, density float64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(cols)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				// Mix magnitudes so shortest-round-trip formatting is exercised.
				b.Add(j, rng.NormFloat64()*math.Pow(10, float64(rng.Intn(7)-3)))
			}
		}
		b.EndRow()
		if rng.Float64() < 0.5 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	var buf bytes.Buffer
	if err := WriteLibsvm(&buf, b.Build(), y); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// streamVariants derives the awkward encodings of one libsvm payload: CRLF
// line endings, a missing trailing newline, and interleaved comment/blank
// lines. Each remains semantically identical to the original.
func streamVariants(data []byte) map[string][]byte {
	crlf := bytes.ReplaceAll(data, []byte("\n"), []byte("\r\n"))
	noEOL := bytes.TrimSuffix(data, []byte("\n"))
	var commented bytes.Buffer
	commented.WriteString("# header comment\n\n")
	for i, line := range bytes.SplitAfter(data, []byte("\n")) {
		commented.Write(line)
		if i%3 == 2 {
			commented.WriteString("\n# interleaved\n  \n")
		}
	}
	return map[string][]byte{
		"plain":     data,
		"crlf":      crlf,
		"noEOL":     noEOL,
		"commented": commented.Bytes(),
	}
}

func matricesIdentical(a, b *sparse.Matrix) bool {
	if a.Rows() != b.Rows() || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || math.Float64bits(a.Val[k]) != math.Float64bits(b.Val[k]) {
			return false
		}
	}
	return true
}

func labelsIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStreamParity is the property test of the streaming reader: on seeded
// random datasets, across chunk sizes that force lines to straddle chunk
// boundaries (7 bytes up to 1 MiB), across CRLF endings, missing trailing
// newline, and comment/blank lines, StreamLibsvm reassembles a result
// bit-identical to ReadLibsvm.
func TestStreamParity(t *testing.T) {
	chunks := []int{7, 64, 4 << 10, 1 << 20}
	for _, cse := range []struct {
		seed       int64
		rows, cols int
		density    float64
	}{
		{seed: 1, rows: 83, cols: 40, density: 0.15},
		{seed: 2, rows: 17, cols: 600, density: 0.30}, // long lines vs 64B chunks
		{seed: 3, rows: 200, cols: 8, density: 0.9},
	} {
		data := randomLibsvm(t, cse.seed, cse.rows, cse.cols, cse.density)
		for name, variant := range streamVariants(data) {
			wantX, wantY, err := ReadLibsvm(bytes.NewReader(variant))
			if err != nil {
				t.Fatalf("seed %d %s: ReadLibsvm: %v", cse.seed, name, err)
			}
			for _, chunk := range chunks {
				for _, blockRows := range []int{1, 13, 4096} {
					gotX, gotY, err := ReadLibsvmStream(bytes.NewReader(variant),
						StreamOptions{ChunkBytes: chunk, BlockRows: blockRows})
					if err != nil {
						t.Fatalf("seed %d %s chunk=%d block=%d: %v", cse.seed, name, chunk, blockRows, err)
					}
					if !matricesIdentical(wantX, gotX) {
						t.Fatalf("seed %d %s chunk=%d block=%d: matrix differs", cse.seed, name, chunk, blockRows)
					}
					if !labelsIdentical(wantY, gotY) {
						t.Fatalf("seed %d %s chunk=%d block=%d: labels differ", cse.seed, name, chunk, blockRows)
					}
				}
			}
		}
	}
}

// TestStreamErrorLineNumbers checks the streamed parser reports the same
// line number and cause as the whole-file parser.
func TestStreamErrorLineNumbers(t *testing.T) {
	const text = "+1 1:0.5\n# comment\n\n-1 2:1.5\n+1 3:bad\n-1 4:2\n"
	_, _, wantErr := ReadLibsvm(strings.NewReader(text))
	if wantErr == nil {
		t.Fatal("ReadLibsvm accepted the malformed line")
	}
	for _, chunk := range []int{3, 1 << 20} {
		_, _, err := ReadLibsvmStream(strings.NewReader(text), StreamOptions{ChunkBytes: chunk})
		if err == nil {
			t.Fatalf("chunk=%d: streamed reader accepted the malformed line", chunk)
		}
		if err.Error() != wantErr.Error() {
			t.Fatalf("chunk=%d: error %q, want %q", chunk, err, wantErr)
		}
	}
	if !strings.Contains(wantErr.Error(), "line 5") {
		t.Fatalf("error does not name line 5: %q", wantErr)
	}
}

// TestChunkReaderOffsets checks offset/line bookkeeping, which the shard
// loader relies on for byte-range ownership.
func TestChunkReaderOffsets(t *testing.T) {
	const text = "aa\nbbbb\r\n\nc"
	cr := NewChunkReader(strings.NewReader(text), 4)
	wants := []struct {
		raw    string
		offset int64
		line   int
	}{
		{"aa\n", 0, 1},
		{"bbbb\r\n", 3, 2},
		{"\n", 9, 3},
		{"c", 10, 4},
	}
	for _, w := range wants {
		if got, line := cr.Offset(), cr.Line(); got != w.offset || line != w.line {
			t.Fatalf("before %q: offset=%d line=%d, want %d/%d", w.raw, got, line, w.offset, w.line)
		}
		raw, err := cr.Next()
		if err != nil {
			t.Fatalf("Next before %q: %v", w.raw, err)
		}
		if string(raw) != w.raw {
			t.Fatalf("raw %q, want %q", raw, w.raw)
		}
	}
	if _, err := cr.Next(); err == nil {
		t.Fatal("expected EOF")
	}
	if cr.Offset() != int64(len(text)) {
		t.Fatalf("final offset %d, want %d", cr.Offset(), len(text))
	}
}

// TestStreamEarlyClose abandons a stream after one block; the test passing
// at all (and under -race) proves the producer exits rather than deadlocks
// on the budget or the send.
func TestStreamEarlyClose(t *testing.T) {
	data := randomLibsvm(t, 9, 400, 30, 0.3)
	s := StreamLibsvm(bytes.NewReader(data), StreamOptions{BlockRows: 10, MaxInFlightBytes: 1})
	if _, ok := s.Next(); !ok {
		t.Fatalf("no first block: %v", s.Err())
	}
	s.Close()
	s.Close() // idempotent
	if err := s.Err(); err != nil {
		t.Fatalf("unexpected error after close: %v", err)
	}
}

// TestStreamBlockOffsets checks Lo tracks the global row index of each
// block, skipping comment lines.
func TestStreamBlockOffsets(t *testing.T) {
	const text = "# c\n+1 1:1\n-1 1:2\n\n+1 1:3\n-1 1:4\n+1 1:5\n"
	s := StreamLibsvm(strings.NewReader(text), StreamOptions{BlockRows: 2})
	defer s.Close()
	var los []int
	rows := 0
	for {
		blk, ok := s.Next()
		if !ok {
			break
		}
		if blk.Lo != rows {
			t.Fatalf("block Lo=%d, want %d", blk.Lo, rows)
		}
		los = append(los, blk.Lo)
		rows += blk.X.Rows()
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 5 || len(los) != 3 {
		t.Fatalf("rows=%d blocks=%d, want 5 rows in 3 blocks", rows, len(los))
	}
}

// TestOpenOOC round-trips a libsvm file through the out-of-core path and
// compares the materialized matrix with the in-memory loader.
func TestOpenOOC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.libsvm")
	data := randomLibsvm(t, 11, 150, 50, 0.2)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	wantX, wantY, err := LoadLibsvmFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ooc, gotY, err := OpenOOC(path, OOCOptions{
		Stream:    StreamOptions{ChunkBytes: 64, BlockRows: 16},
		SpillDir:  dir,
		MemBudget: 1 << 10, // far below the payload: forces evictions
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()
	if !labelsIdentical(wantY, gotY) {
		t.Fatal("labels differ")
	}
	if ooc.Rows() != wantX.Rows() || ooc.Dim() != wantX.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", ooc.Rows(), ooc.Dim(), wantX.Rows(), wantX.Cols)
	}
	got, err := ooc.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !matricesIdentical(wantX, got) {
		t.Fatal("materialized matrix differs from in-memory load")
	}
	// Random row access parity under the tight budget.
	rng := rand.New(rand.NewSource(12))
	for k := 0; k < 500; k++ {
		i := rng.Intn(wantX.Rows())
		a, b := wantX.RowView(i), ooc.RowView(i)
		if len(a.Idx) != len(b.Idx) {
			t.Fatalf("row %d nnz differs", i)
		}
		for j := range a.Idx {
			if a.Idx[j] != b.Idx[j] || math.Float64bits(a.Val[j]) != math.Float64bits(b.Val[j]) {
				t.Fatalf("row %d entry %d differs", i, j)
			}
		}
	}
}

// TestOpenOOCParseError checks parse failures surface with line numbers and
// do not leave the spill file behind.
func TestOpenOOCParseError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.libsvm")
	if err := os.WriteFile(path, []byte("+1 1:1\n+1 nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenOOC(path, OOCOptions{SpillDir: dir})
	if err == nil {
		t.Fatal("OpenOOC accepted a malformed file")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not name the line: %v", err)
	}
	spills, _ := filepath.Glob(filepath.Join(dir, "*.spill"))
	if len(spills) != 0 {
		t.Fatalf("spill files left behind: %v", spills)
	}
}
