package dataset

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// FuzzChunkSplit drives the chunk-boundary line splitter with arbitrary
// bytes and chunk sizes. Two invariants: byte conservation — concatenating
// the raw lines reproduces the input exactly, so no byte is ever dropped,
// duplicated, or merged across a chunk boundary — and a differential check
// that the trimmed lines match bufio.Scanner's tokens, which is what the
// whole-file reader parses.
func FuzzChunkSplit(f *testing.F) {
	for _, seed := range []struct {
		data  string
		chunk int
	}{
		{"", 1},
		{"+1 1:0.5 3:1.25\n-1 2:2\n", 7},
		{"a\r\nbb\r\ncc", 2},
		{"no trailing newline", 4},
		{"\n\n\n", 1},
		{"ends in bare cr\r", 3},
		{"# comment\n\n+1 1:1\n", 5},
		{"one line far longer than the chunk so it straddles many reads\n", 3},
	} {
		f.Add([]byte(seed.data), seed.chunk)
	}
	f.Fuzz(func(t *testing.T, data []byte, chunkSize int) {
		chunk := int(uint(chunkSize)%4093) + 1
		cr := NewChunkReader(bytes.NewReader(data), chunk)
		var rebuilt []byte
		var trimmed [][]byte
		lines := 0
		for {
			wantLine := cr.Line()
			raw, err := cr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("chunk=%d: unexpected error: %v", chunk, err)
			}
			if len(raw) == 0 {
				t.Fatalf("chunk=%d: empty raw line at offset %d", chunk, cr.Offset())
			}
			lines++
			if wantLine != lines {
				t.Fatalf("chunk=%d: line numbered %d, want %d", chunk, wantLine, lines)
			}
			rebuilt = append(rebuilt, raw...)
			trimmed = append(trimmed, append([]byte(nil), TrimEOL(raw)...))
			if int64(len(rebuilt)) != cr.Offset() {
				t.Fatalf("chunk=%d: offset %d after %d bytes", chunk, cr.Offset(), len(rebuilt))
			}
		}
		if !bytes.Equal(rebuilt, data) {
			t.Fatalf("chunk=%d: reassembly differs: %d bytes in, %d bytes out", chunk, len(data), len(rebuilt))
		}
		// Differential: bufio.Scanner with a buffer large enough for any line.
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, len(data)+1), len(data)+1)
		i := 0
		for sc.Scan() {
			if i >= len(trimmed) {
				t.Fatalf("chunk=%d: scanner produced extra line %d: %q", chunk, i+1, sc.Bytes())
			}
			if !bytes.Equal(sc.Bytes(), trimmed[i]) {
				t.Fatalf("chunk=%d: line %d: %q vs scanner %q", chunk, i+1, trimmed[i], sc.Bytes())
			}
			i++
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanner: %v", err)
		}
		if i != len(trimmed) {
			t.Fatalf("chunk=%d: %d lines vs scanner's %d", chunk, len(trimmed), i)
		}
	})
}
