// Out-of-core streaming data path. ReadLibsvm holds the whole dataset
// resident while parsing — at the paper's true scales (HIGGS: 2.6M rows)
// that makes RAM the binding constraint before any solver runs. This file
// adds the chunk-at-a-time alternative: a ChunkReader that consumes the
// byte stream in fixed-size chunks and re-assembles lines across chunk
// boundaries, a StreamLibsvm producer that parses those lines into bounded
// CSR blocks handed over a channel under a byte budget, and OpenOOC, which
// spills the blocks into a sparse.OOCMatrix so training proceeds with peak
// memory proportional to the budget, not the file.
package dataset

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"repro/internal/sparse"
)

// DefaultChunkBytes is the read granularity of the chunked reader.
const DefaultChunkBytes = 1 << 20

// ChunkReader yields the lines of a byte stream, reading fixed-size chunks
// and carrying partial lines across chunk boundaries. Unlike bufio.Scanner
// it reports the raw line including its terminator (so byte accounting is
// exact — see FuzzChunkSplit) and tracks the byte offset and 1-based line
// number of the next line, which the shard loader uses to honour byte-range
// ownership.
type ChunkReader struct {
	r      io.Reader
	buf    []byte // unconsumed bytes; lines are cut from the front
	start  int    // parse position within buf
	offset int64  // stream offset of buf[start]
	line   int    // 1-based number of the next line Next returns
	chunk  int    // read granularity
	eof    bool
	err    error
}

// NewChunkReader returns a ChunkReader over r with the given chunk size
// (<= 0 selects DefaultChunkBytes).
func NewChunkReader(r io.Reader, chunkBytes int) *ChunkReader {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	return &ChunkReader{r: r, chunk: chunkBytes, line: 1}
}

// Offset returns the stream offset of the first byte of the next line.
func (c *ChunkReader) Offset() int64 { return c.offset }

// Line returns the 1-based line number of the next line.
func (c *ChunkReader) Line() int { return c.line }

// Next returns the next raw line including its '\n' terminator (the final
// line of a terminator-less stream is returned bare), or io.EOF when the
// stream is exhausted. The returned slice is only valid until the next
// call. Concatenating every returned slice reproduces the input exactly.
func (c *ChunkReader) Next() ([]byte, error) {
	for {
		// A complete line already buffered?
		if i := bytes.IndexByte(c.buf[c.start:], '\n'); i >= 0 {
			raw := c.buf[c.start : c.start+i+1]
			c.start += i + 1
			c.offset += int64(len(raw))
			c.line++
			return raw, nil
		}
		if c.eof {
			if c.start < len(c.buf) {
				raw := c.buf[c.start:]
				c.start = len(c.buf)
				c.offset += int64(len(raw))
				c.line++
				return raw, nil
			}
			if c.err != nil && c.err != io.EOF {
				return nil, c.err
			}
			return nil, io.EOF
		}
		// Compact the consumed prefix, then read one more chunk. The buffer
		// grows beyond one chunk only when a single line does.
		if c.start > 0 {
			c.buf = append(c.buf[:0], c.buf[c.start:]...)
			c.start = 0
		}
		pending := len(c.buf)
		c.buf = append(c.buf, make([]byte, c.chunk)...)
		n, err := io.ReadFull(c.r, c.buf[pending:])
		c.buf = c.buf[:pending+n]
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			c.eof = true
		} else if err != nil {
			c.eof, c.err = true, err
		}
	}
}

// TrimEOL strips one trailing "\n" or "\r\n", plus a bare trailing "\r" on
// a terminator-less final line — byte-for-byte what bufio.ScanLines leaves
// in its tokens, which is what the whole-file reader parses.
func TrimEOL(raw []byte) []byte {
	if n := len(raw); n > 0 && raw[n-1] == '\n' {
		raw = raw[:n-1]
	}
	if n := len(raw); n > 0 && raw[n-1] == '\r' {
		raw = raw[:n-1]
	}
	return raw
}

// StreamOptions configures StreamLibsvm.
type StreamOptions struct {
	// ChunkBytes is the read granularity (default DefaultChunkBytes).
	ChunkBytes int
	// BlockRows caps the rows per emitted block (default 4096).
	BlockRows int
	// MaxBlockBytes additionally caps the decoded CSR payload per block, so
	// wide rows cannot inflate a block past a memory budget (<= 0 disables
	// the cap; a single row larger than the cap still forms its own block).
	MaxBlockBytes int64
	// MaxInFlightBytes bounds the decoded CSR bytes buffered between the
	// producer and the consumer (default 64 MiB). A single oversized block
	// is still admitted, so progress never deadlocks.
	MaxInFlightBytes int64
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = DefaultChunkBytes
	}
	if o.BlockRows <= 0 {
		o.BlockRows = 4096
	}
	if o.MaxInFlightBytes <= 0 {
		o.MaxInFlightBytes = 64 << 20
	}
	return o
}

// Block is one parsed slice of the stream: rows [Lo, Lo+X.Rows()) of the
// dataset in file order, with sign-mapped labels exactly as ReadLibsvm
// produces them.
type Block struct {
	X  *sparse.Matrix
	Y  []float64
	Lo int // global row index of X's first row
}

// Stream is a running StreamLibsvm producer. Consume with Next; a block's
// budget charge is released when the following Next call hands it back.
type Stream struct {
	ch     chan Block
	done   chan struct{}
	closed sync.Once

	mu      sync.Mutex
	charged int64
	cond    *sync.Cond
	budget  int64

	errMu sync.Mutex
	err   error

	prev int64 // charge of the block most recently handed out
}

// Next returns the next block. ok is false when the stream is exhausted or
// failed — check Err. Calling Next releases the previously returned block's
// byte charge, so a consumer that processes one block at a time holds at
// most one block plus the producer's in-flight window.
func (s *Stream) Next() (Block, bool) {
	s.release(s.prev)
	s.prev = 0
	b, ok := <-s.ch
	if ok {
		s.prev = int64(b.X.ByteSize())
	}
	return b, ok
}

// Err reports the first error the producer hit (nil after a clean EOF).
func (s *Stream) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// Close abandons the stream early; the producer goroutine exits promptly.
// Safe to call multiple times and after exhaustion.
func (s *Stream) Close() {
	s.closed.Do(func() {
		close(s.done)
		// Wake a producer parked on the budget so it can observe done.
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
		// Drain so a producer blocked on the send also completes.
		go func() {
			for range s.ch {
			}
		}()
	})
}

func (s *Stream) setErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// charge blocks until size fits the in-flight budget (an oversized single
// block is admitted alone), or the stream is closed.
func (s *Stream) charge(size int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		select {
		case <-s.done:
			return false
		default:
		}
		if s.charged == 0 || s.charged+size <= s.budget {
			s.charged += size
			return true
		}
		s.cond.Wait()
	}
}

func (s *Stream) release(size int64) {
	if size == 0 {
		return
	}
	s.mu.Lock()
	s.charged -= size
	s.cond.Broadcast()
	s.mu.Unlock()
}

// StreamLibsvm parses the libsvm text format incrementally: the reader is
// consumed in opt.ChunkBytes chunks, complete lines are parsed with the
// same ParseLine/sign-mapping pipeline as ReadLibsvm, and blocks of up to
// opt.BlockRows rows are delivered through the returned Stream. The
// concatenation of all blocks is bit-identical to ReadLibsvm on the same
// bytes (see TestStreamParity); errors carry the same 1-based line numbers.
func StreamLibsvm(r io.Reader, opt StreamOptions) *Stream {
	opt = opt.withDefaults()
	s := &Stream{
		ch:     make(chan Block, 16),
		done:   make(chan struct{}),
		budget: opt.MaxInFlightBytes,
	}
	s.cond = sync.NewCond(&s.mu)
	go func() {
		defer close(s.ch)
		cr := NewChunkReader(r, opt.ChunkBytes)
		b := sparse.NewBuilder(0)
		var y []float64
		lo := 0
		var blkBytes int64
		flush := func() bool {
			if b.Rows() == 0 {
				return true
			}
			blk := Block{X: b.Build(), Y: y, Lo: lo}
			if !s.charge(int64(blk.X.ByteSize())) {
				return false
			}
			select {
			case s.ch <- blk:
			case <-s.done:
				s.release(int64(blk.X.ByteSize()))
				return false
			}
			lo += blk.X.Rows()
			b = sparse.NewBuilder(0)
			y = nil
			blkBytes = 0
			return true
		}
		for {
			lineNo := cr.Line()
			raw, err := cr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				s.setErr(fmt.Errorf("libsvm: %w", err))
				return
			}
			line := strings.TrimSpace(string(TrimEOL(raw)))
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			label, row, err := ParseLine(line)
			if err != nil {
				s.setErr(fmt.Errorf("libsvm: line %d: %w", lineNo, err))
				return
			}
			if label > 0 {
				y = append(y, 1)
			} else {
				y = append(y, -1)
			}
			b.AddRow(row.Idx, row.Val)
			// 4 bytes per column index, 8 per value, 8 per row pointer:
			// the CSR payload this row contributes after Build.
			blkBytes += int64(len(row.Idx))*12 + 8
			if b.Rows() >= opt.BlockRows ||
				(opt.MaxBlockBytes > 0 && blkBytes >= opt.MaxBlockBytes) {
				if !flush() {
					return
				}
			}
		}
		flush()
	}()
	return s
}

// ReadLibsvmStream consumes a whole stream into one in-memory matrix. It
// exists for the parity tests and as a drop-in ReadLibsvm with bounded
// parse-time overhead; Cols is the maximum feature index seen, as with
// ReadLibsvm.
func ReadLibsvmStream(r io.Reader, opt StreamOptions) (*sparse.Matrix, []float64, error) {
	s := StreamLibsvm(r, opt)
	defer s.Close()
	var parts []*sparse.Matrix
	var y []float64
	for {
		blk, ok := s.Next()
		if !ok {
			break
		}
		parts = append(parts, blk.X)
		y = append(y, blk.Y...)
	}
	if err := s.Err(); err != nil {
		return nil, nil, err
	}
	return concatMatrices(parts), y, nil
}

// concatMatrices splices row blocks into one matrix with exact
// preallocation. An empty input yields an empty 0-column matrix, matching
// ReadLibsvm on an empty file.
func concatMatrices(parts []*sparse.Matrix) *sparse.Matrix {
	rows, cols := 0, 0
	var nnz int64
	for _, p := range parts {
		rows += p.Rows()
		nnz += int64(p.NNZ())
		if p.Cols > cols {
			cols = p.Cols
		}
	}
	out := &sparse.Matrix{
		RowPtr: make([]int64, 1, rows+1),
		ColIdx: make([]int32, 0, nnz),
		Val:    make([]float64, 0, nnz),
		Cols:   cols,
	}
	for _, p := range parts {
		base := int64(len(out.Val))
		for i := 1; i <= p.Rows(); i++ {
			out.RowPtr = append(out.RowPtr, base+p.RowPtr[i])
		}
		out.ColIdx = append(out.ColIdx, p.ColIdx...)
		out.Val = append(out.Val, p.Val...)
	}
	return out
}

// OOCOptions configures OpenOOC.
type OOCOptions struct {
	// Stream configures the chunked parse.
	Stream StreamOptions
	// SpillDir holds the spill file (default: the OS temp directory).
	SpillDir string
	// MemBudget bounds the resident decoded blocks of the returned matrix
	// (default 256 MiB).
	MemBudget int64
}

// OpenOOC stream-parses a libsvm file into an out-of-core matrix: blocks
// are spilled to a temp file as they are parsed, so peak memory during
// loading is one block plus the in-flight window, and row access afterwards
// is served from an LRU of resident blocks under opts.MemBudget. Labels
// (8 bytes/row) stay in memory. The caller owns Close on the matrix.
func OpenOOC(path string, opts OOCOptions) (*sparse.OOCMatrix, []float64, error) {
	if opts.MemBudget <= 0 {
		opts.MemBudget = 256 << 20
	}
	// Blocks travel straight from the parser into the spill file; the
	// in-flight window only needs to cover the handoff.
	if opts.Stream.MaxInFlightBytes <= 0 {
		opts.Stream.MaxInFlightBytes = opts.MemBudget / 4
	}
	// Several blocks must fit the budget at once or the LRU cannot work;
	// a quarter-budget cap keeps peak resident bytes near the budget even
	// when the whole file is smaller than BlockRows rows.
	if opts.Stream.MaxBlockBytes <= 0 {
		opts.Stream.MaxBlockBytes = opts.MemBudget / 4
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	w, err := sparse.NewOOCWriter(opts.SpillDir, opts.MemBudget)
	if err != nil {
		return nil, nil, err
	}
	s := StreamLibsvm(f, opts.Stream)
	defer s.Close()
	var y []float64
	cols := 0
	for {
		blk, ok := s.Next()
		if !ok {
			break
		}
		if err := w.AppendBlock(blk.X); err != nil {
			w.Abort()
			return nil, nil, err
		}
		y = append(y, blk.Y...)
		if blk.X.Cols > cols {
			cols = blk.X.Cols
		}
	}
	if err := s.Err(); err != nil {
		w.Abort()
		return nil, nil, err
	}
	m, err := w.Finish(cols)
	if err != nil {
		return nil, nil, err
	}
	return m, y, nil
}
