// Shard-aware loading. A multi-node run wants each rank to parse only its
// slice of the input instead of rank 0 reading everything and scattering:
// LoadShard splits one libsvm file by byte range (every rank seeks
// independently, no coordination), while WriteShards/LoadSharded handle the
// pre-split multi-file layout generators produce. Both conventions yield
// row blocks that concatenate, in rank order, to exactly the single-file
// parse — the compositional dataset fingerprint (internal/ckpt) depends on
// that.
package dataset

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/sparse"
)

// Shard is one rank's slice of a dataset: rows [Lo, Lo+X.Rows()) of the
// file-order whole.
type Shard struct {
	X  *sparse.Matrix
	Y  []float64
	Lo int // global row index of the shard's first row (-1 when unknown)
}

// ShardRange splits size bytes into nranks contiguous byte ranges and
// returns rank's [lo, hi). The boundaries are the byte analogue of the row
// partitioner core.BlockRange uses (q*n/p), so shard sizes differ by at
// most one byte.
func ShardRange(size int64, rank, nranks int) (lo, hi int64) {
	if nranks <= 0 || rank < 0 || rank >= nranks {
		panic(fmt.Sprintf("dataset: ShardRange(rank=%d, nranks=%d)", rank, nranks))
	}
	lo = int64(rank) * size / int64(nranks)
	hi = int64(rank+1) * size / int64(nranks)
	return lo, hi
}

// shardStart resolves the first line boundary at or after byte lo: a line
// is owned by the shard whose range contains its first byte. lo == 0 is
// always a line start; otherwise, if the previous byte terminates a line,
// lo itself starts one, and if not the line containing lo began in the
// previous shard, so ownership starts after the next '\n'.
func shardStart(f io.ReaderAt, lo int64, size int64) (int64, error) {
	if lo == 0 {
		return 0, nil
	}
	prev := make([]byte, 1)
	if _, err := f.ReadAt(prev, lo-1); err != nil {
		return 0, err
	}
	if prev[0] == '\n' {
		return lo, nil
	}
	buf := make([]byte, 64<<10)
	for off := lo; off < size; off += int64(len(buf)) {
		n, err := f.ReadAt(buf, off)
		for i := 0; i < n; i++ {
			if buf[i] == '\n' {
				return off + int64(i) + 1, nil
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
	}
	return size, nil // the partial line runs to EOF; a later shard owns nothing
}

// LoadShard parses the lines of the libsvm file at path whose first byte
// falls inside rank's ShardRange. Concatenating all ranks' shards in rank
// order reproduces ReadLibsvm on the whole file bit-for-bit; comment and
// blank lines are skipped as usual. The returned Shard's Lo is -1: global
// row indices cannot be known without parsing the preceding shards (the
// caller that loads all shards can assign them cumulatively).
func LoadShard(path string, rank, nranks int) (Shard, error) {
	f, err := os.Open(path)
	if err != nil {
		return Shard{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Shard{}, err
	}
	size := st.Size()
	lo, hi := ShardRange(size, rank, nranks)
	start, err := shardStart(f, lo, size)
	if err != nil {
		return Shard{}, fmt.Errorf("libsvm: shard %d/%d: %w", rank, nranks, err)
	}
	b := sparse.NewBuilder(0)
	var y []float64
	if start < size {
		cr := NewChunkReader(io.NewSectionReader(f, start, size-start), 0)
		for {
			// A line is owned iff its first byte precedes hi.
			if start+cr.Offset() >= hi {
				break
			}
			lineNo := cr.Line()
			raw, err := cr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return Shard{}, fmt.Errorf("libsvm: shard %d/%d: %w", rank, nranks, err)
			}
			line := strings.TrimSpace(string(TrimEOL(raw)))
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			label, row, err := ParseLine(line)
			if err != nil {
				return Shard{}, fmt.Errorf("libsvm: shard %d/%d: line %d (offset %d): %w",
					rank, nranks, lineNo, start+cr.Offset()-int64(len(raw)), err)
			}
			if label > 0 {
				y = append(y, 1)
			} else {
				y = append(y, -1)
			}
			b.AddRow(row.Idx, row.Val)
		}
	}
	return Shard{X: b.Build(), Y: y, Lo: -1}, nil
}

// ShardFileName names shard i of n for a dataset base path.
func ShardFileName(base string, i, n int) string {
	return fmt.Sprintf("%s.%03d-of-%03d", base, i, n)
}

// WriteShards writes (x, y) as n shard files next to base, splitting on the
// row boundaries i*rows/n (the same arithmetic core.BlockRange uses for
// rank partitions). Concatenating the files in order is byte-identical to
// SaveLibsvmFile(base). Returns the paths written.
func WriteShards(base string, x *sparse.Matrix, y []float64, n int) ([]string, error) {
	if n <= 0 {
		return nil, fmt.Errorf("libsvm: %d shards", n)
	}
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("libsvm: %d rows but %d labels", x.Rows(), len(y))
	}
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		lo := i * x.Rows() / n
		hi := (i + 1) * x.Rows() / n
		blk, err := x.RowRangeView(lo, hi)
		if err != nil {
			return nil, err
		}
		path := ShardFileName(base, i, n)
		if err := SaveLibsvmFile(path, blk, y[lo:hi]); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// DetectShards reports the shard count of a pre-split dataset at base, or 0
// when base is a plain single file. It is an error for the shard set to be
// incomplete (gaps betray a partial copy).
func DetectShards(base string) (int, error) {
	if _, err := os.Stat(base); err == nil {
		return 0, nil
	}
	dir, name := ".", base
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		dir, name = base[:i], base[i+1:]
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var found []string
	n := 0
	for _, e := range entries {
		var i, total int
		if _, err := fmt.Sscanf(e.Name(), name+".%03d-of-%03d", &i, &total); err == nil &&
			total > 0 && e.Name() == ShardFileName(name, i, total) {
			found = append(found, e.Name())
			n = total
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("libsvm: %s: no such file and no shards", base)
	}
	sort.Strings(found)
	if len(found) != n {
		return 0, fmt.Errorf("libsvm: %s: %d of %d shard files present", base, len(found), n)
	}
	for i := range found {
		if found[i] != ShardFileName(name, i, n) {
			return 0, fmt.Errorf("libsvm: %s: shard file %s missing", base, ShardFileName(name, i, n))
		}
	}
	return n, nil
}

// LoadSharded loads a dataset as nranks shards, parsing them in parallel.
// When path names shard files written by WriteShards (path itself absent),
// their count must equal nranks and each file is one shard; otherwise the
// single file is byte-range split via LoadShard. Either way the shards
// concatenate, in order, to the single-file parse, Lo indices are assigned
// cumulatively, and every shard's matrix is widened to the global column
// count. nranks == 0 means "however the file is sharded on disk" (1 for a
// plain file).
func LoadSharded(path string, nranks int) ([]Shard, error) {
	disk, err := DetectShards(path)
	if err != nil {
		return nil, err
	}
	if nranks == 0 {
		if disk == 0 {
			nranks = 1
		} else {
			nranks = disk
		}
	}
	if disk != 0 && disk != nranks {
		return nil, fmt.Errorf("libsvm: %s has %d shard files, want %d", path, disk, nranks)
	}
	shards := make([]Shard, nranks)
	errs := make([]error, nranks)
	var wg sync.WaitGroup
	for r := 0; r < nranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if disk != 0 {
				x, y, err := LoadLibsvmFile(ShardFileName(path, r, disk))
				shards[r], errs[r] = Shard{X: x, Y: y, Lo: -1}, err
				return
			}
			shards[r], errs[r] = LoadShard(path, r, nranks)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	lo, cols := 0, 0
	for i := range shards {
		shards[i].Lo = lo
		lo += shards[i].X.Rows()
		if shards[i].X.Cols > cols {
			cols = shards[i].X.Cols
		}
	}
	for i := range shards {
		shards[i].X.Cols = cols
	}
	return shards, nil
}

// ConcatShards splices shards (in order) into one in-memory dataset,
// bit-identical to loading the unsharded file.
func ConcatShards(shards []Shard) (*sparse.Matrix, []float64) {
	parts := make([]*sparse.Matrix, len(shards))
	var y []float64
	for i := range shards {
		parts[i] = shards[i].X
		y = append(y, shards[i].Y...)
	}
	return concatMatrices(parts), y
}
