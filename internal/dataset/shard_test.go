package dataset

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteLibsvmRoundTrip checks a write/read round trip is bit-exact:
// values are formatted with shortest-unique precision, so every float64
// (including awkward magnitudes) survives the text format unchanged.
func TestWriteLibsvmRoundTrip(t *testing.T) {
	data := randomLibsvm(t, 21, 120, 45, 0.2)
	x, y, err := ReadLibsvm(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Plant values whose decimal expansions are maximally awkward.
	for k, v := range []float64{
		1.0 / 3.0, math.Nextafter(1, 2), 0.1, 5e-324, math.MaxFloat64,
		-2.2250738585072014e-308, 1e16 + 2, math.Pi,
	} {
		if k < len(x.Val) {
			x.Val[k] = v
		}
	}
	var buf bytes.Buffer
	if err := WriteLibsvm(&buf, x, y); err != nil {
		t.Fatal(err)
	}
	x2, y2, err := ReadLibsvm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !matricesIdentical(x, x2) {
		t.Fatal("matrix not bit-identical after write/read round trip")
	}
	if !labelsIdentical(y, y2) {
		t.Fatal("labels differ after round trip")
	}
	// And the round trip is a fixed point: writing again yields the same bytes.
	var buf2 bytes.Buffer
	if err := WriteLibsvm(&buf2, x2, y2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("second write differs from first")
	}
}

// TestShardRange checks the byte split covers [0, size) exactly once.
func TestShardRange(t *testing.T) {
	for _, size := range []int64{0, 1, 7, 1000, 1<<31 + 13} {
		for _, n := range []int{1, 2, 3, 7, 64} {
			var prev int64
			for r := 0; r < n; r++ {
				lo, hi := ShardRange(size, r, n)
				if lo != prev || hi < lo {
					t.Fatalf("size=%d n=%d rank=%d: range [%d,%d) after %d", size, n, r, lo, hi, prev)
				}
				prev = hi
			}
			if prev != size {
				t.Fatalf("size=%d n=%d: ranges end at %d", size, n, prev)
			}
		}
	}
}

// TestLoadShardParity checks that byte-range shards concatenate to exactly
// the single-file parse, for every shard count, on every awkward encoding
// variant (CRLF, no trailing newline, interleaved comments).
func TestLoadShardParity(t *testing.T) {
	data := randomLibsvm(t, 31, 101, 30, 0.2)
	dir := t.TempDir()
	for name, variant := range streamVariants(data) {
		path := filepath.Join(dir, name+".libsvm")
		if err := os.WriteFile(path, variant, 0o644); err != nil {
			t.Fatal(err)
		}
		wantX, wantY, err := ReadLibsvm(bytes.NewReader(variant))
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 3, 5, 16, 64} {
			shards, err := LoadSharded(path, n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if len(shards) != n {
				t.Fatalf("%s n=%d: %d shards", name, n, len(shards))
			}
			lo := 0
			for r, s := range shards {
				if s.Lo != lo {
					t.Fatalf("%s n=%d shard %d: Lo=%d, want %d", name, n, r, s.Lo, lo)
				}
				lo += s.X.Rows()
			}
			gotX, gotY := ConcatShards(shards)
			if !matricesIdentical(wantX, gotX) {
				t.Fatalf("%s n=%d: concatenated shards differ from whole-file parse", name, n)
			}
			if !labelsIdentical(wantY, gotY) {
				t.Fatalf("%s n=%d: labels differ", name, n)
			}
		}
	}
}

// TestWriteShardsConcat checks the shard files concatenate byte-identically
// to the single-file encoding, and that LoadSharded accepts the file layout.
func TestWriteShardsConcat(t *testing.T) {
	data := randomLibsvm(t, 41, 57, 20, 0.3)
	x, y, err := ReadLibsvm(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "train.libsvm")
	const n = 4
	paths, err := WriteShards(base, x, y, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != n {
		t.Fatalf("%d paths", len(paths))
	}
	var whole bytes.Buffer
	if err := WriteLibsvm(&whole, x, y); err != nil {
		t.Fatal(err)
	}
	var cat bytes.Buffer
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		cat.Write(b)
	}
	if !bytes.Equal(whole.Bytes(), cat.Bytes()) {
		t.Fatal("concatenated shard files differ from the single-file encoding")
	}

	if got, err := DetectShards(base); err != nil || got != n {
		t.Fatalf("DetectShards = %d, %v; want %d", got, err, n)
	}
	shards, err := LoadSharded(base, 0) // 0: take the on-disk shard count
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != n {
		t.Fatalf("%d shards loaded", len(shards))
	}
	gotX, gotY := ConcatShards(shards)
	if !matricesIdentical(x, gotX) || !labelsIdentical(y, gotY) {
		t.Fatal("sharded load differs from original")
	}

	// Mismatched rank count on a pre-split layout is an error, not a resplit.
	if _, err := LoadSharded(base, n+1); err == nil {
		t.Fatal("LoadSharded accepted a mismatched shard count")
	}
	// A missing shard file is detected, not silently skipped.
	if err := os.Remove(paths[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := DetectShards(base); err == nil {
		t.Fatal("DetectShards accepted an incomplete shard set")
	}
}

// TestLoadShardErrors checks parse errors inside a shard are reported with
// shard attribution.
func TestLoadShardErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.libsvm")
	if err := os.WriteFile(path, []byte("+1 1:1\n+1 1:1\n+1 nope\n+1 1:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSharded(path, 2); err == nil {
		t.Fatal("LoadSharded accepted a malformed shard")
	}
	// Degenerate splits: more shards than lines still parses cleanly.
	small := filepath.Join(dir, "small.libsvm")
	if err := os.WriteFile(small, []byte("+1 1:1\n-1 2:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	shards, err := LoadSharded(small, 16)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, s := range shards {
		rows += s.X.Rows()
	}
	if rows != 2 {
		t.Fatalf("%d rows across degenerate shards, want 2", rows)
	}
}
