package dataset

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseByteSize(t *testing.T) {
	cases := map[string]int64{
		"0":       0,
		"1048576": 1 << 20,
		"64M":     64 << 20,
		"64MiB":   64 << 20,
		"64mb":    64 << 20,
		"1G":      1 << 30,
		"2K":      2 << 10,
		"1.5MiB":  3 << 19, // 1.5 * 2^20
		"1.5K":    1536,
		"0.5GiB":  1 << 29,
		"2.25M":   2359296,
	}
	for in, want := range cases {
		got, err := ParseByteSize(in)
		if err != nil {
			t.Errorf("ParseByteSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseByteSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "-1M", "1.5", "1..5M", "1e", "NaNM", "+InfG"} {
		if v, err := ParseByteSize(bad); err == nil {
			t.Errorf("ParseByteSize(%q) = %d, want error", bad, v)
		}
	}
}

// TestByteSizeRoundTrip is the property test behind the Format/Parse
// contract: everything FormatByteSize emits must parse back, exactly for
// unit multiples and within the emitted decimal's precision otherwise.
func TestByteSizeRoundTrip(t *testing.T) {
	check := func(n int64) {
		s := FormatByteSize(n)
		got, err := ParseByteSize(s)
		if err != nil {
			t.Fatalf("FormatByteSize(%d) = %q does not parse: %v", n, s, err)
		}
		var unit int64 = 1
		switch {
		case n >= 1<<20:
			unit = 1 << 20
		case n >= 1<<10:
			unit = 1 << 10
		}
		if n%unit == 0 || n >= 1<<30 && n%(1<<30) == 0 {
			if got != n {
				t.Fatalf("exact multiple %d round-trips to %d via %q", n, got, s)
			}
			return
		}
		// One fractional digit: the reconstruction is within unit/20 + rounding.
		if tol := float64(unit)/20 + 1; math.Abs(float64(got-n)) > tol {
			t.Fatalf("%d -> %q -> %d: off by %d (> %g)", n, s, got, got-n, tol)
		}
	}
	for _, n := range []int64{0, 1, 512, 1 << 10, 1536, 1 << 20, 3 << 19, 1 << 30, (1 << 30) + (1 << 20), 123456789} {
		check(n)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		check(rng.Int63n(1 << 34))
	}
}
