package dataset

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	label, row, err := ParseLine("3 1:0.5 4:-2 10:1e-3")
	if err != nil {
		t.Fatal(err)
	}
	if label != 3 {
		t.Fatalf("label = %v", label)
	}
	if len(row.Idx) != 3 || row.Idx[0] != 0 || row.Idx[1] != 3 || row.Idx[2] != 9 {
		t.Fatalf("indices = %v", row.Idx)
	}
	if row.Val[0] != 0.5 || row.Val[1] != -2 || row.Val[2] != 1e-3 {
		t.Fatalf("values = %v", row.Val)
	}
	// A label-only line is a valid all-zero sample.
	label, row, err = ParseLine("-1")
	if err != nil || label != -1 || len(row.Idx) != 0 {
		t.Fatalf("label-only line: %v %v %v", label, row, err)
	}
}

func TestParseLineErrors(t *testing.T) {
	cases := []struct {
		line, want string
	}{
		{"", "empty line"},
		{"x 1:2", `label "x"`},
		{"1 1:2 nocolon", "malformed feature"},
		{"1 0:2", `feature index "0"`},
		{"1 -3:2", `feature index "-3"`},
		{"1 a:2", `feature index "a"`},
		{"1 2:1 2:3", "non-increasing feature index 2"},
		{"1 5:1 3:3", "non-increasing feature index 3"},
		{"1 1:zzz", `feature value "zzz"`},
	}
	for _, tc := range cases {
		_, _, err := ParseLine(tc.line)
		if err == nil {
			t.Errorf("ParseLine(%q) accepted", tc.line)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseLine(%q) error %q, want it to mention %q", tc.line, err, tc.want)
		}
	}
}

func TestParseRow(t *testing.T) {
	row, err := ParseRow("2:1.5 7:-0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Idx) != 2 || row.Idx[0] != 1 || row.Idx[1] != 6 {
		t.Fatalf("indices = %v", row.Idx)
	}
	// Empty input is an empty row, not an error (all-zero sample).
	row, err = ParseRow("   ")
	if err != nil || len(row.Idx) != 0 {
		t.Fatalf("empty row: %v %v", row, err)
	}
	if _, err := ParseRow("1:2 junk"); err == nil {
		t.Fatal("malformed row accepted")
	}
	// ParseRow does not accept a leading label — that's ParseLine's job.
	if _, err := ParseRow("+1 1:2"); err == nil {
		t.Fatal("labeled row accepted by ParseRow")
	}
}

func TestReadLibsvmReportsLineNumbers(t *testing.T) {
	in := "+1 1:1\n# comment\n\n-1 1:0.5 2:bad\n"
	_, _, err := ReadLibsvm(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("err = %v, want line 4 context", err)
	}
}
