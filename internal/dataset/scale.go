package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// Scaler linearly maps each feature into a target range, the job of
// libsvm's svm-scale companion tool. The paper downloads pre-scaled
// datasets from the libsvm page; when training from raw feature files the
// same preprocessing is needed, and critically the *training* scaler must
// be reused for the testing set (fitting a fresh one leaks information and
// mismatches the model).
type Scaler struct {
	Lo, Hi  float64   // target range
	FeatMin []float64 // per-feature observed minimum
	FeatMax []float64 // per-feature observed maximum
}

// FitScaler learns per-feature ranges from x. Features never observed
// nonzero keep an empty [0,0] range and pass through unscaled. The zero
// entries of sparse rows participate in the range (as in svm-scale), so a
// feature seen only with positive values still maps 0 into the range.
func FitScaler(x *sparse.Matrix, lo, hi float64) (*Scaler, error) {
	if hi <= lo {
		return nil, fmt.Errorf("dataset: scaler range [%v,%v] is empty", lo, hi)
	}
	s := &Scaler{
		Lo:      lo,
		Hi:      hi,
		FeatMin: make([]float64, x.Cols),
		FeatMax: make([]float64, x.Cols),
	}
	seen := make([]bool, x.Cols)
	for i := 0; i < x.Rows(); i++ {
		r := x.RowView(i)
		for k, c := range r.Idx {
			v := r.Val[k]
			if !seen[c] {
				seen[c] = true
				s.FeatMin[c], s.FeatMax[c] = v, v
				continue
			}
			s.FeatMin[c] = math.Min(s.FeatMin[c], v)
			s.FeatMax[c] = math.Max(s.FeatMax[c], v)
		}
	}
	// Sparse zeros are implicit observations.
	if x.Rows() > 0 {
		counts := make([]int, x.Cols)
		for i := 0; i < x.Rows(); i++ {
			r := x.RowView(i)
			for _, c := range r.Idx {
				counts[c]++
			}
		}
		for c := range counts {
			if seen[c] && counts[c] < x.Rows() {
				s.FeatMin[c] = math.Min(s.FeatMin[c], 0)
				s.FeatMax[c] = math.Max(s.FeatMax[c], 0)
			}
		}
	}
	return s, nil
}

// scaleValue maps one value of feature c.
func (s *Scaler) scaleValue(c int32, v float64) float64 {
	if int(c) >= len(s.FeatMin) {
		return v // feature unseen at fit time: pass through
	}
	mn, mx := s.FeatMin[c], s.FeatMax[c]
	if mx == mn {
		return v // constant feature: leave as is (svm-scale drops it)
	}
	return s.Lo + (v-mn)*(s.Hi-s.Lo)/(mx-mn)
}

// Apply returns a scaled copy of x. Entries that scale to exactly zero are
// dropped from the sparse structure.
func (s *Scaler) Apply(x *sparse.Matrix) *sparse.Matrix {
	b := sparse.NewBuilder(x.Cols)
	for i := 0; i < x.Rows(); i++ {
		r := x.RowView(i)
		for k, c := range r.Idx {
			if v := s.scaleValue(c, r.Val[k]); v != 0 {
				b.Add(int(c), v)
			}
		}
		b.EndRow()
	}
	out := b.Build()
	if out.Cols < x.Cols {
		out.Cols = x.Cols
	}
	return out
}

// Write serializes the scaler in svm-scale's restore-file format:
//
//	x
//	<lo> <hi>
//	<feature-index-1-based> <min> <max>
func (s *Scaler) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "x")
	fmt.Fprintf(bw, "%v %v\n", s.Lo, s.Hi)
	for c := range s.FeatMin {
		if s.FeatMin[c] != 0 || s.FeatMax[c] != 0 {
			fmt.Fprintf(bw, "%d %v %v\n", c+1, s.FeatMin[c], s.FeatMax[c])
		}
	}
	return bw.Flush()
}

// ReadScaler parses a scaler written by Write.
func ReadScaler(r io.Reader) (*Scaler, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "x" {
		return nil, fmt.Errorf("dataset: scaler file missing 'x' header")
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: scaler file missing range line")
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 2 {
		return nil, fmt.Errorf("dataset: malformed range line %q", sc.Text())
	}
	lo, err1 := strconv.ParseFloat(fields[0], 64)
	hi, err2 := strconv.ParseFloat(fields[1], 64)
	if err1 != nil || err2 != nil || hi <= lo {
		return nil, fmt.Errorf("dataset: bad scaler range %q", sc.Text())
	}
	s := &Scaler{Lo: lo, Hi: hi}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("dataset: malformed feature line %q", line)
		}
		idx, err := strconv.Atoi(f[0])
		if err != nil || idx < 1 {
			return nil, fmt.Errorf("dataset: bad feature index %q", f[0])
		}
		mn, err1 := strconv.ParseFloat(f[1], 64)
		mx, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("dataset: bad feature range %q", line)
		}
		for len(s.FeatMin) < idx {
			s.FeatMin = append(s.FeatMin, 0)
			s.FeatMax = append(s.FeatMax, 0)
		}
		s.FeatMin[idx-1], s.FeatMax[idx-1] = mn, mx
	}
	return s, sc.Err()
}
