// Package dataset provides the training/testing data used by the
// experiments: a reader/writer for the libsvm text format (the paper
// downloads all ten datasets from the libsvm page) and deterministic
// synthetic generators that mirror each dataset's published shape.
//
// The real datasets are multi-gigabyte downloads that are unavailable
// offline, so the generators substitute two-class mixtures whose sample
// count (scaled), dimensionality, sparsity and class overlap match the
// originals. What the paper's shrinking heuristics are sensitive to is the
// fraction of samples that end up as support vectors and how quickly
// non-SV gradients stabilize — both controlled here by the margin/noise
// parameters. DESIGN.md section 2 records the substitution rationale;
// EXPERIMENTS.md records the scale factor used per experiment.
package dataset

import (
	"fmt"

	"repro/internal/sparse"
)

// Dataset bundles a training set, an optional testing set, and the
// hyper-parameters the paper uses for it (Table III).
type Dataset struct {
	Name  string
	X     *sparse.Matrix
	Y     []float64 // labels in {+1, -1}
	TestX *sparse.Matrix
	TestY []float64

	C      float64 // box constraint
	Sigma2 float64 // Gaussian kernel width; gamma = 1/(2*sigma2)
}

// Train returns the number of training samples.
func (d *Dataset) Train() int { return d.X.Rows() }

// Test returns the number of testing samples (0 if none).
func (d *Dataset) Test() int {
	if d.TestX == nil {
		return 0
	}
	return d.TestX.Rows()
}

// Validate checks labels and matrix invariants.
func (d *Dataset) Validate() error {
	if err := d.X.Validate(); err != nil {
		return fmt.Errorf("dataset %s: train matrix: %w", d.Name, err)
	}
	if len(d.Y) != d.X.Rows() {
		return fmt.Errorf("dataset %s: %d train labels for %d rows", d.Name, len(d.Y), d.X.Rows())
	}
	if err := checkLabels(d.Y); err != nil {
		return fmt.Errorf("dataset %s: train: %w", d.Name, err)
	}
	if d.TestX != nil {
		if err := d.TestX.Validate(); err != nil {
			return fmt.Errorf("dataset %s: test matrix: %w", d.Name, err)
		}
		if len(d.TestY) != d.TestX.Rows() {
			return fmt.Errorf("dataset %s: %d test labels for %d rows", d.Name, len(d.TestY), d.TestX.Rows())
		}
		if err := checkLabels(d.TestY); err != nil {
			return fmt.Errorf("dataset %s: test: %w", d.Name, err)
		}
	}
	return nil
}

func checkLabels(y []float64) error {
	pos, neg := 0, 0
	for i, v := range y {
		switch v {
		case 1:
			pos++
		case -1:
			neg++
		default:
			return fmt.Errorf("label %d is %v, want +1 or -1", i, v)
		}
	}
	if pos == 0 || neg == 0 {
		return fmt.Errorf("degenerate label distribution: %d positive, %d negative", pos, neg)
	}
	return nil
}

// ClassBalance returns the fraction of positive training labels.
func (d *Dataset) ClassBalance() float64 {
	if len(d.Y) == 0 {
		return 0
	}
	pos := 0
	for _, v := range d.Y {
		if v > 0 {
			pos++
		}
	}
	return float64(pos) / float64(len(d.Y))
}
