package dataset

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseByteSize parses a human-readable byte count for -mem-budget-style
// flags: a plain integer is bytes; K/M/G suffixes are binary multiples,
// with optional "i" and/or "B" ("64M", "64MiB", "64mb" all parse to
// 64 * 2^20). Suffixed values may be fractional ("1.5MiB"), which is what
// FormatByteSize emits for non-multiple counts; fractions round to the
// nearest byte.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	t = strings.TrimSuffix(t, "B")
	t = strings.TrimSuffix(t, "I")
	shift := 0
	switch {
	case strings.HasSuffix(t, "K"):
		shift, t = 10, t[:len(t)-1]
	case strings.HasSuffix(t, "M"):
		shift, t = 20, t[:len(t)-1]
	case strings.HasSuffix(t, "G"):
		shift, t = 30, t[:len(t)-1]
	}
	t = strings.TrimSpace(t)
	if n, err := strconv.ParseInt(t, 10, 64); err == nil {
		if n < 0 {
			return 0, fmt.Errorf("dataset: byte size %q (want e.g. 1048576, 64MiB, 1.5M, 1G)", s)
		}
		if n > (1<<62)>>shift {
			return 0, fmt.Errorf("dataset: byte size %q overflows", s)
		}
		return n << shift, nil
	}
	// Fractional sizes only make sense with a unit: "1.5" bytes is a typo,
	// "1.5MiB" is a round-tripped FormatByteSize output.
	if shift == 0 {
		return 0, fmt.Errorf("dataset: byte size %q (want e.g. 1048576, 64MiB, 1.5M, 1G)", s)
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil || f < 0 || math.IsInf(f, 0) || math.IsNaN(f) {
		return 0, fmt.Errorf("dataset: byte size %q (want e.g. 1048576, 64MiB, 1.5M, 1G)", s)
	}
	bytes := f * float64(int64(1)<<shift)
	if bytes > float64(1<<62) {
		return 0, fmt.Errorf("dataset: byte size %q overflows", s)
	}
	return int64(math.Round(bytes)), nil
}

// FormatByteSize renders a byte count the way ParseByteSize reads it.
func FormatByteSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
