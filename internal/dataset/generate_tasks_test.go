package dataset

import (
	"bytes"
	"math"
	"testing"
)

func TestGenerateRegressionDeterministic(t *testing.T) {
	x1, z1, err := GenerateRegression(50, 4, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	x2, z2, err := GenerateRegression(50, 4, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if x1.Rows() != 50 || len(z1) != 50 {
		t.Fatalf("rows = %d, targets = %d, want 50", x1.Rows(), len(z1))
	}
	for i := range z1 {
		if z1[i] != z2[i] {
			t.Fatalf("same seed diverged at target %d: %v vs %v", i, z1[i], z2[i])
		}
		r1, r2 := x1.RowView(i), x2.RowView(i)
		for k := range r1.Val {
			if r1.Val[k] != r2.Val[k] {
				t.Fatalf("same seed diverged at row %d", i)
			}
		}
	}
	_, z3, err := GenerateRegression(50, 4, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range z1 {
		if z1[i] != z3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical targets")
	}
	if _, _, err := GenerateRegression(0, 4, 0.05, 1); err == nil {
		t.Error("n = 0 accepted")
	}
	if _, _, err := GenerateRegression(10, 4, -1, 1); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestGenerateOneClassContamination(t *testing.T) {
	x, y, err := GenerateOneClass(200, 3, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	nOut := 0
	for i, v := range y {
		r := x.RowView(i)
		var norm float64
		for _, val := range r.Val {
			norm += val * val
		}
		norm = math.Sqrt(norm)
		switch v {
		case -1:
			nOut++
			if norm < 7 {
				t.Errorf("outlier %d at radius %.2f, want >= 7", i, norm)
			}
		case 1:
			if norm > 7 {
				t.Errorf("inlier %d at radius %.2f, want < 7", i, norm)
			}
		default:
			t.Fatalf("label %v is not ground-truth +/-1", v)
		}
	}
	if want := 10; nOut != want {
		t.Errorf("planted %d outliers, want %d (floor(0.05*200))", nOut, want)
	}
	// Prefixes keep roughly the same contamination (interleaved planting).
	half := 0
	for _, v := range y[:100] {
		if v == -1 {
			half++
		}
	}
	if half < 3 || half > 7 {
		t.Errorf("first half holds %d outliers, want ~5", half)
	}
	if _, _, err := GenerateOneClass(10, 3, 1.0, 1); err == nil {
		t.Error("outlier fraction 1.0 accepted")
	}
}

// TestLibsvmValuesRoundTrip checks that continuous labels survive the raw
// writer/reader bit-exactly — the classifier path clamps to +/-1, which
// would destroy SVR targets.
func TestLibsvmValuesRoundTrip(t *testing.T) {
	x, z, err := GenerateRegression(40, 3, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLibsvmValues(&buf, x, z); err != nil {
		t.Fatal(err)
	}
	x2, z2, err := ReadLibsvmValues(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if x2.Rows() != x.Rows() || len(z2) != len(z) {
		t.Fatalf("round trip changed shape: %d/%d rows, %d/%d labels", x2.Rows(), x.Rows(), len(z2), len(z))
	}
	for i := range z {
		if z2[i] != z[i] {
			t.Fatalf("label %d: %v -> %v", i, z[i], z2[i])
		}
		r1, r2 := x.RowView(i), x2.RowView(i)
		if len(r1.Val) != len(r2.Val) {
			t.Fatalf("row %d changed nnz", i)
		}
		for k := range r1.Val {
			if r1.Idx[k] != r2.Idx[k] || r1.Val[k] != r2.Val[k] {
				t.Fatalf("row %d entry %d changed", i, k)
			}
		}
	}
	bad := make([]float64, x.Rows())
	bad[0] = math.NaN()
	if err := WriteLibsvmValues(&buf, x, bad); err == nil {
		t.Error("NaN label accepted")
	}
}
