package dataset

import (
	"reflect"
	"testing"
)

// sameDataset compares the full generated content (train and test splits)
// byte-for-byte at the CSR level.
func sameDataset(a, b *Dataset) bool {
	eq := func(x, y interface{}) bool { return reflect.DeepEqual(x, y) }
	if !eq(a.X, b.X) || !eq(a.Y, b.Y) {
		return false
	}
	return eq(a.TestX, b.TestX) && eq(a.TestY, b.TestY)
}

func TestGenerateSeededDeterministic(t *testing.T) {
	spec := Specs["blobs"]
	a, err := GenerateSeeded(spec, 0.2, 12345)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSeeded(spec, 0.2, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDataset(a, b) {
		t.Error("same seed produced different datasets")
	}
}

func TestGenerateSeededSeedMatters(t *testing.T) {
	spec := Specs["blobs"]
	a, err := GenerateSeeded(spec, 0.2, 12345)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSeeded(spec, 0.2, 54321)
	if err != nil {
		t.Fatal(err)
	}
	if sameDataset(a, b) {
		t.Error("different seeds produced identical datasets — the seed is not propagating into generation")
	}
	// Same distribution, different draw: shape invariants must hold.
	if a.X.Rows() != b.X.Rows() || a.X.Cols != b.X.Cols {
		t.Errorf("seed changed the dataset shape: %dx%d vs %dx%d", a.X.Rows(), a.X.Cols, b.X.Rows(), b.X.Cols)
	}
	if err := b.Validate(); err != nil {
		t.Errorf("reseeded dataset invalid: %v", err)
	}
}

func TestGenerateSeededZeroMeansSpecSeed(t *testing.T) {
	spec := Specs["mushrooms"]
	a, err := Generate(spec, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSeeded(spec, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDataset(a, b) {
		t.Error("GenerateSeeded(spec, scale, 0) differs from Generate(spec, scale)")
	}
}
