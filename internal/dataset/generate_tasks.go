package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// Task-variant generators: deterministic synthetic data for the epsilon-SVR
// and one-class QPs (internal/tasks). They return raw (matrix, value)
// pairs rather than a Dataset because Dataset.Validate enforces the
// classifier's {+1, -1} label contract — SVR targets are continuous and
// one-class labels are ground-truth annotations the trainer never sees.

// GenerateRegression draws n dense samples uniformly from [-2, 2]^dim with
// targets z = sin(w.x) + 0.5*(v.x) + noise for fixed latent directions w, v
// — smooth enough for an RBF SVR to fit, nonlinear enough that a linear
// model cannot. Deterministic in (n, dim, noise, seed).
func GenerateRegression(n, dim int, noise float64, seed int64) (*sparse.Matrix, []float64, error) {
	if n <= 0 || dim <= 0 {
		return nil, nil, fmt.Errorf("dataset: regression set needs positive n and dim, got n=%d dim=%d", n, dim)
	}
	if noise < 0 {
		return nil, nil, fmt.Errorf("dataset: negative noise %v", noise)
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, dim)
	v := make([]float64, dim)
	for j := range w {
		w[j] = rng.NormFloat64() / math.Sqrt(float64(dim))
		v[j] = rng.NormFloat64() / math.Sqrt(float64(dim))
	}
	b := sparse.NewBuilder(dim)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		var wx, vx float64
		for j := 0; j < dim; j++ {
			x := 4*rng.Float64() - 2
			b.Add(j, x)
			wx += w[j] * x
			vx += v[j] * x
		}
		b.EndRow()
		z[i] = math.Sin(wx) + 0.5*vx + noise*rng.NormFloat64()
	}
	return b.Build(), z, nil
}

// GenerateOneClass draws n samples of which a floor(outlierFrac*n) minority
// are planted anomalies: inliers come from a unit Gaussian blob, outliers
// sit isolated at radius ~8 in scattered directions (so they cannot form a
// dense mode of their own). The returned labels are ground truth — +1
// inlier, -1 outlier — for evaluating a detector; one-class training
// ignores them. Outliers are interleaved deterministically so any prefix of
// the set keeps roughly the same contamination rate (the incremental-update
// benches append suffixes). Deterministic in (n, dim, outlierFrac, seed).
func GenerateOneClass(n, dim int, outlierFrac float64, seed int64) (*sparse.Matrix, []float64, error) {
	if n <= 0 || dim <= 0 {
		return nil, nil, fmt.Errorf("dataset: one-class set needs positive n and dim, got n=%d dim=%d", n, dim)
	}
	if outlierFrac < 0 || outlierFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: outlier fraction %v outside [0, 1)", outlierFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	nOut := int(outlierFrac * float64(n))
	every := 0
	if nOut > 0 {
		every = n / nOut
	}
	b := sparse.NewBuilder(dim)
	y := make([]float64, n)
	planted := 0
	for i := 0; i < n; i++ {
		if every > 0 && planted < nOut && i%every == every-1 {
			// Isolated far point: a random unit direction scaled to ~8.
			dir := make([]float64, dim)
			var norm float64
			for j := range dir {
				dir[j] = rng.NormFloat64()
				norm += dir[j] * dir[j]
			}
			norm = math.Sqrt(norm)
			if norm == 0 {
				norm = 1
			}
			r := 8 + rng.Float64()
			for j := range dir {
				b.Add(j, r*dir[j]/norm)
			}
			b.EndRow()
			y[i] = -1
			planted++
			continue
		}
		for j := 0; j < dim; j++ {
			b.Add(j, rng.NormFloat64())
		}
		b.EndRow()
		y[i] = 1
	}
	return b.Build(), y, nil
}
