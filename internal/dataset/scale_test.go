package dataset

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/sparse"
)

func TestFitScalerDense(t *testing.T) {
	x := sparse.FromDense([][]float64{
		{2, -1},
		{4, 3},
		{6, 1},
	})
	s, err := FitScaler(x, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.FeatMin[0] != 2 || s.FeatMax[0] != 6 || s.FeatMin[1] != -1 || s.FeatMax[1] != 3 {
		t.Fatalf("ranges: %+v", s)
	}
	out := s.Apply(x)
	d := out.ToDense()
	// Feature 0: 2->-1, 4->0 (dropped from sparse), 6->1.
	if d[0][0] != -1 || d[2][0] != 1 {
		t.Fatalf("scaled col0: %v %v", d[0][0], d[2][0])
	}
	if d[1][0] != 0 {
		t.Fatalf("midpoint should scale to 0, got %v", d[1][0])
	}
	// Feature 1: -1->-1, 3->1, 1->0.
	if d[0][1] != -1 || d[1][1] != 1 || d[2][1] != 0 {
		t.Fatalf("scaled col1: %v", d)
	}
}

func TestScalerSparseZerosCountTowardRange(t *testing.T) {
	// Feature 0 appears only in row 0 with value 4; the implicit zeros of
	// rows 1-2 must widen the range to [0, 4] (svm-scale behaviour).
	x := sparse.FromDense([][]float64{{4}, {0}, {0}})
	s, err := FitScaler(x, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.FeatMin[0] != 0 || s.FeatMax[0] != 4 {
		t.Fatalf("range [%v,%v], want [0,4]", s.FeatMin[0], s.FeatMax[0])
	}
	out := s.Apply(x)
	if got := out.ToDense()[0][0]; got != 1 {
		t.Fatalf("4 -> %v, want 1", got)
	}
}

func TestScalerConstantFeaturePassesThrough(t *testing.T) {
	x := sparse.FromDense([][]float64{{5, 1}, {5, 2}})
	s, err := FitScaler(x, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Apply(x)
	if got := out.ToDense()[0][0]; got != 5 {
		t.Fatalf("constant feature changed: %v", got)
	}
}

func TestScalerUnseenFeaturePassesThrough(t *testing.T) {
	train := sparse.FromDense([][]float64{{1}, {3}})
	s, err := FitScaler(train, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	test := sparse.FromDense([][]float64{{2, 7}}) // feature 1 unseen at fit
	out := s.Apply(test)
	d := out.ToDense()
	if d[0][1] != 7 {
		t.Fatalf("unseen feature scaled: %v", d[0][1])
	}
	if math.Abs(d[0][0]-0.5) > 1e-12 {
		t.Fatalf("seen feature: %v, want 0.5", d[0][0])
	}
}

func TestScalerRejectsEmptyRange(t *testing.T) {
	x := sparse.FromDense([][]float64{{1}})
	if _, err := FitScaler(x, 1, 1); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := FitScaler(x, 2, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestScalerRoundTrip(t *testing.T) {
	ds := MustGenerate("a9a", 0.02)
	s, err := FitScaler(ds.X, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadScaler(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Apply(ds.X)
	b := s2.Apply(ds.X)
	if a.NNZ() != b.NNZ() {
		t.Fatalf("NNZ %d vs %d after round trip", a.NNZ(), b.NNZ())
	}
	for i := range a.Val {
		if math.Abs(a.Val[i]-b.Val[i]) > 1e-12 {
			t.Fatalf("value %d differs: %v vs %v", i, a.Val[i], b.Val[i])
		}
	}
}

func TestReadScalerErrors(t *testing.T) {
	cases := []string{
		"",
		"y\n0 1\n",
		"x\n0\n",
		"x\n1 0\n",        // inverted
		"x\n0 1\nbad\n",   // malformed feature line
		"x\n0 1\n0 1 2\n", // 0-based index
		"x\n0 1\n1 a 2\n", // bad min
	}
	for _, c := range cases {
		if _, err := ReadScaler(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("accepted malformed scaler %q", c)
		}
	}
}

func TestScaledValuesWithinRange(t *testing.T) {
	ds := MustGenerate("mnist38", 0.01)
	s, err := FitScaler(ds.X, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Apply(ds.X)
	for _, v := range out.Val {
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Fatalf("scaled value %v out of [-1,1]", v)
		}
	}
}
