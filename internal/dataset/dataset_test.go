package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAllSpecsGenerateValid(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := Generate(spec, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			if err := ds.Validate(); err != nil {
				t.Fatal(err)
			}
			if ds.X.Cols != spec.Dim {
				t.Fatalf("cols = %d, want %d", ds.X.Cols, spec.Dim)
			}
			if ds.C != spec.C || ds.Sigma2 != spec.Sigma2 {
				t.Fatalf("hyperparameters not propagated: %+v", ds)
			}
			if spec.FullTest > 0 && ds.TestX == nil {
				t.Fatal("spec has test set but none generated")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate("mnist38", 0.02)
	b := MustGenerate("mnist38", 0.02)
	if a.X.NNZ() != b.X.NNZ() || a.Train() != b.Train() {
		t.Fatal("generation not deterministic in shape")
	}
	for i := range a.X.Val {
		if a.X.Val[i] != b.X.Val[i] {
			t.Fatal("generation not deterministic in values")
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels not deterministic")
		}
	}
}

func TestScaledCounts(t *testing.T) {
	s := Specs["higgs"]
	tr, te := s.ScaledCounts(0.01)
	if tr != 26000 || te != 0 {
		t.Fatalf("higgs at 1%%: %d/%d", tr, te)
	}
	tr, _ = s.ScaledCounts(1e-9)
	if tr != 200 {
		t.Fatalf("floor failed: %d", tr)
	}
	m := Specs["mnist38"]
	tr, te = m.ScaledCounts(0.1)
	if tr != 6000 || te != 1000 {
		t.Fatalf("mnist at 10%%: %d/%d", tr, te)
	}
}

func TestDensityApproximatelyMatchesSpec(t *testing.T) {
	for _, name := range []string{"url", "realsim", "a9a", "mnist38"} {
		spec := Specs[name]
		ds := MustGenerate(name, 0.02)
		got := ds.X.Density()
		if got < spec.Density*0.4 || got > spec.Density*2.5 {
			t.Errorf("%s: density %v, spec %v", name, got, spec.Density)
		}
	}
}

func TestDenseSpecsAreDense(t *testing.T) {
	ds := MustGenerate("higgs", 0.001)
	if d := ds.X.Density(); d < 0.95 {
		t.Fatalf("higgs density = %v", d)
	}
}

func TestClassBalance(t *testing.T) {
	ds := MustGenerate("w7a", 0.2)
	// w7a is heavily imbalanced (~10% positive after flips).
	if b := ds.ClassBalance(); b < 0.03 || b > 0.2 {
		t.Fatalf("w7a balance = %v", b)
	}
	ds2 := MustGenerate("usps", 0.2)
	if b := ds2.ClassBalance(); b < 0.4 || b > 0.6 {
		t.Fatalf("usps balance = %v", b)
	}
}

func TestBinarySpecsHaveUnitValues(t *testing.T) {
	ds := MustGenerate("mushrooms", 0.05)
	first := ds.X.Val[0]
	for _, v := range ds.X.Val {
		if v != first {
			t.Fatalf("binary dataset has non-constant values: %v vs %v", v, first)
		}
	}
}

func TestKernelWidthScaling(t *testing.T) {
	// After generation the mean squared pairwise distance should be within
	// a small factor of sigma^2 so Table III hyper-parameters make sense.
	for _, name := range []string{"higgs", "mnist38", "a9a"} {
		ds := MustGenerate(name, 0.01)
		var sum float64
		count := 0
		n := ds.Train()
		for i := 0; i < 100; i++ {
			a, b := (i*37)%n, (i*101+7)%n
			if a == b {
				continue
			}
			sum += ds.X.SquaredDistance(a, b)
			count++
		}
		mean := sum / float64(count)
		if mean < ds.Sigma2/8 || mean > ds.Sigma2*8 {
			t.Errorf("%s: mean pair distance^2 = %v, sigma^2 = %v", name, mean, ds.Sigma2)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown dataset resolved")
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	if _, err := Generate(Spec{Name: "x"}, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := Generate(Specs["blobs"], -1); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestLibsvmRoundTrip(t *testing.T) {
	ds := MustGenerate("a9a", 0.02)
	var buf bytes.Buffer
	if err := WriteLibsvm(&buf, ds.X, ds.Y); err != nil {
		t.Fatal(err)
	}
	x2, y2, err := ReadLibsvm(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if x2.Rows() != ds.Train() || x2.NNZ() != ds.X.NNZ() {
		t.Fatalf("round trip shape: %d/%d vs %d/%d", x2.Rows(), x2.NNZ(), ds.Train(), ds.X.NNZ())
	}
	for i := range y2 {
		if y2[i] != ds.Y[i] {
			t.Fatalf("label %d: %v vs %v", i, y2[i], ds.Y[i])
		}
	}
	for i := range x2.Val {
		if math.Abs(x2.Val[i]-ds.X.Val[i]) > 1e-12*math.Abs(ds.X.Val[i]) {
			t.Fatalf("value %d: %v vs %v", i, x2.Val[i], ds.X.Val[i])
		}
	}
}

func TestReadLibsvmFormats(t *testing.T) {
	in := `+1 1:0.5 3:1.25
-1 2:2
# comment line

+3.0 1:1
0 1:1
`
	x, y, err := ReadLibsvm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != 4 {
		t.Fatalf("rows = %d", x.Rows())
	}
	want := []float64{1, -1, 1, -1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("label %d = %v, want %v", i, y[i], want[i])
		}
	}
	if x.RowView(0).Val[1] != 1.25 || x.RowView(0).Idx[1] != 2 {
		t.Fatalf("row 0 = %+v", x.RowView(0))
	}
}

func TestReadLibsvmErrors(t *testing.T) {
	cases := []string{
		"abc 1:1",
		"+1 0:1",     // index < 1
		"+1 1:1 1:2", // non-increasing
		"+1 2:1 1:2", // decreasing
		"+1 1:xyz",   // bad value
		"+1 1-2",     // missing colon
	}
	for _, c := range cases {
		if _, _, err := ReadLibsvm(strings.NewReader(c)); err == nil {
			t.Errorf("accepted malformed input %q", c)
		}
	}
}

func TestWriteLibsvmMismatch(t *testing.T) {
	ds := MustGenerate("blobs", 0.05)
	var buf bytes.Buffer
	if err := WriteLibsvm(&buf, ds.X, ds.Y[:3]); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	ds := MustGenerate("blobs", 0.05)
	path := t.TempDir() + "/data.libsvm"
	if err := SaveLibsvmFile(path, ds.X, ds.Y); err != nil {
		t.Fatal(err)
	}
	x, y, err := LoadLibsvmFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != ds.Train() || len(y) != len(ds.Y) {
		t.Fatal("file round trip mismatch")
	}
	if _, _, err := LoadLibsvmFile(path + ".missing"); err == nil {
		t.Fatal("missing file loaded")
	}
}

// Property: any generated dataset round-trips through the libsvm format.
func TestLibsvmRoundTripQuick(t *testing.T) {
	names := Names()
	f := func(seedIdx uint8, scalePick uint8) bool {
		name := names[int(seedIdx)%len(names)]
		scale := 0.002 + float64(scalePick%10)*0.001
		ds := MustGenerate(name, scale)
		var buf bytes.Buffer
		if err := WriteLibsvm(&buf, ds.X, ds.Y); err != nil {
			return false
		}
		x2, y2, err := ReadLibsvm(&buf)
		if err != nil {
			return false
		}
		return x2.Rows() == ds.Train() && len(y2) == len(ds.Y) && x2.NNZ() == ds.X.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadLabels(t *testing.T) {
	ds := MustGenerate("blobs", 0.05)
	ds.Y[0] = 0.5
	if err := ds.Validate(); err == nil {
		t.Fatal("accepted label 0.5")
	}
	ds = MustGenerate("blobs", 0.05)
	for i := range ds.Y {
		ds.Y[i] = 1
	}
	if err := ds.Validate(); err == nil {
		t.Fatal("accepted single-class labels")
	}
}
