// Package smo implements the "libsvm-enhanced" baseline of the paper: a
// sequential SMO solver in the Keerthi et al. formulation, with libsvm's
// kernel-row cache and shrinking, whose per-iteration gradient update is
// parallelized across goroutines — the role OpenMP plays in the paper's
// enhancement of libsvm 3.18.
//
// The paper sets this baseline up generously: libsvm may use "a compute
// node's entire memory as a kernel cache" and all available cores. Both
// knobs are exposed here (CacheBytes, Workers).
package smo

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/cache"
	"repro/internal/ckpt"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Config controls a baseline training run.
type Config struct {
	Kernel kernel.Params
	C      float64
	Eps    float64 // the paper's user-specified tolerance epsilon

	// Workers is the number of goroutines used for the per-iteration
	// gradient update (the OpenMP enhancement). 0 means GOMAXPROCS.
	Workers int
	// CacheBytes is the kernel-row cache budget; 0 disables caching.
	CacheBytes int64
	// Shrinking enables libsvm-style shrinking with periodic checks.
	Shrinking bool
	// SecondOrder switches working-set selection from the maximal
	// violating pair (Keerthi et al., the paper's setting) to libsvm's
	// second-order rule: i_up is still the worst violator on the up side,
	// but its partner maximizes the analytic objective gain
	// (gamma_up - gamma_j)^2 / eta_uj. Usually converges in fewer
	// iterations at the cost of one kernel row per selection (reused by
	// the gradient update, so the net extra cost is small).
	SecondOrder bool
	// ShrinkEvery is the iteration period of shrinking checks
	// (libsvm uses min(n, 1000)); 0 means that default.
	ShrinkEvery int
	// InitialAlpha warm-starts the solver from an existing dual point
	// instead of alpha = 0. It must have one entry per sample, each in
	// [0, C], and satisfy the dual equality constraint
	// sum_i InitialAlpha[i]*y[i] = 0 (SMO pair updates preserve the
	// constraint, so a violated start would converge to a shifted
	// solution). Gradients are rebuilt once from the non-zero entries at
	// startup — the same cost as one gradient reconstruction. The
	// divide-and-conquer trainer uses this to polish coalesced per-cluster
	// solutions; a warm start at the optimum converges in zero iterations.
	InitialAlpha []float64
	// MaxIter bounds the iteration count; 0 means a generous default.
	MaxIter int64

	// LinearTerm is the per-sample linear term p_i of the generalized dual
	//
	//	min ½ sum_ij alpha_i alpha_j y_i y_j K_ij + sum_i p_i alpha_i
	//
	// in which the classification dual is p_i = -1 (nil selects it, and is
	// bit-identical to the historical behavior). Task formulations
	// (internal/tasks) use it to express epsilon-SVR's per-sample terms
	// epsilon -/+ z_i and the one-class SVM's zero linear term. The
	// gradient bookkeeping generalizes transparently: gamma_i starts at
	// y_i*p_i and the pairwise updates are unchanged.
	LinearTerm []float64
	// BoxC, when non-nil, gives each sample its own upper bound
	// [0, BoxC[i]] instead of the uniform [0, C]. C must still be positive
	// (it scales tolerance bounds and is recorded in the model); solvers
	// that pass BoxC typically set C to the maximum entry.
	BoxC []float64
	// EqualityTarget is the value of sum_i alpha_i*y_i the dual's equality
	// constraint pins (0 for classification and epsilon-SVR, 1 for the
	// one-class SVM). SMO pair updates preserve the sum, so a nonzero
	// target requires InitialAlpha meeting it; TrainQP validates that.
	EqualityTarget float64

	// skipModel suppresses assembling a classifier model in the result;
	// TrainQP sets it because task solvers (SVR's doubled variables)
	// assemble their own model from the raw dual point.
	skipModel bool
	// RecordTrace records the run's shrink/reconstruction schedule for the
	// performance model (used when modeling the baseline at full dataset
	// size, where its kernel cache no longer fits).
	RecordTrace bool
	// DatasetName labels the trace.
	DatasetName string

	// Checkpoint, when non-nil, persists a crash-consistent snapshot of
	// the solver state (alpha, gradients, active set, shrink countdown)
	// every CheckpointEvery iterations. A killed run re-enters through
	// InitialAlpha with the loaded snapshot's alphas. CheckpointSeed is
	// recorded for provenance; CheckpointLabel overrides the solver kind
	// stamped into snapshots (the divide-and-conquer trainer labels its
	// polish checkpoints "dcsvm"); CheckpointFingerprint overrides the
	// dataset hash (computed from (x, y) when zero).
	Checkpoint            *ckpt.Writer
	CheckpointEvery       int64
	CheckpointSeed        int64
	CheckpointLabel       string
	CheckpointFingerprint uint64
}

func (c *Config) withDefaults(n int) Config {
	out := *c
	if out.Eps <= 0 {
		out.Eps = 1e-3
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.ShrinkEvery <= 0 {
		out.ShrinkEvery = min(n, 1000)
	}
	if out.MaxIter <= 0 {
		out.MaxIter = 200_000_000
	}
	return out
}

// Result carries the trained model and training statistics.
type Result struct {
	Model *model.Model
	// Alpha is the final dual point (one entry per sample). TrainQP
	// callers assemble task-specific models from it; Train fills it too so
	// warm-start chains need not recover alphas from the model.
	Alpha []float64
	// Beta is the threshold of the verified band (the model's rho);
	// meaningful even when Model is nil (TrainQP).
	Beta            float64
	Iterations      int64
	KernelEvals     uint64
	CacheHits       uint64
	CacheMisses     uint64
	CacheEvictions  uint64
	Reconstructions int
	ShrinkEvents    int
	Converged       bool
	Objective       float64 // dual objective at termination
	Elapsed         time.Duration
	Trace           *trace.Trace // non-nil when Config.RecordTrace
}

// Train runs the baseline SMO solver on (x, y) with labels in {+1, -1}.
func Train(x *sparse.Matrix, y []float64, cfg Config) (*Result, error) {
	hasPos, hasNeg := false, false
	for _, v := range y {
		switch v {
		case 1:
			hasPos = true
		case -1:
			hasNeg = true
		}
	}
	if len(y) > 0 && (!hasPos || !hasNeg) {
		return nil, errors.New("smo: training set must contain both classes")
	}
	return train(x, y, cfg)
}

// TrainQP runs the solver on a generalized QP: labels are constraint signs
// in {+1, -1} (a single sign throughout is allowed — the one-class SVM has
// all +1), LinearTerm and BoxC shape the objective and feasible box, and
// EqualityTarget pins sum_i alpha_i*y_i. It returns the raw dual point
// (Result.Alpha, Result.Beta) without assembling a classifier model;
// internal/tasks builds task-specific models from it.
func TrainQP(x *sparse.Matrix, y []float64, cfg Config) (*Result, error) {
	cfg.skipModel = true
	if cfg.EqualityTarget != 0 && cfg.InitialAlpha == nil {
		return nil, fmt.Errorf("smo: equality target %v is unreachable from the cold start alpha=0 (pair updates preserve sum alpha*y); provide a feasible InitialAlpha", cfg.EqualityTarget)
	}
	return train(x, y, cfg)
}

func train(x *sparse.Matrix, y []float64, cfg Config) (*Result, error) {
	n := x.Rows()
	if n < 2 {
		return nil, fmt.Errorf("smo: need at least 2 samples, got %d", n)
	}
	if len(y) != n {
		return nil, fmt.Errorf("smo: %d labels for %d samples", len(y), n)
	}
	if cfg.C <= 0 {
		return nil, fmt.Errorf("smo: C must be positive, got %v", cfg.C)
	}
	if err := cfg.Kernel.Validate(); err != nil {
		return nil, err
	}
	for i, v := range y {
		if v != 1 && v != -1 {
			return nil, fmt.Errorf("smo: label %d is %v, want +1 or -1", i, v)
		}
	}
	if cfg.LinearTerm != nil && len(cfg.LinearTerm) != n {
		return nil, fmt.Errorf("smo: %d linear-term entries for %d samples", len(cfg.LinearTerm), n)
	}
	if cfg.BoxC != nil {
		if len(cfg.BoxC) != n {
			return nil, fmt.Errorf("smo: %d box bounds for %d samples", len(cfg.BoxC), n)
		}
		for i, c := range cfg.BoxC {
			if math.IsNaN(c) || c <= 0 {
				return nil, fmt.Errorf("smo: box bound %d is %v, want positive", i, c)
			}
		}
	}
	if cfg.InitialAlpha != nil {
		if err := validateInitialAlpha(cfg.InitialAlpha, y, &cfg); err != nil {
			return nil, err
		}
	}

	s := newState(x, y, cfg.withDefaults(n))
	if s.cfg.Checkpoint != nil && s.cfg.CheckpointFingerprint == 0 {
		s.cfg.CheckpointFingerprint = ckpt.Fingerprint(x, y)
	}
	if cfg.InitialAlpha != nil {
		s.warmStart(cfg.InitialAlpha)
	}
	start := time.Now()
	if err := s.run(); err != nil {
		return nil, err
	}
	res := s.result()
	res.Elapsed = time.Since(start)
	return res, nil
}

// state is the mutable solver state.
type state struct {
	cfg     Config
	x       *sparse.Matrix
	y       []float64
	alpha   []float64
	gamma   []float64
	active  []bool
	nActive int

	ev   *kernel.Evaluator
	pool *kernel.RowPool // batched row engine, one (SubEvaluator, Scratch) per worker
	rows *cache.RowCache
	diag []float64 // K(i,i), precomputed for second-order selection

	// batched cache-fill buffers: the missing-entry indices of a kernel row
	// and their freshly computed values (fillActive).
	idxBuf []int
	valBuf []float64

	iter            int64
	shrinkEvents    int
	reconstructions int
	converged       bool
	warm            bool // warm-started from a non-zero dual point
	trace           *trace.Trace

	betaUp, betaLow float64
	iUp, iLow       int
}

func newState(x *sparse.Matrix, y []float64, cfg Config) *state {
	n := x.Rows()
	s := &state{
		cfg:     cfg,
		x:       x,
		y:       y,
		alpha:   make([]float64, n),
		gamma:   make([]float64, n),
		active:  make([]bool, n),
		nActive: n,
		ev:      kernel.NewEvaluator(cfg.Kernel, x),
		rows:    cache.New(cfg.CacheBytes),
	}
	for i := 0; i < n; i++ {
		// Algorithm 1 line 1: gamma_i <- y_i*p_i, alpha_i <- 0. The
		// classification p_i = -1 gives the historical -y_i (float
		// negation is exact, so y*(-1) is bit-identical to -y).
		s.gamma[i] = y[i] * s.pAt(i)
		s.active[i] = true
	}
	s.pool = kernel.NewRowPool(s.ev, cfg.Workers)
	s.idxBuf = make([]int, 0, n)
	s.valBuf = make([]float64, n)
	if cfg.RecordTrace {
		s.trace = trace.New(cfg.DatasetName, "libsvm-enhanced", n, x.AvgRowNNZ(), cfg.Eps)
	}
	if cfg.SecondOrder {
		s.diag = make([]float64, n)
		s.ev.DiagInto(s.diag)
	}
	return s
}

// validateInitialAlpha rejects warm starts that violate the box or
// equality constraint of the dual; those are not fixable by SMO updates.
func validateInitialAlpha(alpha, y []float64, cfg *Config) error {
	if len(alpha) != len(y) {
		return fmt.Errorf("smo: %d initial alphas for %d samples", len(alpha), len(y))
	}
	var eq, mass float64
	for i, a := range alpha {
		c := cfg.C
		if cfg.BoxC != nil {
			c = cfg.BoxC[i]
		}
		if math.IsNaN(a) || a < 0 || a > c*(1+1e-9) {
			return fmt.Errorf("smo: initial alpha %d = %v outside [0, C=%v]", i, a, c)
		}
		eq += a * y[i]
		mass += a
	}
	if math.Abs(eq-cfg.EqualityTarget) > 1e-6*(1+mass) {
		return fmt.Errorf("smo: initial alphas violate sum alpha_i*y_i = %v (got %v)", cfg.EqualityTarget, eq)
	}
	return nil
}

// boxAt returns sample i's upper bound: BoxC[i] when per-sample boxes are
// set, the uniform C otherwise.
func (s *state) boxAt(i int) float64 {
	if s.cfg.BoxC != nil {
		return s.cfg.BoxC[i]
	}
	return s.cfg.C
}

// pAt returns sample i's linear term, -1 (classification) when unset.
func (s *state) pAt(i int) float64 {
	if s.cfg.LinearTerm != nil {
		return s.cfg.LinearTerm[i]
	}
	return -1
}

// warmStart installs the initial dual point and rebuilds every gradient
// from its non-zero entries: gamma_i = sum_j alpha_j y_j K(j,i) + y_i*p_i.
//
// The rebuild is row-driven through the kernel cache rather than
// target-driven like reconstruction: each support vector's full row is
// fetched once via getRow/fillActive and accumulated into every gradient.
// The eval count is the same nSV*n either way, but the iterations that
// follow work almost entirely on these same support vectors, so the rows
// computed here are cache hits later — the warm start doubles as a
// prefetch instead of work the cache would repeat from scratch.
func (s *state) warmStart(alpha0 []float64) {
	for i, a := range alpha0 {
		if c := s.boxAt(i); a > c {
			a = c // tolerated rounding excess from validateInitialAlpha
		}
		s.alpha[i] = a
	}
	for j, a := range s.alpha {
		if a == 0 {
			continue // gamma already holds the cold start y_j*p_j
		}
		s.warm = true
		row := s.getRow(j)
		s.fillActive(j, row) // everything is active: fills the full row
		c := a * s.y[j]
		for i, v := range row {
			s.gamma[i] += c * v
		}
	}
}

// selectPair scans the active set for the worst KKT violators (Eq. 3).
// The betas always come from the maximal violators (they define the
// termination and shrinking band); with second-order selection the partner
// i_low is re-picked afterwards by analytic gain.
func (s *state) selectPair() {
	s.betaUp, s.betaLow = math.Inf(1), math.Inf(-1)
	s.iUp, s.iLow = -1, -1
	for i := range s.alpha {
		if !s.active[i] {
			continue
		}
		if solver.InUp(s.y[i], s.alpha[i], s.boxAt(i)) && s.gamma[i] < s.betaUp {
			s.betaUp, s.iUp = s.gamma[i], i
		}
		if solver.InLow(s.y[i], s.alpha[i], s.boxAt(i)) && s.gamma[i] > s.betaLow {
			s.betaLow, s.iLow = s.gamma[i], i
		}
	}
}

// selectSecondOrder re-picks i_low to maximize the objective gain
// (gamma_up - gamma_j)^2 / eta for violating partners j, given the kernel
// row of i_up (libsvm's WSS; Fan, Chen & Lin 2005). Returns the chosen
// index, or -1 if no partner strictly violates (termination handles it).
func (s *state) selectSecondOrder(u int, rowU []float64) int {
	best, bestGain := -1, math.Inf(-1)
	gU := s.gamma[u]
	kUU := kernelAt(s.ev, rowU, u, u)
	for j := range s.alpha {
		if !s.active[j] || !solver.InLow(s.y[j], s.alpha[j], s.boxAt(j)) {
			continue
		}
		b := s.gamma[j] - gU
		if b <= 0 {
			continue
		}
		eta := kUU + s.diag[j] - 2*kernelAt(s.ev, rowU, u, j)
		if eta <= solver.Tau {
			eta = solver.Tau
		}
		if gain := b * b / eta; gain > bestGain {
			bestGain, best = gain, j
		}
	}
	return best
}

// getRow returns the (possibly partially computed) kernel row for sample u.
// Entries are NaN until computed; the gradient loop fills them lazily so a
// row computed under a small active set stays reusable and is completed on
// demand if the active set grows back.
func (s *state) getRow(u int) []float64 {
	if row, ok := s.rows.Get(u); ok {
		return row
	}
	row := make([]float64, len(s.alpha))
	for i := range row {
		row[i] = math.NaN()
	}
	s.rows.Put(u, row)
	if got, ok := s.rows.Get(u); ok {
		return got
	}
	return row // cache disabled: caller uses the transient row
}

// kernelAt returns K(u, i) via the row, computing and memoizing on miss.
// After fillActive every active entry is present, so this only computes
// for an index outside the batch (a guarded fallback, not a loop).
func kernelAt(ev *kernel.Evaluator, row []float64, u, i int) float64 {
	if v := row[i]; !math.IsNaN(v) {
		return v
	}
	v := ev.At(u, i)
	row[i] = v
	return v
}

// fillActive completes row u over the whole active set in one batched row
// evaluation: every NaN sentinel at an active index is computed together
// through the row pool and memoized, replacing the element-at-a-time fill
// the gradient loop used to do on each cache miss. Costs exactly as many
// kernel evaluations as sentinels filled — a fresh row costs one full
// batch, a row cached under a smaller active set only the entries that
// grew back.
func (s *state) fillActive(u int, row []float64) {
	idx := s.idxBuf[:0]
	for i, a := range s.active {
		if a && math.IsNaN(row[i]) {
			idx = append(idx, i)
		}
	}
	s.idxBuf = idx
	if len(idx) == 0 {
		return
	}
	vals := s.valBuf[:len(idx)]
	s.pool.RowInto(s.x.RowView(u), s.ev.Norm(u), idx, vals)
	for k, i := range idx {
		row[i] = vals[k]
	}
}

func (s *state) run() error {
	shrinkCountdown := s.cfg.ShrinkEvery
	if s.warm && s.cfg.Shrinking {
		// A warm start sits near an optimum, so the violation band is
		// already tight: shrinking after the first iteration (instead of
		// waiting a full ShrinkEvery period like a cold start must, while
		// its gradients are still far off) collapses the active set to
		// roughly the support vectors immediately. Fresh kernel rows and
		// working-set scans then cost ~|active| instead of ~n for the
		// whole run; any over-shrunk sample is caught by the
		// reconstruct-and-unshrink pass at convergence, as usual.
		shrinkCountdown = 1
	}
	for {
		s.selectPair()
		if s.iUp < 0 || s.iLow < 0 || solver.Converged(s.betaUp, s.betaLow, s.cfg.Eps) {
			if s.cfg.Shrinking && s.nActive < len(s.alpha) {
				// Converged on the active set only: reconstruct the
				// gradients of shrunk samples and re-admit everything,
				// exactly as libsvm does before declaring convergence.
				s.reconstruct()
				s.unshrinkAll()
				shrinkCountdown = s.cfg.ShrinkEvery
				continue
			}
			s.converged = true
			return nil
		}
		if s.iter >= s.cfg.MaxIter {
			return nil // converged stays false
		}
		s.iter++

		u, l := s.iUp, s.iLow
		rowU := s.getRow(u)
		s.fillActive(u, rowU)
		if s.cfg.SecondOrder {
			if j := s.selectSecondOrder(u, rowU); j >= 0 {
				l = j
			}
		}
		rowL := s.getRow(l)
		s.fillActive(l, rowL)
		kUU := kernelAt(s.ev, rowU, u, u)
		kLL := kernelAt(s.ev, rowL, l, l)
		kUL := kernelAt(s.ev, rowU, u, l)
		rowL[u] = kUL // symmetric
		st := solver.OptimizePairBox(s.gamma[u], s.gamma[l], s.y[u], s.y[l],
			s.alpha[u], s.alpha[l], kUU, kLL, kUL, s.boxAt(u), s.boxAt(l))
		s.alpha[u] = st.NewAlphaUp
		s.alpha[l] = st.NewAlphaLow

		s.updateGradients(st.T, u, l, rowU, rowL)

		if s.cfg.Shrinking {
			shrinkCountdown--
			if shrinkCountdown <= 0 {
				s.shrink()
				shrinkCountdown = s.cfg.ShrinkEvery
			}
		}

		if s.cfg.Checkpoint != nil && s.cfg.CheckpointEvery > 0 && s.iter%s.cfg.CheckpointEvery == 0 {
			if err := s.saveCheckpoint(int64(shrinkCountdown)); err != nil {
				return err
			}
		}
	}
}

// saveCheckpoint persists the full solver state as one crash-consistent
// generation. Alpha is the load-bearing field (resume re-enters through the
// InitialAlpha warm start); gradients, active set and shrink bookkeeping
// make the snapshot self-contained for diagnostics.
func (s *state) saveCheckpoint(shrinkCountdown int64) error {
	label := s.cfg.CheckpointLabel
	if label == "" {
		label = ckpt.SolverSMO
	}
	return s.cfg.Checkpoint.Save(&ckpt.State{
		Solver:          label,
		Iteration:       s.iter,
		Seed:            s.cfg.CheckpointSeed,
		Fingerprint:     s.cfg.CheckpointFingerprint,
		N:               len(s.alpha),
		Alpha:           append([]float64(nil), s.alpha...),
		Gamma:           append([]float64(nil), s.gamma...),
		Active:          append([]bool(nil), s.active...),
		ShrinkCountdown: shrinkCountdown,
		ShrinkEvents:    int32(s.shrinkEvents),
		Reconstructions: int32(s.reconstructions),
	})
}

// updateGradients applies Eq. 2 to every active sample, splitting the range
// across the worker pool. fillActive already computed both rows over the
// active set, so the chunks are pure arithmetic — the kernel evaluations
// all happened in the batched row fills.
func (s *state) updateGradients(t float64, u, l int, rowU, rowL []float64) {
	n := len(s.gamma)
	w := s.cfg.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		s.gradientChunk(t, rowU, rowL, 0, n)
		return
	}
	done := make(chan struct{}, w)
	for k := 0; k < w; k++ {
		lo, hi := k*n/w, (k+1)*n/w
		go func(lo, hi int) {
			s.gradientChunk(t, rowU, rowL, lo, hi)
			done <- struct{}{}
		}(lo, hi)
	}
	for k := 0; k < w; k++ {
		<-done
	}
}

func (s *state) gradientChunk(t float64, rowU, rowL []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		if !s.active[i] {
			continue
		}
		s.gamma[i] += solver.GradientDelta(t, rowU[i], rowL[i])
	}
}

// shrink applies the Eq. 9 condition using the betas of the last selection.
func (s *state) shrink() {
	for i := range s.alpha {
		if !s.active[i] {
			continue
		}
		set := solver.Classify(s.y[i], s.alpha[i], s.boxAt(i))
		if solver.Shrinkable(set, s.gamma[i], s.betaUp, s.betaLow) {
			s.active[i] = false
			s.nActive--
		}
	}
	s.shrinkEvents++
	if s.trace != nil {
		s.trace.SetActive(s.iter, s.nActive)
	}
}

// reconstruct recomputes gamma for inactive samples from scratch:
// gamma_i = sum_{alpha_j>0} alpha_j y_j K(x_j, x_i) - y_i.
func (s *state) reconstruct() {
	s.reconstructions++
	var svs []int
	for j, a := range s.alpha {
		if a > 0 {
			svs = append(svs, j)
		}
	}
	var targets []int
	for i := range s.alpha {
		if !s.active[i] {
			targets = append(targets, i)
		}
	}
	if s.trace != nil {
		s.trace.AddRecon(s.iter, len(targets), len(svs))
	}
	s.rebuildGradients(svs, targets)
}

// rebuildGradients recomputes gamma_i = sum_j alpha_j y_j K(x_i, x_j) - y_i
// for the targets from the support set, fanning target chunks across the
// row pool. Each target is one batched row evaluation against the support
// vectors (pivot = x_i scattered once, the SV rows gathered against it),
// shared by warm start and gradient reconstruction.
func (s *state) rebuildGradients(svs, targets []int) {
	if len(svs) == 0 || len(targets) == 0 {
		return
	}
	coef := make([]float64, len(svs))
	for k, j := range svs {
		coef[k] = s.alpha[j] * s.y[j]
	}
	w := s.pool.Workers()
	if w > len(targets) {
		w = len(targets)
	}
	if w <= 1 {
		ev, scr := s.pool.Worker(0)
		s.reconstructChunk(ev, scr, make([]float64, len(svs)), svs, coef, targets)
		return
	}
	done := make(chan struct{}, w)
	for k := 0; k < w; k++ {
		lo, hi := k*len(targets)/w, (k+1)*len(targets)/w
		ev, scr := s.pool.Worker(k)
		go func(ev *kernel.Evaluator, scr *kernel.Scratch, part []int) {
			s.reconstructChunk(ev, scr, make([]float64, len(svs)), svs, coef, part)
			done <- struct{}{}
		}(ev, scr, targets[lo:hi])
	}
	for k := 0; k < w; k++ {
		<-done
	}
}

func (s *state) reconstructChunk(ev *kernel.Evaluator, scr *kernel.Scratch, buf []float64, svs []int, coef []float64, targets []int) {
	for _, i := range targets {
		ev.RowInto(scr, s.x.RowView(i), ev.Norm(i), svs, buf)
		var g float64
		for k := range svs {
			g += coef[k] * buf[k]
		}
		// g + y_i*p_i; classification's p_i = -1 keeps the historical
		// g - y_i bit-identically (adding -y equals subtracting y).
		s.gamma[i] = g + s.y[i]*s.pAt(i)
	}
}

func (s *state) unshrinkAll() {
	for i := range s.active {
		s.active[i] = true
	}
	s.nActive = len(s.active)
}

// result assembles the model and statistics.
func (s *state) result() *Result {
	var svIdx []int
	var sumG float64
	nI0 := 0
	for i, a := range s.alpha {
		if a > 0 {
			svIdx = append(svIdx, i)
		}
		if solver.Classify(s.y[i], a, s.boxAt(i)) == solver.I0 {
			sumG += s.gamma[i]
			nI0++
		}
	}
	beta := solver.Threshold(sumG, nI0, s.betaUp, s.betaLow)
	evals := s.ev.Evals() + s.pool.Evals()
	hits, misses, evictions := s.rows.Stats()
	if s.trace != nil {
		s.trace.Iterations = s.iter
		s.trace.Converged = s.converged
		s.trace.SVCount = len(svIdx)
	}
	res := &Result{
		Alpha:           append([]float64(nil), s.alpha...),
		Beta:            beta,
		Iterations:      s.iter,
		KernelEvals:     evals,
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheEvictions:  evictions,
		Reconstructions: s.reconstructions,
		ShrinkEvents:    s.shrinkEvents,
		Converged:       s.converged,
		Objective:       solver.DualObjectiveQP(s.alpha, s.y, s.gamma, s.cfg.LinearTerm),
		Trace:           s.trace,
	}
	if s.cfg.skipModel {
		return res
	}
	sv, err := s.x.SelectRows(svIdx)
	if err != nil {
		panic("smo: internal: " + err.Error()) // indices come from range loop
	}
	coef := make([]float64, len(svIdx))
	for k, i := range svIdx {
		coef[k] = s.alpha[i] * s.y[i]
	}
	res.Model = &model.Model{
		Kernel:       s.cfg.Kernel,
		C:            s.cfg.C,
		SV:           sv,
		Coef:         coef,
		Beta:         beta,
		TrainSamples: len(s.alpha),
		Iterations:   s.iter,
	}
	return res
}
