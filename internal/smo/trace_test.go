package smo

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
)

func TestTraceRecording(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	cfg := Config{
		Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-3, Workers: 2,
		Shrinking: true, ShrinkEvery: 100,
		RecordTrace: true, DatasetName: "blobs",
	}
	res, err := Train(ds.X, ds.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	if tr.Dataset != "blobs" || tr.Heuristic != "libsvm-enhanced" {
		t.Fatalf("trace header: %+v", tr)
	}
	if tr.N != ds.Train() || tr.Iterations != res.Iterations {
		t.Fatalf("trace totals: N=%d iters=%d vs result %d/%d", tr.N, tr.Iterations, ds.Train(), res.Iterations)
	}
	if tr.Converged != res.Converged || tr.SVCount != res.Model.NumSV() {
		t.Fatalf("trace stats mismatch: %+v vs %+v", tr, res)
	}
	if len(tr.Recons) != res.Reconstructions {
		t.Fatalf("trace recons %d != result %d", len(tr.Recons), res.Reconstructions)
	}
	if res.ShrinkEvents > 0 && len(tr.Segments) < 2 {
		t.Fatal("shrinking happened but trace has no segments")
	}
	if tr.MeanActiveFraction() <= 0 || tr.MeanActiveFraction() > 1 {
		t.Fatalf("mean active = %v", tr.MeanActiveFraction())
	}
	// Avg NNZ is populated for the performance model.
	if tr.AvgNNZ <= 0 {
		t.Fatalf("AvgNNZ = %v", tr.AvgNNZ)
	}
}

func TestNoTraceByDefault(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.1)
	res, err := Train(ds.X, ds.Y, Config{Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace recorded without RecordTrace")
	}
}
