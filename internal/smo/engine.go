package smo

import (
	"context"
	"fmt"

	"repro/internal/solver"
	"repro/internal/sparse"
)

func init() {
	solver.Register(smoEngine{name: "smo", secondOrder: false})
	solver.Register(smoEngine{name: "smo2", secondOrder: true})
}

// smoEngine adapts the libsvm-enhanced baseline to solver.Engine, in two
// registrations: "smo" selects working sets by the maximal violating pair
// (Keerthi et al., the paper's setting), "smo2" by libsvm's second-order
// max-gain rule. Everything else — cache, shrinking, warm start,
// checkpointing — is shared.
type smoEngine struct {
	name        string
	secondOrder bool
}

func (e smoEngine) Name() string { return e.name }

func (smoEngine) Capabilities() solver.Capability {
	return solver.CapClassify | solver.CapKernels | solver.CapWarmStart |
		solver.CapCheckpoint | solver.CapTrace
}

func (e smoEngine) Describe() string {
	if e.secondOrder {
		return "single-node SMO with libsvm's second-order max-gain pair selection; fewer iterations per solve on hard problems"
	}
	return "the libsvm-enhanced single-node baseline: maximal-violating-pair SMO with kernel cache and shrinking"
}

func (e smoEngine) Train(ctx context.Context, prob solver.Problem, opts solver.Options) (solver.Result, error) {
	if err := solver.Validate(e, prob, opts); err != nil {
		return solver.Result{}, err
	}
	x, ok := prob.X.(*sparse.Matrix)
	if !ok {
		return solver.Result{}, fmt.Errorf("smo: engine needs an in-memory matrix, got %T", prob.X)
	}
	cacheBytes := opts.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = 1 << 30
	}
	cfg := Config{
		Kernel: prob.Kernel, C: opts.C, Eps: opts.Eps,
		Workers: opts.Workers, CacheBytes: cacheBytes,
		Shrinking: true, SecondOrder: e.secondOrder,
		InitialAlpha: opts.InitialAlpha, MaxIter: opts.MaxIter,
		Checkpoint: opts.Checkpoint, CheckpointEvery: opts.CheckpointEvery,
		CheckpointSeed: opts.Seed, CheckpointFingerprint: opts.CheckpointFingerprint,
		RecordTrace: opts.RecordTrace, DatasetName: opts.DatasetName,
	}
	res, err := Train(x, prob.Y, cfg)
	if err != nil {
		return solver.Result{}, err
	}
	out := solver.Result{
		Model:       res.Model,
		Alpha:       res.Alpha,
		Iterations:  res.Iterations,
		KernelEvals: res.KernelEvals,
		Converged:   res.Converged,
		Objective:   res.Objective,
		Summary: fmt.Sprintf("converged=%v iterations=%d cache-hit=%.1f%% cache-evictions=%d SVs=%d",
			res.Converged, res.Iterations,
			100*float64(res.CacheHits)/float64(max(1, res.CacheHits+res.CacheMisses)),
			res.CacheEvictions,
			res.Model.NumSV()),
	}
	if res.Trace != nil {
		out.Trace = res.Trace
	}
	return out, nil
}
