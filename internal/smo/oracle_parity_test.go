// Oracle parity for the libsvm-enhanced baseline (external test package:
// the oracle imports smo). Every solver mode — shrinking on/off, first- and
// second-order working-set selection, cold and warm starts, multi-worker —
// must terminate at an eps-approximate optimum of the same QP.
package smo_test

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/oracle"
	"repro/internal/smo"
)

func TestOracleParityAcrossModes(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.1)
	kp := kernel.FromSigma2(ds.Sigma2)
	prob := oracle.Problem{X: ds.X, Y: ds.Y, Kernel: kp, C: ds.C, Eps: 1e-3}
	base := smo.Config{Kernel: kp, C: ds.C, Eps: 1e-3}

	cases := []struct {
		name string
		mod  func(*smo.Config)
	}{
		{"plain", func(c *smo.Config) {}},
		{"shrinking", func(c *smo.Config) { c.Shrinking = true }},
		{"second-order", func(c *smo.Config) { c.SecondOrder = true }},
		{"shrinking+second-order", func(c *smo.Config) { c.Shrinking = true; c.SecondOrder = true }},
		{"workers=3", func(c *smo.Config) { c.Workers = 3; c.Shrinking = true }},
	}
	var warmFrom []float64
	for _, tc := range cases {
		cfg := base
		tc.mod(&cfg)
		res, err := smo.Train(ds.X, ds.Y, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		rep, err := prob.VerifyModel(res.Model)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := rep.Check(); err != nil {
			t.Errorf("%s fails the oracle: %v", tc.name, err)
		}
		if diff := rep.DualObjective - res.Objective; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%s: oracle dual %.9f vs solver %.9f", tc.name, rep.DualObjective, res.Objective)
		}
		if warmFrom == nil {
			warmFrom, err = oracle.RecoverAlpha(ds.X, ds.Y, res.Model)
			if err != nil {
				t.Fatalf("%s: recover: %v", tc.name, err)
			}
		}
	}

	// Warm start from a recovered solution must stay at the optimum.
	cfg := base
	cfg.Shrinking = true
	cfg.InitialAlpha = warmFrom
	res, err := smo.Train(ds.X, ds.Y, cfg)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	rep, err := prob.VerifyModel(res.Model)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if err := rep.Check(); err != nil {
		t.Errorf("warm-started solve fails the oracle: %v", err)
	}
}
