package smo

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

// TestWarmStartAtOptimum: restarting from a converged solution must
// terminate immediately (zero or near-zero iterations) and reproduce the
// same model.
func TestWarmStartAtOptimum(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	cfg := defaultCfg()
	cold, err := Train(ds.X, ds.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Converged {
		t.Fatal("cold solve did not converge")
	}
	// The SV subproblem warm-started at the parent optimum is already
	// solved: SMO should do (close to) no work and land on the same
	// hyperplane.
	svX, svY, svA := cold.Model.SVTrainingSet()
	warmCfg := cfg
	warmCfg.InitialAlpha = svA
	warm, err := Train(svX, svY, warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged {
		t.Fatal("warm solve did not converge")
	}
	if warm.Iterations > cold.Iterations/4 {
		t.Fatalf("warm start did %d iterations, cold did %d", warm.Iterations, cold.Iterations)
	}
	if math.Abs(warm.Model.Beta-cold.Model.Beta) > 5e-2 {
		t.Fatalf("warm beta %v far from cold beta %v", warm.Model.Beta, cold.Model.Beta)
	}
}

func TestWarmStartValidation(t *testing.T) {
	x, y := tinyData()
	cfg := defaultCfg()

	bad := cfg
	bad.InitialAlpha = []float64{1, 0}
	if _, err := Train(x, y, bad); err == nil {
		t.Error("length-mismatched warm start accepted")
	}

	bad = cfg
	bad.InitialAlpha = []float64{-1, 0, 0, 0, 0, 0}
	if _, err := Train(x, y, bad); err == nil {
		t.Error("negative alpha accepted")
	}

	bad = cfg
	bad.InitialAlpha = []float64{cfg.C * 2, 0, 0, 0, 0, 0}
	if _, err := Train(x, y, bad); err == nil {
		t.Error("alpha above C accepted")
	}

	// Violates sum alpha_i*y_i = 0: one-sided mass.
	bad = cfg
	bad.InitialAlpha = []float64{1, 0, 0, 0, 0, 0}
	if _, err := Train(x, y, bad); err == nil {
		t.Error("equality-constraint-violating warm start accepted")
	}

	// A feasible non-trivial warm start must be accepted and converge.
	ok := cfg
	ok.InitialAlpha = []float64{0.5, 0, 0, 0.5, 0, 0}
	res, err := Train(x, y, ok)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("feasible warm start did not converge")
	}
	mt, err := res.Model.Evaluate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Accuracy != 100 {
		t.Fatalf("training accuracy = %v%%, want 100%%", mt.Accuracy)
	}
}
