package smo

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/sparse"
)

// tiny hand-checkable dataset: two separable clusters in 1-D.
func tinyData() (*sparse.Matrix, []float64) {
	x := sparse.FromDense([][]float64{
		{-2}, {-1.5}, {-1.2}, {1.2}, {1.5}, {2},
	})
	y := []float64{-1, -1, -1, 1, 1, 1}
	return x, y
}

func defaultCfg() Config {
	return Config{
		Kernel:  kernel.Params{Type: kernel.Gaussian, Gamma: 0.5},
		C:       10,
		Eps:     1e-3,
		Workers: 1,
	}
}

func TestTrainTinySeparable(t *testing.T) {
	x, y := tinyData()
	res, err := Train(x, y, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if err := res.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	// The trained model must classify its own training set perfectly.
	mt, err := res.Model.Evaluate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Accuracy != 100 {
		t.Fatalf("training accuracy = %v%%, want 100%%", mt.Accuracy)
	}
	if res.Model.NumSV() < 2 {
		t.Fatalf("only %d SVs", res.Model.NumSV())
	}
}

func TestTrainInputValidation(t *testing.T) {
	x, y := tinyData()
	cfg := defaultCfg()

	if _, err := Train(x, y[:3], cfg); err == nil {
		t.Error("mismatched labels accepted")
	}
	bad := cfg
	bad.C = 0
	if _, err := Train(x, y, bad); err == nil {
		t.Error("C=0 accepted")
	}
	bad = cfg
	bad.Kernel.Gamma = -1
	if _, err := Train(x, y, bad); err == nil {
		t.Error("invalid kernel accepted")
	}
	oneClass := []float64{1, 1, 1, 1, 1, 1}
	if _, err := Train(x, oneClass, cfg); err == nil {
		t.Error("single-class data accepted")
	}
	badLabels := []float64{0, 1, -1, 1, -1, 1}
	if _, err := Train(x, badLabels, cfg); err == nil {
		t.Error("non ±1 labels accepted")
	}
	small, _ := x.SubMatrix(0, 1)
	if _, err := Train(small, y[:1], cfg); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestConvergenceQualityOnSyntheticData(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.2) // 400 samples
	cfg := Config{Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-3, Workers: 2}
	res, err := Train(ds.X, ds.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if res.Objective <= 0 {
		t.Fatalf("dual objective = %v, want > 0", res.Objective)
	}
	mt, err := res.Model.Evaluate(ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Accuracy < 90 {
		t.Fatalf("training accuracy = %v%%", mt.Accuracy)
	}
	if res.Model.SVFraction() >= 0.9 {
		t.Fatalf("SV fraction = %v; expected a small fraction of samples", res.Model.SVFraction())
	}
}

func TestParallelWorkersMatchSequential(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.15)
	cfgSeq := Config{Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-3, Workers: 1}
	cfgPar := cfgSeq
	cfgPar.Workers = 4
	r1, err := Train(ds.X, ds.Y, cfgSeq)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Train(ds.X, ds.Y, cfgPar)
	if err != nil {
		t.Fatal(err)
	}
	// The gradient update is a pure map over disjoint chunks, so the
	// iterate sequence must be identical regardless of worker count.
	if r1.Iterations != r2.Iterations {
		t.Fatalf("iterations differ: %d vs %d", r1.Iterations, r2.Iterations)
	}
	if math.Abs(r1.Model.Beta-r2.Model.Beta) > 1e-12 {
		t.Fatalf("beta differs: %v vs %v", r1.Model.Beta, r2.Model.Beta)
	}
	if r1.Model.NumSV() != r2.Model.NumSV() {
		t.Fatalf("SV count differs: %d vs %d", r1.Model.NumSV(), r2.Model.NumSV())
	}
}

func TestCacheDoesNotChangeResult(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.15)
	base := Config{Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-3, Workers: 2}
	withCache := base
	withCache.CacheBytes = 64 << 20
	r1, err := Train(ds.X, ds.Y, base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Train(ds.X, ds.Y, withCache)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Iterations != r2.Iterations || math.Abs(r1.Model.Beta-r2.Model.Beta) > 1e-12 {
		t.Fatalf("cache changed the result: iters %d vs %d, beta %v vs %v",
			r1.Iterations, r2.Iterations, r1.Model.Beta, r2.Model.Beta)
	}
	if r2.CacheHits == 0 {
		t.Fatal("cache enabled but never hit")
	}
	if r2.KernelEvals >= r1.KernelEvals {
		t.Fatalf("cache did not reduce kernel evals: %d vs %d", r2.KernelEvals, r1.KernelEvals)
	}
}

func TestShrinkingPreservesAccuracy(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	base := Config{Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-3, Workers: 2}
	withShrink := base
	withShrink.Shrinking = true
	withShrink.ShrinkEvery = 50
	r1, err := Train(ds.X, ds.Y, base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Train(ds.X, ds.Y, withShrink)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Converged {
		t.Fatal("shrinking run did not converge")
	}
	a1, _ := r1.Model.Evaluate(ds.TestX, ds.TestY)
	a2, _ := r2.Model.Evaluate(ds.TestX, ds.TestY)
	if math.Abs(a1.Accuracy-a2.Accuracy) > 2.0 {
		t.Fatalf("accuracy diverged: %v vs %v", a1.Accuracy, a2.Accuracy)
	}
	if math.Abs(r1.Objective-r2.Objective) > 1e-2*(1+math.Abs(r1.Objective)) {
		t.Fatalf("objective diverged: %v vs %v", r1.Objective, r2.Objective)
	}
}

func TestMaxIterStopsEarly(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.2)
	cfg := Config{Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-6, Workers: 1, MaxIter: 10}
	res, err := Train(ds.X, ds.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("claimed convergence after 10 iterations at eps=1e-6")
	}
	if res.Iterations != 10 {
		t.Fatalf("iterations = %d, want 10", res.Iterations)
	}
}

func TestDualObjectiveMonotoneOverEps(t *testing.T) {
	// Tighter eps must give an objective at least as large (we maximize W).
	ds := dataset.MustGenerate("blobs", 0.1)
	var last float64 = math.Inf(-1)
	for _, eps := range []float64{1e-1, 1e-2, 1e-3} {
		cfg := Config{Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: eps, Workers: 1}
		res, err := Train(ds.X, ds.Y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Objective < last-1e-9 {
			t.Fatalf("objective decreased with tighter eps: %v after %v", res.Objective, last)
		}
		last = res.Objective
	}
}

func TestEqualityConstraintHolds(t *testing.T) {
	// sum alpha_i y_i = 0 must hold at the solution: recover it from the
	// model coefficients (coef_i = alpha_i*y_i).
	ds := dataset.MustGenerate("blobs", 0.2)
	cfg := Config{Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-3, Workers: 2}
	res, err := Train(ds.X, ds.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range res.Model.Coef {
		sum += c
	}
	if math.Abs(sum) > 1e-6*cfg.C {
		t.Fatalf("sum alpha_i y_i = %v, want ~0", sum)
	}
}

func TestSecondOrderSelectionConvergesFaster(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	base := Config{Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-3, Workers: 2}
	second := base
	second.SecondOrder = true
	r1, err := Train(ds.X, ds.Y, base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Train(ds.X, ds.Y, second)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Converged {
		t.Fatal("second-order run did not converge")
	}
	// Second-order selection should not take more iterations (usually
	// takes clearly fewer); allow a small margin for degenerate cases.
	if r2.Iterations > r1.Iterations*11/10 {
		t.Fatalf("second-order %d iterations vs first-order %d", r2.Iterations, r1.Iterations)
	}
	a1, _ := r1.Model.Evaluate(ds.TestX, ds.TestY)
	a2, _ := r2.Model.Evaluate(ds.TestX, ds.TestY)
	if math.Abs(a1.Accuracy-a2.Accuracy) > 2 {
		t.Fatalf("accuracy diverged: %v vs %v", a1.Accuracy, a2.Accuracy)
	}
	if math.Abs(r1.Objective-r2.Objective) > 1e-2*(1+math.Abs(r1.Objective)) {
		t.Fatalf("objective diverged: %v vs %v", r1.Objective, r2.Objective)
	}
}

func TestSecondOrderWithShrinking(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.2)
	cfg := Config{Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-3, Workers: 2,
		SecondOrder: true, Shrinking: true, ShrinkEvery: 50}
	res, err := Train(ds.X, ds.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	acc, _ := res.Model.Evaluate(ds.TestX, ds.TestY)
	if acc.Accuracy < 90 {
		t.Fatalf("accuracy %v", acc.Accuracy)
	}
}
