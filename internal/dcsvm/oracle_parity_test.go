// Oracle parity for divide-and-conquer training (external test package:
// the oracle imports dcsvm). The union-only polish is approximate by
// construction — samples outside the support-vector union are never
// re-checked against the full QP — so only the PolishFull refinement is
// held to eps-optimality; the default mode's report documents how far from
// optimal it lands.
package dcsvm_test

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/dcsvm"
	"repro/internal/kernel"
	"repro/internal/oracle"
)

func TestOracleParityFullPolish(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.1)
	kp := kernel.FromSigma2(ds.Sigma2)
	prob := oracle.Problem{X: ds.X, Y: ds.Y, Kernel: kp, C: ds.C, Eps: 1e-3}
	for _, sub := range []string{"core", "smo"} {
		m, st, err := dcsvm.Train(ds.X, ds.Y, dcsvm.Config{
			Kernel: kp, C: ds.C, Eps: 1e-3,
			Clusters: 4, Seed: 7, SubSolver: sub, PolishFull: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", sub, err)
		}
		if !st.PolishConverged {
			t.Fatalf("%s: full polish did not converge", sub)
		}
		rep, err := prob.VerifyModel(m)
		if err != nil {
			t.Fatalf("%s: %v", sub, err)
		}
		if err := rep.Check(); err != nil {
			t.Errorf("%s full-polish model fails the oracle: %v", sub, err)
		}
	}
}

func TestOracleReportsUnionPolishGap(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.1)
	kp := kernel.FromSigma2(ds.Sigma2)
	prob := oracle.Problem{X: ds.X, Y: ds.Y, Kernel: kp, C: ds.C, Eps: 1e-3}

	m, _, err := dcsvm.Train(ds.X, ds.Y, dcsvm.Config{
		Kernel: kp, C: ds.C, Eps: 1e-3, Clusters: 4, Seed: 7, SubSolver: "smo",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := prob.VerifyModel(m)
	if err != nil {
		t.Fatal(err)
	}
	// The union-only model must still be verifiable (gap and violations are
	// reported even when Check fails), and the full polish from the same
	// configuration must strictly improve — or match — its duality gap.
	full, _, err := dcsvm.Train(ds.X, ds.Y, dcsvm.Config{
		Kernel: kp, C: ds.C, Eps: 1e-3, Clusters: 4, Seed: 7, SubSolver: "smo",
		PolishFull: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fullRep, err := prob.VerifyModel(full)
	if err != nil {
		t.Fatal(err)
	}
	if fullRep.DualityGap > rep.DualityGap+1e-9 {
		t.Errorf("full polish widened the duality gap: %.6g > %.6g", fullRep.DualityGap, rep.DualityGap)
	}
	if fullRep.DualObjective+1e-9 < rep.DualObjective {
		t.Errorf("full polish lowered the dual objective: %.9f < %.9f", fullRep.DualObjective, rep.DualObjective)
	}
}
