package dcsvm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/serve"
	"repro/internal/smo"
	"repro/internal/sparse"
)

func blobCfg(ds *dataset.Dataset) Config {
	return Config{
		Kernel:   testKernel(ds),
		C:        ds.C,
		Clusters: 4,
		Seed:     11,
	}
}

// TestDCAccuracyParity: divide-and-conquer with polish must match the exact
// full solve within the acceptance envelope (0.5 accuracy points) on held-out
// data, for both sub-solver engines and for kernel-space clustering.
func TestDCAccuracyParity(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.5)
	exact, _, err := core.TrainParallel(ds.X, ds.Y, 1, core.Config{
		Kernel: testKernel(ds), C: ds.C,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := exact.Evaluate(ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"core-subsolver", func(c *Config) {}},
		{"smo-subsolver", func(c *Config) { c.SubSolver = "smo" }},
		{"kernel-space", func(c *Config) { c.KernelSpace = true }},
		{"two-level", func(c *Config) { c.Clusters = 8; c.Levels = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := blobCfg(ds)
			tc.mut(&cfg)
			m, st, err := Train(ds.X, ds.Y, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Evaluate(ds.TestX, ds.TestY)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Accuracy-ref.Accuracy) > 0.5 {
				t.Fatalf("dc accuracy %.2f%%, exact %.2f%% (gap > 0.5)", got.Accuracy, ref.Accuracy)
			}
			if !st.PolishConverged {
				t.Fatal("polish did not converge")
			}
			if m.TrainSamples != ds.X.Rows() {
				t.Fatalf("TrainSamples = %d, want %d", m.TrainSamples, ds.X.Rows())
			}
			if len(st.Levels) == 0 || st.SVCount != m.NumSV() {
				t.Fatalf("stats not populated: %+v", st)
			}
		})
	}
}

// TestDCWarmStartCheapensPolish: the whole point of coalescing — the
// warm-started polish must need far fewer iterations than a cold solve of
// the same full problem.
func TestDCWarmStartCheapensPolish(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.5)
	cold, err := smo.Train(ds.X, ds.Y, smo.Config{
		Kernel: testKernel(ds), C: ds.C, Shrinking: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := Train(ds.X, ds.Y, blobCfg(ds))
	if err != nil {
		t.Fatal(err)
	}
	if st.CoalescedSVs == 0 {
		t.Fatal("no support vectors coalesced")
	}
	if st.PolishIterations > cold.Iterations/2 {
		t.Fatalf("polish took %d iterations vs %d cold — warm start ineffective",
			st.PolishIterations, cold.Iterations)
	}
}

func TestDCDeterministic(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	cfg := blobCfg(ds)
	a, _, err := Train(ds.X, ds.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Train(ds.X, ds.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSV() != b.NumSV() || a.Beta != b.Beta {
		t.Fatalf("same seed gave different models: %d/%v SVs/beta vs %d/%v",
			a.NumSV(), a.Beta, b.NumSV(), b.Beta)
	}
	for i := range a.Coef {
		if a.Coef[i] != b.Coef[i] {
			t.Fatalf("Coef[%d] differs across identical runs", i)
		}
	}
}

// TestDCEarlyStop: capping the polish bounds the stitch cost yet still
// yields a usable model — the polish's gradient reconstruction from the
// coalesced warm start does most of the work.
func TestDCEarlyStop(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.5)
	cfg := blobCfg(ds)
	cfg.PolishMaxIter = 50
	m, st, err := Train(ds.X, ds.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.PolishIterations > 50 {
		t.Fatalf("PolishMaxIter=50 but polish ran %d iterations", st.PolishIterations)
	}
	got, err := m.Evaluate(ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}
	// The early-stop model trades exactness for speed; on clean blobs it
	// should still classify well.
	if got.Accuracy < 90 {
		t.Fatalf("early-stop accuracy %.2f%%, want >= 90%%", got.Accuracy)
	}
	if m.TrainSamples != ds.X.Rows() {
		t.Fatalf("TrainSamples = %d, want %d", m.TrainSamples, ds.X.Rows())
	}
}

func TestDCValidation(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.1)
	good := blobCfg(ds)

	bad := good
	bad.C = 0
	if _, _, err := Train(ds.X, ds.Y, bad); err == nil {
		t.Error("C=0 accepted")
	}

	bad = good
	bad.SubSolver = "quantum"
	if _, _, err := Train(ds.X, ds.Y, bad); err == nil {
		t.Error("unknown sub-solver accepted")
	}

	bad = good
	bad.Kernel = kernel.Params{Type: kernel.Gaussian, Gamma: -1}
	if _, _, err := Train(ds.X, ds.Y, bad); err == nil {
		t.Error("invalid kernel accepted")
	}

	y := append([]float64(nil), ds.Y...)
	y[0] = 3
	if _, _, err := Train(ds.X, y, good); err == nil {
		t.Error("non-±1 label accepted")
	}

	ones := make([]float64, ds.X.Rows())
	for i := range ones {
		ones[i] = 1
	}
	if _, _, err := Train(ds.X, ones, good); err == nil {
		t.Error("single-class training set accepted")
	}

	if _, _, err := Train(ds.X, ds.Y[:5], good); err == nil {
		t.Error("label/sample length mismatch accepted")
	}

	tiny := sparse.FromDense([][]float64{{1}})
	if _, _, err := Train(tiny, []float64{1}, good); err == nil {
		t.Error("single-sample training set accepted")
	}
}

func TestWarmStartAlpha(t *testing.T) {
	y := []float64{1, 1, -1, -1, -1}
	c := 10.0
	out := warmStartAlpha([]float64{10, 3.7, 10, 10, 0.2}, y, c)
	// Free alphas (3.7, 0.2) are dropped; the bound ones survive and the
	// heavier side (two at C vs one) is scaled down to balance.
	if out[1] != 0 || out[4] != 0 {
		t.Fatalf("free alphas kept: %v", out)
	}
	if out[0] != c {
		t.Fatalf("lighter-side bound alpha rescaled: %v", out)
	}
	var eq float64
	for i := range out {
		eq += out[i] * y[i]
	}
	if math.Abs(eq) > 1e-12 {
		t.Fatalf("residual %v", eq)
	}

	// No at-bound alphas at all degenerates to a cold start.
	cold := warmStartAlpha([]float64{1, 2, 3, 0, 1}, y, c)
	for i, a := range cold {
		if a != 0 {
			t.Fatalf("free-only projection kept alpha[%d] = %v", i, a)
		}
	}
}

func TestBalanceAlpha(t *testing.T) {
	y := []float64{1, 1, -1, -1}
	out := balanceAlpha([]float64{2, 2, 1, 0}, y, 10)
	var eq float64
	for i := range out {
		eq += out[i] * y[i]
		if out[i] < 0 || out[i] > 10 {
			t.Fatalf("alpha[%d] = %v outside box", i, out[i])
		}
	}
	if math.Abs(eq) > 1e-12 {
		t.Fatalf("balanced residual %v", eq)
	}
	if out[2] != 1 {
		t.Fatalf("lighter side rescaled: %v", out)
	}

	// One-sided mass must balance to all zeros (a cold start).
	zeros := balanceAlpha([]float64{2, 2, 0, 0}, y, 10)
	for i, a := range zeros {
		if a != 0 {
			t.Fatalf("one-sided balance kept alpha[%d] = %v", i, a)
		}
	}

	// Out-of-box inputs are clamped before balancing.
	clamped := balanceAlpha([]float64{20, -1, 3, 0}, y, 10)
	eq = 0
	for i := range clamped {
		eq += clamped[i] * y[i]
		if clamped[i] < 0 || clamped[i] > 10 {
			t.Fatalf("clamped alpha[%d] = %v outside box", i, clamped[i])
		}
	}
	if math.Abs(eq) > 1e-12 {
		t.Fatalf("clamped residual %v", eq)
	}
}

// TestDCModelServes: acceptance criterion — a dc-trained model round-trips
// through save/load and serves predictions via the svmserve handler.
func TestDCModelServes(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	m, _, err := Train(ds.X, ds.Y, blobCfg(ds))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dc.model")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := serve.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumSV() != m.NumSV() {
		t.Fatalf("loaded model has %d SVs, trained %d", loaded.NumSV(), m.NumSV())
	}
	if math.Abs(loaded.Beta-m.Beta) > 1e-9 {
		t.Fatalf("loaded beta %v, trained %v", loaded.Beta, m.Beta)
	}

	reg := serve.NewRegistry()
	if err := reg.Add("dc", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(reg, serve.Config{}).Handler())
	defer ts.Close()

	// Every served prediction must match the in-memory model on test rows.
	for i := 0; i < 25; i++ {
		row := ds.TestX.RowView(i)
		var libsvm string
		for k, c := range row.Idx {
			libsvm += fmt.Sprintf("%d:%v ", c+1, row.Val[k])
		}
		resp, body := postJSON(t, ts.URL+"/v1/predict", serve.PredictRequest{
			Model:  "dc",
			Libsvm: libsvm,
		})
		if resp.StatusCode != 200 {
			t.Fatalf("predict row %d: status %d: %s", i, resp.StatusCode, body)
		}
		pr := decodePredict(t, body)
		if len(pr.Predictions) != 1 {
			t.Fatalf("predict row %d: %d predictions", i, len(pr.Predictions))
		}
		if want := m.Predict(row); pr.Predictions[0].Label != want {
			t.Fatalf("served label %v, local predict %v (row %d)",
				pr.Predictions[0].Label, want, i)
		}
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodePredict(t *testing.T, data []byte) serve.PredictResponse {
	t.Helper()
	var pr serve.PredictResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatalf("decode predict response: %v (%s)", err, data)
	}
	return pr
}
