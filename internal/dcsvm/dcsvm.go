// Package dcsvm implements divide-and-conquer SVM training in the style of
// Hsieh et al.'s DC-SVM and cascade SVMs: the training set is partitioned
// by (kernel-space) k-means clustering, each cluster is solved
// independently and in parallel with one of the repository's existing
// solvers, the per-cluster support vectors and dual variables are
// coalesced into a warm start, and a final warm-started polish solve over
// the support-vector union restores (near-)exactness. Because most
// sub-problem support vectors survive into the global solution, the polish
// converges in a small fraction of a cold solve's iterations, while the
// per-cluster solves see working sets (and hence kernel working sets) that
// are k times smaller — the wall-clock win that opens dataset sizes the
// exact solver alone cannot reach.
//
// The subsystem reuses the existing engines unchanged: cluster sub-solves
// run either the paper's distributed solver (core.TrainParallel) or the
// libsvm-enhanced baseline (smo.Train); coarser hierarchy levels and the
// polish run the baseline with its new warm-start support, which is where
// coalesced alphas pay off.
package dcsvm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/linear"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/smo"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// Config controls a divide-and-conquer training run.
type Config struct {
	Kernel kernel.Params
	C      float64
	Eps    float64 // tolerance epsilon; 0 means 1e-3

	// Heuristic is the Table II shrinking strategy used by core
	// sub-solves; the zero value means core's default (Original).
	Heuristic core.Heuristic

	// Clusters is the number of k-means clusters at the finest level;
	// 0 means 8. Clusters = 1 degenerates to a single full solve.
	Clusters int
	// Levels is the depth of the hierarchy; 0 or 1 means a single
	// divide level. Level l (0-based) uses max(2, Clusters>>l) clusters
	// over the support-vector union coalesced from level l-1, so each
	// coarser level halves the cluster count, cascade-style.
	Levels int
	// Seed makes clustering (and therefore the whole run) deterministic.
	Seed int64
	// KernelSpace clusters in the kernel feature space (where the
	// sub-problems are solved) instead of Euclidean input space.
	KernelSpace bool

	// SubSolver names the registered engine for finest-level sub-solves;
	// "" means "core" (the paper's distributed solver). Any non-composite
	// registered classifier with kernel support qualifies — "core", "smo",
	// "smo2", and future registrations — resolved through the solver
	// registry. Coarser levels and the polish always use smo, whose warm
	// start consumes the coalesced alphas.
	SubSolver string
	// DisableLinearFastPath turns off the automatic routing of cold
	// (no-warm-start) linear-kernel sub-solves through internal/linear's
	// dual coordinate descent, which solves them in the primal weight
	// vector with zero kernel evaluations. The fast path is also skipped
	// when a fault plan targets the core sub-solver, so crash-recovery
	// runs exercise the engine they mean to test.
	DisableLinearFastPath bool
	// P is the rank count per core sub-solve (capped at the cluster
	// size); 0 means 1.
	P int
	// Workers bounds the number of clusters solved concurrently;
	// 0 means GOMAXPROCS.
	Workers int
	// CacheBytes is the kernel-row cache budget per smo solve;
	// 0 means 64 MiB.
	CacheBytes int64
	// SubMaxIter caps each cluster sub-solve; 0 means the solver default.
	SubMaxIter int64

	// PolishMaxIter caps the polish solve's iterations — the early-stop
	// mode. The polish's gradient reconstruction from the coalesced warm
	// start already yields a coherent global decision function (raw
	// per-cluster alphas do not aggregate: each sub-model carries its own
	// threshold, so a flat union without a stitch solve is only usable
	// when clusters heavily overlap), and a bounded number of stitching
	// iterations recovers most of the accuracy at a fraction of the exact
	// polish cost. 0 runs the polish to convergence.
	PolishMaxIter int64

	// PolishFull makes the polish solve the full training problem
	// (warm-started from the coalesced union solution) instead of the
	// support-vector union only. The union polish — the default — can leave
	// samples outside the union violating KKT on the full QP, so its result
	// is near-exact but not eps-optimal; the full polish is the refinement
	// step that restores true eps-optimality, at the cost of a solve over
	// all n samples (still warm-started, so far cheaper than a cold solve).
	PolishFull bool

	// Checkpoint, when non-nil, persists divide-and-conquer progress as
	// crash-consistent generations in full-problem coordinates: after each
	// finished level-0 cluster solve, after each completed level, and —
	// when the polish runs over the full training set — every
	// CheckpointEvery polish iterations. Every snapshot's alpha vector is
	// projected onto the dual constraints first, so any engine can resume
	// from it. CheckpointSeed is recorded for provenance.
	Checkpoint      *ckpt.Writer
	CheckpointEvery int64
	CheckpointSeed  int64

	// ResumeAlpha restarts a previous run from a checkpoint's full-length
	// alpha vector: the divide levels are skipped and the run goes
	// straight to a full-problem polish warm-started from the (re-
	// balanced) vector. The result is eps-optimal on the full QP, like a
	// PolishFull run.
	ResumeAlpha []float64

	// SubFaults applies an mpi fault plan to the level-0 core sub-solve
	// of cluster SubFaultCluster (crash-recovery testing). Ignored unless
	// the plan injects something and SubSolver is "core".
	SubFaults       mpi.FaultPlan
	SubFaultCluster int
}

func (c Config) withDefaults() Config {
	if c.Eps <= 0 {
		c.Eps = 1e-3
	}
	if c.Clusters <= 0 {
		c.Clusters = 8
	}
	if c.Levels <= 0 {
		c.Levels = 1
	}
	if c.SubSolver == "" {
		c.SubSolver = "core"
	}
	if c.Heuristic.Name == "" {
		c.Heuristic = core.Original
	}
	if c.P <= 0 {
		c.P = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	return c
}

// LevelStats reports what one hierarchy level did; slices are indexed by
// cluster in level-local order.
type LevelStats struct {
	Level         int // 1-based
	Clusters      int
	ClusterSizes  []int
	SubIterations []int64
	SubSVCounts   []int
	Skipped       int // clusters not solved (single-class or too small)
	KernelEvals   uint64
	ClusterTime   time.Duration // k-means partitioning
	SolveTime     time.Duration // parallel sub-solves
}

// Stats reports a whole divide-and-conquer run, core.Stats-style.
type Stats struct {
	Levels           []LevelStats
	CoalescedSVs     int // support-vector union entering the polish
	PolishIterations int64
	PolishConverged  bool
	PolishTime       time.Duration
	SVCount          int
	KernelEvals      uint64
	Total            time.Duration
}

// checkpointer accumulates divide-and-conquer progress into one full-length
// alpha vector and persists it after every completed unit of work (cluster
// solve, level, polish stride). Cluster goroutines share it, so merges are
// serialized under a mutex. Snapshots always carry a constraint-feasible
// alpha (balanceAlpha only scales down), so a checkpoint written mid-
// hierarchy can warm-start any engine.
type checkpointer struct {
	mu      sync.Mutex
	w       *ckpt.Writer
	y       []float64
	c       float64
	seed    int64
	fp      uint64
	partial []float64
	events  int64 // completed merges, stamped as the snapshot's Iteration
}

func newCheckpointer(w *ckpt.Writer, x *sparse.Matrix, y []float64, c float64, seed int64) *checkpointer {
	return &checkpointer{
		w: w, y: y, c: c, seed: seed,
		fp:      ckpt.Fingerprint(x, y),
		partial: make([]float64, x.Rows()),
	}
}

// clusterDone merges one finished level-0 cluster's alphas (in original
// dataset indices) and saves a generation.
func (ck *checkpointer) clusterDone(orig []int, local []float64) error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	for i, a := range local {
		if a > 0 {
			ck.partial[orig[i]] = a
		}
	}
	ck.events++
	return ck.saveLocked()
}

// levelDone replaces the accumulated vector with a completed level's
// coalesced solution scattered back onto full coordinates.
func (ck *checkpointer) levelDone(full []float64) error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	copy(ck.partial, full)
	ck.events++
	return ck.saveLocked()
}

func (ck *checkpointer) saveLocked() error {
	return ck.w.Save(&ckpt.State{
		Solver:      ckpt.SolverDCSVM,
		Iteration:   ck.events,
		Seed:        ck.seed,
		Fingerprint: ck.fp,
		N:           len(ck.partial),
		Alpha:       balanceAlpha(ck.partial, ck.y, ck.c),
	})
}

// Train runs divide-and-conquer training on (x, y) with labels in {+1,-1}
// and returns the final model plus per-level statistics.
func Train(x *sparse.Matrix, y []float64, cfg Config) (*model.Model, *Stats, error) {
	n := x.Rows()
	if n < 2 {
		return nil, nil, fmt.Errorf("dcsvm: need at least 2 samples, got %d", n)
	}
	if len(y) != n {
		return nil, nil, fmt.Errorf("dcsvm: %d labels for %d samples", len(y), n)
	}
	if cfg.C <= 0 {
		return nil, nil, fmt.Errorf("dcsvm: C must be positive, got %v", cfg.C)
	}
	if err := cfg.Kernel.Validate(); err != nil {
		return nil, nil, err
	}
	if err := cfg.Heuristic.Validate(); err != nil {
		return nil, nil, err
	}
	hasPos, hasNeg := false, false
	for i, v := range y {
		switch v {
		case 1:
			hasPos = true
		case -1:
			hasNeg = true
		default:
			return nil, nil, fmt.Errorf("dcsvm: label %d is %v, want +1 or -1", i, v)
		}
	}
	if !hasPos || !hasNeg {
		return nil, nil, errors.New("dcsvm: training set must contain both classes")
	}
	if _, err := subEngine(cfg.SubSolver); err != nil {
		return nil, nil, err
	}
	cfg = cfg.withDefaults()

	if cfg.ResumeAlpha != nil && len(cfg.ResumeAlpha) != n {
		return nil, nil, fmt.Errorf("dcsvm: resume alpha holds %d entries for %d samples", len(cfg.ResumeAlpha), n)
	}

	start := time.Now()
	st := &Stats{}
	var ck *checkpointer
	if cfg.Checkpoint != nil {
		ck = newCheckpointer(cfg.Checkpoint, x, y, cfg.C, cfg.CheckpointSeed)
	}
	curX, curY := x, y
	var curA []float64 // nil = cold (level 0 input is the raw data)

	if cfg.ResumeAlpha == nil {
		for l := 0; l < cfg.Levels && curX.Rows() >= 2; l++ {
			k := cfg.Clusters >> l
			if k < 2 {
				k = 2
			}
			nx, ny, na, ls, err := runLevel(curX, curY, curA, k, l, cfg, ck)
			if err != nil {
				return nil, nil, err
			}
			st.Levels = append(st.Levels, *ls)
			st.KernelEvals += ls.KernelEvals
			if nx == nil || nx.Rows() == 0 {
				// Degenerate partition (every cluster pure or tiny): no
				// sub-solution to build on; the polish below falls back to a
				// cold solve of the current level's input.
				curA = nil
				break
			}
			curX, curY, curA = nx, ny, na
			if ck != nil {
				// Level boundary: scatter the coalesced union solution back
				// onto full-problem coordinates and persist it.
				full, err := scatterAlpha(x, y, curX, curY, warmStartAlpha(curA, curY, cfg.C))
				if err != nil {
					return nil, nil, err
				}
				if err := ck.levelDone(full); err != nil {
					return nil, nil, err
				}
			}
		}
		if curA != nil {
			st.CoalescedSVs = curX.Rows()
		}
	}

	// Polish: a warm-started exact solve over the support-vector union —
	// or, with PolishFull (and always on resume), over the full training
	// set with the union's alphas scattered back onto their original rows.
	// (On the degenerate fallback the polish is a cold solve of the
	// current level's input.)
	t0 := time.Now()
	sc := smo.Config{
		Kernel: cfg.Kernel, C: cfg.C, Eps: cfg.Eps,
		CacheBytes: cfg.CacheBytes, Shrinking: true,
		MaxIter: cfg.PolishMaxIter,
	}
	polishX, polishY := curX, curY
	switch {
	case cfg.ResumeAlpha != nil:
		// Re-balance rather than trust the file: balanceAlpha only scales
		// down, so any loaded vector becomes a feasible warm start.
		sc.InitialAlpha = balanceAlpha(cfg.ResumeAlpha, y, cfg.C)
		polishX, polishY = x, y
	case cfg.PolishFull:
		if curA != nil {
			sc.InitialAlpha = warmStartAlpha(curA, curY, cfg.C)
			full, err := scatterAlpha(x, y, curX, curY, sc.InitialAlpha)
			if err != nil {
				return nil, nil, err
			}
			sc.InitialAlpha = full
		}
		polishX, polishY = x, y
	case curA != nil:
		sc.InitialAlpha = warmStartAlpha(curA, curY, cfg.C)
	}
	if ck != nil && polishX.Rows() == n {
		// The polish runs in full-problem coordinates, so smo's periodic
		// checkpoints are directly resumable; union-sized polish snapshots
		// would carry the wrong N and fingerprint, so those stay with the
		// level-boundary generations instead.
		sc.Checkpoint = cfg.Checkpoint
		sc.CheckpointEvery = cfg.CheckpointEvery
		sc.CheckpointSeed = cfg.CheckpointSeed
		sc.CheckpointLabel = ckpt.SolverDCSVM
		sc.CheckpointFingerprint = ck.fp
	}
	res, err := smo.Train(polishX, polishY, sc)
	if err != nil {
		return nil, nil, fmt.Errorf("dcsvm: polish: %w", err)
	}
	st.PolishTime = time.Since(t0)
	st.PolishIterations = res.Iterations
	st.PolishConverged = res.Converged
	st.KernelEvals += res.KernelEvals
	m := res.Model
	m.TrainSamples = n
	st.SVCount = m.NumSV()
	st.Total = time.Since(start)
	return m, st, nil
}

// runLevel partitions the current problem into k clusters, solves each in
// its own goroutine, and returns the coalesced support-vector union
// (rows, labels, alphas) forming the next level's warm-started problem.
func runLevel(x *sparse.Matrix, y, alpha []float64, k, level int, cfg Config, ck *checkpointer) (*sparse.Matrix, []float64, []float64, *LevelStats, error) {
	ls := &LevelStats{Level: level + 1}
	t0 := time.Now()
	cl, err := clusterRows(x, k, cfg.Seed+int64(level), cfg.KernelSpace, cfg.Kernel)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	ls.Clusters = cl.K
	ls.ClusterSizes = append([]int(nil), cl.Sizes...)

	// Group rows by cluster so each sub-solve sees a contiguous zero-copy
	// view of the (one-time) permuted matrix.
	order := make([]int, 0, x.Rows())
	bounds := make([]int, cl.K+1)
	for c := 0; c < cl.K; c++ {
		bounds[c] = len(order)
		for i, a := range cl.Assign {
			if a == c {
				order = append(order, i)
			}
		}
	}
	bounds[cl.K] = len(order)
	px, err := x.SelectRows(order)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	py := permute(y, order)
	var pa []float64
	if alpha != nil {
		pa = permute(alpha, order)
	}
	ls.ClusterTime = time.Since(t0)

	type subResult struct {
		model *model.Model
		iters int64
		svs   int
		evals uint64
		// passthrough carries an unsolvable warm cluster's rows forward
		// unchanged so its support vectors are not lost mid-hierarchy.
		passX *sparse.Matrix
		passY []float64
		passA []float64
		err   error
	}
	results := make([]subResult, cl.K)
	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	t1 := time.Now()
	for c := 0; c < cl.K; c++ {
		lo, hi := bounds[c], bounds[c+1]
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[c] = solveCluster(px, py, pa, c, lo, hi, level, cfg)
			r := &results[c]
			if ck == nil || level > 0 || r.err != nil || r.model == nil {
				return
			}
			// Level-0 progress checkpoint: the permutation maps cluster row
			// i back to original dataset row order[lo+i], so this cluster's
			// alphas merge directly into full-problem coordinates.
			view, err := px.RowRangeView(lo, hi)
			if err != nil {
				r.err = err
				return
			}
			sx, sy, sa := r.model.SVTrainingSet()
			local, err := scatterAlpha(view, py[lo:hi], sx, sy, sa)
			if err == nil {
				err = ck.clusterDone(order[lo:hi], local)
			}
			if err != nil {
				r.err = fmt.Errorf("checkpoint: %w", err)
			}
		}(c, lo, hi)
	}
	wg.Wait()
	ls.SolveTime = time.Since(t1)

	var nx *sparse.Matrix
	var ny, na []float64
	appendSet := func(sx *sparse.Matrix, sy, sa []float64) {
		if sx == nil || sx.Rows() == 0 {
			return
		}
		if nx == nil {
			nx = sx
		} else {
			nx = sparse.Append(nx, sx)
		}
		ny = append(ny, sy...)
		na = append(na, sa...)
	}
	for c := range results {
		r := &results[c]
		if r.err != nil {
			return nil, nil, nil, nil, fmt.Errorf("dcsvm: level %d cluster %d (%d rows): %w",
				level+1, c, bounds[c+1]-bounds[c], r.err)
		}
		ls.SubIterations = append(ls.SubIterations, r.iters)
		ls.SubSVCounts = append(ls.SubSVCounts, r.svs)
		ls.KernelEvals += r.evals
		switch {
		case r.model != nil:
			appendSet(r.model.SVTrainingSet())
		case r.passX != nil:
			appendSet(r.passX, r.passY, r.passA)
		default:
			ls.Skipped++
		}
	}
	return nx, ny, na, ls, nil
}

// solveCluster trains one cluster's rows [lo, hi) of the permuted problem.
func solveCluster(px *sparse.Matrix, py, pa []float64, cluster, lo, hi, level int, cfg Config) (r struct {
	model *model.Model
	iters int64
	svs   int
	evals uint64
	passX *sparse.Matrix
	passY []float64
	passA []float64
	err   error
}) {
	size := hi - lo
	pure := true
	for i := lo + 1; i < hi; i++ {
		if py[i] != py[lo] {
			pure = false
			break
		}
	}
	if size < 2 || pure {
		// No binary sub-problem to solve. A pure cluster's isolated
		// optimum is alpha = 0, so cold clusters contribute nothing; warm
		// clusters pass their rows (previous-level support vectors)
		// through so the hierarchy does not silently drop them.
		if pa != nil {
			var idx []int
			for i := lo; i < hi; i++ {
				if pa[i] > 0 {
					idx = append(idx, i)
				}
			}
			if len(idx) > 0 {
				sx, err := px.SelectRows(idx)
				if err != nil {
					r.err = err
					return r
				}
				r.passX = sx
				r.passY = permute(py, idx)
				r.passA = permute(pa, idx)
			}
		}
		return r
	}

	view, err := px.RowRangeView(lo, hi)
	if err != nil {
		r.err = err
		return r
	}
	yv := py[lo:hi]
	sub, err := subEngine(cfg.SubSolver)
	if err != nil {
		r.err = err
		return r
	}
	subCaps := sub.Capabilities()
	if cfg.Kernel.Type == kernel.Linear && !cfg.DisableLinearFastPath && pa == nil &&
		!(cfg.SubFaults.Enabled() && subCaps.Has(solver.CapFaultInject)) {
		// Linear kernels admit a much cheaper sub-solve: dual coordinate
		// descent on the primal weight vector (internal/linear), touching
		// no kernel rows at all. Only cold solves route here — a warm
		// start carries equality-constrained alphas the bias-free linear
		// dual cannot consume, so warm levels stay on SMO.
		r.model, r.iters, r.svs, r.err = solveLinearCluster(view, yv, cluster, level, cfg)
		return r
	}
	if level == 0 && pa == nil {
		// Cold finest-level sub-solve: the configured engine, resolved
		// through the solver registry, with only the options its
		// capabilities declare. For "core" and "smo" this reproduces the
		// historical configs bit-for-bit; any other registered kernel
		// classifier (smo2, future engines) slots in the same way.
		sopts := solver.Options{
			C: cfg.C, Eps: cfg.Eps,
			Workers: 1, CacheBytes: cfg.CacheBytes, MaxIter: cfg.SubMaxIter,
		}
		if subCaps.Has(solver.CapHeuristics) {
			sopts.Heuristic = cfg.Heuristic.Name
		}
		if subCaps.Has(solver.CapDistributed) {
			p := cfg.P
			if p > size {
				p = size
			}
			sopts.P = p
		}
		if cfg.SubFaults.Enabled() && cluster == cfg.SubFaultCluster && subCaps.Has(solver.CapFaultInject) {
			// Crash-recovery testing: inject the fault plan into exactly one
			// cluster's distributed sub-solve.
			sopts.Faults = cfg.SubFaults
		}
		sres, err := sub.Train(context.Background(), solver.Problem{X: view, Y: yv, Kernel: cfg.Kernel}, sopts)
		if err != nil {
			r.err = err
			return r
		}
		r.model, r.iters, r.svs, r.evals = sres.Model, sres.Iterations, sres.Model.NumSV(), sres.KernelEvals
		return r
	}
	sc := smo.Config{
		Kernel: cfg.Kernel, C: cfg.C, Eps: cfg.Eps,
		Workers: 1, CacheBytes: cfg.CacheBytes, Shrinking: true,
		MaxIter: cfg.SubMaxIter,
	}
	if pa != nil {
		sc.InitialAlpha = warmStartAlpha(pa[lo:hi], yv, cfg.C)
	}
	res, err := smo.Train(view, yv, sc)
	if err != nil {
		r.err = err
		return r
	}
	r.model, r.iters, r.svs, r.evals = res.Model, res.Iterations, res.Model.NumSV(), res.KernelEvals
	return r
}

// solveLinearCluster is the linear-kernel fast path for one cold cluster:
// dual coordinate descent in the primal weight vector (internal/linear),
// re-expressed as a support-vector model so the hierarchy's coalescing and
// checkpointing (both built on SVTrainingSet) work unchanged. The rebuilt
// model's SV rows are content copies of the cluster view (SelectRows
// preserves row bytes), so checkpoint scatter matches them exactly. The
// solve performs zero kernel evaluations.
func solveLinearCluster(view *sparse.Matrix, yv []float64, cluster, level int, cfg Config) (*model.Model, int64, int, error) {
	res, err := linear.Train(view, yv, linear.Config{
		C:    cfg.C,
		Eps:  cfg.Eps,
		Seed: cfg.Seed + 1000003*int64(level+1) + int64(cluster),
	})
	if err != nil {
		return nil, 0, 0, fmt.Errorf("linear fast path: %w", err)
	}
	var idx []int
	var coef []float64
	for i, a := range res.Alpha {
		if a > 0 {
			idx = append(idx, i)
			coef = append(coef, a*yv[i])
		}
	}
	sx, err := view.SelectRows(idx)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("linear fast path: %w", err)
	}
	m := &model.Model{
		Kernel:       cfg.Kernel,
		C:            cfg.C,
		SV:           sx,
		Coef:         coef,
		Beta:         0, // bias-free LIBLINEAR convention, same as res.Model
		TrainSamples: view.Rows(),
	}
	return m, int64(res.Updates), len(idx), nil
}

// warmStartAlpha turns coalesced sub-problem alphas into a start the next
// solve digests quickly. Only at-bound alphas survive: a point at alpha = C
// in its sub-problem is a margin violator there and almost always stays at
// bound in the global solution, so its dual value transfers. Free alphas
// are boundary-sensitive — each sub-problem put its separating surface
// somewhere slightly different — and SMO unwinds stale free values pairwise
// far more slowly than it rediscovers them from zero, so they are dropped.
// The trimmed vector is then balanced onto the equality constraint.
func warmStartAlpha(alpha, y []float64, c float64) []float64 {
	trimmed := make([]float64, len(alpha))
	for i, a := range alpha {
		if a >= c*(1-1e-9) {
			trimmed[i] = c
		}
	}
	return balanceAlpha(trimmed, y, c)
}

// scatterAlpha maps a union-level dual vector back onto the full training
// set for the PolishFull solve. Union rows are content copies of training
// rows (SelectRows and SVTrainingSet both preserve row bytes), so each
// union alpha is assigned to an unused training row with identical content
// and label; identical duplicates are interchangeable for the warm start.
// The scatter moves values without changing them, so the box and equality
// feasibility established by warmStartAlpha carry over.
func scatterAlpha(x *sparse.Matrix, y []float64, ux *sparse.Matrix, uy, ua []float64) ([]float64, error) {
	key := func(r sparse.Row, label float64) string {
		if label > 0 {
			return "+" + r.Key()
		}
		return "-" + r.Key()
	}
	buckets := make(map[string][]int, x.Rows())
	for i := 0; i < x.Rows(); i++ {
		k := key(x.RowView(i), y[i])
		buckets[k] = append(buckets[k], i)
	}
	full := make([]float64, x.Rows())
	for j, a := range ua {
		if a <= 0 {
			continue
		}
		k := key(ux.RowView(j), uy[j])
		idx := buckets[k]
		if len(idx) == 0 {
			return nil, fmt.Errorf("dcsvm: coalesced row %d matches no unused training row — union and training set are inconsistent", j)
		}
		full[idx[0]] = a
		buckets[k] = idx[1:]
	}
	return full, nil
}

// balanceAlpha projects a coalesced warm start onto the dual equality
// constraint sum alpha_i*y_i = 0 by scaling down the heavier side.
// Re-clustering can split a previous level's balanced solution across
// clusters, so the per-cluster restriction is generally unbalanced; the
// scaling keeps the box constraint (it only shrinks alphas) and hands smo
// a feasible start. A one-sided restriction balances to all zeros (cold).
func balanceAlpha(alpha, y []float64, c float64) []float64 {
	out := make([]float64, len(alpha))
	var pos, neg float64
	for i, a := range alpha {
		if a < 0 {
			a = 0
		}
		if a > c {
			a = c
		}
		out[i] = a
		if y[i] > 0 {
			pos += a
		} else {
			neg += a
		}
	}
	if pos == 0 || neg == 0 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	scale, side := neg/pos, 1.0
	if neg > pos {
		scale, side = pos/neg, -1.0
	}
	for i := range out {
		if y[i] == side {
			out[i] *= scale
		}
	}
	return out
}

// subEngine resolves the configured sub-solver name ("" means core)
// through the solver registry and checks it can actually sub-solve a
// cluster: a non-composite kernel classifier. The composite exclusion
// prevents dc-inside-dc recursion through the registry.
func subEngine(name string) (solver.Engine, error) {
	if name == "" {
		name = "core"
	}
	e, err := solver.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("dcsvm: sub-solver: %w", err)
	}
	caps := e.Capabilities()
	if caps.Has(solver.CapComposite) || !caps.Has(solver.CapClassify|solver.CapKernels) {
		var ok []string
		for _, cand := range solver.Engines() {
			cc := cand.Capabilities()
			if !cc.Has(solver.CapComposite) && cc.Has(solver.CapClassify|solver.CapKernels) {
				ok = append(ok, cand.Name())
			}
		}
		return nil, fmt.Errorf("dcsvm: engine %q cannot sub-solve clusters — need a non-composite kernel classifier (have: %s)",
			name, strings.Join(ok, ", "))
	}
	return e, nil
}

func permute(v []float64, order []int) []float64 {
	out := make([]float64, len(order))
	for k, i := range order {
		out[k] = v[i]
	}
	return out
}
