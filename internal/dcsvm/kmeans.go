package dcsvm

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/sparse"
)

// Clustering is a partition of the rows of a matrix into K clusters.
// Assign[i] is the cluster of row i; every cluster is non-empty.
type Clustering struct {
	K      int
	Assign []int
	Sizes  []int
	Iters  int // Lloyd refinement iterations performed
}

// maxLloydIters bounds the refinement loop; k-means on SVM training data
// stabilizes long before this, and a hard cap keeps clustering a small,
// predictable fraction of total training time.
const maxLloydIters = 25

// kernelSample caps the subsample size used by kernel-space clustering.
// Kernel k-means needs the pairwise kernel matrix of its working set, so
// the subsample keeps that quadratic cost bounded; the remaining rows are
// assigned to the nearest feature-space centroid afterwards, the standard
// two-step approximation for large-scale kernel k-means.
const kernelSample = 512

// clusterRows partitions the rows of x into at most k clusters,
// deterministically under a fixed seed. With kernelSpace set, distances
// are measured in the kernel feature space induced by kp (where the
// sub-problems are actually solved); otherwise plain Euclidean k-means++
// with Lloyd refinement is used.
func clusterRows(x *sparse.Matrix, k int, seed int64, kernelSpace bool, kp kernel.Params) (*Clustering, error) {
	n := x.Rows()
	if n == 0 {
		return nil, fmt.Errorf("dcsvm: cannot cluster an empty matrix")
	}
	if k < 1 {
		return nil, fmt.Errorf("dcsvm: cluster count must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	if k == 1 {
		return &Clustering{K: 1, Assign: make([]int, n), Sizes: []int{n}}, nil
	}
	rng := rand.New(rand.NewSource(seed))
	if kernelSpace {
		return kernelKMeans(x, k, rng, kp)
	}
	return euclideanKMeans(x, k, rng), nil
}

// euclideanKMeans is k-means++ seeding followed by Lloyd refinement with
// dense centroids. Distances use the norm decomposition
// ||x - c||^2 = ||x||^2 + ||c||^2 - 2<x, c>, so each row-to-centroid
// distance costs one sparse-dense dot product.
func euclideanKMeans(x *sparse.Matrix, k int, rng *rand.Rand) *Clustering {
	n, d := x.Rows(), x.Cols
	norms := x.SquaredNorms()

	// k-means++ seeding over rows: each new seed is drawn with probability
	// proportional to the squared distance to the nearest seed so far.
	seeds := make([]int, 1, k)
	seeds[0] = rng.Intn(n)
	dist2 := make([]float64, n)
	for i := range dist2 {
		dist2[i] = math.Inf(1)
	}
	for len(seeds) < k {
		latest := seeds[len(seeds)-1]
		lv := x.RowView(latest)
		var total float64
		for i := 0; i < n; i++ {
			d2 := norms[i] + norms[latest] - 2*sparse.DotRows(x.RowView(i), lv)
			if d2 < 0 {
				d2 = 0
			}
			if d2 < dist2[i] {
				dist2[i] = d2
			}
			total += dist2[i]
		}
		next := 0
		if total > 0 {
			u := rng.Float64() * total
			var run float64
			for i := 0; i < n; i++ {
				run += dist2[i]
				if run >= u {
					next = i
					break
				}
			}
		} else {
			next = rng.Intn(n) // all rows identical; any seed works
		}
		seeds = append(seeds, next)
	}

	cent := make([][]float64, k)
	for c := range cent {
		cent[c] = make([]float64, d)
		sparse.AddScaledTo(x.RowView(seeds[c]), cent[c], 1)
	}
	cnorm := make([]float64, k)
	assign := make([]int, n)
	sizes := make([]int, k)
	cl := &Clustering{K: k, Assign: assign, Sizes: sizes}

	for iter := 0; iter < maxLloydIters; iter++ {
		for c := range cent {
			var s float64
			for _, v := range cent[c] {
				s += v * v
			}
			cnorm[c] = s
		}
		changed := false
		for c := range sizes {
			sizes[c] = 0
		}
		for i := 0; i < n; i++ {
			row := x.RowView(i)
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				d2 := norms[i] + cnorm[c] - 2*sparse.DotDense(row, cent[c])
				if d2 < bestD {
					best, bestD = c, d2
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			sizes[best]++
		}
		cl.Iters = iter + 1
		// An emptied cluster steals the row farthest from its assigned
		// centroid (the centroids, and hence the distances, are still
		// those of this iteration) so every cluster stays non-empty.
		for c := 0; c < k; c++ {
			if sizes[c] > 0 {
				continue
			}
			far := farthestRow(x, norms, cent, cnorm, assign, sizes)
			sizes[assign[far]]--
			assign[far] = c
			sizes[c] = 1
			changed = true
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids as cluster means.
		for c := range cent {
			for j := range cent[c] {
				cent[c][j] = 0
			}
		}
		for i := 0; i < n; i++ {
			sparse.AddScaledTo(x.RowView(i), cent[assign[i]], 1)
		}
		for c := range cent {
			inv := 1 / float64(sizes[c])
			for j := range cent[c] {
				cent[c][j] *= inv
			}
		}
	}
	return cl
}

// farthestRow returns the row with the largest distance to its assigned
// centroid, used to reseed emptied clusters. Rows that are their cluster's
// only member are skipped so stealing one cannot empty another cluster.
func farthestRow(x *sparse.Matrix, norms []float64, cent [][]float64, cnorm []float64, assign, sizes []int) int {
	best, bestD := 0, math.Inf(-1)
	for i := 0; i < x.Rows(); i++ {
		c := assign[i]
		if sizes[c] <= 1 {
			continue
		}
		d2 := norms[i] + cnorm[c] - 2*sparse.DotDense(x.RowView(i), cent[c])
		if d2 > bestD {
			best, bestD = i, d2
		}
	}
	return best
}

// kernelKMeans clusters in the feature space induced by kp: kernel k-means
// over a bounded subsample (where the pairwise kernel matrix fits), then
// every row is assigned to the nearest feature-space centroid
//
//	||phi(x) - mu_c||^2 = K(x,x) - 2/|S_c| sum_{j in S_c} K(x, x_j)
//	                     + 1/|S_c|^2 sum_{j,l in S_c} K(x_j, x_l),
//
// with the per-cluster self term precomputed once.
func kernelKMeans(x *sparse.Matrix, k int, rng *rand.Rand, kp kernel.Params) (*Clustering, error) {
	n := x.Rows()
	m := n
	if m > kernelSample {
		m = kernelSample
	}
	sampleIdx := rng.Perm(n)[:m]
	sx, err := x.SelectRows(sampleIdx)
	if err != nil {
		return nil, err
	}
	ev := kernel.NewEvaluator(kp, sx)
	var scr kernel.Scratch
	kmat := make([][]float64, m)
	for i := range kmat {
		kmat[i] = make([]float64, m)
	}
	// Fill the lower triangle one batched kernel row at a time (row i against
	// columns [0, i]), then mirror.
	for i := 0; i < m; i++ {
		ev.RowRangeInto(&scr, sx.RowView(i), ev.Norm(i), 0, i+1, kmat[i][:i+1])
		for j := 0; j < i; j++ {
			kmat[j][i] = kmat[i][j]
		}
	}

	// Seed the sample assignment from k distinct sample points via
	// D^2-style sampling in kernel distance d(i,j) = K_ii + K_jj - 2K_ij.
	assign := make([]int, m)
	seeds := make([]int, 1, k)
	seeds[0] = rng.Intn(m)
	dist2 := make([]float64, m)
	for i := range dist2 {
		dist2[i] = math.Inf(1)
	}
	for len(seeds) < k {
		latest := seeds[len(seeds)-1]
		var total float64
		for i := 0; i < m; i++ {
			d2 := kmat[i][i] + kmat[latest][latest] - 2*kmat[i][latest]
			if d2 < 0 {
				d2 = 0
			}
			if d2 < dist2[i] {
				dist2[i] = d2
			}
			total += dist2[i]
		}
		next := 0
		if total > 0 {
			u := rng.Float64() * total
			var run float64
			for i := 0; i < m; i++ {
				run += dist2[i]
				if run >= u {
					next = i
					break
				}
			}
		} else {
			next = rng.Intn(m)
		}
		seeds = append(seeds, next)
	}
	for i := 0; i < m; i++ {
		best, bestD := 0, math.Inf(1)
		for c, s := range seeds {
			d2 := kmat[i][i] + kmat[s][s] - 2*kmat[i][s]
			if d2 < bestD {
				best, bestD = c, d2
			}
		}
		assign[i] = best
	}

	members := func() [][]int {
		out := make([][]int, k)
		for i, c := range assign {
			out[c] = append(out[c], i)
		}
		return out
	}
	iters := 0
	for iter := 0; iter < maxLloydIters; iter++ {
		mem := members()
		// Reseed empty clusters with the sample point farthest from its
		// centroid (largest current distance).
		self := clusterSelfTerms(kmat, mem)
		for c := range mem {
			if len(mem[c]) == 0 {
				far, farD := 0, math.Inf(-1)
				for i := 0; i < m; i++ {
					d := pointToCluster(kmat, i, mem[assign[i]], self[assign[i]])
					if d > farD {
						far, farD = i, d
					}
				}
				assign[far] = c
				mem = members()
				self = clusterSelfTerms(kmat, mem)
			}
		}
		changed := false
		for i := 0; i < m; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if len(mem[c]) == 0 {
					continue
				}
				d := pointToCluster(kmat, i, mem[c], self[c])
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		iters = iter + 1
		if !changed {
			break
		}
	}

	// Assign all n rows to the nearest feature-space centroid of the
	// converged sample clustering.
	mem := members()
	self := clusterSelfTerms(kmat, mem)
	norms := x.SquaredNorms()
	full := make([]int, n)
	sizes := make([]int, k)
	cross := make([]float64, m)
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		selfK := kp.Eval(row, row, norms[i], norms[i])
		// One batched row evaluation of x_i against the whole sample.
		ev.RowRangeInto(&scr, row, norms[i], 0, m, cross)
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			if len(mem[c]) == 0 {
				continue
			}
			var s float64
			for _, j := range mem[c] {
				s += cross[j]
			}
			d := selfK - 2*s/float64(len(mem[c])) + self[c]
			if d < bestD {
				best, bestD = c, d
			}
		}
		full[i] = best
		sizes[best]++
	}
	// A cluster can end up empty after full assignment (its sample points
	// attracted nothing); compact the labels so every cluster is non-empty.
	remap := make([]int, k)
	kk := 0
	for c := 0; c < k; c++ {
		if sizes[c] > 0 {
			remap[c] = kk
			kk++
		}
	}
	compact := make([]int, kk)
	for i := range full {
		full[i] = remap[full[i]]
	}
	for _, c := range full {
		compact[c]++
	}
	return &Clustering{K: kk, Assign: full, Sizes: compact, Iters: iters}, nil
}

// clusterSelfTerms precomputes 1/|S_c|^2 * sum_{j,l in S_c} K(j,l) for
// each cluster of the sample.
func clusterSelfTerms(kmat [][]float64, mem [][]int) []float64 {
	out := make([]float64, len(mem))
	for c, ms := range mem {
		if len(ms) == 0 {
			continue
		}
		var s float64
		for _, j := range ms {
			for _, l := range ms {
				s += kmat[j][l]
			}
		}
		out[c] = s / float64(len(ms)*len(ms))
	}
	return out
}

// pointToCluster is the feature-space distance of sample point i to the
// centroid of the given member set (self is its precomputed self term).
func pointToCluster(kmat [][]float64, i int, ms []int, self float64) float64 {
	var s float64
	for _, j := range ms {
		s += kmat[i][j]
	}
	return kmat[i][i] - 2*s/float64(len(ms)) + self
}
