package dcsvm

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/sparse"
)

func init() { solver.Register(dcEngine{}) }

// dcEngine adapts divide-and-conquer training to solver.Engine. It is the
// registry's one composite engine: finest-level sub-problems are solved by
// another registered engine (Options.DC.SubSolver), so it cannot itself be
// a sub-solver.
type dcEngine struct{}

func (dcEngine) Name() string { return "dc" }

func (dcEngine) Capabilities() solver.Capability {
	return solver.CapClassify | solver.CapKernels | solver.CapWarmStart |
		solver.CapCheckpoint | solver.CapHeuristics | solver.CapDistributed |
		solver.CapFaultInject | solver.CapComposite
}

func (dcEngine) Describe() string {
	return "divide-and-conquer: k-means clusters solved in parallel by a sub-engine, coalesced, then polish; for datasets a single solve can't reach"
}

func (e dcEngine) Train(ctx context.Context, prob solver.Problem, opts solver.Options) (solver.Result, error) {
	if err := solver.Validate(e, prob, opts); err != nil {
		return solver.Result{}, err
	}
	x, ok := prob.X.(*sparse.Matrix)
	if !ok {
		return solver.Result{}, fmt.Errorf("dcsvm: engine needs an in-memory matrix, got %T", prob.X)
	}
	cfg := Config{
		Kernel: prob.Kernel, C: opts.C, Eps: opts.Eps,
		Clusters: opts.DC.Clusters, Levels: opts.DC.Levels, Seed: opts.Seed,
		KernelSpace: opts.DC.KernelSpace,
		SubSolver:   opts.DC.SubSolver, P: opts.P, Workers: opts.Workers,
		CacheBytes: opts.CacheBytes, SubMaxIter: opts.MaxIter,
		PolishMaxIter: opts.DC.PolishMaxIter, PolishFull: opts.DC.PolishFull,
		DisableLinearFastPath: opts.DC.DisableLinearFastPath,
		Checkpoint:            opts.Checkpoint, CheckpointEvery: opts.CheckpointEvery,
		CheckpointSeed: opts.Seed,
		ResumeAlpha:    opts.InitialAlpha,
		SubFaults:      opts.Faults, SubFaultCluster: opts.DC.SubFaultCluster,
	}
	if opts.Heuristic != "" {
		h, err := core.HeuristicByName(opts.Heuristic)
		if err != nil {
			return solver.Result{}, err
		}
		cfg.Heuristic = h
	}
	m, st, err := Train(x, prob.Y, cfg)
	if err != nil {
		return solver.Result{}, err
	}
	var subIters int64
	for _, l := range st.Levels {
		for _, it := range l.SubIterations {
			subIters += it
		}
	}
	return solver.Result{
		Model:       m,
		Iterations:  subIters + st.PolishIterations,
		KernelEvals: st.KernelEvals,
		Converged:   st.PolishConverged,
		Summary: fmt.Sprintf("levels=%d coalesced-SVs=%d sub-iterations=%d polish-iterations=%d polish-converged=%v SVs=%d (%.1f%% of samples)",
			len(st.Levels), st.CoalescedSVs, subIters, st.PolishIterations,
			st.PolishConverged, st.SVCount, 100*float64(st.SVCount)/float64(x.Rows())),
	}, nil
}
