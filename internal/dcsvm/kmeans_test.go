package dcsvm

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/sparse"
)

func testKernel(ds *dataset.Dataset) kernel.Params {
	return kernel.Params{Type: kernel.Gaussian, Gamma: 1 / (2 * ds.Sigma2)}
}

func checkPartition(t *testing.T, cl *Clustering, n int) {
	t.Helper()
	if len(cl.Assign) != n {
		t.Fatalf("Assign has %d entries, want %d", len(cl.Assign), n)
	}
	sizes := make([]int, cl.K)
	for i, c := range cl.Assign {
		if c < 0 || c >= cl.K {
			t.Fatalf("Assign[%d] = %d outside [0, %d)", i, c, cl.K)
		}
		sizes[c]++
	}
	for c, s := range sizes {
		if s == 0 {
			t.Fatalf("cluster %d is empty", c)
		}
		if s != cl.Sizes[c] {
			t.Fatalf("Sizes[%d] = %d, recount %d", c, cl.Sizes[c], s)
		}
	}
}

func TestClusteringDeterministic(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	for _, kernelSpace := range []bool{false, true} {
		a, err := clusterRows(ds.X, 4, 42, kernelSpace, testKernel(ds))
		if err != nil {
			t.Fatal(err)
		}
		b, err := clusterRows(ds.X, 4, 42, kernelSpace, testKernel(ds))
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, a, ds.X.Rows())
		if a.K != b.K {
			t.Fatalf("kernelSpace=%v: K %d vs %d across identical seeds", kernelSpace, a.K, b.K)
		}
		for i := range a.Assign {
			if a.Assign[i] != b.Assign[i] {
				t.Fatalf("kernelSpace=%v: Assign[%d] differs across identical seeds", kernelSpace, i)
			}
		}
	}
}

func TestClusteringSeedChangesPartition(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	a, err := clusterRows(ds.X, 6, 1, false, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := clusterRows(ds.X, 6, 2, false, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical partitions")
	}
}

func TestClusteringClampsK(t *testing.T) {
	x := sparse.FromDense([][]float64{{0}, {1}, {2}})
	cl, err := clusterRows(x, 10, 0, false, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if cl.K > 3 {
		t.Fatalf("K = %d for 3 rows", cl.K)
	}
	checkPartition(t, cl, 3)

	one, err := clusterRows(x, 1, 0, false, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if one.K != 1 || one.Sizes[0] != 3 {
		t.Fatalf("k=1 clustering = %+v", one)
	}
}

func TestClusteringErrors(t *testing.T) {
	x := sparse.FromDense([][]float64{{0}, {1}})
	if _, err := clusterRows(x, 0, 0, false, kernel.Params{}); err == nil {
		t.Error("k=0 accepted")
	}
	empty := sparse.FromDense(nil)
	if _, err := clusterRows(empty, 2, 0, false, kernel.Params{}); err == nil {
		t.Error("empty matrix accepted")
	}
}

// TestEuclideanSeparatesBlobs: on well-separated 2-D blobs, k=2 k-means
// should recover a partition where each cluster is dominated by one blob.
func TestEuclideanSeparatesBlobs(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	cl, err := clusterRows(ds.X, 2, 7, false, kernel.Params{})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, cl, ds.X.Rows())
	// Count label majority per cluster; blobs are label-aligned, so a good
	// geometric split should be strongly correlated with labels.
	agree := 0
	for _, c0y := range []float64{1, -1} {
		n := 0
		for i, c := range cl.Assign {
			if (c == 0) == (ds.Y[i] == c0y) {
				n++
			}
		}
		if n > agree {
			agree = n
		}
	}
	if frac := float64(agree) / float64(len(ds.Y)); frac < 0.9 {
		t.Fatalf("cluster/label agreement %.2f, want >= 0.9", frac)
	}
}
