package dcsvm

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
)

// TestLinearFastPathParity: cold linear-kernel sub-solves route through
// internal/linear automatically. The routed run must perform zero kernel
// evaluations in its divide level and land within the usual acceptance
// envelope of the same training forced down the kernel path.
func TestLinearFastPathParity(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.5)
	// PolishFull makes both runs eps-optimal on the same full QP, so the
	// comparison is between converged solutions, not between the slightly
	// different support-vector unions the two sub-solvers produce.
	base := Config{
		Kernel:     kernel.Params{Type: kernel.Linear},
		C:          ds.C,
		Clusters:   4,
		Seed:       11,
		PolishFull: true,
	}

	fast, fastStats, err := Train(ds.X, ds.Y, base)
	if err != nil {
		t.Fatal(err)
	}
	slow := base
	slow.DisableLinearFastPath = true
	ref, refStats, err := Train(ds.X, ds.Y, slow)
	if err != nil {
		t.Fatal(err)
	}

	if n := len(fastStats.Levels); n == 0 {
		t.Fatal("no level stats recorded")
	}
	if evals := fastStats.Levels[0].KernelEvals; evals != 0 {
		t.Fatalf("linear fast path did %d kernel evals in the divide level, want 0", evals)
	}
	if evals := refStats.Levels[0].KernelEvals; evals == 0 {
		t.Fatal("disabled fast path still did zero kernel evals; the test is not comparing paths")
	}
	if !fastStats.PolishConverged || !refStats.PolishConverged {
		t.Fatalf("polish converged: fast=%v ref=%v", fastStats.PolishConverged, refStats.PolishConverged)
	}

	fa, err := fast.Evaluate(ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := ref.Evaluate(ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fa.Accuracy-ra.Accuracy) > 0.5 {
		t.Fatalf("fast-path accuracy %.2f%% vs kernel-path %.2f%% (gap > 0.5)", fa.Accuracy, ra.Accuracy)
	}
}

// TestLinearFastPathSkippedForKernelModels: a Gaussian run must never route
// through the linear solver, and warm (coarser) levels keep SMO even on
// linear kernels — the fast path only replaces cold level-0 solves.
func TestLinearFastPathSkippedForKernelModels(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.25)
	cfg := blobCfg(ds) // Gaussian kernel
	_, st, err := Train(ds.X, ds.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Levels[0].KernelEvals == 0 {
		t.Fatal("Gaussian divide level reports zero kernel evals — fast path leaked into kernel models")
	}

	lin := Config{
		Kernel:   kernel.Params{Type: kernel.Linear},
		C:        ds.C,
		Clusters: 8,
		Levels:   2,
		Seed:     11,
	}
	_, st2, err := Train(ds.X, ds.Y, lin)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Levels) < 2 {
		t.Fatalf("two-level run recorded %d levels", len(st2.Levels))
	}
	if st2.Levels[0].KernelEvals != 0 {
		t.Fatalf("cold linear level 0 did %d kernel evals, want 0", st2.Levels[0].KernelEvals)
	}
	if st2.Levels[1].KernelEvals == 0 {
		t.Fatal("warm linear level 1 did zero kernel evals — warm starts must stay on SMO")
	}
}
