package dcsvm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/smo"
)

// The benchmarks compare a full exact solve against divide-and-conquer at
// increasing cluster counts on the same data; the dc variants should win
// wall-clock once Clusters >= 4. Run with:
//
//	go test -bench=. -benchtime=1x ./internal/dcsvm
func benchData(b *testing.B) *dataset.Dataset {
	b.Helper()
	return dataset.MustGenerate("blobs", 1)
}

func BenchmarkCoreFull(b *testing.B) {
	ds := benchData(b)
	cfg := core.Config{Kernel: testKernel(ds), C: ds.C}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.TrainParallel(ds.X, ds.Y, 1, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSMOFull(b *testing.B) {
	ds := benchData(b)
	cfg := smo.Config{Kernel: testKernel(ds), C: ds.C, Shrinking: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smo.Train(ds.X, ds.Y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkDC(b *testing.B, clusters int, mut func(*Config)) {
	ds := benchData(b)
	cfg := Config{Kernel: testKernel(ds), C: ds.C, Clusters: clusters, Seed: 11}
	if mut != nil {
		mut(&cfg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Train(ds.X, ds.Y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDCClusters4(b *testing.B)  { benchmarkDC(b, 4, nil) }
func BenchmarkDCClusters8(b *testing.B)  { benchmarkDC(b, 8, nil) }
func BenchmarkDCClusters16(b *testing.B) { benchmarkDC(b, 16, nil) }
func BenchmarkDCEarlyStop8(b *testing.B) {
	benchmarkDC(b, 8, func(c *Config) { c.PolishMaxIter = 50 })
}
func BenchmarkDCTwoLevel8(b *testing.B) {
	benchmarkDC(b, 8, func(c *Config) { c.Levels = 2 })
}
