// Determinism across identically seeded runs, serialized-model-bytes deep.
// This is the property `svmtrain -seed` promises end to end: the same seed
// reaches dataset generation (dataset.GenerateSeeded), k-means clustering,
// and every parallel solve, so two runs must produce byte-identical models
// even with concurrent cluster solves and multi-worker smo.
package dcsvm_test

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dcsvm"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/smo"
	"repro/internal/sparse"
)

func modelBytes(t *testing.T, m *model.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func trainOnce(t *testing.T, x *sparse.Matrix, y []float64, kp kernel.Params, c float64) ([]byte, []byte) {
	t.Helper()
	dm, _, err := dcsvm.Train(x, y, dcsvm.Config{
		Kernel: kp, C: c, Eps: 1e-3,
		Clusters: 4, Seed: 42, SubSolver: "smo", Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := smo.Train(x, y, smo.Config{
		Kernel: kp, C: c, Eps: 1e-3, Workers: 4, Shrinking: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return modelBytes(t, dm), modelBytes(t, sres.Model)
}

func TestSameSeedSameModelBytes(t *testing.T) {
	gen := func() *dataset.Dataset {
		spec, err := dataset.Lookup("blobs")
		if err != nil {
			t.Fatal(err)
		}
		ds, err := dataset.GenerateSeeded(spec, 0.1, 777)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	ds1, ds2 := gen(), gen()
	kp := kernel.FromSigma2(ds1.Sigma2)

	dc1, smo1 := trainOnce(t, ds1.X, ds1.Y, kp, ds1.C)
	dc2, smo2 := trainOnce(t, ds2.X, ds2.Y, kp, ds2.C)
	if !bytes.Equal(dc1, dc2) {
		t.Error("two same-seed dcsvm runs serialized different models")
	}
	if !bytes.Equal(smo1, smo2) {
		t.Error("two same-seed multi-worker smo runs serialized different models")
	}
}
