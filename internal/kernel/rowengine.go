// Batched kernel-row evaluation — the dense-scratch hot path shared by
// every solver, the oracle, and batch prediction.
//
// The pairwise At/Cross path re-merges the pivot row's index list against
// every target row (a two-pointer walk per evaluation). The row engine
// instead scatters the pivot once into a dense scratch vector sized to the
// matrix's column count — O(nnz(pivot)) — after which each K(pivot, x_i)
// is an indexed gather over x_i's CSR payload (sparse.GatherDense, with the
// bounds branch hoisted to one max-index comparison per row). For the SMO
// pair update, PairRowsInto scatters both the up and low pivots and fuses
// the two gathers into one traversal of each target row, so CSR indices
// and values are read once instead of twice.
//
// The arithmetic is order-identical to the pairwise path: shared indices
// contribute in the same sequence and non-shared indices gather exact
// zeros, so RowInto reproduces Eval bit for bit (the property tests pin
// this down to 1 ULP-scale tolerance).
package kernel

import (
	"fmt"
	"sync"

	"repro/internal/sparse"
)

// Scratch is the per-worker dense state of the row engine: two column-count
// sized vectors the pivot rows are scattered into. The zero value is ready
// to use; vectors grow on demand and are kept all-zero between calls (each
// batch clears exactly the entries it scattered). A Scratch must not be
// shared between goroutines — give each worker its own, next to its
// SubEvaluator.
type Scratch struct {
	a, b []float64
}

// ensure grows the scratch vectors to at least dim entries, preserving the
// all-zero invariant. pair selects whether the second vector is needed.
func (s *Scratch) ensure(dim int, pair bool) {
	if len(s.a) < dim {
		s.a = append(s.a, make([]float64, dim-len(s.a))...)
	}
	if pair && len(s.b) < dim {
		s.b = append(s.b, make([]float64, dim-len(s.b))...)
	}
}

// scratchDim returns the dense dimension a batch needs: the matrix's
// declared column count, extended to cover an external pivot whose max
// index reaches past it. Target indices beyond the returned dimension pair
// with implicit zeros of the pivot, so GatherDense's fallback keeps them
// exact.
func (e *Evaluator) scratchDim(pivot sparse.Row) int {
	dim := e.X.Cols
	if n := len(pivot.Idx); n > 0 {
		if m := int(pivot.Idx[n-1]) + 1; m > dim {
			dim = m
		}
	}
	return dim
}

// normOf returns the precomputed squared norm of bound row i (0 when the
// kernel does not use norms).
func (e *Evaluator) normOf(i int) float64 {
	if e.norms == nil {
		return 0
	}
	return e.norms[i]
}

// RowInto computes dst[k] = Phi(pivot, x_targets[k]) for every target row
// of the bound matrix, using the dense-scratch gather path. normPivot is
// the pivot's squared norm (pass 0 for non-Gaussian kernels). dst must
// hold at least len(targets) entries. The evaluation counter advances by
// len(targets), exactly as the equivalent Cross loop would.
func (e *Evaluator) RowInto(s *Scratch, pivot sparse.Row, normPivot float64, targets []int, dst []float64) {
	if len(dst) < len(targets) {
		panic(fmt.Sprintf("kernel: RowInto dst holds %d entries for %d targets", len(dst), len(targets)))
	}
	s.ensure(e.scratchDim(pivot), false)
	a := s.a
	for k, c := range pivot.Idx {
		a[c] = pivot.Val[k]
	}
	for t, i := range targets {
		dot := sparse.GatherDense(e.X.RowView(i), a)
		dst[t] = e.Params.finishDot(dot, e.normOf(i), normPivot)
	}
	for _, c := range pivot.Idx {
		a[c] = 0
	}
	e.evals += uint64(len(targets))
}

// RowRangeInto is RowInto for the contiguous target rows [lo, hi) of the
// bound matrix: dst[i-lo] = Phi(pivot, x_i). The contiguous form streams
// the CSR payload in storage order — the layout batch prediction and the
// oracle's gradient recomputation want.
func (e *Evaluator) RowRangeInto(s *Scratch, pivot sparse.Row, normPivot float64, lo, hi int, dst []float64) {
	if hi < lo {
		panic(fmt.Sprintf("kernel: RowRangeInto range [%d,%d)", lo, hi))
	}
	if len(dst) < hi-lo {
		panic(fmt.Sprintf("kernel: RowRangeInto dst holds %d entries for %d rows", len(dst), hi-lo))
	}
	s.ensure(e.scratchDim(pivot), false)
	a := s.a
	for k, c := range pivot.Idx {
		a[c] = pivot.Val[k]
	}
	for i := lo; i < hi; i++ {
		dot := sparse.GatherDense(e.X.RowView(i), a)
		dst[i-lo] = e.Params.finishDot(dot, e.normOf(i), normPivot)
	}
	for _, c := range pivot.Idx {
		a[c] = 0
	}
	e.evals += uint64(hi - lo)
}

// PairRowsInto computes both pivot rows against the same targets in one
// fused pass: dstUp[k] = Phi(up, x_targets[k]) and dstLow[k] =
// Phi(low, x_targets[k]). Each target row's CSR payload is traversed once,
// gathering against both scratch vectors — the up/low pair of every SMO
// iteration is the dominant caller. Counts 2*len(targets) evaluations.
func (e *Evaluator) PairRowsInto(s *Scratch, up, low sparse.Row, normUp, normLow float64, targets []int, dstUp, dstLow []float64) {
	if len(dstUp) < len(targets) || len(dstLow) < len(targets) {
		panic(fmt.Sprintf("kernel: PairRowsInto dst holds %d/%d entries for %d targets", len(dstUp), len(dstLow), len(targets)))
	}
	dim := e.scratchDim(up)
	if d := e.scratchDim(low); d > dim {
		dim = d
	}
	s.ensure(dim, true)
	a, b := s.a, s.b
	for k, c := range up.Idx {
		a[c] = up.Val[k]
	}
	for k, c := range low.Idx {
		b[c] = low.Val[k]
	}
	for t, i := range targets {
		ni := e.normOf(i)
		da, db := sparse.GatherDense2(e.X.RowView(i), a[:dim], b[:dim])
		dstUp[t] = e.Params.finishDot(da, ni, normUp)
		dstLow[t] = e.Params.finishDot(db, ni, normLow)
	}
	for _, c := range up.Idx {
		a[c] = 0
	}
	for _, c := range low.Idx {
		b[c] = 0
	}
	e.evals += 2 * uint64(len(targets))
}

// DiagInto fills dst[i] = Phi(x_i, x_i) for every bound row. The diagonal
// needs no dot product at all: <x_i, x_i> is the squared norm, so each
// entry costs O(nnz(row)) at most (and O(1) for Gaussian, where the
// diagonal is identically 1). Replaces the At(i, i) startup loops of the
// second-order solvers; counts one evaluation per row like they did.
func (e *Evaluator) DiagInto(dst []float64) {
	n := e.X.Rows()
	if len(dst) < n {
		panic(fmt.Sprintf("kernel: DiagInto dst holds %d entries for %d rows", len(dst), n))
	}
	for i := 0; i < n; i++ {
		sn := e.normOf(i)
		if e.norms == nil {
			sn = e.X.SquaredNorm(i)
		}
		dst[i] = e.Params.finishDot(sn, sn, sn)
	}
	e.evals += uint64(n)
}

// RowPool fans row batches across a bounded worker pool: worker w owns a
// SubEvaluator (independent eval counter over the shared read-only matrix
// and norms) and a Scratch, so concurrent chunk fills never share mutable
// state. A RowPool serves one batch at a time — its methods must not be
// called concurrently with each other, but each call is internally
// parallel. Callers with their own fan-out (chunked gradient loops) borrow
// per-worker state via Worker instead.
type RowPool struct {
	evs []*Evaluator
	scr []*Scratch
}

// minParallelTargets is the batch size below which RowPool stays on one
// goroutine: a kernel row over fewer targets than this finishes faster
// than the handoff costs.
const minParallelTargets = 256

// NewRowPool builds a pool of workers over e's matrix. workers < 1 is
// clamped to 1.
func NewRowPool(e *Evaluator, workers int) *RowPool {
	if workers < 1 {
		workers = 1
	}
	p := &RowPool{evs: make([]*Evaluator, workers), scr: make([]*Scratch, workers)}
	for w := range p.evs {
		p.evs[w] = e.SubEvaluator()
		p.scr[w] = &Scratch{}
	}
	return p
}

// Workers returns the pool size.
func (p *RowPool) Workers() int { return len(p.evs) }

// Worker returns worker w's evaluator and scratch for caller-managed
// chunking. The pair must only be used by one goroutine at a time.
func (p *RowPool) Worker(w int) (*Evaluator, *Scratch) { return p.evs[w], p.scr[w] }

// Evals sums the workers' evaluation counters.
func (p *RowPool) Evals() uint64 {
	var total uint64
	for _, ev := range p.evs {
		total += ev.Evals()
	}
	return total
}

// ResetEvals zeroes every worker's counter.
func (p *RowPool) ResetEvals() {
	for _, ev := range p.evs {
		ev.ResetEvals()
	}
}

// RowInto is Evaluator.RowInto with the targets chunked across the pool.
func (p *RowPool) RowInto(pivot sparse.Row, normPivot float64, targets []int, dst []float64) {
	if len(dst) < len(targets) {
		panic(fmt.Sprintf("kernel: RowInto dst holds %d entries for %d targets", len(dst), len(targets)))
	}
	n := len(targets)
	w := len(p.evs)
	if n < minParallelTargets || w == 1 {
		p.evs[0].RowInto(p.scr[0], pivot, normPivot, targets, dst)
		return
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := k*n/w, (k+1)*n/w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			p.evs[k].RowInto(p.scr[k], pivot, normPivot, targets[lo:hi], dst[lo:hi])
		}(k, lo, hi)
	}
	wg.Wait()
}

// PairRowsInto is Evaluator.PairRowsInto with the targets chunked across
// the pool.
func (p *RowPool) PairRowsInto(up, low sparse.Row, normUp, normLow float64, targets []int, dstUp, dstLow []float64) {
	if len(dstUp) < len(targets) || len(dstLow) < len(targets) {
		panic(fmt.Sprintf("kernel: PairRowsInto dst holds %d/%d entries for %d targets", len(dstUp), len(dstLow), len(targets)))
	}
	n := len(targets)
	w := len(p.evs)
	if n < minParallelTargets || w == 1 {
		p.evs[0].PairRowsInto(p.scr[0], up, low, normUp, normLow, targets, dstUp, dstLow)
		return
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := k*n/w, (k+1)*n/w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			p.evs[k].PairRowsInto(p.scr[k], up, low, normUp, normLow, targets[lo:hi], dstUp[lo:hi], dstLow[lo:hi])
		}(k, lo, hi)
	}
	wg.Wait()
}
