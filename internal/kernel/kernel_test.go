package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sparse"
)

func randomMatrix(seed int64, rows, cols int, density float64) *sparse.Matrix {
	rng := rand.New(rand.NewSource(seed))
	d := make([][]float64, rows)
	for i := range d {
		d[i] = make([]float64, cols)
		for j := range d[i] {
			if rng.Float64() < density {
				d[i][j] = rng.NormFloat64()
			}
		}
	}
	return sparse.FromDense(d)
}

func TestGaussianMatchesDirect(t *testing.T) {
	m := randomMatrix(1, 15, 10, 0.5)
	p := Params{Type: Gaussian, Gamma: 0.37}
	ev := NewEvaluator(p, m)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Rows(); j++ {
			got := ev.At(i, j)
			want := math.Exp(-p.Gamma * m.SquaredDistance(i, j))
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestGaussianProperties(t *testing.T) {
	m := randomMatrix(2, 10, 8, 0.6)
	ev := NewEvaluator(Params{Type: Gaussian, Gamma: 0.5}, m)
	for i := 0; i < m.Rows(); i++ {
		if got := ev.At(i, i); math.Abs(got-1) > 1e-12 {
			t.Fatalf("K(%d,%d) = %v, want 1", i, i, got)
		}
		for j := 0; j < m.Rows(); j++ {
			v := ev.At(i, j)
			if v <= 0 || v > 1+1e-12 {
				t.Fatalf("K(%d,%d) = %v out of (0,1]", i, j, v)
			}
			if w := ev.At(j, i); math.Abs(v-w) > 1e-15 {
				t.Fatalf("asymmetric kernel: K(%d,%d)=%v K(%d,%d)=%v", i, j, v, j, i, w)
			}
		}
	}
}

func TestLinearKernel(t *testing.T) {
	m := randomMatrix(3, 8, 6, 0.7)
	ev := NewEvaluator(Params{Type: Linear}, m)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Rows(); j++ {
			if got, want := ev.At(i, j), m.Dot(i, j); math.Abs(got-want) > 1e-14 {
				t.Fatalf("linear At(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestPolynomialKernel(t *testing.T) {
	m := sparse.FromDense([][]float64{{1, 2}, {3, -1}})
	ev := NewEvaluator(Params{Type: Polynomial, Gamma: 2, Coef0: 1, Degree: 3}, m)
	// <x0,x1> = 3-2 = 1; (2*1+1)^3 = 27
	if got := ev.At(0, 1); math.Abs(got-27) > 1e-12 {
		t.Fatalf("poly = %v, want 27", got)
	}
}

func TestSigmoidKernel(t *testing.T) {
	m := sparse.FromDense([][]float64{{1, 0}, {0.5, 0}})
	ev := NewEvaluator(Params{Type: Sigmoid, Gamma: 1, Coef0: -0.25}, m)
	want := math.Tanh(0.5 - 0.25)
	if got := ev.At(0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("sigmoid = %v, want %v", got, want)
	}
}

func TestCrossMatchesAt(t *testing.T) {
	m := randomMatrix(4, 12, 9, 0.4)
	ev := NewEvaluator(Params{Type: Gaussian, Gamma: 0.2}, m)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Rows(); j++ {
			r := m.RowView(j)
			got := ev.Cross(i, r, SquaredNormOf(r))
			want := ev.At(i, j)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("Cross(%d, row%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestFromSigma2(t *testing.T) {
	p := FromSigma2(64)
	if p.Type != Gaussian {
		t.Fatal("not gaussian")
	}
	if math.Abs(p.Gamma-1.0/128.0) > 1e-15 {
		t.Fatalf("gamma = %v, want 1/128", p.Gamma)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{Type: Gaussian, Gamma: 0.5}, true},
		{Params{Type: Gaussian, Gamma: 0}, false},
		{Params{Type: Gaussian, Gamma: -1}, false},
		{Params{Type: Linear}, true},
		{Params{Type: Polynomial, Gamma: 1, Degree: 2}, true},
		{Params{Type: Polynomial, Gamma: 1, Degree: 0}, false},
		{Params{Type: Sigmoid}, true},
		{Params{Type: Type(42)}, false},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%v) error = %v, want ok=%v", tc.p, err, tc.ok)
		}
	}
}

func TestParseType(t *testing.T) {
	for _, name := range []string{"rbf", "gaussian", "linear", "polynomial", "poly", "sigmoid"} {
		if _, err := ParseType(name); err != nil {
			t.Errorf("ParseType(%q): %v", name, err)
		}
	}
	if _, err := ParseType("quantum"); err == nil {
		t.Error("ParseType accepted unknown kernel")
	}
}

func TestTypeStrings(t *testing.T) {
	pairs := map[Type]string{Gaussian: "rbf", Linear: "linear", Polynomial: "polynomial", Sigmoid: "sigmoid"}
	for ty, want := range pairs {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(ty), got, want)
		}
		back, err := ParseType(want)
		if err != nil || back != ty {
			t.Errorf("ParseType(%q) = %v, %v", want, back, err)
		}
	}
}

func TestEvalsCounter(t *testing.T) {
	m := randomMatrix(5, 5, 4, 0.5)
	ev := NewEvaluator(Params{Type: Gaussian, Gamma: 1}, m)
	for i := 0; i < 7; i++ {
		ev.At(0, i%m.Rows())
	}
	if ev.Evals() != 7 {
		t.Fatalf("Evals = %d, want 7", ev.Evals())
	}
	ev.ResetEvals()
	if ev.Evals() != 0 {
		t.Fatal("ResetEvals did not zero counter")
	}
}

// Property: Gaussian kernel matrices are positive semi-definite; check via
// random quadratic forms z^T K z >= 0.
func TestGaussianPSDQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := randomMatrix(seed+1000, n, 5, 0.6)
		ev := NewEvaluator(Params{Type: Gaussian, Gamma: 0.1 + rng.Float64()}, m)
		z := make([]float64, n)
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		var q float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				q += z[i] * z[j] * ev.At(i, j)
			}
		}
		return q >= -1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLambdaCalibration(t *testing.T) {
	m := randomMatrix(6, 100, 50, 0.2)
	ev := NewEvaluator(Params{Type: Gaussian, Gamma: 0.5}, m)
	l := ev.Lambda(5 * time.Millisecond)
	if l <= 0 || l > 1e-3 {
		t.Fatalf("implausible lambda: %v", l)
	}
}

func BenchmarkGaussianEval(b *testing.B) {
	m := randomMatrix(7, 2, 784, 0.19) // MNIST-like rows
	ev := NewEvaluator(Params{Type: Gaussian, Gamma: 0.02}, m)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ev.At(0, 1)
	}
}
