package kernel

import (
	"time"
)

// Lambda estimates the average wall-clock cost of one kernel evaluation on
// the bound dataset (the paper's symbol lambda in Table I). The perfmodel
// package uses this to translate recorded kernel-evaluation counts into
// modeled time for arbitrary process counts.
//
// The estimate times a deterministic sweep of row pairs and divides by the
// number of evaluations. minDuration bounds how long calibration runs;
// pass 0 for the default of 20ms.
func (e *Evaluator) Lambda(minDuration time.Duration) float64 {
	if minDuration <= 0 {
		minDuration = 20 * time.Millisecond
	}
	n := e.X.Rows()
	if n == 0 {
		return 0
	}
	// Stride through pairs so both short and long rows are sampled.
	var sink float64
	evals := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		for k := 0; k < 1024; k++ {
			i := (k * 2654435761) % n
			j := (k*40503 + 12345) % n
			sink += e.At(i, j)
			evals++
		}
	}
	elapsed := time.Since(start).Seconds()
	_ = sink
	if evals == 0 {
		return 0
	}
	return elapsed / float64(evals)
}
