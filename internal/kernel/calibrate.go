package kernel

import (
	"time"
)

// Lambda estimates the average wall-clock cost of one kernel evaluation on
// the bound dataset (the paper's symbol lambda in Table I) through the
// pairwise At path. This is the legacy estimate, kept for the kernelrow
// ablation table; the solvers now execute the batched dense-scratch path,
// which LambdaBatched measures and which perfmodel.Calibrate uses.
//
// The estimate times a deterministic sweep of row pairs and divides by the
// number of evaluations. minDuration bounds how long calibration runs;
// pass 0 for the default of 20ms.
func (e *Evaluator) Lambda(minDuration time.Duration) float64 {
	if minDuration <= 0 {
		minDuration = 20 * time.Millisecond
	}
	n := e.X.Rows()
	if n == 0 {
		return 0
	}
	// Stride through pairs so both short and long rows are sampled.
	var sink float64
	evals := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		for k := 0; k < 1024; k++ {
			i := (k * 2654435761) % n
			j := (k*40503 + 12345) % n
			sink += e.At(i, j)
			evals++
		}
	}
	elapsed := time.Since(start).Seconds()
	_ = sink
	if evals == 0 {
		return 0
	}
	return elapsed / float64(evals)
}

// LambdaBatched estimates lambda through the batched dense-scratch row
// path — the path every solver hot loop actually executes — so perfmodel
// projections track the real per-evaluation cost. Pivot rows are strided
// deterministically (sampling short and long rows alike) and each is
// evaluated against a contiguous block of rows, amortizing the scatter the
// way a gradient pass does. minDuration bounds calibration time; pass 0
// for the default of 20ms.
func (e *Evaluator) LambdaBatched(minDuration time.Duration) float64 {
	if minDuration <= 0 {
		minDuration = 20 * time.Millisecond
	}
	n := e.X.Rows()
	if n == 0 {
		return 0
	}
	block := n
	if block > 1024 {
		block = 1024
	}
	var scr Scratch
	dst := make([]float64, block)
	var evals uint64
	k := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		i := (k * 2654435761) % n
		lo := (k*40503 + 12345) % (n - block + 1)
		e.RowRangeInto(&scr, e.X.RowView(i), e.normOf(i), lo, lo+block, dst)
		evals += uint64(block)
		k++
	}
	elapsed := time.Since(start).Seconds()
	if evals == 0 {
		return 0
	}
	return elapsed / float64(evals)
}
