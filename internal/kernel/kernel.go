// Package kernel implements the kernel functions Phi(x, y) used by the SVM
// solvers, evaluated directly on CSR rows.
//
// The paper evaluates with the Gaussian kernel Phi(x,y) = exp(-g*||x-y||^2)
// and reports the kernel width sigma^2 per dataset (Table III); the
// infrastructure "allows us to plugin other kernels (such as linear,
// polynomial)", so those are provided too. Gaussian evaluations use the
// decomposition ||x-y||^2 = ||x||^2 + ||y||^2 - 2<x,y> with squared norms
// precomputed once per dataset, making each evaluation a single sparse dot
// product (the paper's average evaluation time symbol lambda).
package kernel

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// Type enumerates the supported kernel families.
type Type int

const (
	// Gaussian is exp(-Gamma * ||x-y||^2); the paper's evaluation kernel.
	Gaussian Type = iota
	// Linear is <x, y>.
	Linear
	// Polynomial is (Gamma*<x,y> + Coef0)^Degree.
	Polynomial
	// Sigmoid is tanh(Gamma*<x,y> + Coef0).
	Sigmoid
)

// String returns the libsvm-style name of the kernel type.
func (t Type) String() string {
	switch t {
	case Gaussian:
		return "rbf"
	case Linear:
		return "linear"
	case Polynomial:
		return "polynomial"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("kernel.Type(%d)", int(t))
	}
}

// ParseType converts a libsvm-style kernel name to a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "rbf", "gaussian":
		return Gaussian, nil
	case "linear":
		return Linear, nil
	case "polynomial", "poly":
		return Polynomial, nil
	case "sigmoid":
		return Sigmoid, nil
	}
	return 0, fmt.Errorf("kernel: unknown kernel type %q", s)
}

// Params fully describes a kernel function.
type Params struct {
	Type   Type
	Gamma  float64 // Gaussian/Polynomial/Sigmoid coefficient
	Coef0  float64 // Polynomial/Sigmoid offset
	Degree int     // Polynomial degree
}

// FromSigma2 returns Gaussian kernel parameters for the paper's kernel-width
// convention: sigma^2 is the width of exp(-||x-y||^2 / (2*sigma^2)), i.e.
// Gamma = 1/(2*sigma^2).
func FromSigma2(sigma2 float64) Params {
	return Params{Type: Gaussian, Gamma: 1 / (2 * sigma2)}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch p.Type {
	case Gaussian:
		if p.Gamma <= 0 {
			return fmt.Errorf("kernel: gaussian gamma must be positive, got %v", p.Gamma)
		}
	case Polynomial:
		if p.Degree <= 0 {
			return fmt.Errorf("kernel: polynomial degree must be positive, got %d", p.Degree)
		}
	case Linear, Sigmoid:
	default:
		return fmt.Errorf("kernel: unknown type %d", int(p.Type))
	}
	return nil
}

// String renders the parameters for logs and model files.
func (p Params) String() string {
	switch p.Type {
	case Gaussian:
		return fmt.Sprintf("rbf(gamma=%g)", p.Gamma)
	case Linear:
		return "linear"
	case Polynomial:
		return fmt.Sprintf("polynomial(gamma=%g, coef0=%g, degree=%d)", p.Gamma, p.Coef0, p.Degree)
	case Sigmoid:
		return fmt.Sprintf("sigmoid(gamma=%g, coef0=%g)", p.Gamma, p.Coef0)
	default:
		return fmt.Sprintf("kernel(%d)", int(p.Type))
	}
}

// Eval computes Phi(a, b) for two sparse rows given their squared norms.
// For non-Gaussian kernels the norms are ignored.
func (p Params) Eval(a, b sparse.Row, normA, normB float64) float64 {
	return p.finishDot(sparse.DotRows(a, b), normA, normB)
}

// FinishDot maps a raw inner product <a, b> (plus the squared norms, used
// only by the Gaussian kernel) to the kernel value. Exported for predict-time
// layouts that compute dot products outside the row engine (model.PackedSVs):
// both funnel through the same arithmetic, so their kernel values are
// bit-identical to the pairwise Eval and the batched row engine.
func (p Params) FinishDot(dot, normA, normB float64) float64 {
	return p.finishDot(dot, normA, normB)
}

// WeightedFinishDots accumulates sum_i coef[i] * Phi(dots[i]) with the
// kernel-type dispatch hoisted out of the per-element loop — finishDot is
// too large to inline, and a call per support vector is measurable next to
// the arithmetic. Each element evaluates exactly finishDot's expression in
// finishDot's operation order, and the sum accumulates in ascending i, so
// the result is bit-identical to looping over FinishDot.
func (p Params) WeightedFinishDots(coef, dots, norms []float64, normB float64) float64 {
	var s float64
	switch p.Type {
	case Gaussian:
		for i, c := range coef {
			d2 := norms[i] + normB - 2*dots[i]
			if d2 < 0 {
				d2 = 0
			}
			s += c * math.Exp(-p.Gamma*d2)
		}
	case Linear:
		for i, c := range coef {
			s += c * dots[i]
		}
	case Polynomial:
		for i, c := range coef {
			s += c * powi(p.Gamma*dots[i]+p.Coef0, p.Degree)
		}
	case Sigmoid:
		for i, c := range coef {
			s += c * math.Tanh(p.Gamma*dots[i]+p.Coef0)
		}
	default:
		for i, c := range coef {
			s += c * p.finishDot(dots[i], norms[i], normB)
		}
	}
	return s
}

// finishDot maps a raw inner product <a, b> (plus the squared norms, used
// only by the Gaussian kernel) to the kernel value. It is the single place
// a dot product becomes Phi(a, b), shared by the pairwise Eval and the
// batched row engine so both paths are numerically identical.
func (p Params) finishDot(dot, normA, normB float64) float64 {
	switch p.Type {
	case Gaussian:
		d2 := normA + normB - 2*dot
		if d2 < 0 {
			d2 = 0 // guard against rounding for near-identical rows
		}
		return math.Exp(-p.Gamma * d2)
	case Linear:
		return dot
	case Polynomial:
		return powi(p.Gamma*dot+p.Coef0, p.Degree)
	case Sigmoid:
		return math.Tanh(p.Gamma*dot + p.Coef0)
	default:
		panic(fmt.Sprintf("kernel: Eval on unknown type %d", int(p.Type)))
	}
}

// powi is exact integer exponentiation by squaring (libsvm's powi): cheaper
// than math.Pow in the hot path and bit-deterministic across platforms,
// with the correct sign for negative bases at odd/even degrees. Degrees
// below 1 (rejected by Validate) return 1, matching base^0.
func powi(base float64, degree int) float64 {
	r := 1.0
	for t := base; degree > 0; degree >>= 1 {
		if degree&1 == 1 {
			r *= t
		}
		t *= t
	}
	return r
}

// Evaluator binds kernel parameters to a matrix, precomputing squared norms
// so that Gaussian evaluations between rows cost one sparse dot product.
type Evaluator struct {
	Params Params
	X      *sparse.Matrix
	norms  []float64
	evals  uint64 // number of kernel evaluations performed (for stats)
}

// NewEvaluator precomputes norms for x under params p.
func NewEvaluator(p Params, x *sparse.Matrix) *Evaluator {
	e := &Evaluator{Params: p, X: x}
	if p.Type == Gaussian {
		e.norms = x.SquaredNorms()
	}
	return e
}

// NewEvaluatorWithNorms is NewEvaluator for callers that already hold the
// squared norms of x (e.g. a model's warmed support-vector norm cache), so
// binding an evaluator costs nothing. Norms are only retained for the
// Gaussian kernel, matching NewEvaluator's behaviour.
func NewEvaluatorWithNorms(p Params, x *sparse.Matrix, norms []float64) *Evaluator {
	e := &Evaluator{Params: p, X: x}
	if p.Type == Gaussian {
		if len(norms) == x.Rows() {
			e.norms = norms
		} else {
			e.norms = x.SquaredNorms()
		}
	}
	return e
}

// SubEvaluator returns an evaluator sharing this evaluator's matrix and
// precomputed norms but with an independent evaluation counter. Parallel
// solvers give one sub-evaluator to each worker goroutine; the shared state
// is read-only so concurrent use of distinct sub-evaluators is safe.
func (e *Evaluator) SubEvaluator() *Evaluator {
	return &Evaluator{Params: e.Params, X: e.X, norms: e.norms}
}

// At evaluates Phi(x_i, x_j) for rows of the bound matrix.
func (e *Evaluator) At(i, j int) float64 {
	e.evals++
	var ni, nj float64
	if e.norms != nil {
		ni, nj = e.norms[i], e.norms[j]
	}
	return e.Params.Eval(e.X.RowView(i), e.X.RowView(j), ni, nj)
}

// Cross evaluates Phi(x_i, r) between row i of the bound matrix and an
// external row r with squared norm normR (pass 0 for non-Gaussian kernels).
func (e *Evaluator) Cross(i int, r sparse.Row, normR float64) float64 {
	e.evals++
	var ni float64
	if e.norms != nil {
		ni = e.norms[i]
	}
	return e.Params.Eval(e.X.RowView(i), r, ni, normR)
}

// Norm returns the precomputed squared norm of row i (0 if not Gaussian).
func (e *Evaluator) Norm(i int) float64 {
	if e.norms == nil {
		return 0
	}
	return e.norms[i]
}

// Evals returns the number of kernel evaluations performed so far.
// The evaluator is not safe for concurrent use; parallel solvers keep one
// evaluator per worker and sum the counters.
func (e *Evaluator) Evals() uint64 { return e.evals }

// ResetEvals zeroes the evaluation counter.
func (e *Evaluator) ResetEvals() { e.evals = 0 }

// SquaredNormOf computes the squared norm of an arbitrary row, for use with
// Cross when the row does not belong to the bound matrix.
func SquaredNormOf(r sparse.Row) float64 {
	var s float64
	for _, v := range r.Val {
		s += v * v
	}
	return s
}
