package kernel

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/sparse"
)

// allKernels covers every kernel family the row engine must reproduce.
var allKernels = []Params{
	{Type: Gaussian, Gamma: 0.37},
	{Type: Linear},
	{Type: Polynomial, Gamma: 0.5, Coef0: 1, Degree: 3},
	{Type: Sigmoid, Gamma: 0.25, Coef0: -0.5},
}

// rowEngineMatrix builds a matrix exercising the row-engine edge cases:
// empty rows, single-entry rows, and mixed densities.
func rowEngineMatrix(seed int64, rows, cols int) *sparse.Matrix {
	rng := rand.New(rand.NewSource(seed))
	d := make([][]float64, rows)
	for i := range d {
		d[i] = make([]float64, cols)
		switch i % 4 {
		case 0: // empty row
		case 1: // single non-zero
			d[i][rng.Intn(cols)] = rng.NormFloat64()
		case 2: // sparse
			for j := range d[i] {
				if rng.Float64() < 0.1 {
					d[i][j] = rng.NormFloat64()
				}
			}
		default: // dense
			for j := range d[i] {
				if rng.Float64() < 0.8 {
					d[i][j] = rng.NormFloat64()
				}
			}
		}
	}
	m := sparse.FromDense(d)
	m.Cols = cols // FromDense may infer fewer columns from trailing zeros
	return m
}

func TestRowIntoMatchesPairwise(t *testing.T) {
	m := rowEngineMatrix(11, 40, 25)
	targets := make([]int, m.Rows())
	for i := range targets {
		targets[i] = i
	}
	for _, p := range allKernels {
		ev := NewEvaluator(p, m)
		var scr Scratch
		dst := make([]float64, m.Rows())
		rng := make([]float64, m.Rows())
		for pi := 0; pi < m.Rows(); pi++ {
			pivot := m.RowView(pi)
			norm := SquaredNormOf(pivot)
			ev.RowInto(&scr, pivot, norm, targets, dst)
			ev.RowRangeInto(&scr, pivot, norm, 0, m.Rows(), rng)
			for _, i := range targets {
				want := ev.At(i, pi)
				if math.Abs(dst[i]-want) > 1e-12 {
					t.Fatalf("%v: RowInto pivot %d target %d = %v, want %v", p, pi, i, dst[i], want)
				}
				if dst[i] != rng[i] {
					t.Fatalf("%v: RowRangeInto disagrees with RowInto at (%d,%d)", p, pi, i)
				}
			}
		}
	}
}

func TestPairRowsIntoMatchesTwoRows(t *testing.T) {
	m := rowEngineMatrix(12, 30, 20)
	targets := make([]int, m.Rows())
	for i := range targets {
		targets[i] = i
	}
	for _, p := range allKernels {
		ev := NewEvaluator(p, m)
		var scr Scratch
		up, low := m.RowView(3), m.RowView(7)
		nu, nl := SquaredNormOf(up), SquaredNormOf(low)
		dstU := make([]float64, m.Rows())
		dstL := make([]float64, m.Rows())
		ev.PairRowsInto(&scr, up, low, nu, nl, targets, dstU, dstL)
		oneU := make([]float64, m.Rows())
		oneL := make([]float64, m.Rows())
		ev.RowInto(&scr, up, nu, targets, oneU)
		ev.RowInto(&scr, low, nl, targets, oneL)
		for _, i := range targets {
			if dstU[i] != oneU[i] || dstL[i] != oneL[i] {
				t.Fatalf("%v: fused pair disagrees with two row passes at target %d", p, i)
			}
			if want := ev.Cross(i, up, nu); math.Abs(dstU[i]-want) > 1e-12 {
				t.Fatalf("%v: PairRowsInto up target %d = %v, want %v", p, i, dstU[i], want)
			}
		}
	}
}

// An external pivot whose max column index exceeds the matrix's declared
// column count must still evaluate exactly (scratch grows to cover it).
func TestRowIntoWidePivot(t *testing.T) {
	m := rowEngineMatrix(13, 12, 10)
	pivot := sparse.Row{Idx: []int32{0, 4, 17}, Val: []float64{1.5, -2, 0.75}}
	norm := SquaredNormOf(pivot)
	targets := []int{0, 3, 5, 9, 11}
	for _, p := range allKernels {
		ev := NewEvaluator(p, m)
		var scr Scratch
		dst := make([]float64, len(targets))
		ev.RowInto(&scr, pivot, norm, targets, dst)
		for k, i := range targets {
			want := ev.Cross(i, pivot, norm)
			if math.Abs(dst[k]-want) > 1e-12 {
				t.Fatalf("%v: wide pivot target %d = %v, want %v", p, i, dst[k], want)
			}
		}
	}
}

// A target row whose max column index reaches past the scratch dimension
// (possible when the matrix understates Cols) must fall back to the exact
// two-pointer dot rather than read out of bounds.
func TestRowIntoTargetBeyondScratch(t *testing.T) {
	m := &sparse.Matrix{
		RowPtr: []int64{0, 2, 5},
		ColIdx: []int32{0, 2, 1, 2, 8},
		Val:    []float64{1, -1, 2, 0.5, 3},
		Cols:   3, // understated: row 1 reaches column 8
	}
	pivot := m.RowView(0)
	norm := SquaredNormOf(pivot)
	for _, p := range allKernels {
		ev := NewEvaluator(p, m)
		var scr Scratch
		dst := make([]float64, 2)
		ev.RowInto(&scr, pivot, norm, []int{0, 1}, dst)
		for i := 0; i < 2; i++ {
			want := ev.Cross(i, pivot, norm)
			if math.Abs(dst[i]-want) > 1e-12 {
				t.Fatalf("%v: overflow target %d = %v, want %v", p, i, dst[i], want)
			}
		}
	}
}

func TestDiagIntoMatchesAt(t *testing.T) {
	m := rowEngineMatrix(14, 20, 12)
	for _, p := range allKernels {
		ev := NewEvaluator(p, m)
		want := make([]float64, m.Rows())
		for i := range want {
			want[i] = ev.At(i, i)
		}
		got := make([]float64, m.Rows())
		ev.DiagInto(got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("%v: DiagInto[%d] = %v, want %v", p, i, got[i], want[i])
			}
		}
	}
}

func TestRowEngineEvalCounters(t *testing.T) {
	m := rowEngineMatrix(15, 16, 10)
	ev := NewEvaluator(Params{Type: Gaussian, Gamma: 0.5}, m)
	var scr Scratch
	targets := []int{0, 2, 4, 6}
	dst := make([]float64, len(targets))
	ev.RowInto(&scr, m.RowView(1), ev.Norm(1), targets, dst)
	if got := ev.Evals(); got != 4 {
		t.Fatalf("RowInto counted %d evals, want 4", got)
	}
	ev.ResetEvals()
	dst2 := make([]float64, len(targets))
	ev.PairRowsInto(&scr, m.RowView(1), m.RowView(2), ev.Norm(1), ev.Norm(2), targets, dst, dst2)
	if got := ev.Evals(); got != 8 {
		t.Fatalf("PairRowsInto counted %d evals, want 8", got)
	}
	ev.ResetEvals()
	diag := make([]float64, m.Rows())
	ev.DiagInto(diag)
	if got := ev.Evals(); got != uint64(m.Rows()) {
		t.Fatalf("DiagInto counted %d evals, want %d", got, m.Rows())
	}
}

func TestRowPoolMatchesSequential(t *testing.T) {
	m := rowEngineMatrix(16, 600, 40) // above minParallelTargets
	ev := NewEvaluator(Params{Type: Gaussian, Gamma: 0.3}, m)
	pool := NewRowPool(ev, 4)
	n := m.Rows()
	targets := make([]int, n)
	for i := range targets {
		targets[i] = i
	}
	pivotU, pivotL := m.RowView(5), m.RowView(9)
	nu, nl := ev.Norm(5), ev.Norm(9)

	var scr Scratch
	wantU := make([]float64, n)
	wantL := make([]float64, n)
	ev.RowInto(&scr, pivotU, nu, targets, wantU)
	ev.RowInto(&scr, pivotL, nl, targets, wantL)

	gotU := make([]float64, n)
	gotL := make([]float64, n)
	pool.RowInto(pivotU, nu, targets, gotU)
	for i := range wantU {
		if gotU[i] != wantU[i] {
			t.Fatalf("pool.RowInto[%d] = %v, want %v", i, gotU[i], wantU[i])
		}
	}
	if got := pool.Evals(); got != uint64(n) {
		t.Fatalf("pool counted %d evals, want %d", got, n)
	}
	pool.PairRowsInto(pivotU, pivotL, nu, nl, targets, gotU, gotL)
	for i := range wantU {
		if gotU[i] != wantU[i] || gotL[i] != wantL[i] {
			t.Fatalf("pool.PairRowsInto[%d] = (%v,%v), want (%v,%v)", i, gotU[i], gotL[i], wantU[i], wantL[i])
		}
	}
	pool.ResetEvals()
	if pool.Evals() != 0 {
		t.Fatal("ResetEvals did not zero pool counters")
	}
}

// Hammer the concurrent fill paths under -race: a row pool serving batches
// while independent workers run their own (SubEvaluator, Scratch) pairs
// over the same shared matrix.
func TestRowEngineConcurrentHammer(t *testing.T) {
	m := rowEngineMatrix(17, 400, 30)
	ev := NewEvaluator(Params{Type: Gaussian, Gamma: 0.4}, m)
	n := m.Rows()
	targets := make([]int, n)
	for i := range targets {
		targets[i] = i
	}
	var wg sync.WaitGroup
	pool := NewRowPool(ev.SubEvaluator(), 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		dstU := make([]float64, n)
		dstL := make([]float64, n)
		for rep := 0; rep < 20; rep++ {
			pool.RowInto(m.RowView(rep%n), ev.Norm(rep%n), targets, dstU)
			pool.PairRowsInto(m.RowView(rep%n), m.RowView((rep+1)%n),
				ev.Norm(rep%n), ev.Norm((rep+1)%n), targets, dstU, dstL)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sub := ev.SubEvaluator()
			var scr Scratch
			dst := make([]float64, n)
			for rep := 0; rep < 20; rep++ {
				pi := (g*31 + rep) % n
				sub.RowInto(&scr, m.RowView(pi), ev.Norm(pi), targets, dst)
				want := sub.At(pi, targets[rep%n])
				if math.Abs(dst[rep%n]-want) > 1e-12 {
					t.Errorf("worker %d rep %d: got %v, want %v", g, rep, dst[rep%n], want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPowiMatchesPow(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for rep := 0; rep < 1000; rep++ {
		base := rng.Float64() * 10
		deg := 1 + rng.Intn(12)
		got := powi(base, deg)
		want := math.Pow(base, float64(deg))
		tol := 1e-12 * math.Max(1, math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Fatalf("powi(%v, %d) = %v, want %v", base, deg, got, want)
		}
	}
}

// math.Pow is exact here too, but the regression pins the sign convention:
// negative bases raised to odd degrees stay negative, even degrees positive.
func TestPowiNegativeBase(t *testing.T) {
	cases := []struct {
		base float64
		deg  int
		want float64
	}{
		{-2, 2, 4},
		{-2, 3, -8},
		{-1.5, 4, 5.0625},
		{-1, 5, -1},
		{-3, 1, -3},
	}
	for _, c := range cases {
		if got := powi(c.base, c.deg); math.Abs(got-c.want) > 1e-12*math.Abs(c.want) {
			t.Fatalf("powi(%v, %d) = %v, want %v", c.base, c.deg, got, c.want)
		}
	}
	// Polynomial kernel end to end: gamma*dot+coef0 < 0 at odd degree.
	p := Params{Type: Polynomial, Gamma: 1, Coef0: -3, Degree: 3}
	a := sparse.Row{Idx: []int32{0}, Val: []float64{1}}
	b := sparse.Row{Idx: []int32{0}, Val: []float64{1}}
	if got, want := p.Eval(a, b, 0, 0), -8.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("polynomial Eval with negative base = %v, want %v", got, want)
	}
}

func TestLambdaBatched(t *testing.T) {
	m := randomMatrix(22, 100, 50, 0.2)
	ev := NewEvaluator(Params{Type: Gaussian, Gamma: 0.5}, m)
	l := ev.LambdaBatched(5 * time.Millisecond)
	if l <= 0 || l > 1e-3 {
		t.Fatalf("implausible batched lambda: %v", l)
	}
}

// benchMatrix mimics a sparse dataset slice for the row benchmarks.
func benchMatrix(b *testing.B, rows, cols int, density float64) *sparse.Matrix {
	b.Helper()
	return randomMatrix(77, rows, cols, density)
}

func BenchmarkRowPairwise(b *testing.B) {
	m := benchMatrix(b, 512, 300, 0.1)
	ev := NewEvaluator(Params{Type: Gaussian, Gamma: 0.1}, m)
	pivot := m.RowView(0)
	norm := ev.Norm(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < m.Rows(); j++ {
			_ = ev.Cross(j, pivot, norm)
		}
	}
}

func BenchmarkRowInto(b *testing.B) {
	m := benchMatrix(b, 512, 300, 0.1)
	ev := NewEvaluator(Params{Type: Gaussian, Gamma: 0.1}, m)
	pivot := m.RowView(0)
	norm := ev.Norm(0)
	var scr Scratch
	dst := make([]float64, m.Rows())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.RowRangeInto(&scr, pivot, norm, 0, m.Rows(), dst)
	}
}

func BenchmarkPairRowsInto(b *testing.B) {
	m := benchMatrix(b, 512, 300, 0.1)
	ev := NewEvaluator(Params{Type: Gaussian, Gamma: 0.1}, m)
	up, low := m.RowView(0), m.RowView(1)
	nu, nl := ev.Norm(0), ev.Norm(1)
	targets := make([]int, m.Rows())
	for i := range targets {
		targets[i] = i
	}
	var scr Scratch
	dstU := make([]float64, m.Rows())
	dstL := make([]float64, m.Rows())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.PairRowsInto(&scr, up, low, nu, nl, targets, dstU, dstL)
	}
}
