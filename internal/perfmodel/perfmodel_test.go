package perfmodel

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/mpi"
)

func testMachine() Machine {
	return Machine{Net: mpi.NetModel{Alpha: 1.5e-6, Beta: 1.0 / 6.8e9}, Lambda: 1e-7, RowBytes: RowBytes(30)}
}

// flatTrace builds a trace with constant active count and optional recon.
func flatTrace(n int, iters int64) *core.Trace {
	return &core.Trace{
		N: n, Iterations: iters, AvgNNZ: 30, Converged: true, SVCount: n / 10,
		Segments: []core.Segment{{FromIter: 0, Active: n}},
	}
}

func TestLogHelpers(t *testing.T) {
	cases := []struct{ p, ceil, floor int }{
		{1, 0, 0}, {2, 1, 1}, {3, 2, 1}, {4, 2, 2}, {5, 3, 2}, {8, 3, 3}, {9, 4, 3}, {4096, 12, 12},
	}
	for _, c := range cases {
		if got := log2Ceil(c.p); got != c.ceil {
			t.Errorf("log2Ceil(%d) = %d, want %d", c.p, got, c.ceil)
		}
		if got := log2Floor(c.p); got != c.floor {
			t.Errorf("log2Floor(%d) = %d, want %d", c.p, got, c.floor)
		}
	}
}

func TestCollectiveCostsScaleLogarithmically(t *testing.T) {
	net := mpi.NetModel{Alpha: 1e-6, Beta: 1e-9}
	if BcastCost(net, 1, 100) != 0 || AllreduceCost(net, 1, 8) != 0 || RingCost(net, 1, 100) != 0 {
		t.Fatal("p=1 collectives should be free")
	}
	b8, b64 := BcastCost(net, 8, 1000), BcastCost(net, 64, 1000)
	if math.Abs(b64/b8-2.0) > 1e-9 {
		t.Fatalf("bcast p64/p8 = %v, want 2 (log ratio)", b64/b8)
	}
	a16 := AllreduceCost(net, 16, 8)
	a17 := AllreduceCost(net, 17, 8)
	if a17 <= a16 {
		t.Fatal("non-power-of-two allreduce should cost extra rounds")
	}
	r := RingCost(net, 10, 1e6)
	want := 10*net.Alpha + 1e6*net.Beta
	if math.Abs(r-want) > 1e-15 {
		t.Fatalf("ring = %v, want %v", r, want)
	}
}

func TestEvaluateComputeDominatedScaling(t *testing.T) {
	// With a large active set and modest iteration count, doubling p
	// should nearly halve compute time.
	tr := flatTrace(100000, 1000)
	m := testMachine()
	b1, err := Evaluate(tr, 1, m)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := Evaluate(tr, 2, m)
	ratio := b1.Compute / b2.Compute
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("compute ratio p1/p2 = %v, want ~2", ratio)
	}
	if b1.PairComm != 0 || b1.ReduceComm != 0 {
		t.Fatal("p=1 should have no communication")
	}
}

func TestEvaluateEfficiencyRollsOff(t *testing.T) {
	// The paper's observation: with shrinking the active set decays, the
	// communication share grows with p, and parallel efficiency drops —
	// but on large datasets speedup keeps improving out to 4096 processes.
	// Use a HIGGS-scale trace (2.6M samples, 34M iterations).
	tr := &core.Trace{
		N: 2_600_000, Iterations: 34_000_000, AvgNNZ: 28, SVCount: 300_000,
		Segments: []core.Segment{
			{FromIter: 0, Active: 2_600_000},
			{FromIter: 2_000_000, Active: 800_000},
			{FromIter: 10_000_000, Active: 350_000},
		},
	}
	m := testMachine()
	var prevTotal, prevEff float64
	var prevComm float64 = -1
	for i, p := range []int{64, 256, 1024, 4096} {
		b, err := Evaluate(tr, p, m)
		if err != nil {
			t.Fatal(err)
		}
		total := b.Total()
		if i > 0 {
			if total >= prevTotal {
				t.Fatalf("no speedup at p=%d (total %v >= %v)", p, total, prevTotal)
			}
			eff := prevTotal / total / 4 // ideal would be 1
			if eff >= prevEff && prevEff > 0 {
				t.Fatalf("efficiency should decay: %v then %v", prevEff, eff)
			}
			prevEff = eff
		} else {
			prevEff = 1
		}
		if cf := b.CommFraction(); cf <= prevComm {
			t.Fatalf("communication fraction should grow with p: %v then %v", prevComm, cf)
		} else {
			prevComm = cf
		}
		prevTotal = total
	}
}

func TestReconFractionDecreasesWithScale(t *testing.T) {
	// Figure 8: the ratio of reconstruction time to total decreases with
	// increasing process count because reconstruction is O(N^2/p) against
	// the iterative part's larger aggregate, and at large p the iterative
	// part's fixed communication dominates.
	// URL-scale trace: 2.3M samples with heavy shrinking.
	tr := &core.Trace{
		N: 2_300_000, Iterations: 20_000_000, AvgNNZ: 60, SVCount: 120_000,
		Segments: []core.Segment{
			{FromIter: 0, Active: 2_300_000},
			{FromIter: 500_000, Active: 500_000},
		},
		Recons: []core.ReconEvent{{Iter: 15_000_000, Shrunk: 1_800_000, SVs: 120_000}},
	}
	m := testMachine()
	var prev float64 = math.Inf(1)
	for _, p := range []int{64, 256, 1024, 4096} {
		b, err := Evaluate(tr, p, m)
		if err != nil {
			t.Fatal(err)
		}
		f := b.ReconFraction()
		if f <= 0 || f >= 1 {
			t.Fatalf("p=%d: recon fraction %v out of (0,1)", p, f)
		}
		if f > prev {
			t.Fatalf("recon fraction grew with scale: %v after %v", f, prev)
		}
		prev = f
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, 4, testMachine()); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := Evaluate(flatTrace(10, 5), 0, testMachine()); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := Evaluate(&core.Trace{}, 4, testMachine()); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestSweepAndPowersOfTwo(t *testing.T) {
	ps := PowersOfTwo(16, 256)
	want := []int{16, 32, 64, 128, 256}
	if len(ps) != len(want) {
		t.Fatalf("PowersOfTwo = %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("PowersOfTwo = %v", ps)
		}
	}
	bs, err := Sweep(flatTrace(10000, 100), ps, testMachine())
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != len(ps) {
		t.Fatalf("sweep returned %d entries", len(bs))
	}
}

// TestModelMatchesExecutedVirtualTime cross-checks the analytic model
// against the mpi runtime's virtual clocks on a real (small) training run:
// same lambda, same network constants, so the totals should agree within a
// modest factor (the runtime schedule overlaps communication with compute,
// the analytic model adds them).
func TestModelMatchesExecutedVirtualTime(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.2)
	m := Machine{Net: mpi.NetModel{Alpha: 1e-5, Beta: 1e-8}, Lambda: 1e-6, RowBytes: RowBytes(ds.X.AvgRowNNZ())}
	cfg := core.Config{
		Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-3,
		Heuristic: core.Multi5pc, RecordTrace: true, Lambda: m.Lambda,
	}
	const p = 4
	_, st, executed, err := core.TrainParallelTimed(ds.X, ds.Y, p, cfg, m.Net)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(st.Trace, p, m)
	if err != nil {
		t.Fatal(err)
	}
	modeled := b.Total()
	if modeled <= 0 || executed <= 0 {
		t.Fatalf("non-positive times: model %v, executed %v", modeled, executed)
	}
	ratio := modeled / executed
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("model/executed = %v (model %v, executed %v); want within [0.4, 2.5]",
			ratio, modeled, executed)
	}
}

func TestCalibrate(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.1)
	m := Calibrate(kernel.FromSigma2(ds.Sigma2), ds.X, 5*time.Millisecond)
	if m.Lambda <= 0 || m.Lambda > 1e-3 {
		t.Fatalf("implausible lambda %v", m.Lambda)
	}
	if m.Net.Alpha != mpi.FDR().Alpha {
		t.Fatal("Calibrate should use FDR constants")
	}
	if m.RowBytes < 16 {
		t.Fatalf("RowBytes = %v", m.RowBytes)
	}
}
