// Package perfmodel evaluates the cost of a recorded training run
// (core.Trace) on a modeled cluster for an arbitrary process count.
//
// This is the substitution for the paper's 4096-core PNNL Cascade testbed:
// since the distributed solver computes the same iterate sequence for any
// p (verified by the core package's tests), the only thing p changes is
// who computes what and what gets communicated — which this package
// evaluates analytically from the trace, using the same Hockney alpha-beta
// constants as the runtime clock in internal/mpi and a per-kernel-eval
// compute cost lambda calibrated on the host. The absolute numbers are
// machine-dependent by construction; the scaling *shape* (the content of
// Figures 3-8) is what the model reproduces.
//
// Cost formulas mirror the collective algorithms in internal/mpi:
//
//	Bcast (binomial):          ceil(log2 p) * (alpha + n*beta)
//	Allreduce (rec. doubling): (floor(log2 p) + 2*[p not power of 2]) * (alpha + n*beta)
//	Reconstruction ring:       p * alpha + totalBytes * beta  (bandwidth bound,
//	                           as in the paper's Section IV-B2 analysis)
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mpi"
	"repro/internal/sparse"
	"time"
)

// Machine models one cluster configuration: the interconnect and the
// per-kernel-evaluation compute cost for a particular dataset.
type Machine struct {
	Net mpi.NetModel
	// Lambda is the paper's symbol for the average time of one kernel
	// evaluation on this dataset, seconds.
	Lambda float64
	// RowBytes is the average wire size of one CSR sample row
	// (12 bytes per stored entry + row metadata).
	RowBytes float64
}

// Cascade returns a Machine with the paper's testbed interconnect
// (InfiniBand FDR) and the given calibrated compute parameters.
func Cascade(lambda, avgNNZ float64) Machine {
	return Machine{Net: mpi.FDR(), Lambda: lambda, RowBytes: RowBytes(avgNNZ)}
}

// RowBytes converts an average row length into wire bytes: 4 bytes of
// column index and 8 bytes of value per entry, plus 16 bytes of metadata.
func RowBytes(avgNNZ float64) float64 { return 12*avgNNZ + 16 }

// Calibrate measures lambda for a dataset on the current host and returns
// the Cascade-interconnect machine for it. budget bounds measurement time.
// Lambda is measured through the batched dense-scratch row path — the path
// every solver hot loop executes — so projections track the real
// per-evaluation cost; Evaluator.Lambda remains available for the legacy
// pairwise estimate (the kernelrow ablation).
func Calibrate(params kernel.Params, x *sparse.Matrix, budget time.Duration) Machine {
	ev := kernel.NewEvaluator(params, x)
	return Cascade(ev.LambdaBatched(budget), x.AvgRowNNZ())
}

// log2Ceil returns ceil(log2 p) for p >= 1.
func log2Ceil(p int) int {
	n := 0
	for v := p - 1; v > 0; v >>= 1 {
		n++
	}
	return n
}

// log2Floor returns floor(log2 p) for p >= 1.
func log2Floor(p int) int {
	n := -1
	for v := p; v > 0; v >>= 1 {
		n++
	}
	return n
}

// BcastCost models the binomial-tree broadcast of n bytes over p ranks.
func BcastCost(net mpi.NetModel, p int, bytes float64) float64 {
	if p <= 1 {
		return 0
	}
	return float64(log2Ceil(p)) * (net.Alpha + bytes*net.Beta)
}

// AllreduceCost models recursive doubling over p ranks with the extra
// fold/unfold rounds for non-powers of two.
func AllreduceCost(net mpi.NetModel, p int, bytes float64) float64 {
	if p <= 1 {
		return 0
	}
	rounds := log2Floor(p)
	if p&(p-1) != 0 {
		rounds += 2
	}
	return float64(rounds) * (net.Alpha + bytes*net.Beta)
}

// RingCost models the Algorithm 3 ring exchange: p latency-bound steps plus
// the bandwidth term for moving totalBytes once around the ring
// (Theta(|X - A'| * G) in the paper's notation).
func RingCost(net mpi.NetModel, p int, totalBytes float64) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p)*net.Alpha + totalBytes*net.Beta
}

// Breakdown is the modeled cost of a run at one process count.
type Breakdown struct {
	P int
	// Compute is gradient-update and pair kernel time on the critical path.
	Compute float64
	// PairComm is routing x_up/x_low through rank 0 plus their broadcast.
	PairComm float64
	// ReduceComm is the per-iteration beta Allreduce pair plus the
	// shrink-threshold Allreduce at shrink events.
	ReduceComm float64
	// ReconCompute / ReconComm split the Algorithm 3 cost.
	ReconCompute float64
	ReconComm    float64
}

// Total returns the modeled wall time in seconds.
func (b Breakdown) Total() float64 {
	return b.Compute + b.PairComm + b.ReduceComm + b.ReconCompute + b.ReconComm
}

// ReconFraction is the Figure 8 quantity: the share of total time spent in
// gradient reconstruction.
func (b Breakdown) ReconFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return (b.ReconCompute + b.ReconComm) / t
}

// CommFraction returns the share of total time spent communicating.
func (b Breakdown) CommFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return (b.PairComm + b.ReduceComm + b.ReconComm) / t
}

// Evaluate models a recorded run on p processes of machine m.
func Evaluate(tr *core.Trace, p int, m Machine) (Breakdown, error) {
	if p < 1 {
		return Breakdown{}, fmt.Errorf("perfmodel: p must be >= 1, got %d", p)
	}
	if tr == nil || tr.N == 0 || len(tr.Segments) == 0 {
		return Breakdown{}, fmt.Errorf("perfmodel: empty trace")
	}
	b := Breakdown{P: p}

	// Routing x_up/x_low through rank 0 (one pt2pt each) plus the
	// broadcast; both vanish at p=1.
	perIterPair := 0.0
	if p > 1 {
		perIterPair = 2 * (m.Net.Alpha + m.RowBytes*m.Net.Beta + BcastCost(m.Net, p, m.RowBytes))
	}
	// Two ValLoc Allreduces per iteration for beta_up/beta_low; the
	// second-order selection rule adds a third for the gain MAXLOC.
	reduces := 2.0
	if tr.WSS == "second-order" {
		reduces = 3
	}
	perIterReduce := reduces * AllreduceCost(m.Net, p, 16)

	for si, s := range tr.Segments {
		end := tr.Iterations
		if si+1 < len(tr.Segments) {
			end = tr.Segments[si+1].FromIter
		}
		iters := float64(end - s.FromIter)
		if iters <= 0 {
			continue
		}
		perRank := math.Ceil(float64(s.Active) / float64(p))
		b.Compute += iters * m.Lambda * (3 + 2*perRank)
		b.PairComm += iters * perIterPair
		b.ReduceComm += iters * perIterReduce
	}

	// Shrink checks each add one scalar Allreduce (the subsequent
	// threshold). Traces that predate check counting fall back to the
	// segment count.
	checks := float64(tr.ShrinkChecks)
	if checks == 0 {
		checks = float64(len(tr.Segments) - 1 - len(tr.Recons))
	}
	if checks > 0 {
		b.ReduceComm += checks * AllreduceCost(m.Net, p, 8)
	}

	for _, r := range tr.Recons {
		perRankTargets := math.Ceil(float64(r.Shrunk) / float64(p))
		b.ReconCompute += m.Lambda * perRankTargets * float64(r.SVs)
		b.ReconComm += RingCost(m.Net, p, float64(r.SVs)*m.RowBytes)
		b.ReconComm += 2 * AllreduceCost(m.Net, p, 8)
	}
	return b, nil
}

// EvaluateBaseline models the libsvm-enhanced baseline (a W-thread
// shared-memory SMO) running the recorded schedule: per iteration the pair
// kernels (3 evaluations) plus the gradient update over the active set
// split across W threads, plus any gradient reconstructions. No kernel
// cache is credited: at full dataset size the Theta(N^2) kernel matrix
// dwarfs a node's memory and the hit probability collapses — the paper's
// Section III-A2 argument — so the uncached cost is the faithful model at
// the sizes the figures are drawn for.
func EvaluateBaseline(tr *core.Trace, workers int, m Machine) (float64, error) {
	if workers < 1 {
		return 0, fmt.Errorf("perfmodel: workers must be >= 1, got %d", workers)
	}
	if tr == nil || tr.N == 0 || len(tr.Segments) == 0 {
		return 0, fmt.Errorf("perfmodel: empty trace")
	}
	var total float64
	tr.EachSegment(func(active int, iters int64) {
		perIter := 3 + 2*math.Ceil(float64(active)/float64(workers))
		total += float64(iters) * m.Lambda * perIter
	})
	for _, r := range tr.Recons {
		total += m.Lambda * math.Ceil(float64(r.Shrunk)/float64(workers)) * float64(r.SVs)
	}
	return total, nil
}

// Sweep evaluates the trace over a set of process counts.
func Sweep(tr *core.Trace, ps []int, m Machine) ([]Breakdown, error) {
	out := make([]Breakdown, 0, len(ps))
	for _, p := range ps {
		b, err := Evaluate(tr, p, m)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// PowersOfTwo returns {from, 2*from, ..., to} (both must be powers of two).
func PowersOfTwo(from, to int) []int {
	var out []int
	for p := from; p <= to; p *= 2 {
		out = append(out, p)
	}
	return out
}
