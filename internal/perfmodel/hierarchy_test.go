package perfmodel

import (
	"testing"

	"repro/internal/trace"
)

func nodeTrace() *trace.Trace {
	return &trace.Trace{
		N: 500000, Iterations: 1000000, AvgNNZ: 30, SVCount: 50000,
		Segments: []trace.Segment{
			{FromIter: 0, Active: 500000},
			{FromIter: 200000, Active: 120000},
		},
	}
}

func TestCascadeNodesDefaults(t *testing.T) {
	nm := CascadeNodes(1e-7, 30)
	if nm.PerNode != 16 {
		t.Fatalf("PerNode = %d", nm.PerNode)
	}
	if nm.Intra.Alpha >= nm.Inter.Alpha {
		t.Fatal("intra-node latency should be below inter-node")
	}
	if nm.Nodes(4096) != 256 {
		t.Fatalf("Nodes(4096) = %d, want 256 (the paper's 256 compute nodes)", nm.Nodes(4096))
	}
	if nm.Nodes(17) != 2 || nm.Nodes(16) != 1 || nm.Nodes(1) != 1 {
		t.Fatal("node rounding wrong")
	}
}

func TestHierarchicalCheaperThanFlat(t *testing.T) {
	// With part of the collective rounds on shared memory, communication
	// must cost less than the flat all-InfiniBand model, and never less
	// than a hypothetical all-shared-memory machine.
	nm := CascadeNodes(1e-7, 30)
	tr := nodeTrace()
	for _, p := range []int{32, 256, 4096} {
		flatInter := Machine{Net: nm.Inter, Lambda: nm.Lambda, RowBytes: nm.RowBytes}
		flatIntra := Machine{Net: nm.Intra, Lambda: nm.Lambda, RowBytes: nm.RowBytes}
		bInter, err := Evaluate(tr, p, flatInter)
		if err != nil {
			t.Fatal(err)
		}
		bIntra, err := Evaluate(tr, p, flatIntra)
		if err != nil {
			t.Fatal(err)
		}
		bNode, err := nm.Evaluate(tr, p)
		if err != nil {
			t.Fatal(err)
		}
		commNode := bNode.PairComm + bNode.ReduceComm
		commInter := bInter.PairComm + bInter.ReduceComm
		commIntra := bIntra.PairComm + bIntra.ReduceComm
		if commNode >= commInter {
			t.Fatalf("p=%d: hierarchical comm %v not below flat inter %v", p, commNode, commInter)
		}
		if commNode <= commIntra {
			t.Fatalf("p=%d: hierarchical comm %v not above flat intra %v", p, commNode, commIntra)
		}
		// Compute time is identical across machines.
		if bNode.Compute != bInter.Compute {
			t.Fatalf("compute changed: %v vs %v", bNode.Compute, bInter.Compute)
		}
	}
}

func TestHierarchySingleNodeUsesIntraOnly(t *testing.T) {
	nm := CascadeNodes(1e-7, 30)
	m, err := nm.flatten(16) // exactly one node
	if err != nil {
		t.Fatal(err)
	}
	if m.Net != nm.Intra {
		t.Fatalf("one-node job should see pure intra constants, got %+v", m.Net)
	}
}

func TestHierarchyValidation(t *testing.T) {
	nm := CascadeNodes(1e-7, 30)
	nm.PerNode = 0
	if _, err := nm.Evaluate(nodeTrace(), 4); err == nil {
		t.Fatal("PerNode=0 accepted")
	}
	nm = CascadeNodes(1e-7, 30)
	if _, err := nm.Evaluate(nodeTrace(), 0); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestHierarchySingleProcessFree(t *testing.T) {
	nm := CascadeNodes(1e-7, 30)
	b, err := nm.Evaluate(nodeTrace(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.PairComm != 0 || b.ReduceComm != 0 {
		t.Fatalf("p=1 should have no communication: %+v", b)
	}
}
