package perfmodel

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/trace"
)

// NodeMachine is a two-level cluster model: the paper's testbed packs 16
// processes per Cascade node, so a p-process job talks over shared memory
// within a node and over InfiniBand between nodes. Collectives then cost
// roughly log2(perNode) intra-node rounds plus log2(nodes) inter-node
// rounds — the flat Machine model charges the full log2(p) at the slower
// inter-node constants, overstating communication by up to the ratio of
// the two latencies.
type NodeMachine struct {
	Inter    mpi.NetModel // between nodes (e.g. InfiniBand FDR)
	Intra    mpi.NetModel // within a node (shared memory)
	PerNode  int          // processes per node (the paper uses 16)
	Lambda   float64      // seconds per kernel evaluation
	RowBytes float64
}

// CascadeNodes models the paper's testbed: FDR between nodes, a ~200ns /
// 40 GB/s shared-memory fabric within one, 16 processes per node.
func CascadeNodes(lambda, avgNNZ float64) NodeMachine {
	return NodeMachine{
		Inter:    mpi.FDR(),
		Intra:    mpi.NetModel{Alpha: 2e-7, Beta: 1.0 / 40e9},
		PerNode:  16,
		Lambda:   lambda,
		RowBytes: RowBytes(avgNNZ),
	}
}

// flatten converts the hierarchical model into an effective flat Machine
// for a given total process count: collective rounds split into
// log2(perNode) intra rounds and log2(nodes) inter rounds, so the
// effective per-round cost is the round-weighted mix. This keeps the
// closed-form Evaluate usable while capturing the hierarchy's first-order
// effect.
func (nm NodeMachine) flatten(p int) (Machine, error) {
	if nm.PerNode < 1 {
		return Machine{}, fmt.Errorf("perfmodel: PerNode must be >= 1, got %d", nm.PerNode)
	}
	if p < 1 {
		return Machine{}, fmt.Errorf("perfmodel: p must be >= 1, got %d", p)
	}
	within := p
	if within > nm.PerNode {
		within = nm.PerNode
	}
	nodes := (p + nm.PerNode - 1) / nm.PerNode
	intraRounds := log2Ceil(within)
	interRounds := log2Ceil(nodes)
	total := intraRounds + interRounds
	if total == 0 {
		// Single process: communication-free; constants are irrelevant.
		return Machine{Net: nm.Intra, Lambda: nm.Lambda, RowBytes: nm.RowBytes}, nil
	}
	wIntra := float64(intraRounds) / float64(total)
	wInter := float64(interRounds) / float64(total)
	eff := mpi.NetModel{
		Alpha: wIntra*nm.Intra.Alpha + wInter*nm.Inter.Alpha,
		Beta:  wIntra*nm.Intra.Beta + wInter*nm.Inter.Beta,
	}
	return Machine{Net: eff, Lambda: nm.Lambda, RowBytes: nm.RowBytes}, nil
}

// Evaluate models a recorded run on p processes of the two-level machine.
func (nm NodeMachine) Evaluate(tr *trace.Trace, p int) (Breakdown, error) {
	m, err := nm.flatten(p)
	if err != nil {
		return Breakdown{}, err
	}
	return Evaluate(tr, p, m)
}

// Nodes returns the node count for p processes.
func (nm NodeMachine) Nodes(p int) int {
	if nm.PerNode < 1 {
		return p
	}
	return (p + nm.PerNode - 1) / nm.PerNode
}
