package trace

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadRejectsMalformedInput(t *testing.T) {
	cases := map[string]string{
		"invalid json":     "{not json",
		"empty input":      "",
		"wrong type":       `{"n": "three", "segments": [{"from":0,"active":3}]}`,
		"missing n":        `{"segments": [{"from":0,"active":3}]}`,
		"zero n":           `{"n": 0, "segments": [{"from":0,"active":0}]}`,
		"negative n":       `{"n": -5, "segments": [{"from":0,"active":5}]}`,
		"missing segments": `{"n": 100}`,
		"empty segments":   `{"n": 100, "segments": []}`,
	}
	for name, input := range cases {
		if _, err := Load(strings.NewReader(input)); err == nil {
			t.Errorf("%s: Load accepted %q", name, input)
		}
	}
}

func TestLoadWriteJSONRoundTrip(t *testing.T) {
	tr := New("blobs", "Multi5pc", 1000, 12.5, 1e-3)
	tr.SetActive(50, 400)
	tr.AddRecon(90, 600, 120)
	tr.Iterations = 200
	tr.Converged = true
	tr.SVCount = 150

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != tr.N || got.Iterations != tr.Iterations || got.SVCount != tr.SVCount ||
		len(got.Segments) != len(tr.Segments) || len(got.Recons) != len(tr.Recons) {
		t.Fatalf("round trip changed the trace:\ngot  %+v\nwant %+v", got, tr)
	}
}

// failingWriter fails after a few bytes, exercising WriteJSON's error path.
type failingWriter struct{ budget int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, errors.New("synthetic write failure")
	}
	w.budget -= len(p)
	return len(p), nil
}

func TestWriteJSONPropagatesWriterError(t *testing.T) {
	tr := New("blobs", "Original", 10, 1, 1e-3)
	if err := tr.WriteJSON(&failingWriter{budget: 4}); err == nil {
		t.Fatal("WriteJSON swallowed the writer's error")
	}
}

func TestSaveJSONPropagatesCreateError(t *testing.T) {
	tr := New("blobs", "Original", 10, 1, 1e-3)
	// A path whose parent does not exist cannot be created.
	bad := filepath.Join(t.TempDir(), "missing-dir", "trace.json")
	if err := tr.SaveJSON(bad); err == nil {
		t.Fatal("SaveJSON succeeded on an uncreatable path")
	}
}

func TestScaledUpZeroAndNegativeFactor(t *testing.T) {
	tr := New("blobs", "Original", 100, 1, 1e-3)
	tr.Iterations = 50
	tr.SetActive(10, 40)
	for _, factor := range []float64{0, -3} {
		got := tr.ScaledUp(factor)
		if got.N != tr.N || got.Iterations != tr.Iterations {
			t.Fatalf("factor %v: scaled to N=%d iters=%d, want identity (N=%d iters=%d)",
				factor, got.N, got.Iterations, tr.N, tr.Iterations)
		}
		if len(got.Segments) != len(tr.Segments) || got.Segments[1].Active != 40 {
			t.Fatalf("factor %v: segments not preserved: %+v", factor, got.Segments)
		}
	}
}

func TestScaledUpEmptyTrace(t *testing.T) {
	// A freshly-created trace has one segment and no recons; scaling must
	// not invent events or divide by zero.
	tr := New("", "Original", 10, 0, 1e-3)
	got := tr.ScaledUp(3)
	if got.N != 30 || got.Iterations != 0 {
		t.Fatalf("scaled empty trace to N=%d iters=%d, want N=30 iters=0", got.N, got.Iterations)
	}
	if len(got.Recons) != 0 {
		t.Fatalf("scaling invented %d reconstruction events", len(got.Recons))
	}
	if got.MeanActiveFraction() != 0 {
		t.Fatalf("mean active fraction of a zero-iteration trace = %v, want 0", got.MeanActiveFraction())
	}
}

func TestScaledUpScalesBothAxes(t *testing.T) {
	tr := New("blobs", "Original", 100, 1, 1e-3)
	tr.Iterations = 1000
	tr.SetActive(100, 20)
	tr.AddRecon(500, 80, 30)
	got := tr.ScaledUp(2.5)
	if got.N != 250 || got.Iterations != 2500 {
		t.Fatalf("populations/iterations scaled to N=%d iters=%d, want 250/2500", got.N, got.Iterations)
	}
	if got.Segments[1].FromIter != 250 || got.Segments[1].Active != 50 {
		t.Fatalf("segment scaled to %+v, want {250 50}", got.Segments[1])
	}
	if got.Recons[0].Iter != 1250 || got.Recons[0].Shrunk != 200 || got.Recons[0].SVs != 75 {
		t.Fatalf("recon scaled to %+v, want {1250 200 75}", got.Recons[0])
	}
	// Scaling both axes preserves the iteration-weighted active fraction.
	if a, b := tr.MeanActiveFraction(), got.MeanActiveFraction(); math.Abs(a-b) > 0.02 {
		t.Fatalf("mean active fraction drifted: %v -> %v", a, b)
	}
}
