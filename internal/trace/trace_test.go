package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	t := New("demo", "Multi5pc", 1000, 30, 1e-3)
	t.SetActive(100, 600)
	t.SetActive(400, 250)
	t.AddRecon(800, 750, 120)
	t.SetActive(900, 200)
	t.Iterations = 1000
	t.Converged = true
	t.SVCount = 150
	t.ShrinkChecks = 5
	return t
}

func TestNewAndSegments(t *testing.T) {
	tr := New("d", "h", 500, 10, 1e-3)
	if len(tr.Segments) != 1 || tr.Segments[0].Active != 500 || tr.Segments[0].FromIter != 0 {
		t.Fatalf("initial segments = %+v", tr.Segments)
	}
}

func TestSetActiveDedup(t *testing.T) {
	tr := New("d", "h", 500, 10, 1e-3)
	tr.SetActive(10, 500) // no change: no new segment
	if len(tr.Segments) != 1 {
		t.Fatalf("unchanged active added a segment: %+v", tr.Segments)
	}
	tr.SetActive(10, 300)
	tr.SetActive(10, 200) // same iteration: overwrite, not append
	if len(tr.Segments) != 2 || tr.Segments[1].Active != 200 {
		t.Fatalf("segments = %+v", tr.Segments)
	}
}

func TestActiveAt(t *testing.T) {
	tr := sampleTrace()
	cases := []struct {
		iter int64
		want int
	}{
		{0, 1000}, {99, 1000}, {100, 600}, {399, 600},
		{400, 250}, {799, 250}, {800, 1000}, {899, 1000}, {950, 200},
	}
	for _, tc := range cases {
		if got := tr.ActiveAt(tc.iter); got != tc.want {
			t.Errorf("ActiveAt(%d) = %d, want %d", tc.iter, got, tc.want)
		}
	}
}

func TestAddReconResetsActive(t *testing.T) {
	tr := sampleTrace()
	if len(tr.Recons) != 1 || tr.Recons[0].Shrunk != 750 || tr.Recons[0].SVs != 120 {
		t.Fatalf("recons = %+v", tr.Recons)
	}
	if tr.ActiveAt(800) != tr.N {
		t.Fatal("recon did not re-admit all samples")
	}
}

func TestEachSegmentAndMeanActive(t *testing.T) {
	tr := sampleTrace()
	var total int64
	var weighted float64
	tr.EachSegment(func(active int, iters int64) {
		total += iters
		weighted += float64(active) * float64(iters)
	})
	if total != tr.Iterations {
		t.Fatalf("segments cover %d iterations, want %d", total, tr.Iterations)
	}
	want := weighted / float64(tr.Iterations) / float64(tr.N)
	if got := tr.MeanActiveFraction(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("MeanActiveFraction = %v, want %v", got, want)
	}
	if got := tr.MeanActiveFraction(); got <= 0 || got > 1 {
		t.Fatalf("mean active out of range: %v", got)
	}
}

func TestScaledUp(t *testing.T) {
	tr := sampleTrace()
	up := tr.ScaledUp(10)
	if up.N != 10000 || up.SVCount != 1500 || up.ShrinkChecks != 50 {
		t.Fatalf("scaled header: %+v", up)
	}
	if up.Iterations != 10000 {
		t.Fatalf("iterations = %d, want 10000", up.Iterations)
	}
	if up.Segments[1].FromIter != 1000 || up.Segments[1].Active != 6000 {
		t.Fatalf("segment 1 = %+v", up.Segments[1])
	}
	if up.Recons[0].Iter != 8000 || up.Recons[0].Shrunk != 7500 || up.Recons[0].SVs != 1200 {
		t.Fatalf("recon = %+v", up.Recons[0])
	}
	// Mean active fraction is scale-invariant.
	if math.Abs(up.MeanActiveFraction()-tr.MeanActiveFraction()) > 1e-12 {
		t.Fatalf("mean active changed: %v vs %v", up.MeanActiveFraction(), tr.MeanActiveFraction())
	}
	// Factor <= 0 means identity.
	if id := tr.ScaledUp(0); id.N != tr.N {
		t.Fatal("ScaledUp(0) should be identity")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != tr.N || back.Iterations != tr.Iterations || back.Heuristic != tr.Heuristic {
		t.Fatalf("round trip header: %+v", back)
	}
	if len(back.Segments) != len(tr.Segments) || len(back.Recons) != len(tr.Recons) {
		t.Fatal("round trip lost events")
	}
	if back.ShrinkChecks != tr.ShrinkChecks {
		t.Fatal("round trip lost check count")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := Load(strings.NewReader(`{"n": 0}`)); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestSaveJSON(t *testing.T) {
	tr := sampleTrace()
	path := t.TempDir() + "/t.json"
	if err := tr.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	// Re-load via file contents.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil || back.N != tr.N {
		t.Fatalf("reload failed: %v", err)
	}
}

// Property: random event sequences keep segments strictly ordered with
// active counts in [0, N], and EachSegment always covers Iterations.
func TestTraceInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(1000)
		tr := New("q", "h", n, 10, 1e-3)
		iter := int64(0)
		active := n
		for e := 0; e < 20; e++ {
			iter += int64(1 + rng.Intn(50))
			if rng.Float64() < 0.2 {
				tr.AddRecon(iter, n-active, rng.Intn(n))
				active = n
			} else {
				active = rng.Intn(active + 1)
				tr.SetActive(iter, active)
			}
		}
		tr.Iterations = iter + int64(rng.Intn(100))
		last := int64(-1)
		for _, s := range tr.Segments {
			if s.FromIter <= last || s.Active < 0 || s.Active > n {
				return false
			}
			last = s.FromIter
		}
		var covered int64
		tr.EachSegment(func(_ int, iters int64) { covered += iters })
		return covered == tr.Iterations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
