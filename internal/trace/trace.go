// Package trace records what a training run did, independent of the
// process count it ran on: how many iterations, how the global active-set
// size evolved (it changes only at shrink and reconstruction events), and
// the size of each gradient reconstruction.
//
// Both solvers emit traces — the distributed solver (internal/core) and
// the libsvm-enhanced baseline (internal/smo) — and internal/perfmodel
// replays them under a machine model. Because the distributed solver's
// iterate sequence is identical for every p (pair-selection ties break on
// global index and all reductions are exact; verified by core's tests),
// one recorded trace lets the model evaluate the run's cost at any process
// count: this is how the paper's 4096-process figures are reproduced
// without a 4096-core machine.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Trace is the recorded schedule of one training run.
type Trace struct {
	Dataset    string  `json:"dataset,omitempty"`
	Heuristic  string  `json:"heuristic"`
	N          int     `json:"n"`       // global training samples
	AvgNNZ     float64 `json:"avg_nnz"` // average sample length (the paper's m)
	Eps        float64 `json:"eps"`
	Iterations int64   `json:"iterations"`
	Converged  bool    `json:"converged"`
	SVCount    int     `json:"sv_count"`
	// ShrinkChecks counts shrink checks performed, including those that
	// eliminated nothing; each costs one scalar Allreduce.
	ShrinkChecks int `json:"shrink_checks,omitempty"`
	// WSS names the working-set selection rule ("" or "first-order" for
	// the maximal violating pair; "second-order" adds one Allreduce per
	// iteration to the modeled cost).
	WSS string `json:"wss,omitempty"`

	// Segments give the global active-set size from FromIter (inclusive)
	// until the next segment. The first segment is {0, N}.
	Segments []Segment `json:"segments"`
	// Recons lists the gradient reconstructions (Algorithm 3 calls).
	Recons []ReconEvent `json:"recons"`
}

// Segment is a run of iterations with a constant global active-set size.
type Segment struct {
	FromIter int64 `json:"from"`
	Active   int   `json:"active"`
}

// ReconEvent records one gradient reconstruction.
type ReconEvent struct {
	Iter   int64 `json:"iter"`
	Shrunk int   `json:"shrunk"` // samples whose gradient was rebuilt
	SVs    int   `json:"svs"`    // samples with alpha > 0 at that moment
}

// New starts a trace for n samples.
func New(dataset, heuristic string, n int, avgNNZ, eps float64) *Trace {
	return &Trace{
		Dataset:   dataset,
		Heuristic: heuristic,
		N:         n,
		AvgNNZ:    avgNNZ,
		Eps:       eps,
		Segments:  []Segment{{FromIter: 0, Active: n}},
	}
}

// SetActive appends a segment if the active count changed.
func (t *Trace) SetActive(iter int64, active int) {
	last := t.Segments[len(t.Segments)-1]
	if last.Active == active {
		return
	}
	if last.FromIter == iter {
		t.Segments[len(t.Segments)-1].Active = active
		return
	}
	t.Segments = append(t.Segments, Segment{FromIter: iter, Active: active})
}

// AddRecon records a reconstruction and the implied return to a full
// active set.
func (t *Trace) AddRecon(iter int64, shrunk, svs int) {
	t.Recons = append(t.Recons, ReconEvent{Iter: iter, Shrunk: shrunk, SVs: svs})
	t.SetActive(iter, t.N)
}

// ActiveAt returns the global active-set size at the given iteration.
func (t *Trace) ActiveAt(iter int64) int {
	active := t.N
	for _, s := range t.Segments {
		if s.FromIter > iter {
			break
		}
		active = s.Active
	}
	return active
}

// EachSegment calls fn with every (active, iterations) run of the trace.
func (t *Trace) EachSegment(fn func(active int, iters int64)) {
	for si, s := range t.Segments {
		end := t.Iterations
		if si+1 < len(t.Segments) {
			end = t.Segments[si+1].FromIter
		}
		if end > s.FromIter {
			fn(s.Active, end-s.FromIter)
		}
	}
}

// MeanActiveFraction is the iteration-weighted mean of active/N — the
// quantity behind the paper's observation that for MNIST "for 75% of the
// iterations, the active set is a fraction (20%) of the samples".
func (t *Trace) MeanActiveFraction() float64 {
	if t.Iterations == 0 || t.N == 0 {
		return 0
	}
	var weighted float64
	t.EachSegment(func(active int, iters int64) {
		weighted += float64(iters) * float64(active)
	})
	return weighted / (float64(t.Iterations) * float64(t.N))
}

// ScaledUp returns a copy of the trace with every population count (N,
// per-segment active sizes, reconstruction sizes, SV count) AND the
// iteration axis multiplied by factor.
//
// This is the workload-extrapolation step of the reproduction methodology:
// experiments train a scaled-down synthetic dataset, then evaluate the
// schedule at the published dataset size. Scaling populations alone would
// misstate the balance between the iterative part (linear in N per
// iteration) and gradient reconstruction (quadratic in N per event);
// scaling the iteration axis by the same factor keeps that balance at its
// measured value and matches the empirical first-order growth of SMO
// iteration counts with N (the paper's runs range from 0.35*N iterations
// for MNIST to 13*N for HIGGS; the synthetic stand-ins fall in the same
// band). See DESIGN.md.
func (t *Trace) ScaledUp(factor float64) *Trace {
	if factor <= 0 {
		factor = 1
	}
	scale := func(v int) int {
		return int(math.Round(float64(v) * factor))
	}
	scale64 := func(v int64) int64 {
		return int64(math.Round(float64(v) * factor))
	}
	out := &Trace{
		Dataset:      t.Dataset,
		Heuristic:    t.Heuristic,
		N:            scale(t.N),
		AvgNNZ:       t.AvgNNZ,
		Eps:          t.Eps,
		Iterations:   scale64(t.Iterations),
		Converged:    t.Converged,
		SVCount:      scale(t.SVCount),
		ShrinkChecks: scale(t.ShrinkChecks),
		WSS:          t.WSS,
	}
	for _, s := range t.Segments {
		out.Segments = append(out.Segments, Segment{FromIter: scale64(s.FromIter), Active: scale(s.Active)})
	}
	for _, r := range t.Recons {
		out.Recons = append(out.Recons, ReconEvent{Iter: scale64(r.Iter), Shrunk: scale(r.Shrunk), SVs: scale(r.SVs)})
	}
	return out
}

// WriteJSON serializes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// SaveJSON writes the trace to a file.
func (t *Trace) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a trace from JSON.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if t.N <= 0 || len(t.Segments) == 0 {
		return nil, fmt.Errorf("trace: missing N or segments")
	}
	return &t, nil
}
