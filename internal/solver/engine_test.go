package solver

import (
	"context"
	"strings"
	"testing"

	"repro/internal/model"
)

// fakeEngine is a registry test double; Train is never reached.
type fakeEngine struct {
	name string
	caps Capability
}

func (e fakeEngine) Name() string             { return e.name }
func (e fakeEngine) Capabilities() Capability { return e.caps }
func (e fakeEngine) Train(context.Context, Problem, Options) (Result, error) {
	return Result{}, nil
}

func TestRegisterRejectsDuplicatesAndEmptyNames(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		f()
	}
	Register(fakeEngine{name: "test-dup", caps: CapClassify})
	t.Cleanup(func() { unregister("test-dup") })
	mustPanic("duplicate", func() { Register(fakeEngine{name: "test-dup"}) })
	mustPanic("empty", func() { Register(fakeEngine{name: ""}) })
}

func TestLookupErrorListsRegisteredEngines(t *testing.T) {
	Register(fakeEngine{name: "test-listed", caps: CapClassify})
	t.Cleanup(func() { unregister("test-listed") })
	_, err := Lookup("no-such-engine")
	if err == nil {
		t.Fatal("Lookup accepted an unknown name")
	}
	if !strings.Contains(err.Error(), "test-listed") {
		t.Errorf("lookup error %q does not list registered engines", err)
	}
}

func TestEnginesSortedAndNamesMatch(t *testing.T) {
	engines := Engines()
	names := Names()
	if len(engines) != len(names) {
		t.Fatalf("Engines()=%d entries, Names()=%d", len(engines), len(names))
	}
	for i, e := range engines {
		if e.Name() != names[i] {
			t.Errorf("position %d: engine %q vs name %q", i, e.Name(), names[i])
		}
		if i > 0 && names[i-1] >= names[i] {
			t.Errorf("names not strictly sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestCapabilityString(t *testing.T) {
	caps := CapClassify | CapKernels | CapWarmStart
	s := caps.String()
	for _, want := range []string{"classify", "kernels", "warm-start"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "streaming") {
		t.Errorf("String() = %q includes an unset bit", s)
	}
	if got := Capability(0).String(); got != "none" {
		t.Errorf("zero capability String() = %q, want none", got)
	}
}

func TestCapabilitySupportsTask(t *testing.T) {
	cases := []struct {
		caps Capability
		task model.Task
		want bool
	}{
		{CapClassify, model.TaskCSVC, true},
		{CapClassify, model.TaskSVR, false},
		{CapSVR | CapOneClass, model.TaskSVR, true},
		{CapSVR | CapOneClass, model.TaskOneClass, true},
		{CapSVR | CapOneClass, model.TaskCSVC, false},
	}
	for _, tc := range cases {
		if got := tc.caps.SupportsTask(tc.task); got != tc.want {
			t.Errorf("caps %s SupportsTask(%s) = %v, want %v", tc.caps, tc.task, got, tc.want)
		}
	}
}

func TestWithCapabilityFilters(t *testing.T) {
	Register(fakeEngine{name: "test-streamer", caps: CapClassify | CapStreaming})
	Register(fakeEngine{name: "test-plain", caps: CapClassify})
	t.Cleanup(func() { unregister("test-streamer"); unregister("test-plain") })
	got := WithCapability(CapStreaming)
	seen := map[string]bool{}
	for _, n := range got {
		seen[n] = true
	}
	if !seen["test-streamer"] || seen["test-plain"] {
		t.Errorf("WithCapability(streaming) = %v", got)
	}
}

// TestCheckFlagsTable drives the shared train-rule table: every rule must
// reject an engine lacking its capability with an error naming the flag,
// the engine, and at least one capable alternative — and accept an engine
// that has the bit.
func TestCheckFlagsTable(t *testing.T) {
	for _, rule := range TrainFlagRules {
		wasSet := func(name string) bool { return name == rule.Flag }
		lacking := fakeEngine{name: "test-lacking"}
		err := CheckFlags(lacking, wasSet, TrainFlagRules)
		if err == nil {
			t.Errorf("rule %s: engine without %s accepted", rule.Flag, rule.Need)
			continue
		}
		for _, want := range []string{"-" + rule.Flag, "test-lacking"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("rule %s: error %q missing %q", rule.Flag, err, want)
			}
		}
		capable := fakeEngine{name: "test-capable", caps: rule.Need}
		if err := CheckFlags(capable, wasSet, TrainFlagRules); err != nil {
			t.Errorf("rule %s: capable engine rejected: %v", rule.Flag, err)
		}
	}
	// Unset flags never trip rules regardless of capabilities.
	if err := CheckFlags(fakeEngine{name: "test-none"}, func(string) bool { return false }, TrainFlagRules); err != nil {
		t.Errorf("no flags set but CheckFlags = %v", err)
	}
}

// TestCheckFlagsNamesCapableEngines: the error must point at real engines
// that would accept the flag, so the user's next command is in the message.
func TestCheckFlagsNamesCapableEngines(t *testing.T) {
	Register(fakeEngine{name: "test-ckpt", caps: CapCheckpoint})
	t.Cleanup(func() { unregister("test-ckpt") })
	err := CheckFlags(fakeEngine{name: "test-bare"},
		func(name string) bool { return name == "checkpoint-dir" }, TrainFlagRules)
	if err == nil || !strings.Contains(err.Error(), "test-ckpt") {
		t.Errorf("error %v does not name the capable engine", err)
	}
}
