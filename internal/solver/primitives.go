// Package solver holds the numerical primitives shared by the sequential
// baseline (internal/smo) and the distributed solver (internal/core): the
// Keerthi index-set predicates (Eq. 4 of the paper), the two-sample
// analytic optimization step (Eq. 6/7), and the hyperplane threshold
// computation. Keeping them in one place guarantees that the baseline and
// the proposed solver perform bitwise identical updates, which is what the
// paper's accuracy-parity claim (Table V) rests on.
package solver

import "math"

// Tau is the floor applied to the second derivative eta = -rho when the
// kernel sub-matrix of the selected pair is (numerically) singular, e.g.
// for duplicate samples. Matches libsvm's TAU.
const Tau = 1e-12

// InUp reports whether sample (y, alpha) belongs to I0 u I1 u I2 — the set
// over which beta_up = min gamma is taken (Eq. 3/4). Equivalently:
// y=+1 with alpha < C, or y=-1 with alpha > 0.
func InUp(y, alpha, c float64) bool {
	if y > 0 {
		return alpha < c
	}
	return alpha > 0
}

// InLow reports whether sample (y, alpha) belongs to I0 u I3 u I4 — the set
// over which beta_low = max gamma is taken. Equivalently: y=+1 with
// alpha > 0, or y=-1 with alpha < C.
func InLow(y, alpha, c float64) bool {
	if y > 0 {
		return alpha > 0
	}
	return alpha < c
}

// IndexSet enumerates the paper's Eq. 4 classification of one sample.
type IndexSet int

// Index sets from Eq. 4. I0 is the free set (0 < alpha < C).
const (
	I0 IndexSet = iota
	I1          // y=+1, alpha=0
	I2          // y=-1, alpha=C
	I3          // y=+1, alpha=C
	I4          // y=-1, alpha=0
)

// Classify returns the Eq. 4 index set of a sample. Boundary comparisons
// are exact: alpha values are set to exactly 0 or C by the clipped step.
func Classify(y, alpha, c float64) IndexSet {
	switch {
	case alpha > 0 && alpha < c:
		return I0
	case y > 0 && alpha <= 0:
		return I1
	case y <= 0 && alpha >= c:
		return I2
	case y > 0:
		return I3
	default:
		return I4
	}
}

// Step is the outcome of one analytic two-sample optimization.
type Step struct {
	T                       float64 // the step along the feasible direction
	NewAlphaUp, NewAlphaLow float64
	DeltaUp, DeltaLow       float64 // alpha changes (new - old)
}

// OptimizePair solves the two-sample subproblem analytically (Eq. 6 with
// rho from Eq. 7, Platt-style clipping to the box [0, C]).
//
// Inputs: gradients gammaUp/gammaLow (the paper's gamma for i_up and
// i_low), labels, current alphas, and the three kernel values
// kUU = Phi(x_up, x_up), kLL = Phi(x_low, x_low), kUL = Phi(x_up, x_low).
//
// The unconstrained optimum along the feasible direction
// (dAlphaLow = yLow*t, dAlphaUp = -yUp*t) is t* = (gammaUp - gammaLow)/eta
// with eta = kUU + kLL - 2*kUL = -rho; t* is then clipped so both alphas
// stay within [0, C]. For gammaUp < gammaLow (a violating pair) the step
// is strictly negative unless the box forbids any progress.
func OptimizePair(gammaUp, gammaLow, yUp, yLow, alphaUp, alphaLow, kUU, kLL, kUL, c float64) Step {
	return OptimizePairBox(gammaUp, gammaLow, yUp, yLow, alphaUp, alphaLow, kUU, kLL, kUL, c, c)
}

// OptimizePairBox is OptimizePair with per-sample upper bounds: alphaUp
// stays within [0, cUp] and alphaLow within [0, cLow]. Task-formulation
// QPs (internal/tasks) use it to express boxes like the one-class
// [0, 1/(nu*n)]; OptimizePair delegates here with cUp = cLow = C, so the
// classification path performs bitwise identical arithmetic.
func OptimizePairBox(gammaUp, gammaLow, yUp, yLow, alphaUp, alphaLow, kUU, kLL, kUL, cUp, cLow float64) Step {
	eta := kUU + kLL - 2*kUL
	if eta <= Tau {
		// Degenerate (duplicate or near-duplicate samples): fall back to
		// a steep step that the box clip resolves, as in libsvm.
		eta = Tau
	}
	t := (gammaUp - gammaLow) / eta

	// Feasibility: alphaLow + yLow*t in [0, cLow] and alphaUp - yUp*t in [0, cUp].
	tMin := math.Inf(-1)
	tMax := math.Inf(1)
	clampDir := func(coef, alpha, c float64) {
		// alpha + coef*t in [0, C]
		lo, hi := -alpha/coef, (c-alpha)/coef
		if coef < 0 {
			lo, hi = hi, lo
		}
		tMin = math.Max(tMin, lo)
		tMax = math.Min(tMax, hi)
	}
	clampDir(yLow, alphaLow, cLow)
	clampDir(-yUp, alphaUp, cUp)
	if t < tMin {
		t = tMin
	}
	if t > tMax {
		t = tMax
	}

	newLow := alphaLow + yLow*t
	newUp := alphaUp - yUp*t
	// Snap to the box boundaries so index-set classification stays exact.
	newLow = snap(newLow, cLow)
	newUp = snap(newUp, cUp)
	return Step{
		T:           t,
		NewAlphaUp:  newUp,
		NewAlphaLow: newLow,
		DeltaUp:     newUp - alphaUp,
		DeltaLow:    newLow - alphaLow,
	}
}

// snap rounds alpha onto {0, C} when within rounding distance, keeping the
// exact-comparison classification in Classify valid. (libsvm applies the
// same idea when clipping to the box.)
func snap(alpha, c float64) float64 {
	const rel = 1e-12
	if alpha <= rel*c {
		return 0
	}
	if alpha >= c*(1-rel) {
		return c
	}
	return alpha
}

// GradientDelta returns the Eq. 2 gradient increment for sample i given the
// step t and the kernel values kLowI = Phi(x_low, x_i), kUpI = Phi(x_up, x_i):
//
//	gamma_i += yUp*deltaUp*K(up,i) + yLow*deltaLow*K(low,i)
//	         = t * (K(low,i) - K(up,i))
//
// using deltaUp = -yUp*t and deltaLow = yLow*t.
func GradientDelta(t, kUpI, kLowI float64) float64 {
	return t * (kLowI - kUpI)
}

// Threshold computes the hyperplane threshold beta at termination per the
// paper: the mean gradient over the free set I0 when it is non-empty,
// otherwise the midpoint of beta_low and beta_up.
func Threshold(sumGammaI0 float64, countI0 int, betaUp, betaLow float64) float64 {
	if countI0 > 0 {
		return sumGammaI0 / float64(countI0)
	}
	return (betaLow + betaUp) / 2
}

// Converged reports the Eq. 5 optimality condition beta_up + 2*eps >= beta_low.
func Converged(betaUp, betaLow, eps float64) bool {
	return betaUp+2*eps >= betaLow
}

// Shrinkable implements the Eq. 9 elimination condition: a sample may be
// shrunk when it is bound at the "wrong" end and its gradient lies strictly
// outside the (beta_up, beta_low) band:
//
//	i in I3 u I4 and gamma_i < beta_up, or
//	i in I1 u I2 and gamma_i > beta_low.
//
// Free samples (I0) are never shrunk.
func Shrinkable(set IndexSet, gamma, betaUp, betaLow float64) bool {
	switch set {
	case I3, I4:
		return gamma < betaUp
	case I1, I2:
		return gamma > betaLow
	default:
		return false
	}
}

// DualObjective computes W(alpha) = sum alpha_i - 1/2 sum_ij alpha_i
// alpha_j y_i y_j K_ij from gradients: since gamma_i = sum_j alpha_j y_j
// K_ij - y_i, we have sum_i alpha_i y_i (gamma_i + y_i) = sum_ij ... so
// W = sum_i alpha_i - 1/2 * sum_i alpha_i y_i (gamma_i + y_i)
//
//	= 1/2 * sum_i alpha_i (1 - y_i*gamma_i).
//
// Used by tests to verify monotone progress and by stats reporting.
func DualObjective(alpha, y, gamma []float64) float64 {
	var w float64
	for i := range alpha {
		w += alpha[i] * (1 - y[i]*gamma[i])
	}
	return w / 2
}

// DualObjectiveQP generalizes DualObjective to a per-sample linear term p
// (the classification dual has p_i = -1): for the QP
//
//	min ½ sum_ij alpha_i alpha_j y_i y_j K_ij + sum_i p_i alpha_i
//
// with gamma_i = y_i*p_i + sum_j alpha_j y_j K_ij, the (max-form) objective
// is W = -½ sum_i alpha_i (y_i*gamma_i + p_i). A nil p selects the
// classification convention and is bit-identical to DualObjective.
func DualObjectiveQP(alpha, y, gamma, p []float64) float64 {
	if p == nil {
		return DualObjective(alpha, y, gamma)
	}
	var w float64
	for i := range alpha {
		w += alpha[i] * (y[i]*gamma[i] + p[i])
	}
	return -w / 2
}
