package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInUpInLow(t *testing.T) {
	const c = 10.0
	cases := []struct {
		y, alpha    float64
		inUp, inLow bool
	}{
		{+1, 0, true, false}, // I1
		{+1, 5, true, true},  // I0
		{+1, c, false, true}, // I3
		{-1, 0, false, true}, // I4
		{-1, 5, true, true},  // I0
		{-1, c, true, false}, // I2
	}
	for _, tc := range cases {
		if got := InUp(tc.y, tc.alpha, c); got != tc.inUp {
			t.Errorf("InUp(%v,%v) = %v", tc.y, tc.alpha, got)
		}
		if got := InLow(tc.y, tc.alpha, c); got != tc.inLow {
			t.Errorf("InLow(%v,%v) = %v", tc.y, tc.alpha, got)
		}
	}
}

func TestClassify(t *testing.T) {
	const c = 4.0
	cases := []struct {
		y, alpha float64
		want     IndexSet
	}{
		{+1, 2, I0}, {-1, 2, I0},
		{+1, 0, I1}, {-1, c, I2},
		{+1, c, I3}, {-1, 0, I4},
	}
	for _, tc := range cases {
		if got := Classify(tc.y, tc.alpha, c); got != tc.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", tc.y, tc.alpha, got, tc.want)
		}
	}
}

// Every sample belongs to I_up or I_low (or both, iff free): the paper's
// Eq. 4 partition is exhaustive.
func TestIndexSetsCoverQuick(t *testing.T) {
	const c = 3.0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		y := 1.0
		if rng.Intn(2) == 0 {
			y = -1
		}
		alpha := []float64{0, c, c * rng.Float64()}[rng.Intn(3)]
		up, low := InUp(y, alpha, c), InLow(y, alpha, c)
		if !up && !low {
			return false
		}
		set := Classify(y, alpha, c)
		if set == I0 && !(up && low) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizePairSimple(t *testing.T) {
	// Two samples y=+1 (up) and y=-1 (low), both alpha=0, identity kernel
	// block (kUU=kLL=1, kUL=0 -> eta=2). gammaUp=-1, gammaLow=+1 as at
	// initialization. t* = (-1-1)/2 = -1; feasibility allows it for C >= 1.
	st := OptimizePair(-1, 1, +1, -1, 0, 0, 1, 1, 0, 10)
	if st.T != -1 {
		t.Fatalf("t = %v, want -1", st.T)
	}
	// alphaLow += yLow*t = (-1)(-1) = +1; alphaUp -= yUp*t = 0-(-1) = +1.
	if st.NewAlphaLow != 1 || st.NewAlphaUp != 1 {
		t.Fatalf("alphas = %v, %v, want 1, 1", st.NewAlphaLow, st.NewAlphaUp)
	}
}

func TestOptimizePairClipsToBox(t *testing.T) {
	// Same geometry but C=0.5: the step must clip so alphas hit exactly C.
	st := OptimizePair(-1, 1, +1, -1, 0, 0, 1, 1, 0, 0.5)
	if st.NewAlphaLow != 0.5 || st.NewAlphaUp != 0.5 {
		t.Fatalf("alphas = %v, %v, want exactly 0.5", st.NewAlphaLow, st.NewAlphaUp)
	}
	if st.T != -0.5 {
		t.Fatalf("t = %v, want -0.5", st.T)
	}
}

func TestOptimizePairDegenerateEta(t *testing.T) {
	// Duplicate samples: kUU=kLL=kUL=1 -> eta=0 -> Tau floor; the huge raw
	// step must still clip into the box.
	st := OptimizePair(-1, 1, +1, -1, 0, 0, 1, 1, 1, 2)
	if st.NewAlphaLow < 0 || st.NewAlphaLow > 2 || st.NewAlphaUp < 0 || st.NewAlphaUp > 2 {
		t.Fatalf("alphas out of box: %v, %v", st.NewAlphaLow, st.NewAlphaUp)
	}
	if st.NewAlphaLow != 2 || st.NewAlphaUp != 2 {
		t.Fatalf("degenerate step should saturate at C: %v, %v", st.NewAlphaLow, st.NewAlphaUp)
	}
}

// Property: OptimizePair never leaves the box, never moves a non-violating
// pair backwards, preserves the equality constraint, and for violating
// pairs makes strict progress unless the box blocks it.
func TestOptimizePairInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 0.5 + 10*rng.Float64()
		yU, yL := 1.0, 1.0
		if rng.Intn(2) == 0 {
			yU = -1
		}
		if rng.Intn(2) == 0 {
			yL = -1
		}
		aU, aL := c*rng.Float64(), c*rng.Float64()
		switch rng.Intn(3) { // sometimes start exactly at bounds
		case 0:
			aU = 0
		case 1:
			aL = c
		}
		// A PSD 2x2 kernel block: K = B^T B for random B.
		b11, b12, b21, b22 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		kUU := b11*b11 + b21*b21
		kLL := b12*b12 + b22*b22
		kUL := b11*b12 + b21*b22
		gU := rng.NormFloat64()
		gL := gU + rng.Float64()*3 // gammaLow >= gammaUp: violating or tied

		st := OptimizePair(gU, gL, yU, yL, aU, aL, kUU, kLL, kUL, c)
		// Box.
		if st.NewAlphaUp < 0 || st.NewAlphaUp > c || st.NewAlphaLow < 0 || st.NewAlphaLow > c {
			return false
		}
		// Step direction: for gU < gL, t <= 0.
		if gU < gL && st.T > 0 {
			return false
		}
		// Equality constraint: yU*dAlphaUp + yL*dAlphaLow == 0 (up to the
		// boundary snap tolerance).
		if d := yU*st.DeltaUp + yL*st.DeltaLow; math.Abs(d) > 1e-9*c {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGradientDelta(t *testing.T) {
	// gamma_i += t*(K(low,i) - K(up,i))
	if got := GradientDelta(-2, 0.25, 0.75); got != -1 {
		t.Fatalf("GradientDelta = %v, want -1", got)
	}
	if got := GradientDelta(0, 0.9, 0.1); got != 0 {
		t.Fatalf("zero step must not change gradients: %v", got)
	}
}

func TestThreshold(t *testing.T) {
	if got := Threshold(6, 3, -1, 1); got != 2 {
		t.Fatalf("free-set mean = %v, want 2", got)
	}
	if got := Threshold(0, 0, -1, 3); got != 1 {
		t.Fatalf("midpoint = %v, want 1", got)
	}
}

func TestConverged(t *testing.T) {
	// beta_up + 2*eps >= beta_low
	if !Converged(0, 0.002, 1e-3) {
		t.Fatal("boundary case should converge")
	}
	if Converged(0, 0.0021, 1e-3) {
		t.Fatal("violated case should not converge")
	}
	if !Converged(math.Inf(1), math.Inf(-1), 1e-3) {
		t.Fatal("empty index sets should report convergence")
	}
}

func TestShrinkableNeverFreeSet(t *testing.T) {
	for _, g := range []float64{-100, 0, 100} {
		if Shrinkable(I0, g, -1, 1) {
			t.Fatalf("free sample with gamma %v shrunk", g)
		}
	}
}

func TestDualObjective(t *testing.T) {
	// Hand check: alpha = (1, 2), y = (+1, -1), gamma = (0.5, -0.25).
	// W = 1/2*[1*(1-0.5) + 2*(1-0.25)] = 1/2*(0.5+1.5) = 1.
	got := DualObjective([]float64{1, 2}, []float64{1, -1}, []float64{0.5, -0.25})
	if math.Abs(got-1) > 1e-15 {
		t.Fatalf("W = %v, want 1", got)
	}
	if DualObjective(nil, nil, nil) != 0 {
		t.Fatal("empty objective != 0")
	}
}

// Property: the analytic step maximizes the dual along the feasible
// direction — any perturbation of t within the box must not increase W.
// The change in W along t is dW = (gU-gL)*t - 0.5*eta*t^2.
func TestStepIsOptimalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + 5*rng.Float64()
		yU, yL := 1.0, -1.0
		aU, aL := c*rng.Float64(), c*rng.Float64()
		b11, b12, b21, b22 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		kUU := b11*b11 + b21*b21 + 0.1 // keep eta clearly positive
		kLL := b12*b12 + b22*b22 + 0.1
		kUL := b11*b12 + b21*b22
		eta := kUU + kLL - 2*kUL
		if eta <= Tau {
			return true
		}
		gU := rng.NormFloat64()
		gL := gU + rng.Float64()*2
		st := OptimizePair(gU, gL, yU, yL, aU, aL, kUU, kLL, kUL, c)
		dW := func(tt float64) float64 { return (gU-gL)*tt - 0.5*eta*tt*tt }
		best := dW(st.T)
		for _, scale := range []float64{0.5, 0.9, 0.99, 1.01, 1.1} {
			tt := st.T * scale
			// Only compare feasible perturbations.
			nl := aL + yL*tt
			nu := aU - yU*tt
			if nl < 0 || nl > c || nu < 0 || nu > c {
				continue
			}
			if dW(tt) > best+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
