// Engine layer: the interface every training path in the repository is
// reached through, plus the process-wide registry the CLIs, the
// differential oracle and the divide-and-conquer sub-solver injection
// iterate instead of hard-coded engine lists.
//
// The package keeps its original role — the shared Eq. 4/6/7 numerical
// primitives — and adds the layer above them: a shared Problem (row-matrix
// data + labels + kernel + task kind) and Options (C, eps, seed, workers,
// heuristic, warm-start alpha, checkpoint sink), so warm starts and
// checkpoint hooks are expressed once, and a declarative Capabilities
// bitset that replaces ad-hoc per-engine flag cross-validation: a consumer
// asks "does this engine stream?" instead of "is the solver string equal to
// linear?".
//
// Engines register themselves in their package init (importing the engine
// package is what makes it selectable); binaries and tests that want every
// engine available import repro/internal/engines for the side effect.
package solver

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ckpt"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/sparse"
)

// Capability is one bit of an engine's declarative feature set.
type Capability uint32

// Capabilities an engine may declare. Task kinds and feature support share
// one bitset so a single Has check covers both "can this engine train an
// epsilon-SVR" and "does -checkpoint-dir apply".
const (
	// CapClassify: trains binary classifiers (labels in {+1, -1}).
	CapClassify Capability = 1 << iota
	// CapSVR: trains epsilon-SVR regression (continuous targets).
	CapSVR
	// CapOneClass: trains nu one-class anomaly detectors.
	CapOneClass
	// CapKernels: accepts arbitrary kernel parameters. Engines without it
	// are linear-only: they train an explicit hyperplane and reject (or
	// ignore) non-linear kernels.
	CapKernels
	// CapStreaming: accepts any sparse.RowMatrix, including the
	// out-of-core spill-backed OOCMatrix. Engines without it need the
	// whole dataset resident as an in-memory *sparse.Matrix.
	CapStreaming
	// CapWarmStart: consumes Options.InitialAlpha (checkpoint resume,
	// incremental updates, polish warm starts).
	CapWarmStart
	// CapCheckpoint: persists crash-consistent snapshots through
	// Options.Checkpoint.
	CapCheckpoint
	// CapTrace: records the shrink/reconstruction schedule for the
	// performance model (Options.RecordTrace, Result.Trace).
	CapTrace
	// CapDistributed: rank-parallel over the mpi substrate; Options.P
	// selects the rank count.
	CapDistributed
	// CapFaultInject: accepts an mpi fault plan (Options.Faults) for
	// crash-recovery drills.
	CapFaultInject
	// CapHeuristics: the Table II shrinking heuristics apply
	// (Options.Heuristic selects one by name).
	CapHeuristics
	// CapComposite: the engine is composed of sub-engine solves (dc). A
	// composite engine cannot itself serve as another engine's sub-solver.
	CapComposite
	// CapLinearVariants: the explicit-w linear family's variant knobs
	// (-linear-variant/-linear-epochs/-linear-no-shrink) apply.
	CapLinearVariants

	capMax
)

// capNames maps each bit to its flag-facing name (also used by CheckFlags
// error messages and the -list-solvers table).
var capNames = map[Capability]string{
	CapClassify:       "classify",
	CapSVR:            "svr",
	CapOneClass:       "one-class",
	CapKernels:        "kernels",
	CapStreaming:      "streaming",
	CapWarmStart:      "warm-start",
	CapCheckpoint:     "checkpoint",
	CapTrace:          "trace",
	CapDistributed:    "distributed",
	CapFaultInject:    "fault-inject",
	CapHeuristics:     "heuristics",
	CapComposite:      "composite",
	CapLinearVariants: "linear-variants",
}

// String names a single capability, or a comma-joined set for a combined
// bitset.
func (c Capability) String() string {
	if s, ok := capNames[c]; ok {
		return s
	}
	var parts []string
	for bit := Capability(1); bit < capMax; bit <<= 1 {
		if c&bit != 0 {
			parts = append(parts, capNames[bit])
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Has reports whether every bit of want is set.
func (c Capability) Has(want Capability) bool { return c&want == want }

// Tasks returns the task kinds the capability set trains.
func (c Capability) Tasks() []model.Task {
	var out []model.Task
	if c.Has(CapClassify) {
		out = append(out, model.TaskCSVC)
	}
	if c.Has(CapSVR) {
		out = append(out, model.TaskSVR)
	}
	if c.Has(CapOneClass) {
		out = append(out, model.TaskOneClass)
	}
	return out
}

// SupportsTask reports whether the capability set trains the given kind
// (the empty kind means classification, matching model.TaskKind).
func (c Capability) SupportsTask(t model.Task) bool {
	switch t {
	case "", model.TaskCSVC:
		return c.Has(CapClassify)
	case model.TaskSVR:
		return c.Has(CapSVR)
	case model.TaskOneClass:
		return c.Has(CapOneClass)
	default:
		return false
	}
}

// Problem is the training input every engine consumes: the data, the
// labels (or regression targets; ignored by one-class), the kernel, and
// the task kind being solved.
type Problem struct {
	// X is the training matrix. Engines without CapStreaming require the
	// in-memory *sparse.Matrix concrete type.
	X sparse.RowMatrix
	// Y holds labels in {+1, -1} for classification, continuous targets
	// for TaskSVR, and is ignored (may be nil) for TaskOneClass.
	Y []float64
	// Kernel parameterizes the kernel. Engines without CapKernels accept
	// only kernel.Params{Type: kernel.Linear}.
	Kernel kernel.Params
	// Task selects the QP; the zero value is classification.
	Task model.Task
}

// rows returns the sample count, tolerating a nil matrix.
func (p Problem) rows() int {
	if p.X == nil {
		return 0
	}
	return p.X.Rows()
}

// DCOptions are the divide-and-conquer engine's knobs.
type DCOptions struct {
	Clusters    int    // k-means clusters at the finest level (0 = engine default)
	Levels      int    // hierarchy depth (0 = 1)
	KernelSpace bool   // cluster in kernel feature space
	SubSolver   string // registered engine name for finest-level sub-solves ("" = core)
	// PolishMaxIter caps the polish solve (early-stop mode); 0 runs it to
	// convergence.
	PolishMaxIter int64
	// PolishFull polishes over the full training set (eps-optimal on the
	// full QP) instead of the support-vector union.
	PolishFull bool
	// SubFaultCluster selects which cluster's sub-solve receives
	// Options.Faults.
	SubFaultCluster int
	// DisableLinearFastPath opts cold linear-kernel sub-solves out of the
	// automatic explicit-w routing.
	DisableLinearFastPath bool
}

// LinearOptions are the explicit-w linear family's knobs.
type LinearOptions struct {
	Variant   string // "dcd" (default) or "miso"
	MaxEpochs int    // epoch cap (0 = variant default)
	NoShrink  bool   // disable projected-gradient shrinking (dcd)
}

// TaskOptions are the task-variant hyper-parameters.
type TaskOptions struct {
	Epsilon float64 // epsilon-SVR tube half-width
	Nu      float64 // one-class nu in (0, 1]
}

// Options carries the solver knobs shared by every engine — hyper-
// parameters, parallelism, the warm-start dual point, and the checkpoint
// sink — plus the per-family extensions. Engines read only the fields
// their capabilities declare; Validate rejects set fields an engine cannot
// honor, so nothing is silently ignored.
type Options struct {
	C   float64 // box constraint (required positive for every current engine)
	Eps float64 // termination tolerance (0 = 1e-3)

	Seed    int64 // clustering / permutation / checkpoint provenance seed
	Workers int   // gradient-update or cluster-solve goroutines (0 = GOMAXPROCS)
	P       int   // rank count for distributed engines (0 = 1)

	// Heuristic names a Table II shrinking strategy ("" = engine default);
	// requires CapHeuristics.
	Heuristic string

	// MaxIter bounds the iteration count; 0 means the engine default.
	MaxIter int64
	// CacheBytes is the kernel-row cache budget for engines that cache;
	// 0 means the engine default (1 GiB for smo-family engines).
	CacheBytes int64

	// InitialAlpha warm-starts the engine from a feasible dual point (a
	// checkpoint's alpha, a recovered model, a coalesced union solution);
	// requires CapWarmStart. The divide-and-conquer engine treats it as a
	// resume vector and goes straight to a full-problem polish.
	InitialAlpha []float64

	// Checkpoint, when non-nil, makes the engine persist crash-consistent
	// snapshots every CheckpointEvery iterations; requires CapCheckpoint.
	// CheckpointFingerprint overrides the dataset hash (computed from the
	// problem when zero) — shard-composed loads pass their own.
	Checkpoint            *ckpt.Writer
	CheckpointEvery       int64
	CheckpointFingerprint uint64

	// RecordTrace records the shrink/reconstruction schedule
	// (Result.Trace); requires CapTrace. DatasetName labels the trace.
	RecordTrace bool
	DatasetName string

	// Faults injects a deterministic crash into the mpi substrate;
	// requires CapFaultInject.
	Faults mpi.FaultPlan

	DC     DCOptions
	Linear LinearOptions
	Task   TaskOptions
}

// Result is what every engine returns: the model plus the statistics the
// CLIs, benches and oracle consume without knowing which engine ran.
type Result struct {
	Model *model.Model
	// Alpha is the final dual point in problem row order, when the engine
	// exposes one (the linear family's dual, smo/core's alphas; nil for
	// composite engines whose polish owns the final point internally).
	Alpha []float64
	// Iterations counts solver iterations (engine-defined unit: working-
	// set steps, or coordinate updates for the linear family).
	Iterations int64
	// KernelEvals counts kernel evaluations (0 for the linear family).
	KernelEvals uint64
	// Converged reports whether the tolerance was met.
	Converged bool
	// Objective is the engine's dual objective at termination, when
	// defined.
	Objective float64
	// Summary is the engine's one-line human-readable account of the run,
	// printed verbatim by svmtrain.
	Summary string
	// Trace is the recorded schedule when Options.RecordTrace was set.
	Trace TraceSaver
}

// TraceSaver is the slice of the trace API the CLIs need.
type TraceSaver interface {
	SaveJSON(path string) error
}

// Engine is one registered training path. Train must be safe for
// concurrent calls (the one-vs-rest reduction invokes it from one
// goroutine per class) and must validate (prob, opts) against its own
// capabilities before touching data — Validate does the generic part.
type Engine interface {
	Name() string
	Capabilities() Capability
	Train(ctx context.Context, prob Problem, opts Options) (Result, error)
}

// Describer is an optional Engine extension: a one-line "when to use"
// description for the registry table (-list-solvers, the README).
type Describer interface {
	Describe() string
}

// Describe returns the engine's when-to-use line, or "" if it has none.
func Describe(e Engine) string {
	if d, ok := e.(Describer); ok {
		return d.Describe()
	}
	return ""
}

var (
	regMu   sync.RWMutex
	reg     = map[string]Engine{}
	regName []string // registration-independent sorted cache
)

// Register adds an engine to the process-wide registry. It panics on a
// duplicate or empty name — registration happens in package inits, where a
// collision is a programming error, not a runtime condition.
func Register(e Engine) {
	name := e.Name()
	if name == "" {
		panic("solver: Register with empty engine name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[name]; dup {
		panic("solver: duplicate engine registration: " + name)
	}
	reg[name] = e
	regName = append(regName, name)
	sort.Strings(regName)
}

// unregister removes an engine; only tests use it, to keep registry
// fixtures from leaking between test cases.
func unregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(reg, name)
	for i, n := range regName {
		if n == name {
			regName = append(regName[:i], regName[i+1:]...)
			break
		}
	}
}

// Lookup resolves a registered engine by name; the error lists every valid
// name so a CLI typo is self-correcting.
func Lookup(name string) (Engine, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if e, ok := reg[name]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("solver: unknown engine %q (registered: %s)", name, strings.Join(regName, ", "))
}

// Engines returns every registered engine, sorted by name.
func Engines() []Engine {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Engine, 0, len(regName))
	for _, n := range regName {
		out = append(out, reg[n])
	}
	return out
}

// Names returns the sorted registered engine names.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regName...)
}

// WithCapability returns the sorted names of engines declaring every bit
// of want; error messages use it to tell the user which -solver values
// would have worked.
func WithCapability(want Capability) []string {
	var out []string
	for _, e := range Engines() {
		if e.Capabilities().Has(want) {
			out = append(out, e.Name())
		}
	}
	return out
}

// Validate rejects (prob, opts) combinations the engine's capabilities
// cannot honor, before any data-proportional work: unsupported task kinds,
// non-linear kernels on linear-only engines, out-of-core matrices on
// whole-residency engines, and warm-start / checkpoint / trace / fault /
// heuristic options on engines lacking the bit. Engine adapters call it at
// the top of Train; CLIs get the same errors earlier, at flag time, from
// CheckFlags.
func Validate(e Engine, prob Problem, opts Options) error {
	caps := e.Capabilities()
	if !caps.SupportsTask(prob.Task) {
		return fmt.Errorf("solver: engine %s does not train task %q (supported: %v)",
			e.Name(), prob.Task, caps.Tasks())
	}
	if !caps.Has(CapKernels) && prob.Kernel.Type != kernel.Linear {
		return fmt.Errorf("solver: engine %s is linear-only; kernel %v is unsupported (kernel engines: %s)",
			e.Name(), prob.Kernel.Type, strings.Join(WithCapability(CapKernels), ", "))
	}
	if _, inMemory := prob.X.(*sparse.Matrix); prob.X != nil && !inMemory && !caps.Has(CapStreaming) {
		return fmt.Errorf("solver: engine %s needs the whole dataset resident (in-memory matrix); streaming engines: %s",
			e.Name(), strings.Join(WithCapability(CapStreaming), ", "))
	}
	if opts.InitialAlpha != nil && !caps.Has(CapWarmStart) {
		return fmt.Errorf("solver: engine %s does not support warm starts (warm-start engines: %s)",
			e.Name(), strings.Join(WithCapability(CapWarmStart), ", "))
	}
	if opts.Checkpoint != nil && !caps.Has(CapCheckpoint) {
		return fmt.Errorf("solver: engine %s does not support checkpointing (checkpoint engines: %s)",
			e.Name(), strings.Join(WithCapability(CapCheckpoint), ", "))
	}
	if opts.RecordTrace && !caps.Has(CapTrace) {
		return fmt.Errorf("solver: engine %s does not record traces (trace engines: %s)",
			e.Name(), strings.Join(WithCapability(CapTrace), ", "))
	}
	if opts.Faults.Enabled() && !caps.Has(CapFaultInject) {
		return fmt.Errorf("solver: engine %s does not support fault injection (fault-inject engines: %s)",
			e.Name(), strings.Join(WithCapability(CapFaultInject), ", "))
	}
	if opts.Heuristic != "" && !caps.Has(CapHeuristics) {
		return fmt.Errorf("solver: engine %s does not use the Table II shrinking heuristics (heuristic engines: %s)",
			e.Name(), strings.Join(WithCapability(CapHeuristics), ", "))
	}
	if opts.P > 1 && !caps.Has(CapDistributed) && !caps.Has(CapComposite) {
		return fmt.Errorf("solver: engine %s runs in a single process; -p does not apply (distributed engines: %s)",
			e.Name(), strings.Join(WithCapability(CapDistributed), ", "))
	}
	return nil
}

// Train resolves name in the registry, validates, and trains — the
// one-call path for callers that hold an engine name rather than an
// Engine (the divide-and-conquer sub-solver injection, the CV grid).
func Train(ctx context.Context, name string, prob Problem, opts Options) (Result, error) {
	e, err := Lookup(name)
	if err != nil {
		return Result{}, err
	}
	return e.Train(ctx, prob, opts)
}
