// Table-driven CLI flag validation generated from engine capabilities.
// svmtrain and svmtune share one rule table instead of hand-rolled
// per-engine cross-validation: each rule binds a flag name to the
// capability bit that makes it meaningful, and CheckFlags rejects any set
// flag the selected engine cannot honor — before any data is loaded.
package solver

import (
	"fmt"
	"strings"
)

// FlagRule binds one CLI flag to the capability required to honor it.
type FlagRule struct {
	// Flag is the flag name without the leading dash.
	Flag string
	// Need is the capability bit(s) the engine must declare for the flag
	// to apply.
	Need Capability
	// Hint, when non-empty, is appended to the error to explain why the
	// flag is engine-specific (e.g. why streaming needs a linear engine).
	Hint string
}

// TrainFlagRules is the svmtrain rule table: every engine-conditional
// flag, bound to the capability that gates it. svmtune reuses the subset
// it shares (see TuneFlagRules).
var TrainFlagRules = []FlagRule{
	{Flag: "stream", Need: CapStreaming,
		Hint: "the kernel engines need random access to every row, which defeats a bounded-memory stream"},
	{Flag: "mem-budget", Need: CapStreaming,
		Hint: "the byte budget only applies to the out-of-core stream"},
	{Flag: "checkpoint-dir", Need: CapCheckpoint},
	{Flag: "checkpoint-every", Need: CapCheckpoint},
	{Flag: "checkpoint-min-interval", Need: CapCheckpoint},
	{Flag: "resume", Need: CapCheckpoint | CapWarmStart},
	{Flag: "update-from", Need: CapWarmStart},
	{Flag: "trace", Need: CapTrace},
	{Flag: "heuristic", Need: CapHeuristics},
	{Flag: "p", Need: CapDistributed},
	// -shards is deliberately absent: sharded *loading* works with every
	// engine (non-distributed ones train on the concatenated shards); only
	// the core engine additionally maps one rank per shard.
	{Flag: "inject-crash-rank", Need: CapFaultInject},
	{Flag: "inject-crash-at", Need: CapFaultInject},
	{Flag: "inject-crash-cluster", Need: CapFaultInject | CapComposite},
	{Flag: "dc-clusters", Need: CapComposite},
	{Flag: "dc-levels", Need: CapComposite},
	{Flag: "dc-polish", Need: CapComposite},
	{Flag: "dc-polish-full", Need: CapComposite},
	{Flag: "dc-kernel-space", Need: CapComposite},
	{Flag: "dc-subsolver", Need: CapComposite},
	{Flag: "linear-variant", Need: CapLinearVariants},
	{Flag: "linear-epochs", Need: CapLinearVariants},
	{Flag: "linear-no-shrink", Need: CapLinearVariants},
	{Flag: "svr-epsilon", Need: CapSVR},
	{Flag: "nu", Need: CapOneClass},
}

// TuneFlagRules is the svmtune rule table (the subset of train flags the
// tuner exposes, plus its own grid flags).
var TuneFlagRules = []FlagRule{
	{Flag: "sigma2-grid", Need: CapKernels,
		Hint: "linear-only engines have no kernel bandwidth to sweep"},
	{Flag: "heuristic", Need: CapHeuristics},
	{Flag: "p", Need: CapDistributed},
	{Flag: "linear-variant", Need: CapLinearVariants},
	{Flag: "linear-epochs", Need: CapLinearVariants},
}

// CheckFlags validates every set engine-conditional flag against the
// selected engine's capabilities. wasSet reports whether the user set the
// named flag explicitly (flag.Visit semantics: defaults don't count).
// The first violation is returned, naming the flag, the engine, the
// missing capability, and which registered engines would accept it.
func CheckFlags(e Engine, wasSet func(name string) bool, rules []FlagRule) error {
	caps := e.Capabilities()
	for _, r := range rules {
		if !wasSet(r.Flag) || caps.Has(r.Need) {
			continue
		}
		capable := WithCapability(r.Need)
		msg := fmt.Sprintf("-%s requires a %s-capable engine; -solver %s does not support it",
			r.Flag, r.Need, e.Name())
		if len(capable) > 0 {
			msg += fmt.Sprintf(" (capable: %s)", strings.Join(capable, ", "))
		}
		if r.Hint != "" {
			msg += " — " + r.Hint
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
