package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/kernel"
	"repro/internal/solver"

	// The experiment resolves engines by name at run time; the aggregator
	// guarantees every adapter has registered even if the direct imports
	// elsewhere in this package change.
	_ "repro/internal/engines"
)

// RunWSS compares first-order ("smo", maximal violating pair — the paper's
// setting) against second-order ("smo2", libsvm's max-gain rule) working-set
// selection as registered engines: same data, same hyper-parameters, both
// resolved from the solver registry and trained through the Engine
// interface, exactly the way svmtrain -solver smo2 runs them. Unlike
// ablation-wss (which toggles the SecondOrder bit inside the distributed
// core solver and models scaled-up times), this is the single-node baseline
// measured for real: iterations, kernel evaluations, wall-clock, and the
// dual objective both engines must agree on.
func RunWSS(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	rep := &Report{
		ID:    "wss",
		Title: "Working-set selection: smo (first-order) vs smo2 (second-order) engines",
		Header: []string{"dataset", "n", "engine", "iterations", "kernel-evals",
			"wall-clock", "objective", "test-acc(%)"},
	}
	for _, name := range []string{"mnist38", "codrna", "a9a"} {
		ds, _, err := loadDataset(o, name)
		if err != nil {
			return nil, err
		}
		prob := solver.Problem{X: ds.X, Y: ds.Y, Kernel: kernel.FromSigma2(ds.Sigma2)}
		// One worker keeps the iterate sequence deterministic, so the
		// iteration and kernel-eval columns are properties of the selection
		// rule, not of goroutine scheduling.
		opts := solver.Options{C: ds.C, Eps: o.Eps, Workers: 1, DatasetName: ds.Name}
		var firstIters int64
		for _, engName := range []string{"smo", "smo2"} {
			t0 := time.Now()
			res, err := solver.Train(context.Background(), engName, prob, opts)
			if err != nil {
				return nil, fmt.Errorf("wss: %s on %s: %w", engName, name, err)
			}
			elapsed := time.Since(t0)
			acc, err := res.Model.Evaluate(ds.TestX, ds.TestY)
			if err != nil {
				return nil, err
			}
			o.logf("wss %s/%s: %v, %d iterations, %d kernel evals",
				name, engName, elapsed.Round(time.Millisecond), res.Iterations, res.KernelEvals)
			iters := i64toa(res.Iterations)
			if engName == "smo" {
				firstIters = res.Iterations
			} else if firstIters > 0 {
				iters = fmt.Sprintf("%d (%.2fx fewer)", res.Iterations,
					float64(firstIters)/float64(max(1, res.Iterations)))
			}
			rep.Rows = append(rep.Rows, []string{
				ds.Name, itoa(ds.Train()), engName,
				iters, fmt.Sprintf("%d", res.KernelEvals),
				elapsed.Round(time.Millisecond).String(),
				fmt.Sprintf("%.6g", res.Objective), f2(acc.Accuracy),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"both engines resolve from the solver registry; the dual objectives must agree within the oracle's gap tolerance (the oracle experiment checks this formally)",
		"second-order selection pays an extra kernel row per iteration to pick the max-gain pair, trading evals per iteration for fewer iterations")
	rep.Took = time.Since(start)
	return rep, nil
}
