package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/perfmodel"
	"repro/internal/smo"
)

// RunAblationSubsequent compares the paper's subsequent-shrinking-threshold
// choice (the active working-set size, Section IV-A2) against reusing the
// initial threshold, across heuristics.
func RunAblationSubsequent(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	const benchP = 64
	ds, _, err := loadDataset(o, "mnist38")
	if err != nil {
		return nil, err
	}
	machine := calibrate(o, ds)
	factor := float64(dataset.Specs["mnist38"].FullTrain) / float64(ds.Train())
	rep := &Report{
		ID:     "ablation-subsequent",
		Title:  fmt.Sprintf("Subsequent shrink threshold on %s (modeled at p=%d)", ds.Name, benchP),
		Header: []string{"heuristic", "policy", "iterations", "shrinks", "mean-active", "modeled-t(s)"},
	}
	for _, h := range []core.Heuristic{core.Multi5pc, core.Multi500, core.Single5pc} {
		for _, fixed := range []bool{false, true} {
			cfg := core.Config{
				Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: o.Eps,
				Heuristic: h, SubsequentFixed: fixed, RecordTrace: true, DatasetName: ds.Name,
			}
			_, st, err := core.TrainParallel(ds.X, ds.Y, 1, cfg)
			if err != nil {
				return nil, err
			}
			b, err := perfmodel.Evaluate(st.Trace.ScaledUp(factor), benchP, machine)
			if err != nil {
				return nil, err
			}
			policy := "active-set size (paper)"
			if fixed {
				policy = "fixed initial"
			}
			rep.Rows = append(rep.Rows, []string{
				h.Name, policy, i64toa(st.Iterations), itoa(st.ShrinkEvents),
				pct(st.Trace.MeanActiveFraction()), fmt.Sprintf("%.3f", b.Total()),
			})
		}
	}
	rep.Notes = append(rep.Notes, "the active-set-size policy gives every surviving sample one pass to stabilize before the next shrink")
	rep.Took = time.Since(start)
	return rep, nil
}

// RunAblationSyncEps compares first-synchronization bands for the
// multi-reconstruction mode: the paper's 20*eps against synchronizing only
// at the final 2*eps.
func RunAblationSyncEps(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	const benchP = 64
	ds, _, err := loadDataset(o, "realsim")
	if err != nil {
		return nil, err
	}
	machine := calibrate(o, ds)
	factor := float64(dataset.Specs["realsim"].FullTrain) / float64(ds.Train())
	rep := &Report{
		ID:     "ablation-synceps",
		Title:  fmt.Sprintf("First gradient sync band on %s, Multi5pc (modeled at p=%d)", ds.Name, benchP),
		Header: []string{"first-sync", "iterations", "recons", "mean-active", "modeled-t(s)"},
	}
	for _, syncFactor := range []float64{10, 5, 1} { // bands of 20*eps, 10*eps, 2*eps
		cfg := core.Config{
			Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: o.Eps,
			Heuristic: core.Multi5pc, FirstSyncFactor: syncFactor,
			RecordTrace: true, DatasetName: ds.Name,
		}
		_, st, err := core.TrainParallel(ds.X, ds.Y, 1, cfg)
		if err != nil {
			return nil, err
		}
		b, err := perfmodel.Evaluate(st.Trace.ScaledUp(factor), benchP, machine)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%g*eps", 2*syncFactor), i64toa(st.Iterations), itoa(st.Reconstructions),
			pct(st.Trace.MeanActiveFraction()), fmt.Sprintf("%.3f", b.Total()),
		})
	}
	rep.Notes = append(rep.Notes, "the paper chooses 20*eps so false eliminations are repaired before full convergence")
	rep.Took = time.Since(start)
	return rep, nil
}

// RunAblationCache varies the kernel-cache budget of the libsvm-enhanced
// baseline, demonstrating the Section III-A2 argument for why the
// distributed solver avoids a cache: hit rates (and the benefit) fall as
// the dataset outgrows the budget.
func RunAblationCache(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	ds, _, err := loadDataset(o, "mnist38")
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "ablation-cache",
		Title:  fmt.Sprintf("Kernel-cache budget in libsvm-enhanced on %s", ds.Name),
		Header: []string{"cache", "hit-rate", "evictions", "kernel-evals", "elapsed"},
	}
	rowBytes := int64(8 * ds.Train())
	budgets := []struct {
		name  string
		bytes int64
	}{
		{"none", 0},
		{"16 rows", 16 * rowBytes},
		{"n/8 rows", int64(ds.Train()/8) * rowBytes},
		{"full", 1 << 30},
	}
	for _, b := range budgets {
		cfg := smo.Config{
			Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: o.Eps,
			Workers: o.BaselineWorkers, CacheBytes: b.bytes, Shrinking: true,
		}
		t0 := time.Now()
		res, err := smo.Train(ds.X, ds.Y, cfg)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(t0)
		hitRate := 0.0
		if h, m := res.CacheHits, res.CacheMisses; h+m > 0 {
			hitRate = float64(h) / float64(h+m)
		}
		rep.Rows = append(rep.Rows, []string{
			b.name, pct(hitRate), fmt.Sprintf("%d", res.CacheEvictions),
			fmt.Sprintf("%d", res.KernelEvals), elapsed.Round(time.Millisecond).String(),
		})
	}
	rep.Notes = append(rep.Notes, "the distributed solver forgoes the cache entirely: Theta(N^2) space cannot scale")
	rep.Took = time.Since(start)
	return rep, nil
}

// RunAblationWSS compares working-set selection rules: the paper's maximal
// violating pair (Keerthi et al.) against libsvm's second-order gain rule,
// on both the iterative schedule and the modeled cluster time.
func RunAblationWSS(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	const benchP = 64
	ds, _, err := loadDataset(o, "codrna")
	if err != nil {
		return nil, err
	}
	machine := calibrate(o, ds)
	factor := float64(dataset.Specs["codrna"].FullTrain) / float64(ds.Train())
	rep := &Report{
		ID:    "ablation-wss",
		Title: fmt.Sprintf("Working-set selection on %s (modeled at p=%d)", ds.Name, benchP),
		Header: []string{"selection", "heuristic", "iterations", "kernel-evals", "mean-active",
			"modeled-t(s)", "test-acc(%)"},
	}
	for _, h := range []core.Heuristic{core.Original, core.Multi5pc} {
		for _, second := range []bool{false, true} {
			cfg := core.Config{
				Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: o.Eps,
				Heuristic: h, SecondOrder: second, RecordTrace: true, DatasetName: ds.Name,
			}
			m, st, err := core.TrainParallel(ds.X, ds.Y, 1, cfg)
			if err != nil {
				return nil, err
			}
			b, err := perfmodel.Evaluate(st.Trace.ScaledUp(factor), benchP, machine)
			if err != nil {
				return nil, err
			}
			acc, err := m.Evaluate(ds.TestX, ds.TestY)
			if err != nil {
				return nil, err
			}
			sel := "max-violating-pair"
			if second {
				sel = "second-order"
			}
			rep.Rows = append(rep.Rows, []string{
				sel, h.Name, i64toa(st.Iterations), fmt.Sprintf("%d", st.KernelEvals),
				pct(st.Trace.MeanActiveFraction()), fmt.Sprintf("%.3f", b.Total()), f2(acc.Accuracy),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"the paper uses the maximal violating pair; the second-order rule costs one extra Allreduce per iteration and typically converges in far fewer iterations")
	rep.Took = time.Since(start)
	return rep, nil
}
