package bench

import (
	"time"

	"repro/internal/kernel"
)

// RunKernelRow measures the kernel row engine against the pairwise path on
// a sparse and a dense synthetic dataset: ns per kernel evaluation for
//
//   - pairwise: a Cross loop (two-pointer merge per target, the pre-engine
//     hot path of every solver);
//   - row: one batched RowInto (pivot scattered into a dense scratch once,
//     each target an indexed gather);
//   - 2x row: the up/low pair as two separate row batches;
//   - fused pair: PairRowsInto (both pivots scattered, each target's CSR
//     payload traversed once for both values — the per-iteration shape of
//     the SMO gradient pass).
//
// The speedup columns are pairwise/row and 2x-row/fused.
func RunKernelRow(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	rep := &Report{
		ID:    "kernelrow",
		Title: "Kernel row engine: pairwise vs dense-scratch vs fused pair",
		Header: []string{"dataset", "n", "avg nnz", "pairwise ns/eval", "row ns/eval",
			"2x row ns/eval", "fused ns/eval", "row speedup", "fused speedup"},
	}
	for _, name := range []string{"realsim", "url", "higgs"} {
		ds, _, err := loadDataset(o, name)
		if err != nil {
			return nil, err
		}
		ev := kernel.NewEvaluator(kernel.FromSigma2(ds.Sigma2), ds.X)
		tm := measureKernelRow(ev, 40*time.Millisecond)
		rep.Rows = append(rep.Rows, []string{
			ds.Name, itoa(ds.Train()), f1(ds.X.AvgRowNNZ()),
			f1(tm.pairwise), f1(tm.row), f1(tm.row2), f1(tm.pair),
			f2(tm.pairwise / tm.row), f2(tm.row2 / tm.pair),
		})
	}
	rep.Notes = append(rep.Notes,
		"row speedup = pairwise / row; fused speedup = 2x row / fused pair",
		"pivots strided deterministically; every dataset row is a target, as in a gradient pass over a full active set")
	rep.Took = time.Since(start)
	return rep, nil
}

// kernelRowTiming holds ns-per-evaluation for the four variants.
type kernelRowTiming struct {
	pairwise, row, row2, pair float64
}

// measureKernelRow times each variant for roughly budget, striding pivot
// rows deterministically so short and long rows are sampled alike.
func measureKernelRow(ev *kernel.Evaluator, budget time.Duration) kernelRowTiming {
	n := ev.X.Rows()
	targets := make([]int, n)
	for i := range targets {
		targets[i] = i
	}
	dstU := make([]float64, n)
	dstL := make([]float64, n)
	var scr kernel.Scratch
	pivot := func(k int) int { return (k * 2654435761) % n }

	timeIt := func(pass func(k int) uint64) float64 {
		var evals uint64
		k := 0
		start := time.Now()
		for time.Since(start) < budget {
			evals += pass(k)
			k++
		}
		return float64(time.Since(start).Nanoseconds()) / float64(evals)
	}

	var tm kernelRowTiming
	tm.pairwise = timeIt(func(k int) uint64 {
		i := pivot(k)
		row, norm := ev.X.RowView(i), ev.Norm(i)
		for t, j := range targets {
			dstU[t] = ev.Cross(j, row, norm)
		}
		return uint64(n)
	})
	tm.row = timeIt(func(k int) uint64 {
		i := pivot(k)
		ev.RowInto(&scr, ev.X.RowView(i), ev.Norm(i), targets, dstU)
		return uint64(n)
	})
	tm.row2 = timeIt(func(k int) uint64 {
		i, j := pivot(k), pivot(k+1)
		ev.RowInto(&scr, ev.X.RowView(i), ev.Norm(i), targets, dstU)
		ev.RowInto(&scr, ev.X.RowView(j), ev.Norm(j), targets, dstL)
		return uint64(2 * n)
	})
	tm.pair = timeIt(func(k int) uint64 {
		i, j := pivot(k), pivot(k+1)
		ev.PairRowsInto(&scr, ev.X.RowView(i), ev.X.RowView(j), ev.Norm(i), ev.Norm(j), targets, dstU, dstL)
		return uint64(2 * n)
	})
	return tm
}
