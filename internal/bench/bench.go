// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section (Section V) on synthetic
// stand-ins for the ten datasets, printing the same rows/series the paper
// reports.
//
// Methodology (see DESIGN.md section 2 for the full rationale):
//
//   - the libsvm-enhanced baseline (internal/smo, goroutine workers playing
//     the role of OpenMP threads, kernel cache enabled) is executed for
//     real and timed;
//   - the distributed solver is executed for real once per heuristic to
//     record its trace (the iterate sequence is process-count independent);
//   - the trace is evaluated by the analytic performance model
//     (internal/perfmodel) for every process count in the figure, using
//     the host-calibrated kernel-evaluation cost and InfiniBand-FDR
//     network constants;
//   - speedups are reported relative to the baseline's own modeled
//     full-scale time (its schedule is also recorded and evaluated with
//     the same calibrated constants), exactly as the paper's bars are
//     relative to libsvm-enhanced on 16 cores; the measured wall time of
//     the baseline run is printed alongside for transparency.
//
// Dataset sizes are scaled down (the scale is printed with each report) so
// a full sweep runs on one machine; shapes, not absolute times, are the
// reproduction target.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Options configures a harness run.
type Options struct {
	// Scale multiplies each experiment's default dataset scale
	// (1.0 = defaults tuned for a few minutes per figure; smaller is
	// quicker and noisier).
	Scale float64
	// Eps is the solver tolerance; 0 means 1e-3 (libsvm's default).
	Eps float64
	// BaselineWorkers is the thread count for libsvm-enhanced; 0 means 16
	// (the paper's one-node configuration).
	BaselineWorkers int
	// MemBudget is the resident-byte budget of the out-of-core stream
	// experiment; 0 means a quarter of each dataset's CSR payload.
	MemBudget int64
	// Verbose enables progress logging to Log.
	Verbose bool
	// Log receives progress messages (defaults to io.Discard).
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Eps <= 0 {
		o.Eps = 1e-3
	}
	if o.BaselineWorkers <= 0 {
		o.BaselineWorkers = 16
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Verbose {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Report is a regenerated table or figure, as rows of formatted cells.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	Took   time.Duration
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range r.Rows {
		printRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintf(w, "  (took %v)\n\n", r.Took.Round(time.Millisecond))
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

// Experiments returns every experiment in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Support-vector fraction across datasets (Figure 1 premise)", Run: RunFigure1},
		{ID: "table2", Title: "All thirteen shrinking heuristics on one dataset (Table II)", Run: RunTable2},
		{ID: "table3", Title: "Dataset characteristics and hyper-parameters (Table III)", Run: RunTable3},
		{ID: "fig3", Title: "UCI HIGGS speedup vs libsvm-enhanced, up to 4096 processes (Figure 3)", Run: RunFigure3},
		{ID: "fig4", Title: "Offending URL speedup vs libsvm-enhanced, up to 4096 processes (Figure 4)", Run: RunFigure4},
		{ID: "fig5", Title: "Forest covertype speedup, up to 1024 processes (Figure 5)", Run: RunFigure5},
		{ID: "fig6", Title: "MNIST speedup, up to 512 processes (Figure 6)", Run: RunFigure6},
		{ID: "fig7", Title: "real-sim speedup, up to 256 processes (Figure 7)", Run: RunFigure7},
		{ID: "fig8", Title: "Fraction of time in gradient reconstruction, Multi5pc (Figure 8)", Run: RunFigure8},
		{ID: "table4", Title: "Speedup vs libsvm-sequential on smaller datasets (Table IV)", Run: RunTable4},
		{ID: "table5", Title: "Testing accuracy: proposed solver vs libsvm-enhanced (Table V)", Run: RunTable5},
		{ID: "ablation-subsequent", Title: "Ablation: subsequent shrink threshold (active-set size vs fixed)", Run: RunAblationSubsequent},
		{ID: "ablation-synceps", Title: "Ablation: first gradient sync at 20*eps vs 2*eps", Run: RunAblationSyncEps},
		{ID: "ablation-cache", Title: "Ablation: kernel-cache budget in the libsvm-enhanced baseline", Run: RunAblationCache},
		{ID: "ablation-wss", Title: "Ablation: working-set selection (max violating pair vs second-order)", Run: RunAblationWSS},
		{ID: "wss", Title: "Registry engines: smo (first-order) vs smo2 (second-order WSS), measured", Run: RunWSS},
		{ID: "dcsvm", Title: "Divide-and-conquer training vs exact full solves (wall-clock)", Run: RunDCSVM},
		{ID: "linear", Title: "Linear fast path (explicit w) vs kernel engines on sparse text", Run: RunLinear},
		{ID: "stream", Title: "Out-of-core streaming load vs in-memory (peak heap, parity)", Run: RunStream},
		{ID: "oracle", Title: "Cross-solver correctness oracle: duality gap and KKT violations per engine", Run: RunOracle},
		{ID: "serve", Title: "Serving throughput: coalescing, packed layout, and overload shedding", Run: RunServe},
		{ID: "ckpt", Title: "Checkpoint overhead and resume cost per training engine", Run: RunCkpt},
		{ID: "tasks", Title: "Task variants: cold retrain vs incremental warm-start update (SVR, one-class)", Run: RunTasks},
		{ID: "kernelrow", Title: "Kernel row engine: pairwise vs dense-scratch vs fused pair (ns/eval)", Run: RunKernelRow},
		{ID: "validate-model", Title: "Cross-check: analytic model vs executed virtual time", Run: RunValidateModel},
	}
}

// ByID resolves an experiment. The pseudo-ID "all" is not resolved here;
// callers iterate Experiments themselves.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v and \"all\")", id, ids)
}

func f1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string  { return fmt.Sprintf("%.1f%%", 100*v) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func i64toa(v int64) string { return fmt.Sprintf("%d", v) }
