package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/dcsvm"
	"repro/internal/kernel"
	"repro/internal/smo"
)

// RunCkpt measures the cost of crash-consistent checkpointing for every
// training engine: wall-clock with and without periodic checkpoints (the
// budget is <5% overhead), the number of snapshot generations written, and
// the cost of resuming from the newest snapshot. Plain and checkpointed
// runs are interleaved and the fastest of each is reported, which
// suppresses scheduler noise on runs this short.
func RunCkpt(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	ds, _, err := loadDataset(o, "blobs")
	if err != nil {
		return nil, err
	}
	kp := kernel.FromSigma2(ds.Sigma2)
	// The same operating point as the svmtrain defaults: a snapshot every
	// 1000 iterations, debounced to at most one fsync per 100ms.
	const every = 1000
	const debounce = 100 * time.Millisecond
	const reps = 5

	rep := &Report{
		ID:     "ckpt",
		Title:  fmt.Sprintf("Checkpoint overhead and resume cost on %s (snapshot every %d iterations)", ds.Name, every),
		Header: []string{"engine", "plain", "checkpointed", "overhead", "saves", "resume", "resume-iters"},
	}

	type engine struct {
		name string
		// run trains once: w == nil disables checkpointing, resume == nil
		// starts cold. Returns the run's iteration count (the polish count
		// for dc, whose earlier work is per-cluster).
		run func(w *ckpt.Writer, resume []float64) (int64, error)
	}
	engines := []engine{
		{name: "core (p=2)", run: func(w *ckpt.Writer, resume []float64) (int64, error) {
			cfg := core.Config{
				Kernel: kp, C: ds.C, Eps: o.Eps, Heuristic: core.Multi5pc,
				Checkpoint: w, CheckpointEvery: every, InitialAlpha: resume,
			}
			_, st, err := core.TrainParallel(ds.X, ds.Y, 2, cfg)
			if err != nil {
				return 0, err
			}
			return st.Iterations, nil
		}},
		{name: "smo", run: func(w *ckpt.Writer, resume []float64) (int64, error) {
			cfg := smo.Config{
				Kernel: kp, C: ds.C, Eps: o.Eps, Workers: o.BaselineWorkers,
				CacheBytes: 1 << 30, Shrinking: true,
				Checkpoint: w, CheckpointEvery: every, InitialAlpha: resume,
			}
			res, err := smo.Train(ds.X, ds.Y, cfg)
			if err != nil {
				return 0, err
			}
			return int64(res.Iterations), nil
		}},
		{name: "dc", run: func(w *ckpt.Writer, resume []float64) (int64, error) {
			cfg := dcsvm.Config{
				Kernel: kp, C: ds.C, Eps: o.Eps, Heuristic: core.Multi5pc,
				Clusters: 4, Seed: 7, SubSolver: "smo", Workers: o.BaselineWorkers,
				PolishFull: true,
				Checkpoint: w, CheckpointEvery: every, ResumeAlpha: resume,
			}
			_, st, err := dcsvm.Train(ds.X, ds.Y, cfg)
			if err != nil {
				return 0, err
			}
			return int64(st.PolishIterations), nil
		}},
	}

	for _, e := range engines {
		// Plain and checkpointed runs are interleaved in back-to-back pairs
		// and the fastest of each is kept: GC pauses and scheduler drift then
		// hit both sides alike instead of biasing one column. Each
		// checkpointed repetition writes into a fresh directory; the last one
		// is kept for the resume measurement below.
		var plain, checked time.Duration
		var w *ckpt.Writer
		dir := ""
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			if _, err := e.run(nil, nil); err != nil {
				return nil, fmt.Errorf("ckpt %s plain: %w", e.name, err)
			}
			if d := time.Since(t0); i == 0 || d < plain {
				plain = d
			}

			d, err := os.MkdirTemp("", "svmbench-ckpt-")
			if err != nil {
				return nil, err
			}
			if dir != "" {
				os.RemoveAll(dir)
			}
			dir = d
			if w, err = ckpt.NewWriter(d); err != nil {
				return nil, err
			}
			w.SetMinInterval(debounce)
			t0 = time.Now()
			if _, err := e.run(w, nil); err != nil {
				os.RemoveAll(dir)
				return nil, fmt.Errorf("ckpt %s checkpointed: %w", e.name, err)
			}
			if d := time.Since(t0); i == 0 || d < checked {
				checked = d
			}
		}

		st, _, err := ckpt.Load(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("ckpt %s load: %w", e.name, err)
		}
		t0 := time.Now()
		resumeIters, err := e.run(nil, st.Alpha)
		resumed := time.Since(t0)
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("ckpt %s resume: %w", e.name, err)
		}

		overhead := float64(checked-plain) / float64(plain)
		rep.Rows = append(rep.Rows, []string{
			e.name,
			plain.Round(time.Millisecond).String(),
			checked.Round(time.Millisecond).String(),
			pct(overhead),
			itoa(w.Saves()),
			resumed.Round(time.Millisecond).String(),
			i64toa(resumeIters),
		})
		o.logf("ckpt %s: plain %v, checkpointed %v (%.1f%%), %d saves, resume %v in %d iterations",
			e.name, plain, checked, 100*overhead, w.Saves(), resumed, resumeIters)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("budget: overhead <5%% — saves are debounced to one fsync'd generation per %v; negative overhead is timing noise", debounce),
		"resume restarts from the newest on-disk snapshot (written near convergence here, so few iterations remain)")
	rep.Took = time.Since(start)
	return rep, nil
}
