package bench

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/perfmodel"
)

// TestAllDatasetsCharacterization is a whole-pipeline characterization
// run: every registered dataset is trained with Original and Multi5pc,
// and the key reproduction quantities (iterations, SV fraction, mean
// active fraction, modeled time at p=64, shrinking gain, test accuracy)
// are printed side by side. It guards against dataset-generator or solver
// regressions that individual unit tests would miss.
func TestAllDatasetsCharacterization(t *testing.T) {
	if testing.Short() {
		t.Skip("trains every dataset twice; skipped with -short")
	}
	scales := map[string]float64{
		"higgs": 0.0010, "url": 0.0010, "forest": 0.0035, "realsim": 0.025,
		"mnist38": 0.03, "codrna": 0.03, "a9a": 0.06, "w7a": 0.06,
		"rcv1": 0.08, "usps": 0.15, "mushrooms": 0.12, "blobs": 0.5,
	}
	for _, name := range []string{"higgs", "url", "forest", "realsim", "mnist38", "codrna", "a9a", "w7a", "rcv1", "usps", "mushrooms", "blobs"} {
		ds := dataset.MustGenerate(name, scales[name])
		machine := perfmodel.Calibrate(kernel.FromSigma2(ds.Sigma2), ds.X, 20*time.Millisecond)
		type res struct {
			st *core.Stats
			tm float64
		}
		run := func(h core.Heuristic) res {
			cfg := core.Config{Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-3, Heuristic: h, RecordTrace: true, MaxIter: 400000}
			m, st, err := core.TrainParallel(ds.X, ds.Y, 1, cfg)
			if err != nil {
				t.Fatal(name, err)
			}
			_ = m
			b, err := perfmodel.Evaluate(st.Trace, 64, machine)
			if err != nil {
				t.Fatal(err)
			}
			return res{st, b.Total()}
		}
		t0 := time.Now()
		orig := run(core.Original)
		best := run(core.Multi5pc)
		el := time.Since(t0)
		cfg := core.Config{Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: 1e-3, Heuristic: core.Multi5pc}
		m, _, err := core.TrainParallel(ds.X, ds.Y, 1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		acc := -1.0
		if ds.TestX != nil {
			mt, _ := m.Evaluate(ds.TestX, ds.TestY)
			acc = mt.Accuracy
		}
		fmt.Printf("%-10s n=%5d itersO=%7d itersB=%7d svfrac=%.2f meanact=%.2f tO(p64)=%.3f tB(p64)=%.3f gain=%.2fx testacc=%.1f wall=%v\n",
			name, ds.Train(), orig.st.Iterations, best.st.Iterations, m.SVFraction(),
			best.st.Trace.MeanActiveFraction(), orig.tm, best.tm, orig.tm/best.tm, acc, el.Round(time.Millisecond))
	}
}
