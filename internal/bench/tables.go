package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/perfmodel"
	"repro/internal/smo"
)

// RunTable2 sweeps all thirteen Table II heuristics on one mid-size
// dataset, reporting iterations, shrink behaviour and the modeled time at
// a fixed process count — making the aggressive/average/conservative
// classification measurable.
func RunTable2(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	const benchP = 64
	ds, _, err := loadDataset(o, "codrna")
	if err != nil {
		return nil, err
	}
	machine := calibrate(o, ds)
	factor := float64(dataset.Specs["codrna"].FullTrain) / float64(ds.Train())
	rep := &Report{
		ID:    "table2",
		Title: fmt.Sprintf("Heuristic sweep on %s (modeled at p=%d)", ds.Name, benchP),
		Header: []string{"heuristic", "class", "recon-mode", "iterations", "shrinks", "recons",
			"mean-active", "modeled-t(s)", "SVs"},
	}
	for _, h := range core.Table2() {
		run, err := runTraced(o, ds, h)
		if err != nil {
			return nil, err
		}
		b, err := perfmodel.Evaluate(run.stats.Trace.ScaledUp(factor), benchP, machine)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			h.Name, h.Class.String(), h.Recon.String(),
			i64toa(run.stats.Iterations), itoa(run.stats.ShrinkEvents), itoa(run.stats.Reconstructions),
			pct(run.stats.Trace.MeanActiveFraction()), fmt.Sprintf("%.3f", b.Total()), itoa(run.stats.SVCount),
		})
	}
	rep.Notes = append(rep.Notes, "all heuristics converge to the same solution; they differ in when samples are eliminated")
	rep.Took = time.Since(start)
	return rep, nil
}

// RunTable3 reproduces Table III: dataset characteristics and the
// hyper-parameter settings, alongside the scaled sizes this harness uses.
func RunTable3(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	rep := &Report{
		ID:    "table3",
		Title: "Dataset characteristics and hyper-parameter settings",
		Header: []string{"name", "paper-train", "paper-test", "dim", "density", "C", "sigma^2",
			"harness-train", "harness-test"},
	}
	for _, name := range []string{"higgs", "url", "forest", "realsim", "mnist38", "codrna", "a9a", "w7a", "rcv1", "usps", "mushrooms"} {
		spec := dataset.Specs[name]
		scale := defaultScales[name] * o.Scale
		tr, te := spec.ScaledCounts(scale)
		testStr := "N/A"
		if spec.FullTest > 0 {
			testStr = itoa(spec.FullTest)
		}
		rep.Rows = append(rep.Rows, []string{
			name, itoa(spec.FullTrain), testStr, itoa(spec.Dim), fmt.Sprintf("%.4f", spec.Density),
			fmt.Sprintf("%g", spec.C), fmt.Sprintf("%g", spec.Sigma2), itoa(tr), itoa(te),
		})
	}
	rep.Notes = append(rep.Notes, "paper sizes from Table III; harness sizes are the synthetic stand-ins actually trained")
	rep.Took = time.Since(start)
	return rep, nil
}

// table4Entry pins each small dataset to the process count the paper
// reports it at.
var table4Entries = []struct {
	name string
	p    int
}{
	{"a9a", 16},
	{"rcv1", 64},
	{"usps", 4},
	{"mushrooms", 4},
	{"w7a", 16},
}

// RunTable4 reproduces Table IV: relative speedup to libsvm-sequential
// (one worker) on the smaller datasets, for Default / Shrinking (Worst) /
// Shrinking (Best) at the paper's per-dataset process counts.
func RunTable4(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	rep := &Report{
		ID:     "table4",
		Title:  "Relative speedup to libsvm-sequential (smaller datasets)",
		Header: []string{"name", "Default", "Shrinking(Worst)", "Shrinking(Best)", "procs"},
	}
	for _, e := range table4Entries {
		ds, _, err := loadDataset(o, e.name)
		if err != nil {
			return nil, err
		}
		// Table IV is relative to *sequential* libsvm: one worker.
		base, err := runBaseline(o, ds, 1)
		if err != nil {
			return nil, err
		}
		triple, err := runTriple(o, ds)
		if err != nil {
			return nil, err
		}
		ex, err := newExtrapolation(o, ds, base, 1)
		if err != nil {
			return nil, err
		}
		sd, _, err := ex.modeledSpeedup(triple.def.stats.Trace, e.p)
		if err != nil {
			return nil, err
		}
		sw, _, err := ex.modeledSpeedup(triple.worst.stats.Trace, e.p)
		if err != nil {
			return nil, err
		}
		sb, _, err := ex.modeledSpeedup(triple.best.stats.Trace, e.p)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{e.name, f1(sd), f1(sw), f1(sb), itoa(e.p)})
	}
	rep.Notes = append(rep.Notes, "paper: Adult-9 1.5/3.1/3.2@16, RCV1 27/31/39@64, USPS 0.5/0.7/1.3@4, Mushrooms 0.4/1.09/1.9@4, w7a 1.7/2.4/3.1@16")
	rep.Took = time.Since(start)
	return rep, nil
}

// RunTable5 reproduces Table V: testing accuracy of the proposed solver
// (executed for real with an aggressive heuristic over several ranks)
// against libsvm-enhanced, on the datasets with test splits.
func RunTable5(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	rep := &Report{
		ID:     "table5",
		Title:  "Testing accuracy: proposed (Multi5pc, p=4, executed) vs libsvm-enhanced",
		Header: []string{"name", "test-acc ours (%)", "test-acc libsvm (%)", "delta"},
	}
	for _, name := range []string{"a9a", "usps", "mnist38", "codrna", "w7a"} {
		ds, _, err := loadDataset(o, name)
		if err != nil {
			return nil, err
		}
		if ds.TestX == nil {
			return nil, fmt.Errorf("table5: dataset %s has no test split", name)
		}
		cfg := core.Config{
			Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: o.Eps, Heuristic: core.Multi5pc,
		}
		ours, _, err := core.TrainParallel(ds.X, ds.Y, 4, cfg)
		if err != nil {
			return nil, err
		}
		oursAcc, err := ours.Evaluate(ds.TestX, ds.TestY)
		if err != nil {
			return nil, err
		}
		base, err := smo.Train(ds.X, ds.Y, smo.Config{
			Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: o.Eps,
			Workers: o.BaselineWorkers, CacheBytes: 1 << 30, Shrinking: true,
		})
		if err != nil {
			return nil, err
		}
		baseAcc, err := base.Model.Evaluate(ds.TestX, ds.TestY)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			name, f2(oursAcc.Accuracy), f2(baseAcc.Accuracy), f2(oursAcc.Accuracy - baseAcc.Accuracy),
		})
	}
	rep.Notes = append(rep.Notes, "the paper's claim: shrinking plus gradient reconstruction matches libsvm accuracy")
	rep.Took = time.Since(start)
	return rep, nil
}
