package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dcsvm"
	"repro/internal/kernel"
	"repro/internal/linear"
	"repro/internal/model"
	"repro/internal/smo"
	"repro/internal/sparse"
)

// RunLinear measures the explicit-w linear fast path against the kernel
// engines on the sparse-text datasets (rcv1, real-sim, url shapes), where
// linear kernels are the norm and the paper's kernel machinery is pure
// overhead. All engines solve the same linear-kernel problem; wall-clock is
// measured, not modeled. The generated sets carry no test split, so each is
// cut 80/20 (rows are i.i.d. draws from the generator, making a contiguous
// holdout unbiased).
func RunLinear(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	rep := &Report{
		ID:     "linear",
		Title:  "Linear fast path (explicit w) vs kernel engines on sparse text (measured wall-clock)",
		Header: []string{"dataset", "solver", "time", "test-acc", "speedup-vs-smo"},
	}

	for _, name := range []string{"rcv1", "realsim", "url"} {
		ds, scale, err := loadDataset(o, name)
		if err != nil {
			return nil, err
		}
		trainX, trainY, testX, testY, err := holdout(ds.X, ds.Y)
		if err != nil {
			return nil, err
		}
		kp := kernel.Params{Type: kernel.Linear}

		acc := func(m *model.Model) (float64, error) {
			met, err := m.Evaluate(testX, testY)
			return met.Accuracy, err
		}
		var smoTime time.Duration
		addRow := func(solver string, took time.Duration, a float64) {
			speed := "1.00x"
			if solver != "smo" {
				speed = f2(smoTime.Seconds()/took.Seconds()) + "x"
			}
			rep.Rows = append(rep.Rows, []string{
				name, solver, took.Round(time.Millisecond).String(), f2(a) + "%", speed,
			})
		}

		// Kernel baseline 1: libsvm-enhanced with a linear kernel.
		t0 := time.Now()
		sres, err := smo.Train(trainX, trainY, smo.Config{
			Kernel: kp, C: ds.C, Eps: o.Eps,
			Workers: o.BaselineWorkers, CacheBytes: 1 << 30, Shrinking: true,
		})
		if err != nil {
			return nil, fmt.Errorf("smo on %s: %w", name, err)
		}
		smoTime = time.Since(t0)
		a, err := acc(sres.Model)
		if err != nil {
			return nil, err
		}
		addRow("smo", smoTime, a)

		// Kernel baseline 2: divide-and-conquer over the same linear kernel.
		t0 = time.Now()
		dm, _, err := dcsvm.Train(trainX, trainY, dcsvm.Config{
			Kernel: kp, C: ds.C, Eps: o.Eps, Heuristic: core.Multi5pc,
			Clusters: 8, Seed: 11,
		})
		if err != nil {
			return nil, fmt.Errorf("dcsvm on %s: %w", name, err)
		}
		dcTime := time.Since(t0)
		if a, err = acc(dm); err != nil {
			return nil, err
		}
		addRow("dcsvm", dcTime, a)

		// The fast path, both variants.
		for _, v := range []linear.Variant{linear.DCD, linear.MISO} {
			t0 = time.Now()
			lres, err := linear.Train(trainX, trainY, linear.Config{
				Variant: v, C: ds.C, Eps: o.Eps, Seed: 11,
			})
			if err != nil {
				return nil, fmt.Errorf("linear/%s on %s: %w", v, name, err)
			}
			lTime := time.Since(t0)
			if a, err = acc(lres.Model); err != nil {
				return nil, err
			}
			addRow("linear-"+v.String(), lTime, a)
			o.logf("%s linear-%s: %v (%.1fx vs smo), gap %.3e, nnz(w) %d",
				name, v, lTime.Round(time.Millisecond),
				smoTime.Seconds()/lTime.Seconds(), lres.Gap, lres.NNZ())
		}
		o.logf("%s: %d train / %d holdout at scale %.4f", name, trainX.Rows(), testX.Rows(), scale)
	}

	rep.Notes = append(rep.Notes,
		"all engines solve the same linear-kernel problem; speedups are measured wall-clock against smo on the same split",
		"linear-dcd is dual coordinate descent (hinge), linear-miso the incremental primal (squared hinge) — accuracies may differ slightly across losses",
		"these generated sets have no published test split, so accuracy is on a held-out 20% of the generated sample")
	rep.Took = time.Since(start)
	return rep, nil
}

// holdout splits (x, y) into a leading 80% train and trailing 20% test view.
func holdout(x *sparse.Matrix, y []float64) (trainX *sparse.Matrix, trainY []float64, testX *sparse.Matrix, testY []float64, err error) {
	n := x.Rows()
	cut := n * 4 / 5
	if cut == 0 || cut == n {
		return nil, nil, nil, nil, fmt.Errorf("bench: %d samples is too few for a holdout split", n)
	}
	if trainX, err = x.RowRangeView(0, cut); err != nil {
		return nil, nil, nil, nil, err
	}
	if testX, err = x.RowRangeView(cut, n); err != nil {
		return nil, nil, nil, nil, err
	}
	return trainX, y[:cut], testX, y[cut:], nil
}
