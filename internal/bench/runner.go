package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/smo"
)

// defaultScales are per-dataset generation scales tuned so a figure
// regenerates in a couple of minutes; Options.Scale multiplies them.
// EXPERIMENTS.md records the resulting sample counts next to the paper's.
var defaultScales = map[string]float64{
	"higgs":     0.0020,
	"url":       0.0020,
	"forest":    0.0050,
	"realsim":   0.0500,
	"mnist38":   0.0600,
	"codrna":    0.0500,
	"a9a":       0.1200,
	"w7a":       0.1200,
	"rcv1":      0.1500,
	"usps":      0.3000,
	"mushrooms": 0.2500,
	"blobs":     1.0000,
}

// loadDataset generates the synthetic stand-in for name at the harness
// scale.
func loadDataset(o Options, name string) (*dataset.Dataset, float64, error) {
	spec, err := dataset.Lookup(name)
	if err != nil {
		return nil, 0, err
	}
	scale := defaultScales[name] * o.Scale
	if scale <= 0 {
		scale = 0.01
	}
	ds, err := dataset.Generate(spec, scale)
	if err != nil {
		return nil, 0, err
	}
	o.logf("dataset %s: %d train / %d test samples (scale %.4f of %d)",
		name, ds.Train(), ds.Test(), scale, spec.FullTrain)
	return ds, scale, nil
}

// baselineResult is one timed libsvm-enhanced run.
type baselineResult struct {
	res     *smo.Result
	elapsed time.Duration
}

// runBaseline trains libsvm-enhanced: kernel cache enabled (the paper
// grants it a node's entire memory), shrinking on, the given worker count.
// The recorded trace drives the full-scale baseline model.
func runBaseline(o Options, ds *dataset.Dataset, workers int) (*baselineResult, error) {
	cfg := smo.Config{
		Kernel:      kernel.FromSigma2(ds.Sigma2),
		C:           ds.C,
		Eps:         o.Eps,
		Workers:     workers,
		CacheBytes:  1 << 30,
		Shrinking:   true,
		RecordTrace: true,
		DatasetName: ds.Name,
	}
	start := time.Now()
	res, err := smo.Train(ds.X, ds.Y, cfg)
	if err != nil {
		return nil, fmt.Errorf("baseline on %s: %w", ds.Name, err)
	}
	elapsed := time.Since(start)
	o.logf("baseline %s (%d workers): %v, %d iterations, %d SVs",
		ds.Name, workers, elapsed.Round(time.Millisecond), res.Iterations, res.Model.NumSV())
	return &baselineResult{res: res, elapsed: elapsed}, nil
}

// tracedRun is a distributed-solver execution with its recorded trace.
type tracedRun struct {
	model *model.Model
	stats *core.Stats
}

// runTraced executes the distributed solver once (on one rank — the
// iterate sequence is p-independent) and records the trace.
func runTraced(o Options, ds *dataset.Dataset, h core.Heuristic) (*tracedRun, error) {
	cfg := core.Config{
		Kernel:      kernel.FromSigma2(ds.Sigma2),
		C:           ds.C,
		Eps:         o.Eps,
		Heuristic:   h,
		RecordTrace: true,
		DatasetName: ds.Name,
	}
	start := time.Now()
	m, st, err := core.TrainParallel(ds.X, ds.Y, 1, cfg)
	if err != nil {
		return nil, fmt.Errorf("traced run %s/%s: %w", ds.Name, h.Name, err)
	}
	o.logf("traced %s/%s: %v, %d iterations, %d shrink events, %d recons, %d SVs",
		ds.Name, h.Name, time.Since(start).Round(time.Millisecond),
		st.Iterations, st.ShrinkEvents, st.Reconstructions, st.SVCount)
	return &tracedRun{model: m, stats: st}, nil
}

// calibrate builds the modeled machine for a dataset.
func calibrate(o Options, ds *dataset.Dataset) perfmodel.Machine {
	m := perfmodel.Calibrate(kernel.FromSigma2(ds.Sigma2), ds.X, 30*time.Millisecond)
	o.logf("calibrated %s: lambda = %.1f ns/eval, row = %.0f bytes",
		ds.Name, m.Lambda*1e9, m.RowBytes)
	return m
}

// extrapolation bundles the full-scale evaluation inputs for one dataset:
// the scale-up factor from the generated size to the paper's size, the
// machine model, and the modeled full-scale baseline time.
type extrapolation struct {
	factor   float64
	machine  perfmodel.Machine
	workers  int
	baseline float64 // modeled baseline seconds at full scale
}

// newExtrapolation prepares full-scale evaluation: the traces recorded on
// the scaled-down dataset have their population counts multiplied up to
// the published dataset size, so the per-iteration compute/communication
// balance — which sets the shape of every scaling figure — matches the
// paper's setup. The baseline is modeled from its own recorded schedule
// with the same calibrated lambda (uncached: a full-size kernel cache
// cannot fit, per the paper's Section III-A2).
func newExtrapolation(o Options, ds *dataset.Dataset, base *baselineResult, workers int) (extrapolation, error) {
	spec := dataset.Specs[ds.Name]
	factor := float64(spec.FullTrain) / float64(ds.Train())
	machine := calibrate(o, ds)
	baseTime, err := perfmodel.EvaluateBaseline(base.res.Trace.ScaledUp(factor), workers, machine)
	if err != nil {
		return extrapolation{}, err
	}
	o.logf("extrapolation %s: factor %.0fx, modeled baseline (%d workers, full scale) %.1fs",
		ds.Name, factor, workers, baseTime)
	return extrapolation{factor: factor, machine: machine, workers: workers, baseline: baseTime}, nil
}

// modeledSpeedup returns modeled_baseline / modeled_time(p), both at full
// dataset scale.
func (e extrapolation) modeledSpeedup(tr *core.Trace, p int) (float64, perfmodel.Breakdown, error) {
	b, err := perfmodel.Evaluate(tr.ScaledUp(e.factor), p, e.machine)
	if err != nil {
		return 0, b, err
	}
	return e.baseline / b.Total(), b, nil
}

// heuristicTriple bundles the figures' three bars.
type heuristicTriple struct {
	def, worst, best *tracedRun
}

// runTriple executes Original, Shrinking(Worst)=Single50pc and
// Shrinking(Best)=Multi5pc — the paper reports Multi5pc as best and
// Single50pc as worst on every dataset.
func runTriple(o Options, ds *dataset.Dataset) (heuristicTriple, error) {
	var t heuristicTriple
	var err error
	if t.def, err = runTraced(o, ds, core.Original); err != nil {
		return t, err
	}
	if t.worst, err = runTraced(o, ds, core.Single50pc); err != nil {
		return t, err
	}
	if t.best, err = runTraced(o, ds, core.Multi5pc); err != nil {
		return t, err
	}
	return t, nil
}
