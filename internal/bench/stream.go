package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/linear"
)

// RunStream measures the out-of-core streaming data path against the
// in-memory load on the sparse-text datasets: wall-clock for load+train,
// peak live heap during each phase, and spill-cache behaviour, with a
// bit-parity check that the out-of-core model equals the in-memory one.
// The resident budget is o.MemBudget, or a quarter of the spilled payload
// when unset — small enough that training must churn the LRU.
func RunStream(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	rep := &Report{
		ID:     "stream",
		Title:  "Out-of-core streaming load vs in-memory (measured wall-clock, peak heap)",
		Header: []string{"dataset", "path", "budget", "load+train", "peak-heap", "spill", "loads/hits/evict", "w-parity"},
	}

	dir, err := os.MkdirTemp("", "svm-stream-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	for _, name := range []string{"rcv1", "realsim"} {
		ds, scale, err := loadDataset(o, name)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, name+".libsvm")
		if err := dataset.SaveLibsvmFile(path, ds.X, ds.Y); err != nil {
			return nil, err
		}
		cfg := linear.Config{C: ds.C, Eps: o.Eps, Seed: 11}

		// In-memory reference: plain load, plain train.
		runtime.GC()
		peak := heapSampler()
		t0 := time.Now()
		x, y, err := dataset.LoadLibsvmFile(path)
		if err != nil {
			return nil, err
		}
		memRes, err := linear.Train(x, y, cfg)
		if err != nil {
			return nil, fmt.Errorf("linear on %s: %w", name, err)
		}
		memTime := time.Since(t0)
		memPeak := peak()
		rep.Rows = append(rep.Rows, []string{
			name, "in-memory", "-", memTime.Round(time.Millisecond).String(),
			dataset.FormatByteSize(int64(memPeak)), "-", "-", "-",
		})

		// Out-of-core: chunked parse spilled to disk, budgeted LRU.
		budget := o.MemBudget
		if budget <= 0 {
			budget = int64(x.ByteSize()) / 4
		}
		x, y = nil, nil
		runtime.GC()
		peak = heapSampler()
		t0 = time.Now()
		ooc, oy, err := dataset.OpenOOC(path, dataset.OOCOptions{SpillDir: dir, MemBudget: budget})
		if err != nil {
			return nil, err
		}
		oocRes, err := linear.Train(ooc, oy, cfg)
		if err != nil {
			ooc.Close()
			return nil, fmt.Errorf("linear/ooc on %s: %w", name, err)
		}
		oocTime := time.Since(t0)
		oocPeak := peak()
		loads, hits, evictions := ooc.Stats()
		spill := ooc.ByteSize()
		ooc.Close()

		parity := "bit-identical"
		if !sameBits(memRes.W, oocRes.W) {
			parity = "DIFFERS"
		}
		rep.Rows = append(rep.Rows, []string{
			name, "out-of-core", dataset.FormatByteSize(budget),
			oocTime.Round(time.Millisecond).String(),
			dataset.FormatByteSize(int64(oocPeak)),
			dataset.FormatByteSize(spill),
			fmt.Sprintf("%d/%d/%d", loads, hits, evictions), parity,
		})
		o.logf("%s at scale %.4f: in-memory %v (peak %s) vs out-of-core %v (peak %s, budget %s)",
			name, scale, memTime.Round(time.Millisecond), dataset.FormatByteSize(int64(memPeak)),
			oocTime.Round(time.Millisecond), dataset.FormatByteSize(int64(oocPeak)),
			dataset.FormatByteSize(budget))
		if parity != "bit-identical" {
			return nil, fmt.Errorf("stream: out-of-core model differs from in-memory on %s", name)
		}
	}

	rep.Notes = append(rep.Notes,
		"out-of-core spills parsed CSR blocks to a temp file and trains through a byte-budgeted LRU of resident blocks",
		"training is deterministic in (data, seed), so the out-of-core model must be bit-identical to the in-memory one (checked)",
		"peak-heap is the sampled live-heap maximum across load+train; the in-memory row includes the whole CSR payload, the out-of-core row tracks the budget")
	rep.Took = time.Since(start)
	return rep, nil
}

// heapSampler samples the live heap until the returned stop function is
// called, which reports the observed maximum.
func heapSampler() func() uint64 {
	var peak atomic.Uint64
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			select {
			case <-done:
				return
			case <-t.C:
			}
		}
	}()
	return func() uint64 {
		close(done)
		wg.Wait()
		return peak.Load()
	}
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
