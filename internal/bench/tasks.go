package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/tasks"
)

// RunTasks measures the incremental-update promise of internal/tasks: a
// model trained on a base set absorbs appended rows by warm-starting from
// its recovered dual point, and must reach the cold-retrain objective
// within the oracle gap tolerance at lower wall-clock. Both the cold and
// incremental models are verified through the per-task oracle, so a row
// only reads "ok" when the solution is a proven eps-approximate optimum.
func RunTasks(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	rep := &Report{
		ID:     "tasks",
		Title:  "Task variants: cold retrain vs incremental warm-start update at matched oracle gap",
		Header: []string{"task", "n-base", "n-full", "cold", "cold-gap", "incr", "incr-gap", "|dObj|", "obj-tol", "speedup", "status"},
	}

	nBase := int(1200 * o.Scale)
	if nBase < 100 {
		nBase = 100
	}
	nFull := nBase + nBase/20 // +5% appended rows, the incremental-batch regime
	kp := kernel.Params{Type: kernel.Gaussian, Gamma: 0.5}
	cfg := tasks.Config{Kernel: kp, Eps: o.Eps, Shrinking: true, SecondOrder: true, CacheBytes: 1 << 28}

	type caseResult struct {
		task             string
		cold, incr       time.Duration
		coldGap, incrGap float64
		coldObj, incrObj float64
		objTol           float64
		coldRep, incrRep *oracle.Report
		verifyErr        error
	}
	var results []caseResult

	// epsilon-SVR: train on the prefix, append the suffix, compare.
	{
		const (
			c       = 10.0
			epsilon = 0.1
		)
		xFull, zFull, err := dataset.GenerateRegression(nFull, 6, 0.05, 17)
		if err != nil {
			return nil, err
		}
		xBase, err := xFull.SubMatrix(0, nBase)
		if err != nil {
			return nil, err
		}
		o.logf("tasks/svr: base %d rows, full %d rows", nBase, nFull)
		base, err := tasks.TrainSVR(xBase, zFull[:nBase], c, epsilon, cfg, nil)
		if err != nil {
			return nil, fmt.Errorf("svr base: %w", err)
		}

		t0 := time.Now()
		cold, err := tasks.TrainSVR(xFull, zFull, c, epsilon, cfg, nil)
		if err != nil {
			return nil, fmt.Errorf("svr cold: %w", err)
		}
		coldT := time.Since(t0)

		t0 = time.Now()
		incr, err := tasks.Update(base.Model, xFull, zFull, cfg)
		if err != nil {
			return nil, fmt.Errorf("svr update: %w", err)
		}
		incrT := time.Since(t0)

		prob := oracle.SVRProblem{X: xFull, Z: zFull, Kernel: kp, C: c, Epsilon: epsilon, Eps: o.Eps}
		cr := caseResult{task: "epsilon_svr", cold: coldT, incr: incrT,
			coldObj: cold.Objective, incrObj: incr.Objective,
			objTol: oracle.GapTolerance(2*nFull, c, o.Eps)}
		cr.coldRep, cr.incrRep, cr.verifyErr = verifyPair(prob.VerifyModel, cold.Model, incr.Model)
		results = append(results, cr)
	}

	// One-class: the box shrinks with n, so the warm start is projected.
	{
		const nu = 0.1
		xFull, _, err := dataset.GenerateOneClass(nFull, 6, 0.05, 17)
		if err != nil {
			return nil, err
		}
		xBase, err := xFull.SubMatrix(0, nBase)
		if err != nil {
			return nil, err
		}
		o.logf("tasks/oneclass: base %d rows, full %d rows", nBase, nFull)
		base, err := tasks.TrainOneClass(xBase, nu, cfg, nil)
		if err != nil {
			return nil, fmt.Errorf("oneclass base: %w", err)
		}

		t0 := time.Now()
		cold, err := tasks.TrainOneClass(xFull, nu, cfg, nil)
		if err != nil {
			return nil, fmt.Errorf("oneclass cold: %w", err)
		}
		coldT := time.Since(t0)

		t0 = time.Now()
		incr, err := tasks.Update(base.Model, xFull, nil, cfg)
		if err != nil {
			return nil, fmt.Errorf("oneclass update: %w", err)
		}
		incrT := time.Since(t0)

		boxC := 1 / (nu * float64(nFull))
		prob := oracle.OneClassProblem{X: xFull, Kernel: kp, Nu: nu, Eps: o.Eps}
		cr := caseResult{task: "one_class", cold: coldT, incr: incrT,
			coldObj: cold.Objective, incrObj: incr.Objective,
			objTol: oracle.GapTolerance(nFull, boxC, o.Eps)}
		cr.coldRep, cr.incrRep, cr.verifyErr = verifyPair(prob.VerifyModel, cold.Model, incr.Model)
		results = append(results, cr)
	}

	fails := 0
	for _, cr := range results {
		status := "ok"
		objDiff := math.Abs(cr.coldObj - cr.incrObj)
		switch {
		case cr.verifyErr != nil:
			status, fails = "FAIL", fails+1
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s verify: %v", cr.task, cr.verifyErr))
		case objDiff > cr.objTol:
			status, fails = "FAIL", fails+1
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s: objective diff %.3e exceeds tolerance %.3e", cr.task, objDiff, cr.objTol))
		}
		speedup := float64(cr.cold) / float64(cr.incr)
		rep.Rows = append(rep.Rows, []string{
			cr.task, itoa(nBase), itoa(nFull),
			cr.cold.Round(time.Millisecond).String(),
			fmt.Sprintf("%.3e", cr.coldRep.DualityGap),
			cr.incr.Round(time.Millisecond).String(),
			fmt.Sprintf("%.3e", cr.incrRep.DualityGap),
			fmt.Sprintf("%.3e", objDiff),
			fmt.Sprintf("%.3e", cr.objTol),
			fmt.Sprintf("%.2fx", speedup),
			status,
		})
	}
	if fails == 0 {
		rep.Notes = append(rep.Notes,
			"both tasks: incremental update matches the cold-retrain objective within the oracle gap tolerance; both models verified eps-approximate optimal")
	}
	rep.Took = time.Since(start)
	return rep, nil
}

// verifyPair runs the oracle verifier over both models and checks each
// report, returning the first failure.
func verifyPair(verify func(*model.Model) (*oracle.Report, error), cold, incr *model.Model) (*oracle.Report, *oracle.Report, error) {
	cr, err := verify(cold)
	if err != nil {
		return nil, nil, fmt.Errorf("cold: %w", err)
	}
	if err := cr.Check(); err != nil {
		return cr, nil, fmt.Errorf("cold: %w", err)
	}
	ir, err := verify(incr)
	if err != nil {
		return cr, nil, fmt.Errorf("incremental: %w", err)
	}
	if err := ir.Check(); err != nil {
		return cr, ir, fmt.Errorf("incremental: %w", err)
	}
	return cr, ir, nil
}
