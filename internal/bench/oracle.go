package bench

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/oracle"
)

// RunOracle runs the cross-solver correctness oracle as a tracked
// experiment: every engine (all Table II heuristics, smo cold and warm,
// dcsvm with the full polish) trains the same seeded datasets and each
// model's duality gap and worst KKT violation are recorded, so a solver
// change that drifts any engine away from the shared optimum shows up as a
// number moving in the bench trajectory, not just a test flipping red.
func RunOracle(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	rep := &Report{
		ID:     "oracle",
		Title:  "Cross-solver oracle: duality gap and KKT violations per engine",
		Header: []string{"dataset", "engine", "dual-obj", "gap", "rel-gap", "max-KKT", "SVs", "status"},
	}

	// Small slices of three differently shaped datasets (dense 2-D, dense
	// 8-D, sparse binary) keep the full engine sweep to seconds while still
	// exercising every code path the oracle distinguishes.
	cases := []struct {
		name  string
		scale float64
	}{
		{"blobs", 0.15},
		{"codrna", 0.005},
		{"mushrooms", 0.05},
	}
	fails := 0
	var worstSpread float64
	for _, tc := range cases {
		spec, err := dataset.Lookup(tc.name)
		if err != nil {
			return nil, err
		}
		ds, err := dataset.Generate(spec, tc.scale*o.Scale)
		if err != nil {
			return nil, err
		}
		o.logf("oracle: %s (%d samples): training all engines", tc.name, ds.Train())
		d, err := oracle.RunDifferential(ds.X, ds.Y, oracle.DiffOptions{
			Kernel: kernel.FromSigma2(ds.Sigma2),
			C:      ds.C,
			Eps:    o.Eps,
			Seed:   7,
		})
		if err != nil {
			return nil, err
		}
		for _, r := range d.Results {
			status := "ok"
			if err := r.Report.Check(); err != nil {
				status = "FAIL"
				fails++
			}
			rep.Rows = append(rep.Rows, []string{
				tc.name, r.Name,
				fmt.Sprintf("%.4f", r.Report.DualObjective),
				fmt.Sprintf("%.3e", r.Report.DualityGap),
				fmt.Sprintf("%.3e", r.Report.RelativeGap),
				fmt.Sprintf("%.3e", r.Report.MaxKKTViolation),
				itoa(r.Report.NumSV),
				status,
			})
		}
		if d.MaxSpread > worstSpread {
			worstSpread = d.MaxSpread
		}
		if err := d.Check(); err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s parity FAILURE: %v", tc.name, err))
			fails++
		} else {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s: %d engines agree; objective spread %.3e (tolerance %.3e)",
				tc.name, len(d.Results), d.MaxSpread, d.SpreadTolerance))
		}
	}
	if fails > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf("%d oracle FAILURES — see rows/notes above", fails))
	} else {
		rep.Notes = append(rep.Notes, fmt.Sprintf("all engines pass; worst cross-engine objective spread %.3e", worstSpread))
	}
	rep.Took = time.Since(start)
	return rep, nil
}
