package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 14 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("ByID(%s) = %v, %v", e.ID, got.ID, err)
		}
	}
	for _, want := range []string{"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"table2", "table3", "table4", "table5"} {
		if !seen[want] {
			t.Errorf("missing paper exhibit %s", want)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id resolved")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Eps != 1e-3 || o.BaselineWorkers != 16 || o.Log == nil {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := Options{Scale: 0.5, Eps: 1e-2, BaselineWorkers: 4}.withDefaults()
	if o2.Scale != 0.5 || o2.Eps != 1e-2 || o2.BaselineWorkers != 4 {
		t.Fatalf("explicit options overridden: %+v", o2)
	}
}

func TestReportPrint(t *testing.T) {
	r := &Report{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "longcolumn"},
		Rows:   [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:  []string{"a note"},
		Took:   1500 * time.Millisecond,
	}
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "longcolumn", "333333", "note: a note", "1.5s"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestLoadDataset(t *testing.T) {
	o := Options{Scale: 0.2}.withDefaults()
	ds, scale, err := loadDataset(o, "blobs")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "blobs" || scale <= 0 {
		t.Fatalf("ds=%v scale=%v", ds.Name, scale)
	}
	if _, _, err := loadDataset(o, "not-a-dataset"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// TestTable3Fast regenerates the cheapest experiment end-to-end: it needs
// no training, only the registry.
func TestTable3Fast(t *testing.T) {
	rep, err := RunTable3(Options{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 11 {
		t.Fatalf("table3 has %d rows, want 11", len(rep.Rows))
	}
	// Spot-check the HIGGS row against Table III of the paper.
	higgs := rep.Rows[0]
	if higgs[0] != "higgs" || higgs[1] != "2600000" || higgs[5] != "32" || higgs[6] != "64" {
		t.Fatalf("higgs row = %v", higgs)
	}
	// URL row: 2.3M samples, C=10, sigma^2=4.
	url := rep.Rows[1]
	if url[0] != "url" || url[1] != "2300000" || url[5] != "10" || url[6] != "4" {
		t.Fatalf("url row = %v", url)
	}
}

// TestValidateModelExperiment executes a real (small) multi-rank training
// run and cross-checks the analytic model — the cheapest experiment that
// exercises the full pipeline.
func TestValidateModelExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a dataset; skipped with -short")
	}
	rep, err := RunValidateModel(Options{Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		ratio := row[3]
		v, err := parseFloat(ratio)
		if err != nil {
			t.Fatalf("ratio cell %q", ratio)
		}
		if v < 0.3 || v > 3 {
			t.Fatalf("model/executed ratio %v out of sanity range; row %v", v, row)
		}
	}
}

// TestFigure1Experiment checks the SV-fraction premise end to end.
func TestFigure1Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("trains datasets; skipped with -short")
	}
	rep, err := RunFigure1(Options{Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		frac := strings.TrimSuffix(row[3], "%")
		v, err := parseFloat(frac)
		if err != nil {
			t.Fatalf("fraction cell %q", row[3])
		}
		if v <= 0 || v >= 75 {
			t.Fatalf("%s: SV fraction %v%% does not support the premise", row[0], v)
		}
	}
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}
