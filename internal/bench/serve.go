package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/serve/batcher"
	"repro/internal/serve/shed"
	"repro/internal/smo"
	"repro/internal/sparse"
)

// RunServe is the closed-loop serving harness: a kernel model trained on
// the mnist38 shape answers single-row predictions from concurrent clients
// through three paths — the pre-batching per-request path ("unbatched"),
// the coalescing batcher over the pooled row engine ("coalesced"), and the
// batcher over the packed predict-time layout ("coalesced+packed", the
// production default). A final run at ~2x the measured capacity shows the
// load shedder rejecting explicitly while accepted latency stays bounded
// by the request deadline; every submission is accounted for.
func RunServe(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	rep := &Report{
		ID:     "serve",
		Title:  "Serving throughput: unbatched vs coalesced vs coalesced+packed, plus overload shedding",
		Header: []string{"mode", "requests", "throughput", "p50", "p99", "shed", "expired"},
	}

	// 3x the harness default mnist38 scale: serving economics only show at
	// realistic model sizes — per-request pipeline overhead (goroutine
	// wakeups, channel hops) is fixed, so it amortizes as the support
	// vector count grows. The generated set carries its own test split;
	// requests draw from it so the served rows were never trained on.
	od := o
	od.Scale = o.Scale * 3
	ds, _, err := loadDataset(od, "mnist38")
	if err != nil {
		return nil, err
	}
	testX := ds.TestX
	kp := kernel.Params{Type: kernel.Gaussian, Gamma: 1 / (2 * ds.Sigma2)}
	o.logf("serve: training smo kernel model on %d rows", ds.X.Rows())
	res, err := smo.Train(ds.X, ds.Y, smo.Config{
		Kernel: kp, C: ds.C, Eps: o.Eps,
		Workers: o.BaselineWorkers, CacheBytes: 1 << 30, Shrinking: true,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: train: %w", err)
	}
	m := res.Model
	m.WarmNorms()
	o.logf("serve: model has %d SVs", m.NumSV())

	const clients = 32
	perClient := int(300 * o.Scale)
	if perClient < 40 {
		perClient = 40
	}
	row := func(i int) sparse.Row { return testX.RowView(i % testX.Rows()) }

	type stats struct {
		requests   int
		wall       time.Duration
		p50, p99   time.Duration
		throughput float64
	}
	addRow := func(mode string, s stats, shedded, expired uint64) {
		rep.Rows = append(rep.Rows, []string{
			mode, itoa(s.requests),
			fmt.Sprintf("%.0f req/s", s.throughput),
			s.p50.Round(time.Microsecond).String(),
			s.p99.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", shedded),
			fmt.Sprintf("%d", expired),
		})
	}

	// closedLoop drives `clients` goroutines, each issuing perClient
	// sequential predictions, and reports wall-clock throughput and
	// latency percentiles. afterWarmup (optional) runs between the warmup
	// pass and the measured phase — modes reset their batch-execution
	// stats there, since warmup requests arrive sequentially and form
	// singleton batches that would skew the averages.
	closedLoop := func(predict func(i int) error, afterWarmup func()) (stats, error) {
		// Warm the path (lazy evaluator state, pools) and start each mode
		// from a collected heap, so GC debt left by training or a previous
		// mode doesn't land in this mode's measurement.
		for i := 0; i < 256; i++ {
			if err := predict(i); err != nil {
				return stats{}, err
			}
		}
		runtime.GC()
		if afterWarmup != nil {
			afterWarmup()
		}
		lats := make([][]time.Duration, clients)
		errs := make([]error, clients)
		var wg sync.WaitGroup
		t0 := time.Now()
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				lats[g] = make([]time.Duration, 0, perClient)
				for i := 0; i < perClient; i++ {
					t := time.Now()
					if err := predict(g*perClient + i); err != nil {
						errs[g] = err
						return
					}
					lats[g] = append(lats[g], time.Since(t))
				}
			}(g)
		}
		wg.Wait()
		wall := time.Since(t0)
		var all []time.Duration
		for g, l := range lats {
			if errs[g] != nil {
				return stats{}, errs[g]
			}
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		return stats{
			requests:   len(all),
			wall:       wall,
			p50:        pctile(all, 0.50),
			p99:        pctile(all, 0.99),
			throughput: float64(len(all)) / wall.Seconds(),
		}, nil
	}

	// MaxBatch is half the client count: with two windows' worth of
	// clients in flight the collector coalesces the next batch while the
	// previous one executes, keeping the evaluator busy instead of
	// lock-stepping the whole pool. MaxWait comfortably exceeds a full
	// batch's execution time so windows close by filling, not by timer —
	// a timer closure ships a partial window, and the per-batch fixed
	// cost then amortizes over fewer rows.
	type execStats struct {
		batches, rows atomic.Int64
		execNS        atomic.Int64
	}
	resetStats := func(es *execStats) func() {
		return func() {
			es.batches.Store(0)
			es.rows.Store(0)
			es.execNS.Store(0)
		}
	}
	newBatcher := func(es *execStats) *batcher.Batcher {
		cfg := batcher.Config{
			MaxBatch: clients / 2,
			MaxWait:  200 * time.Microsecond,
			Queue:    8192,
		}
		if es != nil {
			cfg.OnBatch = func(size int, _, exec time.Duration) {
				es.batches.Add(1)
				es.rows.Add(int64(size))
				es.execNS.Add(int64(exec))
			}
		}
		return batcher.New(func() (*model.Model, uint64) { return m, 1 }, cfg)
	}

	// Mode 1 — unbatched: the pre-coalescing serving path — each request
	// builds its own one-row matrix and runs a batch-of-one evaluation,
	// exactly what the HTTP handler did per request before coalescing.
	single, err := closedLoop(func(i int) error {
		bld := sparse.NewBuilder(m.FeatureDim())
		r := row(i)
		bld.AddRow(r.Idx, r.Val)
		m.DecisionValues(bld.Build(), 1)
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	addRow("unbatched", single, 0, 0)

	// Mode 2 — coalesced: concurrent requests ride shared batch windows,
	// still over the pooled row engine.
	var coalES execStats
	b := newBatcher(&coalES)
	coal, err := closedLoop(func(i int) error {
		_, err := b.Predict(context.Background(), row(i))
		return err
	}, resetStats(&coalES))
	b.Close()
	if err != nil {
		return nil, err
	}
	addRow("coalesced", coal, 0, 0)

	// Mode 3 — coalesced+packed: the production default. Packing is
	// in-place, so from here on the same model answers via the packed
	// layout (bit-identical decisions, see model.TestPackedBitIdentical).
	m.Pack(model.DefaultPackBudget)
	var packES execStats
	bp := newBatcher(&packES)
	packedStats, err := closedLoop(func(i int) error {
		_, err := bp.Predict(context.Background(), row(i))
		return err
	}, resetStats(&packES))
	bp.Close()
	if err != nil {
		return nil, err
	}
	addRow("coalesced+packed", packedStats, 0, 0)
	esNote := func(name string, es *execStats) string {
		nb, nr, ns := es.batches.Load(), es.rows.Load(), es.execNS.Load()
		if nb == 0 || nr == 0 {
			return name + ": no batches"
		}
		return fmt.Sprintf("%s: avg batch %.1f rows, exec %.1fµs/row",
			name, float64(nr)/float64(nb), float64(ns)/float64(nr)/1e3)
	}
	o.logf("serve: %s", esNote("coalesced", &coalES))
	o.logf("serve: %s", esNote("coalesced+packed", &packES))

	// Mode 4 — overload: open-loop arrivals at ~2x the measured packed
	// capacity, 25ms request deadlines, a small queue. The shedder must
	// reject explicitly (429-equivalent) while every accepted request is
	// answered inside its deadline, and no submission goes unanswered.
	const deadline = 25 * time.Millisecond
	sh := shed.New(shed.Config{MaxQueue: 256, MaxInFlight: 2})
	bo := batcher.New(func() (*model.Model, uint64) { return m, 1 }, batcher.Config{
		MaxBatch: clients / 2,
		MaxWait:  200 * time.Microsecond,
		Queue:    8192,
		Gate:     sh,
		OnBatch:  func(size int, _, exec time.Duration) { sh.ObserveBatch(size, exec) },
	})
	rate := 2 * packedStats.throughput
	// A bounded pool of paced submitters approximates open-loop arrivals:
	// each worker fires on its own fixed schedule (phases staggered across
	// the pool) and skips sleeping when it falls behind, so the offered
	// rate holds near 2x capacity. Spawning one goroutine per arrival
	// instead would pile up ~10^5 runnable goroutines on a small box and
	// the scheduler backlog — not the serving path — would dominate the
	// measured latency of accepted requests. The pool must be deep enough
	// that workers stuck waiting out the full deadline cannot self-throttle
	// the offered rate below capacity (Little's law: ~rate x deadline
	// outstanding), or the run degenerates into a closed loop that never
	// overloads the queue.
	const oworkers = 2048
	perWorker := int(rate) / oworkers // ~1 second of 2x offered load
	if perWorker < 4 {
		perWorker = 4
	}
	totalOverload := oworkers * perWorker
	interval := time.Duration(float64(oworkers) / rate * float64(time.Second))
	var okCount, shedCount, expiredCount, otherCount atomic.Uint64
	var okLats struct {
		mu sync.Mutex
		v  []time.Duration
	}
	var owg sync.WaitGroup
	o.logf("serve: overload run, %d requests at ~%.0f req/s (2x capacity)", totalOverload, rate)
	ot0 := time.Now()
	for w := 0; w < oworkers; w++ {
		owg.Add(1)
		go func(w int) {
			defer owg.Done()
			next := ot0.Add(interval * time.Duration(w) / oworkers)
			for i := 0; i < perWorker; i++ {
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(interval)
				ctx, cancel := context.WithTimeout(context.Background(), deadline)
				release, err := sh.Admit(ctx)
				if err != nil {
					cancel()
					shedCount.Add(1)
					continue
				}
				t := time.Now()
				_, err = bo.Predict(ctx, row(w*perWorker+i))
				l := time.Since(t)
				// Deadline semantics: an answer the caller only sees after
				// its deadline is a deadline miss, even when the result won
				// the select race against the expired context — count it
				// with the ctx-error expiries, not the successes.
				expired := (err != nil && ctx.Err() != nil) || (err == nil && l > deadline)
				release()
				cancel()
				switch {
				case err == nil && !expired:
					okCount.Add(1)
					okLats.mu.Lock()
					okLats.v = append(okLats.v, l)
					okLats.mu.Unlock()
				case expired:
					expiredCount.Add(1)
				default:
					otherCount.Add(1)
				}
			}
		}(w)
	}
	owg.Wait()
	overWall := time.Since(ot0)
	bo.Close()
	ok, sheds, expired, other := okCount.Load(), shedCount.Load(), expiredCount.Load(), otherCount.Load()
	answered := ok + sheds + expired + other
	dropped := uint64(totalOverload) - answered
	sort.Slice(okLats.v, func(i, j int) bool { return okLats.v[i] < okLats.v[j] })
	addRow("overload(2x)", stats{
		requests:   totalOverload,
		p50:        pctile(okLats.v, 0.50),
		p99:        pctile(okLats.v, 0.99),
		throughput: float64(ok) / overWall.Seconds(),
	}, sheds, expired)

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("model: mnist38 shape, %d SVs, gaussian kernel; %d closed-loop clients", m.NumSV(), clients),
		fmt.Sprintf("coalesced speedup: %.2fx (vs unbatched)", coal.throughput/single.throughput),
		fmt.Sprintf("coalesced+packed speedup: %.2fx (vs unbatched)", packedStats.throughput/single.throughput),
		fmt.Sprintf("packed layout speedup: %.2fx (vs coalesced, same batching overhead)", packedStats.throughput/coal.throughput),
		fmt.Sprintf("overload: %d submitted = %d answered + %d shed + %d expired + %d errored; dropped without response: %d",
			totalOverload, ok, sheds, expired, other, dropped),
		fmt.Sprintf("overload accepted p99: %v (deadline %v)", pctile(okLats.v, 0.99).Round(time.Microsecond), deadline),
	)
	rep.Took = time.Since(start)
	return rep, nil
}

// pctile returns the p-quantile of ascending-sorted latencies.
func pctile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
