package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dcsvm"
	"repro/internal/kernel"
	"repro/internal/smo"
)

// RunDCSVM measures divide-and-conquer training against both exact
// engines on the same data: the paper's distributed solver and the
// libsvm-enhanced baseline solve the full problem, then dcsvm runs at
// increasing cluster counts plus the early-stop mode. Wall-clock here is
// measured, not modeled — the dc speedup comes from shrinking each
// sub-problem's working set, which materializes on a single machine.
func RunDCSVM(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	ds, scale, err := loadDataset(o, "mnist38")
	if err != nil {
		return nil, err
	}
	kp := kernel.FromSigma2(ds.Sigma2)
	rep := &Report{
		ID:     "dcsvm",
		Title:  fmt.Sprintf("Divide-and-conquer vs exact full solves on %s (measured wall-clock)", ds.Name),
		Header: []string{"solver", "time", "sub-iters", "polish-iters", "SVs", "test-acc"},
	}
	addRow := func(name string, took time.Duration, subIters, polishIters int64, svs int, acc float64) {
		rep.Rows = append(rep.Rows, []string{
			name, took.Round(time.Millisecond).String(),
			i64toa(subIters), i64toa(polishIters), itoa(svs), f2(acc) + "%",
		})
	}

	// Exact reference 1: the paper's distributed solver.
	t0 := time.Now()
	cm, cst, err := core.TrainParallel(ds.X, ds.Y, 1, core.Config{
		Kernel: kp, C: ds.C, Eps: o.Eps, Heuristic: core.Multi5pc,
	})
	if err != nil {
		return nil, err
	}
	coreTime := time.Since(t0)
	met, err := cm.Evaluate(ds.TestX, ds.TestY)
	if err != nil {
		return nil, err
	}
	addRow("core (full)", coreTime, cst.Iterations, 0, cst.SVCount, met.Accuracy)

	// Exact reference 2: the libsvm-enhanced baseline.
	t0 = time.Now()
	sres, err := smo.Train(ds.X, ds.Y, smo.Config{
		Kernel: kp, C: ds.C, Eps: o.Eps,
		Workers: o.BaselineWorkers, Shrinking: true,
	})
	if err != nil {
		return nil, err
	}
	smoTime := time.Since(t0)
	met, err = sres.Model.Evaluate(ds.TestX, ds.TestY)
	if err != nil {
		return nil, err
	}
	addRow("smo (full)", smoTime, sres.Iterations, 0, sres.Model.NumSV(), met.Accuracy)

	dcRun := func(name string, clusters int, polishCap int64) error {
		t0 := time.Now()
		m, st, err := dcsvm.Train(ds.X, ds.Y, dcsvm.Config{
			Kernel: kp, C: ds.C, Eps: o.Eps, Heuristic: core.Multi5pc,
			Clusters: clusters, Seed: 11, PolishMaxIter: polishCap,
		})
		if err != nil {
			return err
		}
		took := time.Since(t0)
		var subIters int64
		for _, l := range st.Levels {
			for _, it := range l.SubIterations {
				subIters += it
			}
		}
		met, err := m.Evaluate(ds.TestX, ds.TestY)
		if err != nil {
			return err
		}
		addRow(name, took, subIters, st.PolishIterations, st.SVCount, met.Accuracy)
		o.logf("%s: %.1fx vs core, %.1fx vs smo", name,
			coreTime.Seconds()/took.Seconds(), smoTime.Seconds()/took.Seconds())
		return nil
	}
	for _, k := range []int{4, 8, 16} {
		if err := dcRun(fmt.Sprintf("dc k=%d", k), k, 0); err != nil {
			return nil, err
		}
	}
	if err := dcRun("dc k=8 early-stop", 8, 50); err != nil {
		return nil, err
	}

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("dataset at scale %.4f of %d published samples; dc polish restores near-exactness, early-stop caps it at 50 iterations", scale, dataset.Specs["mnist38"].FullTrain),
		"dc sub-solves use the distributed solver per cluster; the polish is the warm-started baseline over the coalesced support-vector union")
	rep.Took = time.Since(start)
	return rep, nil
}
