package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/perfmodel"
)

// figureSetup parameterizes the per-dataset speedup figures (3-7).
type figureSetup struct {
	dataset string
	minP    int
	maxP    int
}

// runSpeedupFigure regenerates one of Figures 3-7: bars of speedup over
// libsvm-enhanced for Default (no shrinking), Shrinking (Worst) and
// Shrinking (Best), across process counts.
func runSpeedupFigure(o Options, id, title string, fs figureSetup) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	ds, scale, err := loadDataset(o, fs.dataset)
	if err != nil {
		return nil, err
	}
	base, err := runBaseline(o, ds, o.BaselineWorkers)
	if err != nil {
		return nil, err
	}
	triple, err := runTriple(o, ds)
	if err != nil {
		return nil, err
	}
	ex, err := newExtrapolation(o, ds, base, o.BaselineWorkers)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:    id,
		Title: title,
		Header: []string{"procs", "speedup(Default)", "speedup(Shrink-Worst)", "speedup(Shrink-Best)",
			"t(Default)s", "t(Best)s"},
		Took: 0,
	}
	for _, p := range perfmodel.PowersOfTwo(fs.minP, fs.maxP) {
		sd, bd, err := ex.modeledSpeedup(triple.def.stats.Trace, p)
		if err != nil {
			return nil, err
		}
		sw, _, err := ex.modeledSpeedup(triple.worst.stats.Trace, p)
		if err != nil {
			return nil, err
		}
		sb, bb, err := ex.modeledSpeedup(triple.best.stats.Trace, p)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(p), f1(sd), f1(sw), f1(sb), fmt.Sprintf("%.3f", bd.Total()), fmt.Sprintf("%.3f", bb.Total()),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("dataset %s scaled to %d samples (%.3f%% of %d); measured baseline took %v; all times above modeled at full scale (extrapolation factor %.0fx, %d baseline workers)",
			ds.Name, ds.Train(), 100*scale, dataset.Specs[fs.dataset].FullTrain,
			base.elapsed.Round(time.Millisecond), ex.factor, o.BaselineWorkers),
		fmt.Sprintf("iterations: Default %d, Worst %d, Best %d; Best shrink events %d, reconstructions %d",
			triple.def.stats.Iterations, triple.worst.stats.Iterations, triple.best.stats.Iterations,
			triple.best.stats.ShrinkEvents, triple.best.stats.Reconstructions),
		"Shrink-Best = Multi5pc, Shrink-Worst = Single50pc (the paper's best/worst on every dataset)",
	)
	rep.Took = time.Since(start)
	return rep, nil
}

// RunFigure3 regenerates Figure 3 (UCI HIGGS, up to 4096 processes).
func RunFigure3(o Options) (*Report, error) {
	return runSpeedupFigure(o, "fig3", "UCI HIGGS: speedup vs libsvm-enhanced", figureSetup{dataset: "higgs", minP: 512, maxP: 4096})
}

// RunFigure4 regenerates Figure 4 (Offending URL, up to 4096 processes).
func RunFigure4(o Options) (*Report, error) {
	return runSpeedupFigure(o, "fig4", "Offending URL: speedup vs libsvm-enhanced", figureSetup{dataset: "url", minP: 256, maxP: 4096})
}

// RunFigure5 regenerates Figure 5 (Forest covertype, up to 1024 processes).
func RunFigure5(o Options) (*Report, error) {
	return runSpeedupFigure(o, "fig5", "Forest: speedup vs libsvm-enhanced", figureSetup{dataset: "forest", minP: 64, maxP: 1024})
}

// RunFigure6 regenerates Figure 6 (MNIST, up to 512 processes).
func RunFigure6(o Options) (*Report, error) {
	return runSpeedupFigure(o, "fig6", "MNIST: speedup vs libsvm-enhanced", figureSetup{dataset: "mnist38", minP: 32, maxP: 512})
}

// RunFigure7 regenerates Figure 7 (real-sim, up to 256 processes).
func RunFigure7(o Options) (*Report, error) {
	return runSpeedupFigure(o, "fig7", "real-sim: speedup vs libsvm-enhanced", figureSetup{dataset: "realsim", minP: 16, maxP: 256})
}

// RunFigure1 regenerates the premise of Figure 1: across datasets, only a
// small fraction of samples end up as support vectors.
func RunFigure1(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	rep := &Report{
		ID:     "fig1",
		Title:  "Support vectors are a small fraction of the samples",
		Header: []string{"dataset", "samples", "SVs", "SV fraction", "free SVs (0<a<C)"},
	}
	for _, name := range []string{"blobs", "mnist38", "usps", "w7a"} {
		ds, _, err := loadDataset(o, name)
		if err != nil {
			return nil, err
		}
		run, err := runTraced(o, ds, core.Multi5pc)
		if err != nil {
			return nil, err
		}
		free := 0
		for _, c := range run.model.Coef {
			if c > -ds.C && c < ds.C && c != 0 {
				free++
			}
		}
		rep.Rows = append(rep.Rows, []string{
			name, itoa(ds.Train()), itoa(run.model.NumSV()), pct(run.model.SVFraction()), itoa(free),
		})
	}
	rep.Notes = append(rep.Notes, "the premise behind shrinking: most samples never contribute to the boundary")
	rep.Took = time.Since(start)
	return rep, nil
}

// RunFigure8 regenerates Figure 8: the fraction of overall time spent in
// gradient reconstruction with the best heuristic (Multi5pc) on the four
// large datasets, which decreases with scale.
func RunFigure8(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	ps := []int{64, 256, 1024, 4096}
	rep := &Report{
		ID:     "fig8",
		Title:  "Gradient reconstruction share of total time (Multi5pc)",
		Header: []string{"dataset"},
	}
	for _, p := range ps {
		rep.Header = append(rep.Header, fmt.Sprintf("p=%d", p))
	}
	for _, name := range []string{"higgs", "url", "forest", "realsim"} {
		ds, _, err := loadDataset(o, name)
		if err != nil {
			return nil, err
		}
		run, err := runTraced(o, ds, core.Multi5pc)
		if err != nil {
			return nil, err
		}
		machine := calibrate(o, ds)
		factor := float64(dataset.Specs[name].FullTrain) / float64(ds.Train())
		full := run.stats.Trace.ScaledUp(factor)
		row := []string{name}
		for _, p := range ps {
			b, err := perfmodel.Evaluate(full, p, machine)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(b.ReconFraction()))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "paper: < 10% of overall time, decreasing with scale")
	rep.Took = time.Since(start)
	return rep, nil
}

// RunValidateModel cross-checks the analytic performance model against the
// runtime's executed virtual clocks at small process counts.
func RunValidateModel(o Options) (*Report, error) {
	o = o.withDefaults()
	start := time.Now()
	ds, _, err := loadDataset(o, "blobs")
	if err != nil {
		return nil, err
	}
	machine := calibrate(o, ds)
	rep := &Report{
		ID:     "validate-model",
		Title:  "Analytic model vs executed virtual makespan (blobs, Multi5pc)",
		Header: []string{"procs", "executed(s)", "modeled(s)", "ratio"},
	}
	for _, p := range []int{1, 2, 4, 8} {
		cfg := core.Config{
			Kernel: kernel.FromSigma2(ds.Sigma2), C: ds.C, Eps: o.Eps,
			Heuristic: core.Multi5pc, RecordTrace: true, Lambda: machine.Lambda,
		}
		_, st, executed, err := core.TrainParallelTimed(ds.X, ds.Y, p, cfg, machine.Net)
		if err != nil {
			return nil, err
		}
		b, err := perfmodel.Evaluate(st.Trace, p, machine)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(p), fmt.Sprintf("%.4f", executed), fmt.Sprintf("%.4f", b.Total()),
			f2(b.Total() / executed),
		})
	}
	rep.Notes = append(rep.Notes, "ratios near 1 validate using the model for the 4096-process figures")
	rep.Took = time.Since(start)
	return rep, nil
}
