// Package linear_test holds the oracle parity checks outside package
// linear: internal/oracle imports internal/dcsvm, which imports
// internal/linear for its linear-kernel sub-solve fast path, so an
// in-package test importing the oracle would close an import cycle.
package linear_test

import (
	"strings"
	"testing"

	"repro/internal/linear"
	"repro/internal/oracle"
)

// The oracle cross-checks: everything the solvers claim (convergence,
// objectives, the hyperplane itself) is re-derived from the training data
// by internal/oracle's linear verifier, so correctness is verified, not
// asserted.

func TestDCDPassesOracle(t *testing.T) {
	x, y, _, _ := linear.TextProblem(t, 0.05)
	res, err := linear.Train(x, y, linear.Config{C: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prob := oracle.LinearProblem{X: x, Y: y, C: 10, Eps: 1e-3, Loss: oracle.HingeLoss}
	rep, err := prob.VerifyLinearModel(res.Model, res.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("oracle rejects the dcd solution: %v\n%s", err, rep)
	}
	// The solver's own objective accounting must agree with the oracle's
	// independent recomputation.
	if d := rep.DualityGap - res.Gap; d > 1e-6 || d < -1e-6 {
		t.Fatalf("solver gap %v vs oracle gap %v", res.Gap, rep.DualityGap)
	}
}

func TestMISOPassesOracle(t *testing.T) {
	x, y, _, _ := linear.TextProblem(t, 0.05)
	res, err := linear.Train(x, y, linear.Config{Variant: linear.MISO, C: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prob := oracle.LinearProblem{X: x, Y: y, C: 10, Eps: 1e-3, Loss: oracle.SquaredHingeLoss}
	rep, err := prob.VerifyLinearModel(res.Model, res.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("oracle rejects the miso solution: %v\n%s", err, rep)
	}
	if d := rep.DualityGap - res.Gap; d > 1e-6 || d < -1e-6 {
		t.Fatalf("solver gap %v vs oracle gap %v", res.Gap, rep.DualityGap)
	}
}

// TestOracleCatchesTampering: the verifier is only worth its name if it
// rejects a solution that has been quietly damaged.
func TestOracleCatchesTampering(t *testing.T) {
	x, y, _, _ := linear.TextProblem(t, 0.03)
	res, err := linear.Train(x, y, linear.Config{C: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prob := oracle.LinearProblem{X: x, Y: y, C: 10, Eps: 1e-3, Loss: oracle.HingeLoss}

	// A hyperplane that is not the dual point's must fail w-consistency.
	w := make([]float64, len(res.W))
	copy(w, res.W)
	w[0] += 0.5
	rep, err := prob.VerifyLinear(w, 0, res.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("tampered w: error = %v, want w-consistency failure", err)
	}

	// A dual point outside its box must fail feasibility.
	alpha := make([]float64, len(res.Alpha))
	copy(alpha, res.Alpha)
	alpha[0] = -1
	if rep, err = prob.VerifyLinear(res.W, 0, alpha); err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err == nil || !strings.Contains(err.Error(), "feasible") {
		t.Fatalf("infeasible alpha: error = %v, want feasibility failure", err)
	}

	// The zero solution is feasible and self-consistent but nowhere near
	// optimal: the gap check must catch it.
	zw := make([]float64, len(res.W))
	za := make([]float64, len(res.Alpha))
	if rep, err = prob.VerifyLinear(zw, 0, za); err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err == nil {
		t.Fatalf("zero solution passed the oracle:\n%s", rep)
	}
}
