package linear

import (
	"testing"

	"repro/internal/sparse"
)

// TextProblem exposes textProblem to the external test package. The oracle
// parity tests live in package linear_test rather than here: they import
// internal/oracle, which imports internal/dcsvm, which imports this package
// for the linear-kernel sub-solve fast path — an import cycle for an
// in-package test.
func TextProblem(t *testing.T, scale float64) (trainX *sparse.Matrix, trainY []float64, testX *sparse.Matrix, testY []float64) {
	return textProblem(t, scale)
}
