package linear

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// TestTrainOOCBitParity trains both variants against an out-of-core matrix
// under a budget far smaller than the dataset and checks the model is
// byte-identical to training in memory: same W bits, same alpha bits, same
// update counts. This is the contract that lets svmtrain -stream verify its
// model against the in-memory path with a plain byte compare.
func TestTrainOOCBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const rows, cols = 300, 60
	b := sparse.NewBuilder(cols)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < 0.15 {
				b.Add(j, rng.NormFloat64())
			}
		}
		b.EndRow()
		if rng.Float64() < 0.5 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	x := b.Build()
	x.Cols = cols

	w, err := sparse.NewOOCWriter(t.TempDir(), 2<<10) // a few blocks resident at most
	if err != nil {
		t.Fatal(err)
	}
	const blockRows = 32
	for lo := 0; lo < rows; lo += blockRows {
		hi := min(lo+blockRows, rows)
		blk, err := x.RowRangeView(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	ooc, err := w.Finish(cols)
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()

	for _, variant := range []Variant{DCD, MISO} {
		cfg := Config{Variant: variant, C: 1, Seed: 7, MaxEpochs: 40}
		mem, err := Train(x, y, cfg)
		if err != nil {
			t.Fatalf("%v in-memory: %v", variant, err)
		}
		got, err := Train(ooc, y, cfg)
		if err != nil {
			t.Fatalf("%v ooc: %v", variant, err)
		}
		if got.Epochs != mem.Epochs || got.Updates != mem.Updates || got.Converged != mem.Converged {
			t.Fatalf("%v: trajectory differs: epochs %d/%d updates %d/%d",
				variant, got.Epochs, mem.Epochs, got.Updates, mem.Updates)
		}
		if len(got.W) != len(mem.W) {
			t.Fatalf("%v: w length %d != %d", variant, len(got.W), len(mem.W))
		}
		for j := range mem.W {
			if math.Float64bits(got.W[j]) != math.Float64bits(mem.W[j]) {
				t.Fatalf("%v: w[%d] differs: %v != %v", variant, j, got.W[j], mem.W[j])
			}
		}
		for i := range mem.Alpha {
			if math.Float64bits(got.Alpha[i]) != math.Float64bits(mem.Alpha[i]) {
				t.Fatalf("%v: alpha[%d] differs", variant, i)
			}
		}
	}
	if loads, _, evictions := ooc.Stats(); loads == 0 || evictions == 0 {
		t.Fatalf("training did not exercise the spill path: %d loads, %d evictions", loads, evictions)
	}
}
