package linear

import (
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// trainDCD runs LIBLINEAR-style dual coordinate descent on the L1-hinge
// dual
//
//	min_a 1/2 a'Q a - e'a,  Q_ij = y_i y_j x_i'x_j,  0 <= a_i <= C,
//
// maintaining w = sum_i a_i y_i x_i so the per-coordinate gradient
// G_i = y_i w'x_i - 1 costs one sparse-dense dot and each accepted update
// costs one sparse axpy. Epochs visit the active set in a fresh seeded
// permutation; samples whose projected gradient proves them pinned at a
// bound are shrunk out and only re-examined on the final full-set
// verification pass, exactly as LIBLINEAR's Algorithm 3 does with its
// (M-bar, m-bar) thresholds.
func trainDCD(x sparse.RowMatrix, y []float64, cfg Config) (*Result, error) {
	n := x.Rows()
	rng := rand.New(rand.NewSource(cfg.Seed))

	w := make([]float64, x.Dim())
	alpha := make([]float64, n)
	// Q_ii = ||x_i||^2; a zero row has Q_ii = 0 and its closed-form step
	// degenerates to a jump straight to the violated bound (the projected
	// a - G/0 is +/-Inf, clipped to the box), which is the optimum for it.
	qii := sparse.SquaredNormsOf(x)

	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	nActive := n

	// Shrinking thresholds from the previous epoch's projected-gradient
	// extremes: alpha_i = 0 with G_i > mBarUp (resp. alpha_i = C with
	// G_i < mBarLow) cannot re-enter the working set and is skipped.
	mBarUp, mBarLow := math.Inf(1), math.Inf(-1)

	res := &Result{Alpha: alpha}
	for res.Epochs = 0; res.Epochs < cfg.MaxEpochs; res.Epochs++ {
		rng.Shuffle(nActive, func(i, j int) {
			active[i], active[j] = active[j], active[i]
		})
		maxPG, minPG := math.Inf(-1), math.Inf(1)

		for t := 0; t < nActive; {
			i := active[t]
			r := x.RowView(i)
			g := y[i]*sparse.GatherDense(r, w) - 1

			a := alpha[i]
			var pg float64
			switch {
			case a == 0:
				if !cfg.DisableShrink && g > mBarUp {
					nActive--
					active[t], active[nActive] = active[nActive], active[t]
					continue
				}
				if g < 0 {
					pg = g
				}
			case a == cfg.C:
				if !cfg.DisableShrink && g < mBarLow {
					nActive--
					active[t], active[nActive] = active[nActive], active[t]
					continue
				}
				if g > 0 {
					pg = g
				}
			default:
				pg = g
			}
			t++

			if pg > maxPG {
				maxPG = pg
			}
			if pg < minPG {
				minPG = pg
			}
			if math.Abs(pg) > 1e-12 {
				na := math.Min(math.Max(a-g/qii[i], 0), cfg.C)
				if na != a {
					sparse.AddScaledTo(r, w, (na-a)*y[i])
					alpha[i] = na
					res.Updates++
				}
			}
		}

		// An epoch that examined nothing (everything shrunk or every
		// projected gradient exactly zero) satisfies any tolerance.
		spread := 0.0
		if nActive > 0 && maxPG > minPG {
			spread = maxPG - minPG
		}
		if spread < cfg.Eps {
			if nActive == n {
				res.Converged = true
				res.Epochs++
				break
			}
			// The shrunk problem converged: unshrink and verify the
			// termination criterion over the full set next epoch.
			nActive = n
			mBarUp, mBarLow = math.Inf(1), math.Inf(-1)
			continue
		}
		mBarUp = maxPG
		if mBarUp <= 0 {
			mBarUp = math.Inf(1)
		}
		mBarLow = minPG
		if mBarLow >= 0 {
			mBarLow = math.Inf(-1)
		}
	}

	// Ship a drift-free w rebuilt from the final dual point.
	res.W = rebuildW(x, y, alpha, x.Dim())
	res.Primal, res.Dual = hingeObjectives(x, y, res.W, alpha, cfg.C)
	res.Gap = res.Primal - res.Dual
	return res, nil
}
