package linear

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/smo"
	"repro/internal/sparse"
)

// textProblem generates a binary sparse-text-shaped problem (the rcv1
// stand-in) and splits off a holdout: the generated spec publishes no test
// set, and rows are i.i.d. draws, so a trailing slice is an unbiased split.
func textProblem(t *testing.T, scale float64) (trainX *sparse.Matrix, trainY []float64, testX *sparse.Matrix, testY []float64) {
	t.Helper()
	ds := dataset.MustGenerate("rcv1", scale)
	n := ds.X.Rows()
	cut := n * 4 / 5
	var err error
	if trainX, err = ds.X.RowRangeView(0, cut); err != nil {
		t.Fatal(err)
	}
	if testX, err = ds.X.RowRangeView(cut, n); err != nil {
		t.Fatal(err)
	}
	return trainX, ds.Y[:cut], testX, ds.Y[cut:]
}

func TestDCDConverges(t *testing.T) {
	x, y, tx, ty := textProblem(t, 0.05)
	res, err := Train(x, y, Config{C: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("dcd did not converge in %d epochs (gap %v)", res.Epochs, res.Gap)
	}
	if tol := gapTolerance(x.Rows(), 10, 1e-3); res.Gap > tol {
		t.Fatalf("gap %v exceeds tolerance %v", res.Gap, tol)
	}
	if res.Primal < res.Dual {
		t.Fatalf("primal %v below dual %v", res.Primal, res.Dual)
	}
	met, err := res.Model.Evaluate(tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	if met.Accuracy < 90 {
		t.Fatalf("holdout accuracy %v%%", met.Accuracy)
	}
	// The dual point must be box-feasible and reproduce the shipped w.
	for i, a := range res.Alpha {
		if a < 0 || a > 10 {
			t.Fatalf("alpha[%d] = %v outside [0, C]", i, a)
		}
	}
}

func TestMISOConverges(t *testing.T) {
	x, y, tx, ty := textProblem(t, 0.05)
	res, err := Train(x, y, Config{Variant: MISO, C: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("miso did not converge in %d epochs (gap %v)", res.Epochs, res.Gap)
	}
	if tol := gapTolerance(x.Rows(), 10, 1e-3); res.Gap > tol {
		t.Fatalf("gap %v exceeds tolerance %v", res.Gap, tol)
	}
	met, err := res.Model.Evaluate(tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	if met.Accuracy < 90 {
		t.Fatalf("holdout accuracy %v%%", met.Accuracy)
	}
	for i, a := range res.Alpha {
		if a < 0 {
			t.Fatalf("alpha[%d] = %v negative", i, a)
		}
	}
}

// TestDeterministic: equal seeds give bit-identical hyperplanes, different
// seeds a different (but equally valid) run.
func TestDeterministic(t *testing.T) {
	x, y, _, _ := textProblem(t, 0.03)
	for _, v := range []Variant{DCD, MISO} {
		a, err := Train(x, y, Config{Variant: v, C: 10, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Train(x, y, Config{Variant: v, C: 10, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.W) != len(b.W) {
			t.Fatalf("%s: dim %d vs %d", v, len(a.W), len(b.W))
		}
		for j := range a.W {
			if math.Float64bits(a.W[j]) != math.Float64bits(b.W[j]) {
				t.Fatalf("%s: w[%d] differs across equal-seed runs: %v vs %v", v, j, a.W[j], b.W[j])
			}
		}
		if a.Epochs != b.Epochs || a.Updates != b.Updates {
			t.Fatalf("%s: trajectory differs: epochs %d/%d updates %d/%d", v, a.Epochs, b.Epochs, a.Updates, b.Updates)
		}
	}
}

// TestMatchesSMOAccuracy: on the linear-kernel problem the fast path must
// match the kernel baseline's holdout accuracy within the paper's 0.5%.
func TestMatchesSMOAccuracy(t *testing.T) {
	x, y, tx, ty := textProblem(t, 0.05)
	sres, err := smo.Train(x, y, smo.Config{
		Kernel: kernel.Params{Type: kernel.Linear}, C: 10, Eps: 1e-3,
		Workers: 4, Shrinking: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	smet, err := sres.Model.Evaluate(tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{DCD, MISO} {
		res, err := Train(x, y, Config{Variant: v, C: 10, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		met, err := res.Model.Evaluate(tx, ty)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(met.Accuracy - smet.Accuracy); d > 0.5 {
			t.Fatalf("%s accuracy %v%% vs smo %v%%: delta %v exceeds 0.5", v, met.Accuracy, smet.Accuracy, d)
		}
	}
}

// TestShrinkParity: shrinking is a speed device, not a solution change —
// with and without it DCD must land inside the same tolerance band and
// agree on every holdout prediction.
func TestShrinkParity(t *testing.T) {
	x, y, tx, _ := textProblem(t, 0.05)
	shr, err := Train(x, y, Config{C: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Train(x, y, Config{C: 10, Seed: 7, DisableShrink: true})
	if err != nil {
		t.Fatal(err)
	}
	if !shr.Converged || !plain.Converged {
		t.Fatalf("converged: shrink=%v plain=%v", shr.Converged, plain.Converged)
	}
	tol := gapTolerance(x.Rows(), 10, 1e-3)
	if shr.Gap > tol || plain.Gap > tol {
		t.Fatalf("gaps %v / %v exceed %v", shr.Gap, plain.Gap, tol)
	}
	ps, pp := shr.Model.PredictBatch(tx, 0), plain.Model.PredictBatch(tx, 0)
	for i := range ps {
		if ps[i] != pp[i] {
			t.Fatalf("holdout row %d: shrink predicts %v, no-shrink %v", i, ps[i], pp[i])
		}
	}
}

func TestTrainValidation(t *testing.T) {
	x := sparse.FromDense([][]float64{{1, 0}, {0, 1}})
	y := []float64{1, -1}
	cases := []struct {
		name string
		x    *sparse.Matrix
		y    []float64
		cfg  Config
		want string
	}{
		{"nil matrix", nil, y, Config{C: 1}, "empty training matrix"},
		{"label mismatch", x, []float64{1}, Config{C: 1}, "labels"},
		{"bad label", x, []float64{1, 2}, Config{C: 1}, "want +1 or -1"},
		{"bad C", x, y, Config{C: 0}, "C must be positive"},
		{"bad variant", x, y, Config{C: 1, Variant: Variant(9)}, "unknown variant"},
	}
	for _, tc := range cases {
		if _, err := Train(tc.x, tc.y, tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestZeroRowHandled: an all-zero sample cannot move w (Q_ii = 0) and must
// not poison the run with NaNs.
func TestZeroRowHandled(t *testing.T) {
	b := sparse.NewBuilder(3)
	b.Add(0, 1)
	b.EndRow()
	b.EndRow() // empty row
	b.Add(1, 1)
	b.EndRow()
	b.Add(0, -1)
	b.Add(2, 0.5)
	b.EndRow()
	x := b.Build()
	y := []float64{1, 1, -1, -1}
	for _, v := range []Variant{DCD, MISO} {
		res, err := Train(x, y, Config{Variant: v, C: 1, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		for j, w := range res.W {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				t.Fatalf("%s: w[%d] = %v", v, j, w)
			}
		}
		for i, a := range res.Alpha {
			if math.IsNaN(a) {
				t.Fatalf("%s: alpha[%d] is NaN", v, i)
			}
		}
	}
}

func TestParseVariant(t *testing.T) {
	if v, err := ParseVariant("dcd"); err != nil || v != DCD {
		t.Fatalf("dcd -> %v, %v", v, err)
	}
	if v, err := ParseVariant("miso"); err != nil || v != MISO {
		t.Fatalf("miso -> %v, %v", v, err)
	}
	if _, err := ParseVariant("sgd"); err == nil {
		t.Fatal("expected error for unknown variant")
	}
	if Variant(9).String() == "" {
		t.Fatal("unknown variant must still render")
	}
}

func benchProblem(b *testing.B) (*sparse.Matrix, []float64) {
	b.Helper()
	ds, err := dataset.Generate(dataset.Specs["rcv1"], 0.1)
	if err != nil {
		b.Fatal(err)
	}
	return ds.X, ds.Y
}

func BenchmarkTrainDCD(b *testing.B) {
	x, y := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, Config{C: 10, Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainMISO(b *testing.B) {
	x, y := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, Config{Variant: MISO, C: 10, Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
