package linear

import (
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// trainMISO runs the incremental primal surrogate solver of the MISO family
// on the squared-hinge objective, following the miso_svm_aux exemplar. The
// exemplar works in the sample-averaged convention
//
//	min_w  1/n sum_i 1/2 max(0, 1 - y_i w'x_i)^2 + lambda/2 ||w||^2
//
// which is exactly C*n times smaller than this repository's convention
// (P = 1/2||w||^2 + C/2 sum_i max(0,.)^2) when lambda = 1/(C*n) — the two
// share the same minimizer, so the solver iterates in the exemplar's scaling
// and the Result reports the repository-convention objectives.
//
// Each step draws one sample, minimizes its quadratic surrogate in closed
// form and folds the change into w with the convex-averaging step size
// delta = n*min(1/n, lambda/(2L)), L = mean||x_i||^2 + lambda. Every epoch
// the true duality gap is evaluated; the run stops when the scaled gap
// drops below Eps (equivalently, the unscaled gap below Eps*C*n) or the
// dual stops improving.
func trainMISO(x sparse.RowMatrix, y []float64, cfg Config) (*Result, error) {
	n := x.Rows()
	rng := rand.New(rand.NewSource(cfg.Seed))

	lambda := 1 / (cfg.C * float64(n))
	norms := sparse.SquaredNormsOf(x)
	var r float64
	for _, v := range norms {
		r += v
	}
	r /= float64(n)
	l := r + lambda
	delta := float64(n) * math.Min(1/float64(n), lambda/(2*l))

	w := make([]float64, x.Dim())
	// ab is the exemplar's alpha: w = sum_i ab_i x_i / n. The repository
	// convention's dual point is a_i = y_i*ab_i/n >= 0.
	ab := make([]float64, n)

	res := &Result{}
	dualOld := math.Inf(-1)
	tol := gapTolerance(n, cfg.C, cfg.Eps)
	for res.Epochs = 0; res.Epochs < cfg.MaxEpochs; res.Epochs++ {
		for t := 0; t < n; t++ {
			i := rng.Intn(n)
			xi := x.RowView(i)
			beta := y[i] * sparse.GatherDense(xi, w)
			gamma := math.Max(1-beta, 0)
			na := (1-delta)*ab[i] + delta*y[i]*gamma/lambda
			if na != ab[i] {
				sparse.AddScaledTo(xi, w, (na-ab[i])/float64(n))
				ab[i] = na
				res.Updates++
			}
		}

		alpha := scaleDual(ab, y, n)
		// Periodic drift-free recompute, as the exemplar does before each
		// objective evaluation.
		w = rebuildMISOW(x, ab, x.Dim())
		primal, dual := squaredHingeObjectives(x, y, w, alpha, cfg.C)
		res.Primal, res.Dual, res.Gap = primal, dual, primal-dual
		if res.Gap < tol {
			res.Converged = true
			res.Epochs++
			break
		}
		if dual <= dualOld {
			// The dual bound stopped improving: further epochs only churn.
			res.Epochs++
			break
		}
		dualOld = dual
	}

	res.Alpha = scaleDual(ab, y, n)
	res.W = rebuildW(x, y, res.Alpha, x.Dim())
	res.Primal, res.Dual = squaredHingeObjectives(x, y, res.W, res.Alpha, cfg.C)
	res.Gap = res.Primal - res.Dual
	res.Converged = res.Converged || res.Gap < tol
	return res, nil
}

// scaleDual converts the exemplar's signed, n-scaled alphas into the
// repository-convention dual point a_i = y_i*ab_i/n, clipping the tiny
// negative values floating-point averaging can leave behind.
func scaleDual(ab, y []float64, n int) []float64 {
	alpha := make([]float64, len(ab))
	for i, v := range ab {
		a := y[i] * v / float64(n)
		if a < 0 {
			a = 0
		}
		alpha[i] = a
	}
	return alpha
}

// rebuildMISOW recomputes w = sum_i ab_i x_i / n from scratch.
func rebuildMISOW(x sparse.RowMatrix, ab []float64, dim int) []float64 {
	w := make([]float64, dim)
	n := float64(len(ab))
	for i, v := range ab {
		if v != 0 {
			sparse.AddScaledTo(x.RowView(i), w, v/n)
		}
	}
	return w
}
