package linear

import (
	"context"
	"fmt"

	"repro/internal/solver"
)

func init() { solver.Register(linearEngine{}) }

// linearEngine adapts the explicit-w fast path to solver.Engine. It is the
// only engine that streams: any sparse.RowMatrix (including the out-of-core
// spill-backed OOCMatrix) trains row-at-a-time without whole-dataset
// residency.
type linearEngine struct{}

func (linearEngine) Name() string { return "linear" }

func (linearEngine) Capabilities() solver.Capability {
	return solver.CapClassify | solver.CapStreaming | solver.CapLinearVariants
}

func (linearEngine) Describe() string {
	return "explicit-w linear fast path (dcd hinge / miso squared hinge): no kernel matrix, streams out-of-core data"
}

func (e linearEngine) Train(ctx context.Context, prob solver.Problem, opts solver.Options) (solver.Result, error) {
	if err := solver.Validate(e, prob, opts); err != nil {
		return solver.Result{}, err
	}
	variant := DCD
	if opts.Linear.Variant != "" {
		var err error
		if variant, err = ParseVariant(opts.Linear.Variant); err != nil {
			return solver.Result{}, err
		}
	}
	cfg := Config{
		Variant: variant, C: opts.C, Eps: opts.Eps,
		MaxEpochs: opts.Linear.MaxEpochs, Seed: opts.Seed,
		DisableShrink: opts.Linear.NoShrink,
	}
	res, err := Train(prob.X, prob.Y, cfg)
	if err != nil {
		return solver.Result{}, err
	}
	return solver.Result{
		Model:      res.Model,
		Alpha:      res.Alpha,
		Iterations: int64(res.Updates),
		Converged:  res.Converged,
		Objective:  res.Dual,
		Summary: fmt.Sprintf("variant=%s converged=%v epochs=%d updates=%d gap=%.3e nnz(w)=%d/%d",
			variant, res.Converged, res.Epochs, res.Updates, res.Gap,
			res.NNZ(), len(res.W)),
	}, nil
}
