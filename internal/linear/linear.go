// Package linear is the primal/linear fast-path solver family: SVM training
// that never forms kernel rows. Every other engine in the repository (core,
// smo, dcsvm) works in the dual with kernel evaluations — the right tool for
// Gaussian kernels, but a detour when the kernel is linear, which is exactly
// the regime of the paper's sparse text-shaped workloads (RCV1, URL,
// real-sim). There the decision function is a single hyperplane w, and a
// solver that maintains w explicitly updates it in O(nnz(x_i)) per sample
// instead of paying an O(n * nnz) kernel row per working-set step.
//
// Two variants share one Config/Train API:
//
//   - DCD: LIBLINEAR-style dual coordinate descent for L2-regularized
//     L1-hinge loss (Hsieh et al., "A Dual Coordinate Descent Method for
//     Large-scale Linear SVM"). One pass updates each alpha_i by a
//     closed-form projected Newton step and folds the change into w via a
//     sparse axpy; epochs visit samples in a fresh random permutation, and
//     projected-gradient shrinking removes samples pinned at the bounds.
//   - MISO: an incremental primal surrogate-minimization solver for the
//     L2-regularized squared-hinge loss, mirroring the miso_svm_aux exemplar
//     (Mairal's MISO as shipped in the SPAMS toolbox): per-step convex
//     averaging of a per-sample surrogate with step size derived from the
//     Lipschitz constant, with a periodic duality-gap stop.
//
// Both return a model.Model carrying the dense weight vector, so prediction
// is one sparse-dense dot product — no support vectors, no kernel sweep.
// Training is deterministic in (data, Config): the only randomness is the
// seeded permutation/index stream.
package linear

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/sparse"
)

// Variant selects the solver inside the family.
type Variant int

const (
	// DCD is dual coordinate descent on the L1-hinge dual (the default).
	DCD Variant = iota
	// MISO is the incremental primal squared-hinge solver.
	MISO
)

// String returns the flag-facing name of the variant.
func (v Variant) String() string {
	switch v {
	case DCD:
		return "dcd"
	case MISO:
		return "miso"
	default:
		return fmt.Sprintf("linear.Variant(%d)", int(v))
	}
}

// ParseVariant converts a flag value to a Variant.
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "dcd":
		return DCD, nil
	case "miso":
		return MISO, nil
	}
	return 0, fmt.Errorf("linear: unknown variant %q (valid: dcd, miso)", s)
}

// Config controls one linear training run.
type Config struct {
	// Variant selects the solver: DCD (default) or MISO.
	Variant Variant
	// C is the box constraint of the hinge loss (DCD) or the weight of the
	// squared-hinge loss (MISO, internally mapped to lambda = 1/(C*n)).
	C float64
	// Eps is the termination tolerance. DCD stops when the spread of the
	// projected gradients over a full epoch drops below Eps; MISO stops when
	// the duality gap of the scaled objective drops below Eps. 0 means 1e-3.
	Eps float64
	// MaxEpochs bounds the number of passes over the data; 0 means a
	// per-variant default (1000 for DCD, 500 for MISO).
	MaxEpochs int
	// Seed drives the per-epoch random permutation (DCD) or the sample
	// index stream (MISO). 0 means 1. Equal seeds give byte-identical runs.
	Seed int64
	// DisableShrink turns off projected-gradient shrinking (DCD only);
	// useful for parity testing the shrinking bookkeeping.
	DisableShrink bool
}

func (c Config) withDefaults() Config {
	if c.Eps <= 0 {
		c.Eps = 1e-3
	}
	if c.MaxEpochs <= 0 {
		if c.Variant == MISO {
			c.MaxEpochs = 500
		} else {
			c.MaxEpochs = 1000
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result carries the trained model and the solver's own account of the
// optimization, including the final primal/dual objectives so callers (and
// the oracle) can see how tight the solution is without recomputing.
type Result struct {
	Model *model.Model
	// W aliases Model.W: the trained hyperplane.
	W []float64
	// Alpha is the per-sample dual point behind W
	// (W = sum_i Alpha[i]*y[i]*x_i), feasible for the variant's dual:
	// [0, C] boxes for DCD, alpha >= 0 for MISO.
	Alpha []float64
	// Epochs is the number of passes over the (possibly shrunk) data.
	Epochs int
	// Updates counts coordinate/sample updates actually applied.
	Updates int64
	// Converged reports whether the tolerance was met within MaxEpochs.
	Converged bool
	// Primal, Dual and Gap are the final objectives of the variant's
	// problem (see oracle.LinearProblem for the exact expressions).
	Primal, Dual, Gap float64
}

func validate(x sparse.RowMatrix, y []float64, cfg Config) error {
	// A nil *sparse.Matrix arrives as a non-nil interface; catch it before
	// Rows dereferences it.
	if m, ok := x.(*sparse.Matrix); x == nil || (ok && m == nil) || x.Rows() == 0 {
		return fmt.Errorf("linear: empty training matrix")
	}
	if x.Rows() != len(y) {
		return fmt.Errorf("linear: %d rows but %d labels", x.Rows(), len(y))
	}
	for i, v := range y {
		if v != 1 && v != -1 {
			return fmt.Errorf("linear: label %d is %v, want +1 or -1", i, v)
		}
	}
	if cfg.C <= 0 {
		return fmt.Errorf("linear: C must be positive, got %v", cfg.C)
	}
	if cfg.Variant != DCD && cfg.Variant != MISO {
		return fmt.Errorf("linear: unknown variant %d", int(cfg.Variant))
	}
	return nil
}

// Train fits a linear SVM on labels in {+1, -1} with the configured variant.
// The returned model carries the dense weight vector (Model.W) and no
// support vectors; its decision function is w'x (the bias-free LIBLINEAR
// convention, Beta = 0).
//
// x is any row-iterable matrix: the usual in-memory CSR, or an out-of-core
// sparse.OOCMatrix when the dataset exceeds RAM. The solvers touch data
// only row-at-a-time, and training is deterministic in (data, Config), so
// the out-of-core path produces a byte-identical model.
func Train(x sparse.RowMatrix, y []float64, cfg Config) (*Result, error) {
	if err := validate(x, y, cfg); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var res *Result
	var err error
	switch cfg.Variant {
	case MISO:
		res, err = trainMISO(x, y, cfg)
	default:
		res, err = trainDCD(x, y, cfg)
	}
	if err != nil {
		return nil, err
	}
	res.Model = &model.Model{
		Kernel:       kernel.Params{Type: kernel.Linear},
		C:            cfg.C,
		W:            res.W,
		Beta:         0,
		TrainSamples: x.Rows(),
		Iterations:   res.Updates,
	}
	return res, nil
}

// rebuildW recomputes w = sum_i alpha_i*y_i*x_i from scratch, removing the
// floating-point drift of many incremental axpy updates (the same "improve
// numerical stability" recompute the MISO exemplar performs). The returned
// vector is what the model ships and what the oracle's w-consistency check
// reproduces, in the same row order.
func rebuildW(x sparse.RowMatrix, y, alpha []float64, dim int) []float64 {
	w := make([]float64, dim)
	for i, a := range alpha {
		if a != 0 {
			sparse.AddScaledTo(x.RowView(i), w, a*y[i])
		}
	}
	return w
}

// hingeObjectives evaluates the L1-hinge primal/dual pair at (w, alpha):
//
//	P(w) = 1/2 ||w||^2 + C sum_i max(0, 1 - y_i w'x_i)
//	D(a) = sum_i a_i - 1/2 ||w||^2
func hingeObjectives(x sparse.RowMatrix, y, w, alpha []float64, c float64) (primal, dual float64) {
	var wNorm2 float64
	for _, v := range w {
		wNorm2 += v * v
	}
	var hinge, aSum float64
	for i := 0; i < x.Rows(); i++ {
		f := sparse.GatherDense(x.RowView(i), w)
		if s := 1 - y[i]*f; s > 0 {
			hinge += s
		}
		aSum += alpha[i]
	}
	return 0.5*wNorm2 + c*hinge, aSum - 0.5*wNorm2
}

// squaredHingeObjectives evaluates the L2-hinge primal/dual pair at
// (w, alpha):
//
//	P(w) = 1/2 ||w||^2 + C/2 sum_i max(0, 1 - y_i w'x_i)^2
//	D(a) = sum_i a_i - 1/2 ||w||^2 - 1/(2C) sum_i a_i^2
func squaredHingeObjectives(x sparse.RowMatrix, y, w, alpha []float64, c float64) (primal, dual float64) {
	var wNorm2 float64
	for _, v := range w {
		wNorm2 += v * v
	}
	var sq, aSum, aSq float64
	for i := 0; i < x.Rows(); i++ {
		f := sparse.GatherDense(x.RowView(i), w)
		if s := 1 - y[i]*f; s > 0 {
			sq += s * s
		}
		aSum += alpha[i]
		aSq += alpha[i] * alpha[i]
	}
	return 0.5*wNorm2 + 0.5*c*sq, aSum - 0.5*wNorm2 - aSq/(2*c)
}

// nnz counts the nonzero entries of a dense vector (reported in summaries:
// on text-shaped data the trained hyperplane stays sparse because only
// features seen in margin-violating samples ever receive mass).
func nnz(w []float64) int {
	n := 0
	for _, v := range w {
		if v != 0 {
			n++
		}
	}
	return n
}

// NNZ reports the number of nonzero weights of the trained hyperplane.
func (r *Result) NNZ() int { return nnz(r.W) }

// gapTolerance is the absolute duality-gap bound corresponding to an eps
// termination: each sample contributes at most C*eps (see the derivation in
// oracle's linear checks).
func gapTolerance(n int, c, eps float64) float64 {
	return eps*c*float64(n) + 1e-6
}
