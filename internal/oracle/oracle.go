// Package oracle is the solver-agnostic correctness oracle of the
// repository: it checks any trained model (or raw dual point) against the
// underlying quadratic program, independently of which engine produced it.
//
// The paper's central claim is that adaptive shrinking plus distributed
// gradient reconstruction is exact — every Table II heuristic must converge
// to the same optimum as the unshrunk Algorithm 2. Test-set accuracy is too
// blunt an instrument to verify that (many different dual points classify a
// test set identically), so this package follows the practice of the
// solver-validation literature and measures optimality directly:
//
//   - per-sample KKT violation against the model's threshold beta, with the
//     C-bound/free classification of Eq. 4 (free alphas must sit on the
//     hyperplane, bound alphas on the correct side);
//   - the primal and dual objectives and their duality gap;
//   - dual feasibility: the box 0 <= alpha_i <= C and the equality
//     constraint sum_i alpha_i*y_i = 0;
//   - support-vector consistency: the model's SV set must correspond to a
//     recoverable per-sample alpha vector over the training set.
//
// Tolerance semantics. The solvers terminate at beta_up + 2*eps >= beta_low
// (Eq. 5), and beta is chosen inside the [beta_up, beta_low] band, so at an
// eps-approximate solution every per-sample violation is bounded by
// 2*eps: that bound, plus rounding slack, is KKTTolerance. The duality gap
// of such a point is bounded by C times the summed violations, which
// GapTolerance relaxes to 2*eps*C*n — loose, but engine-independent.
package oracle

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// Problem is the quadratic program a model is verified against: the
// training data and the hyper-parameters of the dual
//
//	max W(alpha) = sum_i alpha_i - 1/2 sum_ij alpha_i alpha_j y_i y_j K_ij
//	s.t. 0 <= alpha_i <= C,  sum_i alpha_i y_i = 0.
type Problem struct {
	X      *sparse.Matrix
	Y      []float64 // labels in {+1, -1}
	Kernel kernel.Params
	C      float64
	Eps    float64 // solver tolerance the checks are calibrated to; 0 = 1e-3
	// Workers bounds the goroutines of the O(n * |SV|) gradient
	// recomputation; 0 means GOMAXPROCS.
	Workers int
}

func (p Problem) withDefaults() Problem {
	if p.Eps <= 0 {
		p.Eps = 1e-3
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	return p
}

func (p Problem) validate() error {
	if p.X == nil {
		return fmt.Errorf("oracle: nil training matrix")
	}
	if p.X.Rows() != len(p.Y) {
		return fmt.Errorf("oracle: %d rows but %d labels", p.X.Rows(), len(p.Y))
	}
	for i, v := range p.Y {
		if v != 1 && v != -1 {
			return fmt.Errorf("oracle: label %d is %v, want +1 or -1", i, v)
		}
	}
	if p.C <= 0 {
		return fmt.Errorf("oracle: C must be positive, got %v", p.C)
	}
	return p.Kernel.Validate()
}

// KKTTolerance is the maximum per-sample KKT violation an eps-approximate
// solution may exhibit: the Eq. 5 termination band is 2*eps wide and beta
// lies inside it, so no sample can violate by more (plus rounding slack).
func KKTTolerance(eps float64) float64 { return 2*eps + 1e-9 }

// GapTolerance bounds the duality gap of an eps-approximate solution:
// each of the n samples contributes at most C times its KKT violation
// (itself at most 2*eps) to the gap.
func GapTolerance(n int, c, eps float64) float64 {
	return 2*eps*c*float64(n) + 1e-6
}

// WorstSample carries the full context of the worst KKT violator, so a
// failing check names the exact sample and why it violates.
type WorstSample struct {
	Index     int     // training-set index
	Y         float64 // label
	Alpha     float64 // dual variable
	Gamma     float64 // gradient gamma_i = F_i - y_i
	Set       string  // Eq. 4 index set (I0..I4)
	Violation float64
}

// String renders the violator for diagnostics.
func (w WorstSample) String() string {
	return fmt.Sprintf("sample %d (y=%+g, alpha=%.6g, set %s): gamma=%.6g, violation=%.3e",
		w.Index, w.Y, w.Alpha, w.Set, w.Gamma, w.Violation)
}

// Report is the outcome of one verification.
type Report struct {
	N     int // training samples
	NumSV int // samples with alpha > 0

	Beta             float64 // the threshold the violations are measured against
	BetaUp, BetaLow  float64 // Eq. 3 band of the verified point
	PrimalObjective  float64
	DualObjective    float64
	DualityGap       float64 // primal - dual (>= 0 at feasible points, up to rounding)
	RelativeGap      float64 // gap / max(1, |primal|, |dual|)
	MaxKKTViolation  float64
	MeanKKTViolation float64
	EqualityResidual float64 // |sum alpha_i y_i|
	BoxViolation     float64 // max distance outside [0, C]
	AlphaMass        float64 // sum alpha_i (scales the equality tolerance)
	Worst            WorstSample

	Eps float64 // tolerance the report was calibrated to
	C   float64
}

// String renders the report as an aligned block for CLI output.
func (r *Report) String() string {
	status := "OK"
	if err := r.Check(); err != nil {
		status = "FAIL"
	}
	return fmt.Sprintf(
		"oracle report (%s): n=%d SVs=%d\n"+
			"  dual objective    %.6f\n"+
			"  primal objective  %.6f\n"+
			"  duality gap       %.3e (relative %.3e, tolerance %.3e)\n"+
			"  max KKT violation %.3e (tolerance %.3e) at %s\n"+
			"  mean KKT violation %.3e\n"+
			"  sum(alpha*y)      %.3e (alpha mass %.6g)\n"+
			"  box violation     %.3e\n"+
			"  beta=%.6g band [beta_up=%.6g, beta_low=%.6g]",
		status, r.N, r.NumSV,
		r.DualObjective, r.PrimalObjective,
		r.DualityGap, r.RelativeGap, GapTolerance(r.N, r.C, r.Eps),
		r.MaxKKTViolation, KKTTolerance(r.Eps), r.Worst,
		r.MeanKKTViolation,
		r.EqualityResidual, r.AlphaMass,
		r.BoxViolation,
		r.Beta, r.BetaUp, r.BetaLow)
}

// Check returns nil when the verified point is an eps-approximate optimum:
// feasible, KKT violations inside the 2*eps band, and a duality gap within
// the engine-independent bound. The error names the worst violator.
func (r *Report) Check() error {
	if r.BoxViolation > 1e-9*(1+r.C) {
		return fmt.Errorf("oracle: box constraint violated by %.3e (C=%g)", r.BoxViolation, r.C)
	}
	if eqTol := 1e-6 * (1 + r.AlphaMass); r.EqualityResidual > eqTol {
		return fmt.Errorf("oracle: sum(alpha*y) = %.3e exceeds tolerance %.3e", r.EqualityResidual, eqTol)
	}
	if tol := KKTTolerance(r.Eps); r.MaxKKTViolation > tol {
		return fmt.Errorf("oracle: max KKT violation %.3e exceeds tolerance %.3e: %s",
			r.MaxKKTViolation, tol, r.Worst)
	}
	if r.DualityGap < -1e-6*(1+math.Abs(r.DualObjective)) {
		return fmt.Errorf("oracle: negative duality gap %.3e (primal %.6f < dual %.6f): objectives are inconsistent",
			r.DualityGap, r.PrimalObjective, r.DualObjective)
	}
	if tol := GapTolerance(r.N, r.C, r.Eps); r.DualityGap > tol {
		return fmt.Errorf("oracle: duality gap %.3e exceeds tolerance %.3e (worst violator %s)",
			r.DualityGap, tol, r.Worst)
	}
	return nil
}

// setName labels an Eq. 4 index set for diagnostics.
func setName(s solver.IndexSet) string {
	switch s {
	case solver.I0:
		return "I0 (free)"
	case solver.I1:
		return "I1 (y=+1, alpha=0)"
	case solver.I2:
		return "I2 (y=-1, alpha=C)"
	case solver.I3:
		return "I3 (y=+1, alpha=C)"
	case solver.I4:
		return "I4 (y=-1, alpha=0)"
	default:
		return fmt.Sprintf("IndexSet(%d)", int(s))
	}
}

// VerifyAlpha checks a full dual point against the problem, measuring KKT
// violations against the given threshold beta (the model's bias; pass the
// solver's computed beta). It recomputes every gradient from scratch —
// gamma_i = sum_{alpha_j > 0} alpha_j y_j K(j, i) - y_i — so the check is
// independent of any solver bookkeeping.
func (p Problem) VerifyAlpha(alpha []float64, beta float64) (*Report, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := p.X.Rows()
	if len(alpha) != n {
		return nil, fmt.Errorf("oracle: %d alphas for %d samples", len(alpha), n)
	}
	for i, a := range alpha {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return nil, fmt.Errorf("oracle: alpha[%d] is %v", i, a)
		}
	}

	var svs []int
	for j, a := range alpha {
		if a > 0 {
			svs = append(svs, j)
		}
	}
	gamma := p.gradients(alpha, svs)

	r := &Report{N: n, NumSV: len(svs), Beta: beta, Eps: p.Eps, C: p.C,
		BetaUp: math.Inf(1), BetaLow: math.Inf(-1)}
	var eq, sumViol, slackSum, wNorm2 float64
	for i := 0; i < n; i++ {
		a, y, g := alpha[i], p.Y[i], gamma[i]
		eq += a * y
		r.AlphaMass += a
		if excess := math.Max(-a, a-p.C); excess > r.BoxViolation {
			r.BoxViolation = excess
		}
		// F_i = gamma_i + y_i is the margin sum; w'w accumulates alpha_i y_i F_i.
		f := g + y
		wNorm2 += a * y * f

		set := solver.Classify(y, a, p.C)
		if solver.InUp(y, a, p.C) && g < r.BetaUp {
			r.BetaUp = g
		}
		if solver.InLow(y, a, p.C) && g > r.BetaLow {
			r.BetaLow = g
		}
		// KKT against beta: free alphas must satisfy y*f(x) = 1, i.e.
		// gamma = beta; alpha = 0 requires y*f(x) >= 1; alpha = C requires
		// y*f(x) <= 1. In gamma form, y*f(x) - 1 = y*(gamma - beta).
		var viol float64
		switch set {
		case solver.I0:
			viol = math.Abs(g - beta)
		case solver.I1, solver.I4: // alpha = 0
			viol = math.Max(0, -y*(g-beta))
		default: // I2, I3: alpha = C
			viol = math.Max(0, y*(g-beta))
		}
		sumViol += viol
		if viol > r.MaxKKTViolation {
			r.MaxKKTViolation = viol
			r.Worst = WorstSample{Index: i, Y: y, Alpha: a, Gamma: g,
				Set: setName(set), Violation: viol}
		}
		// Primal slack with the model's threshold: xi_i = max(0, 1 - y*(F_i - beta)).
		slackSum += math.Max(0, 1-y*(f-beta))
	}
	r.EqualityResidual = math.Abs(eq)
	r.MeanKKTViolation = sumViol / float64(n)
	r.DualObjective = r.AlphaMass - wNorm2/2
	r.PrimalObjective = wNorm2/2 + p.C*slackSum
	r.DualityGap = r.PrimalObjective - r.DualObjective
	r.RelativeGap = r.DualityGap / math.Max(1, math.Max(math.Abs(r.PrimalObjective), math.Abs(r.DualObjective)))
	return r, nil
}

// VerifyModel recovers the per-sample dual point behind a trained model
// (matching its support vectors back to training rows) and verifies it
// against the problem with the model's own threshold.
func (p Problem) VerifyModel(m *model.Model) (*Report, error) {
	alpha, err := RecoverAlpha(p.X, p.Y, m)
	if err != nil {
		return nil, err
	}
	return p.VerifyAlpha(alpha, m.Beta)
}

// gradients recomputes gamma_i = sum_{j in svs} alpha_j y_j K(j, i) - y_i
// for every sample, splitting the targets across the worker pool. Each
// support vector contributes one batched row evaluation over the worker's
// contiguous target range (the dense-scratch row engine), so the CSR
// payload of the targets streams in storage order.
func (p Problem) gradients(alpha []float64, svs []int) []float64 {
	n := p.X.Rows()
	gamma := make([]float64, n)
	ev := kernel.NewEvaluator(p.Kernel, p.X)
	w := p.Workers
	if w > n {
		w = n
	}
	chunk := func(ev *kernel.Evaluator, lo, hi int) {
		var scr kernel.Scratch
		buf := make([]float64, hi-lo)
		for _, j := range svs {
			ev.RowRangeInto(&scr, p.X.RowView(j), ev.Norm(j), lo, hi, buf)
			c := alpha[j] * p.Y[j]
			for k, v := range buf {
				gamma[lo+k] += c * v
			}
		}
		for i := lo; i < hi; i++ {
			gamma[i] -= p.Y[i]
		}
	}
	if w <= 1 {
		chunk(ev, 0, n)
		return gamma
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := k*n/w, (k+1)*n/w
		wg.Add(1)
		go func(ev *kernel.Evaluator, lo, hi int) {
			defer wg.Done()
			chunk(ev, lo, hi)
		}(ev.SubEvaluator(), lo, hi)
	}
	wg.Wait()
	return gamma
}

// RecoverAlpha maps a model's support vectors back onto the training set,
// returning the full per-sample dual vector (alpha_i = |coef| for matched
// rows, 0 elsewhere). Each support vector must match a distinct training
// row with the same content and a label agreeing with sign(coef); identical
// duplicate rows are assigned greedily, which leaves gradients — and hence
// every oracle metric — unchanged. A support vector that matches no
// remaining training row means the model was not trained on (x, y), which
// is reported as a support-vector-consistency error.
func RecoverAlpha(x *sparse.Matrix, y []float64, m *model.Model) ([]float64, error) {
	if m == nil || m.SV == nil {
		return nil, fmt.Errorf("oracle: nil model")
	}
	if len(m.Coef) != m.SV.Rows() {
		return nil, fmt.Errorf("oracle: model has %d coefficients for %d support vectors", len(m.Coef), m.SV.Rows())
	}
	n := x.Rows()
	if n != len(y) {
		return nil, fmt.Errorf("oracle: %d rows but %d labels", n, len(y))
	}
	// Bucket training rows by (content, label); consume greedily per SV.
	type bucket struct{ idx []int }
	buckets := make(map[string]*bucket, n)
	key := func(r sparse.Row, label float64) string {
		if label > 0 {
			return "+" + r.Key()
		}
		return "-" + r.Key()
	}
	for i := 0; i < n; i++ {
		k := key(x.RowView(i), y[i])
		b := buckets[k]
		if b == nil {
			b = &bucket{}
			buckets[k] = b
		}
		b.idx = append(b.idx, i)
	}
	alpha := make([]float64, n)
	for s := 0; s < m.SV.Rows(); s++ {
		coef := m.Coef[s]
		label := 1.0
		a := coef
		if coef < 0 {
			label, a = -1, -coef
		}
		if a == 0 {
			return nil, fmt.Errorf("oracle: support vector %d has zero coefficient", s)
		}
		k := key(m.SV.RowView(s), label)
		b := buckets[k]
		if b == nil || len(b.idx) == 0 {
			return nil, fmt.Errorf("oracle: support vector %d (coef %.6g) matches no unused training row with label %+g — model and training set are inconsistent", s, coef, label)
		}
		i := b.idx[0]
		b.idx = b.idx[1:]
		alpha[i] = a
	}
	return alpha, nil
}
