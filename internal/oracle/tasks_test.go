package oracle

import (
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/sparse"
)

// svrTwoSample is analytically solvable: x1 = (1), z1 = 1 and x2 = (-1),
// z2 = -1 under the linear kernel with epsilon = 0.1, C = 10. The equality
// constraint forces d2 = -d1 and the objective 2*d1^2 - 2*d1 + 0.2*d1
// minimizes at d1 = 0.45 with beta = 0 and zero duality gap.
func svrTwoSample() SVRProblem {
	return SVRProblem{
		X:       sparse.FromDense([][]float64{{1}, {-1}}),
		Z:       []float64{1, -1},
		Kernel:  kernel.Params{Type: kernel.Linear},
		C:       10,
		Epsilon: 0.1,
		Eps:     1e-3,
	}
}

func TestSVRVerifyExactOptimum(t *testing.T) {
	p := svrTwoSample()
	rep, err := p.VerifyCoef([]float64{0.45, -0.45}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.DualObjective, 0.405; math.Abs(got-want) > 1e-12 {
		t.Errorf("dual objective = %v, want %v", got, want)
	}
	if math.Abs(rep.DualityGap) > 1e-12 {
		t.Errorf("duality gap = %v, want 0", rep.DualityGap)
	}
	if rep.MaxKKTViolation > 1e-12 {
		t.Errorf("max KKT violation = %v, want 0 (%s)", rep.MaxKKTViolation, rep.Worst)
	}
	if err := rep.Check(); err != nil {
		t.Errorf("Check at the exact optimum: %v", err)
	}
}

func TestSVRVerifyDetectsViolations(t *testing.T) {
	p := svrTwoSample()
	// Perturbed free coefficient: residual leaves the epsilon tube.
	rep, err := p.VerifyCoef([]float64{0.3, -0.3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err == nil {
		t.Error("suboptimal point accepted")
	}
	// Broken equality constraint.
	rep, err = p.VerifyCoef([]float64{0.45, -0.1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err == nil {
		t.Error("equality violation accepted")
	}
	// Box violation.
	rep, err = p.VerifyCoef([]float64{11, -11}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err == nil {
		t.Error("box violation accepted")
	}
	// Wrong threshold: both free samples drift off their tube edge.
	rep, err = p.VerifyCoef([]float64{0.45, -0.45}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err == nil {
		t.Error("wrong beta accepted")
	}
}

func TestOneClassVerifyExactOptimum(t *testing.T) {
	p := OneClassProblem{
		X:      sparse.FromDense([][]float64{{1}, {-1}}),
		Kernel: kernel.Params{Type: kernel.Linear},
		Nu:     1,
		Eps:    1e-3,
	}
	// nu = 1 puts both samples at the bound 1/2; u = 0 everywhere, rho = 0.
	rep, err := p.VerifyAlpha([]float64{0.5, 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.DualityGap) > 1e-12 || rep.MaxKKTViolation > 1e-12 {
		t.Errorf("gap %v, maxKKT %v at exact optimum", rep.DualityGap, rep.MaxKKTViolation)
	}
	if err := rep.Check(); err != nil {
		t.Errorf("Check at the exact optimum: %v", err)
	}
	// Equality violated (sum != 1).
	rep, err = p.VerifyAlpha([]float64{0.5, 0.2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err == nil {
		t.Error("sum(alpha) != 1 accepted")
	}
	// Wrong rho: bound samples require u <= rho, so a negative rho fails.
	rep, err = p.VerifyAlpha([]float64{0.5, 0.5}, -0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err == nil {
		t.Error("wrong rho accepted")
	}
}

func TestVerifyModelTaskMismatch(t *testing.T) {
	m := &model.Model{
		Kernel: kernel.Params{Type: kernel.Linear},
		C:      10,
		SV:     sparse.FromDense([][]float64{{1}}),
		Coef:   []float64{1},
	}
	// m is a classifier (zero task); both task verifiers must refuse it.
	if _, err := svrTwoSample().VerifyModel(m); err == nil {
		t.Error("SVR verifier accepted a classifier model")
	}
	p := OneClassProblem{X: sparse.FromDense([][]float64{{1}, {-1}}), Kernel: kernel.Params{Type: kernel.Linear}, Nu: 0.5}
	if _, err := p.VerifyModel(m); err == nil {
		t.Error("one-class verifier accepted a classifier model")
	}
}

func TestRecoverCoefContentMatching(t *testing.T) {
	x := sparse.FromDense([][]float64{{1, 0}, {0, 1}, {2, 2}})
	m := &model.Model{
		Kernel:  kernel.Params{Type: kernel.Linear},
		C:       10,
		Task:    model.TaskSVR,
		Epsilon: 0.1,
		SV:      sparse.FromDense([][]float64{{2, 2}, {1, 0}}),
		Coef:    []float64{-0.25, 0.5},
		Beta:    0,
	}
	coef, err := RecoverCoef(x, m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0, -0.25}
	for i := range want {
		if coef[i] != want[i] {
			t.Fatalf("coef = %v, want %v", coef, want)
		}
	}
	// A support vector absent from the training set must be reported.
	m.SV = sparse.FromDense([][]float64{{9, 9}})
	m.Coef = []float64{1}
	if _, err := RecoverCoef(x, m); err == nil {
		t.Error("foreign support vector accepted")
	}
}
