package oracle

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
)

// TestRunDifferentialAllHeuristics is the paper's exactness claim as an
// executable statement: on three seeded datasets, every Table II shrinking
// heuristic, the no-shrink baseline, cold and warm smo, and dcsvm must land
// on the same dual optimum within the eps-approximation tolerance, and every
// one of those models must individually satisfy the KKT oracle.
func TestRunDifferentialAllHeuristics(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness trains every engine; skipped in -short")
	}
	cases := []struct {
		name  string
		scale float64
	}{
		{"blobs", 0.15},
		{"codrna", 0.005},
		{"mushrooms", 0.05},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ds := dataset.MustGenerate(tc.name, tc.scale)
			d, err := RunDifferential(ds.X, ds.Y, DiffOptions{
				Kernel: kernel.FromSigma2(ds.Sigma2),
				C:      ds.C,
				Eps:    1e-3,
				Seed:   7,
			})
			if err != nil {
				t.Fatal(err)
			}
			// All Table II rows plus cold and warm runs of both smo
			// variants and the composite dc engine.
			if want := len(core.Table2()) + 5; len(d.Results) != want {
				t.Fatalf("got %d engine results, want %d", len(d.Results), want)
			}
			seen := make(map[string]bool, len(d.Results))
			for _, r := range d.Results {
				seen[r.Name] = true
			}
			for _, h := range core.Table2() {
				if !seen["core/"+h.Name] {
					t.Errorf("missing engine core/%s", h.Name)
				}
			}
			for _, name := range []string{"smo-cold", "smo-warm", "smo2-cold", "smo2-warm", "dc"} {
				if !seen[name] {
					t.Errorf("missing engine %s", name)
				}
			}
			if err := d.Check(); err != nil {
				t.Errorf("differential parity on %s: %v", tc.name, err)
			}
			if d.MaxSpread < 0 {
				t.Errorf("negative spread %v", d.MaxSpread)
			}
			t.Logf("%s: n=%d spread=%.3g (tol %.3g) low=%s high=%s",
				tc.name, ds.X.Rows(), d.MaxSpread, d.SpreadTolerance, d.LowEngine, d.HighEngine)
		})
	}
}

// TestDiffReportCheckNamesDisagreement drives the failure path directly: a
// spread above tolerance must produce a diagnostic naming both engines and
// the worst-violating sample of the low one.
func TestDiffReportCheckNamesDisagreement(t *testing.T) {
	mk := func(obj, viol float64, idx int) *Report {
		return &Report{
			N: 2, Eps: 1e-3, C: 1,
			DualObjective:   obj,
			PrimalObjective: obj,
			MaxKKTViolation: viol,
			Worst:           WorstSample{Index: idx, Alpha: 0.5, Set: "I0", Violation: viol},
		}
	}
	d := &DiffReport{
		Results: []EngineResult{
			{Name: "core/Original", Report: mk(1.0, 0, 3)},
			{Name: "core/Single2", Report: mk(0.4, 1e-3, 17)},
		},
		MaxSpread:       0.6,
		LowEngine:       "core/Single2",
		HighEngine:      "core/Original",
		SpreadTolerance: 0.01,
	}
	err := d.Check()
	if err == nil {
		t.Fatal("Check accepted a 0.6 objective spread at tolerance 0.01")
	}
	for _, want := range []string{"core/Single2", "core/Original", "sample 17", "disagree"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic %q missing %q", err.Error(), want)
		}
	}

	// Per-engine oracle failures surface before the spread comparison.
	d.Results[0].Report.MaxKKTViolation = 1
	d.Results[0].Report.Worst = WorstSample{Index: 9, Set: "I1", Violation: 1}
	err = d.Check()
	if err == nil || !strings.Contains(err.Error(), "core/Original") || !strings.Contains(err.Error(), "sample 9") {
		t.Errorf("per-engine failure should name engine and sample, got %v", err)
	}
}
