package oracle

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/sparse"
)

// Linear verification: the primal/linear solvers (internal/linear) never
// form a kernel matrix, so the kernel oracle's SV-recovery path does not
// apply to them. This file verifies a (w, alpha) pair directly against the
// linear QP of the variant's loss, with the same philosophy as the kernel
// checks: recompute everything from the training data, trust nothing the
// solver reports.
//
// Hinge (L1, the DCD variant):
//
//	P(w) = 1/2 ||w||^2 + C sum_i max(0, 1 - y_i(w'x_i - beta))
//	D(a) = sum_i a_i - 1/2 ||w(a)||^2,  0 <= a_i <= C
//
// with w(a) = sum_i a_i y_i x_i. Writing G_i = y_i(w'x_i - beta) - 1, the
// gap decomposes per sample as a_i*max(G_i,0) + (C-a_i)*max(-G_i,0), each
// term at most C times the sample's projected-gradient violation — so an
// eps-terminated DCD run has gap <= eps*C*n, which is LinearGapTolerance.
//
// Squared hinge (L2, the MISO variant):
//
//	P(w) = 1/2 ||w||^2 + C/2 sum_i max(0, 1 - y_i(w'x_i - beta))^2
//	D(a) = sum_i a_i - 1/2 ||w(a)||^2 - 1/(2C) sum_i a_i^2,  a_i >= 0
//
// where the gap equals sum_i r_i^2/(2C) for the per-sample KKT residual
// r_i = a_i - C*max(0, 1 - y_i(w'x_i - beta)); a gap within tolerance
// therefore bounds every residual by sqrt(2C * gap).

// LinearLoss selects the loss the linear QP is verified under.
type LinearLoss int

const (
	// HingeLoss is the L1 hinge (the DCD variant's problem).
	HingeLoss LinearLoss = iota
	// SquaredHingeLoss is the L2 squared hinge (the MISO variant's problem).
	SquaredHingeLoss
)

// String names the loss for reports.
func (l LinearLoss) String() string {
	switch l {
	case HingeLoss:
		return "hinge"
	case SquaredHingeLoss:
		return "squared-hinge"
	default:
		return fmt.Sprintf("LinearLoss(%d)", int(l))
	}
}

// LinearProblem is the linear QP a primal solution is verified against.
type LinearProblem struct {
	X    *sparse.Matrix
	Y    []float64 // labels in {+1, -1}
	C    float64
	Eps  float64 // solver tolerance the checks are calibrated to; 0 = 1e-3
	Loss LinearLoss
}

// LinearGapTolerance bounds the duality gap of an eps-approximate linear
// solution: each of the n samples contributes at most C*eps.
func LinearGapTolerance(n int, c, eps float64) float64 {
	return eps*c*float64(n) + 1e-6
}

// LinearReport is the outcome of one linear verification.
type LinearReport struct {
	N    int
	NNZW int // nonzero weights of the verified hyperplane

	Primal, Dual float64
	DualityGap   float64
	RelativeGap  float64

	// MaxKKTViolation is max_i of the per-sample optimality residual: the
	// projected-gradient violation for hinge, |a_i - C*xi_i| for squared
	// hinge. Worst carries its context.
	MaxKKTViolation  float64
	MeanKKTViolation float64
	Worst            WorstSample

	// BoxViolation is the max distance of alpha outside its feasible set
	// ([0, C] for hinge, [0, inf) for squared hinge).
	BoxViolation float64
	// WResidual is ||w - sum_i a_i y_i x_i||_inf: the shipped hyperplane
	// must be the one the dual point induces.
	WResidual float64

	Loss LinearLoss
	Eps  float64
	C    float64
}

// String renders the report as an aligned block for CLI output.
func (r *LinearReport) String() string {
	status := "OK"
	if err := r.Check(); err != nil {
		status = "FAIL"
	}
	return fmt.Sprintf(
		"linear oracle report (%s): loss=%s n=%d nnz(w)=%d\n"+
			"  dual objective    %.6f\n"+
			"  primal objective  %.6f\n"+
			"  duality gap       %.3e (relative %.3e, tolerance %.3e)\n"+
			"  max KKT residual  %.3e (tolerance %.3e) at %s\n"+
			"  mean KKT residual %.3e\n"+
			"  box violation     %.3e\n"+
			"  w residual        %.3e",
		status, r.Loss, r.N, r.NNZW,
		r.Dual, r.Primal,
		r.DualityGap, r.RelativeGap, LinearGapTolerance(r.N, r.C, r.Eps),
		r.MaxKKTViolation, r.kktTolerance(), r.Worst,
		r.MeanKKTViolation,
		r.BoxViolation,
		r.WResidual)
}

// kktTolerance is the per-sample residual bound implied by the gap
// tolerance: 2*eps for hinge (the termination band, as in the kernel
// oracle); sqrt(2C * gap tolerance) for squared hinge, where the gap is a
// sum of r^2/(2C) terms.
func (r *LinearReport) kktTolerance() float64 {
	if r.Loss == SquaredHingeLoss {
		return math.Sqrt(2*r.C*LinearGapTolerance(r.N, r.C, r.Eps)) + 1e-9
	}
	return 2*r.Eps + 1e-9
}

// Check returns nil when the verified point is an eps-approximate optimum
// of the linear QP: dual-feasible, hyperplane consistent with the dual
// point, per-sample residuals inside the band, and duality gap within
// LinearGapTolerance.
func (r *LinearReport) Check() error {
	if r.BoxViolation > 1e-9*(1+r.C) {
		return fmt.Errorf("oracle: linear dual point outside its feasible set by %.3e (C=%g)", r.BoxViolation, r.C)
	}
	if r.WResidual > 1e-6 {
		return fmt.Errorf("oracle: hyperplane inconsistent with the dual point: ||w - sum alpha*y*x||_inf = %.3e", r.WResidual)
	}
	if tol := r.kktTolerance(); r.MaxKKTViolation > tol {
		return fmt.Errorf("oracle: max linear KKT residual %.3e exceeds tolerance %.3e: %s",
			r.MaxKKTViolation, tol, r.Worst)
	}
	if r.DualityGap < -1e-6*(1+math.Abs(r.Dual)) {
		return fmt.Errorf("oracle: negative duality gap %.3e (primal %.6f < dual %.6f): objectives are inconsistent",
			r.DualityGap, r.Primal, r.Dual)
	}
	if tol := LinearGapTolerance(r.N, r.C, r.Eps); r.DualityGap > tol {
		return fmt.Errorf("oracle: linear duality gap %.3e exceeds tolerance %.3e (worst residual %s)",
			r.DualityGap, tol, r.Worst)
	}
	return nil
}

func (p LinearProblem) withDefaults() LinearProblem {
	if p.Eps <= 0 {
		p.Eps = 1e-3
	}
	return p
}

func (p LinearProblem) validate() error {
	if p.X == nil {
		return fmt.Errorf("oracle: nil training matrix")
	}
	if p.X.Rows() != len(p.Y) {
		return fmt.Errorf("oracle: %d rows but %d labels", p.X.Rows(), len(p.Y))
	}
	for i, v := range p.Y {
		if v != 1 && v != -1 {
			return fmt.Errorf("oracle: label %d is %v, want +1 or -1", i, v)
		}
	}
	if p.C <= 0 {
		return fmt.Errorf("oracle: C must be positive, got %v", p.C)
	}
	if p.Loss != HingeLoss && p.Loss != SquaredHingeLoss {
		return fmt.Errorf("oracle: unknown linear loss %d", int(p.Loss))
	}
	return nil
}

// VerifyLinear checks a hyperplane and its dual point against the linear
// QP. Everything is recomputed from the training data: the margins, both
// objectives, the per-sample residuals, and the hyperplane sum alpha*y*x
// the dual point induces.
func (p LinearProblem) VerifyLinear(w []float64, beta float64, alpha []float64) (*LinearReport, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := p.X.Rows()
	if len(alpha) != n {
		return nil, fmt.Errorf("oracle: %d alphas for %d samples", len(alpha), n)
	}
	if len(w) == 0 {
		return nil, fmt.Errorf("oracle: empty hyperplane")
	}
	for j, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("oracle: w[%d] is %v", j, v)
		}
	}
	for i, a := range alpha {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return nil, fmt.Errorf("oracle: alpha[%d] is %v", i, a)
		}
	}

	r := &LinearReport{N: n, Loss: p.Loss, Eps: p.Eps, C: p.C}
	for _, v := range w {
		if v != 0 {
			r.NNZW++
		}
	}

	// The hyperplane the dual point induces, accumulated in row order (the
	// same order the solvers rebuild their shipped w in, so agreement is
	// exact up to shared floating-point rounding).
	wa := make([]float64, len(w))
	for i, a := range alpha {
		if a != 0 {
			sparse.AddScaledTo(p.X.RowView(i), wa, a*p.Y[i])
		}
	}
	var wScale float64
	for j := range w {
		if d := math.Abs(w[j] - wa[j]); d > r.WResidual {
			r.WResidual = d
		}
		if a := math.Abs(w[j]); a > wScale {
			wScale = a
		}
	}

	var wNorm2 float64
	for _, v := range w {
		wNorm2 += v * v
	}
	var lossSum, aSum, aSq, violSum float64
	for i := 0; i < n; i++ {
		a, y := alpha[i], p.Y[i]
		f := sparse.GatherDense(p.X.RowView(i), w) - beta
		margin := 1 - y*f // positive = inside the margin
		xi := math.Max(0, margin)
		aSum += a
		aSq += a * a

		var viol, boxExcess float64
		var set string
		if p.Loss == SquaredHingeLoss {
			lossSum += xi * xi
			boxExcess = -a // only a >= 0 is required
			viol = math.Abs(a - p.C*xi)
			set = "a>=0"
		} else {
			lossSum += xi
			boxExcess = math.Max(-a, a-p.C)
			// Projected-gradient violation of G = y*f - 1 = -margin.
			g := -margin
			switch {
			case a <= 1e-12*p.C:
				viol = math.Max(0, -g)
				set = "alpha=0"
			case a >= p.C*(1-1e-12):
				viol = math.Max(0, g)
				set = "alpha=C"
			default:
				viol = math.Abs(g)
				set = "free"
			}
		}
		if boxExcess > r.BoxViolation {
			r.BoxViolation = boxExcess
		}
		violSum += viol
		if viol > r.MaxKKTViolation {
			r.MaxKKTViolation = viol
			r.Worst = WorstSample{Index: i, Y: y, Alpha: a, Gamma: -margin,
				Set: set, Violation: viol}
		}
	}
	r.MeanKKTViolation = violSum / float64(n)

	switch p.Loss {
	case SquaredHingeLoss:
		r.Primal = 0.5*wNorm2 + 0.5*p.C*lossSum
		r.Dual = aSum - 0.5*wNorm2 - aSq/(2*p.C)
	default:
		r.Primal = 0.5*wNorm2 + p.C*lossSum
		r.Dual = aSum - 0.5*wNorm2
	}
	r.DualityGap = r.Primal - r.Dual
	r.RelativeGap = r.DualityGap / math.Max(1, math.Max(math.Abs(r.Primal), math.Abs(r.Dual)))
	return r, nil
}

// VerifyLinearModel verifies a dense-hyperplane model (as trained by
// internal/linear) together with the dual point its trainer reported.
func (p LinearProblem) VerifyLinearModel(m *model.Model, alpha []float64) (*LinearReport, error) {
	if m == nil || !m.IsLinear() {
		return nil, fmt.Errorf("oracle: model carries no dense hyperplane")
	}
	return p.VerifyLinear(m.W, m.Beta, alpha)
}
