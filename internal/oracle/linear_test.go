package oracle

import (
	"strings"
	"testing"

	"repro/internal/sparse"
)

// Two antipodal unit points along the first axis: x1 = (1,0) with y=+1 and
// x2 = (-1,0) with y=-1. Both QPs have closed-form optima here, so the
// verifier can be checked against exact hand-derived solutions.
func antipodal() (*sparse.Matrix, []float64) {
	return sparse.FromDense([][]float64{{1, 0}, {-1, 0}}), []float64{1, -1}
}

// Hinge: w = a1*x1 - a2*x2 = (a1+a2, 0); the dual s - s^2/2 over s = a1+a2
// peaks at s = 1, so w = (1, 0), both margins exactly 1, gap 0.
func TestVerifyLinearHingeExact(t *testing.T) {
	x, y := antipodal()
	p := LinearProblem{X: x, Y: y, C: 10, Eps: 1e-3, Loss: HingeLoss}
	rep, err := p.VerifyLinear([]float64{1, 0}, 0, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("exact hinge optimum rejected: %v\n%s", err, rep)
	}
	if rep.DualityGap > 1e-12 || rep.DualityGap < -1e-12 {
		t.Fatalf("gap %v at the exact optimum", rep.DualityGap)
	}
	if rep.MaxKKTViolation > 1e-12 {
		t.Fatalf("KKT residual %v at the exact optimum", rep.MaxKKTViolation)
	}
	if !strings.Contains(rep.String(), "OK") {
		t.Fatalf("report: %s", rep)
	}
}

// Squared hinge: minimizing 1/2 w^2 + C(1-w)^2 gives w = 2C/(1+2C) and
// alpha_i = C(1-w); with C = 10 that is w = 20/21, alpha = 10/21.
func TestVerifyLinearSquaredHingeExact(t *testing.T) {
	x, y := antipodal()
	p := LinearProblem{X: x, Y: y, C: 10, Eps: 1e-3, Loss: SquaredHingeLoss}
	w, a := 20.0/21.0, 10.0/21.0
	rep, err := p.VerifyLinear([]float64{w, 0}, 0, []float64{a, a})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("exact squared-hinge optimum rejected: %v\n%s", err, rep)
	}
	if rep.DualityGap > 1e-12 {
		t.Fatalf("gap %v at the exact optimum", rep.DualityGap)
	}
}

func TestVerifyLinearErrors(t *testing.T) {
	x, y := antipodal()
	ok := LinearProblem{X: x, Y: y, C: 10, Loss: HingeLoss}
	w, a := []float64{1, 0}, []float64{0.5, 0.5}
	cases := []struct {
		name  string
		p     LinearProblem
		w, a  []float64
		beta  float64
		wants string
	}{
		{"nil matrix", LinearProblem{Y: y, C: 10}, w, a, 0, "nil training matrix"},
		{"label count", LinearProblem{X: x, Y: y[:1], C: 10}, w, a, 0, "labels"},
		{"bad label", LinearProblem{X: x, Y: []float64{1, 3}, C: 10}, w, a, 0, "want +1 or -1"},
		{"bad C", LinearProblem{X: x, Y: y}, w, a, 0, "C must be positive"},
		{"bad loss", LinearProblem{X: x, Y: y, C: 10, Loss: LinearLoss(7)}, w, a, 0, "unknown linear loss"},
		{"alpha count", ok, w, a[:1], 0, "alphas for"},
		{"empty w", ok, nil, a, 0, "empty hyperplane"},
		{"nan w", ok, []float64{1, nan()}, a, 0, "w[1]"},
		{"nan alpha", ok, w, []float64{0.5, nan()}, 0, "alpha[1]"},
	}
	for _, tc := range cases {
		if _, err := tc.p.VerifyLinear(tc.w, tc.beta, tc.a); err == nil || !strings.Contains(err.Error(), tc.wants) {
			t.Fatalf("%s: error = %v, want %q", tc.name, err, tc.wants)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestVerifyLinearModelRequiresW(t *testing.T) {
	x, y := antipodal()
	p := LinearProblem{X: x, Y: y, C: 10}
	if _, err := p.VerifyLinearModel(nil, nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestLinearLossString(t *testing.T) {
	if HingeLoss.String() != "hinge" || SquaredHingeLoss.String() != "squared-hinge" {
		t.Fatalf("%v / %v", HingeLoss, SquaredHingeLoss)
	}
	if LinearLoss(7).String() == "" {
		t.Fatal("unknown loss must still render")
	}
}

func TestLinearGapTolerance(t *testing.T) {
	if got := LinearGapTolerance(1000, 10, 1e-3); got < 10 || got > 10.01 {
		t.Fatalf("tolerance = %v, want ~10", got)
	}
}
