package oracle

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/solver"
	"repro/internal/sparse"

	// RunDifferential iterates the solver registry; importing the kernel
	// classification engines here keeps the harness self-sufficient — a
	// caller gets the full sweep without blank-importing engines itself.
	// (The aggregator package repro/internal/engines cannot be used: it
	// pulls in tasks, which imports this package.)
	_ "repro/internal/dcsvm"
	_ "repro/internal/smo"
)

// DiffOptions configures a differential run: which hyper-parameters every
// engine is handed, and the per-engine knobs that must not change the
// optimum they converge to.
type DiffOptions struct {
	Kernel kernel.Params
	C      float64
	Eps    float64 // 0 means 1e-3

	// Heuristics are the core-engine shrinking strategies to cover; nil
	// means all of Table II (the twelve shrinking rows plus the no-shrink
	// Original baseline).
	Heuristics []core.Heuristic
	// P is the rank count for core runs; 0 means 1. Iterate sequences are
	// p-independent by construction, so parity must hold at any p.
	P int
	// CacheBytes is the smo kernel-row cache budget; 0 means 16 MiB.
	CacheBytes int64
	// DCClusters is the dcsvm cluster count; 0 means 4.
	DCClusters int
	// Seed feeds dcsvm clustering; the whole run is deterministic in it.
	Seed int64
	// Workers bounds oracle verification goroutines; 0 means GOMAXPROCS.
	Workers int
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Eps <= 0 {
		o.Eps = 1e-3
	}
	if o.Heuristics == nil {
		o.Heuristics = core.Table2()
	}
	if o.P <= 0 {
		o.P = 1
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 16 << 20
	}
	if o.DCClusters <= 0 {
		o.DCClusters = 4
	}
	return o
}

// EngineResult is one engine's trained model with its oracle report.
type EngineResult struct {
	Name   string
	Model  *model.Model
	Report *Report
}

// DiffReport is the outcome of a differential run over every engine.
type DiffReport struct {
	Results []EngineResult

	// MaxSpread is the largest pairwise dual-objective disagreement;
	// LowEngine/HighEngine name the pair that attains it.
	MaxSpread  float64
	LowEngine  string
	HighEngine string
	// SpreadTolerance is the engine-independent bound two eps-approximate
	// solutions may differ by (each is within GapTolerance of the optimum).
	SpreadTolerance float64
}

// Check returns nil when every engine individually passes its oracle check
// and all pairwise dual objectives agree within tolerance. On failure the
// error names the disagreeing engines and the worst-violating sample with
// full context, so the offending heuristic and sample are identifiable
// from the message alone.
func (d *DiffReport) Check() error {
	for _, r := range d.Results {
		if err := r.Report.Check(); err != nil {
			return fmt.Errorf("engine %s: %w", r.Name, err)
		}
	}
	if d.MaxSpread > d.SpreadTolerance {
		var lowRep *Report
		for _, r := range d.Results {
			if r.Name == d.LowEngine {
				lowRep = r.Report
			}
		}
		detail := ""
		if lowRep != nil {
			detail = fmt.Sprintf("; worst violator of %s: %s", d.LowEngine, lowRep.Worst)
		}
		return fmt.Errorf("oracle: dual objectives disagree by %.6g (tolerance %.6g): %s=%.6f vs %s=%.6f%s",
			d.MaxSpread, d.SpreadTolerance,
			d.LowEngine, lowObjective(d), d.HighEngine, highObjective(d), detail)
	}
	return nil
}

func lowObjective(d *DiffReport) float64 {
	for _, r := range d.Results {
		if r.Name == d.LowEngine {
			return r.Report.DualObjective
		}
	}
	return math.NaN()
}

func highObjective(d *DiffReport) float64 {
	for _, r := range d.Results {
		if r.Name == d.HighEngine {
			return r.Report.DualObjective
		}
	}
	return math.NaN()
}

// RunDifferential trains every registered classification engine on the
// same problem and verifies each result with the oracle. The run list is
// the solver registry, not a hard-coded engine enumeration; per engine the
// coverage follows its declared capabilities:
//
//   - heuristic-capable engines (the distributed core solver) run under
//     every requested Table II heuristic (the no-shrink Original is the
//     reference the paper's exactness claim compares against);
//   - composite engines (divide-and-conquer) run once with the full-problem
//     polish, which is what makes them comparable at eps-exactness;
//   - every other kernel classifier (the smo baseline, the second-order
//     smo2) runs cold-started and then — when warm-start capable —
//     warm-started from its own recovered solution (the warm path must not
//     move the optimum).
//
// Linear-only and task-only engines are skipped: they do not solve this
// kernel classification QP. Training errors abort the run; verification
// failures do not — they are recorded in the reports so Check can present
// every engine's state.
func RunDifferential(x *sparse.Matrix, y []float64, opts DiffOptions) (*DiffReport, error) {
	opts = opts.withDefaults()
	prob := Problem{X: x, Y: y, Kernel: opts.Kernel, C: opts.C, Eps: opts.Eps, Workers: opts.Workers}
	sprob := solver.Problem{X: x, Y: y, Kernel: opts.Kernel}

	d := &DiffReport{SpreadTolerance: GapTolerance(x.Rows(), opts.C, opts.Eps)}
	add := func(name string, m *model.Model) error {
		rep, err := prob.VerifyModel(m)
		if err != nil {
			return fmt.Errorf("oracle: engine %s: %w", name, err)
		}
		d.Results = append(d.Results, EngineResult{Name: name, Model: m, Report: rep})
		return nil
	}

	for _, eng := range solver.Engines() {
		caps := eng.Capabilities()
		if !caps.Has(solver.CapClassify | solver.CapKernels) {
			continue
		}
		switch {
		case caps.Has(solver.CapComposite):
			res, err := eng.Train(context.Background(), sprob, solver.Options{
				C: opts.C, Eps: opts.Eps, Seed: opts.Seed,
				DC: solver.DCOptions{Clusters: opts.DCClusters, SubSolver: "smo", PolishFull: true},
			})
			if err != nil {
				return nil, fmt.Errorf("oracle: %s: %w", eng.Name(), err)
			}
			if err := add(eng.Name(), res.Model); err != nil {
				return nil, err
			}

		case caps.Has(solver.CapHeuristics):
			for _, h := range opts.Heuristics {
				res, err := eng.Train(context.Background(), sprob, solver.Options{
					C: opts.C, Eps: opts.Eps, P: opts.P, Heuristic: h.Name,
				})
				if err != nil {
					return nil, fmt.Errorf("oracle: %s/%s: %w", eng.Name(), h.Name, err)
				}
				if err := add(eng.Name()+"/"+h.Name, res.Model); err != nil {
					return nil, err
				}
			}

		default:
			cold, err := eng.Train(context.Background(), sprob, solver.Options{
				C: opts.C, Eps: opts.Eps, CacheBytes: opts.CacheBytes,
			})
			if err != nil {
				return nil, fmt.Errorf("oracle: %s-cold: %w", eng.Name(), err)
			}
			if err := add(eng.Name()+"-cold", cold.Model); err != nil {
				return nil, err
			}
			if !caps.Has(solver.CapWarmStart) {
				continue
			}
			warmAlpha, err := RecoverAlpha(x, y, cold.Model)
			if err != nil {
				return nil, fmt.Errorf("oracle: %s-warm start: %w", eng.Name(), err)
			}
			warm, err := eng.Train(context.Background(), sprob, solver.Options{
				C: opts.C, Eps: opts.Eps, CacheBytes: opts.CacheBytes,
				InitialAlpha: warmAlpha,
			})
			if err != nil {
				return nil, fmt.Errorf("oracle: %s-warm: %w", eng.Name(), err)
			}
			if err := add(eng.Name()+"-warm", warm.Model); err != nil {
				return nil, err
			}
		}
	}

	low, high := math.Inf(1), math.Inf(-1)
	for _, r := range d.Results {
		obj := r.Report.DualObjective
		if obj < low {
			low, d.LowEngine = obj, r.Name
		}
		if obj > high {
			high, d.HighEngine = obj, r.Name
		}
	}
	d.MaxSpread = high - low
	return d, nil
}
