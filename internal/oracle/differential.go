package oracle

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dcsvm"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/smo"
	"repro/internal/sparse"
)

// DiffOptions configures a differential run: which hyper-parameters every
// engine is handed, and the per-engine knobs that must not change the
// optimum they converge to.
type DiffOptions struct {
	Kernel kernel.Params
	C      float64
	Eps    float64 // 0 means 1e-3

	// Heuristics are the core-engine shrinking strategies to cover; nil
	// means all of Table II (the twelve shrinking rows plus the no-shrink
	// Original baseline).
	Heuristics []core.Heuristic
	// P is the rank count for core runs; 0 means 1. Iterate sequences are
	// p-independent by construction, so parity must hold at any p.
	P int
	// CacheBytes is the smo kernel-row cache budget; 0 means 16 MiB.
	CacheBytes int64
	// DCClusters is the dcsvm cluster count; 0 means 4.
	DCClusters int
	// Seed feeds dcsvm clustering; the whole run is deterministic in it.
	Seed int64
	// Workers bounds oracle verification goroutines; 0 means GOMAXPROCS.
	Workers int
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Eps <= 0 {
		o.Eps = 1e-3
	}
	if o.Heuristics == nil {
		o.Heuristics = core.Table2()
	}
	if o.P <= 0 {
		o.P = 1
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 16 << 20
	}
	if o.DCClusters <= 0 {
		o.DCClusters = 4
	}
	return o
}

// EngineResult is one engine's trained model with its oracle report.
type EngineResult struct {
	Name   string
	Model  *model.Model
	Report *Report
}

// DiffReport is the outcome of a differential run over every engine.
type DiffReport struct {
	Results []EngineResult

	// MaxSpread is the largest pairwise dual-objective disagreement;
	// LowEngine/HighEngine name the pair that attains it.
	MaxSpread  float64
	LowEngine  string
	HighEngine string
	// SpreadTolerance is the engine-independent bound two eps-approximate
	// solutions may differ by (each is within GapTolerance of the optimum).
	SpreadTolerance float64
}

// Check returns nil when every engine individually passes its oracle check
// and all pairwise dual objectives agree within tolerance. On failure the
// error names the disagreeing engines and the worst-violating sample with
// full context, so the offending heuristic and sample are identifiable
// from the message alone.
func (d *DiffReport) Check() error {
	for _, r := range d.Results {
		if err := r.Report.Check(); err != nil {
			return fmt.Errorf("engine %s: %w", r.Name, err)
		}
	}
	if d.MaxSpread > d.SpreadTolerance {
		var lowRep *Report
		for _, r := range d.Results {
			if r.Name == d.LowEngine {
				lowRep = r.Report
			}
		}
		detail := ""
		if lowRep != nil {
			detail = fmt.Sprintf("; worst violator of %s: %s", d.LowEngine, lowRep.Worst)
		}
		return fmt.Errorf("oracle: dual objectives disagree by %.6g (tolerance %.6g): %s=%.6f vs %s=%.6f%s",
			d.MaxSpread, d.SpreadTolerance,
			d.LowEngine, lowObjective(d), d.HighEngine, highObjective(d), detail)
	}
	return nil
}

func lowObjective(d *DiffReport) float64 {
	for _, r := range d.Results {
		if r.Name == d.LowEngine {
			return r.Report.DualObjective
		}
	}
	return math.NaN()
}

func highObjective(d *DiffReport) float64 {
	for _, r := range d.Results {
		if r.Name == d.HighEngine {
			return r.Report.DualObjective
		}
	}
	return math.NaN()
}

// RunDifferential trains every engine on the same problem and verifies
// each result with the oracle:
//
//   - the distributed core solver under every requested Table II heuristic
//     (the no-shrink Original is the reference the paper's exactness claim
//     compares against);
//   - the libsvm-enhanced smo baseline, cold-started and then warm-started
//     from its own recovered solution (the warm path must not move the
//     optimum);
//   - divide-and-conquer training with the polish run to convergence.
//
// Training errors abort the run; verification failures do not — they are
// recorded in the reports so Check can present every engine's state.
func RunDifferential(x *sparse.Matrix, y []float64, opts DiffOptions) (*DiffReport, error) {
	opts = opts.withDefaults()
	prob := Problem{X: x, Y: y, Kernel: opts.Kernel, C: opts.C, Eps: opts.Eps, Workers: opts.Workers}

	d := &DiffReport{SpreadTolerance: GapTolerance(x.Rows(), opts.C, opts.Eps)}
	add := func(name string, m *model.Model) error {
		rep, err := prob.VerifyModel(m)
		if err != nil {
			return fmt.Errorf("oracle: engine %s: %w", name, err)
		}
		d.Results = append(d.Results, EngineResult{Name: name, Model: m, Report: rep})
		return nil
	}

	for _, h := range opts.Heuristics {
		m, _, err := core.TrainParallel(x, y, opts.P, core.Config{
			Kernel: opts.Kernel, C: opts.C, Eps: opts.Eps, Heuristic: h,
		})
		if err != nil {
			return nil, fmt.Errorf("oracle: core/%s: %w", h.Name, err)
		}
		if err := add("core/"+h.Name, m); err != nil {
			return nil, err
		}
	}

	cold, err := smo.Train(x, y, smo.Config{
		Kernel: opts.Kernel, C: opts.C, Eps: opts.Eps,
		CacheBytes: opts.CacheBytes, Shrinking: true,
	})
	if err != nil {
		return nil, fmt.Errorf("oracle: smo-cold: %w", err)
	}
	if err := add("smo-cold", cold.Model); err != nil {
		return nil, err
	}

	warmAlpha, err := RecoverAlpha(x, y, cold.Model)
	if err != nil {
		return nil, fmt.Errorf("oracle: smo-warm start: %w", err)
	}
	warm, err := smo.Train(x, y, smo.Config{
		Kernel: opts.Kernel, C: opts.C, Eps: opts.Eps,
		CacheBytes: opts.CacheBytes, Shrinking: true,
		InitialAlpha: warmAlpha,
	})
	if err != nil {
		return nil, fmt.Errorf("oracle: smo-warm: %w", err)
	}
	if err := add("smo-warm", warm.Model); err != nil {
		return nil, err
	}

	// PolishFull is what makes dcsvm comparable at eps-exactness: the
	// default union-only polish leaves out-of-union samples unchecked, so
	// only the full-problem refinement converges to the shared optimum.
	dcm, _, err := dcsvm.Train(x, y, dcsvm.Config{
		Kernel: opts.Kernel, C: opts.C, Eps: opts.Eps,
		Clusters: opts.DCClusters, Seed: opts.Seed, SubSolver: "smo",
		PolishFull: true,
	})
	if err != nil {
		return nil, fmt.Errorf("oracle: dcsvm: %w", err)
	}
	if err := add("dcsvm", dcm); err != nil {
		return nil, err
	}

	low, high := math.Inf(1), math.Inf(-1)
	for _, r := range d.Results {
		obj := r.Report.DualObjective
		if obj < low {
			low, d.LowEngine = obj, r.Name
		}
		if obj > high {
			high, d.HighEngine = obj, r.Name
		}
	}
	d.MaxSpread = high - low
	return d, nil
}
