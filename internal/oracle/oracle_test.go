package oracle

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/smo"
	"repro/internal/sparse"
)

// twoSampleProblem is the analytically solvable QP used by the exactness
// tests: x1 = (1), y1 = +1 and x2 = (-1), y2 = -1 under the linear kernel.
// The dual forces alpha1 = alpha2 = a and W(a) = 2a - 2a^2, so the optimum
// is a = 1/2 with W = 1/2, beta = 0, and zero duality gap.
func twoSampleProblem() Problem {
	return Problem{
		X:      sparse.FromDense([][]float64{{1}, {-1}}),
		Y:      []float64{1, -1},
		Kernel: kernel.Params{Type: kernel.Linear},
		C:      10,
		Eps:    1e-3,
	}
}

func TestVerifyAlphaExactOptimum(t *testing.T) {
	p := twoSampleProblem()
	rep, err := p.VerifyAlpha([]float64{0.5, 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.DualObjective, 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("dual objective = %v, want %v", got, want)
	}
	if got, want := rep.PrimalObjective, 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("primal objective = %v, want %v", got, want)
	}
	if rep.DualityGap > 1e-12 || rep.DualityGap < -1e-12 {
		t.Errorf("duality gap = %v, want 0", rep.DualityGap)
	}
	if rep.MaxKKTViolation > 1e-12 {
		t.Errorf("max KKT violation = %v, want 0", rep.MaxKKTViolation)
	}
	if rep.NumSV != 2 || rep.N != 2 {
		t.Errorf("N=%d NumSV=%d, want 2/2", rep.N, rep.NumSV)
	}
	if err := rep.Check(); err != nil {
		t.Errorf("Check at the exact optimum: %v", err)
	}
	if !strings.Contains(rep.String(), "OK") {
		t.Errorf("String should report OK:\n%s", rep.String())
	}
}

func TestVerifyAlphaDetectsEqualityViolation(t *testing.T) {
	p := twoSampleProblem()
	rep, err := p.VerifyAlpha([]float64{0.5, 0.3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.EqualityResidual; math.Abs(got-0.2) > 1e-12 {
		t.Errorf("equality residual = %v, want 0.2", got)
	}
	if err := rep.Check(); err == nil || !strings.Contains(err.Error(), "sum(alpha*y)") {
		t.Errorf("Check should flag the equality constraint, got %v", err)
	}
}

func TestVerifyAlphaDetectsBoxViolation(t *testing.T) {
	p := twoSampleProblem()
	rep, err := p.VerifyAlpha([]float64{11, 11}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.BoxViolation; math.Abs(got-1) > 1e-12 {
		t.Errorf("box violation = %v, want 1", got)
	}
	if err := rep.Check(); err == nil || !strings.Contains(err.Error(), "box") {
		t.Errorf("Check should flag the box constraint, got %v", err)
	}
}

func TestVerifyAlphaDetectsKKTViolationWithContext(t *testing.T) {
	p := twoSampleProblem()
	// A wrong threshold turns both free samples into violators.
	rep, err := p.VerifyAlpha([]float64{0.5, 0.5}, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.MaxKKTViolation; math.Abs(got-0.75) > 1e-12 {
		t.Errorf("max KKT violation = %v, want 0.75", got)
	}
	err = rep.Check()
	if err == nil {
		t.Fatal("Check should fail for a shifted threshold")
	}
	// The diagnostic must carry full context on the worst violator.
	for _, want := range []string{"sample", "alpha", "I0", "violation"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic %q missing %q", err.Error(), want)
		}
	}
}

func TestVerifyAlphaRejectsBadInput(t *testing.T) {
	p := twoSampleProblem()
	if _, err := p.VerifyAlpha([]float64{0.5}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := p.VerifyAlpha([]float64{math.NaN(), 0.5}, 0); err == nil {
		t.Error("NaN alpha accepted")
	}
	bad := p
	bad.C = 0
	if _, err := bad.VerifyAlpha([]float64{0.5, 0.5}, 0); err == nil {
		t.Error("C = 0 accepted")
	}
}

func TestRecoverAlphaRoundTrip(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.1)
	kp := kernel.FromSigma2(ds.Sigma2)
	res, err := smo.Train(ds.X, ds.Y, smo.Config{Kernel: kp, C: ds.C, Eps: 1e-3, Shrinking: true})
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := RecoverAlpha(ds.X, ds.Y, res.Model)
	if err != nil {
		t.Fatal(err)
	}
	nsv := 0
	var mass float64
	for _, a := range alpha {
		if a > 0 {
			nsv++
			mass += a
		}
	}
	if nsv != res.Model.NumSV() {
		t.Errorf("recovered %d nonzero alphas for %d support vectors", nsv, res.Model.NumSV())
	}
	var coefMass float64
	for _, c := range res.Model.Coef {
		coefMass += math.Abs(c)
	}
	if math.Abs(mass-coefMass) > 1e-9*(1+coefMass) {
		t.Errorf("recovered alpha mass %v != model coefficient mass %v", mass, coefMass)
	}

	prob := Problem{X: ds.X, Y: ds.Y, Kernel: kp, C: ds.C, Eps: 1e-3}
	rep, err := prob.VerifyModel(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Errorf("converged smo model fails the oracle: %v", err)
	}
}

func TestRecoverAlphaRejectsForeignModel(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.1)
	foreign := &model.Model{
		Kernel: kernel.FromSigma2(ds.Sigma2),
		C:      ds.C,
		SV:     sparse.FromDense([][]float64{{123.25, -7.5}}),
		Coef:   []float64{1},
		Beta:   0,
	}
	if _, err := RecoverAlpha(ds.X, ds.Y, foreign); err == nil {
		t.Error("support vector absent from the training set should be rejected")
	} else if !strings.Contains(err.Error(), "inconsistent") {
		t.Errorf("want a consistency diagnostic, got %v", err)
	}
}

func TestVerifyModelDetectsCorruptedCoefficient(t *testing.T) {
	ds := dataset.MustGenerate("blobs", 0.1)
	kp := kernel.FromSigma2(ds.Sigma2)
	res, err := smo.Train(ds.X, ds.Y, smo.Config{Kernel: kp, C: ds.C, Eps: 1e-3, Shrinking: true})
	if err != nil {
		t.Fatal(err)
	}
	// Halving one coefficient silently breaks optimality without touching
	// the SV set — exactly the corruption accuracy checks cannot see.
	res.Model.Coef[0] /= 2
	prob := Problem{X: ds.X, Y: ds.Y, Kernel: kp, C: ds.C, Eps: 1e-3}
	rep, err := prob.VerifyModel(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err == nil {
		t.Error("oracle accepted a model with a corrupted coefficient")
	}
}
