package oracle

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/sparse"
)

// This file extends the oracle to the task-formulation QPs of
// internal/tasks: epsilon-SVR and the one-class SVM. Each verifier
// recomputes the kernel combination u_i = sum_j coef_j K(j, i) from scratch
// (no solver bookkeeping) and scores the point against its own KKT system,
// reusing Report/Check so CLI output and tolerance semantics stay uniform.

// SVRProblem is the epsilon-SVR QP a regression model is verified against:
//
//	min ½ sum_ij d_i d_j K_ij - sum_i z_i d_i + epsilon sum_i |d_i|
//	s.t. -C <= d_i <= C,  sum_i d_i = 0,
//
// where d_i = alpha_i - alpha*_i collapses the doubled-variable dual.
type SVRProblem struct {
	X       *sparse.Matrix
	Z       []float64 // regression targets
	Kernel  kernel.Params
	C       float64
	Epsilon float64 // tube half-width
	Eps     float64 // solver tolerance the checks are calibrated to; 0 = 1e-3
	Workers int
}

func (p SVRProblem) validate() error {
	if p.X == nil {
		return fmt.Errorf("oracle: nil training matrix")
	}
	if p.X.Rows() != len(p.Z) {
		return fmt.Errorf("oracle: %d rows but %d targets", p.X.Rows(), len(p.Z))
	}
	if p.C <= 0 {
		return fmt.Errorf("oracle: C must be positive, got %v", p.C)
	}
	if !(p.Epsilon > 0) {
		return fmt.Errorf("oracle: epsilon must be positive, got %v", p.Epsilon)
	}
	return p.Kernel.Validate()
}

// VerifyCoef checks a collapsed SVR dual point d (one signed entry per
// training row) and threshold beta. Report.N counts the dual variables of
// the doubled formulation (2n), which is what the gap tolerance scales with.
func (p SVRProblem) VerifyCoef(d []float64, beta float64) (*Report, error) {
	if p.Eps <= 0 {
		p.Eps = 1e-3
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := p.X.Rows()
	if len(d) != n {
		return nil, fmt.Errorf("oracle: %d coefficients for %d samples", len(d), n)
	}
	for i, v := range d {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("oracle: coef[%d] is %v", i, v)
		}
	}
	u := kernelCombination(p.X, p.Kernel, d, p.Workers)

	r := &Report{N: 2 * n, Beta: beta, BetaUp: beta, BetaLow: beta, Eps: p.Eps, C: p.C}
	var eq, sumViol, slackSum, wNorm2, linTerm, absMass float64
	for i := 0; i < n; i++ {
		di := d[i]
		if di != 0 {
			r.NumSV++
		}
		eq += di
		absMass += math.Abs(di)
		if excess := math.Abs(di) - p.C; excess > r.BoxViolation {
			r.BoxViolation = excess
		}
		wNorm2 += di * u[i]
		linTerm += p.Z[i] * di

		// Residual of the predictor zhat_i = u_i - beta.
		res := p.Z[i] - u[i] + beta
		var viol float64
		var set string
		switch {
		case di == 0:
			viol, set = math.Max(0, math.Abs(res)-p.Epsilon), "d=0"
		case di >= p.C:
			viol, set = math.Max(0, p.Epsilon-res), "d=C"
		case di > 0:
			viol, set = math.Abs(res-p.Epsilon), "free +"
		case di <= -p.C:
			viol, set = math.Max(0, res+p.Epsilon), "d=-C"
		default:
			viol, set = math.Abs(res+p.Epsilon), "free -"
		}
		sumViol += viol
		if viol > r.MaxKKTViolation {
			r.MaxKKTViolation = viol
			r.Worst = WorstSample{Index: i, Y: 1, Alpha: di, Gamma: res, Set: set, Violation: viol}
		}
		slackSum += math.Max(0, math.Abs(res)-p.Epsilon)
	}
	r.AlphaMass = absMass
	r.EqualityResidual = math.Abs(eq)
	r.MeanKKTViolation = sumViol / float64(n)
	r.DualObjective = -wNorm2/2 + linTerm - p.Epsilon*absMass
	r.PrimalObjective = wNorm2/2 + p.C*slackSum
	r.DualityGap = r.PrimalObjective - r.DualObjective
	r.RelativeGap = r.DualityGap / math.Max(1, math.Max(math.Abs(r.PrimalObjective), math.Abs(r.DualObjective)))
	return r, nil
}

// VerifyModel recovers the signed coefficients behind a trained SVR model
// and verifies them with the model's own threshold and tube width.
func (p SVRProblem) VerifyModel(m *model.Model) (*Report, error) {
	if m.TaskKind() != model.TaskSVR {
		return nil, fmt.Errorf("oracle: model solves %s, not %s", m.TaskKind(), model.TaskSVR)
	}
	p.Epsilon = m.Epsilon
	d, err := RecoverCoef(p.X, m)
	if err != nil {
		return nil, err
	}
	return p.VerifyCoef(d, m.Beta)
}

// OneClassProblem is the nu-parameterized one-class QP:
//
//	min ½ sum_ij alpha_i alpha_j K_ij
//	s.t. 0 <= alpha_i <= 1/(nu*n),  sum_i alpha_i = 1.
type OneClassProblem struct {
	X       *sparse.Matrix
	Kernel  kernel.Params
	Nu      float64
	Eps     float64
	Workers int
}

func (p OneClassProblem) validate() error {
	if p.X == nil {
		return fmt.Errorf("oracle: nil training matrix")
	}
	if !(p.Nu > 0) || p.Nu > 1 {
		return fmt.Errorf("oracle: nu must be in (0, 1], got %v", p.Nu)
	}
	return p.Kernel.Validate()
}

// Box returns the per-sample upper bound 1/(nu*n).
func (p OneClassProblem) Box() float64 { return 1 / (p.Nu * float64(p.X.Rows())) }

// VerifyAlpha checks a one-class dual point and offset rho.
func (p OneClassProblem) VerifyAlpha(alpha []float64, rho float64) (*Report, error) {
	if p.Eps <= 0 {
		p.Eps = 1e-3
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := p.X.Rows()
	if len(alpha) != n {
		return nil, fmt.Errorf("oracle: %d alphas for %d samples", len(alpha), n)
	}
	for i, a := range alpha {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return nil, fmt.Errorf("oracle: alpha[%d] is %v", i, a)
		}
	}
	c := p.Box()
	u := kernelCombination(p.X, p.Kernel, alpha, p.Workers)

	r := &Report{N: n, Beta: rho, BetaUp: rho, BetaLow: rho, Eps: p.Eps, C: c}
	var sum, sumViol, slackSum, wNorm2 float64
	for i := 0; i < n; i++ {
		a := alpha[i]
		if a > 0 {
			r.NumSV++
		}
		sum += a
		if excess := math.Max(-a, a-c); excess > r.BoxViolation {
			r.BoxViolation = excess
		}
		wNorm2 += a * u[i]

		var viol float64
		var set string
		switch {
		case a <= 0:
			viol, set = math.Max(0, rho-u[i]), "alpha=0"
		case a >= c:
			viol, set = math.Max(0, u[i]-rho), "alpha=1/(nu*n)"
		default:
			viol, set = math.Abs(u[i]-rho), "free"
		}
		sumViol += viol
		if viol > r.MaxKKTViolation {
			r.MaxKKTViolation = viol
			r.Worst = WorstSample{Index: i, Y: 1, Alpha: a, Gamma: u[i], Set: set, Violation: viol}
		}
		slackSum += math.Max(0, rho-u[i])
	}
	r.AlphaMass = sum
	r.EqualityResidual = math.Abs(sum - 1)
	r.MeanKKTViolation = sumViol / float64(n)
	r.DualObjective = -wNorm2 / 2
	r.PrimalObjective = wNorm2/2 - rho + c*slackSum
	r.DualityGap = r.PrimalObjective - r.DualObjective
	r.RelativeGap = r.DualityGap / math.Max(1, math.Max(math.Abs(r.PrimalObjective), math.Abs(r.DualObjective)))
	return r, nil
}

// VerifyModel recovers the alphas behind a trained one-class model and
// verifies them with the model's own rho.
func (p OneClassProblem) VerifyModel(m *model.Model) (*Report, error) {
	if m.TaskKind() != model.TaskOneClass {
		return nil, fmt.Errorf("oracle: model solves %s, not %s", m.TaskKind(), model.TaskOneClass)
	}
	p.Nu = m.Nu
	alpha, err := RecoverCoef(p.X, m)
	if err != nil {
		return nil, err
	}
	return p.VerifyAlpha(alpha, m.Beta)
}

// RecoverCoef maps a task model's support vectors back onto the training set
// by row content alone (task QPs carry the sign inside the coefficient, so
// there is no label to disambiguate by), returning the full per-sample
// coefficient vector. Identical duplicate rows are assigned greedily, which
// leaves every kernel combination — hence every oracle metric — unchanged.
func RecoverCoef(x *sparse.Matrix, m *model.Model) ([]float64, error) {
	if m == nil || m.SV == nil {
		return nil, fmt.Errorf("oracle: nil model")
	}
	if len(m.Coef) != m.SV.Rows() {
		return nil, fmt.Errorf("oracle: model has %d coefficients for %d support vectors", len(m.Coef), m.SV.Rows())
	}
	n := x.Rows()
	buckets := make(map[string][]int, n)
	for i := 0; i < n; i++ {
		k := x.RowView(i).Key()
		buckets[k] = append(buckets[k], i)
	}
	coef := make([]float64, n)
	for s := 0; s < m.SV.Rows(); s++ {
		if m.Coef[s] == 0 {
			return nil, fmt.Errorf("oracle: support vector %d has zero coefficient", s)
		}
		k := m.SV.RowView(s).Key()
		idx := buckets[k]
		if len(idx) == 0 {
			return nil, fmt.Errorf("oracle: support vector %d (coef %.6g) matches no unused training row — model and training set are inconsistent", s, m.Coef[s])
		}
		coef[idx[0]] = m.Coef[s]
		buckets[k] = idx[1:]
	}
	return coef, nil
}

// kernelCombination computes u_i = sum_{coef_j != 0} coef_j K(j, i) for
// every sample, splitting targets across workers exactly like
// Problem.gradients.
func kernelCombination(x *sparse.Matrix, params kernel.Params, coef []float64, workers int) []float64 {
	n := x.Rows()
	u := make([]float64, n)
	var svs []int
	for j, v := range coef {
		if v != 0 {
			svs = append(svs, j)
		}
	}
	if len(svs) == 0 {
		return u
	}
	ev := kernel.NewEvaluator(params, x)
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	chunk := func(ev *kernel.Evaluator, lo, hi int) {
		var scr kernel.Scratch
		buf := make([]float64, hi-lo)
		for _, j := range svs {
			ev.RowRangeInto(&scr, x.RowView(j), ev.Norm(j), lo, hi, buf)
			c := coef[j]
			for k, v := range buf {
				u[lo+k] += c * v
			}
		}
	}
	if w <= 1 {
		chunk(ev, 0, n)
		return u
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := k*n/w, (k+1)*n/w
		wg.Add(1)
		go func(ev *kernel.Evaluator, lo, hi int) {
			defer wg.Done()
			chunk(ev, lo, hi)
		}(ev.SubEvaluator(), lo, hi)
	}
	wg.Wait()
	return u
}
