package mpi

import "fmt"

// nextCollTag reserves a tag for one collective operation. Collectives must
// be invoked in the same order on every rank (as in MPI), so the per-rank
// sequence numbers stay in lockstep and consecutive collectives cannot
// cross-match messages.
func (c *Comm) nextCollTag() int {
	tag := maxUserTag + c.collSeq%maxUserTag
	c.collSeq++
	return tag
}

func assertPayload[T any](c *Comm, data any, st Status) (T, error) {
	v, ok := data.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("mpi: rank %d: collective payload type %T from rank %d, want %T", c.rank, data, st.Source, zero)
	}
	return v, nil
}

// Bcast broadcasts root's value to every rank using a binomial tree
// (ceil(log2 p) rounds, the O(log p) cost the paper assumes for
// distributing x_up and x_low each iteration). Every rank must call it;
// non-root input values are ignored.
func Bcast[T any](c *Comm, v T, root int) (T, error) {
	p := c.Size()
	if err := c.validRank(root); err != nil {
		var zero T
		return zero, err
	}
	tag := c.nextCollTag()
	if p == 1 {
		return v, nil
	}
	rel := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (rel - mask + root) % p
			data, st, err := c.recv(src, tag)
			if err != nil {
				var zero T
				return zero, err
			}
			v, err = assertPayload[T](c, data, st)
			if err != nil {
				var zero T
				return zero, err
			}
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < p {
			dst := (rel + mask + root) % p
			if err := c.send(dst, tag, v); err != nil {
				var zero T
				return zero, err
			}
		}
	}
	return v, nil
}

// Allreduce combines one value per rank with op and returns the global
// result on every rank. The implementation is recursive doubling with the
// standard pre/post phases for non-power-of-two worlds; op must be
// commutative and associative. The combine order is fixed (lower
// participant's partial on the left), so all ranks produce bitwise
// identical results even for floating-point sums.
func Allreduce[T any](c *Comm, v T, op func(T, T) T) (T, error) {
	var zero T
	p, rank := c.Size(), c.rank
	tag := c.nextCollTag()
	if p == 1 {
		return v, nil
	}
	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	rem := p - p2

	// Fold the "extra" ranks into the power-of-two participant set:
	// among the first 2*rem ranks, evens hand their value to the odd
	// neighbour and sit out; odds and all ranks >= 2*rem participate.
	newRank := -1
	switch {
	case rank < 2*rem && rank%2 == 0:
		if err := c.send(rank+1, tag, v); err != nil {
			return zero, err
		}
	case rank < 2*rem: // odd
		data, st, err := c.recv(rank-1, tag)
		if err != nil {
			return zero, err
		}
		other, err := assertPayload[T](c, data, st)
		if err != nil {
			return zero, err
		}
		v = op(other, v) // lower rank's value on the left
		newRank = rank / 2
	default:
		newRank = rank - rem
	}

	oldRank := func(nr int) int {
		if nr < rem {
			return nr*2 + 1
		}
		return nr + rem
	}

	if newRank >= 0 {
		for mask := 1; mask < p2; mask <<= 1 {
			partnerNew := newRank ^ mask
			partner := oldRank(partnerNew)
			data, st, err := c.sendrecv(partner, tag, v, partner, tag)
			if err != nil {
				return zero, err
			}
			other, err := assertPayload[T](c, data, st)
			if err != nil {
				return zero, err
			}
			if newRank < partnerNew {
				v = op(v, other)
			} else {
				v = op(other, v)
			}
		}
	}

	// Return results to the folded-out even ranks.
	switch {
	case rank < 2*rem && rank%2 == 0:
		data, st, err := c.recv(rank+1, tag)
		if err != nil {
			return zero, err
		}
		return assertPayload[T](c, data, st)
	case rank < 2*rem: // odd
		if err := c.send(rank-1, tag, v); err != nil {
			return zero, err
		}
	}
	return v, nil
}

// Barrier blocks until every rank has entered it (dissemination algorithm,
// ceil(log2 p) rounds).
func Barrier(c *Comm) error {
	p, rank := c.Size(), c.rank
	tag := c.nextCollTag()
	for dist := 1; dist < p; dist *= 2 {
		dst := (rank + dist) % p
		src := (rank - dist%p + p) % p
		if _, _, err := c.sendrecv(dst, tag, struct{}{}, src, tag); err != nil {
			return err
		}
	}
	return nil
}

// Allgather gathers one value per rank into a slice indexed by rank, on
// every rank, using the ring algorithm (p-1 steps). Values may have
// different sizes (MPI_Allgatherv). Payloads are shared by reference and
// must not be mutated by receivers.
func Allgather[T any](c *Comm, v T) ([]T, error) {
	p, rank := c.Size(), c.rank
	tag := c.nextCollTag()
	out := make([]T, p)
	out[rank] = v
	if p == 1 {
		return out, nil
	}
	right := (rank + 1) % p
	left := (rank - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendIdx := ((rank-step)%p + p) % p
		recvIdx := ((rank-step-1)%p + p) % p
		data, st, err := c.sendrecv(right, tag, out[sendIdx], left, tag)
		if err != nil {
			return nil, err
		}
		out[recvIdx], err = assertPayload[T](c, data, st)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Gather collects one value per rank at root (indexed by rank); other
// ranks receive nil. Linear algorithm: fine for the model-assembly step it
// serves, which runs once per training.
func Gather[T any](c *Comm, v T, root int) ([]T, error) {
	p, rank := c.Size(), c.rank
	if err := c.validRank(root); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	if rank != root {
		return nil, c.send(root, tag, v)
	}
	out := make([]T, p)
	out[rank] = v
	for i := 0; i < p-1; i++ {
		data, st, err := c.recv(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[st.Source], err = assertPayload[T](c, data, st)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ValLoc pairs a value with a global index for MINLOC/MAXLOC reductions,
// which the solver uses to find the worst KKT violators i_up and i_low.
type ValLoc struct {
	Val float64
	Loc int
}

// ByteSize implements Sized for the time model.
func (ValLoc) ByteSize() int { return 16 }

// MinLoc returns the argument with the smaller value; ties break toward
// the smaller index, which keeps the solver's pair selection deterministic
// and independent of the process count.
func MinLoc(a, b ValLoc) ValLoc {
	if b.Val < a.Val || (b.Val == a.Val && b.Loc < a.Loc) {
		return b
	}
	return a
}

// MaxLoc returns the argument with the larger value; ties break toward the
// smaller index.
func MaxLoc(a, b ValLoc) ValLoc {
	if b.Val > a.Val || (b.Val == a.Val && b.Loc < a.Loc) {
		return b
	}
	return a
}

// MinF64, MaxF64, SumF64 and SumInt are reduce operators for Allreduce.
func MinF64(a, b float64) float64 { return min(a, b) }

// MaxF64 returns the larger of two float64 values.
func MaxF64(a, b float64) float64 { return max(a, b) }

// SumF64 returns the sum of two float64 values.
func SumF64(a, b float64) float64 { return a + b }

// SumInt returns the sum of two ints.
func SumInt(a, b int) int { return a + b }

// MaxInt returns the larger of two ints.
func MaxInt(a, b int) int { return max(a, b) }

// MinInt returns the smaller of two ints.
func MinInt(a, b int) int { return min(a, b) }

// AndBool returns the logical AND (used for global convergence predicates).
func AndBool(a, b bool) bool { return a && b }

// OrBool returns the logical OR.
func OrBool(a, b bool) bool { return a || b }
