package mpi

// Reduce combines one value per rank with op, leaving the result at root
// (other ranks receive the zero value). Binomial-tree algorithm,
// ceil(log2 p) rounds, with the same deterministic combine order as
// Allreduce.
func Reduce[T any](c *Comm, v T, op func(T, T) T, root int) (T, error) {
	var zero T
	p := c.Size()
	if err := c.validRank(root); err != nil {
		return zero, err
	}
	tag := c.nextCollTag()
	if p == 1 {
		return v, nil
	}
	rel := (c.rank - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask != 0 {
			dst := (rel - mask + root) % p
			if err := c.send(dst, tag, v); err != nil {
				return zero, err
			}
			return zero, nil
		}
		if rel+mask < p {
			src := (rel + mask + root) % p
			data, st, err := c.recv(src, tag)
			if err != nil {
				return zero, err
			}
			other, err := assertPayload[T](c, data, st)
			if err != nil {
				return zero, err
			}
			v = op(v, other) // lower relative rank's partial on the left
		}
	}
	return v, nil
}

// AllreduceRing is Allreduce with a ring algorithm: the accumulator walks
// rank 0 -> 1 -> ... -> p-1 (p-1 latency-bound steps), then the result is
// broadcast. It exists for the collective-algorithm ablation — its O(p)
// latency against recursive doubling's O(log p) is exactly why the
// per-iteration beta reductions dominate solver communication at scale.
// Combine order is rank order, so results are identical on every rank and
// identical to a left fold.
func AllreduceRing[T any](c *Comm, v T, op func(T, T) T) (T, error) {
	var zero T
	p, rank := c.Size(), c.rank
	tag := c.nextCollTag()
	if p == 1 {
		return v, nil
	}
	if rank > 0 {
		data, st, err := c.recv(rank-1, tag)
		if err != nil {
			return zero, err
		}
		acc, err := assertPayload[T](c, data, st)
		if err != nil {
			return zero, err
		}
		v = op(acc, v)
	}
	if rank < p-1 {
		if err := c.send(rank+1, tag, v); err != nil {
			return zero, err
		}
	}
	return Bcast(c, v, p-1)
}

// Iprobe reports whether a message matching (src, tag) is waiting, without
// consuming it. src may be AnySource and tag AnyTag.
func (c *Comm) Iprobe(src, tag int) (bool, Status) {
	if src != AnySource {
		if err := c.validRank(src); err != nil {
			return false, Status{}
		}
	}
	return c.w.boxes[c.rank].peek(src, tag)
}

// Exscan (exclusive prefix reduction) returns op-fold of the values of
// ranks 0..rank-1; rank 0 receives the zero value and ok=false. Linear
// chain algorithm: sufficient for the occasional offset computations it
// serves (e.g. globally numbering per-rank support vectors).
func Exscan[T any](c *Comm, v T, op func(T, T) T) (T, bool, error) {
	var zero T
	p, rank := c.Size(), c.rank
	tag := c.nextCollTag()
	acc := zero
	have := false
	if rank > 0 {
		data, st, err := c.recv(rank-1, tag)
		if err != nil {
			return zero, false, err
		}
		acc, err = assertPayload[T](c, data, st)
		if err != nil {
			return zero, false, err
		}
		have = true
	}
	if rank < p-1 {
		next := acc
		if rank == 0 {
			next = v
		} else {
			next = op(acc, v)
		}
		if err := c.send(rank+1, tag, next); err != nil {
			return zero, false, err
		}
	}
	return acc, have, nil
}
