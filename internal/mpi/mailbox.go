package mpi

import "sync"

// message is an in-flight point-to-point message.
type message struct {
	src     int
	tag     int
	data    any
	bytes   int
	arrival float64 // virtual time at which the payload is available
}

// mailbox is one rank's unbounded receive queue with MPI matching
// semantics: Recv(src, tag) consumes the oldest message whose source and
// tag match, where AnySource/AnyTag act as wildcards. Messages from a given
// (source, tag) pair are delivered in send order (MPI's non-overtaking
// rule) because the queue is scanned front to back.
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []message
	abortErr error // non-nil once the world aborted; returned by get
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func matches(m *message, src, tag int) bool {
	if src != AnySource && m.src != src {
		return false
	}
	if tag != AnyTag && m.tag != tag {
		return false
	}
	return true
}

// put enqueues a message and wakes blocked receivers.
func (b *mailbox) put(m message) {
	b.mu.Lock()
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	// Broadcast rather than Signal: receivers match selectively, so the
	// woken waiter is not necessarily the one this message satisfies.
	b.cond.Broadcast()
}

// get blocks until a matching message arrives (or the world aborts) and
// removes it from the queue.
func (b *mailbox) get(src, tag int) (message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i := range b.queue {
			if matches(&b.queue[i], src, tag) {
				m := b.queue[i]
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return m, nil
			}
		}
		if b.abortErr != nil {
			return message{}, b.abortErr
		}
		b.cond.Wait()
	}
}

// tryGet is a non-blocking probe-and-consume used by Iprobe-style tests.
func (b *mailbox) tryGet(src, tag int) (message, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.queue {
		if matches(&b.queue[i], src, tag) {
			m := b.queue[i]
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

// peek reports whether a matching message is queued, without removing it.
func (b *mailbox) peek(src, tag int) (bool, Status) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.queue {
		if matches(&b.queue[i], src, tag) {
			m := &b.queue[i]
			return true, Status{Source: m.src, Tag: m.tag, Bytes: m.bytes}
		}
	}
	return false, Status{}
}

// pending reports the number of queued messages (for tests).
func (b *mailbox) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// abort unblocks all current and future receivers with err (typically
// ErrAborted, or a *RankFailedError naming the dead peer).
func (b *mailbox) abort(err error) {
	b.mu.Lock()
	b.abortErr = err
	b.mu.Unlock()
	b.cond.Broadcast()
}
