package mpi

import (
	"fmt"
	"testing"
)

func TestReduce(t *testing.T) {
	for _, p := range worldSizes {
		for _, root := range []int{0, p - 1, p / 2} {
			err := Run(p, func(c *Comm) error {
				got, err := Reduce(c, c.Rank()+1, SumInt, root)
				if err != nil {
					return err
				}
				want := p * (p + 1) / 2
				if c.Rank() == root && got != want {
					return fmt.Errorf("root got %d, want %d", got, want)
				}
				if c.Rank() != root && got != 0 {
					return fmt.Errorf("non-root got %d, want zero value", got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestReduceInvalidRoot(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if _, err := Reduce(c, 1, SumInt, 7); err == nil {
			return fmt.Errorf("invalid root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceRingMatchesRecursiveDoubling(t *testing.T) {
	for _, p := range worldSizes {
		err := Run(p, func(c *Comm) error {
			v := float64(c.Rank())*1.25 - 3
			a, err := Allreduce(c, v, MaxF64)
			if err != nil {
				return err
			}
			b, err := AllreduceRing(c, v, MaxF64)
			if err != nil {
				return err
			}
			if a != b {
				return fmt.Errorf("ring %v != recursive doubling %v", b, a)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllreduceRingLatencyIsLinear(t *testing.T) {
	// The point of the ablation: ring allreduce costs O(p) latency,
	// recursive doubling O(log p).
	net := NetModel{Alpha: 1e-3, Beta: 0}
	cost := func(ring bool, p int) float64 {
		times, err := RunTimed(p, Options{Net: net}, func(c *Comm) error {
			var err error
			if ring {
				_, err = AllreduceRing(c, 1.0, SumF64)
			} else {
				_, err = Allreduce(c, 1.0, SumF64)
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return MaxTime(times)
	}
	ringRatio := cost(true, 64) / cost(true, 8)
	rdRatio := cost(false, 64) / cost(false, 8)
	if ringRatio < 4 {
		t.Fatalf("ring p64/p8 latency ratio %v, want ~8 (linear)", ringRatio)
	}
	if rdRatio > 3 {
		t.Fatalf("recursive-doubling p64/p8 latency ratio %v, want ~2 (logarithmic)", rdRatio)
	}
}

func TestIprobe(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 5, "hello"); err != nil {
				return err
			}
			return Barrier(c)
		}
		if err := Barrier(c); err != nil {
			return err
		}
		ok, st := c.Iprobe(0, 5)
		if !ok || st.Source != 0 || st.Tag != 5 || st.Bytes != 5 {
			return fmt.Errorf("Iprobe = %v, %+v", ok, st)
		}
		// Probing must not consume.
		if ok2, _ := c.Iprobe(AnySource, AnyTag); !ok2 {
			return fmt.Errorf("message consumed by probe")
		}
		if ok3, _ := c.Iprobe(0, 99); ok3 {
			return fmt.Errorf("Iprobe matched wrong tag")
		}
		if ok4, _ := c.Iprobe(9, 5); ok4 {
			return fmt.Errorf("Iprobe accepted invalid rank")
		}
		if _, _, err := c.Recv(0, 5); err != nil {
			return err
		}
		if ok5, _ := c.Iprobe(0, 5); ok5 {
			return fmt.Errorf("message still probed after Recv")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExscan(t *testing.T) {
	for _, p := range worldSizes {
		err := Run(p, func(c *Comm) error {
			acc, have, err := Exscan(c, c.Rank()+1, SumInt)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				if have || acc != 0 {
					return fmt.Errorf("rank 0: acc=%d have=%v", acc, have)
				}
				return nil
			}
			want := c.Rank() * (c.Rank() + 1) / 2 // sum of 1..rank
			if !have || acc != want {
				return fmt.Errorf("rank %d: acc=%d have=%v, want %d", c.Rank(), acc, have, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func BenchmarkAllreduceAlgorithms(b *testing.B) {
	// DESIGN.md ablation: recursive doubling vs ring under the FDR model.
	net := FDR()
	for _, p := range []int{16, 64, 256} {
		for _, alg := range []string{"recdouble", "ring"} {
			b.Run(fmt.Sprintf("%s/p%d", alg, p), func(b *testing.B) {
				b.ReportAllocs()
				var virtual float64
				for i := 0; i < b.N; i++ {
					times, err := RunTimed(p, Options{Net: net}, func(c *Comm) error {
						var err error
						if alg == "ring" {
							_, err = AllreduceRing(c, float64(c.Rank()), SumF64)
						} else {
							_, err = Allreduce(c, float64(c.Rank()), SumF64)
						}
						return err
					})
					if err != nil {
						b.Fatal(err)
					}
					virtual += MaxTime(times)
				}
				b.ReportMetric(virtual/float64(b.N)*1e6, "virtual-us/op")
			})
		}
	}
}
