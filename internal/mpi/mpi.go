// Package mpi is a message-passing runtime that stands in for the Message
// Passing Interface used by the paper's implementation.
//
// Each "process" is a goroutine holding a Comm handle (its rank). The
// package reproduces the MPI primitives the paper's solver relies on:
//
//   - MPI_Send / MPI_Recv      -> Comm.Send / Comm.Recv (tag and source
//     matching, including AnySource / AnyTag)
//   - MPI_Isend / MPI_Irecv /
//     MPI_Waitall              -> Comm.Isend / Comm.Irecv / Waitall, used by
//     the ring exchange in gradient reconstruction (Algorithm 3)
//   - MPI_Bcast                -> Bcast (binomial tree, O(log p) rounds)
//   - MPI_Allreduce            -> Allreduce (recursive doubling, any p),
//     used for beta_up/beta_low (min/maxloc) and the
//     subsequent shrinking threshold (sum)
//   - MPI_Allgather(v)         -> Allgather (ring), used to assemble the
//     final support-vector set
//   - MPI_Barrier              -> Barrier (dissemination)
//
// Because ranks share an address space, message payloads are passed by
// reference: ownership transfers to the receiver and neither side may
// mutate a payload after send. This mirrors how the solver uses MPI (CSR
// blocks are immutable once built).
//
// Every rank additionally carries a virtual clock advanced by Comm.Compute
// and by message transfers under a Hockney alpha-beta network model
// (NetModel). With a zero NetModel the clock degenerates to pure compute
// accounting. The perfmodel package uses the same constants analytically;
// the runtime clock lets integration tests cross-check the analytic model
// against an executed schedule.
package mpi

import (
	"errors"
	"fmt"
)

// AnySource matches messages from any rank in Recv/Irecv.
const AnySource = -1

// AnyTag matches messages with any user tag in Recv/Irecv.
const AnyTag = -1

// maxUserTag bounds user-visible tags; larger tags are reserved for
// collectives.
const maxUserTag = 1 << 30

// ErrAborted is returned by blocked operations when another rank fails.
var ErrAborted = errors.New("mpi: world aborted")

// ErrInjectedCrash marks an operation that failed because the fault plan
// crashed this rank (FaultPlan.CrashRank at FaultPlan.CrashAtOp).
var ErrInjectedCrash = errors.New("mpi: injected crash")

// RankFailedError is the error surviving ranks observe when a peer dies:
// every blocked or future Recv/Waitall/collective on every other rank
// returns it instead of deadlocking. It unwraps to ErrAborted so existing
// errors.Is(err, ErrAborted) checks keep working.
type RankFailedError struct {
	Rank int // the rank that failed
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mpi: rank %d failed, world aborted", e.Rank)
}

// Unwrap lets errors.Is(err, ErrAborted) match a rank failure.
func (e *RankFailedError) Unwrap() error { return ErrAborted }

// Status describes a received message.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// NetModel is a Hockney-style point-to-point cost model: transferring n
// bytes costs Alpha + n*Beta seconds of virtual time. The zero value
// disables communication cost accounting.
type NetModel struct {
	Alpha float64 // per-message latency, seconds
	Beta  float64 // per-byte transfer time, seconds (1/bandwidth)
}

// FDR returns constants approximating the InfiniBand FDR fabric of the
// PNNL Cascade system used in the paper: ~1.5us latency, ~6.8 GB/s
// effective per-link bandwidth.
func FDR() NetModel {
	return NetModel{Alpha: 1.5e-6, Beta: 1.0 / 6.8e9}
}

// Cost returns the modeled transfer time for n bytes.
func (nm NetModel) Cost(n int) float64 {
	return nm.Alpha + float64(n)*nm.Beta
}

// Sized lets payload types report their transfer size to the time model.
type Sized interface {
	ByteSize() int
}

// PayloadBytes estimates the on-wire size of a payload for the time model.
// Common solver payload types are handled exactly; types implementing Sized
// report themselves; anything else is charged a nominal 64 bytes.
func PayloadBytes(v any) int {
	switch x := v.(type) {
	case nil:
		return 0
	case Sized:
		return x.ByteSize()
	case []float64:
		return 8 * len(x)
	case []float32:
		return 4 * len(x)
	case []int:
		return 8 * len(x)
	case []int64:
		return 8 * len(x)
	case []int32:
		return 4 * len(x)
	case []int8:
		return len(x)
	case []byte:
		return len(x)
	case float64, float32, int, int64, int32, uint64:
		return 8
	case bool, int8, uint8:
		return 1
	case string:
		return len(x)
	default:
		return 64
	}
}

// rankError annotates an error with the rank it occurred on.
type rankError struct {
	rank int
	err  error
}

func (e *rankError) Error() string { return fmt.Sprintf("mpi: rank %d: %v", e.rank, e.err) }
func (e *rankError) Unwrap() error { return e.err }
