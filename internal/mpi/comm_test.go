package mpi

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			return c.Send(1, 42, []float64{1, 2, 3})
		case 1:
			v, st, err := RecvAs[[]float64](c, 0, 42)
			if err != nil {
				return err
			}
			if st.Source != 0 || st.Tag != 42 || st.Bytes != 24 {
				return fmt.Errorf("status = %+v", st)
			}
			if len(v) != 3 || v[2] != 3 {
				return fmt.Errorf("payload = %v", v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, c.Rank()*10, c.Rank())
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			v, st, err := RecvAs[int](c, AnySource, AnyTag)
			if err != nil {
				return err
			}
			if st.Tag != v*10 || st.Source != v {
				return fmt.Errorf("mismatched status %+v for %d", st, v)
			}
			seen[v] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("missing senders: %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectiveMatching(t *testing.T) {
	// Rank 0 sends tag 2 before tag 1; rank 1 receives tag 1 first.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 2, "second"); err != nil {
				return err
			}
			return c.Send(1, 1, "first")
		}
		a, _, err := RecvAs[string](c, 0, 1)
		if err != nil {
			return err
		}
		b, _, err := RecvAs[string](c, 0, 2)
		if err != nil {
			return err
		}
		if a != "first" || b != "second" {
			return fmt.Errorf("got %q, %q", a, b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingSameTag(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		const n = 50
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 7, i); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			v, _, err := RecvAs[int](c, 0, 7)
			if err != nil {
				return err
			}
			if v != i {
				return fmt.Errorf("out of order: got %d at position %d", v, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	// The ring pattern from Algorithm 3: everyone sends right, receives left.
	const p = 5
	err := Run(p, func(c *Comm) error {
		right := (c.Rank() + 1) % p
		left := (c.Rank() - 1 + p) % p
		sreq := c.Isend(right, 9, c.Rank())
		rreq := c.Irecv(left, 9)
		if err := Waitall(sreq, rreq); err != nil {
			return err
		}
		got, ok := rreq.Data().(int)
		if !ok || got != left {
			return fmt.Errorf("rank %d received %v, want %d", c.Rank(), rreq.Data(), left)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvNoDeadlock(t *testing.T) {
	// Pairwise exchange where both sides send first would deadlock with
	// synchronous sends; ours must not.
	err := Run(2, func(c *Comm) error {
		other := 1 - c.Rank()
		v, _, err := c.Sendrecv(other, 3, c.Rank(), other, 3)
		if err != nil {
			return err
		}
		if v.(int) != other {
			return fmt.Errorf("got %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanksAndTags(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Send(5, 0, 1); err == nil {
			return errors.New("send to invalid rank succeeded")
		}
		if err := c.Send(-1, 0, 1); err == nil {
			return errors.New("send to negative rank succeeded")
		}
		if err := c.Send(1, -3, 1); err == nil {
			return errors.New("negative user tag accepted")
		}
		if err := c.Send(1, maxUserTag, 1); err == nil {
			return errors.New("reserved tag accepted")
		}
		if _, _, err := c.Recv(9, 0); err == nil {
			return errors.New("recv from invalid rank succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorAbortsBlockedRanks(t *testing.T) {
	// Rank 1 blocks forever on a receive that never comes; rank 0 errors.
	// Run must return rather than deadlock.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return errors.New("boom")
		}
		_, _, err := c.Recv(0, 1)
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("blocked recv returned %v, want ErrAborted", err)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 2 {
			panic("kaboom")
		}
		// Other ranks block; the abort must unblock them.
		_, _, err := c.Recv(2, 0)
		if errors.Is(err, ErrAborted) {
			return nil
		}
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want kaboom panic surfaced", err)
	}
}

func TestSendFaultInjection(t *testing.T) {
	opts := Options{SendFaults: map[int]int{0: 2}}
	_, err := RunTimed(2, opts, func(c *Comm) error {
		if c.Rank() != 0 {
			for {
				if _, _, err := c.Recv(0, 1); err != nil {
					return nil // aborted, fine
				}
			}
		}
		for i := 0; i < 5; i++ {
			if err := c.Send(1, 1, i); err != nil {
				if i != 2 {
					return fmt.Errorf("fault at send %d, want 2", i)
				}
				return err
			}
		}
		return errors.New("no injected fault")
	})
	if err == nil || !strings.Contains(err.Error(), "injected send fault") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsNonPositiveSize(t *testing.T) {
	if err := Run(0, func(*Comm) error { return nil }); err == nil {
		t.Fatal("Run(0) succeeded")
	}
	if err := Run(-3, func(*Comm) error { return nil }); err == nil {
		t.Fatal("Run(-3) succeeded")
	}
}

func TestCounters(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []float64{1, 2}); err != nil {
				return err
			}
			if c.Sends() != 1 || c.SentBytes() != 16 {
				return fmt.Errorf("sends=%d bytes=%d", c.Sends(), c.SentBytes())
			}
			return nil
		}
		if _, _, err := c.Recv(0, 1); err != nil {
			return err
		}
		if c.Recvs() != 1 {
			return fmt.Errorf("recvs=%d", c.Recvs())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualClockPointToPoint(t *testing.T) {
	net := NetModel{Alpha: 1e-3, Beta: 1e-6}
	times, err := RunTimed(2, Options{Net: net}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Compute(0.5)
			return c.Send(1, 1, make([]float64, 1000)) // 8000 bytes
		}
		_, _, err := c.Recv(0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 + net.Cost(8000)
	for r, got := range times {
		if diff := got - want; diff < -1e-12 || diff > 1e-12 {
			t.Fatalf("rank %d clock = %v, want %v", r, got, want)
		}
	}
}

func TestVirtualClockRecvDoesNotRewind(t *testing.T) {
	net := NetModel{Alpha: 1e-3, Beta: 0}
	times, err := RunTimed(2, Options{Net: net}, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, 0)
		}
		c.Compute(10) // receiver is already far ahead
		_, _, err := c.Recv(0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if times[1] != 10 {
		t.Fatalf("receiver clock = %v, want 10 (no rewind)", times[1])
	}
}

func TestPayloadBytes(t *testing.T) {
	cases := []struct {
		v    any
		want int
	}{
		{nil, 0},
		{[]float64{1, 2, 3}, 24},
		{[]float32{1, 2}, 8},
		{[]int{1}, 8},
		{[]int32{1, 2, 3}, 12},
		{[]byte{1, 2}, 2},
		{3.14, 8},
		{7, 8},
		{true, 1},
		{"hello", 5},
		{ValLoc{1, 2}, 16},
		{struct{ X [100]byte }{}, 64}, // fallback estimate
	}
	for _, tc := range cases {
		if got := PayloadBytes(tc.v); got != tc.want {
			t.Errorf("PayloadBytes(%T) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestRecvAsTypeMismatch(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, "text")
		}
		_, _, err := RecvAs[int](c, 0, 1)
		if err == nil {
			return errors.New("type mismatch not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
