package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
)

// world is the shared state behind one Run invocation.
type world struct {
	size  int
	boxes []*mailbox
	net   NetModel
	plan  FaultPlan

	abortOnce sync.Once

	// fault injection (tests): sendFaults[rank] > 0 means that rank's
	// sends start failing after that many successful sends.
	faultMu    sync.Mutex
	sendFaults map[int]int
	sendCounts map[int]int
}

func newWorld(size int, net NetModel) *world {
	w := &world{
		size:       size,
		boxes:      make([]*mailbox, size),
		net:        net,
		sendFaults: make(map[int]int),
		sendCounts: make(map[int]int),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

func (w *world) abort() { w.abortWith(ErrAborted) }

// abortWith terminates the world once, propagating err to every blocked and
// future receive on every rank. The first abort wins.
func (w *world) abortWith(err error) {
	w.abortOnce.Do(func() {
		for _, b := range w.boxes {
			b.abort(err)
		}
	})
}

// kill marks rank as failed: all other ranks' pending and future blocked
// operations return a *RankFailedError naming it, so survivors error out
// cleanly instead of deadlocking in Recv.
func (w *world) kill(rank int) {
	w.abortWith(&RankFailedError{Rank: rank})
}

func (w *world) checkFault(rank int) error {
	w.faultMu.Lock()
	defer w.faultMu.Unlock()
	limit, ok := w.sendFaults[rank]
	if !ok {
		return nil
	}
	w.sendCounts[rank]++
	if w.sendCounts[rank] > limit {
		return fmt.Errorf("mpi: injected send fault on rank %d", rank)
	}
	return nil
}

// Comm is one rank's handle on the world. It is confined to the goroutine
// running that rank and is not safe for concurrent use.
type Comm struct {
	w       *world
	rank    int
	clock   float64 // virtual seconds
	collSeq int     // per-rank collective sequence number (stays in lockstep)

	// counters for stats and tests
	sends, recvs int
	sentBytes    int64
}

// Rank returns this process's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.w.size }

// Clock returns the rank's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// Compute advances the rank's virtual clock by d seconds of local work.
func (c *Comm) Compute(d float64) {
	if d > 0 {
		c.clock += d
	}
}

// Sends and Recvs return point-to-point operation counts (tests, stats).
func (c *Comm) Sends() int { return c.sends }

// Recvs returns the number of completed point-to-point receives.
func (c *Comm) Recvs() int { return c.recvs }

// SentBytes returns the total modeled payload bytes sent by this rank.
func (c *Comm) SentBytes() int64 { return c.sentBytes }

func (c *Comm) validRank(r int) error {
	if r < 0 || r >= c.w.size {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", r, c.w.size)
	}
	return nil
}

// Send delivers data to dst with the given tag. The payload is transferred
// by reference; the sender must not mutate it afterwards. Under the time
// model the sender is charged Alpha + bytes*Beta and the message becomes
// available to the receiver at the sender's post-send clock.
func (c *Comm) Send(dst, tag int, data any) error {
	if err := c.validRank(dst); err != nil {
		return err
	}
	if tag < 0 || tag >= maxUserTag {
		return fmt.Errorf("mpi: user tag %d out of range [0,%d)", tag, maxUserTag)
	}
	return c.send(dst, tag, data)
}

// send is the internal path shared with collectives (which use reserved
// tags above maxUserTag).
func (c *Comm) send(dst, tag int, data any) error {
	if err := c.w.checkFault(c.rank); err != nil {
		return err
	}
	if err := c.checkCrash(); err != nil {
		return err
	}
	n := PayloadBytes(data)
	c.clock += c.w.net.Cost(n)
	if p := &c.w.plan; p.DelayEveryN > 0 && c.sends%p.DelayEveryN == p.DelayEveryN-1 {
		// Message-delay injection: every DelayEveryN-th send is slowed by
		// Delay virtual seconds, modeling a congested or degraded link.
		c.clock += p.Delay
	}
	c.sends++
	c.sentBytes += int64(n)
	c.w.boxes[dst].put(message{src: c.rank, tag: tag, data: data, bytes: n, arrival: c.clock})
	return nil
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload. src may be AnySource and tag may be AnyTag.
func (c *Comm) Recv(src, tag int) (any, Status, error) {
	if src != AnySource {
		if err := c.validRank(src); err != nil {
			return nil, Status{}, err
		}
	}
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) (any, Status, error) {
	if err := c.checkCrash(); err != nil {
		return nil, Status{}, err
	}
	m, err := c.w.boxes[c.rank].get(src, tag)
	if err != nil {
		return nil, Status{}, err
	}
	if m.arrival > c.clock {
		c.clock = m.arrival
	}
	c.recvs++
	return m.data, Status{Source: m.src, Tag: m.tag, Bytes: m.bytes}, nil
}

// RecvAs receives and type-asserts the payload to T.
func RecvAs[T any](c *Comm, src, tag int) (T, Status, error) {
	var zero T
	data, st, err := c.Recv(src, tag)
	if err != nil {
		return zero, st, err
	}
	v, ok := data.(T)
	if !ok {
		return zero, st, fmt.Errorf("mpi: rank %d received %T from rank %d (tag %d), want %T", c.rank, data, st.Source, st.Tag, zero)
	}
	return v, st, nil
}

// Request represents a pending nonblocking operation (Isend/Irecv).
type Request struct {
	wait   func() (any, Status, error)
	done   bool
	data   any
	status Status
	err    error
}

// Wait completes the operation, caching the result.
func (r *Request) Wait() (any, Status, error) {
	if !r.done {
		r.data, r.status, r.err = r.wait()
		r.done = true
		r.wait = nil
	}
	return r.data, r.status, r.err
}

// Data returns the received payload after Wait (nil for sends).
func (r *Request) Data() any { return r.data }

// Isend starts a nonblocking send. Because mailboxes are unbounded the send
// completes immediately; the returned request exists so ring exchanges can
// be written exactly like their MPI counterparts (Isend/Irecv/Waitall).
func (c *Comm) Isend(dst, tag int, data any) *Request {
	err := c.Send(dst, tag, data)
	return &Request{done: true, err: err}
}

// Irecv posts a nonblocking receive; the matching happens at Wait time.
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{wait: func() (any, Status, error) { return c.Recv(src, tag) }}
}

// Waitall waits for every request and returns the first error encountered.
func Waitall(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sendrecv performs a combined send and receive, as in the lockstep steps
// of ring and recursive-doubling exchanges. It is deadlock-free regardless
// of ordering because sends never block.
func (c *Comm) Sendrecv(dst, sendTag int, data any, src, recvTag int) (any, Status, error) {
	if err := c.Send(dst, sendTag, data); err != nil {
		return nil, Status{}, err
	}
	return c.Recv(src, recvTag)
}

// sendrecv is the internal variant used by collectives with reserved tags.
func (c *Comm) sendrecv(dst, sendTag int, data any, src, recvTag int) (any, Status, error) {
	if err := c.send(dst, sendTag, data); err != nil {
		return nil, Status{}, err
	}
	return c.recv(src, recvTag)
}

// Abort terminates the world: all blocked operations on every rank return
// ErrAborted. Run still waits for all rank functions to return.
func (c *Comm) Abort() { c.w.abort() }

// checkCrash enforces the fault plan on the rank's point-to-point paths
// (collectives are built on them, so they are covered too). When the
// crashing rank reaches its scheduled operation it kills the world — every
// other rank's blocked and future operations return *RankFailedError — and
// dies with ErrInjectedCrash. Ops are counted per rank as sends + completed
// receives, making the crash point deterministic for a deterministic
// program.
func (c *Comm) checkCrash() error {
	p := &c.w.plan
	if p.CrashAtOp <= 0 || c.rank != p.CrashRank {
		return nil
	}
	if int64(c.sends+c.recvs) >= p.CrashAtOp {
		c.w.kill(c.rank)
		return fmt.Errorf("%w: rank %d at op %d", ErrInjectedCrash, c.rank, c.sends+c.recvs)
	}
	return nil
}

// FaultPlan is a deterministic fault-injection schedule for one Run. The
// zero value injects nothing.
type FaultPlan struct {
	// CrashRank dies when its cumulative point-to-point operation count
	// (sends + receives) reaches CrashAtOp. CrashAtOp <= 0 disables the
	// crash. The kill aborts the world so surviving ranks observe a
	// *RankFailedError instead of deadlocking.
	CrashRank int
	CrashAtOp int64

	// Every DelayEveryN-th send on each rank is charged an extra Delay
	// virtual seconds (message-delay injection). DelayEveryN <= 0
	// disables it.
	DelayEveryN int
	Delay       float64
}

// Enabled reports whether the plan injects any fault.
func (p FaultPlan) Enabled() bool {
	return p.CrashAtOp > 0 || p.DelayEveryN > 0
}

// SeededCrash derives a deterministic crash plan from a seed: a uniform
// victim rank in [0, p) and a crash operation in [1, horizon]. The same
// (seed, p, horizon) always yields the same plan, so an injected failure is
// exactly reproducible — the property the crash-recovery CI job relies on.
func SeededCrash(seed int64, p int, horizon int64) FaultPlan {
	if p <= 0 || horizon <= 0 {
		return FaultPlan{}
	}
	rng := rand.New(rand.NewSource(seed))
	return FaultPlan{
		CrashRank: rng.Intn(p),
		CrashAtOp: 1 + rng.Int63n(horizon),
	}
}

// Options configures a Run invocation.
type Options struct {
	Net NetModel
	// SendFaults maps rank -> number of successful sends before that
	// rank's sends begin to fail. Used by failure-injection tests.
	SendFaults map[int]int
	// Faults is the deterministic fault-injection plan (rank crash,
	// message delay) applied to this run.
	Faults FaultPlan
}

// Run executes fn on p ranks, each in its own goroutine, and returns the
// combined error. A panic in any rank is converted to an error and aborts
// the world so other ranks unblock. Virtual end times per rank are
// discarded; use RunTimed to collect them.
func Run(p int, fn func(*Comm) error) error {
	_, err := RunTimed(p, Options{}, fn)
	return err
}

// RunTimed executes fn on p ranks under the given options and returns each
// rank's final virtual clock.
func RunTimed(p int, opts Options, fn func(*Comm) error) ([]float64, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", p)
	}
	w := newWorld(p, opts.Net)
	w.plan = opts.Faults
	if w.plan.CrashAtOp > 0 && (w.plan.CrashRank < 0 || w.plan.CrashRank >= p) {
		return nil, fmt.Errorf("mpi: fault plan crash rank %d out of range [0,%d)", w.plan.CrashRank, p)
	}
	for r, f := range opts.SendFaults {
		w.sendFaults[r] = f
	}
	comms := make([]*Comm, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		comms[r] = &Comm{w: w, rank: r}
		go func(r int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[r] = &rankError{rank: r, err: fmt.Errorf("panic: %v\n%s", rec, debug.Stack())}
					w.abort()
				}
			}()
			if err := fn(comms[r]); err != nil {
				errs[r] = &rankError{rank: r, err: err}
				w.abort()
			}
		}(r)
	}
	wg.Wait()
	times := make([]float64, p)
	for r := range comms {
		times[r] = comms[r].clock
	}
	var all []error
	for _, e := range errs {
		if e != nil {
			all = append(all, e)
		}
	}
	return times, errors.Join(all...)
}

// MaxTime returns the maximum of a RunTimed result: the modeled makespan.
func MaxTime(times []float64) float64 {
	var m float64
	for _, t := range times {
		if t > m {
			m = t
		}
	}
	return m
}
