package mpi

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestAllreduceLocPropertyVsSequential is a quick-check style property test
// for the collectives the solver's pair selection depends on: for random
// world sizes, random per-rank values (including ties, infinities, and
// duplicate locations), Allreduce MINLOC/MAXLOC must agree on every rank
// with a plain sequential fold in rank order. The operators break value
// ties toward the smaller location, which makes them genuinely commutative
// and associative — that is what entitles recursive doubling to combine in
// any bracketing, and what this test would catch regressing. Each trial
// runs real goroutine ranks, so the Go scheduler provides the randomized
// interleavings; the expected result is scheduling-independent.
func TestAllreduceLocPropertyVsSequential(t *testing.T) {
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		p := 1 + rng.Intn(9) // world sizes 1..9 cover non-powers of two
		vals := make([]ValLoc, p)
		for i := range vals {
			// Small value range forces frequent ties; occasional +/-Inf
			// exercises the extremes the solver's betaUp/betaLow scans hit.
			v := float64(rng.Intn(5) - 2)
			switch rng.Intn(10) {
			case 0:
				v = math.Inf(1)
			case 1:
				v = math.Inf(-1)
			}
			vals[i] = ValLoc{Val: v, Loc: rng.Intn(6)} // duplicate locs likely
		}

		wantMin, wantMax := vals[0], vals[0]
		for _, v := range vals[1:] {
			wantMin = MinLoc(wantMin, v)
			wantMax = MaxLoc(wantMax, v)
		}

		gotMin := make([]ValLoc, p)
		gotMax := make([]ValLoc, p)
		err := Run(p, func(c *Comm) error {
			mn, err := Allreduce(c, vals[c.Rank()], MinLoc)
			if err != nil {
				return err
			}
			mx, err := Allreduce(c, vals[c.Rank()], MaxLoc)
			if err != nil {
				return err
			}
			gotMin[c.Rank()] = mn
			gotMax[c.Rank()] = mx
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d (p=%d): %v", trial, p, err)
		}
		for r := 0; r < p; r++ {
			if gotMin[r] != wantMin {
				t.Errorf("trial %d (p=%d, vals=%v): MINLOC on rank %d = %+v, want %+v",
					trial, p, vals, r, gotMin[r], wantMin)
			}
			if gotMax[r] != wantMax {
				t.Errorf("trial %d (p=%d, vals=%v): MAXLOC on rank %d = %+v, want %+v",
					trial, p, vals, r, gotMax[r], wantMax)
			}
		}
	}
}

// TestBcastPropertyVsReference checks that Bcast delivers the root's exact
// payload to every rank for random world sizes, roots, and payload shapes
// (the binomial tree takes different paths for every (p, root) pair), and
// that a chain of collectives after the broadcast still lines up — the
// per-rank collective sequence numbers must stay in lockstep.
func TestBcastPropertyVsReference(t *testing.T) {
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		p := 1 + rng.Intn(9)
		root := rng.Intn(p)
		payload := make([]float64, 1+rng.Intn(8))
		for i := range payload {
			payload[i] = rng.NormFloat64()
		}

		var mu sync.Mutex
		got := make(map[int][]float64, p)
		sums := make([]float64, p)
		err := Run(p, func(c *Comm) error {
			in := []float64{math.NaN()} // non-root input must be ignored
			if c.Rank() == root {
				in = payload
			}
			out, err := Bcast(c, in, root)
			if err != nil {
				return err
			}
			mu.Lock()
			got[c.Rank()] = out
			mu.Unlock()
			// Follow-up collective over the broadcast data: every rank
			// contributes the same first element, so the sum is p*payload[0].
			s, err := Allreduce(c, out[0], SumF64)
			if err != nil {
				return err
			}
			sums[c.Rank()] = s
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d (p=%d, root=%d): %v", trial, p, root, err)
		}
		for r := 0; r < p; r++ {
			out := got[r]
			if len(out) != len(payload) {
				t.Fatalf("trial %d (p=%d, root=%d): rank %d got %d values, want %d",
					trial, p, root, r, len(out), len(payload))
			}
			for i := range payload {
				if out[i] != payload[i] {
					t.Errorf("trial %d (p=%d, root=%d): rank %d element %d = %v, want %v",
						trial, p, root, r, i, out[i], payload[i])
				}
			}
			want := float64(p) * payload[0]
			if math.Abs(sums[r]-want) > 1e-12*math.Max(1, math.Abs(want)) {
				t.Errorf("trial %d (p=%d, root=%d): follow-up sum on rank %d = %v, want %v",
					trial, p, root, r, sums[r], want)
			}
		}
	}
}
