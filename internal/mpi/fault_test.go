package mpi

import (
	"errors"
	"testing"
)

// TestKilledRankUnblocksReceivers is the regression test for the mailbox
// deadlock: before abort propagation carried the failure, a rank blocked in
// Recv on a dead peer hung forever. Now every survivor must unblock with a
// *RankFailedError naming the dead rank.
func TestKilledRankUnblocksReceivers(t *testing.T) {
	const p = 4
	const victim = 2
	rankErrs := make([]error, p)
	_, err := RunTimed(p, Options{Faults: FaultPlan{CrashRank: victim, CrashAtOp: 1}}, func(c *Comm) error {
		if c.Rank() == victim {
			// First op completes (op count below CrashAtOp), the next one
			// dies at the op boundary.
			if err := c.Send(0, 1, 1.0); err != nil {
				rankErrs[c.Rank()] = err
				return err
			}
			_, _, err := c.Recv(0, 99)
			rankErrs[c.Rank()] = err
			return err
		}
		// Survivors block on a message nobody ever sends.
		_, _, err := c.Recv(AnySource, 7)
		rankErrs[c.Rank()] = err
		return err
	})
	if err == nil {
		t.Fatal("run with an injected crash reported success")
	}
	if !errors.Is(rankErrs[victim], ErrInjectedCrash) {
		t.Fatalf("victim error = %v, want ErrInjectedCrash", rankErrs[victim])
	}
	for r := 0; r < p; r++ {
		if r == victim {
			continue
		}
		var rf *RankFailedError
		if !errors.As(rankErrs[r], &rf) {
			t.Fatalf("rank %d error = %v, want *RankFailedError", r, rankErrs[r])
		}
		if rf.Rank != victim {
			t.Fatalf("rank %d blames rank %d, want %d", r, rf.Rank, victim)
		}
		if !errors.Is(rankErrs[r], ErrAborted) {
			t.Fatalf("rank %d error %v does not unwrap to ErrAborted", r, rankErrs[r])
		}
	}
}

// TestKilledRankUnblocksWaitall covers the nonblocking path: pending Irecv
// requests completed through Waitall must also observe the failure.
func TestKilledRankUnblocksWaitall(t *testing.T) {
	const p = 3
	const victim = 0
	rankErrs := make([]error, p)
	_, err := RunTimed(p, Options{Faults: FaultPlan{CrashRank: victim, CrashAtOp: 1}}, func(c *Comm) error {
		if c.Rank() == victim {
			if err := c.Send(1, 1, 1.0); err != nil {
				rankErrs[c.Rank()] = err
				return err
			}
			_, _, err := c.Recv(1, 99)
			rankErrs[c.Rank()] = err
			return err
		}
		// Two pending receives that can never be satisfied, resolved via
		// Waitall as in the solver's ring exchange.
		r1 := c.Irecv(AnySource, 8)
		r2 := c.Irecv(AnySource, 9)
		err := Waitall(r1, r2)
		rankErrs[c.Rank()] = err
		return err
	})
	if err == nil {
		t.Fatal("run with an injected crash reported success")
	}
	for r := 1; r < p; r++ {
		var rf *RankFailedError
		if !errors.As(rankErrs[r], &rf) || rf.Rank != victim {
			t.Fatalf("rank %d Waitall error = %v, want *RankFailedError{Rank: %d}", r, rankErrs[r], victim)
		}
	}
}

// TestKilledRankUnblocksCollectives checks that a crash inside a collective
// (which is built on the same point-to-point paths) propagates too.
func TestKilledRankUnblocksCollectives(t *testing.T) {
	const p = 4
	rankErrs := make([]error, p)
	_, err := RunTimed(p, Options{Faults: FaultPlan{CrashRank: 3, CrashAtOp: 2}}, func(c *Comm) error {
		for i := 0; i < 100; i++ {
			if _, err := Allreduce(c, float64(c.Rank()), SumF64); err != nil {
				rankErrs[c.Rank()] = err
				return err
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("collective loop with an injected crash reported success")
	}
	if !errors.Is(rankErrs[3], ErrInjectedCrash) {
		t.Fatalf("victim error = %v, want ErrInjectedCrash", rankErrs[3])
	}
	for r := 0; r < 3; r++ {
		if rankErrs[r] == nil {
			t.Fatalf("rank %d finished 100 allreduces despite a dead peer", r)
		}
		if !errors.Is(rankErrs[r], ErrAborted) {
			t.Fatalf("rank %d error %v does not unwrap to ErrAborted", r, rankErrs[r])
		}
	}
}

func TestSeededCrashDeterministic(t *testing.T) {
	a := SeededCrash(42, 8, 1000)
	b := SeededCrash(42, 8, 1000)
	if a != b {
		t.Fatalf("same seed produced different plans: %+v vs %+v", a, b)
	}
	if a.CrashRank < 0 || a.CrashRank >= 8 {
		t.Fatalf("crash rank %d out of range [0,8)", a.CrashRank)
	}
	if a.CrashAtOp < 1 || a.CrashAtOp > 1000 {
		t.Fatalf("crash op %d out of range [1,1000]", a.CrashAtOp)
	}
	if c := SeededCrash(43, 8, 1000); c == a {
		t.Fatalf("seeds 42 and 43 produced the identical plan %+v", a)
	}
	if z := (SeededCrash(42, 0, 1000)); z.Enabled() {
		t.Fatalf("degenerate world size produced an enabled plan %+v", z)
	}
}

// TestDelayInjectionSlowsClock verifies message-delay injection charges
// virtual time without changing results: a delayed ping-pong computes the
// same values but its makespan grows by the injected delays.
func TestDelayInjectionSlowsClock(t *testing.T) {
	pingPong := func(opts Options) ([]float64, error) {
		return RunTimed(2, opts, func(c *Comm) error {
			for i := 0; i < 10; i++ {
				if c.Rank() == 0 {
					if err := c.Send(1, 1, float64(i)); err != nil {
						return err
					}
					if _, _, err := c.Recv(1, 2); err != nil {
						return err
					}
				} else {
					v, _, err := RecvAs[float64](c, 0, 1)
					if err != nil {
						return err
					}
					if v != float64(i) {
						return errors.New("payload mismatch under delay injection")
					}
					if err := c.Send(0, 2, v); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
	base, err := pingPong(Options{})
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := pingPong(Options{Faults: FaultPlan{DelayEveryN: 2, Delay: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	// Each rank sends 10 messages; every 2nd is delayed 0.5s: 5 hits/rank.
	if got := MaxTime(delayed) - MaxTime(base); got < 2.5 {
		t.Fatalf("delay injection added %.2fs of virtual time, want >= 2.5s", got)
	}
}

func TestFaultPlanBadRankRejected(t *testing.T) {
	_, err := RunTimed(2, Options{Faults: FaultPlan{CrashRank: 5, CrashAtOp: 1}}, func(c *Comm) error {
		return nil
	})
	if err == nil {
		t.Fatal("out-of-range crash rank accepted")
	}
}
