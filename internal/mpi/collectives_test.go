package mpi

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// worldSizes covers 1, 2, powers of two, and awkward non-powers of two.
var worldSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, p := range worldSizes {
		for root := 0; root < p; root++ {
			p, root := p, root
			t.Run(fmt.Sprintf("p%d_root%d", p, root), func(t *testing.T) {
				err := Run(p, func(c *Comm) error {
					v := []float64(nil)
					if c.Rank() == root {
						v = []float64{3.5, float64(root)}
					}
					got, err := Bcast(c, v, root)
					if err != nil {
						return err
					}
					if len(got) != 2 || got[0] != 3.5 || got[1] != float64(root) {
						return fmt.Errorf("rank %d got %v", c.Rank(), got)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		_, err := Bcast(c, 1, 5)
		if err == nil {
			return fmt.Errorf("invalid root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, p := range worldSizes {
		p := p
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			want := p * (p - 1) / 2
			err := Run(p, func(c *Comm) error {
				got, err := Allreduce(c, c.Rank(), SumInt)
				if err != nil {
					return err
				}
				if got != want {
					return fmt.Errorf("rank %d: sum = %d, want %d", c.Rank(), got, want)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllreduceMinMaxFloat(t *testing.T) {
	for _, p := range worldSizes {
		err := Run(p, func(c *Comm) error {
			v := float64(c.Rank()*7%5) - 2 // some spread with ties
			mn, err := Allreduce(c, v, MinF64)
			if err != nil {
				return err
			}
			mx, err := Allreduce(c, v, MaxF64)
			if err != nil {
				return err
			}
			wantMin, wantMax := 2.0, -2.0
			for r := 0; r < p; r++ {
				rv := float64(r*7%5) - 2
				wantMin = min(wantMin, rv)
				wantMax = max(wantMax, rv)
			}
			if mn != wantMin || mx != wantMax {
				return fmt.Errorf("p=%d rank %d: min=%v max=%v want %v %v", p, c.Rank(), mn, mx, wantMin, wantMax)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceMinLocMaxLoc(t *testing.T) {
	// Values with duplicates: ties must resolve to the smallest index on
	// every rank identically (determinism of i_up/i_low selection).
	vals := []float64{5, -1, 3, -1, 7, 3, -1, 2, 9, 0, 4, -1, 8}
	for _, p := range worldSizes {
		if p > len(vals) {
			continue
		}
		err := Run(p, func(c *Comm) error {
			// Each rank owns a block; reduces its local best first.
			lo, hi := c.Rank()*len(vals)/p, (c.Rank()+1)*len(vals)/p
			local := ValLoc{Val: vals[lo], Loc: lo}
			localMax := local
			for i := lo + 1; i < hi; i++ {
				local = MinLoc(local, ValLoc{vals[i], i})
				localMax = MaxLoc(localMax, ValLoc{vals[i], i})
			}
			gmin, err := Allreduce(c, local, MinLoc)
			if err != nil {
				return err
			}
			gmax, err := Allreduce(c, localMax, MaxLoc)
			if err != nil {
				return err
			}
			if gmin.Val != -1 || gmin.Loc != 1 {
				return fmt.Errorf("p=%d min = %+v, want {-1 1}", p, gmin)
			}
			if gmax.Val != 9 || gmax.Loc != 8 {
				return fmt.Errorf("p=%d max = %+v, want {9 8}", p, gmax)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceFloatDeterministicAcrossRanks(t *testing.T) {
	// All ranks must get bitwise identical sums even though fp addition is
	// not associative.
	for _, p := range []int{3, 5, 8, 13} {
		results := make([]float64, p)
		err := Run(p, func(c *Comm) error {
			v := 0.1 * float64(c.Rank()+1) // values with rounding behaviour
			s, err := Allreduce(c, v, SumF64)
			if err != nil {
				return err
			}
			results[c.Rank()] = s
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r < p; r++ {
			if results[r] != results[0] {
				t.Fatalf("p=%d: rank %d sum %v != rank 0 sum %v", p, r, results[r], results[0])
			}
		}
	}
}

func TestBarrier(t *testing.T) {
	for _, p := range worldSizes {
		// After a barrier, all pre-barrier sends must be observable.
		flags := make([]bool, p)
		err := Run(p, func(c *Comm) error {
			flags[c.Rank()] = true
			if err := Barrier(c); err != nil {
				return err
			}
			for r := 0; r < p; r++ {
				if !flags[r] {
					return fmt.Errorf("rank %d not past flag set after barrier", r)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range worldSizes {
		err := Run(p, func(c *Comm) error {
			// Variable-size contributions (Allgatherv semantics).
			mine := make([]int, c.Rank()+1)
			for i := range mine {
				mine[i] = c.Rank()
			}
			all, err := Allgather(c, mine)
			if err != nil {
				return err
			}
			if len(all) != p {
				return fmt.Errorf("len = %d", len(all))
			}
			for r := 0; r < p; r++ {
				if len(all[r]) != r+1 {
					return fmt.Errorf("rank %d entry has %d elems, want %d", r, len(all[r]), r+1)
				}
				for _, v := range all[r] {
					if v != r {
						return fmt.Errorf("rank %d entry contains %d", r, v)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestGather(t *testing.T) {
	for _, p := range worldSizes {
		root := p / 2
		err := Run(p, func(c *Comm) error {
			out, err := Gather(c, c.Rank()*c.Rank(), root)
			if err != nil {
				return err
			}
			if c.Rank() != root {
				if out != nil {
					return fmt.Errorf("non-root got %v", out)
				}
				return nil
			}
			for r := 0; r < p; r++ {
				if out[r] != r*r {
					return fmt.Errorf("out[%d] = %d", r, out[r])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestConsecutiveCollectivesDoNotCrossMatch(t *testing.T) {
	// A rank that races ahead into the next collective must not steal
	// messages from the previous one. Interleave many collectives of the
	// same kind with different values.
	err := Run(4, func(c *Comm) error {
		for i := 0; i < 100; i++ {
			got, err := Allreduce(c, c.Rank()+i*10, SumInt)
			if err != nil {
				return err
			}
			want := 6 + 40*i
			if got != want {
				return fmt.Errorf("iteration %d: %d, want %d", i, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMixedCollectiveSequence(t *testing.T) {
	// The solver's per-iteration pattern: Bcast + 2 Allreduce + occasional
	// Allgather. Exercise the sequence under all sizes.
	for _, p := range worldSizes {
		err := Run(p, func(c *Comm) error {
			for i := 0; i < 10; i++ {
				x, err := Bcast(c, i*p, 0)
				if err != nil {
					return err
				}
				up, err := Allreduce(c, ValLoc{float64(c.Rank()), c.Rank()}, MinLoc)
				if err != nil {
					return err
				}
				low, err := Allreduce(c, ValLoc{float64(c.Rank()), c.Rank()}, MaxLoc)
				if err != nil {
					return err
				}
				if x != i*p || up.Loc != 0 || low.Loc != p-1 {
					return fmt.Errorf("p=%d i=%d: x=%d up=%+v low=%+v", p, i, x, up, low)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestValLocOps(t *testing.T) {
	a := ValLoc{1, 5}
	b := ValLoc{1, 3}
	if got := MinLoc(a, b); got.Loc != 3 {
		t.Fatalf("MinLoc tie = %+v", got)
	}
	if got := MaxLoc(a, b); got.Loc != 3 {
		t.Fatalf("MaxLoc tie = %+v", got)
	}
	if got := MinLoc(ValLoc{0, 9}, ValLoc{1, 1}); got.Loc != 9 {
		t.Fatalf("MinLoc = %+v", got)
	}
	if got := MaxLoc(ValLoc{0, 9}, ValLoc{1, 1}); got.Loc != 1 {
		t.Fatalf("MaxLoc = %+v", got)
	}
}

// Property: Allreduce(min) equals the sequential min for random values and
// world sizes.
func TestAllreduceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(12)
		vals := make([]float64, p)
		want := vals[0]
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		want = vals[0]
		for _, v := range vals[1:] {
			want = min(want, v)
		}
		ok := true
		err := Run(p, func(c *Comm) error {
			got, err := Allreduce(c, vals[c.Rank()], MinF64)
			if err != nil {
				return err
			}
			if got != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveVirtualTimeScalesLogarithmically(t *testing.T) {
	// An Allreduce of a scalar should cost O(log p) * alpha, not O(p).
	net := NetModel{Alpha: 1e-3, Beta: 0}
	cost := func(p int) float64 {
		times, err := RunTimed(p, Options{Net: net}, func(c *Comm) error {
			_, err := Allreduce(c, 1.0, SumF64)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return MaxTime(times)
	}
	c8, c64 := cost(8), cost(64)
	if c64 > 3*c8 {
		t.Fatalf("allreduce cost at p=64 (%v) vs p=8 (%v): worse than logarithmic", c64, c8)
	}
	if c64 <= c8 {
		t.Fatalf("allreduce cost should grow with p: %v vs %v", c8, c64)
	}
}

func BenchmarkAllreduceScalar(b *testing.B) {
	for _, p := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := Run(p, func(c *Comm) error {
					_, err := Allreduce(c, float64(c.Rank()), SumF64)
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBcast8KB(b *testing.B) {
	payload := make([]float64, 1024)
	for _, p := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := Run(p, func(c *Comm) error {
					_, err := Bcast(c, payload, 0)
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
