// Package cache provides the least-recently-used kernel-row cache used by
// the libsvm-enhanced baseline.
//
// The paper's proposed solver avoids a kernel cache completely (Section
// III-A2): a complete kernel matrix costs Theta(N^2) space and, for a fixed
// cache size, the hit probability falls as the dataset grows. libsvm,
// however, relies on its cache heavily, and the paper gives it "a compute
// node's entire memory" to set up the best execution scenario for the
// baseline. This package reproduces that component: a byte-budgeted LRU
// over full kernel rows, mirroring libsvm's Cache class.
package cache

import "container/list"

// RowCache is an LRU cache of kernel rows keyed by sample index.
// It is not safe for concurrent use; the baseline solver performs lookups
// from the coordinating goroutine only.
type RowCache struct {
	budget    int64 // max bytes of row payloads
	used      int64
	ll        *list.List // front = most recently used
	entries   map[int]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type entry struct {
	key int
	row []float64
}

// rowBytes is the accounted size of a cached row.
func rowBytes(row []float64) int64 { return int64(8 * len(row)) }

// New returns a RowCache with the given byte budget. A budget <= 0 disables
// caching (every Get misses and Put is a no-op).
func New(budgetBytes int64) *RowCache {
	return &RowCache{
		budget:  budgetBytes,
		ll:      list.New(),
		entries: make(map[int]*list.Element),
	}
}

// Get returns the cached row for key and marks it most recently used.
// The returned slice is owned by the cache and must not be mutated.
func (c *RowCache) Get(key int) ([]float64, bool) {
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).row, true
}

// Put inserts a row, evicting least-recently-used rows as needed to stay
// within the byte budget. Rows larger than the whole budget are not cached.
// The cache takes ownership of the slice.
func (c *RowCache) Put(key int, row []float64) {
	if c.budget <= 0 || rowBytes(row) > c.budget {
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		c.used += rowBytes(row) - rowBytes(e.row)
		e.row = row
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry{key: key, row: row})
		c.entries[key] = el
		c.used += rowBytes(row)
	}
	for c.used > c.budget {
		c.evictOldest()
	}
}

func (c *RowCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.used -= rowBytes(e.row)
	c.evictions++
}

// Invalidate removes a single key if present.
func (c *RowCache) Invalidate(key int) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.entries, key)
		c.used -= rowBytes(e.row)
	}
}

// Len returns the number of cached rows.
func (c *RowCache) Len() int { return c.ll.Len() }

// UsedBytes returns the bytes currently accounted to cached rows.
func (c *RowCache) UsedBytes() int64 { return c.used }

// Stats returns hit/miss/eviction counters.
func (c *RowCache) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

// HitRate returns hits / (hits+misses), or 0 before any lookups.
func (c *RowCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
