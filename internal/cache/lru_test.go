package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func row(n int, fill float64) []float64 {
	r := make([]float64, n)
	for i := range r {
		r[i] = fill
	}
	return r
}

func TestGetMiss(t *testing.T) {
	c := New(1024)
	if _, ok := c.Get(7); ok {
		t.Fatal("Get on empty cache hit")
	}
	_, misses, _ := c.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}

func TestPutGet(t *testing.T) {
	c := New(1024)
	c.Put(3, row(10, 1.5))
	got, ok := c.Get(3)
	if !ok || len(got) != 10 || got[0] != 1.5 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if c.Len() != 1 || c.UsedBytes() != 80 {
		t.Fatalf("Len=%d Used=%d", c.Len(), c.UsedBytes())
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	c := New(240) // room for 3 rows of 10
	c.Put(1, row(10, 1))
	c.Put(2, row(10, 2))
	c.Put(3, row(10, 3))
	// Touch 1 so 2 becomes LRU.
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 missing")
	}
	c.Put(4, row(10, 4))
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%d should be cached", k)
		}
	}
	_, _, ev := c.Stats()
	if ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestPutReplaceResizes(t *testing.T) {
	c := New(1000)
	c.Put(1, row(10, 1))
	c.Put(1, row(50, 2))
	if c.Len() != 1 || c.UsedBytes() != 400 {
		t.Fatalf("Len=%d Used=%d", c.Len(), c.UsedBytes())
	}
	got, _ := c.Get(1)
	if len(got) != 50 || got[0] != 2 {
		t.Fatal("replacement not visible")
	}
}

func TestOversizeRowNotCached(t *testing.T) {
	c := New(100)
	c.Put(1, row(100, 1)) // 800 bytes > budget
	if _, ok := c.Get(1); ok {
		t.Fatal("oversize row cached")
	}
	if c.Len() != 0 {
		t.Fatal("Len != 0")
	}
}

func TestZeroBudgetDisables(t *testing.T) {
	c := New(0)
	c.Put(1, row(4, 1))
	if _, ok := c.Get(1); ok {
		t.Fatal("zero-budget cache stored a row")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(1000)
	c.Put(1, row(5, 1))
	c.Put(2, row(5, 2))
	c.Invalidate(1)
	c.Invalidate(99) // no-op
	if _, ok := c.Get(1); ok {
		t.Fatal("1 still present after Invalidate")
	}
	if _, ok := c.Get(2); !ok {
		t.Fatal("2 lost")
	}
	if c.UsedBytes() != 40 {
		t.Fatalf("Used = %d", c.UsedBytes())
	}
}

func TestHitRate(t *testing.T) {
	c := New(1000)
	if c.HitRate() != 0 {
		t.Fatal("HitRate before lookups should be 0")
	}
	c.Put(1, row(2, 1))
	c.Get(1)
	c.Get(2)
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}
}

// Property: the cache never exceeds its byte budget and Get returns exactly
// what was Put most recently for the key.
func TestBudgetInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := int64(200 + rng.Intn(2000))
		c := New(budget)
		shadow := map[int]float64{}
		for op := 0; op < 300; op++ {
			key := rng.Intn(20)
			if rng.Float64() < 0.6 {
				fill := rng.Float64()
				c.Put(key, row(1+rng.Intn(20), fill))
				shadow[key] = fill
			} else if got, ok := c.Get(key); ok {
				if got[0] != shadow[key] {
					return false // stale value
				}
			}
			if c.UsedBytes() > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New(1 << 20)
	c.Put(1, row(1000, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Get(1)
	}
}
