package tasks

import (
	"context"
	"fmt"

	"repro/internal/model"
	"repro/internal/solver"
	"repro/internal/sparse"
)

func init() { solver.Register(taskEngine{}) }

// taskEngine adapts the task-variant formulations to solver.Engine,
// dispatching on Problem.Task: epsilon-SVR (Problem.Y holds continuous
// targets, Options.Task.Epsilon the tube) or one-class (Problem.Y ignored,
// Options.Task.Nu the outlier bound). Options.InitialAlpha warm-starts in
// the task's own dual coordinates: the collapsed signed coefficients
// d_i = alpha_i - alpha*_i for SVR, the per-row alpha for one-class.
type taskEngine struct{}

func (taskEngine) Name() string { return "tasks" }

func (taskEngine) Capabilities() solver.Capability {
	return solver.CapSVR | solver.CapOneClass | solver.CapKernels |
		solver.CapWarmStart | solver.CapCheckpoint
}

func (taskEngine) Describe() string {
	return "task variants over the generalized SMO engine: epsilon-SVR regression and nu one-class anomaly detection"
}

func (e taskEngine) Train(ctx context.Context, prob solver.Problem, opts solver.Options) (solver.Result, error) {
	if err := solver.Validate(e, prob, opts); err != nil {
		return solver.Result{}, err
	}
	x, ok := prob.X.(*sparse.Matrix)
	if !ok {
		return solver.Result{}, fmt.Errorf("tasks: engine needs an in-memory matrix, got %T", prob.X)
	}
	cacheBytes := opts.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = 1 << 30
	}
	cfg := Config{
		Kernel: prob.Kernel, Eps: opts.Eps, Workers: opts.Workers,
		CacheBytes: cacheBytes, Shrinking: true, SecondOrder: true,
		MaxIter:    opts.MaxIter,
		Checkpoint: opts.Checkpoint, CheckpointEvery: opts.CheckpointEvery,
		CheckpointFingerprint: opts.CheckpointFingerprint,
	}
	var res *Result
	var err error
	switch prob.Task {
	case model.TaskSVR:
		res, err = TrainSVR(x, prob.Y, opts.C, opts.Task.Epsilon, cfg, opts.InitialAlpha)
	case model.TaskOneClass:
		res, err = TrainOneClass(x, opts.Task.Nu, cfg, opts.InitialAlpha)
	default:
		return solver.Result{}, fmt.Errorf("tasks: engine does not train task %q", prob.Task)
	}
	if err != nil {
		return solver.Result{}, err
	}
	m := res.Model
	return solver.Result{
		Model:       m,
		Iterations:  res.Iterations,
		KernelEvals: res.KernelEvals,
		Converged:   res.Converged,
		Objective:   res.Objective,
		Summary: fmt.Sprintf("converged=%v iterations=%d objective=%.6g SVs=%d (%.1f%% of samples)",
			res.Converged, res.Iterations, res.Objective,
			m.NumSV(), 100*float64(m.NumSV())/float64(x.Rows())),
	}, nil
}
