package tasks

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/smo"
	"repro/internal/sparse"
)

// regressionSet draws n points in [-2, 2]^2 with targets
// z = sin(x1) + 0.5*x2 plus small noise, seeded for determinism.
func regressionSet(n int, seed int64) (*sparse.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	z := make([]float64, n)
	for i := range rows {
		x1 := 4*rng.Float64() - 2
		x2 := 4*rng.Float64() - 2
		rows[i] = []float64{x1, x2}
		z[i] = math.Sin(x1) + 0.5*x2 + 0.01*rng.NormFloat64()
	}
	return sparse.FromDense(rows), z
}

// inlierSet draws n points from a unit Gaussian blob, with an optional
// handful of far outliers appended.
func inlierSet(n, outliers int, seed int64) *sparse.Matrix {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, 0, n+outliers)
	for i := 0; i < n; i++ {
		rows = append(rows, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	for i := 0; i < outliers; i++ {
		// Isolated far points in different directions, so they cannot form
		// a dense mode of their own.
		theta := 2 * math.Pi * float64(i) / float64(outliers)
		r := 8 + rng.Float64()
		rows = append(rows, []float64{r * math.Cos(theta), r * math.Sin(theta)})
	}
	return sparse.FromDense(rows)
}

func svrCfg() Config {
	return Config{Kernel: kernel.Params{Type: kernel.Gaussian, Gamma: 0.5}, Eps: 1e-3, Workers: 2}
}

func TestTrainSVROracleVerified(t *testing.T) {
	x, z := regressionSet(120, 1)
	res, err := TrainSVR(x, z, 10, 0.1, svrCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("solver did not converge")
	}
	m := res.Model
	if m.TaskKind() != model.TaskSVR || m.Epsilon != 0.1 {
		t.Fatalf("task=%s epsilon=%v", m.TaskKind(), m.Epsilon)
	}
	rep, err := oracle.SVRProblem{X: x, Z: z, Kernel: m.Kernel, C: m.C, Eps: 1e-3}.VerifyModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("oracle rejects the trained SVR model: %v\n%s", err, rep)
	}
	// The fit must actually track the target function.
	mt, err := m.EvaluateRegression(x, z)
	if err != nil {
		t.Fatal(err)
	}
	if mt.MAE > 0.15 {
		t.Fatalf("MAE = %v, predictions do not track targets", mt.MAE)
	}
}

func TestTrainOneClassOracleVerified(t *testing.T) {
	x := inlierSet(150, 8, 2)
	nu := 0.1
	cfg := svrCfg()
	// The one-class score range is small (u values ~1/(nu*n)), so a tight
	// solver tolerance keeps the eps-band from swallowing the boundary.
	cfg.Eps = 1e-5
	res, err := TrainOneClass(x, nu, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("solver did not converge")
	}
	m := res.Model
	rep, err := oracle.OneClassProblem{X: x, Kernel: m.Kernel, Eps: 1e-5}.VerifyModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("oracle rejects the trained one-class model: %v\n%s", err, rep)
	}
	// The planted far points must be flagged decisively; training inliers
	// sit at most an eps-band below the boundary (the nu-property bounds
	// the fraction below rho - 2*eps, not below rho exactly).
	n := x.Rows()
	outlierFlagged := 0
	for i := n - 8; i < n; i++ {
		if m.AnomalyScore(x.RowView(i)) < -oracle.KKTTolerance(1e-5) {
			outlierFlagged++
		}
	}
	if outlierFlagged != 8 {
		t.Fatalf("flagged %d/8 planted outliers", outlierFlagged)
	}
	inlierKept := 0
	for i := 0; i < n-8; i++ {
		if m.AnomalyScore(x.RowView(i)) >= -oracle.KKTTolerance(1e-5) {
			inlierKept++
		}
	}
	if frac := float64(inlierKept) / float64(n-8); frac < 1-nu-0.05 {
		t.Fatalf("only %.0f%% of inliers kept (nu=%v)", 100*frac, nu)
	}
}

func TestSVRUpdateMatchesColdRetrain(t *testing.T) {
	xAll, zAll := regressionSet(200, 3)
	nBase := 160
	xBase, _ := xAll.SubMatrix(0, nBase)
	base, err := TrainSVR(xBase, zAll[:nBase], 10, 0.1, svrCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	upd, err := Update(base.Model, xAll, zAll, svrCfg())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := TrainSVR(xAll, zAll, 10, 0.1, svrCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both must be eps-optimal for the same QP, so their dual objectives
	// agree within the oracle gap tolerance.
	tol := oracle.GapTolerance(2*xAll.Rows(), 10, 1e-3)
	if diff := math.Abs(upd.Objective - cold.Objective); diff > tol {
		t.Fatalf("update objective %v vs cold %v: |diff| %v > %v", upd.Objective, cold.Objective, diff, tol)
	}
	rep, err := oracle.SVRProblem{X: xAll, Z: zAll, Kernel: base.Model.Kernel, C: 10, Eps: 1e-3}.VerifyModel(upd.Model)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("oracle rejects the updated model: %v", err)
	}
	if upd.Iterations >= cold.Iterations {
		t.Logf("warning: warm start took %d iterations vs cold %d", upd.Iterations, cold.Iterations)
	}
}

func TestOneClassUpdateMatchesColdRetrain(t *testing.T) {
	xAll := inlierSet(180, 6, 4)
	nBase := 150
	xBase, _ := xAll.SubMatrix(0, nBase)
	nu := 0.1
	base, err := TrainOneClass(xBase, nu, svrCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	upd, err := Update(base.Model, xAll, nil, svrCfg())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := TrainOneClass(xAll, nu, svrCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	boxC := 1 / (nu * float64(xAll.Rows()))
	tol := oracle.GapTolerance(xAll.Rows(), boxC, 1e-3)
	if diff := math.Abs(upd.Objective - cold.Objective); diff > tol {
		t.Fatalf("update objective %v vs cold %v: |diff| %v > %v", upd.Objective, cold.Objective, diff, tol)
	}
	rep, err := oracle.OneClassProblem{X: xAll, Kernel: base.Model.Kernel, Eps: 1e-3}.VerifyModel(upd.Model)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("oracle rejects the updated model: %v", err)
	}
}

func TestCSVCUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var rows [][]float64
	var y []float64
	for i := 0; i < 160; i++ {
		cx := 1.5
		label := 1.0
		if i%2 == 0 {
			cx, label = -1.5, -1
		}
		rows = append(rows, []float64{cx + 0.5*rng.NormFloat64(), 0.5 * rng.NormFloat64()})
		y = append(y, label)
	}
	xAll := sparse.FromDense(rows)
	nBase := 120
	xBase, _ := xAll.SubMatrix(0, nBase)
	cfg := svrCfg()
	baseRes, err := smo.Train(xBase, y[:nBase], cfg.smoConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	upd, err := Update(baseRes.Model, xAll, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := oracle.Problem{X: xAll, Y: y, Kernel: cfg.Kernel, C: 10, Eps: 1e-3}.VerifyModel(upd.Model)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("oracle rejects the updated classifier: %v", err)
	}
}

func TestUpdateCheckpointBindsBaseModel(t *testing.T) {
	xAll, zAll := regressionSet(80, 6)
	nBase := 60
	xBase, _ := xAll.SubMatrix(0, nBase)
	base, err := TrainSVR(xBase, zAll[:nBase], 10, 0.1, svrCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "upd.ckpt")
	w, err := ckpt.NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := svrCfg()
	cfg.Checkpoint = w
	cfg.CheckpointEvery = 1
	if _, err := Update(base.Model, xAll, zAll, cfg); err != nil {
		t.Fatal(err)
	}
	if w.Saves() == 0 {
		t.Skip("warm start converged before the first checkpoint")
	}
	st, _, err := ckpt.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := ckpt.BindModel(ckpt.Fingerprint(xAll, zAll), base.Model.ContentHash())
	if st.Fingerprint != want {
		t.Fatalf("checkpoint fingerprint %016x, want bound %016x", st.Fingerprint, want)
	}
	// A different base model must produce a different binding.
	base.Model.Beta++
	otherHash := base.Model.ContentHash()
	base.Model.Beta--
	if ckpt.BindModel(ckpt.Fingerprint(xAll, zAll), otherHash) == want {
		t.Fatal("binding does not separate base models")
	}
}

func TestUpdateRejectsMismatchedBase(t *testing.T) {
	xAll, zAll := regressionSet(80, 7)
	nBase := 60
	xBase, _ := xAll.SubMatrix(0, nBase)
	base, err := TrainSVR(xBase, zAll[:nBase], 10, 0.1, svrCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the data under the model: content matching must fail.
	xOther, zOther := regressionSet(80, 99)
	if _, err := Update(base.Model, xOther, zOther, svrCfg()); err == nil {
		t.Fatal("update accepted a base model trained on different rows")
	}
}

func TestOneClassInitialAlphaFeasible(t *testing.T) {
	for _, tc := range []struct {
		n  int
		nu float64
	}{{10, 0.3}, {7, 0.5}, {100, 0.05}, {5, 1}} {
		alpha := OneClassInitialAlpha(tc.n, tc.nu)
		boxC := 1 / (tc.nu * float64(tc.n))
		var sum float64
		for i, a := range alpha {
			if a < 0 || a > boxC*(1+1e-12) {
				t.Fatalf("n=%d nu=%v: alpha[%d]=%v outside [0,%v]", tc.n, tc.nu, i, a, boxC)
			}
			sum += a
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("n=%d nu=%v: sum=%v, want 1", tc.n, tc.nu, sum)
		}
	}
}

func TestProjectOneClass(t *testing.T) {
	alpha := []float64{0.6, 0.4, 0, 0}
	projectOneClass(alpha, 0.3)
	var sum float64
	for i, a := range alpha {
		if a < 0 || a > 0.3+1e-15 {
			t.Fatalf("alpha[%d]=%v outside box", i, a)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum=%v after projection", sum)
	}
}
