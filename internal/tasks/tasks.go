// Package tasks formulates SVM task variants — epsilon-SVR regression and
// one-class anomaly detection — as parameterized QPs over the generalized
// SMO engine (smo.TrainQP), and implements incremental warm-start updates
// that retrain a deployed model on appended data without a cold start.
//
// Both tasks reduce to the same machinery the classifier uses:
//
//   - epsilon-SVR doubles the variables (alpha_i for the +epsilon side,
//     alpha*_i for the -epsilon side) by physically stacking the data matrix
//     on itself; constraint signs are +1 for the first n rows and -1 for the
//     rest, the per-sample linear term is epsilon -/+ z_i, and the box stays
//     the uniform [0, C]. The collapsed coefficients d_i = alpha_i -
//     alpha*_i and the solver threshold assemble a model whose predictor
//     zhat(x) = sum_j d_j K(x_j, x) - Beta is exactly model.DecisionValue —
//     every predict, pack, and serve path applies unchanged.
//
//   - the one-class SVM keeps the rows, sets every constraint sign to +1, a
//     zero linear term, the nu-parameterized box [0, 1/(nu*n)], and the
//     equality target sum alpha_i = 1. SMO pair updates preserve that sum,
//     so training starts from the libsvm initial point (the first
//     floor(nu*n) samples at the bound, the fractional remainder next).
//
// Correctness is proven, not asserted: internal/oracle gains per-task
// KKT/duality-gap verifiers (SVRProblem, OneClassProblem) that recompute
// everything from scratch, and svmtrain -verify routes task models through
// them.
package tasks

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ckpt"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/smo"
	"repro/internal/sparse"
)

// Config carries the solver knobs shared by every task formulation.
type Config struct {
	Kernel      kernel.Params
	Eps         float64 // solver tolerance (0 = 1e-3)
	Workers     int
	CacheBytes  int64
	Shrinking   bool
	SecondOrder bool
	MaxIter     int64

	// Checkpoint wiring, passed through to the underlying solver. The
	// fingerprint is computed from the task's (data, targets) when zero;
	// Update binds the base model's content hash into it (ckpt.BindModel).
	Checkpoint            *ckpt.Writer
	CheckpointEvery       int64
	CheckpointFingerprint uint64
}

func (c Config) smoConfig(boxC float64) smo.Config {
	return smo.Config{
		Kernel:                c.Kernel,
		C:                     boxC,
		Eps:                   c.Eps,
		Workers:               c.Workers,
		CacheBytes:            c.CacheBytes,
		Shrinking:             c.Shrinking,
		SecondOrder:           c.SecondOrder,
		MaxIter:               c.MaxIter,
		Checkpoint:            c.Checkpoint,
		CheckpointEvery:       c.CheckpointEvery,
		CheckpointLabel:       ckpt.SolverTasks,
		CheckpointFingerprint: c.CheckpointFingerprint,
	}
}

// Result carries the trained task model and solver statistics.
type Result struct {
	Model       *model.Model
	Iterations  int64
	KernelEvals uint64
	Converged   bool
	Objective   float64 // dual objective of the solved QP at termination
	Elapsed     time.Duration
}

// TrainSVR solves the epsilon-SVR dual on (x, z) and assembles a TaskSVR
// model. initialCoef, when non-nil, warm-starts the solver from a collapsed
// dual point d (one signed entry per row, |d_i| <= C, sum d_i ~ 0) — the
// incremental-update path recovers it from a base model.
func TrainSVR(x *sparse.Matrix, z []float64, c, epsilon float64, cfg Config, initialCoef []float64) (*Result, error) {
	n := x.Rows()
	if n == 0 {
		return nil, fmt.Errorf("tasks: empty training set")
	}
	if len(z) != n {
		return nil, fmt.Errorf("tasks: %d targets for %d samples", len(z), n)
	}
	if c <= 0 {
		return nil, fmt.Errorf("tasks: C must be positive, got %v", c)
	}
	if !(epsilon > 0) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("tasks: epsilon must be positive and finite, got %v", epsilon)
	}
	for i, v := range z {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("tasks: target %d is %v", i, v)
		}
	}
	if initialCoef != nil && len(initialCoef) != n {
		return nil, fmt.Errorf("tasks: %d initial coefficients for %d samples", len(initialCoef), n)
	}

	// Doubled formulation: rows n..2n-1 are the alpha* side of the same data.
	x2 := sparse.Append(x, x)
	y2 := make([]float64, 2*n)
	p2 := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		y2[i], y2[n+i] = 1, -1
		p2[i], p2[n+i] = epsilon-z[i], epsilon+z[i]
	}
	scfg := cfg.smoConfig(c)
	scfg.LinearTerm = p2
	if initialCoef != nil {
		a0 := make([]float64, 2*n)
		for i, d := range initialCoef {
			if math.IsNaN(d) || math.Abs(d) > c*(1+1e-9) {
				return nil, fmt.Errorf("tasks: initial coefficient %d = %v outside [-C, C]", i, d)
			}
			if d > 0 {
				a0[i] = math.Min(d, c)
			} else if d < 0 {
				a0[n+i] = math.Min(-d, c)
			}
		}
		scfg.InitialAlpha = a0
	}
	if scfg.Checkpoint != nil && scfg.CheckpointFingerprint == 0 {
		scfg.CheckpointFingerprint = ckpt.Fingerprint(x, z)
	}

	res, err := smo.TrainQP(x2, y2, scfg)
	if err != nil {
		return nil, err
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = res.Alpha[i] - res.Alpha[n+i]
	}
	m, err := assembleModel(x, d, res.Beta, &model.Model{
		Kernel: cfg.Kernel, C: c, Task: model.TaskSVR, Epsilon: epsilon,
		TrainSamples: n, Iterations: res.Iterations,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Model:       m,
		Iterations:  res.Iterations,
		KernelEvals: res.KernelEvals,
		Converged:   res.Converged,
		Objective:   res.Objective,
		Elapsed:     res.Elapsed,
	}, nil
}

// TrainOneClass solves the nu-parameterized one-class QP on x and assembles
// a TaskOneClass model. initialAlpha, when non-nil, warm-starts from an
// existing dual point (each entry in [0, 1/(nu*n)], summing to 1).
func TrainOneClass(x *sparse.Matrix, nu float64, cfg Config, initialAlpha []float64) (*Result, error) {
	n := x.Rows()
	if n == 0 {
		return nil, fmt.Errorf("tasks: empty training set")
	}
	if !(nu > 0) || nu > 1 {
		return nil, fmt.Errorf("tasks: nu must be in (0, 1], got %v", nu)
	}
	boxC := 1 / (nu * float64(n))
	if initialAlpha == nil {
		initialAlpha = OneClassInitialAlpha(n, nu)
	} else if len(initialAlpha) != n {
		return nil, fmt.Errorf("tasks: %d initial alphas for %d samples", len(initialAlpha), n)
	}

	y := make([]float64, n)
	for i := range y {
		y[i] = 1
	}
	scfg := cfg.smoConfig(boxC)
	scfg.LinearTerm = make([]float64, n) // p = 0
	scfg.EqualityTarget = 1
	scfg.InitialAlpha = initialAlpha
	if scfg.Checkpoint != nil && scfg.CheckpointFingerprint == 0 {
		scfg.CheckpointFingerprint = ckpt.Fingerprint(x, y)
	}

	res, err := smo.TrainQP(x, y, scfg)
	if err != nil {
		return nil, err
	}
	m, err := assembleModel(x, res.Alpha, res.Beta, &model.Model{
		Kernel: cfg.Kernel, C: boxC, Task: model.TaskOneClass, Nu: nu,
		TrainSamples: n, Iterations: res.Iterations,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Model:       m,
		Iterations:  res.Iterations,
		KernelEvals: res.KernelEvals,
		Converged:   res.Converged,
		Objective:   res.Objective,
		Elapsed:     res.Elapsed,
	}, nil
}

// OneClassInitialAlpha is the libsvm starting point for the one-class QP:
// the first floor(nu*n) samples at the bound 1/(nu*n), the fractional
// remainder on the next sample. It satisfies both the box and the equality
// sum alpha_i = 1 exactly enough for warm-start validation.
func OneClassInitialAlpha(n int, nu float64) []float64 {
	alpha := make([]float64, n)
	boxC := 1 / (nu * float64(n))
	full := int(nu * float64(n))
	if full > n {
		full = n
	}
	for i := 0; i < full; i++ {
		alpha[i] = boxC
	}
	var sum float64
	for _, a := range alpha {
		sum += a
	}
	if rem := 1 - sum; rem > 0 && full < n {
		alpha[full] = rem
	}
	return alpha
}

// assembleModel builds a task model from the per-row coefficient vector:
// rows with nonzero coefficients become support vectors.
func assembleModel(x *sparse.Matrix, coef []float64, beta float64, m *model.Model) (*model.Model, error) {
	var svIdx []int
	for i, v := range coef {
		if v != 0 {
			svIdx = append(svIdx, i)
		}
	}
	sv, err := x.SelectRows(svIdx)
	if err != nil {
		return nil, fmt.Errorf("tasks: %w", err)
	}
	svCoef := make([]float64, len(svIdx))
	for k, i := range svIdx {
		svCoef[k] = coef[i]
	}
	m.SV = sv
	m.Coef = svCoef
	m.Beta = beta
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("tasks: assembled model invalid: %w", err)
	}
	return m, nil
}

// Update incrementally retrains a model on its original training data plus
// appended rows: the base model's dual point is recovered by content
// matching against the first base.TrainSamples rows of x, zero-extended
// over the appended rows, projected back into the (possibly shrunk)
// feasible set, and handed to the task solver as a warm start. labels are
// regression targets for TaskSVR, class labels for TaskCSVC, and ignored
// (may be nil) for TaskOneClass.
//
// Checkpoints written during an update are fingerprinted with
// ckpt.BindModel(dataset, base.ContentHash()), so a crash-resume is
// rejected unless both the appended dataset and the warm-start base model
// match.
func Update(base *model.Model, x *sparse.Matrix, labels []float64, cfg Config) (*Result, error) {
	if base == nil {
		return nil, fmt.Errorf("tasks: nil base model")
	}
	n := x.Rows()
	nBase := base.TrainSamples
	if nBase <= 0 || nBase > n {
		return nil, fmt.Errorf("tasks: base model trained on %d samples, update set has %d", nBase, n)
	}
	baseX, err := x.SubMatrix(0, nBase)
	if err != nil {
		return nil, fmt.Errorf("tasks: %w", err)
	}
	cfg.Kernel = base.Kernel
	if cfg.Checkpoint != nil && cfg.CheckpointFingerprint == 0 {
		fpLabels := labels
		if base.TaskKind() == model.TaskOneClass {
			fpLabels = make([]float64, n)
			for i := range fpLabels {
				fpLabels[i] = 1
			}
		}
		cfg.CheckpointFingerprint = ckpt.BindModel(ckpt.Fingerprint(x, fpLabels), base.ContentHash())
	}

	switch base.TaskKind() {
	case model.TaskSVR:
		if len(labels) != n {
			return nil, fmt.Errorf("tasks: %d targets for %d samples", len(labels), n)
		}
		d0, err := oracle.RecoverCoef(baseX, base)
		if err != nil {
			return nil, fmt.Errorf("tasks: base model does not match the leading rows: %w", err)
		}
		d0 = append(d0, make([]float64, n-nBase)...)
		return TrainSVR(x, labels, base.C, base.Epsilon, cfg, d0)

	case model.TaskOneClass:
		a0, err := oracle.RecoverCoef(baseX, base)
		if err != nil {
			return nil, fmt.Errorf("tasks: base model does not match the leading rows: %w", err)
		}
		a0 = append(a0, make([]float64, n-nBase)...)
		// The box shrinks from 1/(nu*nBase) to 1/(nu*n); project the warm
		// start back into the feasible set while keeping sum alpha = 1.
		projectOneClass(a0, 1/(base.Nu*float64(n)))
		return TrainOneClass(x, base.Nu, cfg, a0)

	case model.TaskCSVC:
		if len(labels) != n {
			return nil, fmt.Errorf("tasks: %d labels for %d samples", len(labels), n)
		}
		baseY := labels[:nBase]
		a0, err := oracle.RecoverAlpha(baseX, baseY, base)
		if err != nil {
			return nil, fmt.Errorf("tasks: base model does not match the leading rows: %w", err)
		}
		a0 = append(a0, make([]float64, n-nBase)...)
		scfg := cfg.smoConfig(base.C)
		scfg.InitialAlpha = a0
		res, err := smo.Train(x, labels, scfg)
		if err != nil {
			return nil, err
		}
		res.Model.Task = model.TaskCSVC
		return &Result{
			Model:       res.Model,
			Iterations:  res.Iterations,
			KernelEvals: res.KernelEvals,
			Converged:   res.Converged,
			Objective:   res.Objective,
			Elapsed:     res.Elapsed,
		}, nil

	default:
		return nil, fmt.Errorf("tasks: cannot update task kind %q", base.Task)
	}
}

// projectOneClass clips alpha to the box [0, boxC] and redistributes the
// clipped mass onto entries with headroom, preserving sum alpha = 1. The
// total capacity n*boxC = 1/nu >= 1 guarantees the deficit always fits.
func projectOneClass(alpha []float64, boxC float64) {
	var deficit float64
	for i, a := range alpha {
		if a > boxC {
			deficit += a - boxC
			alpha[i] = boxC
		}
	}
	for i := range alpha {
		if deficit <= 0 {
			break
		}
		if room := boxC - alpha[i]; room > 0 {
			add := math.Min(room, deficit)
			alpha[i] += add
			deficit -= add
		}
	}
}
