package cv

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/sparse"
)

func TestKFoldPartition(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 2}, {10, 3}, {100, 10}, {7, 7}} {
		splits, err := KFold(tc.n, tc.k, 1)
		if err != nil {
			t.Fatalf("KFold(%d,%d): %v", tc.n, tc.k, err)
		}
		if len(splits) != tc.k {
			t.Fatalf("got %d splits", len(splits))
		}
		seen := make([]int, tc.n)
		for _, sp := range splits {
			if len(sp.TrainIdx)+len(sp.TestIdx) != tc.n {
				t.Fatalf("fold sizes %d+%d != %d", len(sp.TrainIdx), len(sp.TestIdx), tc.n)
			}
			for _, i := range sp.TestIdx {
				seen[i]++
			}
			// No overlap within a fold.
			inTest := map[int]bool{}
			for _, i := range sp.TestIdx {
				inTest[i] = true
			}
			for _, i := range sp.TrainIdx {
				if inTest[i] {
					t.Fatalf("index %d in both train and test", i)
				}
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("sample %d in %d test folds", i, c)
			}
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	if _, err := KFold(10, 1, 0); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := KFold(3, 5, 0); err == nil {
		t.Error("n<k accepted")
	}
}

func TestKFoldDeterministic(t *testing.T) {
	a, _ := KFold(50, 5, 42)
	b, _ := KFold(50, 5, 42)
	for f := range a {
		for i := range a[f].TestIdx {
			if a[f].TestIdx[i] != b[f].TestIdx[i] {
				t.Fatal("KFold not deterministic")
			}
		}
	}
	c, _ := KFold(50, 5, 43)
	same := true
	for f := range a {
		for i := range a[f].TestIdx {
			if a[f].TestIdx[i] != c[f].TestIdx[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical folds")
	}
}

func TestStratifiedKFoldKeepsBalance(t *testing.T) {
	// 100 samples, 20% positive.
	y := make([]float64, 100)
	for i := range y {
		if i < 20 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	splits, err := StratifiedKFold(y, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for f, sp := range splits {
		pos := 0
		for _, i := range sp.TestIdx {
			if y[i] > 0 {
				pos++
			}
		}
		if pos != 4 { // 20 positives / 5 folds
			t.Fatalf("fold %d has %d positives, want 4", f, pos)
		}
	}
	if _, err := StratifiedKFold(y[:6], 5, 0); err == nil {
		t.Error("tiny class accepted")
	}
}

// constModel always predicts +1.
func constModel() *model.Model {
	return &model.Model{
		Kernel: kernel.Params{Type: kernel.Linear},
		C:      1,
		SV:     sparse.FromDense([][]float64{{0}}),
		Coef:   []float64{1},
		Beta:   -1, // decision value = K(0,x)*1 + 1 = 1 > 0 always for linear
	}
}

func TestCrossValidateWithStub(t *testing.T) {
	// Data where 70% of labels are +1: the always-positive stub must score
	// exactly the positive fraction on every fold union.
	n := 100
	x := sparse.FromDense(make([][]float64, n))
	x.Cols = 1
	y := make([]float64, n)
	for i := range y {
		if i%10 < 7 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	splits, err := KFold(n, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrossValidate(x, y, splits, func(_ *sparse.Matrix, _ []float64) (*model.Model, error) {
		return constModel(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracies) != 5 {
		t.Fatalf("folds = %d", len(res.FoldAccuracies))
	}
	if math.Abs(res.Mean-70) > 10 {
		t.Fatalf("mean accuracy %v, want ~70", res.Mean)
	}
	if res.Std < 0 {
		t.Fatalf("std = %v", res.Std)
	}
}

func TestCrossValidatePropagatesErrors(t *testing.T) {
	x := sparse.FromDense([][]float64{{1}, {2}, {3}, {4}})
	y := []float64{1, -1, 1, -1}
	splits, _ := KFold(4, 2, 0)
	_, err := CrossValidate(x, y, splits, func(_ *sparse.Matrix, _ []float64) (*model.Model, error) {
		return nil, fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("trainer error swallowed")
	}
	if _, err := CrossValidate(x, y, nil, nil); err == nil {
		t.Fatal("no splits accepted")
	}
}

func TestGridSearchPicksBest(t *testing.T) {
	x := sparse.FromDense(make([][]float64, 20))
	x.Cols = 1
	y := make([]float64, 20)
	for i := range y {
		y[i] = float64(1 - 2*(i%2))
	}
	splits, _ := KFold(20, 4, 0)
	// Rig the search: accuracy peaks at C=2, sigma2=8.
	trainAt := func(c, s2 float64) TrainFunc {
		return func(_ *sparse.Matrix, _ []float64) (*model.Model, error) {
			m := constModel()
			// Encode "accuracy" via Beta sign so Evaluate is deterministic:
			// instead, we use a shortcut below.
			_ = c
			_ = s2
			return m, nil
		}
	}
	points, best, err := GridSearch(x, y, []float64{1, 2}, []float64{4, 8}, splits, trainAt)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// All stub accuracies equal: ties break to the first (smallest) combo.
	if best.C != 1 || best.Sigma2 != 4 {
		t.Fatalf("best = %+v", best)
	}
	if _, _, err := GridSearch(x, y, nil, nil, splits, trainAt); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestLogGrid(t *testing.T) {
	got := LogGrid(2, -1, 3, 2)
	want := []float64{0.5, 2, 8}
	if len(got) != len(want) {
		t.Fatalf("LogGrid = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("LogGrid = %v, want %v", got, want)
		}
	}
	if g := LogGrid(10, 0, 2, 0); len(g) != 3 { // step<=0 -> 1
		t.Fatalf("step fallback: %v", g)
	}
}

// TestEndToEndGridSearch runs a tiny real grid search with the actual
// distributed solver, verifying the full tuning workflow the paper used
// for Table III.
func TestEndToEndGridSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped with -short")
	}
	ds := dataset.MustGenerate("blobs", 0.15)
	splits, err := StratifiedKFold(ds.Y, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	trainAt := func(c, s2 float64) TrainFunc {
		return func(x *sparse.Matrix, y []float64) (*model.Model, error) {
			m, _, err := core.TrainParallel(x, y, 2, core.Config{
				Kernel: kernel.FromSigma2(s2), C: c, Eps: 1e-2, Heuristic: core.Multi5pc,
			})
			return m, err
		}
	}
	points, best, err := GridSearch(ds.X, ds.Y, []float64{1, 10}, []float64{0.5, 2}, splits, trainAt)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	if best.Result.Mean < 80 {
		t.Fatalf("best CV accuracy %v%% too low for blobs", best.Result.Mean)
	}
}

// Property: KFold test folds are a permutation partition for random n, k.
func TestKFoldQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		n := k + rng.Intn(200)
		splits, err := KFold(n, k, seed)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, sp := range splits {
			for _, i := range sp.TestIdx {
				if i < 0 || i >= n || seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
