// Package cv implements k-fold cross validation and hyper-parameter grid
// search. The paper selected its Table III settings (C and the kernel
// width sigma^2) "by conducting a ten-fold cross validation ... using
// libsvm"; this package is that workflow, pluggable with either solver in
// this repository.
package cv

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/model"
	"repro/internal/sparse"
)

// Split is one cross-validation fold: indices into the full dataset.
type Split struct {
	TrainIdx []int
	TestIdx  []int
}

// KFold partitions n samples into k folds after a deterministic shuffle.
// Every sample appears in exactly one test fold.
func KFold(n, k int, seed int64) ([]Split, error) {
	if k < 2 {
		return nil, fmt.Errorf("cv: need at least 2 folds, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("cv: %d samples cannot fill %d folds", n, k)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	splits := make([]Split, k)
	for f := 0; f < k; f++ {
		lo, hi := f*n/k, (f+1)*n/k
		test := append([]int(nil), perm[lo:hi]...)
		train := make([]int, 0, n-(hi-lo))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		sort.Ints(test)
		sort.Ints(train)
		splits[f] = Split{TrainIdx: train, TestIdx: test}
	}
	return splits, nil
}

// StratifiedKFold is KFold with per-class partitioning, so each fold keeps
// the overall class balance — important for skewed datasets like w7a
// (about 3% positive in the original).
func StratifiedKFold(y []float64, k int, seed int64) ([]Split, error) {
	if k < 2 {
		return nil, fmt.Errorf("cv: need at least 2 folds, got %d", k)
	}
	var pos, neg []int
	for i, v := range y {
		if v > 0 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	if len(pos) < k || len(neg) < k {
		return nil, fmt.Errorf("cv: classes too small for %d folds (%d positive, %d negative)", k, len(pos), len(neg))
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	splits := make([]Split, k)
	assign := func(idx []int) {
		for f := 0; f < k; f++ {
			lo, hi := f*len(idx)/k, (f+1)*len(idx)/k
			splits[f].TestIdx = append(splits[f].TestIdx, idx[lo:hi]...)
		}
	}
	assign(pos)
	assign(neg)
	n := len(y)
	for f := range splits {
		inTest := make([]bool, n)
		for _, i := range splits[f].TestIdx {
			inTest[i] = true
		}
		for i := 0; i < n; i++ {
			if !inTest[i] {
				splits[f].TrainIdx = append(splits[f].TrainIdx, i)
			}
		}
		sort.Ints(splits[f].TestIdx)
	}
	return splits, nil
}

// TrainFunc trains a model on one fold. Implementations wrap
// core.TrainParallel or smo.Train with whatever fixed configuration the
// search is evaluating.
type TrainFunc func(x *sparse.Matrix, y []float64) (*model.Model, error)

// Result aggregates per-fold accuracies.
type Result struct {
	FoldAccuracies []float64 // percent
	Mean           float64
	Std            float64
}

// CrossValidate trains on each fold's training split and evaluates on its
// test split.
func CrossValidate(x *sparse.Matrix, y []float64, splits []Split, train TrainFunc) (Result, error) {
	if len(splits) == 0 {
		return Result{}, fmt.Errorf("cv: no splits")
	}
	var res Result
	for f, sp := range splits {
		trX, err := x.SelectRows(sp.TrainIdx)
		if err != nil {
			return Result{}, fmt.Errorf("cv: fold %d: %w", f, err)
		}
		teX, err := x.SelectRows(sp.TestIdx)
		if err != nil {
			return Result{}, fmt.Errorf("cv: fold %d: %w", f, err)
		}
		trY := selectLabels(y, sp.TrainIdx)
		teY := selectLabels(y, sp.TestIdx)
		m, err := train(trX, trY)
		if err != nil {
			return Result{}, fmt.Errorf("cv: fold %d: %w", f, err)
		}
		metrics, err := m.Evaluate(teX, teY)
		if err != nil {
			return Result{}, fmt.Errorf("cv: fold %d: %w", f, err)
		}
		res.FoldAccuracies = append(res.FoldAccuracies, metrics.Accuracy)
	}
	for _, a := range res.FoldAccuracies {
		res.Mean += a
	}
	res.Mean /= float64(len(res.FoldAccuracies))
	for _, a := range res.FoldAccuracies {
		res.Std += (a - res.Mean) * (a - res.Mean)
	}
	res.Std = math.Sqrt(res.Std / float64(len(res.FoldAccuracies)))
	return res, nil
}

func selectLabels(y []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = y[i]
	}
	return out
}

// GridPoint is one hyper-parameter combination with its CV result.
type GridPoint struct {
	C      float64
	Sigma2 float64
	Result Result
}

// TrainAt builds a TrainFunc for one (C, sigma2) grid point.
type TrainAt func(c, sigma2 float64) TrainFunc

// GridSearch cross-validates every (C, sigma2) combination and returns all
// points plus the best one (highest mean accuracy; ties break toward
// smaller C, then smaller sigma2 — the less complex model).
func GridSearch(x *sparse.Matrix, y []float64, cs, sigma2s []float64, splits []Split, trainAt TrainAt) ([]GridPoint, GridPoint, error) {
	if len(cs) == 0 || len(sigma2s) == 0 {
		return nil, GridPoint{}, fmt.Errorf("cv: empty grid")
	}
	var points []GridPoint
	best := GridPoint{Result: Result{Mean: math.Inf(-1)}}
	for _, c := range cs {
		for _, s2 := range sigma2s {
			res, err := CrossValidate(x, y, splits, trainAt(c, s2))
			if err != nil {
				return nil, GridPoint{}, fmt.Errorf("cv: C=%g sigma2=%g: %w", c, s2, err)
			}
			pt := GridPoint{C: c, Sigma2: s2, Result: res}
			points = append(points, pt)
			if pt.Result.Mean > best.Result.Mean {
				best = pt
			}
		}
	}
	return points, best, nil
}

// LogGrid returns the classic libsvm-style geometric grid
// {base^lo, base^(lo+step), ..., base^hi}.
func LogGrid(base float64, lo, hi, step int) []float64 {
	if step <= 0 {
		step = 1
	}
	var out []float64
	for e := lo; e <= hi; e += step {
		out = append(out, math.Pow(base, float64(e)))
	}
	return out
}
