package model

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/sparse"
)

func TestSVTrainingSet(t *testing.T) {
	m := &Model{
		Kernel: kernel.Params{Type: kernel.Gaussian, Gamma: 1},
		C:      10,
		SV:     sparse.FromDense([][]float64{{-1, 0}, {1, 0.5}, {0, 2}}),
		Coef:   []float64{-2.5, 1.5, 1},
		Beta:   0.25,
	}
	x, y, alpha := m.SVTrainingSet()
	if x != m.SV {
		t.Fatal("SVTrainingSet must return the SV matrix itself")
	}
	wantY := []float64{-1, 1, 1}
	wantA := []float64{2.5, 1.5, 1}
	for i := range wantY {
		if y[i] != wantY[i] {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], wantY[i])
		}
		if alpha[i] != wantA[i] {
			t.Fatalf("alpha[%d] = %v, want %v", i, alpha[i], wantA[i])
		}
	}
	// The reconstructed set satisfies the dual equality constraint iff the
	// coefficients sum to zero — here they do by construction.
	var eq float64
	for i := range y {
		eq += alpha[i] * y[i]
	}
	if eq != 0 {
		t.Fatalf("sum alpha*y = %v, want 0", eq)
	}
}
