// Package model holds the output of SVM training — the support vectors,
// their coefficients, and the hyperplane threshold beta — and implements
// prediction and evaluation on held-out data.
//
// A trained classifier is f(x) = sign(sum_i alpha_i y_i Phi(sv_i, x) - beta),
// where beta follows the paper's convention: at termination
// beta = mean(gamma_i : i in I0) when I0 is non-empty, else
// (beta_low + beta_up)/2.
package model

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/kernel"
	"repro/internal/sparse"
)

// Model is a trained SVM: a binary classifier (the zero-value Task), an
// epsilon-SVR regressor, or a one-class anomaly detector. All three share
// the kernel expansion sum_i Coef_i*Phi(sv_i, x) - Beta; the task kind
// selects how that value is interpreted (sign, regression estimate, or
// anomaly margin).
type Model struct {
	Kernel kernel.Params
	C      float64 // box constraint used during training (informational)

	// Task is the QP kind this model solves; empty means TaskCSVC.
	Task Task
	// Epsilon is the SVR tube half-width (TaskSVR only).
	Epsilon float64
	// Nu is the one-class outlier-fraction bound (TaskOneClass only); the
	// training box was [0, 1/(nu*n)] and C records that bound.
	Nu float64

	// SV holds the support vectors (rows with alpha > 0).
	SV *sparse.Matrix
	// Coef[i] = alpha_i * y_i for support vector i.
	Coef []float64
	// Beta is the hyperplane threshold (libsvm's rho).
	Beta float64

	// W, when non-empty, is an explicit dense hyperplane: the decision
	// function is w'x - Beta, evaluated as a single sparse-dense dot with
	// no kernel sweep. Linear-kernel trainers (internal/linear) produce
	// such models directly; a model may also carry both W and a support
	// vector set, in which case W takes precedence everywhere and the
	// kernel path remains available for parity checks.
	W []float64

	// Training metadata, informational.
	TrainSamples int
	Iterations   int64

	// Platt calibration parameters for P(y=+1|f) = 1/(1+exp(ProbA*f+ProbB)),
	// fitted by internal/probability. HasProb reports whether they are set.
	ProbA, ProbB float64
	HasProb      bool

	svNormsCache []float64         // lazily computed support-vector squared norms
	svEval       *kernel.Evaluator // lazily built evaluator over the SV matrix
	predictPool  sync.Pool         // *predictState, per-call row-engine state
	packed       *PackedSVs        // optional dense predict-time layout (see Pack)
}

// predictState is the per-call state of the batched decision function: a
// sub-evaluator (independent eval counter over the shared SV matrix), a
// dense pivot scratch, and the kernel-row buffer K(x, sv_i). States are
// recycled through Model.predictPool so concurrent predictions never share
// mutable state yet allocate only on pool misses.
type predictState struct {
	ev  *kernel.Evaluator
	scr kernel.Scratch
	buf []float64
}

// acquirePredict returns a predictState for one decision-function call;
// release it with m.predictPool.Put. Follows the svNorm concurrency
// contract: lazy initialization is single-goroutine, WarmNorms makes
// subsequent concurrent calls safe.
func (m *Model) acquirePredict() *predictState {
	ev := m.svEvaluator()
	if st, _ := m.predictPool.Get().(*predictState); st != nil {
		return st
	}
	return &predictState{ev: ev.SubEvaluator(), buf: make([]float64, m.NumSV())}
}

// NumSV returns the number of support vectors.
func (m *Model) NumSV() int {
	if m.SV == nil {
		return 0
	}
	return m.SV.Rows()
}

// SVFraction returns |SV| / training samples — the quantity Figure 1 of the
// paper illustrates being small.
func (m *Model) SVFraction() float64 {
	if m.TrainSamples == 0 {
		return 0
	}
	return float64(m.NumSV()) / float64(m.TrainSamples)
}

// IsLinear reports whether the model carries an explicit dense hyperplane
// (the linear fast path applies).
func (m *Model) IsLinear() bool { return len(m.W) > 0 }

// FeatureDim returns the feature-space width prediction expects: the
// support-vector matrix's column count, or the hyperplane length for
// W-only linear models. Request rows with larger indices pair with
// implicit zeros on every path, so the width is a sizing hint, not a cap.
func (m *Model) FeatureDim() int {
	if m.SV != nil {
		return m.SV.Cols
	}
	return len(m.W)
}

// Validate checks structural invariants of the model. A model must carry a
// support-vector set, a dense hyperplane W, or both; whichever is present
// is validated.
func (m *Model) Validate() error {
	if m.SV == nil && !m.IsLinear() {
		return fmt.Errorf("model: nil support vector matrix and no dense hyperplane")
	}
	for j, v := range m.W {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("model: weight %d is %v", j, v)
		}
	}
	if m.SV == nil {
		if len(m.Coef) != 0 {
			return fmt.Errorf("model: %d coefficients with no support vector matrix", len(m.Coef))
		}
		if math.IsNaN(m.Beta) || math.IsInf(m.Beta, 0) {
			return fmt.Errorf("model: beta is %v", m.Beta)
		}
		if err := m.validateTask(); err != nil {
			return err
		}
		return m.Kernel.Validate()
	}
	if err := m.SV.Validate(); err != nil {
		return fmt.Errorf("model: SV matrix: %w", err)
	}
	if len(m.Coef) != m.SV.Rows() {
		return fmt.Errorf("model: %d coefficients for %d support vectors", len(m.Coef), m.SV.Rows())
	}
	for i, c := range m.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("model: coefficient %d is %v", i, c)
		}
		if c == 0 {
			return fmt.Errorf("model: coefficient %d is zero; support vectors must have alpha > 0", i)
		}
		if m.C > 0 && math.Abs(c) > m.C*(1+1e-9) {
			return fmt.Errorf("model: |coef[%d]| = %v exceeds C = %v", i, math.Abs(c), m.C)
		}
	}
	if math.IsNaN(m.Beta) || math.IsInf(m.Beta, 0) {
		return fmt.Errorf("model: beta is %v", m.Beta)
	}
	if err := m.validateTask(); err != nil {
		return err
	}
	return m.Kernel.Validate()
}

// DecisionValue returns the decision function for one sample row. A model
// carrying a dense hyperplane takes the linear fast path — one sparse-dense
// dot, no row engine, no per-call state. Otherwise the kernel
// sum_i coef_i*Phi(sv_i, x) - beta is evaluated through the batched row
// engine: x is scattered into a dense scratch once and the whole kernel row
// over the support vectors is gathered in one pass.
func (m *Model) DecisionValue(x sparse.Row) float64 {
	if m.IsLinear() {
		return sparse.DotDense(x, m.W) - m.Beta
	}
	return m.KernelDecisionValue(x)
}

// KernelDecisionValue evaluates the support-vector kernel path even when a
// dense hyperplane is present — the parity reference the linear fast path
// is tested against (for a linear kernel, w = sum_i coef_i*sv_i makes the
// two mathematically identical).
func (m *Model) KernelDecisionValue(x sparse.Row) float64 {
	if m.NumSV() == 0 {
		return -m.Beta
	}
	st := m.acquirePredict()
	f := m.decisionWith(st, x)
	m.predictPool.Put(st)
	return f
}

// decisionWith scores one row using borrowed per-call state. When the dense
// predict-time layout is built (Pack), the kernel row comes from the packed
// block — bit-identical to the row engine, so every caller sees one path's
// numbers regardless of packing.
func (m *Model) decisionWith(st *predictState, x sparse.Row) float64 {
	if p := m.packed; p != nil {
		return p.decision(x, m.Coef, m.Beta, st.buf)
	}
	st.ev.RowRangeInto(&st.scr, x, kernel.SquaredNormOf(x), 0, len(m.Coef), st.buf)
	var s float64
	for i, c := range m.Coef {
		s += c * st.buf[i]
	}
	return s - m.Beta
}

// svEvaluator returns the kernel evaluator bound to the support-vector
// matrix, building it (and the norm cache) on first use. Lazy
// initialization is single-goroutine, like svNormsCache always was;
// callers that predict concurrently call WarmNorms first.
func (m *Model) svEvaluator() *kernel.Evaluator {
	if m.svEval == nil {
		m.WarmNorms()
	}
	return m.svEval
}

// WarmNorms precomputes the support-vector norm cache and the evaluator
// behind the batched decision function, so that subsequent DecisionValue
// calls are safe to issue from multiple goroutines.
func (m *Model) WarmNorms() {
	if m.SV == nil {
		return
	}
	if m.svNormsCache == nil {
		m.svNormsCache = m.SV.SquaredNorms()
	}
	if m.svEval == nil {
		m.svEval = kernel.NewEvaluatorWithNorms(m.Kernel, m.SV, m.svNormsCache)
	}
}

// SVTrainingSet reinterprets the support-vector set as a standalone
// training problem: the SV rows, the labels y_i = sign(coef_i) and the
// dual variables alpha_i = |coef_i| (coef_i = alpha_i*y_i with alpha_i > 0,
// so both are recovered exactly). Divide-and-conquer training coalesces
// per-cluster sub-solutions this way: the union of the returned sets forms
// the next level's warm-started problem, and the union satisfies the dual
// equality constraint sum_i alpha_i*y_i = 0 because each sub-solution does.
func (m *Model) SVTrainingSet() (x *sparse.Matrix, y, alpha []float64) {
	n := m.NumSV()
	y = make([]float64, n)
	alpha = make([]float64, n)
	for i, c := range m.Coef {
		if c >= 0 {
			y[i], alpha[i] = 1, c
		} else {
			y[i], alpha[i] = -1, -c
		}
	}
	return m.SV, y, alpha
}

// Probability returns the calibrated P(y=+1 | x) and true, or (0, false)
// when the model carries no Platt parameters.
func (m *Model) Probability(x sparse.Row) (float64, bool) {
	if !m.HasProb {
		return 0, false
	}
	return m.probFromDecision(m.DecisionValue(x)), true
}

// ProbabilityFromDecision maps an already-computed decision value through
// the model's Platt sigmoid. Batch callers (the inference server) compute
// decision values once via DecisionValues and derive label + probability
// from them without re-evaluating kernels.
func (m *Model) ProbabilityFromDecision(f float64) (float64, bool) {
	if !m.HasProb {
		return 0, false
	}
	return m.probFromDecision(f), true
}

func (m *Model) probFromDecision(f float64) float64 {
	fApB := m.ProbA*f + m.ProbB
	if fApB >= 0 {
		e := math.Exp(-fApB)
		return e / (1 + e)
	}
	return 1 / (1 + math.Exp(fApB))
}

// Predict classifies one sample, returning +1 or -1.
func (m *Model) Predict(x sparse.Row) float64 {
	if m.DecisionValue(x) >= 0 {
		return 1
	}
	return -1
}

// PredictAll classifies every row of x.
func (m *Model) PredictAll(x *sparse.Matrix) []float64 {
	out := make([]float64, x.Rows())
	for i := range out {
		out[i] = m.Predict(x.RowView(i))
	}
	return out
}

// Metrics summarizes classification quality on a labeled set.
type Metrics struct {
	Total    int
	Correct  int
	TP, TN   int
	FP, FN   int
	Accuracy float64 // percent, matching the paper's Table V convention
}

// Evaluate computes accuracy metrics of the model on (x, y) with labels
// in {+1, -1}.
func (m *Model) Evaluate(x *sparse.Matrix, y []float64) (Metrics, error) {
	if x.Rows() != len(y) {
		return Metrics{}, fmt.Errorf("model: %d rows but %d labels", x.Rows(), len(y))
	}
	var mt Metrics
	mt.Total = x.Rows()
	for i := 0; i < x.Rows(); i++ {
		pred := m.Predict(x.RowView(i))
		switch {
		case pred > 0 && y[i] > 0:
			mt.TP++
		case pred < 0 && y[i] < 0:
			mt.TN++
		case pred > 0 && y[i] < 0:
			mt.FP++
		default:
			mt.FN++
		}
	}
	mt.Correct = mt.TP + mt.TN
	if mt.Total > 0 {
		mt.Accuracy = 100 * float64(mt.Correct) / float64(mt.Total)
	}
	return mt, nil
}
