package model

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/kernel"
	"repro/internal/sparse"
)

// The on-disk format is a libsvm-inspired text format:
//
//	svm_type c_svc
//	kernel_type rbf
//	gamma 0.0078125
//	coef0 0            (polynomial/sigmoid only)
//	degree 3           (polynomial only)
//	C 32
//	beta -0.137
//	train_samples 26000
//	iterations 812345
//	total_sv 412
//	SV
//	<coef> <idx>:<val> <idx>:<val> ...     (1-based feature indices)
//
// It is human-inspectable, diff-friendly, and close enough to libsvm's
// model files that the correspondence is obvious.
//
// Models carrying a dense hyperplane (the linear fast path) additionally
// write, as format version 1 of the W extension,
//
//	w_format 1
//	w_dim <d>
//	w_crc <crc32c>
//	...
//	SV
//	<sv lines, possibly none>
//	W
//	<idx>:<val> <idx>:<val> ...            (1-based, nonzeros, ascending)
//
// The checksum is CRC-32C over the canonical little-endian encoding of
// (dim, then each (uint32 index, float64 bits) pair in ascending index
// order), so a corrupted, truncated or reordered W section is rejected at
// load time; svmserve/svmpredict hot-load linear models through the same
// loader. Readers reject w_format values they do not know.

// Write serializes the model to w.
func (m *Model) Write(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "svm_type %s\n", m.TaskKind())
	if m.TaskKind() != TaskCSVC {
		// Task extension, format version 1: the parameters that change the
		// meaning of the kernel expansion, sealed by a checksum over
		// (kind, epsilon, nu) so a corrupted or spliced task section is
		// rejected at load time — same discipline as the W section.
		fmt.Fprintln(bw, "task_format 1")
		switch m.TaskKind() {
		case TaskSVR:
			fmt.Fprintf(bw, "svr_epsilon %v\n", m.Epsilon)
		case TaskOneClass:
			fmt.Fprintf(bw, "nu %v\n", m.Nu)
		}
		fmt.Fprintf(bw, "task_crc %d\n", taskChecksum(m.TaskKind(), m.Epsilon, m.Nu))
	}
	fmt.Fprintf(bw, "kernel_type %s\n", m.Kernel.Type)
	switch m.Kernel.Type {
	case kernel.Gaussian:
		fmt.Fprintf(bw, "gamma %v\n", m.Kernel.Gamma)
	case kernel.Polynomial:
		fmt.Fprintf(bw, "gamma %v\n", m.Kernel.Gamma)
		fmt.Fprintf(bw, "coef0 %v\n", m.Kernel.Coef0)
		fmt.Fprintf(bw, "degree %d\n", m.Kernel.Degree)
	case kernel.Sigmoid:
		fmt.Fprintf(bw, "gamma %v\n", m.Kernel.Gamma)
		fmt.Fprintf(bw, "coef0 %v\n", m.Kernel.Coef0)
	}
	fmt.Fprintf(bw, "C %v\n", m.C)
	fmt.Fprintf(bw, "beta %v\n", m.Beta)
	if m.HasProb {
		fmt.Fprintf(bw, "prob_a %v\n", m.ProbA)
		fmt.Fprintf(bw, "prob_b %v\n", m.ProbB)
	}
	fmt.Fprintf(bw, "train_samples %d\n", m.TrainSamples)
	fmt.Fprintf(bw, "iterations %d\n", m.Iterations)
	if m.IsLinear() {
		idx, val := packW(m.W)
		fmt.Fprintln(bw, "w_format 1")
		fmt.Fprintf(bw, "w_dim %d\n", len(m.W))
		fmt.Fprintf(bw, "w_crc %d\n", wChecksum(len(m.W), idx, val))
	}
	fmt.Fprintf(bw, "total_sv %d\n", m.NumSV())
	fmt.Fprintln(bw, "SV")
	for i := 0; i < m.NumSV(); i++ {
		fmt.Fprintf(bw, "%v", m.Coef[i])
		r := m.SV.RowView(i)
		for k, c := range r.Idx {
			fmt.Fprintf(bw, " %d:%v", c+1, r.Val[k])
		}
		fmt.Fprintln(bw)
	}
	if m.IsLinear() {
		fmt.Fprintln(bw, "W")
		idx, val := packW(m.W)
		for k, c := range idx {
			if k > 0 {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprintf(bw, "%d:%v", c+1, val[k])
		}
		if len(idx) > 0 {
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// packW extracts the nonzero entries of a dense hyperplane in ascending
// index order — the canonical form both the text encoding and the checksum
// are defined over.
func packW(w []float64) (idx []int32, val []float64) {
	for j, v := range w {
		if v != 0 {
			idx = append(idx, int32(j))
			val = append(val, v)
		}
	}
	return idx, val
}

var wCRCTable = crc32.MakeTable(crc32.Castagnoli)

// wChecksum is CRC-32C over the canonical little-endian encoding of a
// hyperplane: uint64 dim, then (uint32 index, float64 bits) per nonzero in
// ascending index order.
func wChecksum(dim int, idx []int32, val []float64) uint32 {
	h := crc32.New(wCRCTable)
	var b [12]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(dim))
	h.Write(b[:8])
	for k := range idx {
		binary.LittleEndian.PutUint32(b[:4], uint32(idx[k]))
		binary.LittleEndian.PutUint64(b[4:12], math.Float64bits(val[k]))
		h.Write(b[:12])
	}
	return h.Sum32()
}

// wHeader accumulates the W-extension header keys during parsing.
type wHeader struct {
	dim    int // -1 = no W extension declared
	crc    uint32
	hasCRC bool
}

// taskChecksum is CRC-32C over the canonical little-endian encoding of the
// task parameters: the kind string, then the float64 bits of epsilon and nu.
func taskChecksum(t Task, epsilon, nu float64) uint32 {
	h := crc32.New(wCRCTable)
	h.Write([]byte(t))
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], math.Float64bits(epsilon))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(nu))
	h.Write(b[:])
	return h.Sum32()
}

// taskHeader accumulates the task-extension header keys during parsing.
type taskHeader struct {
	sawFormat bool
	crc       uint32
	hasCRC    bool
}

// verifyTask enforces the task-extension contract after the header is
// parsed: non-classifier models must declare the versioned section and a
// checksum matching the parsed parameters; classifiers must not carry one.
func verifyTask(m *Model, th *taskHeader) error {
	if m.TaskKind() == TaskCSVC {
		if th.sawFormat || th.hasCRC {
			return fmt.Errorf("model: task extension headers on a c_svc model")
		}
		return nil
	}
	if !th.sawFormat {
		return fmt.Errorf("model: svm_type %s without task_format header", m.TaskKind())
	}
	if !th.hasCRC {
		return fmt.Errorf("model: svm_type %s without task_crc header", m.TaskKind())
	}
	if got := taskChecksum(m.TaskKind(), m.Epsilon, m.Nu); got != th.crc {
		return fmt.Errorf("model: task checksum mismatch: file declares %d, parameters hash to %d (corrupted model file)", th.crc, got)
	}
	return nil
}

// Read parses a model previously written by Write.
func Read(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	m := &Model{}
	totalSV := -1
	wh := wHeader{dim: -1}
	var th taskHeader
	inHeader := true
	inW := false
	var wIdx []int32
	var wVal []float64
	b := sparse.NewBuilder(0)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if inHeader {
			if line == "SV" {
				inHeader = false
				continue
			}
			key, val, ok := strings.Cut(line, " ")
			if !ok {
				return nil, fmt.Errorf("model: malformed header line %q", line)
			}
			if err := parseHeader(m, &totalSV, &wh, &th, key, val); err != nil {
				return nil, err
			}
			continue
		}
		if line == "W" {
			if inW {
				return nil, fmt.Errorf("model: duplicate W section")
			}
			inW = true
			continue
		}
		if inW {
			if err := parseWLine(line, &wIdx, &wVal); err != nil {
				return nil, err
			}
			continue
		}
		coef, row, err := parseSVLine(line)
		if err != nil {
			return nil, err
		}
		m.Coef = append(m.Coef, coef)
		b.AddRow(row.Idx, row.Val)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("model: read: %w", err)
	}
	if inHeader {
		return nil, fmt.Errorf("model: missing SV section")
	}
	if err := verifyTask(m, &th); err != nil {
		return nil, err
	}
	m.SV = b.Build()
	if totalSV >= 0 && m.SV.Rows() != totalSV {
		return nil, fmt.Errorf("model: header declared %d SVs, found %d", totalSV, m.SV.Rows())
	}
	if wh.dim >= 0 || inW {
		w, err := buildW(wh, inW, wIdx, wVal)
		if err != nil {
			return nil, err
		}
		m.W = w
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// buildW reconstructs the dense hyperplane from the parsed W section and
// verifies it against the declared checksum. Header and section must both
// be present, indices ascending and in range, and the CRC must match —
// anything else is a corrupted or truncated file.
func buildW(wh wHeader, sawSection bool, idx []int32, val []float64) ([]float64, error) {
	if wh.dim < 0 {
		return nil, fmt.Errorf("model: W section without w_dim header")
	}
	if !sawSection {
		return nil, fmt.Errorf("model: w_dim declared but W section missing")
	}
	if !wh.hasCRC {
		return nil, fmt.Errorf("model: w_dim declared but w_crc header missing")
	}
	if wh.dim == 0 {
		return nil, fmt.Errorf("model: w_dim must be positive")
	}
	w := make([]float64, wh.dim)
	prev := int32(-1)
	for k, c := range idx {
		if c <= prev {
			return nil, fmt.Errorf("model: W indices not strictly ascending at entry %d", k)
		}
		if int(c) >= wh.dim {
			return nil, fmt.Errorf("model: W index %d out of range [1,%d]", c+1, wh.dim)
		}
		w[c] = val[k]
		prev = c
	}
	if got := wChecksum(wh.dim, idx, val); got != wh.crc {
		return nil, fmt.Errorf("model: W checksum mismatch: file declares %d, contents hash to %d (corrupted model file)", wh.crc, got)
	}
	return w, nil
}

// parseWLine appends the idx:val entries of one W-section line.
func parseWLine(line string, idx *[]int32, val *[]float64) error {
	for _, f := range strings.Fields(line) {
		idxStr, valStr, ok := strings.Cut(f, ":")
		if !ok {
			return fmt.Errorf("model: malformed W entry %q", f)
		}
		i, err := strconv.Atoi(idxStr)
		if err != nil || i < 1 {
			return fmt.Errorf("model: W index %q", idxStr)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("model: W value %q: %w", valStr, err)
		}
		*idx = append(*idx, int32(i-1))
		*val = append(*val, v)
	}
	return nil
}

func parseHeader(m *Model, totalSV *int, wh *wHeader, th *taskHeader, key, val string) error {
	switch key {
	case "task_format":
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("model: task_format: %w", err)
		}
		if v != 1 {
			return fmt.Errorf("model: unsupported task_format %d (this reader knows version 1)", v)
		}
		th.sawFormat = true
	case "task_crc":
		c, err := strconv.ParseUint(val, 10, 32)
		if err != nil {
			return fmt.Errorf("model: task_crc: %w", err)
		}
		th.crc = uint32(c)
		th.hasCRC = true
	case "svr_epsilon":
		return parseF(val, &m.Epsilon)
	case "nu":
		return parseF(val, &m.Nu)
	case "w_format":
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("model: w_format: %w", err)
		}
		if v != 1 {
			return fmt.Errorf("model: unsupported w_format %d (this reader knows version 1)", v)
		}
	case "w_dim":
		d, err := strconv.Atoi(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("model: w_dim %q", val)
		}
		wh.dim = d
	case "w_crc":
		c, err := strconv.ParseUint(val, 10, 32)
		if err != nil {
			return fmt.Errorf("model: w_crc: %w", err)
		}
		wh.crc = uint32(c)
		wh.hasCRC = true
	case "svm_type":
		t, err := ParseTask(val)
		if err != nil {
			return fmt.Errorf("model: unsupported svm_type %q", val)
		}
		m.Task = t
	case "kernel_type":
		t, err := kernel.ParseType(val)
		if err != nil {
			return err
		}
		m.Kernel.Type = t
	case "gamma":
		return parseF(val, &m.Kernel.Gamma)
	case "coef0":
		return parseF(val, &m.Kernel.Coef0)
	case "degree":
		d, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("model: degree: %w", err)
		}
		m.Kernel.Degree = d
	case "C":
		return parseF(val, &m.C)
	case "beta", "rho":
		return parseF(val, &m.Beta)
	case "prob_a":
		m.HasProb = true
		return parseF(val, &m.ProbA)
	case "prob_b":
		m.HasProb = true
		return parseF(val, &m.ProbB)
	case "train_samples":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("model: train_samples: %w", err)
		}
		m.TrainSamples = n
	case "iterations":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("model: iterations: %w", err)
		}
		m.Iterations = n
	case "total_sv":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("model: total_sv: %w", err)
		}
		*totalSV = n
	default:
		return fmt.Errorf("model: unknown header key %q", key)
	}
	return nil
}

func parseF(s string, out *float64) error {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("model: parse float %q: %w", s, err)
	}
	*out = v
	return nil
}

func parseSVLine(line string) (float64, sparse.Row, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return 0, sparse.Row{}, fmt.Errorf("model: empty SV line")
	}
	coef, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, sparse.Row{}, fmt.Errorf("model: SV coefficient %q: %w", fields[0], err)
	}
	var row sparse.Row
	for _, f := range fields[1:] {
		idxStr, valStr, ok := strings.Cut(f, ":")
		if !ok {
			return 0, sparse.Row{}, fmt.Errorf("model: malformed feature %q", f)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 1 {
			return 0, sparse.Row{}, fmt.Errorf("model: feature index %q", idxStr)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return 0, sparse.Row{}, fmt.Errorf("model: feature value %q: %w", valStr, err)
		}
		row.Idx = append(row.Idx, int32(idx-1))
		row.Val = append(row.Val, val)
	}
	return coef, row, nil
}

// Save writes the model to a file.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a model from a file.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
