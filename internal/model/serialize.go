package model

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/kernel"
	"repro/internal/sparse"
)

// The on-disk format is a libsvm-inspired text format:
//
//	svm_type c_svc
//	kernel_type rbf
//	gamma 0.0078125
//	coef0 0            (polynomial/sigmoid only)
//	degree 3           (polynomial only)
//	C 32
//	beta -0.137
//	train_samples 26000
//	iterations 812345
//	total_sv 412
//	SV
//	<coef> <idx>:<val> <idx>:<val> ...     (1-based feature indices)
//
// It is human-inspectable, diff-friendly, and close enough to libsvm's
// model files that the correspondence is obvious.

// Write serializes the model to w.
func (m *Model) Write(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "svm_type c_svc")
	fmt.Fprintf(bw, "kernel_type %s\n", m.Kernel.Type)
	switch m.Kernel.Type {
	case kernel.Gaussian:
		fmt.Fprintf(bw, "gamma %v\n", m.Kernel.Gamma)
	case kernel.Polynomial:
		fmt.Fprintf(bw, "gamma %v\n", m.Kernel.Gamma)
		fmt.Fprintf(bw, "coef0 %v\n", m.Kernel.Coef0)
		fmt.Fprintf(bw, "degree %d\n", m.Kernel.Degree)
	case kernel.Sigmoid:
		fmt.Fprintf(bw, "gamma %v\n", m.Kernel.Gamma)
		fmt.Fprintf(bw, "coef0 %v\n", m.Kernel.Coef0)
	}
	fmt.Fprintf(bw, "C %v\n", m.C)
	fmt.Fprintf(bw, "beta %v\n", m.Beta)
	if m.HasProb {
		fmt.Fprintf(bw, "prob_a %v\n", m.ProbA)
		fmt.Fprintf(bw, "prob_b %v\n", m.ProbB)
	}
	fmt.Fprintf(bw, "train_samples %d\n", m.TrainSamples)
	fmt.Fprintf(bw, "iterations %d\n", m.Iterations)
	fmt.Fprintf(bw, "total_sv %d\n", m.NumSV())
	fmt.Fprintln(bw, "SV")
	for i := 0; i < m.NumSV(); i++ {
		fmt.Fprintf(bw, "%v", m.Coef[i])
		r := m.SV.RowView(i)
		for k, c := range r.Idx {
			fmt.Fprintf(bw, " %d:%v", c+1, r.Val[k])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Read parses a model previously written by Write.
func Read(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	m := &Model{}
	totalSV := -1
	inHeader := true
	b := sparse.NewBuilder(0)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if inHeader {
			if line == "SV" {
				inHeader = false
				continue
			}
			key, val, ok := strings.Cut(line, " ")
			if !ok {
				return nil, fmt.Errorf("model: malformed header line %q", line)
			}
			if err := parseHeader(m, &totalSV, key, val); err != nil {
				return nil, err
			}
			continue
		}
		coef, row, err := parseSVLine(line)
		if err != nil {
			return nil, err
		}
		m.Coef = append(m.Coef, coef)
		b.AddRow(row.Idx, row.Val)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("model: read: %w", err)
	}
	if inHeader {
		return nil, fmt.Errorf("model: missing SV section")
	}
	m.SV = b.Build()
	if totalSV >= 0 && m.SV.Rows() != totalSV {
		return nil, fmt.Errorf("model: header declared %d SVs, found %d", totalSV, m.SV.Rows())
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func parseHeader(m *Model, totalSV *int, key, val string) error {
	switch key {
	case "svm_type":
		if val != "c_svc" {
			return fmt.Errorf("model: unsupported svm_type %q", val)
		}
	case "kernel_type":
		t, err := kernel.ParseType(val)
		if err != nil {
			return err
		}
		m.Kernel.Type = t
	case "gamma":
		return parseF(val, &m.Kernel.Gamma)
	case "coef0":
		return parseF(val, &m.Kernel.Coef0)
	case "degree":
		d, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("model: degree: %w", err)
		}
		m.Kernel.Degree = d
	case "C":
		return parseF(val, &m.C)
	case "beta", "rho":
		return parseF(val, &m.Beta)
	case "prob_a":
		m.HasProb = true
		return parseF(val, &m.ProbA)
	case "prob_b":
		m.HasProb = true
		return parseF(val, &m.ProbB)
	case "train_samples":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("model: train_samples: %w", err)
		}
		m.TrainSamples = n
	case "iterations":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("model: iterations: %w", err)
		}
		m.Iterations = n
	case "total_sv":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("model: total_sv: %w", err)
		}
		*totalSV = n
	default:
		return fmt.Errorf("model: unknown header key %q", key)
	}
	return nil
}

func parseF(s string, out *float64) error {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("model: parse float %q: %w", s, err)
	}
	*out = v
	return nil
}

func parseSVLine(line string) (float64, sparse.Row, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return 0, sparse.Row{}, fmt.Errorf("model: empty SV line")
	}
	coef, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, sparse.Row{}, fmt.Errorf("model: SV coefficient %q: %w", fields[0], err)
	}
	var row sparse.Row
	for _, f := range fields[1:] {
		idxStr, valStr, ok := strings.Cut(f, ":")
		if !ok {
			return 0, sparse.Row{}, fmt.Errorf("model: malformed feature %q", f)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 1 {
			return 0, sparse.Row{}, fmt.Errorf("model: feature index %q", idxStr)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return 0, sparse.Row{}, fmt.Errorf("model: feature value %q: %w", valStr, err)
		}
		row.Idx = append(row.Idx, int32(idx-1))
		row.Val = append(row.Val, val)
	}
	return coef, row, nil
}

// Save writes the model to a file.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a model from a file.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
