package model

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/sparse"
)

// svrModel builds a tiny SVR model by hand: d = +1 at x=+1, d = -1 at x=-1.
func svrModel() *Model {
	return &Model{
		Kernel:       kernel.Params{Type: kernel.Gaussian, Gamma: 1},
		C:            10,
		Task:         TaskSVR,
		Epsilon:      0.25,
		SV:           sparse.FromDense([][]float64{{-1}, {1}}),
		Coef:         []float64{-1, 1},
		Beta:         0.5,
		TrainSamples: 10,
	}
}

func oneClassModel() *Model {
	return &Model{
		Kernel:       kernel.Params{Type: kernel.Gaussian, Gamma: 1},
		C:            0.5,
		Task:         TaskOneClass,
		Nu:           0.4,
		SV:           sparse.FromDense([][]float64{{-1}, {1}}),
		Coef:         []float64{0.5, 0.5},
		Beta:         0.3,
		TrainSamples: 5,
	}
}

func TestTaskRoundTrip(t *testing.T) {
	for _, m := range []*Model{svrModel(), oneClassModel()} {
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			t.Fatalf("%s: write: %v", m.TaskKind(), err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read: %v", m.TaskKind(), err)
		}
		if got.TaskKind() != m.TaskKind() || got.Epsilon != m.Epsilon || got.Nu != m.Nu {
			t.Fatalf("%s: round-trip (task=%s eps=%v nu=%v)", m.TaskKind(), got.TaskKind(), got.Epsilon, got.Nu)
		}
		if got.ContentHash() != m.ContentHash() {
			t.Fatalf("%s: content hash changed across round-trip", m.TaskKind())
		}
	}
}

// TestTaskTamperRejected flips task parameters in the serialized text and
// checks the CRC seal rejects the file.
func TestTaskTamperRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := svrModel().Write(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	cases := map[string]string{
		"epsilon edited":   strings.Replace(text, "svr_epsilon 0.25", "svr_epsilon 0.5", 1),
		"kind spliced":     strings.Replace(text, "svm_type epsilon_svr", "svm_type one_class", 1),
		"epsilon dropped":  strings.Replace(text, "svr_epsilon 0.25\n", "", 1),
		"crc line dropped": dropLine(text, "task_crc"),
		"format dropped":   dropLine(text, "task_format"),
	}
	for name, tampered := range cases {
		if tampered == text {
			t.Fatalf("%s: tamper did not change the file", name)
		}
		if _, err := Read(strings.NewReader(tampered)); err == nil {
			t.Errorf("%s: tampered model accepted", name)
		}
	}
	// A c_svc model that grows task headers is also rejected.
	var cbuf bytes.Buffer
	if err := handModel().Write(&cbuf); err != nil {
		t.Fatal(err)
	}
	spliced := strings.Replace(cbuf.String(), "svm_type c_svc\n", "svm_type c_svc\ntask_format 1\n", 1)
	if _, err := Read(strings.NewReader(spliced)); err == nil {
		t.Error("c_svc with task headers accepted")
	}
}

func dropLine(text, prefix string) string {
	lines := strings.Split(text, "\n")
	out := lines[:0]
	for _, l := range lines {
		if !strings.HasPrefix(l, prefix) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

func TestTaskValidate(t *testing.T) {
	bad := []func(*Model){
		func(m *Model) { m.Epsilon = 0 },
		func(m *Model) { m.Epsilon = -1 },
		func(m *Model) { m.Nu = 0.5 },
		func(m *Model) { m.Task = "weird" },
	}
	for i, mut := range bad {
		m := svrModel()
		mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("svr mutation %d accepted", i)
		}
	}
	oc := oneClassModel()
	oc.Nu = 1.5
	if err := oc.Validate(); err == nil {
		t.Error("nu > 1 accepted")
	}
	oc = oneClassModel()
	oc.Coef[0] = -0.5
	if err := oc.Validate(); err == nil {
		t.Error("negative one-class coef accepted")
	}
	cl := handModel()
	cl.Epsilon = 0.1
	if err := cl.Validate(); err == nil {
		t.Error("classifier with epsilon accepted")
	}
}

func TestRegressionAndAnomalyPaths(t *testing.T) {
	m := svrModel()
	x := sparse.FromDense([][]float64{{0}}).RowView(0)
	// z(0) = -K(-1,0) + K(1,0) - 0.5 = -0.5 by symmetry.
	if v := m.PredictRegression(x); math.Abs(v+0.5) > 1e-12 {
		t.Fatalf("z(0) = %v, want -0.5", v)
	}
	xs := sparse.FromDense([][]float64{{-1}, {1}})
	z := []float64{m.PredictRegression(xs.RowView(0)), m.PredictRegression(xs.RowView(1))}
	mt, err := m.EvaluateRegression(xs, z)
	if err != nil {
		t.Fatal(err)
	}
	if mt.MSE > 1e-24 || mt.MAE > 1e-12 || mt.R2 < 1-1e-12 {
		t.Fatalf("self-evaluation metrics = %+v", mt)
	}
	if _, err := m.EvaluateRegression(xs, z[:1]); err == nil {
		t.Fatal("mismatched targets accepted")
	}

	oc := oneClassModel()
	// score(0) = 0.5*K(-1,0) + 0.5*K(1,0) - 0.3 = exp(-1) - 0.3 > 0: inlier.
	x0 := sparse.FromDense([][]float64{{0}}).RowView(0)
	if oc.PredictAnomaly(x0) != 1 {
		t.Fatalf("origin not an inlier (score %v)", oc.AnomalyScore(x0))
	}
	// score(5) ~ -0.3 < 0: outlier.
	x5 := sparse.FromDense([][]float64{{5}}).RowView(0)
	if oc.PredictAnomaly(x5) != -1 {
		t.Fatalf("far point not an outlier (score %v)", oc.AnomalyScore(x5))
	}
}

func TestContentHashSensitivity(t *testing.T) {
	base := svrModel().ContentHash()
	m := svrModel()
	m.Epsilon = 0.26
	if m.ContentHash() == base {
		t.Error("epsilon change did not move the hash")
	}
	m = svrModel()
	m.Coef[0] = -0.9
	if m.ContentHash() == base {
		t.Error("coef change did not move the hash")
	}
	m = svrModel()
	m.Beta = 0
	if m.ContentHash() == base {
		t.Error("beta change did not move the hash")
	}
}
