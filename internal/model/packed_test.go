package model

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/sparse"
)

// randSparse builds an n x cols CSR matrix with the given density, values
// in [-1, 1), deterministic under seed.
func randSparse(n, cols int, density float64, seed int64) *sparse.Matrix {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(cols)
	for i := 0; i < n; i++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				b.Add(c, 2*rng.Float64()-1)
			}
		}
		b.EndRow()
	}
	return b.Build()
}

// packedPair builds two structurally identical kernel models over the same
// support vectors, packing only the second.
func packedPair(t *testing.T, kp kernel.Params, n, cols int, density float64) (plain, packed *Model) {
	t.Helper()
	sv := randSparse(n, cols, density, 7)
	coef := make([]float64, n)
	rng := rand.New(rand.NewSource(8))
	for i := range coef {
		coef[i] = 2*rng.Float64() - 1
		if coef[i] == 0 {
			coef[i] = 0.5
		}
	}
	mk := func() *Model {
		return &Model{Kernel: kp, C: 10, SV: sv, Coef: coef, Beta: 0.31}
	}
	plain, packed = mk(), mk()
	if !packed.Pack(0) {
		t.Fatalf("Pack refused a %dx%d model under the default budget", n, cols)
	}
	if !packed.IsPacked() || packed.PackedBytes() < int64(n*cols*8) {
		t.Fatalf("packed state: IsPacked=%v bytes=%d want >= %d", packed.IsPacked(), packed.PackedBytes(), n*cols*8)
	}
	return plain, packed
}

// TestPackedBitIdentical is the acceptance check: the packed dense block
// must reproduce the pooled row-engine path bit for bit, for every kernel
// family, on single and batched predictions, including query rows whose
// indices reach past the packed width.
func TestPackedBitIdentical(t *testing.T) {
	kernels := []kernel.Params{
		{Type: kernel.Gaussian, Gamma: 0.5},
		{Type: kernel.Linear},
		{Type: kernel.Polynomial, Gamma: 0.25, Coef0: 1, Degree: 3},
		{Type: kernel.Sigmoid, Gamma: 0.1, Coef0: -0.2},
	}
	// density 0.3 exercises the column-compressed scatter strategy,
	// 0.8 the unit-stride dense column stream.
	for _, density := range []float64{0.3, 0.8} {
		for _, kp := range kernels {
			t.Run(fmt.Sprintf("%s/density=%.1f", kp, density), func(t *testing.T) {
				plain, packed := packedPair(t, kp, 117, 63, density)
				// Queries wider than the SV matrix: the extra columns must pair
				// with implicit zeros, like the row engine's scratch fallback.
				q := randSparse(200, 80, density, 99)
				for i := 0; i < q.Rows(); i++ {
					row := q.RowView(i)
					a, b := plain.DecisionValue(row), packed.DecisionValue(row)
					if math.Float64bits(a) != math.Float64bits(b) {
						t.Fatalf("row %d: plain %v (%x) != packed %v (%x)",
							i, a, math.Float64bits(a), b, math.Float64bits(b))
					}
				}
				for _, workers := range []int{1, 4} {
					da, db := plain.DecisionValues(q, workers), packed.DecisionValues(q, workers)
					for i := range da {
						if math.Float64bits(da[i]) != math.Float64bits(db[i]) {
							t.Fatalf("workers=%d row %d: plain %v != packed %v", workers, i, da[i], db[i])
						}
					}
				}
			})
		}
	}
}

// TestDecisionValuesRowsParity: the matrix-free batch entry point used by
// the request coalescer must agree bit for bit with the per-row path, on
// both the pooled-engine and packed layouts, serial and parallel.
func TestDecisionValuesRowsParity(t *testing.T) {
	plain, packed := packedPair(t, kernel.Params{Type: kernel.Gaussian, Gamma: 0.5}, 117, 63, 0.3)
	q := randSparse(200, 80, 0.3, 41)
	rows := make([]sparse.Row, q.Rows())
	for i := range rows {
		rows[i] = q.RowView(i)
	}
	for _, m := range []*Model{plain, packed} {
		for _, workers := range []int{1, 4} {
			got := m.DecisionValuesRows(rows, workers)
			if len(got) != len(rows) {
				t.Fatalf("workers=%d: %d values for %d rows", workers, len(got), len(rows))
			}
			for i, r := range rows {
				want := m.DecisionValue(r)
				if math.Float64bits(got[i]) != math.Float64bits(want) {
					t.Fatalf("packed=%v workers=%d row %d: got %v want %v", m.IsPacked(), workers, i, got[i], want)
				}
			}
		}
	}
	if got := plain.DecisionValuesRows(nil, 2); len(got) != 0 {
		t.Fatalf("nil rows: got %d values", len(got))
	}
	empty := &Model{Kernel: kernel.Params{Type: kernel.Gaussian, Gamma: 1}, Beta: 0.25}
	for i, v := range empty.DecisionValuesRows(rows[:3], 1) {
		if v != -0.25 {
			t.Fatalf("empty model row %d: got %v want -0.25", i, v)
		}
	}
}

func TestPackBudgetGate(t *testing.T) {
	sv := randSparse(32, 16, 0.5, 3)
	m := &Model{Kernel: kernel.Params{Type: kernel.Gaussian, Gamma: 1}, SV: sv, Coef: make([]float64, 32), Beta: 0}
	for i := range m.Coef {
		m.Coef[i] = 1
	}
	if m.Pack(32*16*8 - 1) {
		t.Fatal("Pack accepted a model one byte over budget")
	}
	if m.IsPacked() {
		t.Fatal("failed Pack left packed state behind")
	}
	if !m.Pack(32 * 16 * 8) {
		t.Fatal("Pack refused a model exactly at budget")
	}
	if !m.Pack(1) {
		t.Fatal("Pack must be idempotent once packed")
	}
}

func TestPackSkipsLinearAndEmpty(t *testing.T) {
	lin := &Model{Kernel: kernel.Params{Type: kernel.Linear}, W: []float64{1, 2, 3}, Beta: 0}
	if lin.Pack(0) {
		t.Fatal("Pack accepted a W-only linear model")
	}
	empty := &Model{Kernel: kernel.Params{Type: kernel.Gaussian, Gamma: 1}}
	if empty.Pack(0) {
		t.Fatal("Pack accepted a model with no support vectors")
	}
}

// BenchmarkPackedVsEngine measures the packed layout against the pooled row
// engine on an mnist38-shaped model (784 columns, ~19% density, scatter
// strategy) and a forest-shaped one (54 columns, 90% density, dense column
// stream). Run with -bench PackedVsEngine.
func BenchmarkPackedVsEngine(b *testing.B) {
	kp := kernel.Params{Type: kernel.Gaussian, Gamma: 1.0 / 50}
	for _, shape := range []struct {
		name      string
		svs, cols int
		density   float64
	}{
		{"mnist38", 500, 784, 0.19},
		{"forest", 500, 54, 0.9},
	} {
		sv := randSparse(shape.svs, shape.cols, shape.density, 7)
		coef := make([]float64, shape.svs)
		for i := range coef {
			coef[i] = 0.5
		}
		q := randSparse(256, shape.cols, shape.density, 9)
		mk := func(pack bool) *Model {
			m := &Model{Kernel: kp, SV: sv, Coef: coef, Beta: 0}
			m.WarmNorms()
			if pack {
				m.Pack(0)
			}
			return m
		}
		for _, cfg := range []struct {
			name string
			m    *Model
		}{{"engine", mk(false)}, {"packed", mk(true)}} {
			b.Run(shape.name+"/"+cfg.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_ = cfg.m.DecisionValue(q.RowView(i % q.Rows()))
				}
			})
		}
	}
}
