package model

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sparse"
)

// Batch prediction: the kernel-evaluation loop shared by every bulk scoring
// path in the repository — the inference server (internal/serve), the
// distributed evaluation harness (core.EvaluateParallel), and Platt
// calibration (internal/probability). Prediction cost is dominated by
// kernel evaluations against the support-vector set, so rows are fanned out
// across a bounded worker pool in contiguous chunks: each worker streams
// through the CSR payload of its chunk while dynamic chunk claiming keeps
// load balanced when row lengths vary.

// batchChunk is the number of rows a worker claims at a time. Small enough
// to balance skewed row lengths, large enough that the atomic claim is
// negligible next to NumSV kernel evaluations per row.
const batchChunk = 16

// DecisionValues computes the decision function for every row of x using at
// most workers goroutines. workers <= 0 selects GOMAXPROCS. The
// support-vector norm cache is warmed once before any worker starts, so the
// call is safe regardless of prior WarmNorms calls.
func (m *Model) DecisionValues(x *sparse.Matrix, workers int) []float64 {
	out := make([]float64, x.Rows())
	m.decisionValuesInto(x, workers, out)
	return out
}

// PredictBatch classifies every row of x (+1/-1) using at most workers
// goroutines; it shares the kernel-evaluation loop with DecisionValues.
func (m *Model) PredictBatch(x *sparse.Matrix, workers int) []float64 {
	out := m.DecisionValues(x, workers)
	for i, v := range out {
		if v >= 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// DecisionValuesRows computes the decision function for each row using at
// most workers goroutines, without requiring the rows to share a matrix.
// The request-coalescing path (internal/serve/batcher) scores a window of
// independently submitted rows through this: same numbers as
// DecisionValues row for row, no intermediate CSR copy.
func (m *Model) DecisionValuesRows(rows []sparse.Row, workers int) []float64 {
	n := len(rows)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (n + batchChunk - 1) / batchChunk; workers > max {
		workers = max
	}
	if m.IsLinear() {
		fanRows(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = sparse.DotDense(rows[i], m.W) - m.Beta
			}
		})
		return out
	}
	if m.NumSV() == 0 {
		for i := range out {
			out[i] = -m.Beta
		}
		return out
	}
	m.WarmNorms()
	if workers <= 1 {
		st := m.acquirePredict()
		for i, r := range rows {
			out[i] = m.decisionWith(st, r)
		}
		m.predictPool.Put(st)
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := m.acquirePredict()
			defer m.predictPool.Put(st)
			for {
				lo := int(next.Add(batchChunk)) - batchChunk
				if lo >= n {
					return
				}
				hi := lo + batchChunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					out[i] = m.decisionWith(st, rows[i])
				}
			}
		}()
	}
	wg.Wait()
	return out
}

func (m *Model) decisionValuesInto(x *sparse.Matrix, workers int, out []float64) {
	n := x.Rows()
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (n + batchChunk - 1) / batchChunk; workers > max {
		workers = max
	}
	if m.IsLinear() {
		// Dense-hyperplane fast path: one sparse-dense dot per row, no
		// evaluator, no per-worker scratch — workers just split the rows.
		fanRows(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = sparse.DotDense(x.RowView(i), m.W) - m.Beta
			}
		})
		return
	}
	m.WarmNorms()
	if workers <= 1 {
		st := m.acquirePredict()
		m.decisionRange(st, x, 0, n, out)
		m.predictPool.Put(st)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := m.acquirePredict()
			defer m.predictPool.Put(st)
			for {
				lo := int(next.Add(batchChunk)) - batchChunk
				if lo >= n {
					return
				}
				hi := lo + batchChunk
				if hi > n {
					hi = n
				}
				m.decisionRange(st, x, lo, hi, out)
			}
		}()
	}
	wg.Wait()
}

// fanRows splits [0, n) into batchChunk-sized chunks dynamically claimed by
// workers goroutines; run must be safe for concurrent calls on disjoint
// ranges.
func fanRows(n, workers int, run func(lo, hi int)) {
	if workers <= 1 {
		run(0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(batchChunk)) - batchChunk
				if lo >= n {
					return
				}
				hi := lo + batchChunk
				if hi > n {
					hi = n
				}
				run(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// decisionRange scores rows [lo, hi) of x into out — the single hot loop
// every batch path funnels through, one batched kernel row per sample.
// Requires warmed norms when called from multiple goroutines (WarmNorms
// ran above, so worker states never race on lazy initialization).
func (m *Model) decisionRange(st *predictState, x *sparse.Matrix, lo, hi int, out []float64) {
	if m.NumSV() == 0 {
		for i := lo; i < hi; i++ {
			out[i] = -m.Beta
		}
		return
	}
	for i := lo; i < hi; i++ {
		out[i] = m.decisionWith(st, x.RowView(i))
	}
}
