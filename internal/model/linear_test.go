package model

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/sparse"
)

// linearPair builds a model carrying BOTH representations of the same
// linear classifier: a support-vector set with coefficients, and the dense
// hyperplane w = sum_i coef_i * sv_i it collapses to. The kernel path and
// the fast path are then mathematically identical, which is exactly what
// the parity tests exploit.
func linearPair(t testing.TB, nsv, dim int, seed int64) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(dim)
	coef := make([]float64, nsv)
	w := make([]float64, dim)
	for i := 0; i < nsv; i++ {
		coef[i] = rng.NormFloat64()
		if coef[i] == 0 {
			coef[i] = 1
		}
		for j := 0; j < dim; j++ {
			if rng.Float64() < 0.3 {
				v := rng.NormFloat64()
				b.Add(j, v)
				w[j] += coef[i] * v
			}
		}
		b.EndRow()
	}
	return &Model{
		Kernel: kernel.Params{Type: kernel.Linear},
		C:      10,
		SV:     b.Build(),
		Coef:   coef,
		W:      w,
		Beta:   0.25,
	}
}

func randomRows(n, dim int, seed int64) *sparse.Matrix {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(dim)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			if rng.Float64() < 0.4 {
				b.Add(j, rng.NormFloat64())
			}
		}
		b.EndRow()
	}
	return b.Build()
}

// TestLinearFastPathParity: with both representations present, the dense
// fast path must reproduce the kernel sweep to floating-point accumulation
// accuracy on every row.
func TestLinearFastPathParity(t *testing.T) {
	m := linearPair(t, 25, 40, 1)
	x := randomRows(200, 40, 2)
	for i := 0; i < x.Rows(); i++ {
		r := x.RowView(i)
		fast := m.DecisionValue(r)
		slow := m.KernelDecisionValue(r)
		if d := math.Abs(fast - slow); d > 1e-9 {
			t.Fatalf("row %d: fast path %v vs kernel path %v (delta %v)", i, fast, slow, d)
		}
	}
}

// TestLinearBatchParity: the batch fan-out must agree with the scalar fast
// path bit for bit, at every worker count (including the sequential one).
func TestLinearBatchParity(t *testing.T) {
	m := linearPair(t, 25, 40, 3)
	x := randomRows(300, 40, 4)
	want := make([]float64, x.Rows())
	for i := range want {
		want[i] = m.DecisionValue(x.RowView(i))
	}
	for _, workers := range []int{1, 2, 4, 0} {
		got := m.DecisionValues(x, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d row %d: %v vs %v", workers, i, got[i], want[i])
			}
		}
		preds := m.PredictBatch(x, workers)
		for i := range preds {
			wantP := 1.0
			if want[i] < 0 {
				wantP = -1
			}
			if preds[i] != wantP {
				t.Fatalf("workers=%d row %d: predict %v, want %v", workers, i, preds[i], wantP)
			}
		}
	}
}

// svLess returns a pure fast-path model: dense hyperplane, no support
// vectors — what internal/linear actually ships.
func svLess(dim int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, dim)
	for j := range w {
		if rng.Float64() < 0.5 {
			w[j] = rng.NormFloat64()
		}
	}
	return &Model{Kernel: kernel.Params{Type: kernel.Linear}, C: 10, W: w, Beta: -0.5, TrainSamples: 7, Iterations: 3}
}

func TestLinearSVLessModel(t *testing.T) {
	m := svLess(30, 5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	x := randomRows(50, 30, 6)
	// Both the scalar and the batch path must work with no SV set at all.
	got := m.DecisionValues(x, 4)
	for i := range got {
		if want := m.DecisionValue(x.RowView(i)); got[i] != want {
			t.Fatalf("row %d: %v vs %v", i, got[i], want)
		}
	}
}

// TestLinearSerializationRoundTrip: Write -> Read must reproduce the dense
// hyperplane bit for bit, through both bytes and a second Write.
func TestLinearSerializationRoundTrip(t *testing.T) {
	for _, m := range []*Model{svLess(30, 7), linearPair(t, 10, 30, 8)} {
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			t.Fatal(err)
		}
		first := buf.String()
		got, err := Read(strings.NewReader(first))
		if err != nil {
			t.Fatalf("read back: %v\n%s", err, first)
		}
		if len(got.W) != len(m.W) {
			t.Fatalf("dim %d vs %d", len(got.W), len(m.W))
		}
		for j := range m.W {
			if math.Float64bits(got.W[j]) != math.Float64bits(m.W[j]) {
				t.Fatalf("w[%d]: %v vs %v", j, got.W[j], m.W[j])
			}
		}
		if got.Beta != m.Beta || got.C != m.C || !got.IsLinear() {
			t.Fatalf("metadata drift: beta %v/%v C %v/%v", got.Beta, m.Beta, got.C, m.C)
		}
		// Re-serialization must be byte-stable (the determinism the OVR
		// ensemble tests build on).
		var buf2 bytes.Buffer
		if err := got.Write(&buf2); err != nil {
			t.Fatal(err)
		}
		if buf2.String() != first {
			t.Fatalf("second write differs from first:\n%s\nvs\n%s", buf2.String(), first)
		}
	}
}

// corrupt applies an edit to the serialized text and expects Read to refuse.
func corrupt(t *testing.T, m *Model, wants string, edit func(string) string) {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	mangled := edit(buf.String())
	if mangled == buf.String() {
		t.Fatal("edit changed nothing; the corruption case is vacuous")
	}
	if _, err := Read(strings.NewReader(mangled)); err == nil || !strings.Contains(err.Error(), wants) {
		t.Fatalf("corrupted model accepted or wrong error: %v (want %q)\n%s", err, wants, mangled)
	}
}

func TestLinearSerializationRejectsCorruption(t *testing.T) {
	m := svLess(30, 9)
	// A flipped digit inside the W payload no longer matches the CRC.
	corrupt(t, m, "checksum mismatch", func(s string) string {
		i := strings.Index(s, "\nW\n")
		head, tail := s[:i+3], s[i+3:]
		for _, from := range []string{"1:", "2:", "3:"} {
			if strings.Contains(tail, from) {
				return head + strings.Replace(tail, from+"0", from+"1", 1)
			}
		}
		t.Fatal("no W entry found to corrupt")
		return s
	})
	// Losing the checksum header is as fatal as failing it.
	corrupt(t, m, "w_crc header missing", func(s string) string {
		i := strings.Index(s, "w_crc")
		j := strings.Index(s[i:], "\n")
		return s[:i] + s[i+j+1:]
	})
	// A truncated W section (payload gone, header intact) must not load.
	corrupt(t, m, "W section missing", func(s string) string {
		i := strings.Index(s, "\nW\n")
		return s[:i] + "\n"
	})
	// Reordered entries break the canonical ascending form.
	corrupt(t, m, "not strictly ascending", func(s string) string {
		i := strings.Index(s, "\nW\n")
		head, payload := s[:i+3], strings.TrimSpace(s[i+3:])
		fields := strings.Fields(payload)
		if len(fields) < 2 {
			t.Fatal("need at least two W entries")
		}
		fields[0], fields[1] = fields[1], fields[0]
		return head + strings.Join(fields, " ") + "\n"
	})
	// An unknown format version is refused outright, CRC notwithstanding.
	corrupt(t, m, "unsupported w_format", func(s string) string {
		return strings.Replace(s, "w_format 1", "w_format 2", 1)
	})
	// A wrong dimension changes the canonical encoding, so the CRC catches it.
	corrupt(t, m, "checksum mismatch", func(s string) string {
		return strings.Replace(s, "w_dim 30", "w_dim 31", 1)
	})
	// Duplicate W sections are structurally invalid.
	corrupt(t, m, "duplicate W section", func(s string) string {
		return s + "W\n"
	})
}

// TestLinearModelValidate covers the W-specific invariants.
func TestLinearModelValidate(t *testing.T) {
	m := svLess(10, 11)
	m.W[3] = math.NaN()
	if err := m.Validate(); err == nil {
		t.Fatal("NaN weight accepted")
	}
	m = svLess(10, 11)
	m.W = nil
	if err := m.Validate(); err == nil {
		t.Fatal("model with neither SVs nor W accepted")
	}
	m = svLess(10, 11)
	m.Coef = []float64{1}
	if err := m.Validate(); err == nil {
		t.Fatal("coefficients without SV matrix accepted")
	}
}
