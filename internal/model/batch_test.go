package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/sparse"
)

// randomModel builds a synthetic RBF model with nsv support vectors and a
// matching random query matrix, both over dim features at the given density.
func randomModel(nsv, dim int, density float64, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	sv := randomMatrix(rng, nsv, dim, density)
	coef := make([]float64, nsv)
	for i := range coef {
		coef[i] = rng.Float64()*2 - 1
		if coef[i] == 0 {
			coef[i] = 0.5
		}
	}
	return &Model{
		Kernel:       kernel.Params{Type: kernel.Gaussian, Gamma: 0.25},
		C:            10,
		SV:           sv,
		Coef:         coef,
		Beta:         0.1,
		TrainSamples: nsv * 4,
	}
}

func randomMatrix(rng *rand.Rand, rows, dim int, density float64) *sparse.Matrix {
	b := sparse.NewBuilder(dim)
	for i := 0; i < rows; i++ {
		for j := 0; j < dim; j++ {
			if rng.Float64() < density {
				b.Add(j, rng.NormFloat64())
			}
		}
		b.EndRow()
	}
	return b.Build()
}

func TestDecisionValuesMatchesSequential(t *testing.T) {
	m := randomModel(60, 40, 0.3, 1)
	x := randomMatrix(rand.New(rand.NewSource(2)), 137, 40, 0.3)
	want := make([]float64, x.Rows())
	for i := range want {
		want[i] = m.DecisionValue(x.RowView(i))
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 1000} {
		got := m.DecisionValues(x, workers)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("workers=%d: row %d: %v != %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	m := randomModel(40, 20, 0.4, 3)
	x := randomMatrix(rand.New(rand.NewSource(4)), 63, 20, 0.4)
	got := m.PredictBatch(x, 4)
	for i := range got {
		if want := m.Predict(x.RowView(i)); got[i] != want {
			t.Fatalf("row %d: %v != %v", i, got[i], want)
		}
	}
}

func TestDecisionValuesEmpty(t *testing.T) {
	m := randomModel(10, 5, 0.5, 5)
	x := sparse.NewBuilder(5).Build()
	if got := m.DecisionValues(x, 4); len(got) != 0 {
		t.Fatalf("got %d values for empty matrix", len(got))
	}
}

func TestDecisionValuesOnRowRangeView(t *testing.T) {
	m := randomModel(30, 25, 0.3, 6)
	x := randomMatrix(rand.New(rand.NewSource(7)), 50, 25, 0.3)
	view, err := x.RowRangeView(10, 35)
	if err != nil {
		t.Fatal(err)
	}
	got := m.DecisionValues(view, 3)
	if len(got) != 25 {
		t.Fatalf("got %d values for 25-row view", len(got))
	}
	for k := range got {
		want := m.DecisionValue(x.RowView(10 + k))
		if math.Abs(got[k]-want) > 1e-12 {
			t.Fatalf("view row %d: %v != %v", k, got[k], want)
		}
	}
}

func TestProbabilityFromDecisionMatchesProbability(t *testing.T) {
	m := randomModel(20, 10, 0.5, 8)
	m.ProbA, m.ProbB, m.HasProb = -1.7, 0.2, true
	x := randomMatrix(rand.New(rand.NewSource(9)), 11, 10, 0.5)
	for i := 0; i < x.Rows(); i++ {
		row := x.RowView(i)
		direct, _ := m.Probability(row)
		viaDV, ok := m.ProbabilityFromDecision(m.DecisionValue(row))
		if !ok || math.Abs(direct-viaDV) > 1e-15 {
			t.Fatalf("row %d: %v != %v", i, direct, viaDV)
		}
	}
	m.HasProb = false
	if _, ok := m.ProbabilityFromDecision(0.5); ok {
		t.Fatal("uncalibrated model reported a probability")
	}
}

// Benchmarks for the serving hot path. BenchmarkDecisionValuesSequential is
// the per-row loop the server replaces; BenchmarkDecisionValuesParallel is
// the worker-pool batch path (on a multi-core host it should win roughly
// linearly until memory bandwidth saturates).

func benchModelAndRows(b *testing.B) (*Model, *sparse.Matrix) {
	b.Helper()
	m := randomModel(400, 100, 0.2, 42)
	x := randomMatrix(rand.New(rand.NewSource(43)), 512, 100, 0.2)
	m.WarmNorms()
	return m, x
}

func BenchmarkDecisionValuesSequential(b *testing.B) {
	m, x := benchModelAndRows(b)
	out := make([]float64, x.Rows())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < x.Rows(); r++ {
			out[r] = m.DecisionValue(x.RowView(r))
		}
	}
	b.ReportMetric(float64(x.Rows())*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkDecisionValuesParallel(b *testing.B) {
	m, x := benchModelAndRows(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DecisionValues(x, 0)
	}
	b.ReportMetric(float64(x.Rows())*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkPredictBatch(b *testing.B) {
	m, x := benchModelAndRows(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(x, 0)
	}
	b.ReportMetric(float64(x.Rows())*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
