package model

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/sparse"
)

// handModel builds a tiny RBF model by hand: two SVs at x=-1 (y=-1) and
// x=+1 (y=+1) with alpha=1, beta=0.
func handModel() *Model {
	return &Model{
		Kernel:       kernel.Params{Type: kernel.Gaussian, Gamma: 1},
		C:            10,
		SV:           sparse.FromDense([][]float64{{-1}, {1}}),
		Coef:         []float64{-1, 1},
		Beta:         0,
		TrainSamples: 10,
		Iterations:   42,
	}
}

func TestDecisionValueHand(t *testing.T) {
	m := handModel()
	// f(0) = -K(-1,0) + K(1,0) = 0 by symmetry.
	x0 := sparse.FromDense([][]float64{{0}}).RowView(0)
	if v := m.DecisionValue(x0); math.Abs(v) > 1e-12 {
		t.Fatalf("f(0) = %v, want 0", v)
	}
	// f(1) = -exp(-4) + 1 > 0 -> predict +1
	x1 := sparse.FromDense([][]float64{{1}}).RowView(0)
	want := -math.Exp(-4) + 1
	if v := m.DecisionValue(x1); math.Abs(v-want) > 1e-12 {
		t.Fatalf("f(1) = %v, want %v", v, want)
	}
	if m.Predict(x1) != 1 {
		t.Fatal("Predict(1) != +1")
	}
	xneg := sparse.FromDense([][]float64{{-2}}).RowView(0)
	if m.Predict(xneg) != -1 {
		t.Fatal("Predict(-2) != -1")
	}
}

func TestPredictAllAndEvaluate(t *testing.T) {
	m := handModel()
	x := sparse.FromDense([][]float64{{-1.5}, {-0.5}, {0.5}, {1.5}})
	y := []float64{-1, -1, 1, 1}
	preds := m.PredictAll(x)
	for i, p := range preds {
		if p != y[i] {
			t.Fatalf("pred[%d] = %v", i, p)
		}
	}
	mt, err := m.Evaluate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Accuracy != 100 || mt.TP != 2 || mt.TN != 2 || mt.FP != 0 || mt.FN != 0 {
		t.Fatalf("metrics = %+v", mt)
	}
	// Flip one label: one false positive.
	y[2] = -1
	mt, err = m.Evaluate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if mt.FP != 1 || mt.Correct != 3 || mt.Accuracy != 75 {
		t.Fatalf("metrics = %+v", mt)
	}
	if _, err := m.Evaluate(x, y[:2]); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}

func TestSVFraction(t *testing.T) {
	m := handModel()
	if f := m.SVFraction(); f != 0.2 {
		t.Fatalf("SVFraction = %v, want 0.2", f)
	}
}

func TestValidate(t *testing.T) {
	good := handModel()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"nil sv", func(m *Model) { m.SV = nil }},
		{"coef count", func(m *Model) { m.Coef = m.Coef[:1] }},
		{"nan coef", func(m *Model) { m.Coef[0] = math.NaN() }},
		{"zero coef", func(m *Model) { m.Coef[0] = 0 }},
		{"coef above C", func(m *Model) { m.Coef[0] = -11 }},
		{"nan beta", func(m *Model) { m.Beta = math.NaN() }},
		{"bad kernel", func(m *Model) { m.Kernel.Gamma = -1 }},
	}
	for _, tc := range cases {
		m := handModel()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	m := handModel()
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Kernel != m.Kernel || m2.C != m.C || m2.Beta != m.Beta {
		t.Fatalf("header mismatch: %+v vs %+v", m2, m)
	}
	if m2.TrainSamples != 10 || m2.Iterations != 42 {
		t.Fatalf("metadata mismatch: %+v", m2)
	}
	if m2.NumSV() != 2 || m2.Coef[0] != -1 || m2.Coef[1] != 1 {
		t.Fatalf("SVs mismatch")
	}
	// Predictions must be identical.
	x := sparse.FromDense([][]float64{{0.3}, {-0.7}})
	for i := 0; i < x.Rows(); i++ {
		a := m.DecisionValue(x.RowView(i))
		b := m2.DecisionValue(x.RowView(i))
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("decision mismatch: %v vs %v", a, b)
		}
	}
}

func TestSerializePolynomialAndSigmoid(t *testing.T) {
	m := handModel()
	m.Kernel = kernel.Params{Type: kernel.Polynomial, Gamma: 2, Coef0: 1, Degree: 3}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Kernel != m.Kernel {
		t.Fatalf("polynomial kernel mismatch: %+v", m2.Kernel)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                       // no SV section
		"bogus_key 1\nSV\n",      // unknown key
		"svm_type nu_svc\nSV\n",  // unsupported type
		"kernel_type warp\nSV\n", // unknown kernel
		"total_sv 5\nkernel_type rbf\ngamma 1\nC 1\nSV\n1 1:1\n", // count mismatch
		"kernel_type rbf\ngamma 1\nC 1\nSV\nx 1:1\n",             // bad coef
		"kernel_type rbf\ngamma 1\nC 1\nSV\n1 0:1\n",             // 0-based index
		"kernel_type rbf\ngamma 1\nC 1\nSV\n1 1x1\n",             // missing colon
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("accepted malformed model %q", c)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := handModel()
	path := t.TempDir() + "/m.model"
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumSV() != m.NumSV() {
		t.Fatal("load mismatch")
	}
	if _, err := Load(path + ".missing"); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestWarmNormsConcurrentSafe(t *testing.T) {
	m := handModel()
	m.WarmNorms()
	x := sparse.FromDense([][]float64{{0.1}})
	done := make(chan struct{}, 8)
	for k := 0; k < 8; k++ {
		go func() {
			for i := 0; i < 100; i++ {
				m.DecisionValue(x.RowView(0))
			}
			done <- struct{}{}
		}()
	}
	for k := 0; k < 8; k++ {
		<-done
	}
}

func TestProbabilitySerializationRoundTrip(t *testing.T) {
	m := handModel()
	m.ProbA, m.ProbB, m.HasProb = -1.5, 0.25, true
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.HasProb || m2.ProbA != -1.5 || m2.ProbB != 0.25 {
		t.Fatalf("probability params lost: %+v", m2)
	}
	x := sparse.FromDense([][]float64{{0.4}}).RowView(0)
	p1, ok1 := m.Probability(x)
	p2, ok2 := m2.Probability(x)
	if !ok1 || !ok2 || math.Abs(p1-p2) > 1e-12 {
		t.Fatalf("probabilities: %v/%v %v/%v", p1, ok1, p2, ok2)
	}
}

func TestProbabilityAbsentByDefault(t *testing.T) {
	m := handModel()
	x := sparse.FromDense([][]float64{{0.4}}).RowView(0)
	if _, ok := m.Probability(x); ok {
		t.Fatal("uncalibrated model reported a probability")
	}
}

func TestProbabilityConsistentWithPrediction(t *testing.T) {
	m := handModel()
	m.ProbA, m.ProbB, m.HasProb = -2, 0, true // P > 0.5 iff f > 0
	for _, v := range []float64{-1.5, -0.3, 0.3, 1.5} {
		x := sparse.FromDense([][]float64{{v}}).RowView(0)
		p, _ := m.Probability(x)
		pred := m.Predict(x)
		if (p > 0.5) != (pred > 0) {
			t.Fatalf("probability %v disagrees with prediction %v at x=%v", p, pred, v)
		}
	}
}

func TestCalibratedSaveLoadFileRoundTrip(t *testing.T) {
	m := handModel()
	m.ProbA, m.ProbB, m.HasProb = -2.25, 0.125, true
	path := t.TempDir() + "/cal.model"
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.HasProb || m2.ProbA != m.ProbA || m2.ProbB != m.ProbB {
		t.Fatalf("calibration lost across file round trip: %+v", m2)
	}
	x := sparse.FromDense([][]float64{{0.2}}).RowView(0)
	p1, _ := m.Probability(x)
	p2, _ := m2.Probability(x)
	if math.Abs(p1-p2) > 1e-12 {
		t.Fatalf("probability %v != %v after round trip", p1, p2)
	}
}

// TestLoadRejectsCorruptedFiles covers the load-time validation the serving
// path relies on: a bad model file must fail Load, never surface at
// request time.
func TestLoadRejectsCorruptedFiles(t *testing.T) {
	good := handModel()
	var buf bytes.Buffer
	if err := good.Write(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	cases := map[string]string{
		"truncated header":   text[:20],
		"nan coefficient":    strings.Replace(text, "\n-1 ", "\nNaN ", 1),
		"infinite sv value":  strings.Replace(text, "1:1", "1:+Inf", 1),
		"zero coefficient":   strings.Replace(text, "\n-1 ", "\n0 ", 1),
		"coef exceeds C":     strings.Replace(text, "\n-1 ", "\n-1e6 ", 1),
		"sv count mismatch":  strings.Replace(text, "total_sv 2", "total_sv 7", 1),
		"negative gamma":     strings.Replace(text, "gamma 1", "gamma -3", 1),
		"binary garbage":     "\x00\x01\x02 not a model",
		"missing SV section": strings.SplitN(text, "SV\n", 2)[0],
	}
	dir := t.TempDir()
	for name, content := range cases {
		path := dir + "/" + strings.ReplaceAll(name, " ", "_") + ".model"
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("%s: corrupted model file loaded", name)
		}
	}
}
