package model

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"

	"repro/internal/sparse"
)

// Task identifies the QP a model solves. The zero value means TaskCSVC —
// every model written before task kinds existed is a classifier.
type Task string

// Task kinds, named after their libsvm svm_type strings so model files stay
// cross-readable.
const (
	TaskCSVC     Task = "c_svc"
	TaskSVR      Task = "epsilon_svr"
	TaskOneClass Task = "one_class"
)

// ParseTask maps an svm_type string to a Task.
func ParseTask(s string) (Task, error) {
	switch Task(s) {
	case TaskCSVC, TaskSVR, TaskOneClass:
		return Task(s), nil
	default:
		return "", fmt.Errorf("model: unknown task kind %q", s)
	}
}

// TaskKind returns the model's task, mapping the pre-task zero value to
// TaskCSVC.
func (m *Model) TaskKind() Task {
	if m.Task == "" {
		return TaskCSVC
	}
	return m.Task
}

// validateTask checks the task-specific invariants: the kind is known, SVR
// carries a positive epsilon, one-class carries nu in (0, 1] and positive
// coefficients (its duals are alphas, not signed alpha*y).
func (m *Model) validateTask() error {
	switch m.TaskKind() {
	case TaskCSVC:
		if m.Epsilon != 0 || m.Nu != 0 {
			return fmt.Errorf("model: classifier carries task parameters (epsilon=%v, nu=%v)", m.Epsilon, m.Nu)
		}
	case TaskSVR:
		if !(m.Epsilon > 0) || math.IsInf(m.Epsilon, 0) {
			return fmt.Errorf("model: epsilon-SVR requires positive finite epsilon, got %v", m.Epsilon)
		}
		if m.Nu != 0 {
			return fmt.Errorf("model: epsilon-SVR carries nu = %v", m.Nu)
		}
		if m.IsLinear() {
			return fmt.Errorf("model: dense-hyperplane fast path is classifier-only")
		}
	case TaskOneClass:
		if !(m.Nu > 0) || m.Nu > 1 {
			return fmt.Errorf("model: one-class requires nu in (0, 1], got %v", m.Nu)
		}
		if m.Epsilon != 0 {
			return fmt.Errorf("model: one-class carries epsilon = %v", m.Epsilon)
		}
		if m.IsLinear() {
			return fmt.Errorf("model: dense-hyperplane fast path is classifier-only")
		}
		for i, c := range m.Coef {
			if c < 0 {
				return fmt.Errorf("model: one-class coefficient %d is %v; alphas are nonnegative", i, c)
			}
		}
	default:
		return fmt.Errorf("model: unknown task kind %q", m.Task)
	}
	return nil
}

// PredictRegression returns the epsilon-SVR estimate
// z(x) = sum_i d_i Phi(sv_i, x) - Beta — the same kernel expansion the
// classifier evaluates, so every predict/serve/pack path applies unchanged.
func (m *Model) PredictRegression(x sparse.Row) float64 {
	return m.DecisionValue(x)
}

// AnomalyScore returns the signed one-class margin
// sum_i alpha_i Phi(sv_i, x) - rho; nonnegative scores are inliers.
func (m *Model) AnomalyScore(x sparse.Row) float64 {
	return m.DecisionValue(x)
}

// PredictAnomaly classifies one sample as inlier (+1) or outlier (-1).
func (m *Model) PredictAnomaly(x sparse.Row) float64 {
	if m.AnomalyScore(x) >= 0 {
		return 1
	}
	return -1
}

// RegressionMetrics summarizes regression quality on a held-out set.
type RegressionMetrics struct {
	Total int
	MSE   float64 // mean squared error
	MAE   float64 // mean absolute error
	R2    float64 // 1 - SS_res/SS_tot (0 when the targets are constant)
}

// EvaluateRegression computes regression metrics of the model on (x, z).
func (m *Model) EvaluateRegression(x *sparse.Matrix, z []float64) (RegressionMetrics, error) {
	if x.Rows() != len(z) {
		return RegressionMetrics{}, fmt.Errorf("model: %d rows but %d targets", x.Rows(), len(z))
	}
	var mt RegressionMetrics
	mt.Total = x.Rows()
	if mt.Total == 0 {
		return mt, nil
	}
	var mean float64
	for _, v := range z {
		mean += v
	}
	mean /= float64(len(z))
	var ssRes, ssTot, absSum float64
	for i := 0; i < x.Rows(); i++ {
		d := m.PredictRegression(x.RowView(i)) - z[i]
		ssRes += d * d
		absSum += math.Abs(d)
		t := z[i] - mean
		ssTot += t * t
	}
	mt.MSE = ssRes / float64(mt.Total)
	mt.MAE = absSum / float64(mt.Total)
	if ssTot > 0 {
		mt.R2 = 1 - ssRes/ssTot
	}
	return mt, nil
}

var contentHashTable = crc64.MakeTable(crc64.ECMA)

// ContentHash returns a CRC-64 over everything that determines the model's
// predictions: task kind and parameters, kernel, box, threshold, support
// vectors with coefficients, and the dense hyperplane. Incremental updates
// (internal/tasks) mix it into the checkpoint fingerprint so a resume is
// bound to the exact base model the warm start came from.
func (m *Model) ContentHash() uint64 {
	h := crc64.New(contentHashTable)
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	putF := func(v float64) { put(math.Float64bits(v)) }
	h.Write([]byte(m.TaskKind()))
	put(uint64(m.Kernel.Type))
	putF(m.Kernel.Gamma)
	putF(m.Kernel.Coef0)
	put(uint64(m.Kernel.Degree))
	putF(m.C)
	putF(m.Beta)
	putF(m.Epsilon)
	putF(m.Nu)
	put(uint64(m.NumSV()))
	for i := 0; i < m.NumSV(); i++ {
		putF(m.Coef[i])
		r := m.SV.RowView(i)
		put(uint64(len(r.Idx)))
		for k, c := range r.Idx {
			put(uint64(uint32(c)))
			putF(r.Val[k])
		}
	}
	put(uint64(len(m.W)))
	for _, v := range m.W {
		putF(v)
	}
	return h.Sum64()
}
