package model

import (
	"repro/internal/kernel"
	"repro/internal/sparse"
)

// Predict-time dense support-vector layout. The pooled row engine gathers
// each support vector's CSR payload against a dense scratch of the query
// row — per kernel value that is an index load, a value load, and a
// dependent scratch load. PackedSVs transposes the support-vector matrix
// once at load time into a feature-major dense block, so a query's sparse
// entries each stream one contiguous column of the block with unit stride:
// the same scatter-once/gather-many win training got from the row engine,
// applied to serving. The block costs rows*cols*8 bytes, so packing is
// gated on a size budget; models over budget keep the pooled CSR path.

// DefaultPackBudget is the dense-block size cap used when callers pass a
// non-positive budget to Pack: 64 MiB, enough for ~10k support vectors at
// 784 features while keeping a multi-model registry resident.
const DefaultPackBudget int64 = 64 << 20

// PackedSVs is an immutable feature-major copy of a model's support
// vectors, in two aligned forms: a dense block (block[c*rows+i] = SV[i][c])
// whose columns stream with unit stride, and the block's column-compressed
// skeleton (colPtr/rowIdx/colVal) that visits only the nonzero rows of a
// column. Dense models stream the block; sparse models walk the skeleton,
// which skips the zero products the row engine's gather must still touch.
// Built once (Pack) before a model starts serving; safe for concurrent use
// afterwards.
type PackedSVs struct {
	rows, cols int
	block      []float64
	colPtr     []int32
	rowIdx     []int32
	colVal     []float64
	scatter    bool      // walk the CSC skeleton instead of streaming columns
	norms      []float64 // shared with the model's warmed norm cache
	kp         kernel.Params
}

// Rows returns the number of packed support vectors.
func (p *PackedSVs) Rows() int { return p.rows }

// Bytes returns the packed layout's size in bytes (dense block plus the
// column-compressed skeleton).
func (p *PackedSVs) Bytes() int64 {
	return int64(len(p.block))*8 + int64(len(p.rowIdx))*4 + int64(len(p.colVal))*8 + int64(len(p.colPtr))*4
}

// Pack builds the dense predict-time layout when the model carries a
// support-vector set whose dense block fits budget bytes (<= 0 selects
// DefaultPackBudget). It reports whether the model is packed afterwards.
// Linear fast-path models (explicit W) never pack: their predict path is
// already one dense dot. Pack is a load-time operation: it must complete
// before the model serves concurrent predictions.
func (m *Model) Pack(budget int64) bool {
	if m.packed != nil {
		return true
	}
	if m.IsLinear() || m.SV == nil || m.SV.Rows() == 0 || m.SV.Cols <= 0 {
		return false
	}
	if budget <= 0 {
		budget = DefaultPackBudget
	}
	rows, cols := m.SV.Rows(), m.SV.Cols
	if int64(rows)*int64(cols)*8 > budget {
		return false
	}
	m.WarmNorms()
	block := make([]float64, rows*cols)
	counts := make([]int32, cols+1)
	var nnz int
	for i := 0; i < rows; i++ {
		r := m.SV.RowView(i)
		nnz += len(r.Idx)
		for k, c := range r.Idx {
			block[int(c)*rows+i] = r.Val[k]
			counts[c+1]++
		}
	}
	colPtr := counts
	for c := 0; c < cols; c++ {
		colPtr[c+1] += colPtr[c]
	}
	rowIdx := make([]int32, nnz)
	colVal := make([]float64, nnz)
	next := make([]int32, cols)
	copy(next, colPtr[:cols])
	for i := 0; i < rows; i++ {
		r := m.SV.RowView(i)
		for k, c := range r.Idx {
			at := next[c]
			next[c]++
			rowIdx[at] = int32(i)
			colVal[at] = r.Val[k]
		}
	}
	density := float64(nnz) / float64(rows*cols)
	m.packed = &PackedSVs{
		rows: rows, cols: cols, block: block,
		colPtr: colPtr, rowIdx: rowIdx, colVal: colVal,
		scatter: density < 0.5,
		norms:   m.svNormsCache, kp: m.Kernel,
	}
	return true
}

// IsPacked reports whether the dense predict-time layout is built.
func (m *Model) IsPacked() bool { return m.packed != nil }

// PackedBytes returns the dense block's size in bytes (0 when unpacked).
func (m *Model) PackedBytes() int64 {
	if m.packed == nil {
		return 0
	}
	return m.packed.Bytes()
}

// DotsInto computes dot(x, sv_i) for every packed support vector into
// dst[:rows]. Query entries at columns past the packed width pair with
// implicit zeros of every support vector (matching the row engine's
// scratch semantics) and are skipped.
//
// The accumulation order per support vector is x's ascending column order;
// the row engine's gather runs in the support vector's ascending column
// order. The two orders interleave the same nonzero products identically
// (both ascend in column) and differ only in where exact-zero products
// fall — adding a ±0.0 product never changes a partial sum — so the dots,
// and therefore the kernel values, are bit-identical.
func (p *PackedSVs) DotsInto(x sparse.Row, dst []float64) {
	dst = dst[:p.rows]
	for i := range dst {
		dst[i] = 0
	}
	if p.scatter {
		p.dotsScatter(x, dst)
		return
	}
	p.dotsDense(x, dst)
}

// dotsScatter walks the column-compressed skeleton: only (query column,
// support vector) pairs where both sides are nonzero are touched, which on
// sparse data is a small fraction of the row engine's gather work.
func (p *PackedSVs) dotsScatter(x sparse.Row, dst []float64) {
	for k, c := range x.Idx {
		if int(c) >= p.cols {
			return // columns ascend within a row; the rest are out of range too
		}
		v := x.Val[k]
		lo, hi := p.colPtr[c], p.colPtr[c+1]
		ri := p.rowIdx[lo:hi]
		cv := p.colVal[lo:hi]
		for j, i := range ri {
			dst[i] += v * cv[j]
		}
	}
}

// dotsDense streams whole dense columns with unit stride, four query
// columns per pass to amortize the dst traffic; the per-element sum order
// (c0, c1, c2, c3 ascending) matches the one-column-at-a-time loop exactly.
func (p *PackedSVs) dotsDense(x sparse.Row, dst []float64) {
	nnz := len(x.Idx)
	k := 0
	for ; k+4 <= nnz && int(x.Idx[k+3]) < p.cols; k += 4 {
		c0, c1, c2, c3 := int(x.Idx[k]), int(x.Idx[k+1]), int(x.Idx[k+2]), int(x.Idx[k+3])
		v0, v1, v2, v3 := x.Val[k], x.Val[k+1], x.Val[k+2], x.Val[k+3]
		col0 := p.block[c0*p.rows : c0*p.rows+p.rows]
		col1 := p.block[c1*p.rows : c1*p.rows+p.rows]
		col2 := p.block[c2*p.rows : c2*p.rows+p.rows]
		col3 := p.block[c3*p.rows : c3*p.rows+p.rows]
		for i := range col0 {
			s := dst[i] + v0*col0[i]
			s += v1 * col1[i]
			s += v2 * col2[i]
			s += v3 * col3[i]
			dst[i] = s
		}
	}
	for ; k < nnz; k++ {
		c := int(x.Idx[k])
		if c >= p.cols {
			break
		}
		v := x.Val[k]
		col := p.block[c*p.rows : c*p.rows+p.rows]
		for i := range col {
			dst[i] += v * col[i]
		}
	}
}

// decision evaluates the packed decision function into the borrowed dots
// buffer: the same coef-weighted kernel sum as the row-engine path, with
// kernel.FinishDot mapping each dot to Phi exactly as the engine does.
func (p *PackedSVs) decision(x sparse.Row, coef []float64, beta float64, buf []float64) float64 {
	p.DotsInto(x, buf)
	nx := kernel.SquaredNormOf(x)
	return p.kp.WeightedFinishDots(coef, buf, p.norms, nx) - beta
}
