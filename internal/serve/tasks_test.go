package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/sparse"
)

// svrTestModel mirrors testModel but as an epsilon-SVR: same support set
// and coefficients, so decision values line up with the classifier fixture.
func svrTestModel(beta float64) *model.Model {
	return &model.Model{
		Kernel:       kernel.Params{Type: kernel.Gaussian, Gamma: 1},
		C:            10,
		Task:         model.TaskSVR,
		Epsilon:      0.1,
		SV:           sparse.FromDense([][]float64{{-1, 0}, {1, 0.5}}),
		Coef:         []float64{-1, 1},
		Beta:         beta,
		TrainSamples: 10,
	}
}

func oneClassTestModel() *model.Model {
	return &model.Model{
		Kernel:       kernel.Params{Type: kernel.Gaussian, Gamma: 1},
		C:            1,
		Task:         model.TaskOneClass,
		Nu:           0.5,
		SV:           sparse.FromDense([][]float64{{-1, 0}, {1, 0.5}}),
		Coef:         []float64{0.4, 0.6},
		Beta:         0.2,
		TrainSamples: 10,
	}
}

// TestReloadRejectsTaskKindChange pins the endpoint's task kind: swapping
// the file behind a classifier endpoint for an SVR or one-class model must
// fail with an error naming both kinds, and the previous snapshot must stay
// live and serving.
func TestReloadRejectsTaskKindChange(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/m.model"
	saveModel(t, testModel(0.5), path)

	reg := NewRegistry()
	if err := reg.Add("clf", path); err != nil {
		t.Fatal(err)
	}
	for _, swap := range []*model.Model{svrTestModel(0), oneClassTestModel()} {
		saveModel(t, swap, path)
		_, err := reg.Reload("clf")
		if err == nil {
			t.Fatalf("reload with a %s file accepted on a c_svc endpoint", swap.TaskKind())
		}
		if !strings.Contains(err.Error(), string(swap.TaskKind())) || !strings.Contains(err.Error(), "c_svc") {
			t.Errorf("error %q does not name both task kinds", err)
		}
	}
	// The original classifier snapshot survived every rejected swap.
	snap, ok := reg.Get("clf")
	if !ok {
		t.Fatal("endpoint vanished")
	}
	if snap.Version != 1 || snap.Model.TaskKind() != model.TaskCSVC {
		t.Errorf("snapshot version %d task %s, want version 1 c_svc", snap.Version, snap.Model.TaskKind())
	}
	// Restoring a classifier file makes reload work again.
	saveModel(t, testModel(1.5), path)
	snap, err := reg.Reload("clf")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 {
		t.Errorf("version %d after recovery reload, want 2", snap.Version)
	}

	// And the guard is symmetric: an SVR endpoint refuses a classifier file.
	svrPath := dir + "/svr.model"
	saveModel(t, svrTestModel(0), svrPath)
	if err := reg.Add("svr", svrPath); err != nil {
		t.Fatal(err)
	}
	saveModel(t, testModel(0), svrPath)
	if _, err := reg.Reload("svr"); err == nil {
		t.Error("reload with a c_svc file accepted on an epsilon_svr endpoint")
	}
}

// TestReloadTaskKindChangeOverHTTP checks the same rejection surfaces
// through POST /v1/models/{name}/reload with a clear error body, leaving
// the endpoint serving.
func TestReloadTaskKindChangeOverHTTP(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/m.model"
	saveModel(t, testModel(0.5), path)
	s, ts := newTestServer(t, Config{}, map[string]string{"clf": path})
	defer s.Close()

	saveModel(t, svrTestModel(0), path)
	resp, err := http.Post(ts.URL+"/v1/models/clf/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(body["error"], "epsilon_svr") {
		t.Errorf("error body %q does not name the offending task kind", body["error"])
	}

	// The classifier keeps answering.
	resp, raw := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Model: "clf", Libsvm: "1:0.7 2:0.2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after rejected reload: status %d: %s", resp.StatusCode, raw)
	}
	var pr PredictResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Task != "c_svc" || pr.Version != 1 {
		t.Errorf("response task %q version %d, want c_svc version 1", pr.Task, pr.Version)
	}
}

// TestPredictTaskSemantics checks the label contract per task kind on both
// the coalesced single-row path and the direct batch path: SVR labels are
// the regression value, one-class labels are the +/-1 verdict.
func TestPredictTaskSemantics(t *testing.T) {
	dir := t.TempDir()
	svrPath, ocPath := dir+"/svr.model", dir+"/oc.model"
	saveModel(t, svrTestModel(0.3), svrPath)
	saveModel(t, oneClassTestModel(), ocPath)
	s, ts := newTestServer(t, Config{}, map[string]string{"svr": svrPath, "oc": ocPath})
	defer s.Close()

	probe := Instance{Libsvm: "1:0.7 2:0.2"}
	for _, tc := range []struct {
		name string
		task string
	}{{"svr", "epsilon_svr"}, {"oc", "one_class"}} {
		for _, batch := range []int{1, 2} { // 1 = coalesced path, 2 = direct path
			inst := make([]Instance, batch)
			for i := range inst {
				inst[i] = probe
			}
			resp, raw := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Model: tc.name, Instances: inst})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s batch=%d: status %d: %s", tc.name, batch, resp.StatusCode, raw)
			}
			var pr PredictResponse
			if err := json.Unmarshal(raw, &pr); err != nil {
				t.Fatal(err)
			}
			if pr.Task != tc.task {
				t.Errorf("%s batch=%d: task %q, want %q", tc.name, batch, pr.Task, tc.task)
			}
			for i, p := range pr.Predictions {
				switch tc.name {
				case "svr":
					if p.Label != p.Decision {
						t.Errorf("svr batch=%d pred %d: label %v != decision %v", batch, i, p.Label, p.Decision)
					}
				case "oc":
					want := -1.0
					if p.Decision >= 0 {
						want = 1
					}
					if p.Label != want {
						t.Errorf("oc batch=%d pred %d: label %v, want %v (decision %v)", batch, i, p.Label, want, p.Decision)
					}
				}
			}
		}
	}

	// /v1/models reports each endpoint's task.
	resp, raw := postJSONGet(t, ts.URL+"/v1/models")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("models: status %d", resp.StatusCode)
	}
	var ml struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.Unmarshal(raw, &ml); err != nil {
		t.Fatal(err)
	}
	tasks := map[string]string{}
	for _, mi := range ml.Models {
		tasks[mi.Name] = mi.Task
	}
	if tasks["svr"] != "epsilon_svr" || tasks["oc"] != "one_class" {
		t.Errorf("model list tasks = %v", tasks)
	}
}

func postJSONGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestTaskHotReloadStress mirrors TestHotReloadStress for an SVR endpoint:
// predictors hammer the endpoint while the reloader alternates the model
// file between two betas, with periodic poison writes of a one-class model
// whose reload must be rejected without disturbing the serving snapshot.
// Every response must match the beta of the version it claims was served,
// and only successful (same-kind) reloads may advance the version.
func TestTaskHotReloadStress(t *testing.T) {
	const (
		predictors = 8
		requests   = 120 // per predictor
		reloads    = 90
		betaA      = 0.25 // odd versions (the initial Add is version 1)
		betaB      = 5.25 // even versions
	)
	dir := t.TempDir()
	path := dir + "/svr.model"
	saveModel(t, svrTestModel(betaA), path)

	reg := NewRegistry()
	if err := reg.Add("svr", path); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{})
	defer s.Close()
	handler := s.Handler()

	probe := "1:0.7 2:0.2"
	probeRow, err := dataset.ParseRow(probe)
	if err != nil {
		t.Fatal(err)
	}
	rawDV := svrTestModel(0).DecisionValue(probeRow)

	body, err := json.Marshal(PredictRequest{Model: "svr", Instances: []Instance{{Libsvm: probe}}})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, predictors+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 2; v <= reloads+1; v++ {
			if v%7 == 0 {
				// Poison write: a one-class file must be rejected and must
				// not advance the version.
				if err := oneClassTestModel().Save(path); err != nil {
					errc <- fmt.Errorf("reload %d: poison save: %w", v, err)
					return
				}
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/models/svr/reload", nil))
				if rec.Code == http.StatusOK {
					errc <- fmt.Errorf("reload %d: one-class poison accepted on SVR endpoint", v)
					return
				}
			}
			beta := betaA
			if v%2 == 0 {
				beta = betaB
			}
			if err := svrTestModel(beta).Save(path); err != nil {
				errc <- fmt.Errorf("reload %d: save: %w", v, err)
				return
			}
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/models/svr/reload", nil))
			if rec.Code != http.StatusOK {
				errc <- fmt.Errorf("reload %d: status %d: %s", v, rec.Code, rec.Body.String())
				return
			}
		}
	}()

	for g := 0; g < predictors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				rec := httptest.NewRecorder()
				req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				handler.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errc <- fmt.Errorf("predictor %d req %d: status %d: %s", g, i, rec.Code, rec.Body.String())
					return
				}
				var pr PredictResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
					errc <- fmt.Errorf("predictor %d req %d: %w", g, i, err)
					return
				}
				if pr.Task != "epsilon_svr" || len(pr.Predictions) != 1 {
					errc <- fmt.Errorf("predictor %d req %d: response %+v", g, i, pr)
					return
				}
				p := pr.Predictions[0]
				if p.Label != p.Decision {
					errc <- fmt.Errorf("predictor %d req %d: SVR label %v != decision %v", g, i, p.Label, p.Decision)
					return
				}
				if pr.Version < 1 || pr.Version > reloads+1 {
					errc <- fmt.Errorf("predictor %d req %d: version %d out of range", g, i, pr.Version)
					return
				}
				wantBeta := betaA
				if pr.Version%2 == 0 {
					wantBeta = betaB
				}
				if math.Abs(p.Decision-(rawDV-wantBeta)) > 1e-9 {
					errc <- fmt.Errorf("predictor %d req %d: version %d decision %v, want %v (torn snapshot?)",
						g, i, pr.Version, p.Decision, rawDV-wantBeta)
					return
				}
			}
		}(g)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	snap, ok := reg.Get("svr")
	if !ok {
		t.Fatal("svr model vanished")
	}
	if snap.Version != reloads+1 {
		t.Errorf("final version %d, want %d (poison reloads must not advance it)", snap.Version, reloads+1)
	}
	if snap.Model.TaskKind() != model.TaskSVR {
		t.Errorf("final task %s, want epsilon_svr", snap.Model.TaskKind())
	}
}
