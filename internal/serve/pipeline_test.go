package serve

import (
	"context"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/linear"
	"repro/internal/model"
	"repro/internal/sparse"
)

// trainLinear fits a small linear-w model (no support vectors: serving it
// exercises the W-only predict path end to end).
func trainLinear(t *testing.T, c float64, seed int64) *model.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n, dim = 120, 6
	b := sparse.NewBuilder(dim)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		idx := make([]int32, 0, dim)
		val := make([]float64, 0, dim)
		var s float64
		for j := 0; j < dim; j++ {
			if rng.Float64() < 0.7 {
				v := rng.NormFloat64()
				idx = append(idx, int32(j))
				val = append(val, v)
				if j%2 == 0 {
					s += v
				} else {
					s -= v
				}
			}
		}
		b.AddRow(idx, val)
		if s >= 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	res, err := linear.Train(b.Build(), y, linear.Config{C: c, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return res.Model
}

// TestLinearModelServingRoundTrip is the satellite-2 round trip: a trained
// linear-w model (nil SV) is saved, served, predicted against through the
// coalescing pipeline, hot-reloaded with a retrained version, and predicted
// against again — each answer bit-identical to the in-process model.
func TestLinearModelServingRoundTrip(t *testing.T) {
	m1 := trainLinear(t, 1.0, 7)
	path := t.TempDir() + "/linear.model"
	saveModel(t, m1, path)
	s, ts := newTestServer(t, Config{CoalesceWindow: 200 * time.Microsecond}, map[string]string{"default": path})
	defer s.Close()

	probe := map[string]float64{"1": 0.4, "3": -1.2, "6": 0.9}
	probeRow := sparse.Row{Idx: []int32{0, 2, 5}, Val: []float64{0.4, -1.2, 0.9}}

	resp, data := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Features: probe})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict on linear model: %d %s", resp.StatusCode, data)
	}
	pr := decodePredictions(t, data)
	if pr.Version != 1 || len(pr.Predictions) != 1 {
		t.Fatalf("round 1: version %d, %d predictions", pr.Version, len(pr.Predictions))
	}
	if want := m1.DecisionValue(probeRow); math.Float64bits(pr.Predictions[0].Decision) != math.Float64bits(want) {
		t.Fatalf("round 1 decision %v, want %v", pr.Predictions[0].Decision, want)
	}

	// Retrain with a different C and seed: a genuinely different hyperplane.
	m2 := trainLinear(t, 0.05, 99)
	if math.Float64bits(m2.DecisionValue(probeRow)) == math.Float64bits(m1.DecisionValue(probeRow)) {
		t.Fatal("retrained model predicts identically; test cannot tell versions apart")
	}
	saveModel(t, m2, path)
	if resp, data := postJSON(t, ts.URL+"/v1/models/default/reload", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, data)
	}

	resp, data = postJSON(t, ts.URL+"/v1/predict", PredictRequest{Features: probe})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after reload: %d %s", resp.StatusCode, data)
	}
	pr = decodePredictions(t, data)
	if pr.Version != 2 {
		t.Fatalf("after reload: version %d, want 2", pr.Version)
	}
	if want := m2.DecisionValue(probeRow); math.Float64bits(pr.Predictions[0].Decision) != math.Float64bits(want) {
		t.Fatalf("after reload decision %v, want %v", pr.Predictions[0].Decision, want)
	}
}

// TestRegistryPacksWithinBudget: a registry with a pack budget publishes
// packed snapshots whose predictions stay bit-identical to the plain model.
func TestRegistryPacksWithinBudget(t *testing.T) {
	m := testModel(0.4)
	path := t.TempDir() + "/m.model"
	saveModel(t, m, path)

	reg := NewRegistry()
	reg.SetPackBudget(model.DefaultPackBudget)
	if err := reg.Add("m", path); err != nil {
		t.Fatal(err)
	}
	snap, _ := reg.Get("m")
	if !snap.Packed {
		t.Fatal("small kernel model not packed despite budget")
	}
	if snap.Model.PackedBytes() == 0 {
		t.Fatal("packed snapshot reports zero packed bytes")
	}
	probe := sparse.Row{Idx: []int32{0, 1}, Val: []float64{0.3, -0.8}}
	plain, _ := LoadModel(path)
	if math.Float64bits(snap.Model.DecisionValue(probe)) != math.Float64bits(plain.DecisionValue(probe)) {
		t.Fatal("packed prediction differs from plain model")
	}

	// Reload under the budget stays packed; a zero budget disables packing.
	if snap2, err := reg.Reload("m"); err != nil || !snap2.Packed {
		t.Fatalf("reload: packed=%v err=%v", snap2 != nil && snap2.Packed, err)
	}
	reg.SetPackBudget(0)
	if snap3, err := reg.Reload("m"); err != nil || snap3.Packed {
		t.Fatalf("reload with packing disabled: packed=%v err=%v", snap3 != nil && snap3.Packed, err)
	}
}

// TestOverloadShedsExplicit429: with the batch gate held and a 2-deep
// queue, a third concurrent request must be rejected with an explicit 429
// — and the queued ones still answered once capacity frees up.
func TestOverloadShedsExplicit429(t *testing.T) {
	m := testModel(0.1)
	path := t.TempDir() + "/m.model"
	saveModel(t, m, path)
	s, ts := newTestServer(t, Config{
		CoalesceBatch:  1,
		CoalesceWindow: 100 * time.Microsecond,
		QueueDepth:     2,
		MaxInFlight:    1,
	}, map[string]string{"default": path})
	defer s.Close()

	p := s.pipelines["default"]
	// Hold the single batch-execution slot so admitted requests pile up.
	if err := p.shed.AcquireBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Features: map[string]float64{"1": 0.5}})
			codes[i] = resp.StatusCode
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.shed.QueueDepth() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := p.shed.QueueDepth(); d < 2 {
		t.Fatalf("queue depth %d, want 2 admitted and waiting", d)
	}
	resp, data := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Features: map[string]float64{"1": 0.5}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request over a full queue: %d %s, want 429", resp.StatusCode, data)
	}
	p.shed.ReleaseBatch()
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("queued request %d answered %d, want 200", i, c)
		}
	}
	if _, shedCount := p.shed.Stats(); shedCount == 0 {
		t.Fatal("shedder counted no rejections")
	}
}
