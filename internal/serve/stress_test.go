package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestHotReloadStress is the race-hardening test for the registry's
// hot-reload path: predictor goroutines hammer the predict handler while a
// reloader alternates the model file between two versions and republishes
// it over the HTTP reload endpoint. Every response must be internally
// consistent — the decision value must match the version the response
// claims was served — which is exactly the snapshot-pinning guarantee a
// torn reload would break. The test is fully deterministic: bounded
// request/reload counts, in-process recorders, no sleeps or wall-clock
// dependence. It is designed to run under -race (the default CI test job).
func TestHotReloadStress(t *testing.T) {
	const (
		predictors = 8
		requests   = 150 // per predictor
		reloads    = 120
		betaA      = 0.25 // odd versions (the initial Add is version 1)
		betaB      = 5.25 // even versions
	)
	dir := t.TempDir()
	path := dir + "/hot.model"
	staticPath := dir + "/static.model"
	saveModel(t, testModel(betaA), path)
	saveModel(t, testModel(-1), staticPath)

	reg := NewRegistry()
	if err := reg.Add("hot", path); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("static", staticPath); err != nil {
		t.Fatal(err)
	}
	handler := New(reg, Config{}).Handler()

	// The probe row's raw (beta-free) decision value, computed once from a
	// reference model: the served decision must equal raw - beta(version).
	probe := "1:0.7 2:0.2"
	probeRow, err := dataset.ParseRow(probe)
	if err != nil {
		t.Fatal(err)
	}
	rawDV := testModel(0).DecisionValue(probeRow)

	body, err := json.Marshal(PredictRequest{
		Model:     "hot",
		Instances: []Instance{{Libsvm: probe}},
	})
	if err != nil {
		t.Fatal(err)
	}
	staticBody, err := json.Marshal(PredictRequest{
		Model:     "static",
		Instances: []Instance{{Libsvm: probe}},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, predictors+1)

	// Reloader: rewrite the file with the other beta, then publish it via
	// POST /v1/models/hot/reload. Writing and reloading from one goroutine
	// keeps the file itself race-free; the contested state is the snapshot
	// pointer the predictors read.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 2; v <= reloads+1; v++ {
			beta := betaA
			if v%2 == 0 {
				beta = betaB
			}
			m := testModel(beta)
			if err := m.Save(path); err != nil {
				errc <- fmt.Errorf("reload %d: save: %w", v, err)
				return
			}
			rec := httptest.NewRecorder()
			req := httptest.NewRequest("POST", "/v1/models/hot/reload", nil)
			handler.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				errc <- fmt.Errorf("reload %d: status %d: %s", v, rec.Code, rec.Body.String())
				return
			}
		}
	}()

	for g := 0; g < predictors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				// Interleave a static-model request so reloads of one entry
				// are observed to never disturb another.
				payload, wantModel := body, "hot"
				if i%5 == 4 {
					payload, wantModel = staticBody, "static"
				}
				rec := httptest.NewRecorder()
				req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(payload))
				req.Header.Set("Content-Type", "application/json")
				handler.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errc <- fmt.Errorf("predictor %d req %d: status %d: %s", g, i, rec.Code, rec.Body.String())
					return
				}
				var pr PredictResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
					errc <- fmt.Errorf("predictor %d req %d: %w", g, i, err)
					return
				}
				if pr.Model != wantModel || len(pr.Predictions) != 1 {
					errc <- fmt.Errorf("predictor %d req %d: response %+v", g, i, pr)
					return
				}
				dv := pr.Predictions[0].Decision
				switch wantModel {
				case "static":
					if pr.Version != 1 {
						errc <- fmt.Errorf("predictor %d req %d: static model reports version %d", g, i, pr.Version)
						return
					}
					if math.Abs(dv-(rawDV+1)) > 1e-9 {
						errc <- fmt.Errorf("predictor %d req %d: static decision %v, want %v", g, i, dv, rawDV+1)
						return
					}
				case "hot":
					if pr.Version < 1 || pr.Version > reloads+1 {
						errc <- fmt.Errorf("predictor %d req %d: version %d out of range", g, i, pr.Version)
						return
					}
					// Snapshot pinning: the decision must match the beta of
					// the exact version the response says it served.
					wantBeta := betaA
					if pr.Version%2 == 0 {
						wantBeta = betaB
					}
					if math.Abs(dv-(rawDV-wantBeta)) > 1e-9 {
						errc <- fmt.Errorf("predictor %d req %d: version %d decision %v, want %v (torn snapshot?)",
							g, i, pr.Version, dv, rawDV-wantBeta)
						return
					}
				}
			}
		}(g)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// After the storm, the entry must be live at its final version.
	snap, ok := reg.Get("hot")
	if !ok {
		t.Fatal("hot model vanished")
	}
	if snap.Version != reloads+1 {
		t.Errorf("final version %d, want %d", snap.Version, reloads+1)
	}
}
