// Package serve is the production inference side of the repository: it
// loads trained models (internal/model files written by cmd/svmtrain) into
// a concurrent registry and exposes them over HTTP with batched
// prediction, atomic hot-reload, Prometheus-text metrics, and graceful
// shutdown. The training stack produces the support-vector set; this
// package is what answers traffic with it.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
)

// LoadModel loads and fully validates a model file for serving, warming
// the support-vector norm cache so concurrent DecisionValue calls are safe.
// It is the one loader shared by cmd/svmserve and cmd/svmpredict: a file
// that fails validation is rejected here, at load time, never at request
// time.
func LoadModel(path string) (*model.Model, error) {
	m, err := model.Load(path)
	if err != nil {
		return nil, fmt.Errorf("model %s: %w", path, err)
	}
	// model.Load validates on read; re-check here so the serving contract
	// does not silently depend on that implementation detail.
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("model %s: %w", path, err)
	}
	m.WarmNorms()
	return m, nil
}

// Snapshot is one immutable loaded model version. Request handlers grab
// the current snapshot once and use it for the whole request, so a
// concurrent reload never changes a prediction mid-request.
type Snapshot struct {
	Model    *model.Model
	Path     string
	LoadedAt time.Time
	Version  uint64 // increments on every successful (re)load
	// Packed reports whether the model carries the dense predict-time
	// support-vector layout (model.PackedSVs), built at (re)load when the
	// registry has a pack budget and the model fits it.
	Packed bool
}

// entry is one named model slot. The atomic.Pointer is the hot-reload
// mechanism: readers Load it lock-free; Reload swaps in a fresh snapshot
// after the new file parsed and validated, and in-flight requests keep the
// snapshot they already hold.
type entry struct {
	path    string
	ptr     atomic.Pointer[Snapshot]
	version atomic.Uint64
	// task is the task kind the endpoint was registered with. Reload pins
	// it: clients decode responses by task (regression value vs class
	// label), so swapping an SVR model under a classifier endpoint would
	// silently change response semantics mid-flight.
	task model.Task
	// reloadMu serializes reloads of this entry so two concurrent reloads
	// cannot interleave read-file/store-pointer and publish stale bytes.
	reloadMu sync.Mutex
}

// Registry is a concurrent name -> model map. The entry set is fixed after
// setup (Add); only the snapshots inside entries change at runtime, so
// lookups take a read lock only on the map itself.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	// packBudget, when positive, packs every (re)loaded model whose dense
	// support-vector block fits within this many bytes. Zero disables
	// packing (the default, so registries built for tests are unchanged).
	packBudget atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// SetPackBudget enables predict-time packing: every model (re)loaded from
// now on whose dense support-vector block fits within budget bytes gets a
// model.PackedSVs layout built before it is published. budget <= 0
// disables packing for future loads. Already-published snapshots are not
// repacked; Reload them to apply a new budget.
func (r *Registry) SetPackBudget(budget int64) {
	r.packBudget.Store(budget)
}

// pack applies the registry's pack budget to a freshly loaded model and
// reports whether the packed layout was built.
func (r *Registry) pack(m *model.Model) bool {
	b := r.packBudget.Load()
	if b <= 0 {
		return false
	}
	return m.Pack(b)
}

// Add loads the model file at path and registers it under name. Adding a
// name twice is an error (use Reload for updates).
func (r *Registry) Add(name, path string) error {
	if name == "" {
		return fmt.Errorf("serve: empty model name")
	}
	m, err := LoadModel(path)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	e := &entry{path: path, task: m.TaskKind()}
	e.version.Store(1)
	e.ptr.Store(&Snapshot{Model: m, Path: path, LoadedAt: time.Now(), Version: 1, Packed: r.pack(m)})
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("serve: model %q already registered", name)
	}
	r.entries[name] = e
	return nil
}

// Get returns the current snapshot for name.
func (r *Registry) Get(name string) (*Snapshot, bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return e.ptr.Load(), true
}

// Reload re-reads the model file behind name and atomically publishes the
// new snapshot. On any error the previous snapshot stays live — a bad file
// on disk can never take down a serving model.
func (r *Registry) Reload(name string) (*Snapshot, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", name)
	}
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	m, err := LoadModel(e.path)
	if err != nil {
		return nil, fmt.Errorf("serve: reload %q: %w", name, err)
	}
	if got := m.TaskKind(); got != e.task {
		return nil, fmt.Errorf("serve: reload %q: model file is %s but this endpoint serves %s; register a new endpoint instead of changing task kind in place", name, got, e.task)
	}
	snap := &Snapshot{Model: m, Path: e.path, LoadedAt: time.Now(), Version: e.version.Add(1), Packed: r.pack(m)}
	e.ptr.Store(snap)
	return snap, nil
}

// Names lists the registered model names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Resolve picks the model a request addressed: the requested name when
// given, the sole registered model when exactly one exists, else the
// conventional default name "default".
func (r *Registry) Resolve(requested string) (string, *Snapshot, error) {
	if requested != "" {
		s, ok := r.Get(requested)
		if !ok {
			return "", nil, fmt.Errorf("serve: unknown model %q", requested)
		}
		return requested, s, nil
	}
	names := r.Names()
	if len(names) == 1 {
		s, _ := r.Get(names[0])
		return names[0], s, nil
	}
	if s, ok := r.Get("default"); ok {
		return "default", s, nil
	}
	return "", nil, fmt.Errorf("serve: no model named in request and no \"default\" among %d models", len(names))
}
