// Package router spreads requests over N replicas of a serving pipeline
// with the power-of-two-choices policy: sample two distinct replicas
// uniformly, route to the one with the shorter queue. Two choices is the
// classical sweet spot — it collapses the maximum queue imbalance from
// O(log n / log log n) to O(log log n) versus one random choice, at the
// cost of reading a single extra atomic, and it needs no shared state
// beyond each replica's own depth counter (no lock contention on one
// registry entry).
package router

import "math/rand/v2"

// Replica is one routable pipeline instance; its queue depth is the load
// signal (batcher.Batcher implements it).
type Replica interface {
	QueueDepth() int64
}

// Router picks replicas. The replica set is fixed at construction, so
// Pick is lock-free and safe for concurrent use.
type Router[R Replica] struct {
	replicas []R
}

// New builds a router over a fixed, non-empty replica set.
func New[R Replica](replicas []R) *Router[R] {
	if len(replicas) == 0 {
		panic("router: empty replica set")
	}
	return &Router[R]{replicas: replicas}
}

// Len returns the replica count.
func (r *Router[R]) Len() int { return len(r.replicas) }

// Replicas returns the routed replica set (shared slice; do not mutate).
func (r *Router[R]) Replicas() []R { return r.replicas }

// Pick returns a replica chosen by power-of-two-choices on queue depth,
// along with its index. With one replica it is returned directly; with
// two, both are always examined, making the pick deterministic under
// unequal load.
func (r *Router[R]) Pick() (int, R) {
	n := len(r.replicas)
	if n == 1 {
		return 0, r.replicas[0]
	}
	i := rand.IntN(n)
	j := rand.IntN(n - 1)
	if j >= i {
		j++
	}
	if r.replicas[j].QueueDepth() < r.replicas[i].QueueDepth() {
		i = j
	}
	return i, r.replicas[i]
}
