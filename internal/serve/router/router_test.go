package router

import "testing"

type fakeReplica struct {
	id    int
	depth int64
}

func (f *fakeReplica) QueueDepth() int64 { return f.depth }

func TestPickPrefersShorterQueue(t *testing.T) {
	// With exactly two replicas, power-of-two-choices examines both, so
	// the pick is deterministic whenever depths differ.
	a, b := &fakeReplica{id: 0, depth: 5}, &fakeReplica{id: 1, depth: 0}
	r := New([]*fakeReplica{a, b})
	for k := 0; k < 100; k++ {
		if i, rep := r.Pick(); i != 1 || rep.id != 1 {
			t.Fatalf("pick %d chose replica %d (depth %d), want the idle one", k, i, rep.depth)
		}
	}
	b.depth, a.depth = 7, 2
	for k := 0; k < 100; k++ {
		if i, _ := r.Pick(); i != 0 {
			t.Fatalf("pick %d chose replica %d after load flipped", k, i)
		}
	}
}

func TestPickSingleReplica(t *testing.T) {
	only := &fakeReplica{id: 0}
	r := New([]*fakeReplica{only})
	if i, rep := r.Pick(); i != 0 || rep != only {
		t.Fatal("single-replica pick")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestPickSpreadsOverEqualReplicas(t *testing.T) {
	reps := []*fakeReplica{{id: 0}, {id: 1}, {id: 2}, {id: 3}}
	r := New(reps)
	seen := make(map[int]int)
	for k := 0; k < 4000; k++ {
		i, _ := r.Pick()
		seen[i]++
	}
	for i := range reps {
		if seen[i] < 500 {
			t.Fatalf("replica %d picked only %d/4000 times under equal load: %v", i, seen[i], seen)
		}
	}
}

func TestNewEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an empty replica set")
		}
	}()
	New([]*fakeReplica{})
}
