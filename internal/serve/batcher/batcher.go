// Package batcher coalesces concurrent single-row predictions into batched
// model evaluations. A collector goroutine accumulates submitted rows and
// closes each window on whichever comes first: the batch filling to
// MaxBatch, or a wait deadline derived from MaxWait and the earliest
// request deadline in the window. Every admitted request is answered
// exactly once — a caller that gives up on its context still leaves its
// slot in the in-flight batch, whose buffered response channel absorbs the
// late answer, so nothing is ever dropped silently.
//
// The batcher resolves its model through a Source closure once per batch,
// so a whole batch executes against one model snapshot: a concurrent
// hot-reload publishes a new version for the next batch, never mid-batch.
package batcher

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/sparse"
)

var (
	// ErrQueueFull rejects a submission when the intake queue is at
	// capacity; callers translate it to an overload response.
	ErrQueueFull = errors.New("batcher: queue full")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("batcher: closed")
	// ErrNoModel answers requests whose Source returned no model
	// (e.g. the model was removed between admission and execution).
	ErrNoModel = errors.New("batcher: no model")
)

// Source yields the model snapshot a batch executes against, plus its
// version. It is called once per batch, under no lock held by the caller.
type Source func() (*model.Model, uint64)

// Gate bounds concurrent batch executions (implemented by shed.Shedder).
type Gate interface {
	AcquireBatch(ctx context.Context) error
	ReleaseBatch()
}

// Config tunes a Batcher. The zero value is usable.
type Config struct {
	// MaxBatch closes a window when this many rows coalesced (default 32).
	MaxBatch int
	// MaxWait closes a window this long after its first row arrived
	// (default 2ms). A request with a context deadline tightens its
	// window to half the time it has left.
	MaxWait time.Duration
	// Queue bounds rows submitted and not yet answered — queued, windowed,
	// or executing (default 1024). Submissions past the bound are rejected
	// with ErrQueueFull.
	Queue int
	// Workers is passed to model.DecisionValues per batch; 0 selects
	// GOMAXPROCS.
	Workers int
	// Gate, when non-nil, bounds concurrent batch executions.
	Gate Gate
	// OnBatch, when non-nil, observes every executed batch: coalesced
	// size, the oldest row's queue wait, and the execution time.
	OnBatch func(size int, queueWait, exec time.Duration)
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Queue <= 0 {
		c.Queue = 1024
	}
	return c
}

// Result is one answered prediction.
type Result struct {
	Decision float64
	Label    float64
	Prob     float64
	HasProb  bool
	// Version is the model snapshot version the whole batch ran against.
	Version uint64
	// BatchSize is how many rows shared this evaluation.
	BatchSize int
}

type response struct {
	res Result
	err error
}

type request struct {
	ctx  context.Context
	row  sparse.Row
	resc chan response // buffered(1): delivery never blocks on a gone caller
	enq  time.Time
}

// Batcher coalesces Predict calls. Create with New, stop with Close.
type Batcher struct {
	cfg Config
	src Source

	in   chan *request
	done chan struct{}

	mu     sync.RWMutex // fences Submit against Close
	closed bool

	loopWg sync.WaitGroup
	execWg sync.WaitGroup

	depth atomic.Int64 // rows submitted and not yet answered
}

// New starts a Batcher's collector goroutine.
func New(src Source, cfg Config) *Batcher {
	b := &Batcher{
		cfg:  cfg.withDefaults(),
		src:  src,
		done: make(chan struct{}),
	}
	b.in = make(chan *request, b.cfg.Queue)
	b.loopWg.Add(1)
	go func() {
		defer b.loopWg.Done()
		b.loop()
	}()
	return b
}

// QueueDepth returns the number of rows submitted and not yet answered —
// the load signal the replica router compares.
func (b *Batcher) QueueDepth() int64 { return b.depth.Load() }

// Predict submits one row and blocks for its answer. ErrQueueFull reports
// an intake queue at capacity (nothing was enqueued); ErrClosed a batcher
// shut down before submission. When ctx expires while waiting, Predict
// returns ctx.Err() immediately — the row still executes with its batch,
// and the late answer lands in the buffered channel instead of a caller.
func (b *Batcher) Predict(ctx context.Context, row sparse.Row) (Result, error) {
	r := &request{ctx: ctx, row: row, resc: make(chan response, 1), enq: time.Now()}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return Result{}, ErrClosed
	}
	if b.depth.Add(1) > int64(b.cfg.Queue) {
		b.depth.Add(-1)
		b.mu.RUnlock()
		return Result{}, ErrQueueFull
	}
	select {
	case b.in <- r:
		b.mu.RUnlock()
	default:
		// Unreachable: the depth bound never exceeds the channel capacity,
		// so an admitted request always has a free slot.
		b.depth.Add(-1)
		b.mu.RUnlock()
		return Result{}, ErrQueueFull
	}
	select {
	case resp := <-r.resc:
		return resp.res, resp.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Close drains the batcher: queued rows still execute, in-flight batches
// finish, then the collector exits. Subsequent Predict calls return
// ErrClosed. Close is idempotent and safe for concurrent use.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.done)
	b.loopWg.Wait()
	b.execWg.Wait()
}

// loop is the collector: it owns the open window and decides when to ship
// it.
func (b *Batcher) loop() {
	var (
		batch   []*request
		timer   *time.Timer
		timerC  <-chan time.Time
		closeAt time.Time
	)
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
	}
	ship := func() {
		stopTimer()
		if len(batch) > 0 {
			b.startBatch(batch)
			batch = nil
		}
	}
	// tighten shrinks the open window for a request that cannot afford the
	// full MaxWait: it gets at most half its remaining deadline to wait
	// for co-riders. Returns false when the window must ship right now.
	tighten := func(r *request) bool {
		at := r.enq.Add(b.cfg.MaxWait)
		if dl, ok := r.ctx.Deadline(); ok {
			if budget := dl.Sub(r.enq) / 2; budget < b.cfg.MaxWait {
				at = r.enq.Add(budget)
			}
		}
		if closeAt.IsZero() || at.Before(closeAt) {
			closeAt = at
			d := time.Until(at)
			if d <= 0 {
				return false
			}
			stopTimer()
			timer = time.NewTimer(d)
			timerC = timer.C
		}
		return true
	}
	for {
		select {
		case <-b.done:
			ship()
			// Drain everything already queued; each row is still executed
			// (and answered), never dropped.
			for {
				select {
				case r := <-b.in:
					batch = append(batch, r)
					if len(batch) >= b.cfg.MaxBatch {
						ship()
					}
				default:
					ship()
					return
				}
			}
		case r := <-b.in:
			if len(batch) == 0 {
				closeAt = time.Time{}
			}
			batch = append(batch, r)
			if len(batch) >= b.cfg.MaxBatch || !tighten(r) {
				ship()
			}
		case <-timerC:
			timerC = nil
			ship()
		}
	}
}

// startBatch hands a closed window to an executor goroutine, so the
// collector keeps coalescing the next window while this one runs.
func (b *Batcher) startBatch(reqs []*request) {
	b.execWg.Add(1)
	go func() {
		defer b.execWg.Done()
		b.runBatch(reqs)
	}()
}

func (b *Batcher) runBatch(reqs []*request) {
	oldest := reqs[0].enq
	// Requests whose context expired while queued are answered with their
	// context error before any work is spent on them.
	live := make([]*request, 0, len(reqs))
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			b.deliver(r, Result{}, err)
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	if g := b.cfg.Gate; g != nil {
		// Background context: a batch of admitted requests always runs.
		if err := g.AcquireBatch(context.Background()); err != nil {
			for _, r := range live {
				b.deliver(r, Result{}, err)
			}
			return
		}
		defer g.ReleaseBatch()
	}
	m, version := b.src()
	if m == nil {
		for _, r := range live {
			b.deliver(r, Result{}, ErrNoModel)
		}
		return
	}
	start := time.Now()
	rows := make([]sparse.Row, len(live))
	for i, r := range live {
		rows[i] = r.row
	}
	dv := m.DecisionValuesRows(rows, b.cfg.Workers)
	svr := m.TaskKind() == model.TaskSVR
	for i, r := range live {
		res := Result{Decision: dv[i], Version: version, BatchSize: len(live)}
		switch {
		case svr:
			// Regression: the decision value IS the prediction.
			res.Label = dv[i]
		case dv[i] >= 0:
			res.Label = 1
		default:
			res.Label = -1
		}
		if p, ok := m.ProbabilityFromDecision(dv[i]); ok {
			res.Prob, res.HasProb = p, true
		}
		b.deliver(r, res, nil)
	}
	if b.cfg.OnBatch != nil {
		b.cfg.OnBatch(len(live), start.Sub(oldest), time.Since(start))
	}
}

func (b *Batcher) deliver(r *request, res Result, err error) {
	r.resc <- response{res, err}
	b.depth.Add(-1)
}
