package batcher_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/serve/batcher"
	"repro/internal/sparse"
)

// testModel builds a tiny 2-SV RBF model whose decision function shifts
// with beta, so predictions identify the model version that produced them.
func testModel(beta float64) *model.Model {
	b := sparse.NewBuilder(2)
	b.AddRow([]int32{0}, []float64{-1})
	b.AddRow([]int32{0, 1}, []float64{1, 0.5})
	return &model.Model{
		Kernel:       kernel.Params{Type: kernel.Gaussian, Gamma: 1},
		C:            10,
		SV:           b.Build(),
		Coef:         []float64{-1, 1},
		Beta:         beta,
		TrainSamples: 2,
	}
}

func fixedSource(m *model.Model, version uint64) batcher.Source {
	m.WarmNorms()
	return func() (*model.Model, uint64) { return m, version }
}

var queryRow = sparse.Row{Idx: []int32{0, 1}, Val: []float64{0.25, 0.75}}

func TestCoalescesUnderConcurrency(t *testing.T) {
	m := testModel(0.1)
	want := m.DecisionValue(queryRow)
	var maxBatch atomic.Int64
	b := batcher.New(fixedSource(m, 7), batcher.Config{
		MaxBatch: 16,
		MaxWait:  5 * time.Millisecond,
		OnBatch: func(size int, _, _ time.Duration) {
			for {
				cur := maxBatch.Load()
				if int64(size) <= cur || maxBatch.CompareAndSwap(cur, int64(size)) {
					return
				}
			}
		},
	})
	defer b.Close()

	const clients = 32
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := b.Predict(context.Background(), queryRow)
			if err != nil {
				errs[g] = err
				return
			}
			if math.Float64bits(res.Decision) != math.Float64bits(want) {
				errs[g] = fmt.Errorf("decision %v, want %v", res.Decision, want)
			}
			if res.Version != 7 {
				errs[g] = fmt.Errorf("version %d, want 7", res.Version)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", g, err)
		}
	}
	if maxBatch.Load() < 2 {
		t.Fatalf("32 concurrent predictions never coalesced (max batch %d)", maxBatch.Load())
	}
	if d := b.QueueDepth(); d != 0 {
		t.Fatalf("queue depth %d after all answers, want 0", d)
	}
}

func TestWindowClosesOnMaxWait(t *testing.T) {
	b := batcher.New(fixedSource(testModel(0), 1), batcher.Config{
		MaxBatch: 1024,
		MaxWait:  5 * time.Millisecond,
	})
	defer b.Close()
	t0 := time.Now()
	if _, err := b.Predict(context.Background(), queryRow); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(t0); took > 500*time.Millisecond {
		t.Fatalf("lone request waited %v; the window never closed on MaxWait", took)
	}
}

func TestQueueFullRejects(t *testing.T) {
	// A gate that never admits leaves two one-row batches stuck executing;
	// with Queue=2 the third submission must bounce with ErrQueueFull.
	blocked := make(chan struct{})
	b := batcher.New(fixedSource(testModel(0), 1), batcher.Config{
		MaxBatch: 1,
		Queue:    2,
		Gate:     blockGate{wait: blocked},
	})
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := b.Predict(context.Background(), queryRow)
			results <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.QueueDepth() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := b.Predict(context.Background(), queryRow); !errors.Is(err, batcher.ErrQueueFull) {
		t.Fatalf("overfull queue accepted a submission: %v", err)
	}
	close(blocked)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued request answered with %v", err)
		}
	}
	b.Close()
}

type blockGate struct{ wait chan struct{} }

func (g blockGate) AcquireBatch(ctx context.Context) error {
	select {
	case <-g.wait:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
func (g blockGate) ReleaseBatch() {}

func TestExpiredContextAnsweredNotDropped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := batcher.New(fixedSource(testModel(0), 1), batcher.Config{MaxWait: time.Millisecond})
	defer b.Close()
	if _, err := b.Predict(ctx, queryRow); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request: got %v, want context.Canceled", err)
	}
	// The slot must drain (answered into the buffered channel), not leak.
	deadline := time.Now().Add(2 * time.Second)
	for b.QueueDepth() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := b.QueueDepth(); d != 0 {
		t.Fatalf("cancelled request leaked: queue depth %d", d)
	}
}

func TestCloseDrainsQueuedRequests(t *testing.T) {
	m := testModel(0.2)
	want := m.DecisionValue(queryRow)
	b := batcher.New(fixedSource(m, 3), batcher.Config{
		MaxBatch: 8,
		MaxWait:  time.Hour, // windows only close by size or drain
	})
	const n = 5 // below MaxBatch: these sit in an open window until Close
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			res, err := b.Predict(context.Background(), queryRow)
			if err == nil && math.Float64bits(res.Decision) != math.Float64bits(want) {
				err = fmt.Errorf("decision %v, want %v", res.Decision, want)
			}
			results <- err
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.QueueDepth() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b.Close()
	for i := 0; i < n; i++ {
		if err := <-results; err != nil {
			t.Fatalf("request during drain: %v", err)
		}
	}
	if _, err := b.Predict(context.Background(), queryRow); !errors.Is(err, batcher.ErrClosed) {
		t.Fatalf("post-Close Predict: got %v, want ErrClosed", err)
	}
}

// TestHotReloadDuringBatches is the registry/batcher consistency stress:
// predictions flow through the batcher while the model file behind the
// registry entry is rewritten with alternating betas. Every batch resolves
// its snapshot once, so each answer's decision value must match the beta
// of the version it claims — a batch can never straddle two versions.
func TestHotReloadDuringBatches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.model")
	write := func(beta float64) {
		if err := testModelSave(path, beta); err != nil {
			t.Fatal(err)
		}
	}
	betaA, betaB := 0.25, 5.25
	write(betaA)
	reg := serve.NewRegistry()
	if err := reg.Add("m", path); err != nil {
		t.Fatal(err)
	}

	decisionFor := func(beta float64) float64 {
		m := testModel(beta)
		return m.DecisionValue(queryRow)
	}
	wantA, wantB := decisionFor(betaA), decisionFor(betaB)

	b := batcher.New(func() (*model.Model, uint64) {
		snap, ok := reg.Get("m")
		if !ok {
			return nil, 0
		}
		return snap.Model, snap.Version
	}, batcher.Config{MaxBatch: 8, MaxWait: 500 * time.Microsecond})
	defer b.Close()

	const (
		predictors = 6
		perClient  = 120
		reloads    = 60
	)
	var wg sync.WaitGroup
	errs := make([]error, predictors)
	for g := 0; g < predictors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				res, err := b.Predict(context.Background(), queryRow)
				if err != nil {
					errs[g] = err
					return
				}
				want := wantA
				if res.Version%2 == 0 {
					want = wantB
				}
				if math.Float64bits(res.Decision) != math.Float64bits(want) {
					errs[g] = fmt.Errorf("version %d answered %v, want %v: batch straddled a reload",
						res.Version, res.Decision, want)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			beta := betaA
			if i%2 == 0 {
				beta = betaB // version 2, 4, ... carry betaB
			}
			write(beta)
			if _, err := reg.Reload("m"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("predictor %d: %v", g, err)
		}
	}
}

// testModelSave writes a loadable model file carrying the given beta.
func testModelSave(path string, beta float64) error {
	m := testModel(beta)
	tmp := path + ".tmp"
	if err := m.Save(tmp); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
