package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/sparse"
)

// testModel builds a small deterministic RBF model. beta shifts the
// decision boundary, which the hot-reload tests use to tell versions apart.
func testModel(beta float64) *model.Model {
	return &model.Model{
		Kernel:       kernel.Params{Type: kernel.Gaussian, Gamma: 1},
		C:            10,
		SV:           sparse.FromDense([][]float64{{-1, 0}, {1, 0.5}}),
		Coef:         []float64{-1, 1},
		Beta:         beta,
		TrainSamples: 10,
	}
}

func saveModel(t *testing.T, m *model.Model, path string) {
	t.Helper()
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
}

// newTestServer registers the given models and returns the server plus an
// httptest wrapper around its handler.
func newTestServer(t *testing.T, cfg Config, models map[string]string) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	for name, path := range models {
		if err := reg.Add(name, path); err != nil {
			t.Fatal(err)
		}
	}
	s := New(reg, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodePredictions(t *testing.T, data []byte) PredictResponse {
	t.Helper()
	var pr PredictResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatalf("bad predict response %s: %v", data, err)
	}
	return pr
}

func TestPredictParityWithModel(t *testing.T) {
	m := testModel(0.1)
	m.ProbA, m.ProbB, m.HasProb = -1.5, 0.25, true
	path := t.TempDir() + "/m.model"
	saveModel(t, m, path)
	_, ts := newTestServer(t, Config{}, map[string]string{"default": path})

	probe := sparse.FromDense([][]float64{{0.7, 0.2}, {-1.3, 0.1}, {0, 0}})
	// One request per encoding, all against the same probe rows.
	requests := []any{
		PredictRequest{Instances: []Instance{
			{Features: map[string]float64{"1": 0.7, "2": 0.2}},
			{Features: map[string]float64{"1": -1.3, "2": 0.1}},
			{Features: map[string]float64{"1": 0}}, // explicit zero == all-zero row
		}},
		PredictRequest{Instances: []Instance{
			{Libsvm: "1:0.7 2:0.2"},
			{Libsvm: "1:-1.3 2:0.1"},
			{Libsvm: "1:0"}, // explicit zero == all-zero row
		}},
	}

	for ri, req := range requests {
		resp, data := postJSON(t, ts.URL+"/v1/predict", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", ri, resp.StatusCode, data)
		}
		pr := decodePredictions(t, data)
		if pr.Model != "default" || len(pr.Predictions) != 3 {
			t.Fatalf("request %d: response %+v", ri, pr)
		}
		for i, p := range pr.Predictions {
			row := probe.RowView(i)
			wantDV := m.DecisionValue(row)
			if math.Abs(p.Decision-wantDV) > 1e-12 {
				t.Fatalf("request %d row %d: decision %v, want %v", ri, i, p.Decision, wantDV)
			}
			if p.Label != m.Predict(row) {
				t.Fatalf("request %d row %d: label %v", ri, i, p.Label)
			}
			wantP, _ := m.Probability(row)
			if p.Probability == nil || math.Abs(*p.Probability-wantP) > 1e-12 {
				t.Fatalf("request %d row %d: probability %v, want %v", ri, i, p.Probability, wantP)
			}
		}
	}
}

func TestPredictSingleTopLevel(t *testing.T) {
	m := testModel(0)
	path := t.TempDir() + "/m.model"
	saveModel(t, m, path)
	_, ts := newTestServer(t, Config{}, map[string]string{"default": path})

	resp, data := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Features: map[string]float64{"1": 0.9}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	pr := decodePredictions(t, data)
	if len(pr.Predictions) != 1 {
		t.Fatalf("got %d predictions", len(pr.Predictions))
	}
	row := sparse.FromDense([][]float64{{0.9}}).RowView(0)
	if math.Abs(pr.Predictions[0].Decision-m.DecisionValue(row)) > 1e-12 {
		t.Fatalf("decision %v", pr.Predictions[0].Decision)
	}
	// Uncalibrated model: no probability field.
	if pr.Predictions[0].Probability != nil {
		t.Fatal("uncalibrated model returned a probability")
	}

	resp, data = postJSON(t, ts.URL+"/v1/predict", PredictRequest{Libsvm: "1:0.9"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("libsvm single: status %d: %s", resp.StatusCode, data)
	}
	pr2 := decodePredictions(t, data)
	if pr2.Predictions[0].Decision != pr.Predictions[0].Decision {
		t.Fatal("libsvm and features encodings disagree")
	}
}

func TestPredictTextPlainBody(t *testing.T) {
	m := testModel(0)
	path := t.TempDir() + "/m.model"
	saveModel(t, m, path)
	_, ts := newTestServer(t, Config{}, map[string]string{"default": path})

	// Labeled lines (as written by WriteLibsvm) must be accepted as-is.
	body := "+1 1:0.9 2:0.1\n# comment\n\n-1 1:-0.8\n"
	resp, err := http.Post(ts.URL+"/v1/predict?model=default", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	pr := decodePredictions(t, data)
	if len(pr.Predictions) != 2 {
		t.Fatalf("got %d predictions from 2 data lines", len(pr.Predictions))
	}
	probe := sparse.FromDense([][]float64{{0.9, 0.1}, {-0.8, 0}})
	for i, p := range pr.Predictions {
		if want := m.DecisionValue(probe.RowView(i)); math.Abs(p.Decision-want) > 1e-12 {
			t.Fatalf("row %d: decision %v, want %v", i, p.Decision, want)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	path := t.TempDir() + "/m.model"
	saveModel(t, testModel(0), path)
	_, ts := newTestServer(t, Config{MaxBatch: 2}, map[string]string{"a": path, "b": path})

	cases := []struct {
		name string
		body string
		code int
	}{
		{"no instances", `{}`, http.StatusBadRequest},
		{"unknown model", `{"model":"nope","libsvm":"1:1"}`, http.StatusNotFound},
		{"ambiguous default", `{"libsvm":"1:1"}`, http.StatusNotFound},
		{"both single and batch", `{"libsvm":"1:1","instances":[{"libsvm":"1:1"}]}`, http.StatusBadRequest},
		{"both encodings in instance", `{"model":"a","instances":[{"libsvm":"1:1","features":{"1":1}}]}`, http.StatusBadRequest},
		{"bad feature index", `{"model":"a","features":{"zero":1}}`, http.StatusBadRequest},
		{"bad libsvm row", `{"model":"a","libsvm":"1:1 junk"}`, http.StatusBadRequest},
		{"unknown field", `{"model":"a","rows":[[1,2]]}`, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
		{"batch too large", `{"model":"a","instances":[{"libsvm":"1:1"},{"libsvm":"1:1"},{"libsvm":"1:1"}]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, data)
		}
		var e map[string]string
		if err := json.Unmarshal(data, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body %s", tc.name, data)
		}
	}
}

func TestResolveSingleModelWithoutName(t *testing.T) {
	path := t.TempDir() + "/m.model"
	saveModel(t, testModel(0), path)
	_, ts := newTestServer(t, Config{}, map[string]string{"only": path})
	resp, data := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Libsvm: "1:1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if pr := decodePredictions(t, data); pr.Model != "only" {
		t.Fatalf("resolved model %q, want \"only\"", pr.Model)
	}
}

func TestHealthzAndModels(t *testing.T) {
	path := t.TempDir() + "/m.model"
	m := testModel(0)
	m.ProbA, m.ProbB, m.HasProb = -1, 0, true
	saveModel(t, m, path)
	_, ts := newTestServer(t, Config{}, map[string]string{"default": path})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["status"] != "ok" || hz["models"].(float64) != 1 {
		t.Fatalf("healthz = %v", hz)
	}

	// Serve one batch so the prediction counter is non-zero.
	postJSON(t, ts.URL+"/v1/predict", PredictRequest{Instances: []Instance{{Libsvm: "1:1"}, {Libsvm: "2:1"}}})

	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var ml struct{ Models []ModelInfo }
	if err := json.NewDecoder(resp.Body).Decode(&ml); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ml.Models) != 1 {
		t.Fatalf("models = %+v", ml.Models)
	}
	info := ml.Models[0]
	if info.Name != "default" || info.NumSV != 2 || !info.Calibrated || info.Version != 1 || info.Predictions != 2 {
		t.Fatalf("model info = %+v", info)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	path := t.TempDir() + "/m.model"
	saveModel(t, testModel(0), path)
	_, ts := newTestServer(t, Config{}, map[string]string{"default": path})

	postJSON(t, ts.URL+"/v1/predict", PredictRequest{Instances: []Instance{{Libsvm: "1:1"}, {Libsvm: "1:2"}, {Libsvm: "1:3"}}})
	http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader("{}")) // a 400

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`svmserve_requests_total{path="/v1/predict",code="200"} 1`,
		`svmserve_requests_total{path="/v1/predict",code="400"} 1`,
		"# TYPE svmserve_request_duration_seconds histogram",
		"svmserve_request_duration_seconds_count 2",
		`svmserve_predict_batch_size_bucket{le="4"} 1`,
		`svmserve_model_predictions_total{model="default"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestHotReloadUnderConcurrentTraffic(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/m.model"
	saveModel(t, testModel(0), path)
	_, ts := newTestServer(t, Config{}, map[string]string{"default": path})

	// Hammer predict from several goroutines while the model file is
	// rewritten and reloaded; every response must be coherent (either
	// version's decision value, never an error, never a torn model).
	const goroutines = 8
	const perG = 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	row := sparse.FromDense([][]float64{{0.7, 0.2}}).RowView(0)
	dvOld := testModel(0).DecisionValue(row)
	dvNew := testModel(5).DecisionValue(row)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				b, _ := json.Marshal(PredictRequest{Libsvm: "1:0.7 2:0.2"})
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(b))
				if err != nil {
					errs <- err
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, data)
					return
				}
				var pr PredictResponse
				if err := json.Unmarshal(data, &pr); err != nil {
					errs <- err
					return
				}
				dv := pr.Predictions[0].Decision
				if math.Abs(dv-dvOld) > 1e-12 && math.Abs(dv-dvNew) > 1e-12 {
					errs <- fmt.Errorf("torn decision value %v (want %v or %v)", dv, dvOld, dvNew)
					return
				}
			}
		}()
	}

	// Mid-traffic: rewrite the file and reload.
	saveModel(t, testModel(5), path)
	resp, err := http.Post(ts.URL+"/v1/models/default/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rl map[string]any
	json.NewDecoder(resp.Body).Decode(&rl)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rl["version"].(float64) != 2 {
		t.Fatalf("reload: %d %v", resp.StatusCode, rl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the reload completes, fresh requests see the new model.
	resp2, data := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Libsvm: "1:0.7 2:0.2"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-reload status %d", resp2.StatusCode)
	}
	pr := decodePredictions(t, data)
	if pr.Version != 2 || math.Abs(pr.Predictions[0].Decision-dvNew) > 1e-12 {
		t.Fatalf("post-reload version %d decision %v, want version 2 decision %v",
			pr.Version, pr.Predictions[0].Decision, dvNew)
	}
}

func TestReloadFailureKeepsServing(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/m.model"
	saveModel(t, testModel(0), path)
	_, ts := newTestServer(t, Config{}, map[string]string{"default": path})

	// Corrupt the file on disk, then reload: 500, old snapshot stays live.
	if err := os.WriteFile(path, []byte("kernel_type warp\nSV\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models/default/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload of corrupted file: status %d", resp.StatusCode)
	}
	resp2, data := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Libsvm: "1:0.7"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("predict after failed reload: %d %s", resp2.StatusCode, data)
	}
	if pr := decodePredictions(t, data); pr.Version != 1 {
		t.Fatalf("version %d after failed reload, want 1", pr.Version)
	}

	// Reloading an unregistered name is a 404.
	resp3, err := http.Post(ts.URL+"/v1/models/ghost/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("reload of unknown model: status %d", resp3.StatusCode)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	path := t.TempDir() + "/m.model"
	saveModel(t, testModel(0), path)
	reg := NewRegistry()
	if err := reg.Add("default", path); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{DrainTimeout: 5 * time.Second})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Launch in-flight batch requests, then cancel the context while they
	// run; every request must still complete with 200.
	const inflight = 6
	var wg sync.WaitGroup
	results := make(chan error, inflight)
	big := make([]Instance, 64)
	for i := range big {
		big[i] = Instance{Libsvm: fmt.Sprintf("1:%d 2:0.5", i)}
	}
	body, _ := json.Marshal(PredictRequest{Instances: big})
	for g := 0; g < inflight; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			results <- nil
		}()
	}
	time.Sleep(10 * time.Millisecond) // let the requests hit the handler
	cancel()
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Error(err)
		}
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
	// The listener is closed: new connections must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

func TestRegistryAddErrors(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("x", "/nonexistent/file.model"); err == nil {
		t.Fatal("missing file accepted")
	}
	path := t.TempDir() + "/m.model"
	saveModel(t, testModel(0), path)
	if err := reg.Add("", path); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := reg.Add("x", path); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("x", path); err == nil {
		t.Fatal("duplicate name accepted")
	}
	// Corrupted files are rejected at load time.
	bad := t.TempDir() + "/bad.model"
	os.WriteFile(bad, []byte("total_sv 5\nkernel_type rbf\ngamma 1\nC 1\nSV\n1 1:1\n"), 0o644)
	if err := reg.Add("bad", bad); err == nil {
		t.Fatal("corrupted model accepted at load time")
	}
}
