// Package shed implements admission control for the serving pipeline:
// a bounded queue-depth gate, a semaphore bounding concurrent batch
// executions, and deadline-aware rejection. A request whose estimated
// queue wait already exceeds its deadline is refused immediately with an
// explicit Overload error (mapped to HTTP 429 with Retry-After upstream) —
// under overload the system answers "not now" fast instead of timing out
// slowly, which is what keeps accepted-request tail latency bounded.
package shed

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// ErrOverloaded is the sentinel every admission rejection matches
// (errors.Is). The concrete error is *Overload, carrying the reason and a
// retry hint.
var ErrOverloaded = errors.New("shed: overloaded")

// Overload is an explicit admission rejection.
type Overload struct {
	// Reason is a small-cardinality label for metrics: "queue_full" or
	// "deadline".
	Reason string
	// RetryAfter estimates when capacity frees up; 0 means unknown.
	RetryAfter time.Duration
}

func (o *Overload) Error() string {
	return fmt.Sprintf("shed: overloaded (%s), retry after %v", o.Reason, o.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) true for every Overload.
func (o *Overload) Is(target error) bool { return target == ErrOverloaded }

// Config tunes a Shedder. The zero value is usable.
type Config struct {
	// MaxQueue bounds admitted-but-unfinished requests (default 1024).
	MaxQueue int
	// MaxInFlight bounds concurrently executing batches (default 2).
	MaxInFlight int
	// EWMAAlpha is the smoothing factor of the per-row service-time
	// estimate (default 0.2).
	EWMAAlpha float64
}

func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.2
	}
	return c
}

// Shedder is the admission controller. All methods are safe for concurrent
// use; the admit path is lock-free (atomics only).
type Shedder struct {
	cfg        Config
	depth      atomic.Int64 // admitted and not yet released
	inflight   chan struct{}
	perRowBits atomic.Uint64 // EWMA seconds per predicted row

	admitted atomic.Uint64
	shed     atomic.Uint64
}

// New builds a Shedder.
func New(cfg Config) *Shedder {
	cfg = cfg.withDefaults()
	return &Shedder{cfg: cfg, inflight: make(chan struct{}, cfg.MaxInFlight)}
}

// Admit decides whether to accept one request. On acceptance it returns a
// release function the caller must invoke exactly once when the request is
// answered. On rejection the error is an *Overload (errors.Is
// ErrOverloaded): either the queue is at capacity, or the caller's context
// deadline is closer than the estimated queue wait, in which case queueing
// the request would only convert a fast 429 into a slow timeout.
func (s *Shedder) Admit(ctx context.Context) (release func(), err error) {
	depth := s.depth.Add(1)
	if depth > int64(s.cfg.MaxQueue) {
		s.depth.Add(-1)
		s.shed.Add(1)
		return nil, &Overload{Reason: "queue_full", RetryAfter: s.estimatedWait()}
	}
	if dl, ok := ctx.Deadline(); ok {
		if wait := s.estimatedWait(); wait > 0 && time.Until(dl) < wait {
			s.depth.Add(-1)
			s.shed.Add(1)
			return nil, &Overload{Reason: "deadline", RetryAfter: wait}
		}
	}
	s.admitted.Add(1)
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			s.depth.Add(-1)
		}
	}, nil
}

// AcquireBatch blocks until an in-flight batch slot frees up (or ctx is
// done). Batch executors acquire with context.Background(): a batch whose
// requests were already admitted always runs to completion.
func (s *Shedder) AcquireBatch(ctx context.Context) error {
	select {
	case s.inflight <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.inflight <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ReleaseBatch frees an in-flight batch slot.
func (s *Shedder) ReleaseBatch() { <-s.inflight }

// ObserveBatch feeds one executed batch into the per-row service-time
// estimate.
func (s *Shedder) ObserveBatch(rows int, took time.Duration) {
	if rows <= 0 || took <= 0 {
		return
	}
	sample := took.Seconds() / float64(rows)
	for {
		old := s.perRowBits.Load()
		cur := math.Float64frombits(old)
		next := sample
		if cur > 0 {
			next = (1-s.cfg.EWMAAlpha)*cur + s.cfg.EWMAAlpha*sample
		}
		if s.perRowBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// estimatedWait projects how long a newly queued request waits before its
// batch finishes: queued rows times the smoothed per-row service time,
// divided by the batch-slot parallelism.
func (s *Shedder) estimatedWait() time.Duration {
	perRow := math.Float64frombits(s.perRowBits.Load())
	if perRow <= 0 {
		return 0
	}
	depth := s.depth.Load()
	if depth < 0 {
		depth = 0
	}
	sec := float64(depth) * perRow / float64(s.cfg.MaxInFlight)
	return time.Duration(sec * float64(time.Second))
}

// QueueDepth returns the number of admitted, unreleased requests.
func (s *Shedder) QueueDepth() int64 { return s.depth.Load() }

// Stats returns cumulative admitted and shed request counts.
func (s *Shedder) Stats() (admitted, shed uint64) {
	return s.admitted.Load(), s.shed.Load()
}
