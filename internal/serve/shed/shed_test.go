package shed

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmitQueueBound(t *testing.T) {
	s := New(Config{MaxQueue: 3})
	ctx := context.Background()
	var releases []func()
	for i := 0; i < 3; i++ {
		rel, err := s.Admit(ctx)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if _, err := s.Admit(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("4th admit on a 3-deep queue: got %v, want ErrOverloaded", err)
	}
	var ov *Overload
	_, err := s.Admit(ctx)
	if !errors.As(err, &ov) || ov.Reason != "queue_full" {
		t.Fatalf("overload reason: got %v", err)
	}
	releases[0]()
	releases[0]() // double release must not free a second slot
	if _, err := s.Admit(ctx); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	if _, err := s.Admit(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatal("double release freed two slots")
	}
	if adm, shed := s.Stats(); adm != 4 || shed != 3 {
		t.Fatalf("stats: admitted %d shed %d, want 4 and 3", adm, shed)
	}
}

func TestAdmitDeadlineShedding(t *testing.T) {
	s := New(Config{MaxQueue: 1000, MaxInFlight: 1})
	// Teach the estimator: 10ms per row.
	s.ObserveBatch(1, 10*time.Millisecond)
	// Fill the queue with 50 requests: estimated wait = 500ms.
	for i := 0; i < 50; i++ {
		if _, err := s.Admit(context.Background()); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if w := s.estimatedWait(); w < 400*time.Millisecond {
		t.Fatalf("estimated wait %v, want >= 400ms", w)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := s.Admit(ctx)
	var ov *Overload
	if !errors.As(err, &ov) || ov.Reason != "deadline" {
		t.Fatalf("tight deadline behind a long queue: got %v, want deadline overload", err)
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("deadline overload carries no retry hint: %+v", ov)
	}
	// A generous deadline is still admitted.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if _, err := s.Admit(ctx2); err != nil {
		t.Fatalf("generous deadline rejected: %v", err)
	}
}

func TestBatchSemaphore(t *testing.T) {
	s := New(Config{MaxInFlight: 1})
	if err := s.AcquireBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.AcquireBatch(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second acquire on a 1-slot semaphore: got %v", err)
	}
	s.ReleaseBatch()
	if err := s.AcquireBatch(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	s.ReleaseBatch()
}

func TestEWMAConverges(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 100; i++ {
		s.ObserveBatch(10, 10*time.Millisecond) // 1ms per row
	}
	got := s.estimatedWaitPerRow()
	if got < 0.0009 || got > 0.0011 {
		t.Fatalf("EWMA per-row %v, want ~1ms", got)
	}
}

// estimatedWaitPerRow exposes the smoothed estimate for tests.
func (s *Shedder) estimatedWaitPerRow() float64 {
	s.depth.Store(int64(s.cfg.MaxInFlight)) // one row queued per slot
	defer s.depth.Store(0)
	return s.estimatedWait().Seconds()
}

func TestConcurrentAdmitRace(t *testing.T) {
	s := New(Config{MaxQueue: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if rel, err := s.Admit(context.Background()); err == nil {
					rel()
				}
				s.ObserveBatch(1, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("queue depth %d after all releases, want 0", d)
	}
}
